/**
 * @file
 * Graph-level expressions of Relax (§3.1): variables, constants, shape
 * expressions, tuples, calls (including the cross-level call_tir and
 * call_dps_library primitives), dataflow blocks, match_cast bindings,
 * conditionals and functions.
 */
#ifndef RELAX_IR_EXPR_H_
#define RELAX_IR_EXPR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "ir/struct_info.h"
#include "tir/ndarray.h"

namespace relax {
namespace ir {

class ExprNode;
/** Handles are shared; nodes are immutable except for their annotation,
 *  which deduction fills in after construction. */
using Expr = std::shared_ptr<ExprNode>;

/** Discriminator for graph-level expressions. */
enum class RxKind : uint8_t {
    kVar,
    kConstant,
    kShapeExpr,
    kPrimValue,
    kTuple,
    kTupleGetItem,
    kOp,
    kGlobalVar,
    kExternFunc,
    kCall,
    kIf,
    kSeqExpr,
    kFunction
};

/** Base class of graph-level expressions. */
class ExprNode
{
  public:
    explicit ExprNode(RxKind kind) : kind_(kind) {}
    virtual ~ExprNode() = default;

    RxKind kind() const { return kind_; }

    /** The annotation; null until deduction assigns it. */
    const StructInfo& structInfo() const { return structInfo_; }
    void setStructInfo(StructInfo sinfo) { structInfo_ = std::move(sinfo); }

  private:
    RxKind kind_;
    StructInfo structInfo_;
};

/**
 * A graph-level variable. `isDataflow` marks variables scoped to a single
 * dataflow block (not visible outside it).
 */
class VarNode : public ExprNode
{
  public:
    VarNode(std::string name, bool is_dataflow)
        : ExprNode(RxKind::kVar), name(std::move(name)),
          isDataflow(is_dataflow) {}

    std::string name;
    bool isDataflow;
};

using Var = std::shared_ptr<VarNode>;

/** A constant tensor (weights, lookup tables). */
class ConstantNode : public ExprNode
{
  public:
    explicit ConstantNode(NDArray data)
        : ExprNode(RxKind::kConstant), data(std::move(data)) {}

    NDArray data;
};

/** A first-class symbolic shape value, e.g. `shape(n, 4)` (§3.2). */
class ShapeExprNode : public ExprNode
{
  public:
    explicit ShapeExprNode(std::vector<PrimExpr> values)
        : ExprNode(RxKind::kShapeExpr), values(std::move(values)) {}

    std::vector<PrimExpr> values;
};

/** A scalar value lifted to the graph level. */
class PrimValueNode : public ExprNode
{
  public:
    explicit PrimValueNode(PrimExpr value)
        : ExprNode(RxKind::kPrimValue), value(std::move(value)) {}

    PrimExpr value;
};

/** Tuple construction. */
class TupleNode : public ExprNode
{
  public:
    explicit TupleNode(std::vector<Expr> fields)
        : ExprNode(RxKind::kTuple), fields(std::move(fields)) {}

    std::vector<Expr> fields;
};

/** Tuple projection. */
class TupleGetItemNode : public ExprNode
{
  public:
    TupleGetItemNode(Expr tuple, int index)
        : ExprNode(RxKind::kTupleGetItem), tuple(std::move(tuple)),
          index(index) {}

    Expr tuple;
    int index;
};

/** A registered high-level operator (e.g. "relax.matmul"). */
class OpNode : public ExprNode
{
  public:
    explicit OpNode(std::string name)
        : ExprNode(RxKind::kOp), name(std::move(name)) {}

    std::string name;
};

using Op = std::shared_ptr<OpNode>;

/** Reference to a module-level function (graph- or tensor-level). */
class GlobalVarNode : public ExprNode
{
  public:
    explicit GlobalVarNode(std::string name)
        : ExprNode(RxKind::kGlobalVar), name(std::move(name)) {}

    std::string name;
};

using GlobalVar = std::shared_ptr<GlobalVarNode>;

/** Reference to an external (library/builtin) function by name. */
class ExternFuncNode : public ExprNode
{
  public:
    explicit ExternFuncNode(std::string name)
        : ExprNode(RxKind::kExternFunc), name(std::move(name)) {}

    std::string name;
};

/** Attribute values attached to operator calls. */
using AttrValue =
    std::variant<int64_t, double, std::string, std::vector<int64_t>>;
using Attrs = std::map<std::string, AttrValue>;

/**
 * A call. The callee may be an Op (high-level operator), a GlobalVar
 * (subgraph function or, for call_tir, a tensor program), a Var holding a
 * closure, or an ExternFunc.
 *
 * For the cross-level primitives (op "relax.call_tir" and
 * "relax.call_dps_library"), `sinfoArgs` carries the output annotation —
 * the paper's explicit shape information flowing from graph level into
 * tensor programs (Fig. 4/5).
 */
class CallNode : public ExprNode
{
  public:
    CallNode(Expr op, std::vector<Expr> args, Attrs attrs = {},
             std::vector<StructInfo> sinfo_args = {})
        : ExprNode(RxKind::kCall), op(std::move(op)), args(std::move(args)),
          attrs(std::move(attrs)), sinfoArgs(std::move(sinfo_args)) {}

    Expr op;
    std::vector<Expr> args;
    Attrs attrs;
    std::vector<StructInfo> sinfoArgs;
};

using Call = std::shared_ptr<CallNode>;

/**
 * One binding `var = value`, or a match_cast
 * `var = match_cast(value, struct_info)` which asserts the annotation at
 * runtime and may introduce new symbolic variables (§3.2).
 */
struct Binding
{
    Var var;
    Expr value;
    bool isMatchCast = false;
    StructInfo castInfo; //!< target annotation for match_cast
};

/**
 * A straight-line sequence of bindings. When `isDataflow` is set the block
 * is side effect-free and control-flow free (the paper's dataflow block),
 * licensing aggressive rewrites such as DCE and fusion.
 */
class BindingBlockNode
{
  public:
    explicit BindingBlockNode(bool is_dataflow) : isDataflow(is_dataflow) {}

    bool isDataflow;
    std::vector<Binding> bindings;
};

using BindingBlock = std::shared_ptr<BindingBlockNode>;

/** Blocks followed by a result expression. */
class SeqExprNode : public ExprNode
{
  public:
    SeqExprNode(std::vector<BindingBlock> blocks, Expr body)
        : ExprNode(RxKind::kSeqExpr), blocks(std::move(blocks)),
          body(std::move(body)) {}

    std::vector<BindingBlock> blocks;
    Expr body;
};

using SeqExpr = std::shared_ptr<SeqExprNode>;

/** Conditional expression; branches are sequences. */
class IfNode : public ExprNode
{
  public:
    IfNode(Expr cond, Expr then_branch, Expr else_branch)
        : ExprNode(RxKind::kIf), cond(std::move(cond)),
          thenBranch(std::move(then_branch)),
          elseBranch(std::move(else_branch)) {}

    Expr cond;
    Expr thenBranch;
    Expr elseBranch;
};

/** A graph-level function with annotated parameters and result (§4.1). */
class FunctionNode : public ExprNode
{
  public:
    FunctionNode(std::vector<Var> params, Expr body, StructInfo ret_sinfo)
        : ExprNode(RxKind::kFunction), params(std::move(params)),
          body(std::move(body)), retSInfo(std::move(ret_sinfo)) {}

    std::vector<Var> params;
    Expr body;
    StructInfo retSInfo;
    /** Free-form attributes (e.g. "is_subgraph" for fused functions). */
    std::map<std::string, std::string> attrs;
};

using Function = std::shared_ptr<FunctionNode>;

// ---------------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------------

Var makeVar(const std::string& name, StructInfo sinfo,
            bool is_dataflow = false);
Expr makeConstant(NDArray data);
Expr makeShapeExpr(std::vector<PrimExpr> values);
Expr makePrimValue(PrimExpr value);
Expr makeTuple(std::vector<Expr> fields);
Expr makeTupleGetItem(Expr tuple, int index);
GlobalVar makeGlobalVar(const std::string& name);
Expr makeExternFunc(const std::string& name);
Call makeCall(Expr op, std::vector<Expr> args, Attrs attrs = {},
              std::vector<StructInfo> sinfo_args = {});
Expr makeIf(Expr cond, Expr then_branch, Expr else_branch);
SeqExpr makeSeqExpr(std::vector<BindingBlock> blocks, Expr body);
Function makeFunction(std::vector<Var> params, Expr body,
                      StructInfo ret_sinfo);

/** Interned operator handle; same name returns the same node. */
Op getOp(const std::string& name);

/** The cross-level call primitives (Fig. 4). */
Call callTIR(GlobalVar tir_func, std::vector<Expr> args, StructInfo out_sinfo,
             std::vector<Expr> sym_args = {});
Call callDPSLibrary(const std::string& func_name, std::vector<Expr> args,
                    StructInfo out_sinfo);

/**
 * Call into a runtime builtin that allocates its own result (used for
 * data-dependent operators like unique, whose output size cannot be
 * pre-allocated in destination-passing style).
 */
Call callPacked(const std::string& func_name, std::vector<Expr> args,
                StructInfo out_sinfo);

/** True if `call` invokes the given named op. */
bool isOpCall(const Expr& expr, const std::string& op_name);

/** Renders an expression in the paper's surface syntax. */
std::string toString(const Expr& expr, int indent = 0);

} // namespace ir
} // namespace relax

#endif // RELAX_IR_EXPR_H_
