/**
 * @file
 * Graph-level substitution utilities: replace Relax variables
 * (substituteVars), collect variable uses, and collect / substitute the
 * symbolic shape variables appearing in annotations — the workhorses of
 * fusion and inlining.
 */
#include "ir/utils.h"

namespace relax {
namespace ir {

Expr
substituteVars(const Expr& expr, const RxVarMap& map)
{
    if (!expr || map.empty()) return expr;
    switch (expr->kind()) {
      case RxKind::kVar: {
        auto it = map.find(static_cast<const VarNode*>(expr.get()));
        return it == map.end() ? expr : it->second;
      }
      case RxKind::kCall: {
        const auto* call = static_cast<const CallNode*>(expr.get());
        std::vector<Expr> args;
        args.reserve(call->args.size());
        bool changed = false;
        for (const auto& arg : call->args) {
            args.push_back(substituteVars(arg, map));
            changed |= args.back().get() != arg.get();
        }
        Expr op = substituteVars(call->op, map);
        changed |= op.get() != call->op.get();
        if (!changed) return expr;
        Call rewritten =
            makeCall(op, std::move(args), call->attrs, call->sinfoArgs);
        rewritten->setStructInfo(call->structInfo());
        return rewritten;
      }
      case RxKind::kTuple: {
        const auto* node = static_cast<const TupleNode*>(expr.get());
        std::vector<Expr> fields;
        bool changed = false;
        for (const auto& field : node->fields) {
            fields.push_back(substituteVars(field, map));
            changed |= fields.back().get() != field.get();
        }
        if (!changed) return expr;
        Expr rewritten = makeTuple(std::move(fields));
        if (expr->structInfo()) rewritten->setStructInfo(expr->structInfo());
        return rewritten;
      }
      case RxKind::kTupleGetItem: {
        const auto* node = static_cast<const TupleGetItemNode*>(expr.get());
        Expr tuple = substituteVars(node->tuple, map);
        if (tuple.get() == node->tuple.get()) return expr;
        Expr rewritten = makeTupleGetItem(tuple, node->index);
        if (expr->structInfo()) rewritten->setStructInfo(expr->structInfo());
        return rewritten;
      }
      case RxKind::kIf: {
        const auto* node = static_cast<const IfNode*>(expr.get());
        Expr rewritten = makeIf(substituteVars(node->cond, map),
                                substituteVars(node->thenBranch, map),
                                substituteVars(node->elseBranch, map));
        if (expr->structInfo()) rewritten->setStructInfo(expr->structInfo());
        return rewritten;
      }
      case RxKind::kSeqExpr: {
        const auto* node = static_cast<const SeqExprNode*>(expr.get());
        RxVarMap scoped = map;
        std::vector<BindingBlock> blocks;
        for (const auto& block : node->blocks) {
            auto rewritten_block =
                std::make_shared<BindingBlockNode>(block->isDataflow);
            for (const auto& binding : block->bindings) {
                scoped.erase(binding.var.get()); // shadowing
                Binding rewritten = binding;
                rewritten.value = substituteVars(binding.value, scoped);
                rewritten_block->bindings.push_back(std::move(rewritten));
            }
            blocks.push_back(std::move(rewritten_block));
        }
        return makeSeqExpr(std::move(blocks),
                           substituteVars(node->body, scoped));
      }
      default:
        return expr;
    }
}

void
collectVarUses(const Expr& expr, std::unordered_set<const VarNode*>* out)
{
    if (!expr) return;
    switch (expr->kind()) {
      case RxKind::kVar:
        out->insert(static_cast<const VarNode*>(expr.get()));
        return;
      case RxKind::kCall: {
        const auto* call = static_cast<const CallNode*>(expr.get());
        collectVarUses(call->op, out);
        for (const auto& arg : call->args) collectVarUses(arg, out);
        return;
      }
      case RxKind::kTuple:
        for (const auto& field :
             static_cast<const TupleNode*>(expr.get())->fields) {
            collectVarUses(field, out);
        }
        return;
      case RxKind::kTupleGetItem:
        collectVarUses(static_cast<const TupleGetItemNode*>(expr.get())->tuple,
                       out);
        return;
      case RxKind::kIf: {
        const auto* node = static_cast<const IfNode*>(expr.get());
        collectVarUses(node->cond, out);
        collectVarUses(node->thenBranch, out);
        collectVarUses(node->elseBranch, out);
        return;
      }
      case RxKind::kSeqExpr: {
        const auto* node = static_cast<const SeqExprNode*>(expr.get());
        for (const auto& block : node->blocks) {
            for (const auto& binding : block->bindings) {
                collectVarUses(binding.value, out);
            }
        }
        collectVarUses(node->body, out);
        return;
      }
      default:
        return;
    }
}

void
collectExprSymVars(const Expr& expr,
                   std::unordered_set<const ::relax::VarNode*>* out)
{
    if (!expr) return;
    if (expr->structInfo()) collectSymVars(expr->structInfo(), out);
    switch (expr->kind()) {
      case RxKind::kShapeExpr:
        for (const auto& v :
             static_cast<const ShapeExprNode*>(expr.get())->values) {
            collectVars(v, out);
        }
        return;
      case RxKind::kPrimValue:
        collectVars(static_cast<const PrimValueNode*>(expr.get())->value,
                    out);
        return;
      case RxKind::kCall: {
        const auto* call = static_cast<const CallNode*>(expr.get());
        for (const auto& arg : call->args) collectExprSymVars(arg, out);
        for (const auto& sinfo : call->sinfoArgs) collectSymVars(sinfo, out);
        return;
      }
      case RxKind::kTuple:
        for (const auto& field :
             static_cast<const TupleNode*>(expr.get())->fields) {
            collectExprSymVars(field, out);
        }
        return;
      default:
        return;
    }
}

Expr
substituteSymVars(const Expr& expr, const VarMap& vmap)
{
    if (!expr || vmap.empty()) return expr;
    auto withInfo = [&](Expr rewritten) {
        if (expr->structInfo()) {
            rewritten->setStructInfo(
                substituteSInfo(expr->structInfo(), vmap));
        }
        return rewritten;
    };
    switch (expr->kind()) {
      case RxKind::kShapeExpr: {
        const auto* node = static_cast<const ShapeExprNode*>(expr.get());
        std::vector<PrimExpr> values;
        for (const auto& v : node->values) {
            values.push_back(substitute(v, vmap));
        }
        return makeShapeExpr(std::move(values));
      }
      case RxKind::kPrimValue: {
        const auto* node = static_cast<const PrimValueNode*>(expr.get());
        return makePrimValue(substitute(node->value, vmap));
      }
      case RxKind::kCall: {
        const auto* call = static_cast<const CallNode*>(expr.get());
        std::vector<Expr> args;
        for (const auto& arg : call->args) {
            args.push_back(substituteSymVars(arg, vmap));
        }
        std::vector<StructInfo> sinfo_args;
        for (const auto& sinfo : call->sinfoArgs) {
            sinfo_args.push_back(substituteSInfo(sinfo, vmap));
        }
        return withInfo(makeCall(call->op, std::move(args), call->attrs,
                                 std::move(sinfo_args)));
      }
      case RxKind::kTuple: {
        const auto* node = static_cast<const TupleNode*>(expr.get());
        std::vector<Expr> fields;
        for (const auto& field : node->fields) {
            fields.push_back(substituteSymVars(field, vmap));
        }
        return withInfo(makeTuple(std::move(fields)));
      }
      default:
        return expr;
    }
}

} // namespace ir
} // namespace relax
