/**
 * @file
 * IRModule: the unit of compilation. Unlike traditional multi-level
 * compilers, a single module holds graph-level functions *and* loop-level
 * tensor programs side by side — the cross-level abstraction of §3.3.
 */
#ifndef RELAX_IR_MODULE_H_
#define RELAX_IR_MODULE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/expr.h"
#include "tir/stmt.h"

namespace relax {
namespace ir {

class IRModule;
using IRModulePtr = std::shared_ptr<IRModule>;

/** A module of graph-level functions and tensor programs. */
class IRModule
{
  public:
    static IRModulePtr create() { return std::make_shared<IRModule>(); }

    /** Adds (or replaces) a graph-level function. */
    GlobalVar
    addFunction(const std::string& name, Function func)
    {
        func->attrs["global_symbol"] = name;
        relaxFuncs_[name] = std::move(func);
        return getGlobalVar(name);
    }

    /** Adds (or replaces) a tensor program. */
    GlobalVar
    addTIRFunc(tir::PrimFunc func)
    {
        std::string name = func->name;
        tirFuncs_[name] = std::move(func);
        return getGlobalVar(name);
    }

    /** Interned per-module GlobalVar for a function name. */
    GlobalVar
    getGlobalVar(const std::string& name)
    {
        auto [it, inserted] = globalVars_.emplace(name, nullptr);
        if (inserted) it->second = makeGlobalVar(name);
        return it->second;
    }

    /** Looks up a graph-level function; null when absent. */
    Function
    getFunction(const std::string& name) const
    {
        auto it = relaxFuncs_.find(name);
        return it == relaxFuncs_.end() ? nullptr : it->second;
    }

    /** Looks up a tensor program; null when absent. */
    tir::PrimFunc
    getTIRFunc(const std::string& name) const
    {
        auto it = tirFuncs_.find(name);
        return it == tirFuncs_.end() ? nullptr : it->second;
    }

    void
    removeFunction(const std::string& name)
    {
        relaxFuncs_.erase(name);
        tirFuncs_.erase(name);
    }

    const std::map<std::string, Function>& functions() const
    {
        return relaxFuncs_;
    }
    const std::map<std::string, tir::PrimFunc>& tirFuncs() const
    {
        return tirFuncs_;
    }

    /** Returns a name not yet used in the module, derived from `hint`. */
    std::string
    uniqueName(const std::string& hint)
    {
        std::string name = hint;
        int suffix = 0;
        while (relaxFuncs_.count(name) || tirFuncs_.count(name)) {
            name = hint + "_" + std::to_string(++suffix);
        }
        return name;
    }

    /** Deep-ish copy: function tables are copied; bodies are shared
     *  (passes construct fresh bodies rather than mutating). */
    IRModulePtr
    copy() const
    {
        auto clone = create();
        clone->relaxFuncs_ = relaxFuncs_;
        clone->tirFuncs_ = tirFuncs_;
        clone->globalVars_ = globalVars_;
        return clone;
    }

    std::string toString() const;

  private:
    std::map<std::string, Function> relaxFuncs_;
    std::map<std::string, tir::PrimFunc> tirFuncs_;
    std::map<std::string, GlobalVar> globalVars_;
};

/**
 * Validates module well-formedness; throws IRError on the first violation.
 *
 * Checked rules:
 *  - every function body is a SeqExpr and every binding variable carries a
 *    StructInfo annotation;
 *  - variables are defined before use (params, then bindings in order);
 *  - dataflow blocks contain no control flow (no If values), and dataflow
 *    variables do not escape their defining block;
 *  - call_tir callees name tensor programs present in the module and
 *    call_dps_library callees are extern functions;
 *  - match_cast bindings carry a target annotation.
 */
void wellFormed(const IRModulePtr& module);

} // namespace ir
} // namespace relax

#endif // RELAX_IR_MODULE_H_
