/**
 * @file
 * IRModule function registry and text rendering, plus wellFormed(),
 * the structural validator the pass pipeline runs between passes in
 * checked mode.
 */
#include "ir/module.h"

#include <functional>
#include <sstream>
#include <unordered_set>

namespace relax {
namespace ir {

std::string
IRModule::toString() const
{
    std::ostringstream os;
    for (const auto& [name, func] : relaxFuncs_) {
        std::string text = ir::toString(func);
        // Replace the generic "fn" with the module-level name.
        size_t pos = text.find("def fn(");
        if (pos != std::string::npos) {
            text = text.substr(0, pos) + "def " + name + "(" +
                   text.substr(pos + 7);
        }
        os << text << "\n";
    }
    for (const auto& [name, func] : tirFuncs_) {
        os << tir::toString(func) << "\n";
    }
    return os.str();
}

namespace {

/** Per-function well-formedness state. */
class Checker
{
  public:
    Checker(const IRModulePtr& module, const std::string& func_name)
        : module_(module), funcName_(func_name) {}

    void
    run(const Function& func)
    {
        for (const auto& param : func->params) {
            if (!param->structInfo()) {
                fail("parameter " + param->name + " lacks StructInfo");
            }
            define(param);
        }
        if (!func->body) fail("function has no body");
        if (func->body->kind() != RxKind::kSeqExpr) {
            fail("function body must be a SeqExpr");
        }
        checkSeq(std::static_pointer_cast<SeqExprNode>(func->body));
    }

  private:
    [[noreturn]] void
    fail(const std::string& message)
    {
        RELAX_THROW(IRError) << funcName_ << ": " << message;
    }

    void define(const Var& v) { defined_.insert(v.get()); }

    void
    checkSeq(const SeqExpr& seq)
    {
        for (const auto& block : seq->blocks) {
            std::unordered_set<const VarNode*> block_dataflow_vars;
            for (const auto& binding : block->bindings) {
                if (!binding.var) fail("binding without a variable");
                if (!binding.var->structInfo()) {
                    fail("binding " + binding.var->name +
                         " lacks StructInfo");
                }
                if (binding.isMatchCast && !binding.castInfo) {
                    fail("match_cast for " + binding.var->name +
                         " lacks a target annotation");
                }
                if (block->isDataflow &&
                    binding.value->kind() == RxKind::kIf) {
                    fail("control flow inside dataflow block at " +
                         binding.var->name);
                }
                checkValue(binding.value, block->isDataflow);
                define(binding.var);
                if (binding.var->isDataflow) {
                    block_dataflow_vars.insert(binding.var.get());
                    if (!block->isDataflow) {
                        fail("dataflow var " + binding.var->name +
                             " bound outside a dataflow block");
                    }
                }
            }
            // Dataflow vars must not escape: remove them from scope.
            for (const auto* v : block_dataflow_vars) defined_.erase(v);
        }
        checkUses(seq->body, false);
    }

    void
    checkValue(const Expr& value, bool in_dataflow)
    {
        if (isOpCall(value, "relax.call_tir")) {
            const auto* call = static_cast<const CallNode*>(value.get());
            if (call->args.empty() ||
                call->args[0]->kind() != RxKind::kGlobalVar) {
                fail("call_tir callee must be a GlobalVar");
            }
            const auto* gv =
                static_cast<const GlobalVarNode*>(call->args[0].get());
            if (!module_->getTIRFunc(gv->name)) {
                fail("call_tir target @" + gv->name +
                     " is not a tensor program in the module");
            }
            if (call->sinfoArgs.empty()) {
                fail("call_tir requires an output annotation");
            }
        } else if (isOpCall(value, "relax.call_dps_library")) {
            const auto* call = static_cast<const CallNode*>(value.get());
            if (call->args.empty() ||
                call->args[0]->kind() != RxKind::kExternFunc) {
                fail("call_dps_library callee must be an ExternFunc");
            }
            if (call->sinfoArgs.empty()) {
                fail("call_dps_library requires an output annotation");
            }
        }
        checkUses(value, in_dataflow);
    }

    void
    checkUses(const Expr& expr, bool in_dataflow)
    {
        if (!expr) return;
        switch (expr->kind()) {
          case RxKind::kVar: {
            const auto* v = static_cast<const VarNode*>(expr.get());
            if (!defined_.count(v)) {
                fail("use of undefined variable " + v->name +
                     (v->isDataflow ? " (dataflow var escaping its block?)"
                                    : ""));
            }
            return;
          }
          case RxKind::kCall: {
            const auto* call = static_cast<const CallNode*>(expr.get());
            // The callee GlobalVar/Op/Extern is not a variable use.
            for (const auto& arg : call->args) {
                if (arg->kind() != RxKind::kGlobalVar) {
                    checkUses(arg, in_dataflow);
                }
            }
            return;
          }
          case RxKind::kTuple:
            for (const auto& field :
                 static_cast<const TupleNode*>(expr.get())->fields) {
                checkUses(field, in_dataflow);
            }
            return;
          case RxKind::kTupleGetItem:
            checkUses(static_cast<const TupleGetItemNode*>(expr.get())->tuple,
                      in_dataflow);
            return;
          case RxKind::kIf: {
            const auto* node = static_cast<const IfNode*>(expr.get());
            checkUses(node->cond, in_dataflow);
            // Branch bodies are nested sequences; check recursively with a
            // scoped copy of definitions.
            auto checkBranch = [&](const Expr& branch) {
                if (!branch) fail("If branch missing");
                if (branch->kind() == RxKind::kSeqExpr) {
                    Checker nested(module_, funcName_);
                    nested.defined_ = defined_;
                    nested.checkSeq(
                        std::static_pointer_cast<SeqExprNode>(branch));
                } else {
                    checkUses(branch, in_dataflow);
                }
            };
            checkBranch(node->thenBranch);
            checkBranch(node->elseBranch);
            return;
          }
          default:
            return;
        }
    }

    IRModulePtr module_;
    std::string funcName_;
    std::unordered_set<const VarNode*> defined_;
};

} // namespace

void
wellFormed(const IRModulePtr& module)
{
    for (const auto& [name, func] : module->functions()) {
        Checker checker(module, name);
        checker.run(func);
    }
}

} // namespace ir
} // namespace relax
