/**
 * @file
 * Small structural utilities over graph-level expressions used by passes:
 * variable remapping, use counting and symbolic-variable collection.
 */
#ifndef RELAX_IR_UTILS_H_
#define RELAX_IR_UTILS_H_

#include <unordered_map>
#include <unordered_set>

#include "ir/expr.h"

namespace relax {
namespace ir {

/** Maps graph-level variables to replacement expressions. */
using RxVarMap = std::unordered_map<const VarNode*, Expr>;

/**
 * Replaces graph-variable references inside a (non-function) expression.
 * Nested SeqExpr/If bodies are traversed; bound variables shadow.
 */
Expr substituteVars(const Expr& expr, const RxVarMap& map);

/** Collects every graph variable referenced by the expression. */
void collectVarUses(const Expr& expr,
                    std::unordered_set<const VarNode*>* out);

/**
 * Collects the symbolic (shape) variables occurring in the expression's
 * annotations and shape literals.
 */
void collectExprSymVars(const Expr& expr,
                        std::unordered_set<const ::relax::VarNode*>* out);

/**
 * Substitutes symbolic shape variables through annotations and shape
 * literals of an expression tree (used when inlining subgraph functions).
 */
Expr substituteSymVars(const Expr& expr, const VarMap& vmap);

} // namespace ir
} // namespace relax

#endif // RELAX_IR_UTILS_H_
