/**
 * @file
 * StructInfo constructors and downcast accessors, structural equality
 * (sInfoEqual) and annotation/value compatibility (sInfoCompatible),
 * symbolic-variable collection and substitution, and printing.
 */
#include "ir/struct_info.h"

#include <sstream>

#include "arith/structural.h"
#include "arith/substitute.h"

namespace relax {
namespace ir {

StructInfo
objectSInfo()
{
    static StructInfo instance = std::make_shared<ObjectSInfoNode>();
    return instance;
}

StructInfo
primSInfo(DataType dtype, PrimExpr value)
{
    return std::make_shared<PrimSInfoNode>(dtype, std::move(value));
}

StructInfo
shapeSInfo(std::vector<PrimExpr> values)
{
    int ndim = (int)values.size();
    return std::make_shared<ShapeSInfoNode>(std::move(values), ndim);
}

StructInfo
shapeSInfoNDim(int ndim)
{
    return std::make_shared<ShapeSInfoNode>(std::nullopt, ndim);
}

StructInfo
tensorSInfo(std::vector<PrimExpr> shape, DataType dtype)
{
    int ndim = (int)shape.size();
    return std::make_shared<TensorSInfoNode>(std::move(shape), ndim, dtype);
}

StructInfo
tensorSInfoNDim(int ndim, DataType dtype)
{
    return std::make_shared<TensorSInfoNode>(std::nullopt, ndim, dtype);
}

StructInfo
tupleSInfo(std::vector<StructInfo> fields)
{
    return std::make_shared<TupleSInfoNode>(std::move(fields));
}

StructInfo
callableSInfo(std::vector<StructInfo> params, StructInfo ret)
{
    return std::make_shared<CallableSInfoNode>(std::move(params),
                                               std::move(ret));
}

StructInfo
opaqueCallableSInfo(StructInfo ret)
{
    return std::make_shared<CallableSInfoNode>(std::nullopt, std::move(ret));
}

const TensorSInfoNode*
asTensor(const StructInfo& sinfo)
{
    return sinfo && sinfo->kind() == SInfoKind::kTensor
               ? static_cast<const TensorSInfoNode*>(sinfo.get())
               : nullptr;
}

const ShapeSInfoNode*
asShape(const StructInfo& sinfo)
{
    return sinfo && sinfo->kind() == SInfoKind::kShape
               ? static_cast<const ShapeSInfoNode*>(sinfo.get())
               : nullptr;
}

const TupleSInfoNode*
asTuple(const StructInfo& sinfo)
{
    return sinfo && sinfo->kind() == SInfoKind::kTuple
               ? static_cast<const TupleSInfoNode*>(sinfo.get())
               : nullptr;
}

const CallableSInfoNode*
asCallable(const StructInfo& sinfo)
{
    return sinfo && sinfo->kind() == SInfoKind::kCallable
               ? static_cast<const CallableSInfoNode*>(sinfo.get())
               : nullptr;
}

const PrimSInfoNode*
asPrim(const StructInfo& sinfo)
{
    return sinfo && sinfo->kind() == SInfoKind::kPrim
               ? static_cast<const PrimSInfoNode*>(sinfo.get())
               : nullptr;
}

namespace {

bool
dimsEqual(const std::optional<std::vector<PrimExpr>>& a,
          const std::optional<std::vector<PrimExpr>>& b)
{
    if (a.has_value() != b.has_value()) return false;
    if (!a) return true;
    if (a->size() != b->size()) return false;
    for (size_t i = 0; i < a->size(); ++i) {
        if (!structuralEqual((*a)[i], (*b)[i])) return false;
    }
    return true;
}

} // namespace

bool
sInfoEqual(const StructInfo& a, const StructInfo& b)
{
    if (a.get() == b.get()) return true;
    if (!a || !b || a->kind() != b->kind()) return false;
    switch (a->kind()) {
      case SInfoKind::kObject:
        return true;
      case SInfoKind::kPrim: {
        const auto* pa = static_cast<const PrimSInfoNode*>(a.get());
        const auto* pb = static_cast<const PrimSInfoNode*>(b.get());
        if (pa->dtype != pb->dtype) return false;
        if ((pa->value == nullptr) != (pb->value == nullptr)) return false;
        return !pa->value || structuralEqual(pa->value, pb->value);
      }
      case SInfoKind::kShape: {
        const auto* sa = static_cast<const ShapeSInfoNode*>(a.get());
        const auto* sb = static_cast<const ShapeSInfoNode*>(b.get());
        return sa->ndim == sb->ndim && dimsEqual(sa->values, sb->values);
      }
      case SInfoKind::kTensor: {
        const auto* ta = static_cast<const TensorSInfoNode*>(a.get());
        const auto* tb = static_cast<const TensorSInfoNode*>(b.get());
        return ta->ndim == tb->ndim && ta->dtype == tb->dtype &&
               dimsEqual(ta->shape, tb->shape);
      }
      case SInfoKind::kTuple: {
        const auto* ta = static_cast<const TupleSInfoNode*>(a.get());
        const auto* tb = static_cast<const TupleSInfoNode*>(b.get());
        if (ta->fields.size() != tb->fields.size()) return false;
        for (size_t i = 0; i < ta->fields.size(); ++i) {
            if (!sInfoEqual(ta->fields[i], tb->fields[i])) return false;
        }
        return true;
      }
      case SInfoKind::kCallable: {
        const auto* ca = static_cast<const CallableSInfoNode*>(a.get());
        const auto* cb = static_cast<const CallableSInfoNode*>(b.get());
        if (ca->params.has_value() != cb->params.has_value()) return false;
        if (ca->params) {
            if (ca->params->size() != cb->params->size()) return false;
            for (size_t i = 0; i < ca->params->size(); ++i) {
                if (!sInfoEqual((*ca->params)[i], (*cb->params)[i])) {
                    return false;
                }
            }
        }
        return sInfoEqual(ca->ret, cb->ret);
      }
    }
    return false;
}

bool
sInfoCompatible(const StructInfo& target, const StructInfo& value)
{
    if (!target || target->kind() == SInfoKind::kObject) return true;
    if (!value) return false;
    if (value->kind() == SInfoKind::kObject) {
        // Coarse value into specific slot: permitted, runtime-checked.
        return true;
    }
    if (target->kind() != value->kind()) return false;
    switch (target->kind()) {
      case SInfoKind::kPrim: {
        const auto* pt = static_cast<const PrimSInfoNode*>(target.get());
        const auto* pv = static_cast<const PrimSInfoNode*>(value.get());
        return pt->dtype == pv->dtype || pt->dtype.isVoid();
      }
      case SInfoKind::kShape: {
        const auto* st = static_cast<const ShapeSInfoNode*>(target.get());
        const auto* sv = static_cast<const ShapeSInfoNode*>(value.get());
        if (st->ndim == kUnknownNDim || sv->ndim == kUnknownNDim) return true;
        return st->ndim == sv->ndim;
      }
      case SInfoKind::kTensor: {
        const auto* tt = static_cast<const TensorSInfoNode*>(target.get());
        const auto* tv = static_cast<const TensorSInfoNode*>(value.get());
        if (!tt->dtype.isVoid() && !tv->dtype.isVoid() &&
            tt->dtype != tv->dtype) {
            return false;
        }
        if (tt->ndim == kUnknownNDim || tv->ndim == kUnknownNDim) return true;
        return tt->ndim == tv->ndim;
      }
      case SInfoKind::kTuple: {
        const auto* tt = static_cast<const TupleSInfoNode*>(target.get());
        const auto* tv = static_cast<const TupleSInfoNode*>(value.get());
        if (tt->fields.size() != tv->fields.size()) return false;
        for (size_t i = 0; i < tt->fields.size(); ++i) {
            if (!sInfoCompatible(tt->fields[i], tv->fields[i])) return false;
        }
        return true;
      }
      case SInfoKind::kCallable:
        return true; // signatures checked at call sites
      case SInfoKind::kObject:
        return true;
    }
    return false;
}

std::string
toString(const StructInfo& sinfo)
{
    if (!sinfo) return "<?>";
    std::ostringstream os;
    switch (sinfo->kind()) {
      case SInfoKind::kObject:
        return "Object";
      case SInfoKind::kPrim: {
        const auto* node = static_cast<const PrimSInfoNode*>(sinfo.get());
        os << "Prim(\"" << node->dtype.toString() << "\"";
        if (node->value) os << ", " << relax::toString(node->value);
        os << ")";
        return os.str();
      }
      case SInfoKind::kShape: {
        const auto* node = static_cast<const ShapeSInfoNode*>(sinfo.get());
        if (node->values) {
            os << "Shape(" << relax::toString(*node->values) << ")";
        } else if (node->ndim != kUnknownNDim) {
            os << "Shape(ndim=" << node->ndim << ")";
        } else {
            os << "Shape(ndim=None)";
        }
        return os.str();
      }
      case SInfoKind::kTensor: {
        const auto* node = static_cast<const TensorSInfoNode*>(sinfo.get());
        os << "Tensor(";
        if (node->shape) {
            os << relax::toString(*node->shape);
        } else if (node->ndim != kUnknownNDim) {
            os << "ndim=" << node->ndim;
        } else {
            os << "ndim=None";
        }
        os << ", \"" << node->dtype.toString() << "\")";
        return os.str();
      }
      case SInfoKind::kTuple: {
        const auto* node = static_cast<const TupleSInfoNode*>(sinfo.get());
        os << "Tuple[";
        for (size_t i = 0; i < node->fields.size(); ++i) {
            if (i) os << ", ";
            os << toString(node->fields[i]);
        }
        os << "]";
        return os.str();
      }
      case SInfoKind::kCallable: {
        const auto* node =
            static_cast<const CallableSInfoNode*>(sinfo.get());
        os << "Callable(";
        if (node->params) {
            os << "[";
            for (size_t i = 0; i < node->params->size(); ++i) {
                if (i) os << ", ";
                os << toString((*node->params)[i]);
            }
            os << "], " << toString(node->ret);
        } else {
            os << "..., " << toString(node->ret);
        }
        os << ")";
        return os.str();
      }
    }
    return "<?>";
}

void
collectSymVars(const StructInfo& sinfo,
               std::unordered_set<const VarNode*>* out)
{
    if (!sinfo) return;
    switch (sinfo->kind()) {
      case SInfoKind::kObject:
        return;
      case SInfoKind::kPrim: {
        const auto* node = static_cast<const PrimSInfoNode*>(sinfo.get());
        if (node->value) collectVars(node->value, out);
        return;
      }
      case SInfoKind::kShape: {
        const auto* node = static_cast<const ShapeSInfoNode*>(sinfo.get());
        if (node->values) {
            for (const auto& v : *node->values) collectVars(v, out);
        }
        return;
      }
      case SInfoKind::kTensor: {
        const auto* node = static_cast<const TensorSInfoNode*>(sinfo.get());
        if (node->shape) {
            for (const auto& d : *node->shape) collectVars(d, out);
        }
        return;
      }
      case SInfoKind::kTuple: {
        for (const auto& field :
             static_cast<const TupleSInfoNode*>(sinfo.get())->fields) {
            collectSymVars(field, out);
        }
        return;
      }
      case SInfoKind::kCallable: {
        const auto* node =
            static_cast<const CallableSInfoNode*>(sinfo.get());
        if (node->params) {
            for (const auto& p : *node->params) collectSymVars(p, out);
        }
        collectSymVars(node->ret, out);
        return;
      }
    }
}

StructInfo
substituteSInfo(const StructInfo& sinfo, const VarMap& vmap)
{
    if (!sinfo || vmap.empty()) return sinfo;
    switch (sinfo->kind()) {
      case SInfoKind::kObject:
        return sinfo;
      case SInfoKind::kPrim: {
        const auto* node = static_cast<const PrimSInfoNode*>(sinfo.get());
        if (!node->value) return sinfo;
        return primSInfo(node->dtype, substitute(node->value, vmap));
      }
      case SInfoKind::kShape: {
        const auto* node = static_cast<const ShapeSInfoNode*>(sinfo.get());
        if (!node->values) return sinfo;
        std::vector<PrimExpr> values;
        for (const auto& v : *node->values) {
            values.push_back(substitute(v, vmap));
        }
        return shapeSInfo(std::move(values));
      }
      case SInfoKind::kTensor: {
        const auto* node = static_cast<const TensorSInfoNode*>(sinfo.get());
        if (!node->shape) return sinfo;
        std::vector<PrimExpr> shape;
        for (const auto& d : *node->shape) {
            shape.push_back(substitute(d, vmap));
        }
        return tensorSInfo(std::move(shape), node->dtype);
      }
      case SInfoKind::kTuple: {
        std::vector<StructInfo> fields;
        for (const auto& field :
             static_cast<const TupleSInfoNode*>(sinfo.get())->fields) {
            fields.push_back(substituteSInfo(field, vmap));
        }
        return tupleSInfo(std::move(fields));
      }
      case SInfoKind::kCallable: {
        const auto* node =
            static_cast<const CallableSInfoNode*>(sinfo.get());
        if (!node->params) {
            return opaqueCallableSInfo(substituteSInfo(node->ret, vmap));
        }
        std::vector<StructInfo> params;
        for (const auto& p : *node->params) {
            params.push_back(substituteSInfo(p, vmap));
        }
        return callableSInfo(std::move(params),
                             substituteSInfo(node->ret, vmap));
      }
    }
    return sinfo;
}

} // namespace ir
} // namespace relax
