/**
 * @file
 * StructInfo: the annotation system of Relax (Table 1 of the paper).
 *
 * Every graph-level value carries an annotation conveying its structure:
 *  - Object:   any runtime value (e.g. KV-cache handles),
 *  - Prim:     a scalar, optionally a known symbolic expression,
 *  - Shape:    a shape value, either full symbolic dims or only a rank,
 *  - Tensor:   dtype plus either a first-class symbolic shape or only rank,
 *  - Tuple:    fixed-arity product,
 *  - Callable: function signature (parameter and result annotations).
 *
 * Tensor/Shape annotations holding PrimExpr dimensions are the paper's
 * first-class symbolic shapes (§3.2); the ndim-only forms are the
 * coarse-grained fallback used for data-dependent operators.
 */
#ifndef RELAX_IR_STRUCT_INFO_H_
#define RELAX_IR_STRUCT_INFO_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "arith/expr.h"
#include "arith/substitute.h"

namespace relax {
namespace ir {

/** Symbolic scalar variable (an arith-level Var, the paper's sym_var()). */
using SymVar = ::relax::Var;

class StructInfoNode;
using StructInfo = std::shared_ptr<const StructInfoNode>;

/** Discriminator for annotation nodes. */
enum class SInfoKind : uint8_t {
    kObject,
    kPrim,
    kShape,
    kTensor,
    kTuple,
    kCallable
};

/** Unknown rank sentinel. */
inline constexpr int kUnknownNDim = -1;

/** Base class for annotations; immutable. */
class StructInfoNode
{
  public:
    explicit StructInfoNode(SInfoKind kind) : kind_(kind) {}
    virtual ~StructInfoNode() = default;

    SInfoKind kind() const { return kind_; }

  private:
    SInfoKind kind_;
};

/** Any runtime value. */
class ObjectSInfoNode : public StructInfoNode
{
  public:
    ObjectSInfoNode() : StructInfoNode(SInfoKind::kObject) {}
};

/** A scalar; `value` is its symbolic expression when statically known. */
class PrimSInfoNode : public StructInfoNode
{
  public:
    PrimSInfoNode(DataType dtype, PrimExpr value)
        : StructInfoNode(SInfoKind::kPrim), dtype(dtype),
          value(std::move(value)) {}

    DataType dtype;
    PrimExpr value; //!< may be null when unknown
};

/** A shape value: symbolic dims when known, otherwise only the rank. */
class ShapeSInfoNode : public StructInfoNode
{
  public:
    ShapeSInfoNode(std::optional<std::vector<PrimExpr>> values, int ndim)
        : StructInfoNode(SInfoKind::kShape), values(std::move(values)),
          ndim(ndim) {}

    std::optional<std::vector<PrimExpr>> values;
    int ndim; //!< kUnknownNDim when even the rank is unknown
};

/** A tensor: dtype plus first-class symbolic shape or rank-only fallback. */
class TensorSInfoNode : public StructInfoNode
{
  public:
    TensorSInfoNode(std::optional<std::vector<PrimExpr>> shape, int ndim,
                    DataType dtype)
        : StructInfoNode(SInfoKind::kTensor), shape(std::move(shape)),
          ndim(ndim), dtype(dtype) {}

    std::optional<std::vector<PrimExpr>> shape;
    int ndim;       //!< kUnknownNDim when rank unknown
    DataType dtype; //!< void when unknown
};

/** Fixed-arity tuple. */
class TupleSInfoNode : public StructInfoNode
{
  public:
    explicit TupleSInfoNode(std::vector<StructInfo> fields)
        : StructInfoNode(SInfoKind::kTuple), fields(std::move(fields)) {}

    std::vector<StructInfo> fields;
};

/** Function signature; params nullopt means fully opaque callable. */
class CallableSInfoNode : public StructInfoNode
{
  public:
    CallableSInfoNode(std::optional<std::vector<StructInfo>> params,
                      StructInfo ret)
        : StructInfoNode(SInfoKind::kCallable), params(std::move(params)),
          ret(std::move(ret)) {}

    std::optional<std::vector<StructInfo>> params;
    StructInfo ret;
};

// ---------------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------------

StructInfo objectSInfo();
StructInfo primSInfo(DataType dtype, PrimExpr value = nullptr);
StructInfo shapeSInfo(std::vector<PrimExpr> values);
StructInfo shapeSInfoNDim(int ndim);
StructInfo tensorSInfo(std::vector<PrimExpr> shape, DataType dtype);
StructInfo tensorSInfoNDim(int ndim, DataType dtype);
StructInfo tupleSInfo(std::vector<StructInfo> fields);
StructInfo callableSInfo(std::vector<StructInfo> params, StructInfo ret);
StructInfo opaqueCallableSInfo(StructInfo ret);

// ---------------------------------------------------------------------------
// Accessors / queries
// ---------------------------------------------------------------------------

const TensorSInfoNode* asTensor(const StructInfo& sinfo);
const ShapeSInfoNode* asShape(const StructInfo& sinfo);
const TupleSInfoNode* asTuple(const StructInfo& sinfo);
const CallableSInfoNode* asCallable(const StructInfo& sinfo);
const PrimSInfoNode* asPrim(const StructInfo& sinfo);

/** Structural equality; symbolic dims compare via structuralEqual. */
bool sInfoEqual(const StructInfo& a, const StructInfo& b);

/**
 * True when `value` can be passed where `target` is expected, possibly
 * requiring a runtime check (coarse-to-fine is allowed per §4.1; the
 * function boundary inserts lightweight shape checks).
 */
bool sInfoCompatible(const StructInfo& target, const StructInfo& value);

/** Renders e.g. `Tensor((n, 4), "f32")` as in the paper. */
std::string toString(const StructInfo& sinfo);

/** Collects the symbolic variables referenced by the annotation. */
void collectSymVars(const StructInfo& sinfo,
                    std::unordered_set<const VarNode*>* out);

/** Substitutes symbolic variables inside the annotation. */
StructInfo substituteSInfo(const StructInfo& sinfo, const VarMap& vmap);

} // namespace ir
} // namespace relax

#endif // RELAX_IR_STRUCT_INFO_H_
