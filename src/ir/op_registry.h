/**
 * @file
 * Registry of high-level tensor operators. Each operator registers a shape
 * deduction rule (§4.1), a legalization to a loop-level tensor program
 * (partial lowering, §4.6), and cost metadata used by baselines.
 *
 * The table lives in ir so both the deduction engine and the lowering
 * passes can consult it; the actual operator definitions are populated by
 * the op module.
 */
#ifndef RELAX_IR_OP_REGISTRY_H_
#define RELAX_IR_OP_REGISTRY_H_

#include <functional>
#include <string>
#include <unordered_map>

#include "ir/expr.h"
#include "tir/stmt.h"

namespace relax {
namespace ir {

/** Deduces the result annotation of a call from its argument annotations. */
using FInferStructInfo = std::function<StructInfo(const CallNode& call)>;

/**
 * Builds the loop-level tensor program implementing a call. The generated
 * function follows DPS: inputs then one output buffer. `name` is the
 * module-unique function name to use.
 */
using FLegalize =
    std::function<tir::PrimFunc(const CallNode& call, const std::string& name)>;

/** Metadata describing one registered operator. */
struct OpInfo
{
    std::string name;
    FInferStructInfo inferStructInfo;
    FLegalize legalize;
};

/** Global operator table. */
class OpRegistry
{
  public:
    static OpRegistry&
    global()
    {
        static OpRegistry instance;
        return instance;
    }

    /** Registers (or updates) an operator; returns the record for chaining. */
    OpInfo&
    registerOp(const std::string& name)
    {
        OpInfo& info = table_[name];
        info.name = name;
        return info;
    }

    /** Finds an operator record; null when not registered. */
    const OpInfo*
    find(const std::string& name) const
    {
        auto it = table_.find(name);
        return it == table_.end() ? nullptr : &it->second;
    }

  private:
    std::unordered_map<std::string, OpInfo> table_;
};

} // namespace ir
} // namespace relax

#endif // RELAX_IR_OP_REGISTRY_H_
