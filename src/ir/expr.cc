/**
 * @file
 * Factory helpers for graph-level expressions (makeVar ... callPacked),
 * operator-call predicates, and the text printer that renders modules
 * for tests and examples.
 */
#include "ir/expr.h"

#include <mutex>
#include <sstream>
#include <unordered_map>

namespace relax {
namespace ir {

Var
makeVar(const std::string& name, StructInfo sinfo, bool is_dataflow)
{
    auto v = std::make_shared<VarNode>(name, is_dataflow);
    v->setStructInfo(std::move(sinfo));
    return v;
}

Expr
makeConstant(NDArray data)
{
    auto node = std::make_shared<ConstantNode>(std::move(data));
    std::vector<PrimExpr> shape;
    for (int64_t dim : node->data.shape()) shape.push_back(intImm(dim));
    node->setStructInfo(tensorSInfo(std::move(shape), node->data.dtype()));
    return node;
}

Expr
makeShapeExpr(std::vector<PrimExpr> values)
{
    auto node = std::make_shared<ShapeExprNode>(std::move(values));
    node->setStructInfo(shapeSInfo(node->values));
    return node;
}

Expr
makePrimValue(PrimExpr value)
{
    auto node = std::make_shared<PrimValueNode>(std::move(value));
    node->setStructInfo(primSInfo(node->value->dtype(), node->value));
    return node;
}

Expr
makeTuple(std::vector<Expr> fields)
{
    auto node = std::make_shared<TupleNode>(std::move(fields));
    std::vector<StructInfo> field_infos;
    bool all_known = true;
    for (const auto& field : node->fields) {
        field_infos.push_back(field->structInfo());
        all_known &= field->structInfo() != nullptr;
    }
    if (all_known) node->setStructInfo(tupleSInfo(std::move(field_infos)));
    return node;
}

Expr
makeTupleGetItem(Expr tuple, int index)
{
    auto node = std::make_shared<TupleGetItemNode>(std::move(tuple), index);
    if (const auto* tuple_info = asTuple(node->tuple->structInfo())) {
        if (index >= 0 && index < (int)tuple_info->fields.size()) {
            node->setStructInfo(tuple_info->fields[index]);
        }
    }
    return node;
}

GlobalVar
makeGlobalVar(const std::string& name)
{
    return std::make_shared<GlobalVarNode>(name);
}

Expr
makeExternFunc(const std::string& name)
{
    auto node = std::make_shared<ExternFuncNode>(name);
    node->setStructInfo(opaqueCallableSInfo(objectSInfo()));
    return node;
}

Call
makeCall(Expr op, std::vector<Expr> args, Attrs attrs,
         std::vector<StructInfo> sinfo_args)
{
    return std::make_shared<CallNode>(std::move(op), std::move(args),
                                      std::move(attrs),
                                      std::move(sinfo_args));
}

Expr
makeIf(Expr cond, Expr then_branch, Expr else_branch)
{
    return std::make_shared<IfNode>(std::move(cond), std::move(then_branch),
                                    std::move(else_branch));
}

SeqExpr
makeSeqExpr(std::vector<BindingBlock> blocks, Expr body)
{
    auto node = std::make_shared<SeqExprNode>(std::move(blocks),
                                              std::move(body));
    if (node->body && node->body->structInfo()) {
        node->setStructInfo(node->body->structInfo());
    }
    return node;
}

Function
makeFunction(std::vector<Var> params, Expr body, StructInfo ret_sinfo)
{
    auto node = std::make_shared<FunctionNode>(std::move(params),
                                               std::move(body), ret_sinfo);
    std::vector<StructInfo> param_infos;
    for (const auto& p : node->params) param_infos.push_back(p->structInfo());
    node->setStructInfo(callableSInfo(std::move(param_infos),
                                      std::move(ret_sinfo)));
    return node;
}

Op
getOp(const std::string& name)
{
    static std::mutex mutex;
    static std::unordered_map<std::string, Op> registry;
    std::lock_guard<std::mutex> lock(mutex);
    auto [it, inserted] = registry.emplace(name, nullptr);
    if (inserted) it->second = std::make_shared<OpNode>(name);
    return it->second;
}

Call
callTIR(GlobalVar tir_func, std::vector<Expr> args, StructInfo out_sinfo,
        std::vector<Expr> sym_args)
{
    std::vector<Expr> all_args;
    all_args.push_back(std::move(tir_func));
    all_args.insert(all_args.end(), args.begin(), args.end());
    all_args.insert(all_args.end(), sym_args.begin(), sym_args.end());
    Attrs attrs;
    attrs["num_sym_args"] = (int64_t)sym_args.size();
    Call call = makeCall(getOp("relax.call_tir"), std::move(all_args),
                         std::move(attrs), {out_sinfo});
    call->setStructInfo(out_sinfo);
    return call;
}

Call
callDPSLibrary(const std::string& func_name, std::vector<Expr> args,
               StructInfo out_sinfo)
{
    std::vector<Expr> all_args;
    all_args.push_back(makeExternFunc(func_name));
    all_args.insert(all_args.end(), args.begin(), args.end());
    Call call = makeCall(getOp("relax.call_dps_library"),
                         std::move(all_args), {}, {out_sinfo});
    call->setStructInfo(out_sinfo);
    return call;
}

Call
callPacked(const std::string& func_name, std::vector<Expr> args,
           StructInfo out_sinfo)
{
    std::vector<Expr> all_args;
    all_args.push_back(makeExternFunc(func_name));
    all_args.insert(all_args.end(), args.begin(), args.end());
    Call call = makeCall(getOp("relax.call_packed"), std::move(all_args), {},
                         {out_sinfo});
    call->setStructInfo(out_sinfo);
    return call;
}

bool
isOpCall(const Expr& expr, const std::string& op_name)
{
    if (!expr || expr->kind() != RxKind::kCall) return false;
    const auto* call = static_cast<const CallNode*>(expr.get());
    if (!call->op || call->op->kind() != RxKind::kOp) return false;
    return static_cast<const OpNode*>(call->op.get())->name == op_name;
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

namespace {

void printExprInline(std::ostream& os, const Expr& expr);

void
printAttrValue(std::ostream& os, const AttrValue& value)
{
    if (std::holds_alternative<int64_t>(value)) {
        os << std::get<int64_t>(value);
    } else if (std::holds_alternative<double>(value)) {
        os << std::get<double>(value);
    } else if (std::holds_alternative<std::string>(value)) {
        os << "\"" << std::get<std::string>(value) << "\"";
    } else {
        os << "[";
        const auto& list = std::get<std::vector<int64_t>>(value);
        for (size_t i = 0; i < list.size(); ++i) {
            if (i) os << ", ";
            os << list[i];
        }
        os << "]";
    }
}

void
printCall(std::ostream& os, const CallNode* call)
{
    printExprInline(os, call->op);
    os << "(";
    bool first = true;
    for (const auto& arg : call->args) {
        if (!first) os << ", ";
        first = false;
        printExprInline(os, arg);
    }
    for (const auto& [key, value] : call->attrs) {
        if (key == "num_sym_args") continue;
        if (!first) os << ", ";
        first = false;
        os << key << "=";
        printAttrValue(os, value);
    }
    for (const auto& sinfo : call->sinfoArgs) {
        if (!first) os << ", ";
        first = false;
        os << toString(sinfo);
    }
    os << ")";
}

void
printExprInline(std::ostream& os, const Expr& expr)
{
    if (!expr) {
        os << "<null>";
        return;
    }
    switch (expr->kind()) {
      case RxKind::kVar:
        os << static_cast<const VarNode*>(expr.get())->name;
        return;
      case RxKind::kConstant: {
        const auto& data = static_cast<const ConstantNode*>(expr.get())->data;
        os << "const<";
        for (size_t i = 0; i < data.shape().size(); ++i) {
            if (i) os << "x";
            os << data.shape()[i];
        }
        os << ", " << data.dtype().toString() << ">";
        return;
      }
      case RxKind::kShapeExpr:
        os << "shape"
           << relax::toString(
                  static_cast<const ShapeExprNode*>(expr.get())->values);
        return;
      case RxKind::kPrimValue:
        os << relax::toString(
            static_cast<const PrimValueNode*>(expr.get())->value);
        return;
      case RxKind::kTuple: {
        os << "(";
        const auto* node = static_cast<const TupleNode*>(expr.get());
        for (size_t i = 0; i < node->fields.size(); ++i) {
            if (i) os << ", ";
            printExprInline(os, node->fields[i]);
        }
        os << ")";
        return;
      }
      case RxKind::kTupleGetItem: {
        const auto* node = static_cast<const TupleGetItemNode*>(expr.get());
        printExprInline(os, node->tuple);
        os << "[" << node->index << "]";
        return;
      }
      case RxKind::kOp: {
        std::string name = static_cast<const OpNode*>(expr.get())->name;
        // Strip the "relax." prefix for readability, as in the paper.
        if (name.rfind("relax.", 0) == 0) name = name.substr(6);
        os << name;
        return;
      }
      case RxKind::kGlobalVar:
        os << "@" << static_cast<const GlobalVarNode*>(expr.get())->name;
        return;
      case RxKind::kExternFunc:
        os << "\"" << static_cast<const ExternFuncNode*>(expr.get())->name
           << "\"";
        return;
      case RxKind::kCall:
        printCall(os, static_cast<const CallNode*>(expr.get()));
        return;
      default:
        os << "<expr>";
        return;
    }
}

void
printSeqBody(std::ostream& os, const Expr& body, int indent)
{
    std::string pad(indent * 2, ' ');
    if (body->kind() == RxKind::kSeqExpr) {
        const auto* seq = static_cast<const SeqExprNode*>(body.get());
        for (const auto& block : seq->blocks) {
            std::string inner_pad = pad;
            if (block->isDataflow) {
                os << pad << "with dataflow():\n";
                inner_pad += "  ";
            }
            for (const auto& binding : block->bindings) {
                os << inner_pad << binding.var->name;
                if (binding.var->structInfo()) {
                    os << ": " << toString(binding.var->structInfo());
                }
                os << " = ";
                if (binding.isMatchCast) {
                    os << "match_cast(";
                    printExprInline(os, binding.value);
                    os << ", " << toString(binding.castInfo) << ")";
                } else if (binding.value->kind() == RxKind::kIf) {
                    const auto* if_node =
                        static_cast<const IfNode*>(binding.value.get());
                    os << "if ";
                    printExprInline(os, if_node->cond);
                    os << " then ... else ...";
                } else {
                    printExprInline(os, binding.value);
                }
                os << "\n";
            }
        }
        os << pad << "return ";
        printExprInline(os, seq->body);
        os << "\n";
    } else {
        os << pad << "return ";
        printExprInline(os, body);
        os << "\n";
    }
}

} // namespace

std::string
toString(const Expr& expr, int indent)
{
    std::ostringstream os;
    if (expr && expr->kind() == RxKind::kFunction) {
        const auto* func = static_cast<const FunctionNode*>(expr.get());
        std::string pad(indent * 2, ' ');
        os << pad << "def fn(";
        for (size_t i = 0; i < func->params.size(); ++i) {
            if (i) os << ", ";
            os << func->params[i]->name << ": "
               << toString(func->params[i]->structInfo());
        }
        os << ")";
        if (func->retSInfo) os << " -> " << toString(func->retSInfo);
        os << ":\n";
        printSeqBody(os, func->body, indent + 1);
        return os.str();
    }
    printExprInline(os, expr);
    return os.str();
}

} // namespace ir
} // namespace relax
