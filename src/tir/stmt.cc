/**
 * @file
 * Text rendering of tensor programs — statements, scalar expressions,
 * and whole PrimFuncs — behind the Fig. 9-style listings printed by
 * tests and examples.
 */
#include "tir/stmt.h"

#include <sstream>

namespace relax {
namespace tir {

namespace {

std::string
indexString(const std::vector<PrimExpr>& indices)
{
    std::ostringstream os;
    os << "[";
    for (size_t i = 0; i < indices.size(); ++i) {
        if (i) os << ", ";
        os << relax::toString(indices[i]);
    }
    os << "]";
    return os.str();
}

/** Prints an expression, expanding BufferLoad nodes. */
std::string
exprString(const PrimExpr& expr);

void
printStmt(std::ostream& os, const Stmt& stmt, int indent)
{
    std::string pad(indent * 2, ' ');
    switch (stmt->kind()) {
      case StmtKind::kFor: {
        const auto* node = static_cast<const ForNode*>(stmt.get());
        os << pad << "for " << node->loopVar->name << " in range("
           << exprString(node->extent) << "):\n";
        printStmt(os, node->body, indent + 1);
        return;
      }
      case StmtKind::kBufferStore: {
        const auto* node = static_cast<const BufferStoreNode*>(stmt.get());
        os << pad << node->buffer->name << indexString(node->indices)
           << " = " << exprString(node->value) << "\n";
        return;
      }
      case StmtKind::kIfThenElse: {
        const auto* node = static_cast<const IfThenElseNode*>(stmt.get());
        os << pad << "if " << exprString(node->cond) << ":\n";
        printStmt(os, node->thenBody, indent + 1);
        if (node->elseBody) {
            os << pad << "else:\n";
            printStmt(os, node->elseBody, indent + 1);
        }
        return;
      }
      case StmtKind::kSeq: {
        for (const auto& s : static_cast<const SeqStmtNode*>(stmt.get())->seq) {
            printStmt(os, s, indent);
        }
        return;
      }
      case StmtKind::kAllocBuffer: {
        const auto* node = static_cast<const AllocBufferNode*>(stmt.get());
        os << pad << node->buffer->name << " = alloc_buffer("
           << relax::toString(node->buffer->shape) << ", \""
           << node->buffer->dtype.toString() << "\", \"" << node->scope
           << "\")\n";
        printStmt(os, node->body, indent);
        return;
      }
    }
}

std::string
exprString(const PrimExpr& expr)
{
    if (expr->kind() == ExprKind::kBufferLoad) {
        const auto* node = static_cast<const BufferLoadNode*>(expr.get());
        return node->buffer->name + indexString(node->indices);
    }
    // Recursively expand loads inside composite expressions by printing
    // through a rebuilt string; reuse the arith printer for the skeleton and
    // substitute loads. Simpler: handle the common shapes directly.
    switch (expr->kind()) {
      case ExprKind::kAdd:
      case ExprKind::kSub:
      case ExprKind::kMul:
      case ExprKind::kDiv:
      case ExprKind::kFloorDiv:
      case ExprKind::kFloorMod:
      case ExprKind::kMin:
      case ExprKind::kMax:
      case ExprKind::kEQ:
      case ExprKind::kNE:
      case ExprKind::kLT:
      case ExprKind::kLE:
      case ExprKind::kGT:
      case ExprKind::kGE:
      case ExprKind::kAnd:
      case ExprKind::kOr: {
        const auto* node = static_cast<const BinaryNode*>(expr.get());
        const char* sym = nullptr;
        switch (expr->kind()) {
          case ExprKind::kAdd: sym = " + "; break;
          case ExprKind::kSub: sym = " - "; break;
          case ExprKind::kMul: sym = " * "; break;
          case ExprKind::kDiv: sym = " / "; break;
          case ExprKind::kFloorDiv: sym = " // "; break;
          case ExprKind::kFloorMod: sym = " % "; break;
          case ExprKind::kMin: sym = nullptr; break;
          case ExprKind::kMax: sym = nullptr; break;
          case ExprKind::kEQ: sym = " == "; break;
          case ExprKind::kNE: sym = " != "; break;
          case ExprKind::kLT: sym = " < "; break;
          case ExprKind::kLE: sym = " <= "; break;
          case ExprKind::kGT: sym = " > "; break;
          case ExprKind::kGE: sym = " >= "; break;
          case ExprKind::kAnd: sym = " and "; break;
          case ExprKind::kOr: sym = " or "; break;
          default: break;
        }
        if (!sym) {
            return std::string(expr->kind() == ExprKind::kMin ? "min" : "max") +
                   "(" + exprString(node->a) + ", " + exprString(node->b) + ")";
        }
        return "(" + exprString(node->a) + sym + exprString(node->b) + ")";
      }
      case ExprKind::kSelect: {
        const auto* node = static_cast<const SelectNode*>(expr.get());
        return "select(" + exprString(node->cond) + ", " +
               exprString(node->trueValue) + ", " +
               exprString(node->falseValue) + ")";
      }
      case ExprKind::kCall: {
        const auto* node = static_cast<const CallNode*>(expr.get());
        std::string out = node->op + "(";
        for (size_t i = 0; i < node->args.size(); ++i) {
            if (i) out += ", ";
            out += exprString(node->args[i]);
        }
        return out + ")";
      }
      case ExprKind::kCast: {
        const auto* node = static_cast<const UnaryNode*>(expr.get());
        return expr->dtype().toString() + "(" + exprString(node->a) + ")";
      }
      case ExprKind::kNot:
        return "not " +
               exprString(static_cast<const UnaryNode*>(expr.get())->a);
      default:
        return relax::toString(expr);
    }
}

} // namespace

std::string
toString(const Stmt& stmt, int indent)
{
    std::ostringstream os;
    printStmt(os, stmt, indent);
    return os.str();
}

std::string
toString(const PrimFunc& func)
{
    std::ostringstream os;
    os << "@tensorir_function\ndef " << func->name << "(";
    bool first = true;
    for (const auto& buffer : func->params) {
        if (!first) os << ", ";
        first = false;
        os << buffer->name << ": Buffer(" << relax::toString(buffer->shape)
           << ", \"" << buffer->dtype.toString() << "\")";
    }
    for (const auto& v : func->symParams) {
        if (!first) os << ", ";
        first = false;
        os << v->name << ": i64";
    }
    os << "):\n";
    for (const auto& [key, value] : func->attrs) {
        os << "  func_attr(\"" << key << "\", \"" << value << "\")\n";
    }
    printStmt(os, func->body, 1);
    return os.str();
}

} // namespace tir
} // namespace relax
