/**
 * @file
 * Analyses over tensor programs: the compute-pattern classification of
 * Algorithm 1 (the "analysis feedback" that replaces manual operator
 * annotations, §4.2), workspace detection (§4.4), and symbolic FLOP/byte
 * cost estimation used by the simulated device layer.
 */
#ifndef RELAX_TIR_ANALYSIS_H_
#define RELAX_TIR_ANALYSIS_H_

#include <optional>
#include <string>

#include "tir/stmt.h"
#include "tir/transform.h"

namespace relax {
namespace tir {

/**
 * The pattern kinds of Algorithm 1, ordered by fusion permissiveness.
 */
enum class PatternKind {
    kElementWise,
    kBroadcast,
    kInjective,
    kReduction,
    kOutputEwiseFusible,
    kOpaque
};

/** Human-readable name matching the paper ("ElementWise", ...). */
std::string patternKindName(PatternKind kind);

/** Parses the textual name back; throws IRError on unknown names. */
PatternKind patternKindFromName(const std::string& name);

/**
 * Classifies a tensor program per Algorithm 1 of the paper.
 *
 * Reads of the output buffer itself (reduction self-accumulation) are not
 * classified; the fused-multiply-add and reduction-loop checks handle those
 * cases, yielding OutputEwiseFusible for matmul-like programs and Reduction
 * for general reductions.
 */
PatternKind analyzePatternKind(const PrimFunc& func);

/** Attribute key under which FuseOps expects the pattern annotation. */
inline constexpr const char* kComputePatternAttr = "compute_pattern";

/**
 * Detects a device-memory workspace allocation inside the tensor program
 * (e.g. the Stream-K split-K accumulator of Fig. 11). Returns the first
 * "global"-scope allocation, if any.
 */
std::optional<BufferAllocation> findGlobalWorkspace(const PrimFunc& func);

/** Symbolic cost estimate of one tensor-program invocation. */
struct TensorProgramCost
{
    /** Scalar arithmetic operations executed (symbolic). */
    PrimExpr flops;
    /** Bytes moved to/from device memory assuming perfect on-chip reuse:
     *  the footprint of every distinct buffer touched (roofline model). */
    PrimExpr bytes;
};

/** Computes the symbolic cost of the program body. */
TensorProgramCost analyzeCost(const PrimFunc& func);

} // namespace tir
} // namespace relax

#endif // RELAX_TIR_ANALYSIS_H_
