/**
 * @file
 * Buffers: named, typed, symbolically-shaped memory regions operated on by
 * loop-level tensor programs (the paper's `Buffer(("n", 512), "f32")`).
 */
#ifndef RELAX_TIR_BUFFER_H_
#define RELAX_TIR_BUFFER_H_

#include <memory>
#include <string>
#include <vector>

#include "arith/expr.h"

namespace relax {
namespace tir {

/**
 * A buffer declaration. Identity is by node address; the same buffer object
 * is shared between its declaration (function parameter or allocation) and
 * every load/store that touches it.
 */
class BufferNode
{
  public:
    BufferNode(std::string name, DataType dtype, std::vector<PrimExpr> shape)
        : name(std::move(name)), dtype(dtype), shape(std::move(shape)) {}

    std::string name;
    DataType dtype;
    std::vector<PrimExpr> shape;

    /** Number of elements as a symbolic expression. */
    PrimExpr
    numel() const
    {
        PrimExpr total = intImm(1);
        for (const auto& dim : shape) total = mul(total, dim);
        return total;
    }

    /** Size in bytes as a symbolic expression. */
    PrimExpr
    sizeBytes() const
    {
        return mul(numel(), intImm(dtype.bytes()));
    }
};

using Buffer = std::shared_ptr<const BufferNode>;

/** Creates a buffer with the given symbolic shape. */
inline Buffer
makeBuffer(const std::string& name, DataType dtype,
           std::vector<PrimExpr> shape)
{
    return std::make_shared<BufferNode>(name, dtype, std::move(shape));
}

} // namespace tir
} // namespace relax

#endif // RELAX_TIR_BUFFER_H_
