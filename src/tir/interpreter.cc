/**
 * @file
 * The reference interpreter: a direct recursive evaluator over
 * statements and scalar expressions (all dtypes evaluated as double;
 * Euclidean floordiv), with an environment binding buffers and the
 * explicitly-passed symbolic parameters.
 */
#include "tir/interpreter.h"

#include <cmath>
#include <functional>

#include "support/error.h"

namespace relax {
namespace tir {

namespace {

/** Execution environment: scalar bindings plus buffer storage. */
struct Env
{
    VarBinding scalars;
    std::unordered_map<const BufferNode*, NDArray> buffers;
};

double evalExpr(const PrimExpr& expr, Env& env);

int64_t
evalIndex(const PrimExpr& expr, Env& env)
{
    return (int64_t)evalExpr(expr, env);
}

double
evalIntrinsic(const std::string& op, const std::vector<double>& args)
{
    if (op == "exp") return std::exp(args[0]);
    if (op == "log") return std::log(args[0]);
    if (op == "sqrt") return std::sqrt(args[0]);
    if (op == "rsqrt") return 1.0 / std::sqrt(args[0]);
    if (op == "erf") return std::erf(args[0]);
    if (op == "tanh") return std::tanh(args[0]);
    if (op == "sigmoid") return 1.0 / (1.0 + std::exp(-args[0]));
    if (op == "abs") return std::fabs(args[0]);
    if (op == "pow") return std::pow(args[0], args[1]);
    if (op == "pow2") return (double)(int64_t(1) << (int64_t)args[0]);
    if (op == "sin") return std::sin(args[0]);
    if (op == "cos") return std::cos(args[0]);
    RELAX_THROW(RuntimeError) << "unknown intrinsic: " << op;
}

int64_t
floordivImpl(int64_t a, int64_t b)
{
    RELAX_ICHECK(b != 0) << "floordiv by zero";
    int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
    return q;
}

double
evalExpr(const PrimExpr& expr, Env& env)
{
    switch (expr->kind()) {
      case ExprKind::kIntImm:
        return (double)static_cast<const IntImmNode*>(expr.get())->value;
      case ExprKind::kFloatImm:
        return static_cast<const FloatImmNode*>(expr.get())->value;
      case ExprKind::kVar: {
        const auto* v = static_cast<const VarNode*>(expr.get());
        auto it = env.scalars.find(v);
        if (it == env.scalars.end()) {
            RELAX_THROW(RuntimeError) << "unbound variable " << v->name;
        }
        return (double)it->second;
      }
      case ExprKind::kBufferLoad: {
        const auto* node = static_cast<const BufferLoadNode*>(expr.get());
        auto it = env.buffers.find(node->buffer.get());
        if (it == env.buffers.end()) {
            RELAX_THROW(RuntimeError)
                << "unbound buffer " << node->buffer->name;
        }
        std::vector<int64_t> indices;
        indices.reserve(node->indices.size());
        for (const auto& index : node->indices) {
            indices.push_back(evalIndex(index, env));
        }
        return it->second.at(it->second.flatten(indices));
      }
      case ExprKind::kNot:
        return evalExpr(static_cast<const UnaryNode*>(expr.get())->a, env) ==
                       0.0
                   ? 1.0
                   : 0.0;
      case ExprKind::kCast: {
        double value =
            evalExpr(static_cast<const UnaryNode*>(expr.get())->a, env);
        if (expr->dtype().isInt() || expr->dtype().isUInt()) {
            return (double)(int64_t)value;
        }
        return value;
      }
      case ExprKind::kSelect: {
        const auto* node = static_cast<const SelectNode*>(expr.get());
        return evalExpr(node->cond, env) != 0.0
                   ? evalExpr(node->trueValue, env)
                   : evalExpr(node->falseValue, env);
      }
      case ExprKind::kCall: {
        const auto* node = static_cast<const CallNode*>(expr.get());
        std::vector<double> args;
        args.reserve(node->args.size());
        for (const auto& arg : node->args) {
            args.push_back(evalExpr(arg, env));
        }
        return evalIntrinsic(node->op, args);
      }
      default: {
        const auto* node = static_cast<const BinaryNode*>(expr.get());
        double a = evalExpr(node->a, env);
        double b = evalExpr(node->b, env);
        bool integer = node->a->dtype().isInt() || node->a->dtype().isUInt();
        switch (expr->kind()) {
          case ExprKind::kAdd: return a + b;
          case ExprKind::kSub: return a - b;
          case ExprKind::kMul: return a * b;
          case ExprKind::kDiv: return a / b;
          case ExprKind::kFloorDiv:
            if (integer) {
                return (double)floordivImpl((int64_t)a, (int64_t)b);
            }
            return std::floor(a / b);
          case ExprKind::kFloorMod:
            if (integer) {
                int64_t ia = (int64_t)a, ib = (int64_t)b;
                return (double)(ia - floordivImpl(ia, ib) * ib);
            }
            return a - std::floor(a / b) * b;
          case ExprKind::kMin: return std::min(a, b);
          case ExprKind::kMax: return std::max(a, b);
          case ExprKind::kEQ: return a == b;
          case ExprKind::kNE: return a != b;
          case ExprKind::kLT: return a < b;
          case ExprKind::kLE: return a <= b;
          case ExprKind::kGT: return a > b;
          case ExprKind::kGE: return a >= b;
          case ExprKind::kAnd: return (a != 0.0) && (b != 0.0);
          case ExprKind::kOr: return (a != 0.0) || (b != 0.0);
          default:
            RELAX_ICHECK(false) << "unexpected expr kind";
            return 0.0;
        }
      }
    }
}

void
execStmt(const Stmt& stmt, Env& env)
{
    switch (stmt->kind()) {
      case StmtKind::kFor: {
        const auto* node = static_cast<const ForNode*>(stmt.get());
        int64_t extent = evalIndex(node->extent, env);
        for (int64_t i = 0; i < extent; ++i) {
            env.scalars[node->loopVar.get()] = i;
            execStmt(node->body, env);
        }
        env.scalars.erase(node->loopVar.get());
        return;
      }
      case StmtKind::kBufferStore: {
        const auto* node = static_cast<const BufferStoreNode*>(stmt.get());
        auto it = env.buffers.find(node->buffer.get());
        if (it == env.buffers.end()) {
            RELAX_THROW(RuntimeError)
                << "unbound buffer " << node->buffer->name;
        }
        std::vector<int64_t> indices;
        indices.reserve(node->indices.size());
        for (const auto& index : node->indices) {
            indices.push_back(evalIndex(index, env));
        }
        it->second.set(it->second.flatten(indices),
                       evalExpr(node->value, env));
        return;
      }
      case StmtKind::kIfThenElse: {
        const auto* node = static_cast<const IfThenElseNode*>(stmt.get());
        if (evalExpr(node->cond, env) != 0.0) {
            execStmt(node->thenBody, env);
        } else if (node->elseBody) {
            execStmt(node->elseBody, env);
        }
        return;
      }
      case StmtKind::kSeq:
        for (const auto& s : static_cast<const SeqStmtNode*>(stmt.get())->seq) {
            execStmt(s, env);
        }
        return;
      case StmtKind::kAllocBuffer: {
        const auto* node = static_cast<const AllocBufferNode*>(stmt.get());
        std::vector<int64_t> shape;
        for (const auto& dim : node->buffer->shape) {
            shape.push_back(evalInt(dim, env.scalars));
        }
        env.buffers[node->buffer.get()] =
            NDArray::zeros(shape, node->buffer->dtype);
        execStmt(node->body, env);
        return;
      }
    }
}

} // namespace

VarBinding
bindShapes(const PrimFunc& func, const std::vector<NDArray>& args,
           const std::vector<int64_t>& sym_args)
{
    if (args.size() != func->params.size()) {
        RELAX_THROW(ShapeError)
            << func->name << ": expected " << func->params.size()
            << " buffer arguments, got " << args.size();
    }
    if (sym_args.size() != func->symParams.size()) {
        RELAX_THROW(ShapeError)
            << func->name << ": expected " << func->symParams.size()
            << " symbolic arguments, got " << sym_args.size();
    }
    VarBinding binding;
    for (size_t i = 0; i < func->symParams.size(); ++i) {
        binding[func->symParams[i].get()] = sym_args[i];
    }
    // Two rounds: bind bare vars first, then verify composite expressions.
    for (size_t i = 0; i < args.size(); ++i) {
        const Buffer& buffer = func->params[i];
        if (buffer->shape.size() != args[i].shape().size()) {
            RELAX_THROW(ShapeError)
                << func->name << ": rank mismatch for " << buffer->name;
        }
        for (size_t d = 0; d < buffer->shape.size(); ++d) {
            const PrimExpr& dim = buffer->shape[d];
            int64_t concrete = args[i].shape()[d];
            if (dim->kind() == ExprKind::kVar) {
                const auto* v = static_cast<const VarNode*>(dim.get());
                auto [it, inserted] = binding.emplace(v, concrete);
                if (!inserted && it->second != concrete) {
                    RELAX_THROW(ShapeError)
                        << func->name << ": inconsistent binding for "
                        << v->name << ": " << it->second << " vs "
                        << concrete;
                }
            }
        }
    }
    for (size_t i = 0; i < args.size(); ++i) {
        const Buffer& buffer = func->params[i];
        for (size_t d = 0; d < buffer->shape.size(); ++d) {
            auto expected = tryEvalInt(buffer->shape[d], binding);
            if (!expected) {
                RELAX_THROW(ShapeError)
                    << func->name << ": cannot resolve dim "
                    << relax::toString(buffer->shape[d]) << " of "
                    << buffer->name;
            }
            if (*expected != args[i].shape()[d]) {
                RELAX_THROW(ShapeError)
                    << func->name << ": shape check failed for "
                    << buffer->name << " dim " << d << ": expected "
                    << *expected << ", got " << args[i].shape()[d];
            }
        }
    }
    return binding;
}

void
run(const PrimFunc& func, const std::vector<NDArray>& args,
    const std::vector<int64_t>& sym_args)
{
    Env env;
    env.scalars = bindShapes(func, args, sym_args);
    for (size_t i = 0; i < args.size(); ++i) {
        env.buffers[func->params[i].get()] = args[i];
    }
    execStmt(func->body, env);
}

} // namespace tir
} // namespace relax
