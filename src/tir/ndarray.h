/**
 * @file
 * NDArray: the runtime tensor container shared by the TIR interpreter, the
 * VM and the simulated device layer.
 *
 * Two modes exist:
 *  - data mode: a real buffer of scalars (stored as doubles, exact for all
 *    integer values this system manipulates: token ids, packed u32 words,
 *    float16/float32 payloads), used by tests and examples;
 *  - metadata-only mode: shape/dtype but no storage, used by the benchmark
 *    harness to execute paper-scale models (8B parameters) on the simulated
 *    device clock without materializing gigabytes.
 */
#ifndef RELAX_TIR_NDARRAY_H_
#define RELAX_TIR_NDARRAY_H_

#include <cstdint>
#include <memory>
#include <numeric>
#include <vector>

#include "arith/dtype.h"
#include "support/error.h"

namespace relax {

/** Runtime n-dimensional array. Copies share the underlying storage. */
class NDArray
{
  public:
    NDArray() = default;

    /** Allocates a zero-initialized array with real storage. */
    static NDArray
    zeros(std::vector<int64_t> shape, DataType dtype)
    {
        NDArray array;
        array.shape_ = std::move(shape);
        array.dtype_ = dtype;
        array.data_ =
            std::make_shared<std::vector<double>>(array.numel(), 0.0);
        return array;
    }

    /** Creates an array wrapping the given values (row-major). */
    static NDArray
    fromVector(std::vector<int64_t> shape, DataType dtype,
               std::vector<double> values)
    {
        NDArray array;
        array.shape_ = std::move(shape);
        array.dtype_ = dtype;
        RELAX_ICHECK((int64_t)values.size() == array.numel())
            << "value count mismatch";
        array.data_ =
            std::make_shared<std::vector<double>>(std::move(values));
        return array;
    }

    /** Creates a metadata-only array (no storage). */
    static NDArray
    metaOnly(std::vector<int64_t> shape, DataType dtype)
    {
        NDArray array;
        array.shape_ = std::move(shape);
        array.dtype_ = dtype;
        return array;
    }

    const std::vector<int64_t>& shape() const { return shape_; }
    DataType dtype() const { return dtype_; }
    bool hasData() const { return data_ != nullptr; }
    bool defined() const { return data_ != nullptr || !shape_.empty(); }

    int64_t
    numel() const
    {
        return std::accumulate(shape_.begin(), shape_.end(), int64_t(1),
                               std::multiplies<int64_t>());
    }

    /** Allocation size in bytes (sub-byte dtypes round up per element). */
    int64_t sizeBytes() const { return numel() * dtype_.bytes(); }

    double
    at(int64_t flat_index) const
    {
        RELAX_ICHECK(data_) << "metadata-only NDArray has no data";
        return (*data_)[flat_index];
    }

    void
    set(int64_t flat_index, double value)
    {
        RELAX_ICHECK(data_) << "metadata-only NDArray has no data";
        (*data_)[flat_index] = value;
    }

    /** Row-major flat index from multi-dimensional indices. */
    int64_t
    flatten(const std::vector<int64_t>& indices) const
    {
        RELAX_ICHECK(indices.size() == shape_.size()) << "rank mismatch";
        int64_t flat = 0;
        for (size_t i = 0; i < indices.size(); ++i) {
            RELAX_ICHECK(indices[i] >= 0 && indices[i] < shape_[i])
                << "index " << indices[i] << " out of bounds for dim "
                << shape_[i];
            flat = flat * shape_[i] + indices[i];
        }
        return flat;
    }

    std::vector<double>&
    data()
    {
        RELAX_ICHECK(data_) << "metadata-only NDArray has no data";
        return *data_;
    }

    const std::vector<double>&
    data() const
    {
        RELAX_ICHECK(data_) << "metadata-only NDArray has no data";
        return *data_;
    }

  private:
    std::vector<int64_t> shape_;
    DataType dtype_ = DataType::f32();
    std::shared_ptr<std::vector<double>> data_;
};

} // namespace relax

#endif // RELAX_TIR_NDARRAY_H_
