/**
 * @file
 * Convenience builders for loop nests, mirroring the paper's
 * `for i, j, k in grid(n, 256, 128)` notation.
 */
#ifndef RELAX_TIR_BUILDER_H_
#define RELAX_TIR_BUILDER_H_

#include <vector>

#include "tir/stmt.h"

namespace relax {
namespace tir {

/** Wraps `body` in nested loops, outermost first. */
inline Stmt
nestLoops(const std::vector<Var>& loop_vars,
          const std::vector<PrimExpr>& extents, Stmt body)
{
    RELAX_ICHECK(loop_vars.size() == extents.size())
        << "loop vars / extents mismatch";
    for (size_t i = loop_vars.size(); i-- > 0;) {
        body = makeFor(loop_vars[i], extents[i], std::move(body));
    }
    return body;
}

/** Creates fresh loop variables i0, i1, ... (or custom names). */
inline std::vector<Var>
makeLoopVars(size_t count, const std::string& prefix = "i")
{
    std::vector<Var> vars;
    vars.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        vars.push_back(var(prefix + std::to_string(i)));
    }
    return vars;
}

/** Index expressions view of loop variables. */
inline std::vector<PrimExpr>
asExprs(const std::vector<Var>& vars)
{
    return std::vector<PrimExpr>(vars.begin(), vars.end());
}

} // namespace tir
} // namespace relax

#endif // RELAX_TIR_BUILDER_H_
