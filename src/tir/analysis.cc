/**
 * @file
 * Loop-level analyses: compute pattern classification (Alg. 1 — index
 * predicates such as isBroadcast / isInjective over loop nests),
 * global-workspace discovery for lifting, and analyzeCost, which counts
 * flops and bytes symbolically for the roofline model.
 */
#include "tir/analysis.h"

#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "arith/analyzer.h"

#include "arith/structural.h"

namespace relax {
namespace tir {

std::string
patternKindName(PatternKind kind)
{
    switch (kind) {
      case PatternKind::kElementWise: return "ElementWise";
      case PatternKind::kBroadcast: return "Broadcast";
      case PatternKind::kInjective: return "Injective";
      case PatternKind::kReduction: return "Reduction";
      case PatternKind::kOutputEwiseFusible: return "OutputEwiseFusible";
      case PatternKind::kOpaque: return "Opaque";
    }
    return "Opaque";
}

PatternKind
patternKindFromName(const std::string& name)
{
    if (name == "ElementWise") return PatternKind::kElementWise;
    if (name == "Broadcast") return PatternKind::kBroadcast;
    if (name == "Injective") return PatternKind::kInjective;
    if (name == "Reduction") return PatternKind::kReduction;
    if (name == "OutputEwiseFusible") return PatternKind::kOutputEwiseFusible;
    if (name == "Opaque") return PatternKind::kOpaque;
    RELAX_THROW(IRError) << "unknown pattern kind: " << name;
}

namespace {

bool
sameIndices(const std::vector<PrimExpr>& a, const std::vector<PrimExpr>& b)
{
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (!structuralEqual(a[i], b[i])) return false;
    }
    return true;
}

bool
allVarIndices(const std::vector<PrimExpr>& indices)
{
    for (const auto& index : indices) {
        if (index->kind() != ExprKind::kVar &&
            index->kind() != ExprKind::kIntImm) {
            return false;
        }
    }
    return true;
}

/** Read is an (ordered) subsequence of the write indices, or all-constant. */
bool
isBroadcast(const std::vector<PrimExpr>& r_idx,
            const std::vector<PrimExpr>& w_idx)
{
    if (!allVarIndices(r_idx)) return false;
    if (r_idx.size() >= w_idx.size() && !r_idx.empty()) {
        // Scalars broadcast too; an equal-rank tuple cannot (that is EW or
        // injective territory).
        bool all_const = true;
        for (const auto& index : r_idx) {
            all_const &= index->kind() == ExprKind::kIntImm;
        }
        return all_const;
    }
    size_t wi = 0;
    for (const auto& index : r_idx) {
        if (index->kind() == ExprKind::kIntImm) continue;
        bool matched = false;
        while (wi < w_idx.size()) {
            if (structuralEqual(index, w_idx[wi])) {
                matched = true;
                ++wi;
                break;
            }
            ++wi;
        }
        if (!matched) return false;
    }
    return true;
}

/** Read indices are arbitrary functions of write-side variables only. */
bool
isInjective(const std::vector<PrimExpr>& r_idx,
            const std::vector<PrimExpr>& w_idx)
{
    std::unordered_set<const VarNode*> w_vars;
    for (const auto& index : w_idx) collectVars(index, &w_vars);
    std::unordered_set<const VarNode*> r_vars;
    for (const auto& index : r_idx) collectVars(index, &r_vars);
    for (const auto* v : r_vars) {
        if (!w_vars.count(v)) return false;
    }
    return true;
}

/** Matches Y[idx] = Y[idx] + a * b accumulation (matmul, convolution). */
bool
isFuseMultiplyAdd(const Stmt& body)
{
    AccessSet accesses = collectAccesses(body);
    std::function<bool(const PrimExpr&)> containsMul =
        [&](const PrimExpr& e) -> bool {
        if (!e) return false;
        if (e->kind() == ExprKind::kMul) return true;
        switch (e->kind()) {
          case ExprKind::kAdd:
          case ExprKind::kSub: {
            const auto* node = static_cast<const BinaryNode*>(e.get());
            return containsMul(node->a) || containsMul(node->b);
          }
          case ExprKind::kCast:
            return containsMul(static_cast<const UnaryNode*>(e.get())->a);
          default:
            return false;
        }
    };

    bool found = false;
    std::function<void(const Stmt&)> walk = [&](const Stmt& s) {
        if (found) return;
        switch (s->kind()) {
          case StmtKind::kFor:
            walk(static_cast<const ForNode*>(s.get())->body);
            return;
          case StmtKind::kSeq:
            for (const auto& sub :
                 static_cast<const SeqStmtNode*>(s.get())->seq) {
                walk(sub);
            }
            return;
          case StmtKind::kIfThenElse: {
            const auto* node = static_cast<const IfThenElseNode*>(s.get());
            walk(node->thenBody);
            if (node->elseBody) walk(node->elseBody);
            return;
          }
          case StmtKind::kAllocBuffer:
            walk(static_cast<const AllocBufferNode*>(s.get())->body);
            return;
          case StmtKind::kBufferStore: {
            const auto* store =
                static_cast<const BufferStoreNode*>(s.get());
            if (store->value->kind() != ExprKind::kAdd) return;
            const auto* sum =
                static_cast<const BinaryNode*>(store->value.get());
            auto isSelfLoad = [&](const PrimExpr& e) {
                if (e->kind() != ExprKind::kBufferLoad) return false;
                const auto* load =
                    static_cast<const BufferLoadNode*>(e.get());
                return load->buffer.get() == store->buffer.get() &&
                       sameIndices(load->indices, store->indices);
            };
            if ((isSelfLoad(sum->a) && containsMul(sum->b)) ||
                (isSelfLoad(sum->b) && containsMul(sum->a))) {
                found = true;
            }
            return;
          }
        }
    };
    walk(body);
    return found;
}

bool
hasReductionLoop(const PrimFunc& func, const AccessSet& accesses)
{
    std::unordered_set<const VarNode*> write_vars;
    for (const auto& write : accesses.writes) {
        for (const auto& index : write.indices) {
            collectVars(index, &write_vars);
        }
    }
    for (const auto& v : collectLoopVars(func->body)) {
        if (!write_vars.count(v.get())) return true;
    }
    return false;
}

} // namespace

PatternKind
analyzePatternKind(const PrimFunc& func)
{
    AccessSet accesses = collectAccesses(func->body);
    if (accesses.writes.empty()) return PatternKind::kOpaque;

    // Line 4: every write must target the same indices (the init store and
    // the accumulating store of a reduction share them).
    std::unordered_set<const BufferNode*> written;
    const auto& w_idx = accesses.writes.front().indices;
    for (const auto& write : accesses.writes) {
        written.insert(write.buffer.get());
        if (!sameIndices(write.indices, w_idx)) return PatternKind::kOpaque;
    }
    if (written.size() > 1) return PatternKind::kOpaque;

    PatternKind kind = PatternKind::kOpaque;
    bool has_elem_wise = false;
    for (const auto& read : accesses.reads) {
        if (written.count(read.buffer.get())) {
            continue; // self-accumulation read; handled by the FMA check
        }
        if (sameIndices(read.indices, w_idx)) {
            kind = PatternKind::kElementWise;
            has_elem_wise = true;
        } else if (isBroadcast(read.indices, w_idx)) {
            kind = PatternKind::kBroadcast;
        } else if (isInjective(read.indices, w_idx)) {
            kind = PatternKind::kInjective;
        }
    }

    if (kind == PatternKind::kBroadcast && has_elem_wise) {
        kind = PatternKind::kElementWise;
    } else if (kind == PatternKind::kOpaque && isFuseMultiplyAdd(func->body) &&
               hasReductionLoop(func, accesses)) {
        kind = PatternKind::kOutputEwiseFusible;
    } else if (kind == PatternKind::kOpaque &&
               hasReductionLoop(func, accesses)) {
        kind = PatternKind::kReduction;
    } else if (kind != PatternKind::kOpaque &&
               hasReductionLoop(func, accesses)) {
        // A classified read pattern combined with a reduction loop (e.g.
        // softmax-style programs) is still a reduction overall.
        kind = PatternKind::kReduction;
    }
    return kind;
}

std::optional<BufferAllocation>
findGlobalWorkspace(const PrimFunc& func)
{
    for (const auto& allocation : collectAllocations(func->body)) {
        if (allocation.scope == "global") return allocation;
    }
    return std::nullopt;
}

namespace {

/** Counts scalar arithmetic operations in an expression. */
int64_t
countOps(const PrimExpr& expr)
{
    if (!expr) return 0;
    switch (expr->kind()) {
      case ExprKind::kIntImm:
      case ExprKind::kFloatImm:
      case ExprKind::kVar:
        return 0;
      case ExprKind::kBufferLoad: {
        const auto* node = static_cast<const BufferLoadNode*>(expr.get());
        int64_t total = 0;
        for (const auto& index : node->indices) total += countOps(index);
        return total;
      }
      case ExprKind::kNot:
      case ExprKind::kCast:
        return 1 + countOps(static_cast<const UnaryNode*>(expr.get())->a);
      case ExprKind::kSelect: {
        const auto* node = static_cast<const SelectNode*>(expr.get());
        return 1 + countOps(node->cond) + countOps(node->trueValue) +
               countOps(node->falseValue);
      }
      case ExprKind::kCall: {
        const auto* node = static_cast<const CallNode*>(expr.get());
        // Bit intrinsics are single-cycle; transcendentals cost several.
        int64_t total = node->op == "pow2" ? 1 : 4;
        for (const auto& arg : node->args) total += countOps(arg);
        return total;
      }
      default: {
        const auto* node = static_cast<const BinaryNode*>(expr.get());
        return 1 + countOps(node->a) + countOps(node->b);
      }
    }
}

void
accumulateFlops(const Stmt& stmt, PrimExpr iteration_count, PrimExpr* flops)
{
    switch (stmt->kind()) {
      case StmtKind::kFor: {
        const auto* node = static_cast<const ForNode*>(stmt.get());
        accumulateFlops(node->body, mul(iteration_count, node->extent),
                        flops);
        return;
      }
      case StmtKind::kBufferStore: {
        const auto* node = static_cast<const BufferStoreNode*>(stmt.get());
        int64_t per_iter = countOps(node->value);
        if (per_iter == 0) per_iter = 1; // a store still costs one op
        *flops = add(*flops, mul(iteration_count, intImm(per_iter)));
        return;
      }
      case StmtKind::kIfThenElse: {
        const auto* node = static_cast<const IfThenElseNode*>(stmt.get());
        accumulateFlops(node->thenBody, iteration_count, flops);
        if (node->elseBody) {
            accumulateFlops(node->elseBody, iteration_count, flops);
        }
        return;
      }
      case StmtKind::kSeq:
        for (const auto& s :
             static_cast<const SeqStmtNode*>(stmt.get())->seq) {
            accumulateFlops(s, iteration_count, flops);
        }
        return;
      case StmtKind::kAllocBuffer:
        accumulateFlops(
            static_cast<const AllocBufferNode*>(stmt.get())->body,
            iteration_count, flops);
        return;
    }
}

} // namespace

namespace {

/** Map from loop variables to their extents. */
using ExtentMap = std::unordered_map<const VarNode*, PrimExpr>;

void
collectExtents(const Stmt& stmt, ExtentMap* out)
{
    switch (stmt->kind()) {
      case StmtKind::kFor: {
        const auto* node = static_cast<const ForNode*>(stmt.get());
        (*out)[node->loopVar.get()] = node->extent;
        collectExtents(node->body, out);
        return;
      }
      case StmtKind::kSeq:
        for (const auto& s :
             static_cast<const SeqStmtNode*>(stmt.get())->seq) {
            collectExtents(s, out);
        }
        return;
      case StmtKind::kIfThenElse: {
        const auto* node = static_cast<const IfThenElseNode*>(stmt.get());
        collectExtents(node->thenBody, out);
        if (node->elseBody) collectExtents(node->elseBody, out);
        return;
      }
      case StmtKind::kAllocBuffer:
        collectExtents(
            static_cast<const AllocBufferNode*>(stmt.get())->body, out);
        return;
      default:
        return;
    }
}

/**
 * Upper bound on the number of distinct values an index expression takes
 * over the loop nest: the footprint a gather/strided access actually
 * touches (e.g. data[k, j // 8] reads n/8 distinct words per row, and an
 * embedding table is read only at the looked-up rows).
 */
PrimExpr
rangeCount(const PrimExpr& expr, const ExtentMap& extents)
{
    switch (expr->kind()) {
      case ExprKind::kIntImm:
      case ExprKind::kFloatImm:
        return intImm(1);
      case ExprKind::kVar: {
        auto it = extents.find(static_cast<const VarNode*>(expr.get()));
        // Non-loop scalars (symbolic shape params) are constant per call.
        return it == extents.end() ? intImm(1) : it->second;
      }
      case ExprKind::kCast:
        return rangeCount(static_cast<const UnaryNode*>(expr.get())->a,
                          extents);
      case ExprKind::kAdd:
      case ExprKind::kSub:
      case ExprKind::kMul: {
        const auto* node = static_cast<const BinaryNode*>(expr.get());
        return mul(rangeCount(node->a, extents),
                   rangeCount(node->b, extents));
      }
      case ExprKind::kFloorDiv: {
        const auto* node = static_cast<const BinaryNode*>(expr.get());
        if (const int64_t* c = asIntImm(node->b); c && *c > 0) {
            return add(floordiv(sub(rangeCount(node->a, extents),
                                    intImm(1)),
                                intImm(*c)),
                       intImm(1));
        }
        return rangeCount(node->a, extents);
      }
      case ExprKind::kFloorMod: {
        const auto* node = static_cast<const BinaryNode*>(expr.get());
        if (const int64_t* c = asIntImm(node->b); c && *c > 0) {
            return minExpr(rangeCount(node->a, extents), intImm(*c));
        }
        return rangeCount(node->a, extents);
      }
      case ExprKind::kSelect: {
        const auto* node = static_cast<const SelectNode*>(expr.get());
        return maxExpr(rangeCount(node->trueValue, extents),
                       rangeCount(node->falseValue, extents));
      }
      case ExprKind::kBufferLoad: {
        const auto* node = static_cast<const BufferLoadNode*>(expr.get());
        PrimExpr count = intImm(1);
        for (const auto& index : node->indices) {
            count = mul(count, rangeCount(index, extents));
        }
        return count;
      }
      default: {
        // Conservative: product of extents of every var occurring inside.
        std::unordered_set<const VarNode*> vars;
        collectVars(expr, &vars);
        PrimExpr count = intImm(1);
        for (const auto* v : vars) {
            if (auto it = extents.find(v); it != extents.end()) {
                count = mul(count, it->second);
            }
        }
        return count;
      }
    }
}

} // namespace

TensorProgramCost
analyzeCost(const PrimFunc& func)
{
    TensorProgramCost cost;
    cost.flops = intImm(0);
    accumulateFlops(func->body, intImm(1), &cost.flops);

    // Roofline bytes: distinct elements each buffer access touches (range
    // analysis of the index expressions), assuming perfect on-chip reuse.
    // Local fusion intermediates stay on chip and are excluded; global
    // workspaces round-trip device memory and count twice.
    ExtentMap extents;
    collectExtents(func->body, &extents);
    AccessSet accesses = collectAccesses(func->body);
    std::unordered_set<const BufferNode*> local;
    std::unordered_set<const BufferNode*> global_ws;
    for (const auto& allocation : collectAllocations(func->body)) {
        if (allocation.scope == "global") {
            global_ws.insert(allocation.buffer.get());
        } else {
            local.insert(allocation.buffer.get());
        }
    }
    std::unordered_map<const BufferNode*, PrimExpr> per_buffer;
    auto account = [&](const BufferAccess& access) {
        if (local.count(access.buffer.get())) return;
        PrimExpr touched = intImm((int64_t)access.buffer->dtype.bytes());
        for (size_t d = 0; d < access.indices.size(); ++d) {
            // Distinct positions along this dim: never more than the dim
            // itself (symbolic unflatten indices would otherwise explode).
            touched = mul(touched,
                          minExpr(rangeCount(access.indices[d], extents),
                                  access.buffer->shape[d]));
        }
        auto [it, inserted] =
            per_buffer.emplace(access.buffer.get(), touched);
        if (!inserted) it->second = maxExpr(it->second, touched);
    };
    for (const auto& read : accesses.reads) account(read);
    for (const auto& write : accesses.writes) account(write);

    cost.bytes = intImm(0);
    Analyzer analyzer;
    for (const auto& [buffer, touched] : per_buffer) {
        PrimExpr size = analyzer.simplify(touched);
        if (global_ws.count(buffer)) size = mul(size, intImm(2));
        cost.bytes = add(cost.bytes, size);
    }
    cost.bytes = analyzer.simplify(cost.bytes);
    return cost;
}

} // namespace tir
} // namespace relax
