/**
 * @file
 * Reference interpreter for tensor programs. Stands in for the paper's GPU
 * code generation layer: every transformation in the compiler can be
 * validated against it, which is exactly the role ground-truth codegen
 * plays in the TVM artifact.
 */
#ifndef RELAX_TIR_INTERPRETER_H_
#define RELAX_TIR_INTERPRETER_H_

#include <unordered_map>
#include <vector>

#include "arith/substitute.h"
#include "tir/ndarray.h"
#include "tir/stmt.h"

namespace relax {
namespace tir {

/**
 * Executes a tensor program in destination-passing style.
 *
 * @param func The program to run.
 * @param args One NDArray per buffer parameter, outputs included (DPS).
 * @param sym_args Values for func->symParams, in order.
 *
 * Symbolic variables appearing in buffer shapes are bound by matching the
 * declared shapes against the concrete argument shapes (the runtime
 * counterpart of the paper's shape checks at function boundaries); a
 * mismatch throws ShapeError.
 */
void run(const PrimFunc& func, const std::vector<NDArray>& args,
         const std::vector<int64_t>& sym_args = {});

/**
 * Binds symbolic shape variables by matching declared against concrete
 * shapes. Exposed for the VM, which performs the same matching when
 * invoking compiled kernels. Throws ShapeError on inconsistency.
 */
VarBinding bindShapes(const PrimFunc& func,
                      const std::vector<NDArray>& args,
                      const std::vector<int64_t>& sym_args);

} // namespace tir
} // namespace relax

#endif // RELAX_TIR_INTERPRETER_H_
