/**
 * @file
 * Statements of loop-level tensor programs: loop nests over buffer
 * stores, mirroring the paper's `@tensorir_function` bodies (§3.3).
 */
#ifndef RELAX_TIR_STMT_H_
#define RELAX_TIR_STMT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "tir/buffer.h"

namespace relax {
namespace tir {

/** Scalar load from a buffer; extends the shared scalar expression AST. */
class BufferLoadNode : public PrimExprNode
{
  public:
    BufferLoadNode(Buffer buffer, std::vector<PrimExpr> indices)
        : PrimExprNode(ExprKind::kBufferLoad, buffer->dtype),
          buffer(std::move(buffer)), indices(std::move(indices)) {}

    Buffer buffer;
    std::vector<PrimExpr> indices;
};

/** Creates a load expression `buffer[indices...]`. */
inline PrimExpr
bufferLoad(Buffer buffer, std::vector<PrimExpr> indices)
{
    return std::make_shared<BufferLoadNode>(std::move(buffer),
                                            std::move(indices));
}

class StmtNode;
using Stmt = std::shared_ptr<const StmtNode>;

/** Discriminator for statement nodes. */
enum class StmtKind : uint8_t {
    kFor,
    kBufferStore,
    kIfThenElse,
    kSeq,
    kAllocBuffer
};

/** Base class of all statements; immutable after construction. */
class StmtNode
{
  public:
    explicit StmtNode(StmtKind kind) : kind_(kind) {}
    virtual ~StmtNode() = default;

    StmtKind kind() const { return kind_; }

  private:
    StmtKind kind_;
};

/** `for var in range(extent): body` — all loops start at zero. */
class ForNode : public StmtNode
{
  public:
    ForNode(Var loop_var, PrimExpr extent, Stmt body)
        : StmtNode(StmtKind::kFor), loopVar(std::move(loop_var)),
          extent(std::move(extent)), body(std::move(body)) {}

    Var loopVar;
    PrimExpr extent;
    Stmt body;
};

/** `buffer[indices...] = value`. */
class BufferStoreNode : public StmtNode
{
  public:
    BufferStoreNode(Buffer buffer, std::vector<PrimExpr> indices,
                    PrimExpr value)
        : StmtNode(StmtKind::kBufferStore), buffer(std::move(buffer)),
          indices(std::move(indices)), value(std::move(value)) {}

    Buffer buffer;
    std::vector<PrimExpr> indices;
    PrimExpr value;
};

/** Conditional; elseBody may be null. */
class IfThenElseNode : public StmtNode
{
  public:
    IfThenElseNode(PrimExpr cond, Stmt then_body, Stmt else_body = nullptr)
        : StmtNode(StmtKind::kIfThenElse), cond(std::move(cond)),
          thenBody(std::move(then_body)), elseBody(std::move(else_body)) {}

    PrimExpr cond;
    Stmt thenBody;
    Stmt elseBody;
};

/** Sequential composition. */
class SeqStmtNode : public StmtNode
{
  public:
    explicit SeqStmtNode(std::vector<Stmt> seq)
        : StmtNode(StmtKind::kSeq), seq(std::move(seq)) {}

    std::vector<Stmt> seq;
};

/**
 * Scoped buffer allocation. `scope` is "global" for device-memory
 * workspaces — the lifting candidates of §4.4 — or "local" for
 * fusion-internal intermediates that stay inside the kernel.
 */
class AllocBufferNode : public StmtNode
{
  public:
    AllocBufferNode(Buffer buffer, std::string scope, Stmt body)
        : StmtNode(StmtKind::kAllocBuffer), buffer(std::move(buffer)),
          scope(std::move(scope)), body(std::move(body)) {}

    Buffer buffer;
    std::string scope;
    Stmt body;
};

inline Stmt
makeFor(Var loop_var, PrimExpr extent, Stmt body)
{
    return std::make_shared<ForNode>(std::move(loop_var), std::move(extent),
                                     std::move(body));
}

inline Stmt
makeStore(Buffer buffer, std::vector<PrimExpr> indices, PrimExpr value)
{
    return std::make_shared<BufferStoreNode>(
        std::move(buffer), std::move(indices), std::move(value));
}

inline Stmt
makeIf(PrimExpr cond, Stmt then_body, Stmt else_body = nullptr)
{
    return std::make_shared<IfThenElseNode>(
        std::move(cond), std::move(then_body), std::move(else_body));
}

inline Stmt
makeSeq(std::vector<Stmt> seq)
{
    if (seq.size() == 1) return seq[0];
    return std::make_shared<SeqStmtNode>(std::move(seq));
}

inline Stmt
makeAllocBuffer(Buffer buffer, std::string scope, Stmt body)
{
    return std::make_shared<AllocBufferNode>(std::move(buffer),
                                             std::move(scope),
                                             std::move(body));
}

/**
 * A loop-level tensor program in destination-passing style: buffer
 * parameters (outputs last), optional extra scalar symbolic parameters
 * (the paper's `sym_args`, Fig. 8), and a statement body.
 */
class PrimFuncNode
{
  public:
    PrimFuncNode(std::string name, std::vector<Buffer> params, Stmt body,
                 std::vector<Var> sym_params = {})
        : name(std::move(name)), params(std::move(params)),
          symParams(std::move(sym_params)), body(std::move(body)) {}

    std::string name;
    std::vector<Buffer> params;
    /** Extra scalar parameters carrying symbolic shape values. */
    std::vector<Var> symParams;
    Stmt body;
    /** Free-form attributes, e.g. the analyzed "compute_pattern". */
    std::map<std::string, std::string> attrs;

    /** Number of trailing params that are outputs (DPS convention). */
    int numOutputs = 1;
};

using PrimFunc = std::shared_ptr<PrimFuncNode>;

/** Creates a tensor program function. */
inline PrimFunc
makePrimFunc(std::string name, std::vector<Buffer> params, Stmt body,
             std::vector<Var> sym_params = {}, int num_outputs = 1)
{
    auto func = std::make_shared<PrimFuncNode>(
        std::move(name), std::move(params), std::move(body),
        std::move(sym_params));
    func->numOutputs = num_outputs;
    return func;
}

/** Renders the statement as indented pseudo-code. */
std::string toString(const Stmt& stmt, int indent = 0);

/** Renders the whole tensor program. */
std::string toString(const PrimFunc& func);

} // namespace tir
} // namespace relax

#endif // RELAX_TIR_STMT_H_
