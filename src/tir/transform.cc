/**
 * @file
 * Structural transforms over tensor programs: simultaneous variable and
 * buffer substitution (substituteStmt and friends) used by fusion and
 * inlining, and buffer access collection (collectAccesses) feeding
 * pattern analysis and workspace lifting.
 */
#include "tir/transform.h"

#include <functional>

#include "arith/analyzer.h"
#include "arith/structural.h"

namespace relax {
namespace tir {

PrimExpr
substituteExpr(const PrimExpr& expr, const VarMap& vmap, const BufferMap& bmap)
{
    if (!expr) return expr;
    if (expr->kind() == ExprKind::kBufferLoad) {
        const auto* node = static_cast<const BufferLoadNode*>(expr.get());
        Buffer buffer = node->buffer;
        if (auto it = bmap.find(buffer.get()); it != bmap.end()) {
            buffer = it->second;
        }
        std::vector<PrimExpr> indices;
        indices.reserve(node->indices.size());
        bool changed = buffer.get() != node->buffer.get();
        for (const auto& index : node->indices) {
            indices.push_back(substituteExpr(index, vmap, bmap));
            changed |= indices.back().get() != index.get();
        }
        return changed ? bufferLoad(buffer, std::move(indices)) : expr;
    }
    if (expr->kind() == ExprKind::kCall) {
        // substitute() skips BufferLoads nested in intrinsic args, so expand
        // calls here.
        const auto* node = static_cast<const CallNode*>(expr.get());
        std::vector<PrimExpr> args;
        args.reserve(node->args.size());
        bool changed = false;
        for (const auto& arg : node->args) {
            args.push_back(substituteExpr(arg, vmap, bmap));
            changed |= args.back().get() != arg.get();
        }
        return changed ? callIntrin(node->op, std::move(args), expr->dtype())
                       : expr;
    }
    if (expr->kind() == ExprKind::kSelect) {
        const auto* node = static_cast<const SelectNode*>(expr.get());
        return select(substituteExpr(node->cond, vmap, bmap),
                      substituteExpr(node->trueValue, vmap, bmap),
                      substituteExpr(node->falseValue, vmap, bmap));
    }
    if (expr->kind() == ExprKind::kCast) {
        const auto* node = static_cast<const UnaryNode*>(expr.get());
        return cast(substituteExpr(node->a, vmap, bmap), expr->dtype());
    }
    if (expr->kind() == ExprKind::kNot) {
        const auto* node = static_cast<const UnaryNode*>(expr.get());
        return logicalNot(substituteExpr(node->a, vmap, bmap));
    }
    // Binary nodes: rebuild through arith substitution when any descendant
    // contains a BufferLoad; otherwise plain substitute() suffices.
    switch (expr->kind()) {
      case ExprKind::kAdd:
      case ExprKind::kSub:
      case ExprKind::kMul:
      case ExprKind::kDiv:
      case ExprKind::kFloorDiv:
      case ExprKind::kFloorMod:
      case ExprKind::kMin:
      case ExprKind::kMax:
      case ExprKind::kEQ:
      case ExprKind::kNE:
      case ExprKind::kLT:
      case ExprKind::kLE:
      case ExprKind::kGT:
      case ExprKind::kGE:
      case ExprKind::kAnd:
      case ExprKind::kOr: {
        const auto* node = static_cast<const BinaryNode*>(expr.get());
        PrimExpr a = substituteExpr(node->a, vmap, bmap);
        PrimExpr b = substituteExpr(node->b, vmap, bmap);
        if (a.get() == node->a.get() && b.get() == node->b.get()) return expr;
        switch (expr->kind()) {
          case ExprKind::kAdd: return add(a, b);
          case ExprKind::kSub: return sub(a, b);
          case ExprKind::kMul: return mul(a, b);
          case ExprKind::kDiv: return div(a, b);
          case ExprKind::kFloorDiv: return floordiv(a, b);
          case ExprKind::kFloorMod: return floormod(a, b);
          case ExprKind::kMin: return minExpr(a, b);
          case ExprKind::kMax: return maxExpr(a, b);
          case ExprKind::kEQ: return eq(a, b);
          case ExprKind::kNE: return ne(a, b);
          case ExprKind::kLT: return lt(a, b);
          case ExprKind::kLE: return le(a, b);
          case ExprKind::kGT: return gt(a, b);
          case ExprKind::kGE: return ge(a, b);
          case ExprKind::kAnd: return logicalAnd(a, b);
          case ExprKind::kOr: return logicalOr(a, b);
          default: break;
        }
        return expr;
      }
      default:
        return substitute(expr, vmap);
    }
}

namespace {

Buffer
substituteBuffer(const Buffer& buffer, const VarMap& vmap,
                 const BufferMap& bmap)
{
    if (auto it = bmap.find(buffer.get()); it != bmap.end()) {
        return it->second;
    }
    bool changed = false;
    std::vector<PrimExpr> shape;
    shape.reserve(buffer->shape.size());
    for (const auto& dim : buffer->shape) {
        shape.push_back(substitute(dim, vmap));
        changed |= shape.back().get() != dim.get();
    }
    if (!changed) return buffer;
    return makeBuffer(buffer->name, buffer->dtype, std::move(shape));
}

} // namespace

Stmt
substituteStmt(const Stmt& stmt, const VarMap& vmap, const BufferMap& bmap)
{
    switch (stmt->kind()) {
      case StmtKind::kFor: {
        const auto* node = static_cast<const ForNode*>(stmt.get());
        return makeFor(node->loopVar, substituteExpr(node->extent, vmap, bmap),
                       substituteStmt(node->body, vmap, bmap));
      }
      case StmtKind::kBufferStore: {
        const auto* node = static_cast<const BufferStoreNode*>(stmt.get());
        Buffer buffer = node->buffer;
        if (auto it = bmap.find(buffer.get()); it != bmap.end()) {
            buffer = it->second;
        }
        std::vector<PrimExpr> indices;
        for (const auto& index : node->indices) {
            indices.push_back(substituteExpr(index, vmap, bmap));
        }
        return makeStore(buffer, std::move(indices),
                         substituteExpr(node->value, vmap, bmap));
      }
      case StmtKind::kIfThenElse: {
        const auto* node = static_cast<const IfThenElseNode*>(stmt.get());
        return makeIf(substituteExpr(node->cond, vmap, bmap),
                      substituteStmt(node->thenBody, vmap, bmap),
                      node->elseBody
                          ? substituteStmt(node->elseBody, vmap, bmap)
                          : nullptr);
      }
      case StmtKind::kSeq: {
        std::vector<Stmt> seq;
        for (const auto& s : static_cast<const SeqStmtNode*>(stmt.get())->seq) {
            seq.push_back(substituteStmt(s, vmap, bmap));
        }
        return makeSeq(std::move(seq));
      }
      case StmtKind::kAllocBuffer: {
        const auto* node = static_cast<const AllocBufferNode*>(stmt.get());
        Buffer buffer = substituteBuffer(node->buffer, vmap, bmap);
        BufferMap extended = bmap;
        if (buffer.get() != node->buffer.get()) {
            extended[node->buffer.get()] = buffer;
        }
        return makeAllocBuffer(buffer, node->scope,
                               substituteStmt(node->body, vmap, extended));
      }
    }
    RELAX_ICHECK(false) << "unreachable";
    return stmt;
}

namespace {

void
collectExprAccesses(const PrimExpr& expr, AccessSet* out)
{
    if (!expr) return;
    switch (expr->kind()) {
      case ExprKind::kBufferLoad: {
        const auto* node = static_cast<const BufferLoadNode*>(expr.get());
        out->reads.push_back({node->buffer, node->indices});
        for (const auto& index : node->indices) {
            collectExprAccesses(index, out);
        }
        return;
      }
      case ExprKind::kIntImm:
      case ExprKind::kFloatImm:
      case ExprKind::kVar:
        return;
      case ExprKind::kNot:
      case ExprKind::kCast:
        collectExprAccesses(static_cast<const UnaryNode*>(expr.get())->a, out);
        return;
      case ExprKind::kSelect: {
        const auto* node = static_cast<const SelectNode*>(expr.get());
        collectExprAccesses(node->cond, out);
        collectExprAccesses(node->trueValue, out);
        collectExprAccesses(node->falseValue, out);
        return;
      }
      case ExprKind::kCall: {
        for (const auto& arg :
             static_cast<const CallNode*>(expr.get())->args) {
            collectExprAccesses(arg, out);
        }
        return;
      }
      default: {
        const auto* node = static_cast<const BinaryNode*>(expr.get());
        collectExprAccesses(node->a, out);
        collectExprAccesses(node->b, out);
        return;
      }
    }
}

void
collectStmtAccesses(const Stmt& stmt, AccessSet* out)
{
    switch (stmt->kind()) {
      case StmtKind::kFor:
        collectStmtAccesses(static_cast<const ForNode*>(stmt.get())->body,
                            out);
        return;
      case StmtKind::kBufferStore: {
        const auto* node = static_cast<const BufferStoreNode*>(stmt.get());
        out->writes.push_back({node->buffer, node->indices});
        collectExprAccesses(node->value, out);
        for (const auto& index : node->indices) {
            collectExprAccesses(index, out);
        }
        return;
      }
      case StmtKind::kIfThenElse: {
        const auto* node = static_cast<const IfThenElseNode*>(stmt.get());
        collectExprAccesses(node->cond, out);
        collectStmtAccesses(node->thenBody, out);
        if (node->elseBody) collectStmtAccesses(node->elseBody, out);
        return;
      }
      case StmtKind::kSeq:
        for (const auto& s : static_cast<const SeqStmtNode*>(stmt.get())->seq) {
            collectStmtAccesses(s, out);
        }
        return;
      case StmtKind::kAllocBuffer:
        collectStmtAccesses(
            static_cast<const AllocBufferNode*>(stmt.get())->body, out);
        return;
    }
}

} // namespace

AccessSet
collectAccesses(const Stmt& stmt)
{
    AccessSet out;
    collectStmtAccesses(stmt, &out);
    return out;
}

std::vector<BufferAllocation>
collectAllocations(const Stmt& stmt)
{
    std::vector<BufferAllocation> out;
    std::function<void(const Stmt&)> walk = [&](const Stmt& s) {
        switch (s->kind()) {
          case StmtKind::kFor:
            walk(static_cast<const ForNode*>(s.get())->body);
            return;
          case StmtKind::kIfThenElse: {
            const auto* node = static_cast<const IfThenElseNode*>(s.get());
            walk(node->thenBody);
            if (node->elseBody) walk(node->elseBody);
            return;
          }
          case StmtKind::kSeq:
            for (const auto& sub :
                 static_cast<const SeqStmtNode*>(s.get())->seq) {
                walk(sub);
            }
            return;
          case StmtKind::kAllocBuffer: {
            const auto* node = static_cast<const AllocBufferNode*>(s.get());
            out.push_back({node->buffer, node->scope});
            walk(node->body);
            return;
          }
          default:
            return;
        }
    };
    walk(stmt);
    return out;
}

std::vector<Var>
collectLoopVars(const Stmt& stmt)
{
    std::vector<Var> out;
    std::function<void(const Stmt&)> walk = [&](const Stmt& s) {
        switch (s->kind()) {
          case StmtKind::kFor: {
            const auto* node = static_cast<const ForNode*>(s.get());
            out.push_back(node->loopVar);
            walk(node->body);
            return;
          }
          case StmtKind::kIfThenElse: {
            const auto* node = static_cast<const IfThenElseNode*>(s.get());
            walk(node->thenBody);
            if (node->elseBody) walk(node->elseBody);
            return;
          }
          case StmtKind::kSeq:
            for (const auto& sub :
                 static_cast<const SeqStmtNode*>(s.get())->seq) {
                walk(sub);
            }
            return;
          case StmtKind::kAllocBuffer:
            walk(static_cast<const AllocBufferNode*>(s.get())->body);
            return;
          default:
            return;
        }
    };
    walk(stmt);
    return out;
}

std::unordered_set<const VarNode*>
collectFreeVars(const PrimFunc& func)
{
    std::unordered_set<const VarNode*> bound;
    for (const auto& v : collectLoopVars(func->body)) bound.insert(v.get());
    for (const auto& v : func->symParams) bound.insert(v.get());

    std::unordered_set<const VarNode*> free;
    auto visitExpr = [&](const PrimExpr& expr) {
        std::unordered_set<const VarNode*> vars;
        std::function<void(const PrimExpr&)> walk = [&](const PrimExpr& e) {
            if (!e) return;
            if (e->kind() == ExprKind::kBufferLoad) {
                const auto* node =
                    static_cast<const BufferLoadNode*>(e.get());
                for (const auto& index : node->indices) walk(index);
                return;
            }
            collectVars(e, &vars);
        };
        walk(expr);
        for (const auto* v : vars) {
            if (!bound.count(v)) free.insert(v);
        }
    };

    for (const auto& buffer : func->params) {
        for (const auto& dim : buffer->shape) visitExpr(dim);
    }
    AccessSet accesses = collectAccesses(func->body);
    for (const auto& access : accesses.reads) {
        for (const auto& index : access.indices) visitExpr(index);
    }
    for (const auto& access : accesses.writes) {
        for (const auto& index : access.indices) visitExpr(index);
    }
    std::function<void(const Stmt&)> walkExtents = [&](const Stmt& s) {
        switch (s->kind()) {
          case StmtKind::kFor: {
            const auto* node = static_cast<const ForNode*>(s.get());
            visitExpr(node->extent);
            walkExtents(node->body);
            return;
          }
          case StmtKind::kIfThenElse: {
            const auto* node = static_cast<const IfThenElseNode*>(s.get());
            visitExpr(node->cond);
            walkExtents(node->thenBody);
            if (node->elseBody) walkExtents(node->elseBody);
            return;
          }
          case StmtKind::kSeq:
            for (const auto& sub :
                 static_cast<const SeqStmtNode*>(s.get())->seq) {
                walkExtents(sub);
            }
            return;
          case StmtKind::kAllocBuffer: {
            const auto* node = static_cast<const AllocBufferNode*>(s.get());
            for (const auto& dim : node->buffer->shape) visitExpr(dim);
            walkExtents(node->body);
            return;
          }
          default:
            return;
        }
    };
    walkExtents(func->body);
    return free;
}

bool
unifyShapes(const std::vector<PrimExpr>& pattern,
            const std::vector<PrimExpr>& concrete, VarMap* binding)
{
    if (pattern.size() != concrete.size()) return false;
    Analyzer analyzer;
    for (size_t i = 0; i < pattern.size(); ++i) {
        const PrimExpr& p = pattern[i];
        const PrimExpr& c = concrete[i];
        if (p->kind() == ExprKind::kVar) {
            const auto* v = static_cast<const VarNode*>(p.get());
            if (auto it = binding->find(v); it != binding->end()) {
                if (!analyzer.proveEqual(it->second, c)) return false;
            } else {
                (*binding)[v] = c;
            }
            continue;
        }
        // Non-var pattern dim: substitute what we know, then require proof.
        PrimExpr substituted = substitute(p, *binding);
        if (!analyzer.proveEqual(substituted, c)) return false;
    }
    return true;
}

} // namespace tir
} // namespace relax
