/**
 * @file
 * Structural transformations over tensor programs: variable and buffer
 * substitution, access collection, and shape unification. These primitives
 * power the cross-level passes (FuseTensorIR, workspace lifting).
 */
#ifndef RELAX_TIR_TRANSFORM_H_
#define RELAX_TIR_TRANSFORM_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "arith/substitute.h"
#include "tir/stmt.h"

namespace relax {
namespace tir {

/** Maps buffer nodes to replacement buffers. */
using BufferMap = std::unordered_map<const BufferNode*, Buffer>;

/** Substitutes variables and buffers through an expression (incl. loads). */
PrimExpr substituteExpr(const PrimExpr& expr, const VarMap& vmap,
                        const BufferMap& bmap);

/** Substitutes variables and buffers through a statement tree. */
Stmt substituteStmt(const Stmt& stmt, const VarMap& vmap,
                    const BufferMap& bmap);

/** One buffer access: which buffer and with which index expressions. */
struct BufferAccess
{
    Buffer buffer;
    std::vector<PrimExpr> indices;
};

/** All reads/writes in a statement tree, in syntactic order. */
struct AccessSet
{
    std::vector<BufferAccess> reads;
    std::vector<BufferAccess> writes;
};

/** Collects every BufferLoad (reads) and BufferStore (writes). */
AccessSet collectAccesses(const Stmt& stmt);

/** Collects buffers allocated within the statement, with their scopes. */
struct BufferAllocation
{
    Buffer buffer;
    std::string scope;
};
std::vector<BufferAllocation> collectAllocations(const Stmt& stmt);

/** Collects the loop variables in nesting order (outermost first). */
std::vector<Var> collectLoopVars(const Stmt& stmt);

/** Collects free scalar variables of the statement (shapes + indices),
 *  excluding loop variables bound inside. */
std::unordered_set<const VarNode*> collectFreeVars(const PrimFunc& func);

/**
 * Unifies a symbolic pattern shape against a concrete (possibly also
 * symbolic) shape, extending `binding`: bare Vars in the pattern bind to the
 * corresponding expression; non-var pattern dims must structurally match
 * after substituting bindings collected so far. Returns false on mismatch.
 *
 * This is the primitive behind interprocedural shape deduction at function
 * boundaries (§4.1) and FuseTensorIR's symbolic-shape preservation.
 */
bool unifyShapes(const std::vector<PrimExpr>& pattern,
                 const std::vector<PrimExpr>& concrete, VarMap* binding);

} // namespace tir
} // namespace relax

#endif // RELAX_TIR_TRANSFORM_H_
