/**
 * @file
 * MetricsRegistry: a unified registry of named counters, gauges, and
 * histograms replacing ad-hoc statistics fields as the machine-readable
 * view of a run. The serving engine keeps one registry per instance and
 * updates it at event sites (the KV manager shares it for its own
 * tallies); unlike tracing, metrics are always on — every update is one
 * arithmetic op, cheap enough for the hot path.
 *
 *  - Counter: monotonic int64 (evictions, COW copies, prefix hits, ...).
 *  - Gauge: last/min/max/mean of a sampled value (KV pool occupancy and
 *    free pages per step, replay hit-rate, ...).
 *  - Histogram: full value retention with exact percentiles (TTFT and
 *    inter-token latency in virtual-clock microseconds) — the repo's
 *    runs are small enough that exactness beats bucketing, and the
 *    stored values make ground-truth cross-checks trivial (the fuzz
 *    oracle asserts count == finished requests).
 *
 * snapshotJson() serializes the whole registry deterministically
 * (name-ordered maps, fixed float formatting): identical seeded runs
 * must produce byte-identical metrics JSON — the determinism tripwire
 * in scripts/check.sh diffs two serving-bench runs. See docs/DESIGN.md
 * §7 for the observability contract.
 */
#ifndef RELAX_SUPPORT_METRICS_H_
#define RELAX_SUPPORT_METRICS_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace relax {

/** Monotonic event count. */
class Counter
{
  public:
    void add(int64_t delta = 1) { value_ += delta; }
    int64_t value() const { return value_; }

  private:
    int64_t value_ = 0;
};

/** Point-in-time sampled value with min/max/mean over all samples. */
class Gauge
{
  public:
    void
    sample(double value)
    {
        last_ = value;
        sum_ += value;
        if (count_ == 0 || value < min_) min_ = value;
        if (count_ == 0 || value > max_) max_ = value;
        ++count_;
    }

    double last() const { return last_; }
    double min() const { return count_ > 0 ? min_ : 0.0; }
    double max() const { return count_ > 0 ? max_ : 0.0; }
    double mean() const { return count_ > 0 ? sum_ / (double)count_ : 0.0; }
    int64_t samples() const { return count_; }

  private:
    double last_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
    int64_t count_ = 0;
};

/** Exact-percentile latency distribution (values retained). */
class Histogram
{
  public:
    void record(double value);

    int64_t count() const { return (int64_t)values_.size(); }
    double sum() const { return sum_; }
    double min() const;
    double max() const;
    double mean() const;

    /**
     * Exact percentile via nearest-rank on the sorted values:
     * index round((n - 1) * p) — the same convention the serving bench
     * has always used for its TTFT table, so registry percentiles and
     * historical bench numbers stay comparable.
     */
    double percentile(double p) const;

    const std::vector<double>& values() const { return values_; }

  private:
    mutable std::vector<double> values_; //!< lazily sorted by percentile()
    mutable bool sorted_ = true;
    double sum_ = 0.0;
};

/**
 * Named metrics, created on first use. Names are dotted paths
 * ("serve.ttft_us", "kv.cow_copies"); the maps are ordered so JSON
 * snapshots are deterministic.
 */
class MetricsRegistry
{
  public:
    Counter& counter(const std::string& name) { return counters_[name]; }
    Gauge& gauge(const std::string& name) { return gauges_[name]; }
    Histogram& histogram(const std::string& name)
    {
        return histograms_[name];
    }

    const std::map<std::string, Counter>& counters() const
    {
        return counters_;
    }
    const std::map<std::string, Gauge>& gauges() const { return gauges_; }
    const std::map<std::string, Histogram>& histograms() const
    {
        return histograms_;
    }

    /**
     * Serializes every metric as one JSON object:
     * {"counters": {name: value}, "gauges": {name: {last,min,max,mean,
     * samples}}, "histograms": {name: {count,sum,min,max,mean,p50,p95,
     * p99}}}. Deterministic (ordered names, "%.3f" floats).
     */
    void snapshotJson(std::ostream& os) const;

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace relax

#endif // RELAX_SUPPORT_METRICS_H_
