/**
 * @file
 * MetricsRegistry implementation: histogram percentile math (lazy sort,
 * nearest-rank) and the deterministic JSON snapshot writer (see
 * metrics.h).
 */
#include "support/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace relax {

void
Histogram::record(double value)
{
    values_.push_back(value);
    sum_ += value;
    sorted_ = values_.size() <= 1;
}

double
Histogram::min() const
{
    if (values_.empty()) return 0.0;
    return *std::min_element(values_.begin(), values_.end());
}

double
Histogram::max() const
{
    if (values_.empty()) return 0.0;
    return *std::max_element(values_.begin(), values_.end());
}

double
Histogram::mean() const
{
    return values_.empty() ? 0.0 : sum_ / (double)values_.size();
}

double
Histogram::percentile(double p) const
{
    if (values_.empty()) return 0.0;
    if (!sorted_) {
        std::sort(values_.begin(), values_.end());
        sorted_ = true;
    }
    p = std::min(std::max(p, 0.0), 1.0);
    size_t idx = (size_t)((double)(values_.size() - 1) * p + 0.5);
    return values_[idx];
}

namespace {

void
writeDouble(std::ostream& os, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", value);
    os << buf;
}

} // namespace

void
MetricsRegistry::snapshotJson(std::ostream& os) const
{
    os << "{\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, counter] : counters_) {
        os << (first ? "" : ",") << "\n    \"" << name
           << "\": " << counter.value();
        first = false;
    }
    os << "\n  },\n  \"gauges\": {";
    first = true;
    for (const auto& [name, gauge] : gauges_) {
        os << (first ? "" : ",") << "\n    \"" << name << "\": {\"last\": ";
        writeDouble(os, gauge.last());
        os << ", \"min\": ";
        writeDouble(os, gauge.min());
        os << ", \"max\": ";
        writeDouble(os, gauge.max());
        os << ", \"mean\": ";
        writeDouble(os, gauge.mean());
        os << ", \"samples\": " << gauge.samples() << "}";
        first = false;
    }
    os << "\n  },\n  \"histograms\": {";
    first = true;
    for (const auto& [name, histogram] : histograms_) {
        os << (first ? "" : ",") << "\n    \"" << name
           << "\": {\"count\": " << histogram.count() << ", \"sum\": ";
        writeDouble(os, histogram.sum());
        os << ", \"min\": ";
        writeDouble(os, histogram.min());
        os << ", \"max\": ";
        writeDouble(os, histogram.max());
        os << ", \"mean\": ";
        writeDouble(os, histogram.mean());
        os << ", \"p50\": ";
        writeDouble(os, histogram.percentile(0.50));
        os << ", \"p95\": ";
        writeDouble(os, histogram.percentile(0.95));
        os << ", \"p99\": ";
        writeDouble(os, histogram.percentile(0.99));
        os << "}";
        first = false;
    }
    os << "\n  }\n}\n";
}

} // namespace relax
