/**
 * @file
 * TraceRecorder: event-level observability on the simulated device's
 * virtual clock. Every layer of the stack emits timestamped events into
 * one recorder owned by the SimDevice (the clock owner, so there is a
 * single clock domain per trace):
 *
 *  - device lane: per-kernel launch spans (flops/bytes/replay-flagged)
 *    and alloc/free instants + an allocated-bytes counter track;
 *  - vm lane: call-frame spans per invoke() and execution-graph region
 *    spans flagged capture vs replay, with the bucketed signature;
 *  - engine lane: step spans (mixed vs pure-decode), per-request
 *    lifecycle events keyed by request id (arrival→finish async spans,
 *    admission/first-token/eviction/prefix-hit/COW instants), scheduler
 *    queue depth, and KV pool occupancy counters sampled per step.
 *
 * The recorder is DISABLED by default and every emission site guards on
 * one `enabled()` branch, so the disabled path costs nothing measurable
 * (the zero-cost-when-disabled invariant, docs/DESIGN.md §7). Tracing
 * never advances the virtual clock: enabling it may not change any
 * simulated timing, token, or counter — only observe them.
 *
 * Export is Chrome trace-event JSON (writeChromeTrace), loadable in
 * chrome://tracing and Perfetto: spans are "X" complete events, request
 * lifecycles "b"/"e" async pairs keyed by id, instants "i", counters
 * "C", with pid/tid mapped to the lanes above via "M" metadata records.
 * All timestamps are virtual-clock microseconds, Chrome's native unit.
 * Output is byte-deterministic for identical seeded runs (fixed float
 * formatting, insertion-ordered events) — scripts/check.sh diffs two
 * runs of the serving bench to pin this.
 */
#ifndef RELAX_SUPPORT_TRACE_H_
#define RELAX_SUPPORT_TRACE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace relax {

/** The fixed pid/tid lane map of the trace (see docs/ARCHITECTURE.md). */
namespace trace_lanes {
// pids (one per subsystem clock consumer). Devices claim the low pids —
// device i of a DeviceGroup stamps pid i (SimDevice::shareTrace), so the
// non-device subsystems sit above the largest plausible group.
constexpr int kDevice = 0;   //!< SimDevice i: kernels + memory (pid = i)
constexpr int kVm = 100;     //!< VirtualMachine: frames + graph regions
constexpr int kEngine = 101; //!< serve::Engine: steps + requests + KV pool
// tids within kDevice
constexpr int kKernels = 0;
constexpr int kMemory = 1;
// tids within kVm
constexpr int kFrames = 0;
// tids within kEngine
constexpr int kSteps = 0;
constexpr int kRequests = 1;
constexpr int kKvPool = 2;
constexpr int kSpeculation = 3; //!< propose/verify/accept instants
} // namespace trace_lanes

/** One typed key/value pair in an event's args dictionary. */
struct TraceArg
{
    enum class Kind { kInt, kDouble, kString };

    TraceArg(std::string k, int64_t value)
        : key(std::move(k)), kind(Kind::kInt), i(value) {}
    TraceArg(std::string k, double value)
        : key(std::move(k)), kind(Kind::kDouble), d(value) {}
    TraceArg(std::string k, std::string value)
        : key(std::move(k)), kind(Kind::kString), s(std::move(value)) {}

    std::string key;
    Kind kind;
    int64_t i = 0;
    double d = 0.0;
    std::string s;
};

/**
 * Low-overhead recorder of timestamped spans/instants/counters on the
 * virtual clock. Emission methods are no-ops while disabled; callers on
 * hot paths should still guard with `enabled()` to skip argument
 * marshalling entirely.
 */
class TraceRecorder
{
  public:
    /** One recorded trace event (Chrome trace-event phases). */
    struct Event
    {
        char ph = 'X'; //!< 'X' span, 'i' instant, 'b'/'e' async, 'C' counter
        int pid = 0;
        int tid = 0;
        double ts = 0.0;  //!< virtual-clock microseconds
        double dur = 0.0; //!< span duration ('X' only)
        int64_t id = -1;  //!< async pair key ('b'/'e' only)
        std::string name;
        std::string cat;
        std::vector<TraceArg> args;
    };

    TraceRecorder() = default;
    TraceRecorder(const TraceRecorder&) = delete;
    TraceRecorder& operator=(const TraceRecorder&) = delete;

    void enable(bool on = true) { enabled_ = on; }
    bool enabled() const { return enabled_; }

    /** Drops every recorded event (enabled state is unchanged). */
    void clear() { events_.clear(); }

    /** Completed span [ts, ts + dur) on lane (pid, tid). */
    void span(int pid, int tid, std::string name, std::string cat,
              double ts, double dur, std::vector<TraceArg> args = {});

    /** Zero-duration instant at ts. */
    void instant(int pid, int tid, std::string name, std::string cat,
                 double ts, std::vector<TraceArg> args = {});

    /** Async span begin/end, paired by (cat, id) — request lifecycles:
     *  unlike 'X' spans these may overlap freely within one lane. */
    void asyncBegin(int pid, int tid, std::string name, std::string cat,
                    int64_t id, double ts, std::vector<TraceArg> args = {});
    void asyncEnd(int pid, int tid, std::string name, std::string cat,
                  int64_t id, double ts, std::vector<TraceArg> args = {});

    /** Counter track sample (each arg becomes one series). */
    void counter(int pid, int tid, std::string name, double ts,
                 std::vector<TraceArg> args);

    const std::vector<Event>& events() const { return events_; }

    /**
     * Structural check: within every (pid, tid) lane the 'X' spans must
     * nest — any two either disjoint or one containing the other (the
     * fuzz oracle asserts this for every seed). Returns false and fills
     * `error` on the first violation.
     */
    bool wellNested(std::string* error = nullptr) const;

    /**
     * Serializes the recorded events as Chrome trace-event JSON
     * (chrome://tracing / Perfetto "JSON" format): process/thread
     * metadata for the lane map first, then every event in insertion
     * order. Deterministic: fixed "%.3f" float formatting, no host
     * state.
     */
    void writeChromeTrace(std::ostream& os) const;

  private:
    bool enabled_ = false;
    std::vector<Event> events_;
};

} // namespace relax

#endif // RELAX_SUPPORT_TRACE_H_
