/**
 * @file
 * TraceRecorder implementation: event recording, the per-lane span
 * nesting check, and the deterministic Chrome trace-event JSON writer
 * (see trace.h for the lane map and the export contract).
 */
#include "support/trace.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <ostream>

namespace relax {

void
TraceRecorder::span(int pid, int tid, std::string name, std::string cat,
                    double ts, double dur, std::vector<TraceArg> args)
{
    if (!enabled_) return;
    Event event;
    event.ph = 'X';
    event.pid = pid;
    event.tid = tid;
    event.ts = ts;
    event.dur = dur;
    event.name = std::move(name);
    event.cat = std::move(cat);
    event.args = std::move(args);
    events_.push_back(std::move(event));
}

void
TraceRecorder::instant(int pid, int tid, std::string name, std::string cat,
                       double ts, std::vector<TraceArg> args)
{
    if (!enabled_) return;
    Event event;
    event.ph = 'i';
    event.pid = pid;
    event.tid = tid;
    event.ts = ts;
    event.name = std::move(name);
    event.cat = std::move(cat);
    event.args = std::move(args);
    events_.push_back(std::move(event));
}

void
TraceRecorder::asyncBegin(int pid, int tid, std::string name,
                          std::string cat, int64_t id, double ts,
                          std::vector<TraceArg> args)
{
    if (!enabled_) return;
    Event event;
    event.ph = 'b';
    event.pid = pid;
    event.tid = tid;
    event.ts = ts;
    event.id = id;
    event.name = std::move(name);
    event.cat = std::move(cat);
    event.args = std::move(args);
    events_.push_back(std::move(event));
}

void
TraceRecorder::asyncEnd(int pid, int tid, std::string name, std::string cat,
                        int64_t id, double ts, std::vector<TraceArg> args)
{
    if (!enabled_) return;
    Event event;
    event.ph = 'e';
    event.pid = pid;
    event.tid = tid;
    event.ts = ts;
    event.id = id;
    event.name = std::move(name);
    event.cat = std::move(cat);
    event.args = std::move(args);
    events_.push_back(std::move(event));
}

void
TraceRecorder::counter(int pid, int tid, std::string name, double ts,
                       std::vector<TraceArg> args)
{
    if (!enabled_) return;
    Event event;
    event.ph = 'C';
    event.pid = pid;
    event.tid = tid;
    event.ts = ts;
    event.name = std::move(name);
    event.cat = "counter";
    event.args = std::move(args);
    events_.push_back(std::move(event));
}

bool
TraceRecorder::wellNested(std::string* error) const
{
    // Per lane, walk the 'X' spans in start order with an interval
    // stack: each span must begin after every already-open span it does
    // not fit inside has closed. A small epsilon absorbs floating-point
    // noise in clock arithmetic (children whose end lands ~1 ulp past
    // the parent's).
    constexpr double kEps = 1e-6;
    std::map<std::pair<int, int>, std::vector<const Event*>> lanes;
    for (const Event& event : events_) {
        if (event.ph == 'X') {
            lanes[{event.pid, event.tid}].push_back(&event);
        }
    }
    for (auto& [lane, spans] : lanes) {
        std::stable_sort(spans.begin(), spans.end(),
                         [](const Event* a, const Event* b) {
                             if (a->ts != b->ts) return a->ts < b->ts;
                             // Equal starts: the longer span is the parent.
                             return a->dur > b->dur;
                         });
        std::vector<const Event*> open;
        for (const Event* span : spans) {
            while (!open.empty() &&
                   span->ts >= open.back()->ts + open.back()->dur - kEps) {
                open.pop_back();
            }
            if (!open.empty()) {
                const Event* parent = open.back();
                if (span->ts + span->dur >
                    parent->ts + parent->dur + kEps) {
                    if (error) {
                        char buf[256];
                        std::snprintf(
                            buf, sizeof(buf),
                            "lane (%d,%d): span '%s' [%.3f, %.3f) "
                            "overlaps '%s' [%.3f, %.3f) without nesting",
                            lane.first, lane.second, span->name.c_str(),
                            span->ts, span->ts + span->dur,
                            parent->name.c_str(), parent->ts,
                            parent->ts + parent->dur);
                        *error = buf;
                    }
                    return false;
                }
            }
            open.push_back(span);
        }
    }
    return true;
}

namespace {

/** Minimal JSON string escaping (names/categories are ASCII). */
void
writeJsonString(std::ostream& os, const std::string& value)
{
    os << '"';
    for (char c : value) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if ((unsigned char)c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

/** Fixed-precision float formatting: the determinism contract requires
 *  byte-identical output for identical virtual-clock values. */
void
writeJsonDouble(std::ostream& os, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", value);
    os << buf;
}

void
writeArgs(std::ostream& os, const std::vector<TraceArg>& args)
{
    os << "{";
    bool first = true;
    for (const TraceArg& arg : args) {
        if (!first) os << ",";
        first = false;
        writeJsonString(os, arg.key);
        os << ":";
        switch (arg.kind) {
          case TraceArg::Kind::kInt: os << arg.i; break;
          case TraceArg::Kind::kDouble: writeJsonDouble(os, arg.d); break;
          case TraceArg::Kind::kString: writeJsonString(os, arg.s); break;
        }
    }
    os << "}";
}

void
writeMetadata(std::ostream& os, int pid, int tid, const char* record,
              const char* label, bool thread)
{
    os << "{\"ph\":\"M\",\"pid\":" << pid;
    if (thread) os << ",\"tid\":" << tid;
    os << ",\"name\":\"" << record << "\",\"args\":{\"name\":\"" << label
       << "\"}}";
}

} // namespace

void
TraceRecorder::writeChromeTrace(std::ostream& os) const
{
    using namespace trace_lanes;
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    // Lane map metadata: pid = subsystem, tid = track within it. Device
    // pids are dynamic — device i of a group stamps pid i — so the
    // process list covers every device pid seen in the events (always at
    // least device 0, the single-device case).
    int max_device_pid = kDevice;
    for (const Event& event : events_) {
        if (event.pid < kVm) {
            max_device_pid = std::max(max_device_pid, event.pid);
        }
    }
    bool first = true;
    auto separator = [&]() {
        if (!first) os << ",\n";
        first = false;
    };
    for (int pid = kDevice; pid <= max_device_pid; ++pid) {
        std::string label = "device" + std::to_string(pid);
        separator();
        writeMetadata(os, pid, 0, "process_name", label.c_str(),
                      /*thread=*/false);
        separator();
        writeMetadata(os, pid, kKernels, "thread_name", "kernels",
                      /*thread=*/true);
        separator();
        writeMetadata(os, pid, kMemory, "thread_name", "memory",
                      /*thread=*/true);
    }
    struct Lane { int pid; int tid; const char* label; };
    const Lane processes[] = {{kVm, 0, "vm"}, {kEngine, 0, "engine"}};
    const Lane threads[] = {{kVm, kFrames, "frames"},
                            {kEngine, kSteps, "steps"},
                            {kEngine, kRequests, "requests"},
                            {kEngine, kKvPool, "kv-pool"},
                            {kEngine, kSpeculation, "speculation"}};
    for (const Lane& lane : processes) {
        separator();
        writeMetadata(os, lane.pid, lane.tid, "process_name", lane.label,
                      /*thread=*/false);
    }
    for (const Lane& lane : threads) {
        separator();
        writeMetadata(os, lane.pid, lane.tid, "thread_name", lane.label,
                      /*thread=*/true);
    }
    for (const Event& event : events_) {
        separator();
        os << "{\"ph\":\"" << event.ph << "\",\"pid\":" << event.pid
           << ",\"tid\":" << event.tid << ",\"ts\":";
        writeJsonDouble(os, event.ts);
        if (event.ph == 'X') {
            os << ",\"dur\":";
            writeJsonDouble(os, event.dur);
        }
        if (event.ph == 'b' || event.ph == 'e') {
            os << ",\"id\":\"" << event.id << "\"";
        }
        if (event.ph == 'i') {
            os << ",\"s\":\"t\""; // thread-scoped instant
        }
        os << ",\"name\":";
        writeJsonString(os, event.name);
        if (!event.cat.empty()) {
            os << ",\"cat\":";
            writeJsonString(os, event.cat);
        }
        if (!event.args.empty()) {
            os << ",\"args\":";
            writeArgs(os, event.args);
        }
        os << "}";
    }
    os << "\n]}\n";
}

} // namespace relax
