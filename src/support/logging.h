/**
 * @file
 * Minimal leveled logging for the compiler and runtime.
 */
#ifndef RELAX_SUPPORT_LOGGING_H_
#define RELAX_SUPPORT_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace relax {

/** Severity levels in increasing order of importance. */
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/** Global logging configuration. */
class Logging
{
  public:
    /** Returns the mutable global minimum level; messages below are dropped. */
    static LogLevel&
    minLevel()
    {
        static LogLevel level = LogLevel::kWarn;
        return level;
    }
};

namespace detail {

/** One log statement; flushes to stderr on destruction. */
class LogMessage
{
  public:
    LogMessage(LogLevel level, const char* file, int line) : level_(level)
    {
        stream_ << "[" << levelName(level) << "] " << file << ":" << line
                << ": ";
    }

    ~LogMessage()
    {
        if (level_ >= Logging::minLevel()) {
            std::cerr << stream_.str() << std::endl;
        }
    }

    std::ostream& stream() { return stream_; }

  private:
    static const char*
    levelName(LogLevel level)
    {
        switch (level) {
          case LogLevel::kDebug: return "DEBUG";
          case LogLevel::kInfo: return "INFO";
          case LogLevel::kWarn: return "WARN";
          case LogLevel::kError: return "ERROR";
        }
        return "?";
    }

    LogLevel level_;
    std::ostringstream stream_;
};

} // namespace detail
} // namespace relax

#define RELAX_LOG(level)                                                      \
    ::relax::detail::LogMessage(::relax::LogLevel::level, __FILE__, __LINE__) \
        .stream()

#endif // RELAX_SUPPORT_LOGGING_H_
