/**
 * @file
 * Aligned ASCII table printer used by the benchmark harness to emit the
 * rows/series of the paper's tables and figures.
 */
#ifndef RELAX_SUPPORT_TABLE_PRINTER_H_
#define RELAX_SUPPORT_TABLE_PRINTER_H_

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace relax {

/**
 * Collects rows of string cells and prints them with aligned columns.
 */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> header)
        : header_(std::move(header)) {}

    /** Appends one row; cell count may be shorter than the header. */
    void addRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

    /** Formats a double with the given precision. */
    static std::string
    fmt(double value, int precision = 2)
    {
        std::ostringstream os;
        os << std::fixed << std::setprecision(precision) << value;
        return os.str();
    }

    /** Renders the table to the given stream. */
    void
    print(std::ostream& os = std::cout) const
    {
        std::vector<size_t> widths(header_.size(), 0);
        auto update = [&](const std::vector<std::string>& row) {
            for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
                widths[i] = std::max(widths[i], row[i].size());
            }
        };
        update(header_);
        for (const auto& row : rows_) update(row);

        auto emit = [&](const std::vector<std::string>& row) {
            os << "|";
            for (size_t i = 0; i < widths.size(); ++i) {
                std::string cell = i < row.size() ? row[i] : "";
                os << " " << std::left << std::setw((int)widths[i]) << cell
                   << " |";
            }
            os << "\n";
        };
        emit(header_);
        os << "|";
        for (size_t w : widths) os << std::string(w + 2, '-') << "|";
        os << "\n";
        for (const auto& row : rows_) emit(row);
    }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace relax

#endif // RELAX_SUPPORT_TABLE_PRINTER_H_
