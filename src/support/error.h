/**
 * @file
 * Error types used throughout the Relax compiler.
 *
 * Follows the fatal/panic split: user-facing problems (bad IR supplied by a
 * frontend, shape mismatch at runtime) raise typed exceptions derived from
 * relax::Error; internal invariant violations use RELAX_ICHECK which throws
 * InternalError.
 */
#ifndef RELAX_SUPPORT_ERROR_H_
#define RELAX_SUPPORT_ERROR_H_

#include <sstream>
#include <stdexcept>
#include <string>

namespace relax {

/** Base class for all user-facing compiler/runtime errors. */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string& msg) : std::runtime_error(msg) {}
};

/** Raised when an IR fragment violates language rules (well-formedness). */
class IRError : public Error
{
  public:
    explicit IRError(const std::string& msg) : Error("IRError: " + msg) {}
};

/** Raised when shape deduction or a runtime shape check fails. */
class ShapeError : public Error
{
  public:
    explicit ShapeError(const std::string& msg)
        : Error("ShapeError: " + msg) {}
};

/** Raised for type/annotation mismatches. */
class TypeError : public Error
{
  public:
    explicit TypeError(const std::string& msg) : Error("TypeError: " + msg) {}
};

/** Raised by the VM and device layer for execution failures. */
class RuntimeError : public Error
{
  public:
    explicit RuntimeError(const std::string& msg)
        : Error("RuntimeError: " + msg) {}
};

/** Raised when an internal invariant breaks; indicates a compiler bug. */
class InternalError : public Error
{
  public:
    explicit InternalError(const std::string& msg)
        : Error("InternalError: " + msg) {}
};

namespace detail {

/** Stream-style message builder that throws on destruction-by-value. */
template <typename ErrorType>
class ErrorStream
{
  public:
    ErrorStream() = default;

    template <typename T>
    ErrorStream&
    operator<<(const T& value)
    {
        stream_ << value;
        return *this;
    }

    [[noreturn]] ~ErrorStream() noexcept(false)
    {
        throw ErrorType(stream_.str());
    }

  private:
    std::ostringstream stream_;
};

} // namespace detail

} // namespace relax

/** Internal invariant check; throws InternalError with location info. */
#define RELAX_ICHECK(cond)                                                    \
    if (!(cond))                                                              \
    ::relax::detail::ErrorStream<::relax::InternalError>()                    \
        << __FILE__ << ":" << __LINE__ << ": check failed: " #cond " "

/** User-facing error with stream-style message, e.g. RELAX_THROW(IRError). */
#define RELAX_THROW(ErrorType) ::relax::detail::ErrorStream<::relax::ErrorType>()

#endif // RELAX_SUPPORT_ERROR_H_
