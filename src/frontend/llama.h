/**
 * @file
 * Transformer LLM frontend: builds Relax IR for Llama-family decoder-only
 * models (the paper's nn.Module-like model construction, §5.1). Emits a
 * `prefill` function (causal attention over n tokens, produces the KV
 * cache) and a `decode` function (single-token step over a symbolic
 * cache length m and batch b) — so dynamism covers both sequence length
 * and batch size, compiled once for all values.
 *
 * The 4-bit quantized variant replaces each weight matmul with the Fig. 9
 * custom decode_q4 tensor program feeding the matmul, exercising
 * cross-level fusion on a real workload.
 */
#ifndef RELAX_FRONTEND_LLAMA_H_
#define RELAX_FRONTEND_LLAMA_H_

#include <string>

#include "ir/module.h"

namespace relax {
namespace frontend {

/** Weight quantization scheme. */
enum class Quant { kF16, kQ4, kQ3 };

/** Decoder-only transformer configuration. */
struct LlamaConfig
{
    std::string name;
    int64_t hiddenSize = 4096;
    int64_t numLayers = 32;
    int64_t numHeads = 32;
    int64_t headDim = 128;
    int64_t ffnSize = 14336;
    int64_t vocabSize = 128256;
    int64_t maxContext = 4096;
    Quant quant = Quant::kF16;
    /** "silu" (Llama) or "gelu" (Gemma). */
    std::string activation = "silu";
    /**
     * When nonzero, the batch dimension is compiled as this constant
     * instead of a symbolic var (used by benches that compile per batch,
     * letting partial library lowering see the GEMM row count; sequence
     * and context lengths stay symbolic).
     */
    int64_t fixedBatch = 0;

    /** Total parameter bytes under the quantization scheme. */
    int64_t weightBytes() const;
    /** KV cache bytes for one sequence position across all layers. */
    int64_t kvBytesPerToken() const;

    static LlamaConfig llama3_8b();
    static LlamaConfig gemma1_1_7b();
    static LlamaConfig qwen2_7b();
    static LlamaConfig llama2_7b();
    static LlamaConfig phi3_mini();
    static LlamaConfig redpajama_3b();
    /** Scaled-down variant for data-mode correctness tests. */
    static LlamaConfig tiny();

    LlamaConfig withQuant(Quant q) const;
};

/**
 * Builds the model module with `prefill` and `decode` functions.
 *
 *   prefill(ids [b, n], weights...) ->
 *       (logits [b, n, V], k_0 [b, h, n, d], v_0, ..., k_L-1, v_L-1)
 *   decode(ids [b, 1], k_0 [b, h, m, d], v_0, ..., weights...) ->
 *       (logits [b, 1, V], k_0' [b, h, m+1, d], v_0', ...)
 *
 * `weight_names` receives the parameter order after the data inputs, so
 * callers can construct matching argument lists.
 */
ir::IRModulePtr buildLlama(const LlamaConfig& config,
                           std::vector<std::string>* weight_names = nullptr);

/** Creates weight tensors for the config (data or metadata-only). */
std::vector<NDArray> makeLlamaWeights(const LlamaConfig& config,
                                      bool with_data, unsigned seed = 7);

// --- batched-decode cache layout helpers (serving engine) -----------------
//
// The compiled `decode` function takes one [b, h, m, d] cache tensor per
// layer, while a serving engine tracks caches per sequence ([1, h, m, d]).
// These helpers convert between the two layouts: stack gathers equal-shape
// per-sequence tensors into one batched tensor before the call, split
// scatters the updated batched caches back afterwards. Metadata-only
// tensors (timing mode) stack/split without touching data.

/** Stacks per-sequence [1, rest...] tensors into one [b, rest...] tensor.
 *  All parts must agree on trailing shape, dtype and data/meta mode. */
NDArray stackBatch(const std::vector<NDArray>& parts);

/** Splits a batched [b, rest...] tensor into b copies of [1, rest...]. */
std::vector<NDArray> splitBatch(const NDArray& batched);

// --- ragged-decode cache layout helpers -----------------------------------
//
// The ragged decode function takes one padded [b, h, m, d] cache per layer
// whose rows hold unequal true lengths (the `seq_lens` vector). These
// helpers convert between per-sequence exact caches [1, h, len_i, d] and
// the padded batched layout: stack zero-pads every row's length axis up to
// the shared padded length, split trims each row back to its true length.
// Like stackBatch/splitBatch this is a host-side simulation artifact — the
// modeled production system keeps pages in place and indexes them.

/** Stacks per-sequence [1, h, len_i, d] caches into one [b, h, target_len,
 *  d] tensor, zero-padding each row's axis-2 tail. */
NDArray stackBatchPadded(const std::vector<NDArray>& parts,
                         int64_t target_len);

/** Splits a padded [b, h, m, d] cache into b tensors [1, h, lengths[i], d],
 *  dropping each row's padding tail. */
std::vector<NDArray> splitBatchTrimmed(const NDArray& batched,
                                       const std::vector<int64_t>& lengths);

} // namespace frontend
} // namespace relax

#endif // RELAX_FRONTEND_LLAMA_H_
