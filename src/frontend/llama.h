/**
 * @file
 * Transformer LLM frontend: builds Relax IR for Llama-family decoder-only
 * models (the paper's nn.Module-like model construction, §5.1). Emits a
 * `prefill` function (causal attention over n tokens, produces the KV
 * cache) and a `decode` function (single-token step over a symbolic
 * cache length m and batch b) — so dynamism covers both sequence length
 * and batch size, compiled once for all values.
 *
 * The 4-bit quantized variant replaces each weight matmul with the Fig. 9
 * custom decode_q4 tensor program feeding the matmul, exercising
 * cross-level fusion on a real workload.
 */
#ifndef RELAX_FRONTEND_LLAMA_H_
#define RELAX_FRONTEND_LLAMA_H_

#include <string>

#include "ir/module.h"

namespace relax {
namespace frontend {

/** Weight quantization scheme. */
enum class Quant { kF16, kQ4, kQ3 };

/** Decoder-only transformer configuration. */
struct LlamaConfig
{
    std::string name;
    int64_t hiddenSize = 4096;
    int64_t numLayers = 32;
    int64_t numHeads = 32;
    int64_t headDim = 128;
    int64_t ffnSize = 14336;
    int64_t vocabSize = 128256;
    int64_t maxContext = 4096;
    Quant quant = Quant::kF16;
    /** "silu" (Llama) or "gelu" (Gemma). */
    std::string activation = "silu";
    /**
     * When nonzero, the batch dimension is compiled as this constant
     * instead of a symbolic var (used by benches that compile per batch,
     * letting partial library lowering see the GEMM row count; sequence
     * and context lengths stay symbolic).
     */
    int64_t fixedBatch = 0;

    /** Total parameter bytes under the quantization scheme. */
    int64_t weightBytes() const;
    /** KV cache bytes for one sequence position across all layers. */
    int64_t kvBytesPerToken() const;

    static LlamaConfig llama3_8b();
    static LlamaConfig gemma1_1_7b();
    static LlamaConfig qwen2_7b();
    static LlamaConfig llama2_7b();
    static LlamaConfig phi3_mini();
    static LlamaConfig redpajama_3b();
    /** Scaled-down variant for data-mode correctness tests. */
    static LlamaConfig tiny();

    LlamaConfig withQuant(Quant q) const;
};

/**
 * Builds the model module with `prefill`, `decode` and `decode_ragged`
 * functions.
 *
 *   prefill(ids [b, n], weights...) ->
 *       (logits [b, n, V], k_0 [b, h, n, d], v_0, ..., k_L-1, v_L-1)
 *   decode(ids [b, 1], k_0 [b, h, m, d], v_0, ..., weights...) ->
 *       (logits [b, 1, V], k_0' [b, h, m+1, d], v_0', ...)
 *   decode_ragged(ids [b, n], seq_lens [b] i64, block_table [b, w] i64,
 *                 k_pool_0 [p, h, c, d], v_pool_0, ..., weights...) ->
 *       (logits [b, n, V], k_pool_0', v_pool_0', ...)
 *
 * `prefill`/`decode` are the dense per-call cache layout the figure
 * benches compile. `decode_ragged` is the serving entry point: every
 * cache access gathers/scatters through the persistent KV page pools
 * (p physical pages of c positions per layer per k/v) via the block
 * table, n = 1 is a steady-state decode step, and n > 1 prefills a
 * prompt chunk straight into pool pages starting at each row's
 * seq_lens[i] offset. The returned pools alias the inputs (in-place
 * append) — nothing is allocated or copied per call.
 *
 * `weight_names` receives the parameter order after the data inputs, so
 * callers can construct matching argument lists.
 */
ir::IRModulePtr buildLlama(const LlamaConfig& config,
                           std::vector<std::string>* weight_names = nullptr);

/** Creates weight tensors for the config (data or metadata-only). */
std::vector<NDArray> makeLlamaWeights(const LlamaConfig& config,
                                      bool with_data, unsigned seed = 7);

/**
 * Slices full weight tensors into the shard-local set the ShardPass'd
 * `decode_ragged` function of `shard` expects (Megatron layout): wq / wk /
 * wv / w_gate / w_up / lm_head are split along the output dim, wo /
 * w_down along the input dim, norms and embeddings replicated (shared by
 * handle — weights are read-only). Metadata-only weights slice shape-only.
 * Throws when a sharded dim is not divisible by `num_shards` or the
 * config is quantized.
 */
std::vector<NDArray> shardLlamaWeights(const LlamaConfig& config,
                                       const std::vector<NDArray>& full,
                                       int shard, int num_shards);

// --- batched input layout helpers (serving engine) ------------------------
//
// The serving engine marshals per-request token ids into the rectangular
// [b, n] tensor the compiled functions take. Cache data never moves on
// the host: it lives in the persistent page pools the KVCacheManager
// owns, and every compiled call addresses it through the block table
// (EngineStats::relayoutBytes pins the decode path to zero host-side
// cache copies). stackBatch/splitBatch remain for small host metadata
// and for the dense legacy `decode` layout the figure benches use.

/** Stacks per-sequence [1, rest...] tensors into one [b, rest...] tensor.
 *  All parts must agree on trailing shape, dtype and data/meta mode. */
NDArray stackBatch(const std::vector<NDArray>& parts);

/** Splits a batched [b, rest...] tensor into b copies of [1, rest...]. */
std::vector<NDArray> splitBatch(const NDArray& batched);

} // namespace frontend
} // namespace relax

#endif // RELAX_FRONTEND_LLAMA_H_
