/**
 * @file
 * Llama-family model builder: the named configs (llama3_8b ... tiny)
 * with weight/KV-cache byte accounting, and buildLlama, which emits the
 * dense prefill/decode graph functions plus the pool-addressed
 * decode_ragged serving function (packed varlen fresh tokens delimited
 * by cu_fresh, persistent KV page pools gathered through the block
 * table, in-place appends) over symbolic batch / sequence / pool
 * variables through the BlockBuilder. makeLlamaWeights
 * fabricates parameter tensors (optionally metadata-only for timing
 * mode).
 */
#include "frontend/llama.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <random>

#include "op/ops.h"
#include "op/tir_kernels.h"
#include "shape/block_builder.h"

namespace relax {
namespace frontend {

using namespace ir;
using Var = ir::Var;

int64_t
LlamaConfig::weightBytes() const
{
    int64_t h = hiddenSize, f = ffnSize, v = vocabSize;
    int64_t proj = numHeads * headDim;
    int64_t per_layer_params = 4 * h * proj + 3 * h * f + 2 * h;
    int64_t params = numLayers * per_layer_params + 2 * v * h + h;
    switch (quant) {
      case Quant::kF16: return params * 2;
      case Quant::kQ4: return params / 2 + params / 16; // nibbles + scales
      case Quant::kQ3: return params * 3 / 8 + params / 16;
    }
    return params * 2;
}

int64_t
LlamaConfig::kvBytesPerToken() const
{
    return 2 * numLayers * numHeads * headDim * 2; // k+v, f16
}

LlamaConfig
LlamaConfig::llama3_8b()
{
    LlamaConfig config;
    config.name = "Llama3-8B";
    config.hiddenSize = 4096;
    config.numLayers = 32;
    config.numHeads = 32;
    config.headDim = 128;
    config.ffnSize = 14336;
    config.vocabSize = 128256;
    config.maxContext = 8192;
    return config;
}

LlamaConfig
LlamaConfig::gemma1_1_7b()
{
    LlamaConfig config;
    config.name = "Gemma1.1-7B";
    config.hiddenSize = 3072;
    config.numLayers = 28;
    config.numHeads = 16;
    config.headDim = 256;
    config.ffnSize = 24576;
    config.vocabSize = 256000;
    config.maxContext = 8192;
    config.activation = "gelu";
    return config;
}

LlamaConfig
LlamaConfig::qwen2_7b()
{
    LlamaConfig config;
    config.name = "Qwen2-7B";
    config.hiddenSize = 3584;
    config.numLayers = 28;
    config.numHeads = 28;
    config.headDim = 128;
    config.ffnSize = 18944;
    config.vocabSize = 152064;
    config.maxContext = 8192;
    return config;
}

LlamaConfig
LlamaConfig::llama2_7b()
{
    LlamaConfig config;
    config.name = "Llama2-7B";
    config.hiddenSize = 4096;
    config.numLayers = 32;
    config.numHeads = 32;
    config.headDim = 128;
    config.ffnSize = 11008;
    config.vocabSize = 32000;
    config.maxContext = 4096;
    return config;
}

LlamaConfig
LlamaConfig::phi3_mini()
{
    LlamaConfig config;
    config.name = "Phi3-mini-4k";
    config.hiddenSize = 3072;
    config.numLayers = 32;
    config.numHeads = 32;
    config.headDim = 96;
    config.ffnSize = 8192;
    config.vocabSize = 32064;
    config.maxContext = 4096;
    return config;
}

LlamaConfig
LlamaConfig::redpajama_3b()
{
    LlamaConfig config;
    config.name = "RedPajama-3B";
    config.hiddenSize = 2560;
    config.numLayers = 32;
    config.numHeads = 32;
    config.headDim = 80;
    config.ffnSize = 10240;
    config.vocabSize = 50432;
    config.maxContext = 2048;
    return config;
}

LlamaConfig
LlamaConfig::tiny()
{
    LlamaConfig config;
    config.name = "tiny";
    config.hiddenSize = 8;
    config.numLayers = 2;
    config.numHeads = 2;
    config.headDim = 4;
    config.ffnSize = 16;
    config.vocabSize = 32;
    config.maxContext = 64;
    return config;
}

LlamaConfig
LlamaConfig::withQuant(Quant q) const
{
    LlamaConfig config = *this;
    config.quant = q;
    std::string suffix = q == Quant::kQ4 ? "-q4" : q == Quant::kQ3 ? "-q3"
                                                                    : "";
    config.name += suffix;
    return config;
}

namespace {

/** Which graph function is being constructed. */
enum class FnKind { kPrefill, kDecode, kDecodeRagged };

/** Builder state shared between prefill and decode construction. */
class LlamaBuilder
{
  public:
    LlamaBuilder(const LlamaConfig& config, IRModulePtr module,
                 std::vector<std::string>* weight_names)
        : config_(config), module_(std::move(module)),
          weightNames_(weight_names)
    {
        // The benchmark dtype: fp16 weights/activations; q4 packs weights.
        dtype_ = DataType::f16();
    }

    /** Builds one function ("prefill", "decode" or "decode_ragged"). */
    void
    buildFunction(FnKind kind)
    {
        bool is_decode = kind != FnKind::kPrefill;
        ragged_ = kind == FnKind::kDecodeRagged;
        shape::BlockBuilder builder(module_);
        weights_.clear();
        params_.clear();
        seqLens_ = Var();
        cuFresh_ = Var();
        blockTable_ = Var();

        SymVar bvar = var("b");
        PrimExpr b = config_.fixedBatch > 0
                         ? PrimExpr(intImm(config_.fixedBatch))
                         : PrimExpr(bvar);
        // The ragged pool function takes a symbolic fresh-token count n
        // like prefill. In the packed varlen layout n is the TOTAL fresh
        // token count across all b rows (prefill chunks and n=1 decodes
        // packed back to back along one axis), so the data tensors carry
        // a literal batch dimension of 1 and `cu_fresh` delimits rows.
        SymVar n = kind == FnKind::kDecode ? SymVar() : var("n");
        SymVar m = kind == FnKind::kDecode ? var("m") : SymVar();
        PrimExpr seq = kind == FnKind::kDecode ? PrimExpr(intImm(1))
                                               : PrimExpr(n);
        PrimExpr data_b = ragged_ ? PrimExpr(intImm(1)) : b;

        Var ids = makeVar(
            "ids", tensorSInfo({data_b, seq}, DataType::i64()));
        params_.push_back(ids);
        if (ragged_) {
            // Packed varlen page-pool contract: each row's true context
            // length rides in `seq_lens` [b] (a host-side integer tensor,
            // the paper's cross-level dynamism) and doubles as the write
            // offset for the fresh tokens; `cu_fresh` [b+1] holds the
            // cumulative fresh-token offsets that assign packed token i
            // to the row r with cu[r] <= i < cu[r+1] (the FlashAttention
            // varlen idiom — cu_fresh[b] == n); `block_table` [b, w]
            // names the physical pool pages backing each logical block.
            // Page size comes from the pool shape, never from a padded
            // length. seq_lens binds b first, so the [b+1] dim of
            // cu_fresh lowers to an evaluated runtime check.
            seqLens_ = makeVar("seq_lens",
                               tensorSInfo({b}, DataType::i64()));
            params_.push_back(seqLens_);
            cuFresh_ = makeVar(
                "cu_fresh",
                tensorSInfo({relax::add(b, intImm(1))}, DataType::i64()));
            params_.push_back(cuFresh_);
            SymVar w = var("w");
            blockTable_ = makeVar("block_table",
                                  tensorSInfo({b, w}, DataType::i64()));
            params_.push_back(blockTable_);
        }
        // Caches precede weights for decode. The ragged function takes
        // one persistent page-pool tensor [p, h, c, d] per layer per k/v
        // (p pages of c positions), owned by the serving KVCacheManager
        // as VM persistent storage; the legacy dense decode keeps the
        // per-call [b, h, m, d] layout.
        std::vector<Var> k_caches, v_caches;
        if (is_decode) {
            SymVar pool_pages = ragged_ ? var("p") : SymVar();
            SymVar pool_block = ragged_ ? var("c") : SymVar();
            for (int64_t layer = 0; layer < config_.numLayers; ++layer) {
                StructInfo cache_sinfo =
                    ragged_ ? tensorSInfo({pool_pages,
                                           intImm(config_.numHeads),
                                           pool_block,
                                           intImm(config_.headDim)},
                                          dtype_)
                            : tensorSInfo({b, intImm(config_.numHeads), m,
                                           intImm(config_.headDim)},
                                          dtype_);
                k_caches.push_back(makeVar(
                    (ragged_ ? "k_pool" : "k_cache") +
                        std::to_string(layer),
                    cache_sinfo));
                v_caches.push_back(makeVar(
                    (ragged_ ? "v_pool" : "v_cache") +
                        std::to_string(layer),
                    cache_sinfo));
                params_.push_back(k_caches.back());
                params_.push_back(v_caches.back());
            }
        }

        builder.beginDataflowBlock();
        Var embedding = weight("tok_embeddings",
                               {config_.vocabSize, config_.hiddenSize});
        Expr x = builder.emit(op::take(embedding, ids), "embed");

        std::vector<Var> new_k, new_v;
        for (int64_t layer = 0; layer < config_.numLayers; ++layer) {
            x = buildLayer(builder, x, layer, is_decode, data_b, seq,
                           is_decode ? Expr(k_caches[layer]) : Expr(),
                           is_decode ? Expr(v_caches[layer]) : Expr(),
                           &new_k, &new_v);
        }
        Var norm_w = weight("final_norm", {config_.hiddenSize});
        Expr normed = builder.emit(op::rmsNorm(x, norm_w), "final_norm_out");
        Var head = weight("lm_head", {config_.vocabSize,
                                      config_.hiddenSize});
        Var logits = builder.emitOutput(
            matmulWeight(builder, normed, head, "vocab"), "logits");

        // Outputs: logits plus the updated caches.
        std::vector<Expr> outs{logits};
        std::vector<Var> out_caches;
        for (int64_t layer = 0; layer < config_.numLayers; ++layer) {
            outs.push_back(new_k[layer]);
            outs.push_back(new_v[layer]);
        }
        builder.endBlock();

        builder.beginBindingBlock();
        Var result = builder.emitOutput(makeTuple(outs), "result");
        builder.endBlock();

        params_.insert(params_.end(), weights_.begin(), weights_.end());
        Function func = makeFunction(params_, builder.finish(result),
                                     result->structInfo());
        const char* fn_name = kind == FnKind::kPrefill ? "prefill"
                              : ragged_                ? "decode_ragged"
                                                       : "decode";
        if (ragged_ && is_decode) {
            // The serving engine passes each layer's persistent page
            // pool with the intent that the kernel writes through it;
            // donating the pool params licenses InplacePlanPass to alias
            // the KV-append outputs onto them. Weights and token inputs
            // are NOT donated — writing through those is never legal.
            std::string donated;
            for (const auto& cache : k_caches) {
                donated += cache->name + ";";
            }
            for (const auto& cache : v_caches) {
                donated += cache->name + ";";
            }
            if (!donated.empty()) donated.pop_back();
            func->attrs["donatable_params"] = donated;
        }
        module_->addFunction(fn_name, func);
        if (weightNames_ && kind == FnKind::kDecode) {
            weightNames_->clear();
            for (const auto& w : weights_) weightNames_->push_back(w->name);
        }
    }

  private:
    /** Declares (or reuses) a named fp16 weight parameter. */
    Var
    weight(const std::string& name, std::vector<int64_t> dims)
    {
        std::vector<PrimExpr> shape;
        for (int64_t d : dims) shape.push_back(intImm(d));
        Var v = makeVar(name, tensorSInfo(std::move(shape), dtype_));
        weights_.push_back(v);
        return v;
    }

    /**
     * x @ W^T for an [out, in] weight; under q4 quantization the weight is
     * stored packed and decoded by the Fig. 9 custom tensor program that
     * fusion later merges into the matmul.
     *
     * `tp` is the Megatron-style tensor-parallel role of the weight —
     * "col" (output-dim split, no communication), "row" (input-dim split,
     * partial sums all-reduced) or "vocab" (output-dim split, results
     * all-gathered) — recorded as a call attribute for ShardPass. The
     * annotation is inert unless the sharding pass runs; quantized
     * weights are not annotated (not shardable yet).
     */
    Expr
    matmulWeight(shape::BlockBuilder& builder, Expr x, Var w,
                 const char* tp = nullptr)
    {
        if (config_.quant == Quant::kF16) {
            ir::Call mm = op::matmul(x, w, /*transpose_b=*/true);
            if (tp) mm->attrs["tp"] = std::string(tp);
            return builder.emit(mm, w->name + "_mm");
        }
        // Quantized: w holds [out, in]; the packed params replace it.
        const auto* tensor = asTensor(w->structInfo());
        int64_t out_dim = *asIntImm((*tensor->shape)[0]);
        int64_t in_dim = *asIntImm((*tensor->shape)[1]);
        // Replace the fp16 weight with the packed params (erase by
        // identity: other weights may have been declared since).
        weights_.erase(std::find(weights_.begin(), weights_.end(), w));
        Var wdata = makeVar(w->name + "_q4data",
                            tensorSInfo({intImm(in_dim),
                                         intImm((out_dim + 7) / 8)},
                                        DataType::u32()));
        Var wscale = makeVar(w->name + "_q4scale",
                             tensorSInfo({intImm(in_dim),
                                          intImm((out_dim + 31) / 32)},
                                         dtype_));
        weights_.push_back(wdata);
        weights_.push_back(wscale);
        std::string kernel_name = module_->uniqueName("decode_q4");
        tir::PrimFunc decode = op::makeDecodeQ4Func(
            kernel_name, intImm(in_dim), intImm(out_dim), dtype_);
        GlobalVar gv = module_->addTIRFunc(decode);
        Expr decoded = builder.emit(
            callTIR(gv, {wdata, wscale},
                    tensorSInfo({intImm(in_dim), intImm(out_dim)}, dtype_)),
            w->name + "_deq");
        return builder.emit(op::matmul(x, decoded), w->name + "_mm");
    }

    Expr
    buildLayer(shape::BlockBuilder& builder, Expr x, int64_t layer,
               bool is_decode, PrimExpr b, PrimExpr seq, Expr k_cache,
               Expr v_cache, std::vector<Var>* new_k,
               std::vector<Var>* new_v)
    {
        std::string prefix = "l" + std::to_string(layer) + "_";
        int64_t h = config_.hiddenSize;
        int64_t heads = config_.numHeads;
        int64_t hd = config_.headDim;
        int64_t proj = heads * hd;

        Var attn_norm_w = weight(prefix + "attn_norm", {h});
        Expr normed = builder.emit(op::rmsNorm(x, attn_norm_w),
                                   prefix + "attn_norm_out");

        auto project = [&](const std::string& name) {
            Var w = weight(prefix + name, {proj, h});
            Expr p = matmulWeight(builder, normed, w, "col");
            // Under tensor parallelism the head axis is the sharded one:
            // each shard reshapes its proj/N columns into heads/N heads.
            ir::Call reshape_call = op::reshape(
                p, makeShapeExpr({b, seq, intImm(heads), intImm(hd)}));
            reshape_call->attrs["tp_dim"] = (int64_t)2;
            Expr reshaped =
                builder.emit(reshape_call, prefix + name + "_r");
            return builder.emit(op::permuteDims(reshaped, {0, 2, 1, 3}),
                                prefix + name + "_t");
        };
        Expr q = project("wq");
        Expr k = project("wk");
        Expr v = project("wv");

        Expr k_full = k, v_full = v;
        if (is_decode && ragged_) {
            // Page-pool append: scatter this call's fresh K/V into the
            // persistent pool pages named by the block table at each
            // sequence's own length offset. The frontend emits a plain
            // DPS call; InplacePlanPass proves the pool argument is dead
            // (it is donated and never read again) and rewrites the site
            // with `inplace_arg = 0`, so the append allocates nothing and
            // copies nothing — the zero-relayout contract of the serving
            // path — without any hand-placed aliasing attribute here.
            const auto* cache_info = asTensor(k_cache->structInfo());
            Call k_append = callDPSLibrary(
                "kv.append_ragged",
                {k_cache, k, seqLens_, cuFresh_, blockTable_},
                tensorSInfo(*cache_info->shape, dtype_));
            k_append->attrs["tp_dim"] = (int64_t)1; // pool head axis
            k_full = builder.emit(k_append, prefix + "k_full");
            Call v_append = callDPSLibrary(
                "kv.append_ragged",
                {v_cache, v, seqLens_, cuFresh_, blockTable_},
                tensorSInfo(*cache_info->shape, dtype_));
            v_append->attrs["tp_dim"] = (int64_t)1;
            v_full = builder.emit(v_append, prefix + "v_full");
        } else if (is_decode) {
            // Paged KV-cache append (runtime library, in-place semantics):
            // avoids copying the whole cache per step like a functional
            // concat would.
            const auto* cache_info = asTensor(k_cache->structInfo());
            PrimExpr m_plus = relax::add((*cache_info->shape)[2], intImm(1));
            StructInfo appended = tensorSInfo(
                {b, intImm(heads), m_plus, intImm(hd)}, dtype_);
            k_full = builder.emit(
                callDPSLibrary("kv.append", {k_cache, k}, appended),
                prefix + "k_full");
            v_full = builder.emit(
                callDPSLibrary("kv.append", {v_cache, v}, appended),
                prefix + "v_full");
        }
        new_k->push_back(builder.emitOutput(k_full, prefix + "k_out"));
        new_v->push_back(builder.emitOutput(v_full, prefix + "v_out"));

        double scale = 1.0 / std::sqrt((double)hd);
        Expr attn = builder.emit(
            ragged_ ? op::attentionRagged(q, new_k->back(), new_v->back(),
                                          seqLens_, cuFresh_, blockTable_,
                                          scale)
                    : op::attention(q, new_k->back(), new_v->back(), scale,
                                    /*causal=*/!is_decode),
            prefix + "attn");
        Expr attn_t = builder.emit(op::permuteDims(attn, {0, 2, 1, 3}),
                                   prefix + "attn_t");
        ir::Call flat_call =
            op::reshape(attn_t, makeShapeExpr({b, seq, intImm(proj)}));
        flat_call->attrs["tp_dim"] = (int64_t)2;
        Expr attn_flat = builder.emit(flat_call, prefix + "attn_flat");
        Var wo = weight(prefix + "wo", {h, proj});
        Expr o = matmulWeight(builder, attn_flat, wo, "row");
        Expr x1 = builder.emit(op::add(x, o), prefix + "resid1");

        Var ffn_norm_w = weight(prefix + "ffn_norm", {h});
        Expr h1 = builder.emit(op::rmsNorm(x1, ffn_norm_w),
                               prefix + "ffn_norm_out");
        Var w_gate = weight(prefix + "w_gate", {config_.ffnSize, h});
        Var w_up = weight(prefix + "w_up", {config_.ffnSize, h});
        Expr gate = matmulWeight(builder, h1, w_gate, "col");
        Expr up = matmulWeight(builder, h1, w_up, "col");
        Expr act = builder.emit(config_.activation == "gelu"
                                    ? op::gelu(gate)
                                    : op::silu(gate),
                                prefix + "act");
        Expr prod = builder.emit(op::multiply(act, up), prefix + "ffn_mul");
        Var w_down = weight(prefix + "w_down", {h, config_.ffnSize});
        Expr down = matmulWeight(builder, prod, w_down, "row");
        return builder.emit(op::add(x1, down), prefix + "resid2");
    }

    LlamaConfig config_;
    IRModulePtr module_;
    std::vector<std::string>* weightNames_;
    DataType dtype_;
    std::vector<Var> weights_;
    std::vector<Var> params_;
    bool ragged_ = false;
    Var seqLens_;   //!< [b] per-sequence context lengths (ragged only)
    Var cuFresh_;   //!< [b+1] cumulative packed fresh offsets (ragged only)
    Var blockTable_; //!< [b, w] paged-KV block table (ragged only)
};

} // namespace

IRModulePtr
buildLlama(const LlamaConfig& config, std::vector<std::string>* weight_names)
{
    auto module = IRModule::create();
    LlamaBuilder builder(config, module, weight_names);
    builder.buildFunction(FnKind::kPrefill);
    builder.buildFunction(FnKind::kDecode);
    builder.buildFunction(FnKind::kDecodeRagged);
    return module;
}

std::vector<NDArray>
makeLlamaWeights(const LlamaConfig& config, bool with_data, unsigned seed)
{
    // Mirror the parameter order produced by the builder: embeddings,
    // per-layer weights, final norm, lm head — introspected from the
    // decode function to stay in sync.
    std::vector<std::string> names;
    IRModulePtr module = buildLlama(config, &names);
    Function decode = module->getFunction("decode");
    size_t skip = 1 + 2 * config.numLayers; // ids + caches
    std::mt19937 rng(seed);
    std::normal_distribution<double> dist(0.0, 0.05);
    std::vector<NDArray> weights;
    for (size_t i = skip; i < decode->params.size(); ++i) {
        const auto* tensor = asTensor(decode->params[i]->structInfo());
        std::vector<int64_t> shape;
        for (const auto& dim : *tensor->shape) {
            shape.push_back(*asIntImm(dim));
        }
        if (!with_data) {
            weights.push_back(NDArray::metaOnly(shape, tensor->dtype));
            continue;
        }
        NDArray array = NDArray::zeros(shape, tensor->dtype);
        bool is_norm = decode->params[i]->name.find("norm") !=
                       std::string::npos;
        bool is_packed = tensor->dtype == DataType::u32();
        for (int64_t j = 0; j < array.numel(); ++j) {
            if (is_norm) {
                array.set(j, 1.0);
            } else if (is_packed) {
                array.set(j, (double)(rng() & 0xFFFFFFFFu));
            } else {
                array.set(j, dist(rng));
            }
        }
        weights.push_back(array);
    }
    return weights;
}

namespace {

/** Slices `count` indices starting at `start` along `dim`. Metadata-only
 *  inputs slice shape-only (timing mode never materializes weights). */
NDArray
sliceDim(const NDArray& src, size_t dim, int64_t start, int64_t count)
{
    std::vector<int64_t> shape = src.shape();
    RELAX_ICHECK(dim < shape.size()) << "sliceDim: dim out of range";
    RELAX_ICHECK(start >= 0 && start + count <= shape[dim])
        << "sliceDim: slice out of range";
    int64_t src_dim = shape[dim];
    shape[dim] = count;
    if (!src.hasData()) return NDArray::metaOnly(shape, src.dtype());
    NDArray out = NDArray::zeros(shape, src.dtype());
    int64_t inner = 1;
    for (size_t d = dim + 1; d < shape.size(); ++d) inner *= shape[d];
    int64_t outer = src.numel() / (src_dim * inner);
    const auto& in = src.data();
    auto& dst = out.data();
    for (int64_t o = 0; o < outer; ++o) {
        for (int64_t c = 0; c < count; ++c) {
            int64_t src_off = (o * src_dim + start + c) * inner;
            int64_t dst_off = (o * count + c) * inner;
            std::copy(in.begin() + src_off, in.begin() + src_off + inner,
                      dst.begin() + dst_off);
        }
    }
    return out;
}

/** Which axis of a named llama weight is sharded (Megatron layout):
 *  0 = output-dim (column-parallel + vocab split), 1 = input-dim
 *  (row-parallel), -1 = replicated. Matches the `tp` tags the builder
 *  places on the corresponding matmuls. */
int
shardAxisOf(const std::string& name)
{
    auto ends_with = [&](const char* suffix) {
        size_t n = std::strlen(suffix);
        return name.size() >= n &&
               name.compare(name.size() - n, n, suffix) == 0;
    };
    if (name.find("norm") != std::string::npos ||
        name == "tok_embeddings") {
        return -1;
    }
    if (ends_with("wo") || ends_with("w_down")) return 1;
    // wq / wk / wv / w_gate / w_up / lm_head: output-dim split.
    return 0;
}

} // namespace

std::vector<NDArray>
shardLlamaWeights(const LlamaConfig& config,
                  const std::vector<NDArray>& full, int shard,
                  int num_shards)
{
    RELAX_ICHECK(num_shards >= 1 && shard >= 0 && shard < num_shards)
        << "shardLlamaWeights: bad shard index " << shard << "/"
        << num_shards;
    if (config.quant != Quant::kF16) {
        RELAX_THROW(RuntimeError)
            << "shardLlamaWeights: quantized weights are not shardable";
    }
    std::vector<std::string> names;
    buildLlama(config, &names);
    RELAX_ICHECK(names.size() == full.size())
        << "shardLlamaWeights: expected " << names.size()
        << " weights, got " << full.size();
    std::vector<NDArray> out;
    out.reserve(full.size());
    for (size_t i = 0; i < full.size(); ++i) {
        int axis = shardAxisOf(names[i]);
        if (axis < 0 || num_shards == 1) {
            // Replicated: share the handle — weights are read-only.
            out.push_back(full[i]);
            continue;
        }
        int64_t extent = full[i].shape()[(size_t)axis];
        if (extent % num_shards != 0) {
            RELAX_THROW(RuntimeError)
                << "shardLlamaWeights: " << names[i] << " dim " << axis
                << " (" << extent << ") not divisible by " << num_shards
                << " shards";
        }
        int64_t chunk = extent / num_shards;
        out.push_back(
            sliceDim(full[i], (size_t)axis, shard * chunk, chunk));
    }
    return out;
}

NDArray
stackBatch(const std::vector<NDArray>& parts)
{
    RELAX_ICHECK(!parts.empty()) << "stackBatch: no parts";
    const NDArray& first = parts.front();
    RELAX_ICHECK(!first.shape().empty() && first.shape()[0] == 1)
        << "stackBatch: parts must have batch dimension 1";
    std::vector<int64_t> shape = first.shape();
    shape[0] = (int64_t)parts.size();
    for (const NDArray& part : parts) {
        RELAX_ICHECK(part.shape() == first.shape())
            << "stackBatch: shape mismatch";
        RELAX_ICHECK(part.dtype() == first.dtype())
            << "stackBatch: dtype mismatch";
        RELAX_ICHECK(part.hasData() == first.hasData())
            << "stackBatch: mixed data/metadata parts";
    }
    if (!first.hasData()) return NDArray::metaOnly(shape, first.dtype());
    NDArray batched = NDArray::zeros(shape, first.dtype());
    int64_t row = first.numel();
    for (size_t i = 0; i < parts.size(); ++i) {
        const auto& src = parts[i].data();
        std::copy(src.begin(), src.end(),
                  batched.data().begin() + (int64_t)i * row);
    }
    return batched;
}

std::vector<NDArray>
splitBatch(const NDArray& batched)
{
    RELAX_ICHECK(!batched.shape().empty()) << "splitBatch: rank-0 tensor";
    int64_t b = batched.shape()[0];
    std::vector<int64_t> shape = batched.shape();
    shape[0] = 1;
    std::vector<NDArray> parts;
    parts.reserve(b);
    if (!batched.hasData()) {
        for (int64_t i = 0; i < b; ++i) {
            parts.push_back(NDArray::metaOnly(shape, batched.dtype()));
        }
        return parts;
    }
    int64_t row = batched.numel() / std::max<int64_t>(b, 1);
    for (int64_t i = 0; i < b; ++i) {
        NDArray part = NDArray::zeros(shape, batched.dtype());
        std::copy(batched.data().begin() + i * row,
                  batched.data().begin() + (i + 1) * row,
                  part.data().begin());
        parts.push_back(std::move(part));
    }
    return parts;
}

} // namespace frontend
} // namespace relax
