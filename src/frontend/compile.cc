/**
 * @file
 * Implements the compile() driver: derives the pass-facing TargetInfo
 * from the device spec (library names per backend, execution-graph
 * support, GEMM row threshold), assembles the Fig. 13 pipeline with
 * each optimization gated by its CompileOptions toggle, and hands the
 * lowered module to VM codegen.
 */
#include "frontend/compile.h"

#include <algorithm>

namespace relax {
namespace frontend {

passes::TargetInfo
targetFromDevice(const device::DeviceSpec& spec,
                 const CompileOptions& options)
{
    passes::TargetInfo target;
    if (options.enableLibraryLowering && spec.hasGemmLibrary) {
        if (spec.backend == "cuda") {
            target.gemmLibrary = "cublas";
        } else if (spec.backend == "rocm") {
            target.gemmLibrary = "rocblas";
        } else if (spec.backend == "metal") {
            target.gemmLibrary = "mps";
        }
    }
    if (options.enableLibraryLowering && spec.hasAttentionLibrary) {
        target.attentionLibrary = "flashattn";
    }
    if (options.enableLibraryLowering && spec.hasEpilogueLibrary) {
        target.epilogueLibrary = "cutlass";
    }
    target.supportsExecutionGraphs =
        options.enableGraphOffload && spec.supportsExecutionGraphs;
    target.graphBucketTokens = std::max<int64_t>(options.graphBucketTokens, 1);
    target.libraryGemmMinRows = options.libraryGemmMinRows;
    return target;
}

vm::ExecutablePtr
compile(ir::IRModulePtr module, const CompileOptions& options)
{
    passes::TargetInfo target = targetFromDevice(options.device, options);
    passes::Pipeline pipeline;
    if (options.tensorParallel > 1) {
        // Sharding must see the frontend's tp annotations before any
        // lowering rewrites them away.
        pipeline.add(passes::shardPass(options.tensorParallel));
    }
    pipeline.add(passes::normalizePass()).add(passes::constantFoldPass());
    if (options.enableLibraryLowering) {
        pipeline.add(passes::partialLibraryLoweringPass(target));
    }
    pipeline.add(passes::legalizeOpsPass())
        .add(passes::deadCodeEliminationPass())
        .add(passes::annotateTIRPatternsPass());
    if (options.enableFusion) {
        pipeline.add(passes::fuseOpsPass())
            .add(passes::fuseTensorIRPass());
    }
    pipeline.add(passes::workspaceLiftingPass());
    if (options.enableInplacePlanning) {
        pipeline.add(passes::inplacePlanPass());
    }
    pipeline.add(passes::lowerCallTIRPass());
    if (options.enableMemoryPlanning) {
        pipeline.add(passes::staticMemoryPlanPass(options.bounds));
    }
    if (target.supportsExecutionGraphs) {
        pipeline.add(passes::graphOffloadPass(target));
    }
    module = pipeline.run(std::move(module), /*check_well_formed=*/false);
    return vm::buildExecutable(module);
}

} // namespace frontend
} // namespace relax
