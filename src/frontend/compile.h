/**
 * @file
 * End-to-end compilation driver: runs the Fig. 13 pipeline for a target
 * device and builds a VM executable. Individual optimizations can be
 * toggled for the ablation study (Fig. 17).
 */
#ifndef RELAX_FRONTEND_COMPILE_H_
#define RELAX_FRONTEND_COMPILE_H_

#include "device/device.h"
#include "passes/passes.h"
#include "vm/exec.h"

namespace relax {
namespace frontend {

/** Compilation options; defaults enable every optimization the target
 *  supports. */
struct CompileOptions
{
    device::DeviceSpec device;
    passes::SymBounds bounds;
    bool enableLibraryLowering = true;
    bool enableFusion = true;
    /** Automatic in-place planning (alias/liveness-driven `inplace_arg`
     *  rewriting). Off = every DPS call allocates its output. */
    bool enableInplacePlanning = true;
    bool enableMemoryPlanning = true;
    bool enableGraphOffload = true;
    /**
     * Bucket size for execution-graph capture signatures (see
     * TargetInfo::graphBucketTokens). 1 keys graphs by exact shapes;
     * larger values round symbolic dims up to a block boundary so
     * nearby shapes replay one captured graph. 0 means "auto": plain
     * compiles behave like 1, while the serving engine substitutes its
     * KV block size so graph buckets align with KV page boundaries.
     */
    int64_t graphBucketTokens = 0;
    /** Minimum GEMM row count for library dispatch (see TargetInfo). */
    int64_t libraryGemmMinRows = 2;
    /**
     * Tensor-parallel shard count. When > 1, ShardPass rewrites
     * `decode_ragged` into the per-shard program of an N-way device
     * group (weights and KV pools divided, explicit ccl.* collective
     * sites) before any other pass runs; one compiled executable then
     * serves every shard. 1 leaves the pipeline byte-identical to the
     * single-device build.
     */
    int64_t tensorParallel = 1;
};

/** Derives the pass-facing target description from a device spec. */
passes::TargetInfo targetFromDevice(const device::DeviceSpec& spec,
                                    const CompileOptions& options);

/** Optimizes and compiles the module into a VM executable. */
vm::ExecutablePtr compile(ir::IRModulePtr module,
                          const CompileOptions& options);

} // namespace frontend
} // namespace relax

#endif // RELAX_FRONTEND_COMPILE_H_
