/**
 * @file
 * Forward symbolic shape deduction (§4.1).
 *
 * Deduction is forward and local: the annotation of an expression follows
 * from the annotations of its inputs. Function calls are resolved through
 * signatures only ("isolated symbolic relations at function boundaries"):
 * parameter annotations are unified against argument annotations, binding
 * the callee's symbolic variables, and the return annotation is rewritten
 * under that binding (Fig. 7). When unification cannot bind a variable
 * (coarse-grained arguments), the result degrades to the rank/dtype-only
 * fallback rather than failing.
 */
#ifndef RELAX_SHAPE_DEDUCE_H_
#define RELAX_SHAPE_DEDUCE_H_

#include "ir/module.h"

namespace relax {
namespace shape {

/** Unification outcome at a function boundary. */
enum class UnifyResult {
    kExact,   //!< all symbolic relations resolved
    kCoarse,  //!< arguments too coarse; result must be erased to ranks
    kMismatch //!< provably incompatible (rank/dtype conflict)
};

/**
 * Unifies a parameter annotation against an argument annotation, binding
 * the parameter's bare symbolic dims into `binding`. Never throws; coarse
 * arguments yield kCoarse (the caller erases symbolic detail, §4.1).
 */
UnifyResult unifySInfo(const ir::StructInfo& param, const ir::StructInfo& arg,
                       VarMap* binding);

/** Drops symbolic detail, keeping rank/dtype (the "safety net" fallback). */
ir::StructInfo eraseToCoarse(const ir::StructInfo& sinfo);

/**
 * Deduces the annotation of an expression. Registered operator rules
 * handle Op calls; GlobalVar / closure calls go through signature
 * unification; cross-level calls take their annotation from the explicit
 * output StructInfo argument (Fig. 4). Returns Object when nothing better
 * is known.
 */
ir::StructInfo deduceStructInfo(const ir::Expr& expr,
                                const ir::IRModulePtr& module);

} // namespace shape
} // namespace relax

#endif // RELAX_SHAPE_DEDUCE_H_
