/**
 * @file
 * Forward shape deduction by unification: unifyDims / unifySInfo match
 * callee parameter annotations against argument struct info, binding
 * symbolic variables at first occurrence and checking consistency
 * afterwards; worstOf merges per-dimension verdicts into the verdict
 * for the call.
 */
#include "shape/deduce.h"

#include "arith/analyzer.h"
#include "ir/op_registry.h"
#include "tir/transform.h"

namespace relax {
namespace shape {

using namespace ir;

namespace {

UnifyResult
worstOf(UnifyResult a, UnifyResult b)
{
    return (int)a > (int)b ? a : b;
}

/** Unification runs in two phases so symbolic variables bound by *later*
 *  parameters (e.g. the extra Shape argument of fused functions, Fig. 8)
 *  are visible when verifying composite dims of earlier parameters. */
enum class Phase { kBind, kVerify };

UnifyResult
unifyDims(const std::optional<std::vector<PrimExpr>>& param_dims,
          int param_ndim, const std::optional<std::vector<PrimExpr>>& arg_dims,
          int arg_ndim, VarMap* binding, Phase phase)
{
    if (!param_dims) {
        if (param_ndim != kUnknownNDim && arg_ndim != kUnknownNDim &&
            param_ndim != arg_ndim) {
            return UnifyResult::kMismatch;
        }
        return UnifyResult::kExact; // parameter imposes no symbolic detail
    }
    if (!arg_dims) {
        if (arg_ndim != kUnknownNDim &&
            (int)param_dims->size() != arg_ndim) {
            return UnifyResult::kMismatch;
        }
        return UnifyResult::kCoarse;
    }
    if (param_dims->size() != arg_dims->size()) {
        return UnifyResult::kMismatch;
    }
    Analyzer analyzer;
    UnifyResult result = UnifyResult::kExact;
    if (phase == Phase::kBind) {
        for (size_t i = 0; i < param_dims->size(); ++i) {
            const PrimExpr& p = (*param_dims)[i];
            const PrimExpr& c = (*arg_dims)[i];
            if (p->kind() != ExprKind::kVar) continue;
            const auto* v = static_cast<const ::relax::VarNode*>(p.get());
            if (auto it = binding->find(v); it != binding->end()) {
                if (!analyzer.proveEqual(it->second, c)) {
                    return UnifyResult::kMismatch;
                }
            } else {
                (*binding)[v] = c;
            }
        }
        return result;
    }
    // Verify phase: composite dims must prove equal under the bindings;
    // unprovable symbolic residue downgrades to coarse (runtime checked).
    for (size_t i = 0; i < param_dims->size(); ++i) {
        const PrimExpr& p = (*param_dims)[i];
        const PrimExpr& c = (*arg_dims)[i];
        if (p->kind() == ExprKind::kVar) continue;
        // Callee-side vars left unbound by the bind phase mean the
        // relation cannot be resolved statically -> coarse fallback.
        std::unordered_set<const ::relax::VarNode*> pattern_vars;
        collectVars(p, &pattern_vars);
        bool unbound = false;
        for (const auto* v : pattern_vars) unbound |= !binding->count(v);
        if (unbound) {
            result = worstOf(result, UnifyResult::kCoarse);
            continue;
        }
        PrimExpr substituted = substitute(p, *binding);
        if (!analyzer.proveEqual(substituted, c)) {
            std::unordered_set<const ::relax::VarNode*> free_vars;
            collectVars(c, &free_vars);
            collectVars(substituted, &free_vars);
            if (free_vars.empty()) {
                return UnifyResult::kMismatch; // constant conflict
            }
            result = worstOf(result, UnifyResult::kCoarse);
        }
    }
    return result;
}

UnifyResult unifySInfoPhase(const StructInfo& param, const StructInfo& arg,
                            VarMap* binding, Phase phase);

UnifyResult
unifySInfoPhaseImpl(const StructInfo& param, const StructInfo& arg,
                    VarMap* binding, Phase phase)
{
    if (!param || param->kind() == SInfoKind::kObject) {
        return UnifyResult::kExact;
    }
    if (!arg) return UnifyResult::kCoarse;
    if (arg->kind() == SInfoKind::kObject) return UnifyResult::kCoarse;
    if (param->kind() != arg->kind()) return UnifyResult::kMismatch;
    switch (param->kind()) {
      case SInfoKind::kPrim: {
        const auto* pp = asPrim(param);
        const auto* pa = asPrim(arg);
        if (phase == Phase::kBind && pp->value &&
            pp->value->kind() == ExprKind::kVar && pa->value) {
            const auto* v =
                static_cast<const ::relax::VarNode*>(pp->value.get());
            binding->emplace(v, pa->value);
        }
        return UnifyResult::kExact;
      }
      case SInfoKind::kShape: {
        const auto* sp = asShape(param);
        const auto* sa = asShape(arg);
        return unifyDims(sp->values, sp->ndim, sa->values, sa->ndim, binding,
                         phase);
      }
      case SInfoKind::kTensor: {
        const auto* tp = asTensor(param);
        const auto* ta = asTensor(arg);
        if (!tp->dtype.isVoid() && !ta->dtype.isVoid() &&
            tp->dtype != ta->dtype) {
            return UnifyResult::kMismatch;
        }
        return unifyDims(tp->shape, tp->ndim, ta->shape, ta->ndim, binding,
                         phase);
      }
      case SInfoKind::kTuple: {
        const auto* tp = asTuple(param);
        const auto* ta = asTuple(arg);
        if (tp->fields.size() != ta->fields.size()) {
            return UnifyResult::kMismatch;
        }
        UnifyResult result = UnifyResult::kExact;
        for (size_t i = 0; i < tp->fields.size(); ++i) {
            result = worstOf(result,
                             unifySInfoPhase(tp->fields[i], ta->fields[i],
                                             binding, phase));
            if (result == UnifyResult::kMismatch) return result;
        }
        return result;
      }
      case SInfoKind::kCallable:
        return UnifyResult::kExact;
      case SInfoKind::kObject:
        return UnifyResult::kExact;
    }
    return UnifyResult::kCoarse;
}

UnifyResult
unifySInfoPhase(const StructInfo& param, const StructInfo& arg,
                VarMap* binding, Phase phase)
{
    return unifySInfoPhaseImpl(param, arg, binding, phase);
}

} // namespace

UnifyResult
unifySInfo(const StructInfo& param, const StructInfo& arg, VarMap* binding)
{
    UnifyResult bind = unifySInfoPhase(param, arg, binding, Phase::kBind);
    if (bind == UnifyResult::kMismatch) return bind;
    return worstOf(bind,
                   unifySInfoPhase(param, arg, binding, Phase::kVerify));
}

StructInfo
eraseToCoarse(const StructInfo& sinfo)
{
    if (!sinfo) return objectSInfo();
    switch (sinfo->kind()) {
      case SInfoKind::kTensor: {
        const auto* node = asTensor(sinfo);
        return tensorSInfoNDim(node->ndim, node->dtype);
      }
      case SInfoKind::kShape:
        return shapeSInfoNDim(asShape(sinfo)->ndim);
      case SInfoKind::kPrim:
        return primSInfo(asPrim(sinfo)->dtype);
      case SInfoKind::kTuple: {
        std::vector<StructInfo> fields;
        for (const auto& field : asTuple(sinfo)->fields) {
            fields.push_back(eraseToCoarse(field));
        }
        return tupleSInfo(std::move(fields));
      }
      default:
        return sinfo;
    }
}

namespace {

/** Simplifies symbolic dims after substitution, e.g. (n+1)*4 stays but
 *  n*2*2 becomes 4*n, keeping annotations canonical across passes. */
StructInfo
simplifySInfo(const StructInfo& sinfo)
{
    Analyzer analyzer;
    if (const auto* tensor = asTensor(sinfo); tensor && tensor->shape) {
        std::vector<PrimExpr> dims;
        for (const auto& d : *tensor->shape) {
            dims.push_back(analyzer.simplify(d));
        }
        return tensorSInfo(std::move(dims), tensor->dtype);
    }
    if (const auto* shp = asShape(sinfo); shp && shp->values) {
        std::vector<PrimExpr> dims;
        for (const auto& d : *shp->values) {
            dims.push_back(analyzer.simplify(d));
        }
        return shapeSInfo(std::move(dims));
    }
    if (const auto* tuple = asTuple(sinfo)) {
        std::vector<StructInfo> fields;
        for (const auto& field : tuple->fields) {
            fields.push_back(simplifySInfo(field));
        }
        return tupleSInfo(std::move(fields));
    }
    return sinfo;
}

/** Deduction at a function boundary from a Callable signature. */
StructInfo
deduceSignatureCall(const CallableSInfoNode* signature, const ir::CallNode& call)
{
    if (!signature->params) {
        return signature->ret ? eraseToCoarse(signature->ret) : objectSInfo();
    }
    if (signature->params->size() != call.args.size()) {
        RELAX_THROW(ShapeError)
            << "call arity mismatch: expected " << signature->params->size()
            << " arguments, got " << call.args.size();
    }
    // Two passes over all parameters: bind bare symbolic vars everywhere
    // first, then verify composite annotations — variables supplied by a
    // later Shape parameter (Fig. 8) thus reach earlier composite dims.
    VarMap binding;
    UnifyResult result = UnifyResult::kExact;
    for (Phase phase : {Phase::kBind, Phase::kVerify}) {
        for (size_t i = 0; i < call.args.size(); ++i) {
            result = worstOf(result, unifySInfoPhase(
                                         (*signature->params)[i],
                                         call.args[i]->structInfo(),
                                         &binding, phase));
            if (result == UnifyResult::kMismatch) {
                RELAX_THROW(ShapeError)
                    << "argument " << i << " incompatible with parameter "
                    << "annotation " << toString((*signature->params)[i])
                    << " (got " << toString(call.args[i]->structInfo())
                    << ")";
            }
        }
    }
    StructInfo ret = signature->ret ? signature->ret : objectSInfo();
    if (result == UnifyResult::kCoarse) {
        // Per §4.1 the symbolic relations cannot be resolved; degrade but
        // keep rank and dtype (Fig. 7, lv3).
        return eraseToCoarse(ret);
    }
    return simplifySInfo(substituteSInfo(ret, binding));
}

} // namespace

StructInfo
deduceStructInfo(const Expr& expr, const IRModulePtr& module)
{
    if (!expr) return objectSInfo();
    switch (expr->kind()) {
      case RxKind::kVar:
      case RxKind::kConstant:
      case RxKind::kShapeExpr:
      case RxKind::kPrimValue:
        return expr->structInfo() ? expr->structInfo() : objectSInfo();
      case RxKind::kTuple: {
        const auto* node = static_cast<const TupleNode*>(expr.get());
        std::vector<StructInfo> fields;
        for (const auto& field : node->fields) {
            fields.push_back(deduceStructInfo(field, module));
        }
        return tupleSInfo(std::move(fields));
      }
      case RxKind::kTupleGetItem: {
        const auto* node = static_cast<const TupleGetItemNode*>(expr.get());
        StructInfo tuple_info = deduceStructInfo(node->tuple, module);
        if (const auto* tuple = asTuple(tuple_info)) {
            if (node->index < 0 ||
                node->index >= (int)tuple->fields.size()) {
                RELAX_THROW(IRError)
                    << "tuple index " << node->index << " out of range";
            }
            return tuple->fields[node->index];
        }
        return objectSInfo();
      }
      case RxKind::kFunction:
      case RxKind::kGlobalVar:
      case RxKind::kExternFunc:
      case RxKind::kOp:
        return expr->structInfo() ? expr->structInfo() : objectSInfo();
      case RxKind::kIf: {
        const auto* node = static_cast<const IfNode*>(expr.get());
        StructInfo then_info = node->thenBranch->structInfo();
        StructInfo else_info = node->elseBranch->structInfo();
        if (then_info && else_info) {
            if (sInfoEqual(then_info, else_info)) return then_info;
            if (then_info->kind() == else_info->kind()) {
                return eraseToCoarse(then_info);
            }
        }
        return objectSInfo();
      }
      case RxKind::kSeqExpr: {
        const auto* node = static_cast<const SeqExprNode*>(expr.get());
        return node->body->structInfo() ? node->body->structInfo()
                                        : objectSInfo();
      }
      case RxKind::kCall: {
        const auto* call = static_cast<const ir::CallNode*>(expr.get());
        // Cross-level calls: annotation travels explicitly (Fig. 4).
        if (isOpCall(expr, "relax.call_tir") ||
            isOpCall(expr, "relax.call_dps_library") ||
            isOpCall(expr, "relax.call_packed")) {
            RELAX_ICHECK(!call->sinfoArgs.empty())
                << "cross-level call without output annotation";
            return call->sinfoArgs.size() == 1
                       ? call->sinfoArgs[0]
                       : tupleSInfo(call->sinfoArgs);
        }
        // High-level operator with a registered deduction rule.
        if (call->op->kind() == RxKind::kOp) {
            const auto* op = static_cast<const OpNode*>(call->op.get());
            if (const OpInfo* info = OpRegistry::global().find(op->name);
                info && info->inferStructInfo) {
                return simplifySInfo(info->inferStructInfo(*call));
            }
            return objectSInfo();
        }
        // Subgraph function call through a module-level symbol.
        if (call->op->kind() == RxKind::kGlobalVar) {
            const auto* gv =
                static_cast<const GlobalVarNode*>(call->op.get());
            if (module) {
                if (Function callee = module->getFunction(gv->name)) {
                    const auto* signature =
                        asCallable(callee->structInfo());
                    RELAX_ICHECK(signature) << "function without signature";
                    return deduceSignatureCall(signature, *call);
                }
            }
            return objectSInfo();
        }
        // First-class function value (Callable annotation).
        if (const auto* signature = asCallable(call->op->structInfo())) {
            return deduceSignatureCall(signature, *call);
        }
        return objectSInfo();
      }
    }
    return objectSInfo();
}

} // namespace shape
} // namespace relax
