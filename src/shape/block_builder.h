/**
 * @file
 * BlockBuilder: the construction API for Relax functions. Emitting a value
 * runs forward shape deduction immediately, so annotations are maintained
 * during model construction and inside every compiler pass (§4.1).
 */
#ifndef RELAX_SHAPE_BLOCK_BUILDER_H_
#define RELAX_SHAPE_BLOCK_BUILDER_H_

#include <string>
#include <vector>

#include "shape/deduce.h"

namespace relax {
namespace shape {

/** Builds one function body as a sequence of binding blocks. */
class BlockBuilder
{
  public:
    explicit BlockBuilder(ir::IRModulePtr module)
        : module_(std::move(module)) {}

    /** Opens a dataflow (pure, straight-line) block. */
    void
    beginDataflowBlock()
    {
        RELAX_ICHECK(!current_) << "block already open";
        current_ = std::make_shared<ir::BindingBlockNode>(true);
    }

    /** Opens a plain binding block (effects and control flow allowed). */
    void
    beginBindingBlock()
    {
        RELAX_ICHECK(!current_) << "block already open";
        current_ = std::make_shared<ir::BindingBlockNode>(false);
    }

    /** Closes the open block. */
    void
    endBlock()
    {
        RELAX_ICHECK(current_) << "no open block";
        if (!current_->bindings.empty()) blocks_.push_back(current_);
        current_ = nullptr;
    }

    /**
     * Binds `value` to a fresh variable with a deduced annotation. Inside a
     * dataflow block the variable is block-local.
     */
    ir::Var
    emit(ir::Expr value, const std::string& hint = "lv")
    {
        return emitInternal(std::move(value), hint,
                            current_ && current_->isDataflow);
    }

    /**
     * Binds `value` to a non-dataflow variable so it remains visible after
     * the dataflow block ends (a dataflow "output").
     */
    ir::Var
    emitOutput(ir::Expr value, const std::string& hint = "gv")
    {
        return emitInternal(std::move(value), hint, false);
    }

    /**
     * Emits `var = match_cast(value, target)`: asserts the annotation at
     * runtime and introduces its symbolic variables for later deduction
     * (§3.2).
     */
    ir::Var
    emitMatchCast(ir::Expr value, ir::StructInfo target,
                  const std::string& hint = "lv")
    {
        RELAX_ICHECK(current_) << "no open block";
        ir::Var v = ir::makeVar(freshName(hint), target,
                                current_->isDataflow);
        ir::Binding binding;
        binding.var = v;
        binding.value = std::move(value);
        binding.isMatchCast = true;
        binding.castInfo = std::move(target);
        current_->bindings.push_back(std::move(binding));
        return v;
    }

    /** Finishes the body: closes nothing, wraps blocks + result. */
    ir::SeqExpr
    finish(ir::Expr body)
    {
        RELAX_ICHECK(!current_) << "unclosed block";
        auto seq = ir::makeSeqExpr(std::move(blocks_), std::move(body));
        blocks_.clear();
        return seq;
    }

    const ir::IRModulePtr& module() const { return module_; }

  private:
    ir::Var
    emitInternal(ir::Expr value, const std::string& hint, bool dataflow)
    {
        RELAX_ICHECK(current_) << "no open block";
        ir::StructInfo sinfo = deduceStructInfo(value, module_);
        value->setStructInfo(sinfo);
        ir::Var v = ir::makeVar(freshName(hint), sinfo, dataflow);
        ir::Binding binding;
        binding.var = v;
        binding.value = std::move(value);
        current_->bindings.push_back(std::move(binding));
        return v;
    }

    std::string
    freshName(const std::string& hint)
    {
        return hint + std::to_string(counter_++);
    }

    ir::IRModulePtr module_;
    std::vector<ir::BindingBlock> blocks_;
    ir::BindingBlock current_;
    int counter_ = 0;
};

} // namespace shape
} // namespace relax

#endif // RELAX_SHAPE_BLOCK_BUILDER_H_
