/**
 * @file
 * Dynamic shape-aware static memory planning (Algorithm 3, Fig. 10).
 *
 * After LowerCallTIR exposes allocations, this pass runs liveness over the
 * linear binding sequence and replaces builtin.alloc_tensor with storage
 * reuse:
 *
 *     s0  = relax.memory.alloc_storage(size)     (once per storage)
 *     lv0 = relax.memory.alloc_tensor(s0)        (instantiation)
 *
 * Reuse of a free storage is legal when the symbolic analyzer proves the
 * byte sizes equal (RequestReuseWithSymShape), e.g. a (2, n) f32 tensor
 * reuses an (n, 2) f32 storage. When upper bounds for the symbolic
 * variables are supplied (the LLM context length / max batch), sizes
 * resolve to constants, any smaller-or-equal request reuses a free
 * storage, and the whole plan becomes static — the prerequisite for
 * CUDA Graph offloading (§4.5) and for memory-constrained targets (§5.3).
 */
#include "passes/passes.h"

#include <unordered_map>

#include "arith/analyzer.h"
#include "ir/utils.h"
#include "passes/alias_analysis.h"

namespace relax {
namespace passes {

using namespace ir;
using Var = ir::Var;
using VarNode = ir::VarNode;
using CallNode = ir::CallNode;

namespace {

struct PlannedStorage
{
    Var storageVar;
    PrimExpr sizeExpr;             //!< symbolic size in bytes
    std::optional<int64_t> upper;  //!< static upper bound when known
    bool free = false;
    size_t firstUse = 0;
};

class Planner
{
  public:
    Planner(const Function& func, const SymBounds& bounds) : func_(func)
    {
        // Bind named upper bounds to the symbolic vars of this function.
        std::unordered_set<const ::relax::VarNode*> sym_vars;
        for (const auto& param : func->params) {
            collectSymVars(param->structInfo(), &sym_vars);
        }
        const auto* seq = static_cast<const SeqExprNode*>(func->body.get());
        for (const auto& block : seq->blocks) {
            for (const auto& binding : block->bindings) {
                if (binding.var->structInfo()) {
                    collectSymVars(binding.var->structInfo(), &sym_vars);
                }
            }
        }
        for (const auto* v : sym_vars) {
            if (auto it = bounds.find(v->name); it != bounds.end()) {
                analyzer_.bindVarBound(
                    std::static_pointer_cast<const ::relax::VarNode>(
                        std::static_pointer_cast<
                            const ::relax::PrimExprNode>(
                            v->sharedFromThis())),
                    1, it->second);
            }
        }
    }

    /** Runs the plan; returns the rewritten function. */
    Function
    run()
    {
        const auto* seq = static_cast<const SeqExprNode*>(func_->body.get());
        RELAX_ICHECK(seq->blocks.size() == 1 && !seq->blocks[0]->isDataflow)
            << "memory planning expects the lowered single-block form";
        const auto& bindings = seq->blocks[0]->bindings;

        // Liveness and aliasing come from the shared analysis: a tensor
        // dies at the last use of ANY var sharing one of its storage
        // roots — rebinds, tuple packaging and in-place kernel outputs
        // chained onto it all extend the live range, so the planner's
        // reuse decisions agree with the alias facts by construction
        // (VerifyAliasSafety re-checks the planned module in debug).
        AliasLivenessAnalysis analysis(func_);
        auto lastUseOf = [&](const VarNode* v) {
            size_t last = analysis.lastLiveIndex(v);
            return last == AliasLivenessAnalysis::kNeverUsed ? 0 : last;
        };

        // Walk bindings, assigning storage to each allocation.
        auto block = std::make_shared<BindingBlockNode>(false);
        std::unordered_map<const VarNode*, size_t> var_storage;
        std::vector<std::pair<size_t, size_t>> expiry; // (last_use, storage)
        bool all_static = true;
        for (size_t i = 0; i < bindings.size(); ++i) {
            // Recycle storages whose tensors died before this binding.
            for (auto& [death, sid] : expiry) {
                if (death <= i && death != SIZE_MAX) {
                    storages_[sid].free = true;
                    death = SIZE_MAX;
                }
            }
            const Binding& binding = bindings[i];
            if (!isOpCall(binding.value, "relax.builtin.alloc_tensor")) {
                block->bindings.push_back(binding);
                continue;
            }
            const auto* call =
                static_cast<const CallNode*>(binding.value.get());
            const auto* tensor = asTensor(call->sinfoArgs[0]);
            RELAX_ICHECK(tensor && tensor->shape)
                << "cannot plan allocation without a symbolic shape for "
                << binding.var->name << " (data-dependent shapes use the "
                << "runtime allocator)";
            PrimExpr size = intImm((int64_t)tensor->dtype.bytes());
            for (const auto& dim : *tensor->shape) size = mul(size, dim);
            size = analyzer_.simplify(size);
            auto upper = analyzer_.upperBound(size);
            all_static &= upper.has_value();

            size_t sid = requestStorage(size, upper, &block->bindings);
            storages_[sid].free = false;
            var_storage[binding.var.get()] = sid;
            expiry.emplace_back(lastUseOf(binding.var.get()), sid);

            // Instantiate the tensor from the storage.
            Call inst = makeCall(getOp("relax.memory.alloc_tensor"),
                                 {storages_[sid].storageVar}, {},
                                 {call->sinfoArgs[0]});
            inst->setStructInfo(call->sinfoArgs[0]);
            block->bindings.push_back({binding.var, inst, false, nullptr});
        }

        Function updated =
            makeFunction(func_->params, makeSeqExpr({block}, seq->body),
                         func_->retSInfo);
        updated->attrs = func_->attrs;
        updated->attrs["planned.num_storages"] =
            std::to_string(storages_.size());
        int64_t total = 0;
        bool total_known = true;
        for (const auto& storage : storages_) {
            if (storage.upper) {
                total += *storage.upper;
            } else {
                total_known = false;
            }
        }
        if (total_known) {
            updated->attrs["planned.total_bytes"] = std::to_string(total);
        }
        updated->attrs["planned.reuse_hits"] = std::to_string(reuseHits_);
        updated->attrs["planned.bytes_reused"] =
            std::to_string(bytesReused_);
        updated->attrs["static_plan"] =
            (all_static && total_known) ? "1" : "0";
        return updated;
    }

  private:
    /** Algorithm 3's RequestReuseWithSymShape + NewStorage. */
    size_t
    requestStorage(const PrimExpr& size, std::optional<int64_t> upper,
                   std::vector<Binding>* bindings)
    {
        for (size_t sid = 0; sid < storages_.size(); ++sid) {
            PlannedStorage& storage = storages_[sid];
            if (!storage.free) continue;
            bool reusable = analyzer_.proveEqual(storage.sizeExpr, size);
            if (!reusable && upper && storage.upper) {
                // Upper-bound mode: any request that fits reuses.
                reusable = *upper <= *storage.upper;
            }
            if (reusable) {
                ++reuseHits_;
                if (upper) bytesReused_ += *upper;
                return sid;
            }
        }
        // NewStorage: bind `s = relax.memory.alloc_storage(size)`.
        PlannedStorage storage;
        storage.sizeExpr = upper ? intImm(*upper) : size;
        storage.upper = upper;
        Call alloc = makeCall(getOp("relax.memory.alloc_storage"),
                              {makePrimValue(storage.sizeExpr)});
        alloc->setStructInfo(objectSInfo());
        storage.storageVar = makeVar(
            "storage" + std::to_string(storages_.size()), objectSInfo());
        bindings->push_back({storage.storageVar, alloc, false, nullptr});
        storages_.push_back(storage);
        return storages_.size() - 1;
    }

    Function func_;
    Analyzer analyzer_;
    std::vector<PlannedStorage> storages_;
    int64_t reuseHits_ = 0;
    int64_t bytesReused_ = 0;
};

} // namespace

Pass
staticMemoryPlanPass(const SymBounds& bounds)
{
    return {"StaticMemoryPlan", [bounds](IRModulePtr module) {
                for (const auto& [name, func] : module->functions()) {
                    Planner planner(func, bounds);
                    module->addFunction(name, planner.run());
                }
                return module;
            }};
}

} // namespace passes
} // namespace relax
