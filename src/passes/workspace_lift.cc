/**
 * @file
 * Cross-level tensor program workspace lifting (Fig. 11): detects global
 * workspace allocations inside tensor programs via analysis feedback,
 * rewrites the program to take the workspace as an explicit parameter,
 * and jointly rewrites every graph-level call site to allocate and pass
 * it — exposing the workspace to graph-level memory planning (§4.3).
 */
#include "passes/passes.h"

#include <unordered_map>

#include "tir/analysis.h"
#include "tir/transform.h"

namespace relax {
namespace passes {

using namespace ir;
using Var = ir::Var;
using VarNode = ir::VarNode;
using CallNode = ir::CallNode;

namespace {

struct LiftedInfo
{
    tir::PrimFunc lifted;
    tir::Buffer workspace;
};

/** Removes the global AllocBuffer wrapper, keeping its body. */
tir::Stmt
stripGlobalAlloc(const tir::Stmt& stmt, const tir::BufferNode* target)
{
    switch (stmt->kind()) {
      case tir::StmtKind::kAllocBuffer: {
        const auto* node =
            static_cast<const tir::AllocBufferNode*>(stmt.get());
        if (node->buffer.get() == target) return node->body;
        return tir::makeAllocBuffer(node->buffer, node->scope,
                                    stripGlobalAlloc(node->body, target));
      }
      case tir::StmtKind::kSeq: {
        std::vector<tir::Stmt> seq;
        for (const auto& s :
             static_cast<const tir::SeqStmtNode*>(stmt.get())->seq) {
            seq.push_back(stripGlobalAlloc(s, target));
        }
        return tir::makeSeq(std::move(seq));
      }
      default:
        return stmt;
    }
}

} // namespace

Pass
workspaceLiftingPass()
{
    return {"WorkspaceLifting", [](IRModulePtr module) {
                // Pass 1: rewrite tensor programs with global workspaces.
                std::unordered_map<std::string, LiftedInfo> lifted;
                std::vector<std::pair<std::string, tir::PrimFunc>> worklist(
                    module->tirFuncs().begin(), module->tirFuncs().end());
                for (const auto& [name, func] : worklist) {
                    auto workspace = tir::findGlobalWorkspace(func);
                    if (!workspace) continue;
                    // New param order: inputs..., workspace, outputs.
                    std::vector<tir::Buffer> params(
                        func->params.begin(),
                        func->params.end() - func->numOutputs);
                    params.push_back(workspace->buffer);
                    params.insert(params.end(),
                                  func->params.end() - func->numOutputs,
                                  func->params.end());
                    tir::PrimFunc rewritten = tir::makePrimFunc(
                        name, std::move(params),
                        stripGlobalAlloc(func->body,
                                         workspace->buffer.get()),
                        func->symParams, func->numOutputs);
                    rewritten->attrs = func->attrs;
                    rewritten->attrs["lifted_workspace"] = "1";
                    lifted[name] = {rewritten, workspace->buffer};
                    module->addTIRFunc(rewritten);
                }
                if (lifted.empty()) return module;

                // Pass 2: rewrite graph-level call sites to allocate the
                // workspace and pass it explicitly.
                for (const auto& [fname, func] : module->functions()) {
                    const auto* seq =
                        static_cast<const SeqExprNode*>(func->body.get());
                    for (const auto& block : seq->blocks) {
                        std::vector<Binding> rewritten;
                        for (const auto& binding : block->bindings) {
                            if (!isOpCall(binding.value, "relax.call_tir")) {
                                rewritten.push_back(binding);
                                continue;
                            }
                            const auto* call = static_cast<const CallNode*>(
                                binding.value.get());
                            const auto* gv =
                                static_cast<const GlobalVarNode*>(
                                    call->args[0].get());
                            auto it = lifted.find(gv->name);
                            if (it == lifted.end()) {
                                rewritten.push_back(binding);
                                continue;
                            }
                            // ws = builtin.alloc_tensor(shape)
                            const tir::Buffer& ws = it->second.workspace;
                            StructInfo ws_sinfo =
                                tensorSInfo(ws->shape, ws->dtype);
                            Call alloc = makeCall(
                                getOp("relax.builtin.alloc_tensor"), {}, {},
                                {ws_sinfo});
                            alloc->setStructInfo(ws_sinfo);
                            Var ws_var = makeVar(
                                "workspace", ws_sinfo,
                                binding.var->isDataflow);
                            rewritten.push_back(
                                {ws_var, alloc, false, nullptr});
                            // call_tir(f, [inputs..., ws], out)
                            int64_t num_sym = 0;
                            if (auto attr = call->attrs.find("num_sym_args");
                                attr != call->attrs.end()) {
                                num_sym = std::get<int64_t>(attr->second);
                            }
                            std::vector<Expr> args(
                                call->args.begin() + 1,
                                call->args.end() - num_sym);
                            std::vector<Expr> sym_args(
                                call->args.end() - num_sym,
                                call->args.end());
                            args.push_back(ws_var);
                            Call updated = callTIR(
                                module->getGlobalVar(gv->name), args,
                                binding.var->structInfo(), sym_args);
                            rewritten.push_back(
                                {binding.var, updated, false, nullptr});
                        }
                        block->bindings = std::move(rewritten);
                    }
                }
                return module;
            }};
}

} // namespace passes
} // namespace relax
