/**
 * @file
 * InplacePlanPass: automatic in-place planning over dataflow blocks.
 *
 * Runs after workspace lifting and before LowerCallTIR (the stage where
 * every compute is a call_tir / call_dps_library binding and inplace_arg
 * is still consumable). For each eligible site the pass proves, using the
 * alias/liveness facts of alias_analysis.h, that the DPS output may alias
 * a candidate input and annotates the call with `inplace_arg`, so
 * LowerCallTIR emits no alloc_tensor and the VM's out argument becomes
 * the input tensor. The proof obligations:
 *
 *  1. dead input — the candidate's storage has no live holder after the
 *     call: every var sharing a root with it (through rebinds, tuples,
 *     projections, earlier in-place chains) was last used at or before
 *     this binding;
 *  2. compatibility — identical dtype and per-dimension structurally
 *     equal shape between candidate and output;
 *  3. ownership — no root is a constant, and parameter roots are allowed
 *     only when the function donates them ("donatable_params" attr, the
 *     frontend's mark on the persistent KV page pools; COW-shared or
 *     otherwise externally owned tensors are simply never donated);
 *  4. kernel safety — for call_dps_library, the library's in-place
 *     contract (libraryInplaceArg); for call_tir, a conservative
 *     elementwise-alignment check on the tensor program: the output is
 *     stored by exactly one syntactic store, the output buffer is never
 *     loaded, and every load of the candidate buffer appears in that
 *     store's value at the very indices being stored — so in sequential
 *     DPS execution each element of the candidate is read only before
 *     the aliased write to the same element.
 *
 * On the llama graphs this rewrites the KV page-pool appends, the
 * residual adds (fused matmul+add epilogues) and the ffn elementwise
 * epilogue, shrinking captured decode regions and the activation plan.
 */
#include <algorithm>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "arith/structural.h"
#include "passes/alias_analysis.h"
#include "passes/passes.h"
#include "tir/stmt.h"

namespace relax {
namespace passes {

using namespace ir;
using Var = ir::Var;
using VarNode = ir::VarNode;
using CallNode = ir::CallNode;

namespace {

/** True iff `expr` contains a load of `buf` anywhere. */
bool
containsLoadOf(const PrimExpr& expr, const tir::BufferNode* buf)
{
    if (!expr) return false;
    switch (expr->kind()) {
      case ExprKind::kBufferLoad: {
          const auto* load =
              static_cast<const tir::BufferLoadNode*>(expr.get());
          if (load->buffer.get() == buf) return true;
          for (const auto& idx : load->indices) {
              if (containsLoadOf(idx, buf)) return true;
          }
          return false;
      }
      case ExprKind::kAdd:
      case ExprKind::kSub:
      case ExprKind::kMul:
      case ExprKind::kDiv:
      case ExprKind::kFloorDiv:
      case ExprKind::kFloorMod:
      case ExprKind::kMin:
      case ExprKind::kMax:
      case ExprKind::kEQ:
      case ExprKind::kNE:
      case ExprKind::kLT:
      case ExprKind::kLE:
      case ExprKind::kGT:
      case ExprKind::kGE:
      case ExprKind::kAnd:
      case ExprKind::kOr: {
          const auto* binary = static_cast<const BinaryNode*>(expr.get());
          return containsLoadOf(binary->a, buf) ||
                 containsLoadOf(binary->b, buf);
      }
      case ExprKind::kNot:
      case ExprKind::kCast:
          return containsLoadOf(
              static_cast<const UnaryNode*>(expr.get())->a, buf);
      case ExprKind::kSelect: {
          const auto* select = static_cast<const SelectNode*>(expr.get());
          return containsLoadOf(select->cond, buf) ||
                 containsLoadOf(select->trueValue, buf) ||
                 containsLoadOf(select->falseValue, buf);
      }
      case ExprKind::kCall: {
          for (const auto& arg :
               static_cast<const ::relax::CallNode*>(expr.get())->args) {
              if (containsLoadOf(arg, buf)) return true;
          }
          return false;
      }
      default:
          return false;
    }
}

/** Loop vars whose extent is the constant 1 — they only ever hold 0. */
using UnitVarSet = std::unordered_set<const ::relax::VarNode*>;

bool
isZeroIndex(const PrimExpr& expr, const UnitVarSet& unit_vars)
{
    if (expr->kind() == ExprKind::kIntImm) {
        return static_cast<const IntImmNode*>(expr.get())->value == 0;
    }
    return expr->kind() == ExprKind::kVar &&
           unit_vars.count(
               static_cast<const ::relax::VarNode*>(expr.get()));
}

/**
 * Index equality modulo unit loops: the broadcast-aware kernel builders
 * project a constant-1 dim to a literal 0 in loads while the store keeps
 * the (extent-1) loop var, and both address the same element.
 */
bool
indexEqual(const PrimExpr& a, const PrimExpr& b,
           const UnitVarSet& unit_vars)
{
    if (structuralEqual(a, b)) return true;
    return isZeroIndex(a, unit_vars) && isZeroIndex(b, unit_vars);
}

/** True iff every load of `buf` inside `expr` uses exactly `indices`
 *  (modulo unit loops). Recurses through nested loads of other buffers. */
bool
loadsAligned(const PrimExpr& expr, const tir::BufferNode* buf,
             const std::vector<PrimExpr>& indices,
             const UnitVarSet& unit_vars)
{
    if (!expr) return true;
    switch (expr->kind()) {
      case ExprKind::kBufferLoad: {
          const auto* load =
              static_cast<const tir::BufferLoadNode*>(expr.get());
          if (load->buffer.get() == buf) {
              if (load->indices.size() != indices.size()) return false;
              for (size_t i = 0; i < indices.size(); ++i) {
                  if (!indexEqual(load->indices[i], indices[i],
                                  unit_vars)) {
                      return false;
                  }
              }
          }
          for (const auto& idx : load->indices) {
              if (!loadsAligned(idx, buf, indices, unit_vars)) {
                  return false;
              }
          }
          return true;
      }
      case ExprKind::kAdd:
      case ExprKind::kSub:
      case ExprKind::kMul:
      case ExprKind::kDiv:
      case ExprKind::kFloorDiv:
      case ExprKind::kFloorMod:
      case ExprKind::kMin:
      case ExprKind::kMax:
      case ExprKind::kEQ:
      case ExprKind::kNE:
      case ExprKind::kLT:
      case ExprKind::kLE:
      case ExprKind::kGT:
      case ExprKind::kGE:
      case ExprKind::kAnd:
      case ExprKind::kOr: {
          const auto* binary = static_cast<const BinaryNode*>(expr.get());
          return loadsAligned(binary->a, buf, indices, unit_vars) &&
                 loadsAligned(binary->b, buf, indices, unit_vars);
      }
      case ExprKind::kNot:
      case ExprKind::kCast:
          return loadsAligned(
              static_cast<const UnaryNode*>(expr.get())->a, buf, indices,
              unit_vars);
      case ExprKind::kSelect: {
          const auto* select = static_cast<const SelectNode*>(expr.get());
          return loadsAligned(select->cond, buf, indices, unit_vars) &&
                 loadsAligned(select->trueValue, buf, indices,
                              unit_vars) &&
                 loadsAligned(select->falseValue, buf, indices,
                              unit_vars);
      }
      case ExprKind::kCall: {
          for (const auto& arg :
               static_cast<const ::relax::CallNode*>(expr.get())->args) {
              if (!loadsAligned(arg, buf, indices, unit_vars)) {
                  return false;
              }
          }
          return true;
      }
      default:
          return true;
    }
}

struct TIRScan
{
    const tir::BufferNode* in = nullptr;
    const tir::BufferNode* out = nullptr;
    int outStores = 0;
    bool ok = true;
    UnitVarSet unitVars;
};

void
scanStmt(const tir::Stmt& stmt, TIRScan* scan)
{
    if (!stmt || !scan->ok) return;
    switch (stmt->kind()) {
      case tir::StmtKind::kBufferStore: {
          const auto* store =
              static_cast<const tir::BufferStoreNode*>(stmt.get());
          for (const auto& idx : store->indices) {
              if (containsLoadOf(idx, scan->in)) scan->ok = false;
          }
          if (store->buffer.get() == scan->out) {
              ++scan->outStores;
              if (!loadsAligned(store->value, scan->in, store->indices,
                                scan->unitVars)) {
                  scan->ok = false;
              }
          } else {
              // Storing into (or from) the candidate outside the single
              // output store: unsafe under aliasing.
              if (store->buffer.get() == scan->in ||
                  containsLoadOf(store->value, scan->in)) {
                  scan->ok = false;
              }
          }
          return;
      }
      case tir::StmtKind::kFor: {
          const auto* loop =
              static_cast<const tir::ForNode*>(stmt.get());
          if (containsLoadOf(loop->extent, scan->in)) scan->ok = false;
          if (loop->extent->kind() == ExprKind::kIntImm &&
              static_cast<const IntImmNode*>(loop->extent.get())->value ==
                  1) {
              scan->unitVars.insert(loop->loopVar.get());
          }
          scanStmt(loop->body, scan);
          return;
      }
      case tir::StmtKind::kIfThenElse: {
          const auto* branch =
              static_cast<const tir::IfThenElseNode*>(stmt.get());
          if (containsLoadOf(branch->cond, scan->in)) scan->ok = false;
          scanStmt(branch->thenBody, scan);
          scanStmt(branch->elseBody, scan);
          return;
      }
      case tir::StmtKind::kSeq: {
          for (const auto& sub :
               static_cast<const tir::SeqStmtNode*>(stmt.get())->seq) {
              scanStmt(sub, scan);
          }
          return;
      }
      case tir::StmtKind::kAllocBuffer: {
          scanStmt(
              static_cast<const tir::AllocBufferNode*>(stmt.get())->body,
              scan);
          return;
      }
    }
}

/** True iff any load of `out` appears anywhere in the body. */
bool
bodyLoads(const tir::Stmt& stmt, const tir::BufferNode* buf)
{
    if (!stmt) return false;
    switch (stmt->kind()) {
      case tir::StmtKind::kBufferStore: {
          const auto* store =
              static_cast<const tir::BufferStoreNode*>(stmt.get());
          if (containsLoadOf(store->value, buf)) return true;
          for (const auto& idx : store->indices) {
              if (containsLoadOf(idx, buf)) return true;
          }
          return false;
      }
      case tir::StmtKind::kFor: {
          const auto* loop =
              static_cast<const tir::ForNode*>(stmt.get());
          return containsLoadOf(loop->extent, buf) ||
                 bodyLoads(loop->body, buf);
      }
      case tir::StmtKind::kIfThenElse: {
          const auto* branch =
              static_cast<const tir::IfThenElseNode*>(stmt.get());
          return containsLoadOf(branch->cond, buf) ||
                 bodyLoads(branch->thenBody, buf) ||
                 bodyLoads(branch->elseBody, buf);
      }
      case tir::StmtKind::kSeq: {
          for (const auto& sub :
               static_cast<const tir::SeqStmtNode*>(stmt.get())->seq) {
              if (bodyLoads(sub, buf)) return true;
          }
          return false;
      }
      case tir::StmtKind::kAllocBuffer:
          return bodyLoads(
              static_cast<const tir::AllocBufferNode*>(stmt.get())->body,
              buf);
    }
    return false;
}

/**
 * The conservative kernel-safety check: writing the output over input
 * param `in_idx` is safe when the output is produced by one syntactic
 * store, the output buffer is never read, and the input is only read at
 * the stored element.
 */
bool
elementwiseAlignedConsumption(const tir::PrimFunc& func, size_t in_idx)
{
    if (func->numOutputs != 1) return false;
    const tir::BufferNode* out = func->params.back().get();
    const tir::BufferNode* in = func->params[in_idx].get();
    if (in == out) return false;
    if (bodyLoads(func->body, out)) return false;
    TIRScan scan;
    scan.in = in;
    scan.out = out;
    scanStmt(func->body, &scan);
    return scan.ok && scan.outStores == 1;
}

bool
sameTensorLayout(const TensorSInfoNode* a, const TensorSInfoNode* b)
{
    if (!a || !b || !a->shape || !b->shape) return false;
    if (a->dtype != b->dtype || a->shape->size() != b->shape->size()) {
        return false;
    }
    for (size_t i = 0; i < a->shape->size(); ++i) {
        if (!structuralEqual((*a->shape)[i], (*b->shape)[i])) {
            return false;
        }
    }
    return true;
}

/**
 * One function's planning walk. Never mutates shared IR nodes: rewritten
 * call sites become fresh CallNodes and the function is rebuilt around
 * them (module copies share bodies, so in-place attr edits would leak
 * into the caller's input module).
 */
class InplacePlanner
{
  public:
    InplacePlanner(const IRModulePtr& module, const Function& func)
        : module_(module), func_(func)
    {
        if (auto it = func->attrs.find("donatable_params");
            it != func->attrs.end()) {
            // ';'-joined param names the function owns outright.
            const std::string& names = it->second;
            size_t start = 0;
            while (start <= names.size()) {
                size_t end = names.find(';', start);
                if (end == std::string::npos) end = names.size();
                std::string name = names.substr(start, end - start);
                for (const auto& param : func->params) {
                    if (param->name == name) {
                        donatable_.insert(param.get());
                    }
                }
                start = end + 1;
            }
        }
    }

    /** Returns the planned function (the input one when nothing fired). */
    Function
    run()
    {
        if (func_->attrs.count("is_subgraph")) return func_;
        if (!func_->body || func_->body->kind() != RxKind::kSeqExpr) {
            return func_;
        }
        // Liveness facts come from the unmodified function: a rewrite
        // only adds an attr, never changes uses. Alias facts are tracked
        // incrementally over the REWRITTEN bindings so a rewrite at
        // binding i is visible to the eligibility check at j > i.
        AliasLivenessAnalysis analysis(func_);
        for (const auto& param : func_->params) {
            state_.addParam(param);
            noteHolder(param.get(), analysis);
        }

        size_t index = 0;
        const auto* seq =
            static_cast<const SeqExprNode*>(func_->body.get());
        std::vector<BindingBlock> new_blocks;
        for (const auto& block : seq->blocks) {
            auto new_block =
                std::make_shared<BindingBlockNode>(block->isDataflow);
            for (const auto& binding : block->bindings) {
                Binding planned = binding;
                if (block->isDataflow) {
                    if (Expr rewritten = tryRewrite(binding, index)) {
                        planned.value = std::move(rewritten);
                    }
                }
                state_.bind(planned, index);
                noteHolder(planned.var.get(), analysis);
                new_block->bindings.push_back(std::move(planned));
                ++index;
            }
            new_blocks.push_back(std::move(new_block));
        }

        auto updated = makeFunction(
            func_->params, makeSeqExpr(std::move(new_blocks), seq->body),
            func_->retSInfo);
        updated->setStructInfo(func_->structInfo());
        updated->attrs = func_->attrs;
        updated->attrs["inplace.rewrites"] = std::to_string(rewrites_);
        if (!callees_.empty()) {
            updated->attrs["inplace.callees"] = callees_;
        }
        return updated;
    }

  private:
    void
    noteHolder(const VarNode* v, const AliasLivenessAnalysis& analysis)
    {
        size_t last = analysis.lastDirectUse(v);
        if (last == AliasLivenessAnalysis::kNeverUsed) return;
        for (int id : state_.rootsOf(v)) {
            if ((size_t)id >= rootLastLive_.size()) {
                rootLastLive_.resize(id + 1, 0);
            }
            rootLastLive_[id] = std::max(rootLastLive_[id], last);
        }
    }

    bool
    rootsRewritable(const std::vector<int>& roots, size_t index) const
    {
        if (roots.empty()) return false;
        for (int id : roots) {
            const AliasRoot& root = state_.root(id);
            if (root.kind == AliasRoot::Kind::kConst ||
                root.kind == AliasRoot::Kind::kStorage) {
                return false;
            }
            if (root.kind == AliasRoot::Kind::kParam &&
                !donatable_.count(root.var)) {
                return false;
            }
            // Dead-input proof: no holder of this root is used past the
            // call. The candidate itself is used AT the call, so its
            // roots' last live index must be exactly here.
            if ((size_t)id < rootLastLive_.size() &&
                rootLastLive_[id] > index) {
                return false;
            }
        }
        return true;
    }

    /** Fresh rewritten call when a proof succeeds; null otherwise. */
    Expr
    tryRewrite(const Binding& binding, size_t index)
    {
        bool is_tir = isOpCall(binding.value, "relax.call_tir");
        bool is_lib = isOpCall(binding.value, "relax.call_dps_library");
        if (!is_tir && !is_lib) return nullptr;
        auto call = std::static_pointer_cast<CallNode>(binding.value);
        if (call->attrs.count("inplace_arg")) return nullptr;
        if (call->sinfoArgs.size() != 1) return nullptr;
        const auto* out_info = asTensor(call->sinfoArgs[0]);
        if (!out_info || !out_info->shape) return nullptr;

        int64_t num_sym = 0;
        if (auto it = call->attrs.find("num_sym_args");
            it != call->attrs.end()) {
            num_sym = std::get<int64_t>(it->second);
        }
        std::vector<Expr> inputs(call->args.begin() + 1,
                                 call->args.end() - num_sym);

        tir::PrimFunc prim;
        std::string callee;
        std::vector<size_t> candidates;
        if (is_tir) {
            if (call->args[0]->kind() != RxKind::kGlobalVar) {
                return nullptr;
            }
            callee = static_cast<const GlobalVarNode*>(call->args[0].get())
                         ->name;
            prim = module_->getTIRFunc(callee);
            // The input list must map 1:1 onto the leading buffer params
            // for the per-param alignment check to mean anything.
            if (!prim || prim->numOutputs != 1 ||
                inputs.size() + 1 != prim->params.size()) {
                return nullptr;
            }
            for (size_t i = 0; i < inputs.size(); ++i) {
                candidates.push_back(i);
            }
        } else {
            if (call->args[0]->kind() != RxKind::kExternFunc) {
                return nullptr;
            }
            callee = static_cast<const ExternFuncNode*>(
                         call->args[0].get())
                         ->name;
            int lib_arg = libraryInplaceArg(callee);
            if (lib_arg < 0) return nullptr;
            candidates.push_back((size_t)lib_arg);
        }

        for (size_t a : candidates) {
            if (inputs[a]->kind() != RxKind::kVar) continue;
            const auto* in_var =
                static_cast<const VarNode*>(inputs[a].get());
            if (!sameTensorLayout(asTensor(in_var->structInfo()),
                                  out_info)) {
                continue;
            }
            if (!rootsRewritable(state_.rootsOf(in_var), index)) {
                continue;
            }
            if (is_tir) {
                // Every param position bound to this var aliases the
                // output, so each one must consume it element-aligned.
                bool safe = true;
                for (size_t p = 0; p < inputs.size() && safe; ++p) {
                    if (inputs[p].get() == (const ExprNode*)in_var &&
                        !elementwiseAlignedConsumption(prim, p)) {
                        safe = false;
                    }
                }
                if (!safe) continue;
            }
            Attrs new_attrs = call->attrs;
            new_attrs["inplace_arg"] = (int64_t)a;
            auto rewritten =
                makeCall(call->op, call->args, std::move(new_attrs),
                         call->sinfoArgs);
            rewritten->setStructInfo(call->structInfo());
            ++rewrites_;
            if (!callees_.empty()) callees_ += ';';
            callees_ += callee;
            return rewritten;
        }
        return nullptr;
    }

    IRModulePtr module_;
    Function func_;
    AliasState state_;
    std::vector<size_t> rootLastLive_;
    std::unordered_set<const VarNode*> donatable_;
    int rewrites_ = 0;
    std::string callees_;
};

} // namespace

Pass
inplacePlanPass()
{
    return {"InplacePlan", [](IRModulePtr module) {
                auto updated = module->copy();
                for (const auto& [name, func] : module->functions()) {
                    Function planned =
                        InplacePlanner(module, func).run();
                    if (planned != func) {
                        updated->addFunction(name, std::move(planned));
                    }
                }
                return updated;
            }};
}

} // namespace passes
} // namespace relax
