/**
 * @file
 * FuseOps (Algorithm 2): dynamic shape-aware operator fusion. Groups
 * call_tir bindings by the compute-pattern kinds produced by analysis
 * feedback (Alg. 1), lifts each group into a subgraph function, and
 * preserves symbolic shapes by adding extra Shape parameters when a
 * symbolic variable is not recoverable from tensor parameters (Fig. 8).
 *
 * Fusion rules (mirroring TVM's classic fuser):
 *  - Injective/ElementWise/Broadcast producers fuse into any
 *    Injective/ElementWise/Broadcast/OutputEwiseFusible consumer;
 *  - an OutputEwiseFusible anchor additionally absorbs ElementWise /
 *    Broadcast consumers (matmul + epilogue);
 *  - at most one anchor per group; edges require single-use intermediates.
 */
#include "passes/passes.h"

#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "ir/utils.h"
#include "tir/analysis.h"

namespace relax {
namespace passes {

using namespace ir;
using Var = ir::Var;
using VarNode = ir::VarNode;
using CallNode = ir::CallNode;
using tir::PatternKind;

namespace {

/** Union-find over binding indices with anchor counting. */
class GroupSet
{
  public:
    explicit GroupSet(size_t count) : parent_(count), anchors_(count, 0)
    {
        std::iota(parent_.begin(), parent_.end(), 0);
    }

    size_t
    find(size_t x)
    {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }

    void markAnchor(size_t x) { anchors_[find(x)] += 1; }
    int anchors(size_t x) { return anchors_[find(x)]; }

    bool
    tryUnion(size_t a, size_t b)
    {
        size_t ra = find(a), rb = find(b);
        if (ra == rb) return true;
        if (anchors_[ra] + anchors_[rb] > 1) return false;
        parent_[rb] = ra;
        anchors_[ra] += anchors_[rb];
        return true;
    }

  private:
    std::vector<size_t> parent_;
    std::vector<int> anchors_;
};

PatternKind
bindingKind(const Binding& binding, const IRModulePtr& module)
{
    if (binding.isMatchCast || !isOpCall(binding.value, "relax.call_tir")) {
        return PatternKind::kOpaque;
    }
    const auto* call = static_cast<const CallNode*>(binding.value.get());
    const auto* gv = static_cast<const GlobalVarNode*>(call->args[0].get());
    tir::PrimFunc callee = module->getTIRFunc(gv->name);
    if (!callee) return PatternKind::kOpaque;
    auto it = callee->attrs.find(tir::kComputePatternAttr);
    if (it == callee->attrs.end()) return PatternKind::kOpaque;
    return tir::patternKindFromName(it->second);
}

bool
isLightKind(PatternKind kind)
{
    return kind == PatternKind::kElementWise ||
           kind == PatternKind::kBroadcast ||
           kind == PatternKind::kInjective;
}

bool
isEpilogueKind(PatternKind kind)
{
    return kind == PatternKind::kElementWise ||
           kind == PatternKind::kBroadcast;
}

/** The kernel-name hint of a call_tir binding (for fused naming). */
std::string
bindingHint(const Binding& binding)
{
    const auto* call = static_cast<const CallNode*>(binding.value.get());
    const auto* gv = static_cast<const GlobalVarNode*>(call->args[0].get());
    std::string name = gv->name;
    // Strip trailing uniquing suffixes like "_3".
    size_t pos = name.find_last_not_of("0123456789");
    if (pos != std::string::npos && pos + 1 < name.size() &&
        name[pos] == '_') {
        name = name.substr(0, pos);
    }
    return name;
}

struct FusionPlanner
{
    IRModulePtr module;
    Function func;

    void
    runOnBlock(const BindingBlock& block,
               std::vector<BindingBlock>* out_blocks)
    {
        size_t count = block->bindings.size();
        std::vector<PatternKind> kinds(count);
        std::unordered_map<const VarNode*, size_t> producer;
        std::unordered_map<const VarNode*, int> uses;
        for (size_t i = 0; i < count; ++i) {
            kinds[i] = bindingKind(block->bindings[i], module);
            producer[block->bindings[i].var.get()] = i;
            std::unordered_set<const VarNode*> used;
            collectVarUses(block->bindings[i].value, &used);
            for (const auto* v : used) uses[v] += 1;
        }
        // Uses outside this block (function result and other blocks).
        std::unordered_set<const VarNode*> external;
        const auto* seq = static_cast<const SeqExprNode*>(func->body.get());
        collectVarUses(seq->body, &external);
        for (const auto& other : seq->blocks) {
            if (other.get() == block.get()) continue;
            for (const auto& binding : other->bindings) {
                collectVarUses(binding.value, &external);
            }
        }

        GroupSet groups(count);
        for (size_t i = 0; i < count; ++i) {
            if (kinds[i] == PatternKind::kOutputEwiseFusible) {
                groups.markAnchor(i);
            }
        }
        for (size_t c = 0; c < count; ++c) {
            if (kinds[c] == PatternKind::kOpaque ||
                kinds[c] == PatternKind::kReduction) {
                continue;
            }
            std::unordered_set<const VarNode*> args;
            collectVarUses(block->bindings[c].value, &args);
            for (const auto* v : args) {
                auto it = producer.find(v);
                if (it == producer.end()) continue;
                size_t p = it->second;
                if (uses[v] != 1 || external.count(v)) continue;
                PatternKind pk = kinds[p];
                PatternKind ck = kinds[c];
                bool fusible =
                    (isLightKind(pk) &&
                     (isLightKind(ck) ||
                      ck == PatternKind::kOutputEwiseFusible)) ||
                    (pk == PatternKind::kOutputEwiseFusible &&
                     isEpilogueKind(ck));
                if (fusible) groups.tryUnion(p, c);
            }
        }

        // Materialize groups with >= 2 members.
        std::unordered_map<size_t, std::vector<size_t>> members;
        for (size_t i = 0; i < count; ++i) {
            members[groups.find(i)].push_back(i);
        }

        auto rewritten = std::make_shared<BindingBlockNode>(
            block->isDataflow);
        for (size_t i = 0; i < count; ++i) {
            size_t root = groups.find(i);
            const auto& group = members[root];
            if (group.size() < 2) {
                rewritten->bindings.push_back(block->bindings[i]);
                continue;
            }
            // Emit the fused call at the position of the group's *last*
            // member so every external input is already defined.
            if (i != group.back()) continue;
            if (!emitSubgraph(block, group, uses, external,
                              rewritten.get())) {
                // Unfusible in the end (e.g. multiple escaping outputs):
                // emit members unchanged.
                for (size_t m : group) {
                    rewritten->bindings.push_back(block->bindings[m]);
                }
            }
        }
        out_blocks->push_back(rewritten);
    }

    /** Lifts `group` into a subgraph function; returns false to bail out. */
    bool
    emitSubgraph(const BindingBlock& block, const std::vector<size_t>& group,
                 const std::unordered_map<const VarNode*, int>& uses,
                 const std::unordered_set<const VarNode*>& external,
                 BindingBlockNode* rewritten)
    {
        std::unordered_set<const VarNode*> group_vars;
        for (size_t m : group) {
            group_vars.insert(block->bindings[m].var.get());
        }
        // Output vars: used outside the group.
        std::vector<Var> outputs;
        for (size_t m : group) {
            const Var& v = block->bindings[m].var;
            int inside = 0;
            for (size_t o : group) {
                std::unordered_set<const VarNode*> used;
                collectVarUses(block->bindings[o].value, &used);
                if (used.count(v.get())) ++inside;
            }
            int total = uses.count(v.get()) ? uses.at(v.get()) : 0;
            if (total > inside || external.count(v.get())) {
                outputs.push_back(v);
            }
        }
        if (outputs.size() != 1) return false;

        // External inputs, in first-use order. Constant operands (inline
        // weights) are hoisted into parameters as well so the subgraph
        // stays a pure function of its arguments.
        std::vector<Var> inputs;
        std::vector<Expr> outer_args;
        std::unordered_set<const VarNode*> seen_inputs;
        std::unordered_map<const ExprNode*, size_t> constant_params;
        for (size_t m : group) {
            const auto* call = static_cast<const CallNode*>(
                block->bindings[m].value.get());
            for (const auto& arg : call->args) {
                if (arg->kind() == RxKind::kConstant) {
                    if (constant_params.count(arg.get())) continue;
                    constant_params[arg.get()] = inputs.size();
                    inputs.push_back(
                        makeVar("const_arg", arg->structInfo()));
                    outer_args.push_back(arg);
                    continue;
                }
                if (arg->kind() != RxKind::kVar) continue;
                const auto* v = static_cast<const VarNode*>(arg.get());
                if (group_vars.count(v) || seen_inputs.count(v)) continue;
                seen_inputs.insert(v);
                inputs.push_back(std::static_pointer_cast<VarNode>(arg));
                outer_args.push_back(arg);
            }
        }

        // Symbolic variables needed inside the group but not recoverable
        // as a bare dim of any tensor parameter get an extra Shape param.
        std::unordered_set<const ::relax::VarNode*> needed;
        for (size_t m : group) {
            collectExprSymVars(block->bindings[m].value, &needed);
            collectSymVars(block->bindings[m].var->structInfo(), &needed);
        }
        std::unordered_set<const ::relax::VarNode*> bindable;
        for (const auto& input : inputs) {
            if (const auto* tensor = asTensor(input->structInfo());
                tensor && tensor->shape) {
                for (const auto& dim : *tensor->shape) {
                    if (dim->kind() == ExprKind::kVar) {
                        bindable.insert(
                            static_cast<const ::relax::VarNode*>(dim.get()));
                    }
                }
            }
        }
        std::vector<PrimExpr> extra_sym;
        for (const auto* v : needed) {
            if (!bindable.count(v)) {
                extra_sym.push_back(std::static_pointer_cast<
                                    const ::relax::VarNode>(
                    std::static_pointer_cast<const ::relax::PrimExprNode>(
                        v->sharedFromThis())));
            }
        }
        // Deterministic ordering for the Shape parameter.
        std::sort(extra_sym.begin(), extra_sym.end(),
                  [](const PrimExpr& a, const PrimExpr& b) {
                      return relax::toString(a) < relax::toString(b);
                  });

        // Subgraph function: fresh params mirroring the inputs.
        std::vector<Var> params;
        RxVarMap remap;
        for (const auto& input : inputs) {
            Var param = makeVar(input->name, input->structInfo());
            params.push_back(param);
            remap[input.get()] = param;
        }
        if (!extra_sym.empty()) {
            params.push_back(makeVar("s", shapeSInfo(extra_sym)));
        }
        auto replaceConstants = [&](const Expr& value) -> Expr {
            if (constant_params.empty()) return value;
            const auto* call = static_cast<const CallNode*>(value.get());
            std::vector<Expr> args;
            for (const auto& arg : call->args) {
                auto it = constant_params.find(arg.get());
                args.push_back(it == constant_params.end()
                                   ? arg
                                   : Expr(params[it->second]));
            }
            Call rewritten = makeCall(call->op, std::move(args),
                                      call->attrs, call->sinfoArgs);
            rewritten->setStructInfo(value->structInfo());
            return rewritten;
        };
        auto inner_block = std::make_shared<BindingBlockNode>(false);
        for (size_t m : group) {
            Binding inner = block->bindings[m];
            inner.value =
                substituteVars(replaceConstants(inner.value), remap);
            inner.var = makeVar(inner.var->name, inner.var->structInfo());
            remap[block->bindings[m].var.get()] = inner.var;
            inner_block->bindings.push_back(std::move(inner));
        }
        Expr ret = substituteVars(outputs[0], remap);

        std::string fused_name = "fused";
        for (size_t m : group) {
            fused_name += "_" + bindingHint(block->bindings[m]);
        }
        fused_name = module->uniqueName(fused_name);
        Function subgraph = makeFunction(
            params, makeSeqExpr({inner_block}, ret),
            outputs[0]->structInfo());
        subgraph->attrs["primitive"] = "1";
        GlobalVar gv = module->addFunction(fused_name, subgraph);

        // Call site: same output var, so downstream uses stay valid.
        std::vector<Expr> call_args = outer_args;
        if (!extra_sym.empty()) {
            call_args.push_back(makeShapeExpr(extra_sym));
        }
        Call call = makeCall(gv, std::move(call_args));
        call->setStructInfo(outputs[0]->structInfo());
        rewritten->bindings.push_back({outputs[0], call, false, nullptr});
        return true;
    }
};

} // namespace

Pass
fuseOpsPass()
{
    return {"FuseOps", [](IRModulePtr module) {
                // Copy first (Algorithm 2 line 3): new functions are added
                // while iterating the original table.
                std::vector<std::pair<std::string, Function>> worklist(
                    module->functions().begin(), module->functions().end());
                for (const auto& [name, func] : worklist) {
                    if (func->attrs.count("primitive")) continue;
                    FusionPlanner planner{module, func};
                    const auto* seq =
                        static_cast<const SeqExprNode*>(func->body.get());
                    std::vector<BindingBlock> new_blocks;
                    for (const auto& block : seq->blocks) {
                        planner.runOnBlock(block, &new_blocks);
                    }
                    Function updated = makeFunction(
                        func->params,
                        makeSeqExpr(std::move(new_blocks), seq->body),
                        func->retSInfo);
                    updated->attrs = func->attrs;
                    module->addFunction(name, updated);
                }
                return module;
            }};
}

} // namespace passes
} // namespace relax
