/**
 * @file
 * CUDA-Graph-style offloading (§4.5). Requires static memory planning:
 * once all storage is pre-allocated, maximal runs of kernel launches are
 * wrapped in capture/replay regions. At runtime the first execution of a
 * region (per shape signature) captures; subsequent executions replay
 * with reduced per-kernel launch overhead.
 */
#include "passes/passes.h"

namespace relax {
namespace passes {

using namespace ir;
using Var = ir::Var;
using VarNode = ir::VarNode;
using CallNode = ir::CallNode;

namespace {

/** Capturable bindings: kernel launches and pure rebinds between them.
 *  Storage bindings are capturable too: this pass only runs on
 *  statically planned functions, where alloc_storage resolves to a
 *  pre-allocated chunk (a steady-state no-op, like the pre-capture
 *  allocation CUDA Graphs require), so it must not fragment regions. */
bool
isCapturable(const Binding& binding)
{
    if (isOpCall(binding.value, "relax.vm.kernel_call")) return true;
    if (isOpCall(binding.value, "relax.memory.alloc_tensor")) return true;
    if (isOpCall(binding.value, "relax.memory.alloc_storage")) return true;
    if (binding.value->kind() == RxKind::kVar) return true;
    if (binding.value->kind() == RxKind::kTuple) return true;
    return false;
}

bool
isKernelLaunch(const Binding& binding)
{
    return isOpCall(binding.value, "relax.vm.kernel_call");
}

Binding
makeMarker(const char* op, int64_t graph_id, int64_t bucket_block = 1)
{
    Attrs attrs;
    attrs["graph_id"] = graph_id;
    if (bucket_block > 1) attrs["bucket_block"] = bucket_block;
    Call call = makeCall(getOp(op), {}, std::move(attrs));
    call->setStructInfo(objectSInfo());
    return {makeVar("_", objectSInfo()), call, false, nullptr};
}

} // namespace

Pass
graphOffloadPass(const TargetInfo& target)
{
    return {"GraphOffload", [target](IRModulePtr module) {
                if (!target.supportsExecutionGraphs) return module;
                int64_t next_graph_id = 0;
                for (const auto& [name, func] : module->functions()) {
                    if (func->attrs.count("static_plan") == 0 ||
                        func->attrs.at("static_plan") != "1") {
                        continue; // capture requires static allocation
                    }
                    const auto* seq =
                        static_cast<const SeqExprNode*>(func->body.get());
                    for (const auto& block : seq->blocks) {
                        std::vector<Binding> rewritten;
                        std::vector<Binding> run;
                        int kernel_count = 0;
                        auto flush = [&]() {
                            if (kernel_count >= 2) {
                                rewritten.push_back(makeMarker(
                                    "relax.vm.graph_begin",
                                    next_graph_id,
                                    target.graphBucketTokens));
                                rewritten.insert(rewritten.end(),
                                                 run.begin(), run.end());
                                rewritten.push_back(makeMarker(
                                    "relax.vm.graph_end", next_graph_id));
                                ++next_graph_id;
                            } else {
                                rewritten.insert(rewritten.end(),
                                                 run.begin(), run.end());
                            }
                            run.clear();
                            kernel_count = 0;
                        };
                        for (const auto& binding : block->bindings) {
                            if (isCapturable(binding)) {
                                run.push_back(binding);
                                kernel_count += isKernelLaunch(binding);
                            } else {
                                flush();
                                rewritten.push_back(binding);
                            }
                        }
                        flush();
                        block->bindings = std::move(rewritten);
                    }
                }
                return module;
            }};
}

Pipeline
buildDefaultPipeline(const TargetInfo& target, const SymBounds& bounds)
{
    // The fixed pipeline order of Fig. 13.
    Pipeline pipeline;
    pipeline.add(normalizePass())
        .add(partialLibraryLoweringPass(target))
        .add(legalizeOpsPass())
        .add(deadCodeEliminationPass())
        .add(annotateTIRPatternsPass())
        .add(fuseOpsPass())
        .add(fuseTensorIRPass())
        .add(workspaceLiftingPass())
        .add(inplacePlanPass())
        .add(lowerCallTIRPass())
        .add(staticMemoryPlanPass(bounds))
        .add(graphOffloadPass(target));
    return pipeline;
}

} // namespace passes
} // namespace relax
