/**
 * @file
 * The cross-level optimization and lowering passes of §4, in pipeline
 * order (Fig. 13).
 */
#ifndef RELAX_PASSES_PASSES_H_
#define RELAX_PASSES_PASSES_H_

#include <optional>
#include <string>
#include <unordered_map>

#include "passes/pass.h"

namespace relax {
namespace passes {

/**
 * Target description consulted by partial library lowering (§4.6) and
 * graph offloading (§4.5). Populated from a device spec by the driver.
 */
struct TargetInfo
{
    /** Vendor GEMM library name ("cublas", "rocblas", "mps"), if any. */
    std::optional<std::string> gemmLibrary;
    /** Fused attention library name ("flashattn"), if any. */
    std::optional<std::string> attentionLibrary;
    /** Fused norm/epilogue library name ("cutlass"), if any. */
    std::optional<std::string> epilogueLibrary;
    /** Whether the driver supports static execution graphs (CUDA Graph). */
    bool supportsExecutionGraphs = false;
    /**
     * Bucket size for execution-graph capture signatures: symbolic dims
     * are rounded up to the next multiple of this block (or the next
     * power of two, when smaller) when keying captured graphs,
     * recovering replay across nearby shapes (steady-state decode bumps
     * the context length every step). 1 = exact signatures.
     */
    int64_t graphBucketTokens = 1;
    /**
     * Library GEMM pays off only for batch*seq >= this many rows; below it
     * the compiler-generated matrix-vector kernel wins (§5.1 batch-1 case).
     */
    int64_t libraryGemmMinRows = 2;
};

/** Upper bounds for symbolic variables (by name), used for static memory
 *  planning of dynamic shapes (§4.3). */
using SymBounds = std::unordered_map<std::string, int64_t>;

/** Re-runs forward deduction over every binding, refreshing annotations. */
Pass normalizePass();

/**
 * Megatron-style tensor parallelism over `decode_ragged`: consumes the
 * frontend's `tp` / `tp_dim` annotations to divide attention heads and
 * FFN intermediate dims across `num_shards` devices and splices explicit
 * `ccl.all_reduce` / `ccl.all_gather` sites (two all-reduces per layer,
 * one logits all-gather). Runs FIRST in the pipeline, before any
 * lowering. No-op for num_shards <= 1 or modules without the function;
 * throws RuntimeError when a sharded dim does not divide evenly or no
 * annotations exist (quantized weights).
 */
Pass shardPass(int64_t num_shards);

/** Removes dataflow bindings whose results are never used (§3.1). */
Pass deadCodeEliminationPass();

/** Evaluates operator calls over compile-time constant operands using the
 *  legalization + interpreter path (so folding can never diverge from
 *  execution). */
Pass constantFoldPass();

/**
 * Partial library lowering (§4.6): pattern-matches operator calls against
 * the target's libraries and rewrites matched regions to
 * call_dps_library, leaving the rest for code generation.
 */
Pass partialLibraryLoweringPass(const TargetInfo& target);

/** Lowers remaining high-level operator calls to call_tir of generated
 *  tensor programs (the "operator to tensor program lowering" stage). */
Pass legalizeOpsPass();

/** Analysis feedback (Alg. 1): annotates each tensor program with its
 *  compute pattern kind. */
Pass annotateTIRPatternsPass();

/** Dynamic shape-aware operator fusion (Alg. 2): groups call_tir bindings
 *  into subgraph functions, preserving symbolic shapes via extra Shape
 *  parameters (Fig. 8/9). */
Pass fuseOpsPass();

/** Merges the tensor programs inside each fused subgraph function into a
 *  single kernel and inlines the call site (Fig. 9, FuseTensorIR). */
Pass fuseTensorIRPass();

/** Cross-level workspace lifting (Fig. 11): hoists global workspace
 *  allocations out of tensor programs into graph-level allocations. */
Pass workspaceLiftingPass();

/** Automatic in-place planning: proves DPS outputs may alias dead inputs
 *  and annotates call sites with `inplace_arg` ahead of LowerCallTIR
 *  (declared with its analysis in passes/alias_analysis.h). */
Pass inplacePlanPass();

/** Lowers call_tir / call_dps_library to explicit alloc_tensor plus DPS
 *  kernel invocation (Fig. 5 semantics made explicit). */
Pass lowerCallTIRPass();

/**
 * Dynamic shape-aware memory planning (Alg. 3): liveness analysis plus a
 * storage pool with symbolic-size reuse; with `bounds`, storage is sized
 * to the static upper bound so all memory is pre-allocatable.
 */
Pass staticMemoryPlanPass(const SymBounds& bounds = {});

/** CUDA-Graph-style offloading (§4.5): wraps statically-planned kernel
 *  sequences in capture/replay regions when the target supports it. */
Pass graphOffloadPass(const TargetInfo& target);

/** Builds the standard optimization pipeline of Fig. 13. */
Pipeline buildDefaultPipeline(const TargetInfo& target,
                              const SymBounds& bounds = {});

} // namespace passes
} // namespace relax

#endif // RELAX_PASSES_PASSES_H_
