/**
 * @file
 * Normalize (annotation re-deduction), dead code elimination, and
 * analysis-feedback pattern annotation.
 */
#include "passes/passes.h"

#include <unordered_set>

#include "ir/utils.h"
#include "shape/deduce.h"
#include "tir/analysis.h"

namespace relax {
namespace passes {

using namespace ir;
using Var = ir::Var;
using VarNode = ir::VarNode;
using CallNode = ir::CallNode;

Pass
normalizePass()
{
    return {"Normalize", [](IRModulePtr module) {
                for (const auto& [name, func] : module->functions()) {
                    const auto* seq =
                        static_cast<const SeqExprNode*>(func->body.get());
                    for (const auto& block : seq->blocks) {
                        for (auto& binding : block->bindings) {
                            if (binding.isMatchCast) {
                                binding.var->setStructInfo(binding.castInfo);
                                continue;
                            }
                            StructInfo sinfo = shape::deduceStructInfo(
                                binding.value, module);
                            binding.value->setStructInfo(sinfo);
                            binding.var->setStructInfo(sinfo);
                        }
                    }
                }
                return module;
            }};
}

Pass
deadCodeEliminationPass()
{
    return {"DeadCodeElimination", [](IRModulePtr module) {
                for (const auto& [name, func] : module->functions()) {
                    const auto* seq =
                        static_cast<const SeqExprNode*>(func->body.get());
                    // Uses outside dataflow blocks (and the function result)
                    // keep a binding alive; inside a block, sweep backwards.
                    std::unordered_set<const VarNode*> used;
                    collectVarUses(seq->body, &used);
                    for (const auto& block : seq->blocks) {
                        for (const auto& binding : block->bindings) {
                            if (!block->isDataflow) {
                                collectVarUses(binding.value, &used);
                            }
                        }
                    }
                    for (const auto& block : seq->blocks) {
                        if (!block->isDataflow) continue;
                        std::vector<Binding> kept;
                        std::unordered_set<const VarNode*> live = used;
                        for (auto it = block->bindings.rbegin();
                             it != block->bindings.rend(); ++it) {
                            bool removable =
                                it->var->isDataflow && !it->isMatchCast &&
                                !live.count(it->var.get());
                            if (removable) continue;
                            collectVarUses(it->value, &live);
                            kept.push_back(*it);
                        }
                        std::reverse(kept.begin(), kept.end());
                        block->bindings = std::move(kept);
                    }
                }
                return module;
            }};
}

Pass
annotateTIRPatternsPass()
{
    return {"AnnotateTIRPatterns", [](IRModulePtr module) {
                for (const auto& [name, func] : module->tirFuncs()) {
                    if (func->attrs.count(tir::kComputePatternAttr)) continue;
                    func->attrs[tir::kComputePatternAttr] =
                        tir::patternKindName(tir::analyzePatternKind(func));
                }
                return module;
            }};
}

} // namespace passes
} // namespace relax
