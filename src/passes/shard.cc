/**
 * @file
 * ShardPass: Megatron-style tensor parallelism for the serving function.
 * Rewrites `decode_ragged` into the per-shard program of an N-way device
 * group — every shard runs the SAME executable over its slice of the
 * weights and KV pools, with explicit `ccl.*` collective sites where
 * shards must exchange data (DESIGN.md §10, the sharding contract).
 *
 * The frontend annotates the split points; this pass only consumes them:
 *  - matmul attr `tp = "col"`: weight [out, in] splits along out — each
 *    shard computes a column slice of the activation, no communication
 *    (wq/wk/wv and w_gate/w_up; the following ops are head-local).
 *  - matmul attr `tp = "row"`: weight splits along in — each shard holds
 *    a PARTIAL sum of the full output, so a `ccl.all_reduce` follows
 *    (wo and w_down: exactly two all-reduces per layer).
 *  - matmul attr `tp = "vocab"`: lm_head splits along the vocab dim and a
 *    `ccl.all_gather` concatenates shard logits back to the full vocab.
 *  - attr `tp_dim = d` on reshapes and `kv.append_ragged` sites: the
 *    literal extent at dim d (head count / flattened projection / pool
 *    head axis) divides by N.
 *
 * Collectives are inserted with the rebind trick: the tagged binding's
 * value moves to a fresh `*_part` var and the ORIGINAL var rebinds to
 * the collective's result — downstream uses see the full value without
 * any use-replacement. The pass renormalizes at the end, so every
 * annotation (and the function signature) reflects the sharded shapes.
 *
 * Uniformity is what lets one compiled executable serve all N shards:
 * the split is exact (divisibility is checked at every site; violations
 * throw RuntimeError naming the offending dimension).
 */
#include <string>
#include <unordered_set>
#include <vector>

#include "passes/passes.h"

namespace relax {
namespace passes {

using namespace ir;
using Var = ir::Var;
using VarNode = ir::VarNode;
using CallNode = ir::CallNode;

namespace {

/** The divided literal at `dim`, or a thrown RuntimeError naming the
 *  non-divisible extent. */
int64_t
dividedExtent(const PrimExpr& extent, int64_t num_shards,
              const std::string& what, size_t dim)
{
    const int64_t* value = asIntImm(extent);
    if (!value) {
        RELAX_THROW(RuntimeError)
            << "ShardPass: " << what << " dim " << dim
            << " is symbolic; only literal extents shard";
    }
    if (*value % num_shards != 0) {
        RELAX_THROW(RuntimeError)
            << "ShardPass: " << what << " dim " << dim << " (" << *value
            << ") not divisible by " << num_shards << " shards";
    }
    return *value / num_shards;
}

/** A fresh tensor annotation with dim `dim` divided by `num_shards`.
 *  Never mutates PrimExpr nodes in place — literal dims may be shared
 *  across annotations. */
StructInfo
dividedTensorSInfo(const StructInfo& sinfo, size_t dim, int64_t num_shards,
                   const std::string& what)
{
    const auto* tensor = asTensor(sinfo);
    if (!tensor || !tensor->shape) {
        RELAX_THROW(RuntimeError)
            << "ShardPass: " << what << " has no static shape annotation";
    }
    std::vector<PrimExpr> shape = *tensor->shape;
    RELAX_ICHECK(dim < shape.size())
        << "ShardPass: " << what << " rank " << shape.size()
        << " has no dim " << dim;
    shape[dim] = intImm(dividedExtent(shape[dim], num_shards, what, dim));
    return tensorSInfo(std::move(shape), tensor->dtype);
}

} // namespace

Pass
shardPass(int64_t num_shards)
{
    return {"Shard", [num_shards](IRModulePtr module) {
        Function func = module->getFunction("decode_ragged");
        if (!func || num_shards <= 1) return module;

        // 1. Shard the KV pool parameters along the head axis. The
        //    donatable_params attr names exactly the pool tensors.
        std::unordered_set<std::string> pool_names;
        if (auto it = func->attrs.find("donatable_params");
            it != func->attrs.end()) {
            const std::string& joined = it->second;
            for (size_t pos = 0; pos < joined.size();) {
                size_t next = joined.find(';', pos);
                if (next == std::string::npos) next = joined.size();
                pool_names.insert(joined.substr(pos, next - pos));
                pos = next + 1;
            }
        }
        for (const auto& param : func->params) {
            if (!pool_names.count(param->name)) continue;
            param->setStructInfo(dividedTensorSInfo(
                param->structInfo(), 1, num_shards,
                "kv pool " + param->name));
        }

        // 2. Walk the bindings: divide tagged weights, divide tp_dim
        //    literals, and splice collectives after row/vocab matmuls.
        const auto* seq = static_cast<const SeqExprNode*>(func->body.get());
        int64_t tagged = 0;
        for (const auto& block : seq->blocks) {
            std::vector<Binding> rewritten;
            rewritten.reserve(block->bindings.size());
            for (const auto& binding : block->bindings) {
                rewritten.push_back(binding);
                if (binding.value->kind() != RxKind::kCall) continue;
                auto* call = static_cast<CallNode*>(binding.value.get());

                if (auto it = call->attrs.find("tp_dim");
                    it != call->attrs.end()) {
                    size_t dim = (size_t)std::get<int64_t>(it->second);
                    if (isOpCall(binding.value, "relax.reshape")) {
                        // args[1] is the literal target ShapeExpr.
                        RELAX_ICHECK(call->args[1]->kind() ==
                                     RxKind::kShapeExpr)
                            << "ShardPass: tp_dim reshape without a "
                               "shape literal";
                        const auto* shape_expr =
                            static_cast<const ShapeExprNode*>(
                                call->args[1].get());
                        std::vector<PrimExpr> values = shape_expr->values;
                        values[dim] = intImm(dividedExtent(
                            values[dim], num_shards,
                            "reshape " + binding.var->name, dim));
                        call->args[1] = makeShapeExpr(std::move(values));
                    } else {
                        // kv.append_ragged: the declared pool output.
                        RELAX_ICHECK(call->sinfoArgs.size() == 1)
                            << "ShardPass: tp_dim on a call without a "
                               "single output annotation";
                        call->sinfoArgs[0] = dividedTensorSInfo(
                            call->sinfoArgs[0], dim, num_shards,
                            "append " + binding.var->name);
                    }
                }

                auto tp = call->attrs.find("tp");
                if (tp == call->attrs.end()) continue;
                ++tagged;
                const std::string& tag = std::get<std::string>(tp->second);
                RELAX_ICHECK(call->args.size() >= 2 &&
                             call->args[1]->kind() == RxKind::kVar)
                    << "ShardPass: tp-tagged matmul without a weight var";
                Var weight =
                    std::static_pointer_cast<VarNode>(call->args[1]);
                size_t split_dim = tag == "row" ? 1 : 0;
                weight->setStructInfo(dividedTensorSInfo(
                    weight->structInfo(), split_dim, num_shards,
                    "weight " + weight->name));
                if (tag == "col") continue;

                // row/vocab: the shard result is partial; splice in the
                // collective that restores the full value. The original
                // var rebinds to the collective so every downstream use
                // (and the function result) sees the exchanged tensor.
                StructInfo full = binding.var->structInfo();
                Var part = makeVar(binding.var->name + "_part", full,
                                   /*is_dataflow=*/true);
                rewritten.back().var = part;
                const char* ccl = tag == "row" ? "ccl.all_reduce"
                                               : "ccl.all_gather";
                Call exchange = callDPSLibrary(ccl, {part}, full);
                rewritten.push_back({binding.var, exchange, false,
                                     nullptr});
            }
            block->bindings = std::move(rewritten);
        }
        if (tagged == 0) {
            RELAX_THROW(RuntimeError)
                << "ShardPass: decode_ragged carries no tensor-parallel "
                   "annotations (quantized weights are not shardable)";
        }

        // 3. Renormalize so every annotation reflects the sharded shapes,
        //    then refresh the pieces normalize does not touch: the return
        //    annotation and the function's callable signature.
        module = normalizePass().run(std::move(module));
        func = module->getFunction("decode_ragged");
        const auto* body = static_cast<const SeqExprNode*>(func->body.get());
        func->retSInfo = body->body->structInfo();
        std::vector<StructInfo> param_infos;
        param_infos.reserve(func->params.size());
        for (const auto& p : func->params) {
            param_infos.push_back(p->structInfo());
        }
        func->setStructInfo(
            callableSInfo(std::move(param_infos), func->retSInfo));
        return module;
    }};
}

} // namespace passes
} // namespace relax
