/**
 * @file
 * LowerCallTIR: makes the DPS semantics of Fig. 5 explicit. Every
 * call_tir / call_dps_library binding becomes
 *
 *     out  = relax.builtin.alloc_tensor(annotation)
 *     _    = relax.vm.kernel_call(callee, inputs..., out, sym args...)
 *     var  = out        (or a tuple of outs)
 *
 * exposing all allocations to the memory planner (Algorithm 3, line 3).
 * Dataflow blocks become plain blocks: allocation is an effect.
 */
#include "passes/passes.h"

namespace relax {
namespace passes {

using namespace ir;
using Var = ir::Var;
using VarNode = ir::VarNode;
using CallNode = ir::CallNode;

namespace {

Var
emitAlloc(const StructInfo& sinfo, std::vector<Binding>* out)
{
    Call alloc =
        makeCall(getOp("relax.builtin.alloc_tensor"), {}, {}, {sinfo});
    alloc->setStructInfo(sinfo);
    Var v = makeVar("alloc", sinfo);
    out->push_back({v, alloc, false, nullptr});
    return v;
}

void
lowerBinding(const Binding& binding, std::vector<Binding>* out)
{
    bool is_tir = isOpCall(binding.value, "relax.call_tir");
    bool is_lib = isOpCall(binding.value, "relax.call_dps_library");
    if (!is_tir && !is_lib) {
        Binding copy = binding;
        copy.var->isDataflow = false;
        out->push_back(copy);
        return;
    }
    const auto* call = static_cast<const CallNode*>(binding.value.get());

    int64_t num_sym = 0;
    if (auto attr = call->attrs.find("num_sym_args");
        attr != call->attrs.end()) {
        num_sym = std::get<int64_t>(attr->second);
    }
    std::vector<Expr> inputs(call->args.begin() + 1,
                             call->args.end() - num_sym);
    std::vector<Expr> sym_args(call->args.end() - num_sym,
                               call->args.end());

    // In-place DPS: a call annotated with `inplace_arg = i` writes its
    // result into input i instead of a fresh allocation — the output var
    // IS the input var, no alloc_tensor is emitted, and the VM's out
    // argument aliases the input tensor (how the persistent KV page pool
    // is mutated without ever being copied).
    int64_t inplace_arg = -1;
    if (auto attr = call->attrs.find("inplace_arg");
        attr != call->attrs.end()) {
        inplace_arg = std::get<int64_t>(attr->second);
    }

    // One allocation per output annotation (or the aliased input).
    std::vector<Var> outs;
    if (inplace_arg >= 0) {
        RELAX_ICHECK(call->sinfoArgs.size() == 1)
            << "inplace_arg supports exactly one output";
        RELAX_ICHECK(inplace_arg < (int64_t)inputs.size() &&
                     inputs[inplace_arg]->kind() == RxKind::kVar)
            << "inplace_arg must name a variable input";
        outs.push_back(
            std::static_pointer_cast<VarNode>(inputs[inplace_arg]));
    } else {
        for (const auto& sinfo : call->sinfoArgs) {
            outs.push_back(emitAlloc(sinfo, out));
        }
    }

    std::vector<Expr> kernel_args;
    kernel_args.push_back(call->args[0]); // GlobalVar or ExternFunc
    kernel_args.insert(kernel_args.end(), inputs.begin(), inputs.end());
    kernel_args.insert(kernel_args.end(), outs.begin(), outs.end());
    kernel_args.insert(kernel_args.end(), sym_args.begin(), sym_args.end());
    Attrs attrs = call->attrs;
    attrs["num_inputs"] = (int64_t)inputs.size();
    attrs["num_outputs"] = (int64_t)outs.size();
    attrs["num_sym_args"] = num_sym;
    attrs["callee_kind"] = std::string(is_tir ? "tir" : "library");
    Call kernel = makeCall(getOp("relax.vm.kernel_call"),
                           std::move(kernel_args), std::move(attrs));
    kernel->setStructInfo(objectSInfo());
    Var ignored = makeVar("_", objectSInfo());
    out->push_back({ignored, kernel, false, nullptr});

    // Rebind the original variable to the allocated output(s).
    Binding rebind;
    rebind.var = binding.var;
    rebind.var->isDataflow = false;
    if (outs.size() == 1) {
        rebind.value = outs[0];
    } else {
        rebind.value = makeTuple({outs.begin(), outs.end()});
        rebind.value->setStructInfo(binding.var->structInfo());
    }
    out->push_back(std::move(rebind));
}

} // namespace

Pass
lowerCallTIRPass()
{
    return {"LowerCallTIR", [](IRModulePtr module) {
                for (const auto& [name, func] : module->functions()) {
                    const auto* seq =
                        static_cast<const SeqExprNode*>(func->body.get());
                    std::vector<BindingBlock> blocks;
                    // Merge everything into one plain block: allocation is
                    // an effect and ordering is now explicit.
                    auto block = std::make_shared<BindingBlockNode>(false);
                    for (const auto& old_block : seq->blocks) {
                        for (const auto& binding : old_block->bindings) {
                            lowerBinding(binding, &block->bindings);
                        }
                    }
                    blocks.push_back(block);
                    Function updated = makeFunction(
                        func->params, makeSeqExpr(blocks, seq->body),
                        func->retSInfo);
                    updated->attrs = func->attrs;
                    module->addFunction(name, updated);
                }
                return module;
            }};
}

} // namespace passes
} // namespace relax
