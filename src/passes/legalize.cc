/**
 * @file
 * LegalizeOps: lowers remaining high-level operator calls to call_tir of
 * freshly generated tensor programs (§4.6's "operator to tensor program
 * lowering"). Data-dependent operators without a static legalization
 * become runtime packed calls.
 */
#include <unordered_set>

#include "ir/op_registry.h"
#include "tir/transform.h"
#include "op/ops.h"
#include "passes/passes.h"

namespace relax {
namespace passes {

using namespace ir;
using Var = ir::Var;
using VarNode = ir::VarNode;
using CallNode = ir::CallNode;

namespace {

/** Short kernel name from an op name, e.g. "relax.matmul" -> "matmul". */
std::string
kernelNameHint(const std::string& op_name)
{
    size_t dot = op_name.rfind('.');
    return dot == std::string::npos ? op_name : op_name.substr(dot + 1);
}

Expr
legalizeBindingValue(const Expr& value, const IRModulePtr& module)
{
    if (!value || value->kind() != RxKind::kCall) return value;
    const auto* call = static_cast<const CallNode*>(value.get());
    if (!call->op || call->op->kind() != RxKind::kOp) return value;
    const std::string& op_name =
        static_cast<const OpNode*>(call->op.get())->name;
    if (op_name.rfind("relax.call_", 0) == 0 ||
        op_name.rfind("relax.builtin", 0) == 0 ||
        op_name.rfind("relax.memory", 0) == 0 ||
        op_name.rfind("relax.vm", 0) == 0) {
        return value; // already lowered / runtime primitive
    }
    const ir::OpInfo* info = OpRegistry::global().find(op_name);
    if (!info) return value;
    StructInfo out_sinfo = value->structInfo();
    RELAX_ICHECK(out_sinfo) << "legalize before deduction for " << op_name;

    if (!info->legalize) {
        // Data-dependent operator: route to the runtime builtin which
        // allocates its own output (e.g. unique, Fig. 3).
        return callPacked("builtin." + kernelNameHint(op_name), call->args,
                          out_sinfo);
    }

    std::string fname =
        module->uniqueName(kernelNameHint(op_name));
    tir::PrimFunc kernel = info->legalize(*call, fname);

    // Symbolic variables not recoverable as a bare dim of some buffer
    // parameter must travel as explicit scalar arguments (Fig. 8) so the
    // runtime shape match can resolve composite dims like 2 * n.
    std::vector<Expr> sym_args;
    {
        auto free_vars = tir::collectFreeVars(kernel);
        std::unordered_set<const ::relax::VarNode*> bindable;
        for (const auto& buffer : kernel->params) {
            for (const auto& dim : buffer->shape) {
                if (dim->kind() == ExprKind::kVar) {
                    bindable.insert(
                        static_cast<const ::relax::VarNode*>(dim.get()));
                }
            }
        }
        std::vector<::relax::Var> unbound;
        for (const auto* v : free_vars) {
            if (!bindable.count(v)) {
                unbound.push_back(
                    std::static_pointer_cast<const ::relax::VarNode>(
                        std::static_pointer_cast<
                            const ::relax::PrimExprNode>(
                            v->sharedFromThis())));
            }
        }
        std::sort(unbound.begin(), unbound.end(),
                  [](const ::relax::Var& a, const ::relax::Var& b) {
                      return a->name < b->name;
                  });
        for (const auto& v : unbound) {
            kernel->symParams.push_back(v);
            sym_args.push_back(makePrimValue(v));
        }
    }
    GlobalVar gv = module->addTIRFunc(kernel);

    // Kernel parameters are buffers: forward only tensor arguments
    // (ShapeExpr operands such as reshape's target are compile-time only).
    std::vector<Expr> tensor_args;
    for (const auto& arg : call->args) {
        if (asTensor(arg->structInfo())) tensor_args.push_back(arg);
    }

    if (const auto* tuple = asTuple(out_sinfo)) {
        // Multi-output kernels (split): annotation per output.
        std::vector<Expr> all_args;
        all_args.push_back(gv);
        all_args.insert(all_args.end(), tensor_args.begin(),
                        tensor_args.end());
        all_args.insert(all_args.end(), sym_args.begin(), sym_args.end());
        Attrs attrs;
        attrs["num_sym_args"] = (int64_t)sym_args.size();
        Call lowered = makeCall(getOp("relax.call_tir"),
                                std::move(all_args), std::move(attrs),
                                tuple->fields);
        lowered->setStructInfo(out_sinfo);
        return lowered;
    }
    return callTIR(gv, tensor_args, out_sinfo, sym_args);
}

} // namespace

Pass
legalizeOpsPass()
{
    return {"LegalizeOps", [](IRModulePtr module) {
                op::ensureOpsRegistered();
                for (const auto& [name, func] : module->functions()) {
                    const auto* seq =
                        static_cast<const SeqExprNode*>(func->body.get());
                    for (const auto& block : seq->blocks) {
                        for (auto& binding : block->bindings) {
                            if (binding.isMatchCast) continue;
                            binding.value =
                                legalizeBindingValue(binding.value, module);
                        }
                    }
                }
                return module;
            }};
}

} // namespace passes
} // namespace relax
