/**
 * @file
 * Constant folding: operator calls whose operands are all compile-time
 * constants are evaluated at compile time through the same legalization +
 * interpreter path used at runtime, so folding can never disagree with
 * execution. Typical wins in the paper's workloads: pre-computing masks,
 * scale tables and small weight transformations.
 */
#include <unordered_map>

#include "ir/op_registry.h"
#include "ir/utils.h"
#include "op/ops.h"
#include "passes/passes.h"
#include "tir/interpreter.h"

namespace relax {
namespace passes {

using namespace ir;
using Var = ir::Var;
using VarNode = ir::VarNode;
using CallNode = ir::CallNode;

namespace {

/** Limits folding to tensors worth precomputing at compile time. */
constexpr int64_t kMaxFoldedElements = 1 << 20;

Expr
tryFold(const Expr& value)
{
    if (!value || value->kind() != RxKind::kCall) return value;
    const auto* call = static_cast<const CallNode*>(value.get());
    if (!call->op || call->op->kind() != RxKind::kOp) return value;
    const std::string& op_name =
        static_cast<const OpNode*>(call->op.get())->name;
    if (op_name.rfind("relax.call_", 0) == 0) return value;
    const ir::OpInfo* info = OpRegistry::global().find(op_name);
    if (!info || !info->legalize) return value;

    // All tensor operands must be constants with static shapes; shape
    // operands must be fully constant as well.
    std::vector<NDArray> inputs;
    for (const auto& arg : call->args) {
        if (arg->kind() == RxKind::kConstant) {
            const auto& data =
                static_cast<const ConstantNode*>(arg.get())->data;
            if (!data.hasData()) return value;
            inputs.push_back(data);
            continue;
        }
        if (arg->kind() == RxKind::kShapeExpr) {
            for (const auto& dim :
                 static_cast<const ShapeExprNode*>(arg.get())->values) {
                if (!asIntImm(dim)) return value;
            }
            continue;
        }
        return value;
    }
    const auto* out_info = asTensor(value->structInfo());
    if (!out_info || !out_info->shape) return value;
    std::vector<int64_t> out_shape;
    int64_t out_elems = 1;
    for (const auto& dim : *out_info->shape) {
        const int64_t* c = asIntImm(dim);
        if (!c) return value;
        out_shape.push_back(*c);
        out_elems *= *c;
    }
    if (out_elems > kMaxFoldedElements) return value;
    if (asTuple(value->structInfo())) return value; // multi-output: skip

    // Evaluate through the legalized kernel on the interpreter.
    tir::PrimFunc kernel;
    try {
        kernel = info->legalize(*call, "const_fold_kernel");
    } catch (const Error&) {
        return value; // not legalizable under these operands
    }
    NDArray out = NDArray::zeros(out_shape, out_info->dtype);
    std::vector<NDArray> args = inputs;
    args.push_back(out);
    try {
        tir::run(kernel, args);
    } catch (const Error&) {
        return value;
    }
    return makeConstant(out);
}

} // namespace

Pass
constantFoldPass()
{
    return {"ConstantFold", [](IRModulePtr module) {
                op::ensureOpsRegistered();
                for (const auto& [name, func] : module->functions()) {
                    const auto* seq =
                        static_cast<const SeqExprNode*>(func->body.get());
                    for (const auto& block : seq->blocks) {
                        // Fold iteratively: later bindings may consume
                        // earlier folded constants (binding values refer
                        // to vars, so propagate var -> constant).
                        std::unordered_map<const VarNode*, Expr> folded;
                        for (auto& binding : block->bindings) {
                            if (binding.isMatchCast) continue;
                            Expr value = binding.value;
                            // Substitute known-constant vars into args so
                            // folded producers become dead.
                            if (!folded.empty()) {
                                RxVarMap map(folded.begin(), folded.end());
                                value = substituteVars(value, map);
                                binding.value = value;
                            }
                            Expr result = tryFold(value);
                            if (result->kind() == RxKind::kConstant) {
                                binding.value = result;
                                binding.var->setStructInfo(
                                    result->structInfo());
                                folded[binding.var.get()] = result;
                            }
                        }
                    }
                }
                // Folded-over inputs become dead; clean them up.
                return deadCodeEliminationPass().run(module);
            }};
}

} // namespace passes
} // namespace relax
