/**
 * @file
 * Pass infrastructure: a pass maps modules to modules; a pipeline runs a
 * fixed-order sequence (Fig. 13 — Relax deliberately uses a fixed-order
 * pipeline without fixed-point iteration).
 */
#ifndef RELAX_PASSES_PASS_H_
#define RELAX_PASSES_PASS_H_

#include <functional>
#include <string>
#include <vector>

#include "ir/module.h"

namespace relax {
namespace passes {

/** A module-to-module transformation. */
struct Pass
{
    std::string name;
    std::function<ir::IRModulePtr(ir::IRModulePtr)> run;
};

// Defined in alias_analysis.cc; declared here (not via alias_analysis.h,
// which includes this header) so pipelines can lint every pass boundary.
void verifyAliasSafety(const ir::IRModulePtr& module);
bool aliasVerifierEnabled();

/** Ordered pass sequence with optional per-pass tracing. */
class Pipeline
{
  public:
    Pipeline& add(Pass pass)
    {
        passes_.push_back(std::move(pass));
        return *this;
    }

    /** Runs every pass in order; validates well-formedness when enabled.
     *  Debug builds (or RELAX_VERIFY_ALIAS=1) additionally lint the
     *  aliasing contract after every pass, independent of
     *  `check_well_formed` — passes that are not yet well-formed in the
     *  annotation sense must still respect storage aliasing. */
    ir::IRModulePtr
    run(ir::IRModulePtr module, bool check_well_formed = true) const
    {
        bool verify_alias = aliasVerifierEnabled();
        for (const auto& pass : passes_) {
            module = pass.run(std::move(module));
            if (check_well_formed) ir::wellFormed(module);
            if (verify_alias) verifyAliasSafety(module);
        }
        return module;
    }

    const std::vector<Pass>& passes() const { return passes_; }

  private:
    std::vector<Pass> passes_;
};

} // namespace passes
} // namespace relax

#endif // RELAX_PASSES_PASS_H_
