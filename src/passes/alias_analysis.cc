/**
 * @file
 * Implements the alias/liveness analysis of alias_analysis.h and the
 * VerifyAliasSafety lint. The in-place planning pass that consumes the
 * facts lives in inplace_plan.cc.
 */
#include "passes/alias_analysis.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "ir/utils.h"

namespace relax {
namespace passes {

using namespace ir;
using Var = ir::Var;
using VarNode = ir::VarNode;
using CallNode = ir::CallNode;

namespace {

/** Number of trailing symbolic args of a call_tir/call_dps_library or
 *  kernel_call, from its num_sym_args attr. */
int64_t
numSymArgsOf(const CallNode* call)
{
    auto it = call->attrs.find("num_sym_args");
    return it == call->attrs.end() ? 0 : std::get<int64_t>(it->second);
}

int64_t
intAttrOr(const CallNode* call, const char* name, int64_t fallback)
{
    auto it = call->attrs.find(name);
    return it == call->attrs.end() ? fallback
                                   : std::get<int64_t>(it->second);
}

/** The graph-level input exprs of a DPS call at any lowering stage. */
std::vector<Expr>
dpsInputsOf(const CallNode* call, bool is_kernel_call)
{
    int64_t num_sym = numSymArgsOf(call);
    if (is_kernel_call) {
        int64_t num_inputs = intAttrOr(call, "num_inputs", 0);
        return {call->args.begin() + 1,
                call->args.begin() + 1 + num_inputs};
    }
    return {call->args.begin() + 1, call->args.end() - num_sym};
}

} // namespace

// ---------------------------------------------------------------------------
// AliasState: the forward transfer function
// ---------------------------------------------------------------------------

int
AliasState::newRoot(AliasRoot::Kind kind, const VarNode* var,
                    size_t def_index, int storage_root)
{
    AliasRoot root;
    root.kind = kind;
    root.var = var;
    root.defIndex = def_index;
    root.storageRoot = storage_root;
    roots_.push_back(root);
    holders_.emplace_back();
    return (int)roots_.size() - 1;
}

void
AliasState::assignRoots(const VarNode* v, std::vector<int> roots)
{
    std::sort(roots.begin(), roots.end());
    roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
    for (int id : roots) holders_[id].push_back(v);
    varRoots_[v] = std::move(roots);
}

void
AliasState::addParam(const Var& param)
{
    // Every parameter is a distinct root — tensor or not; non-tensor
    // params (shapes, scalars) simply never intersect anything useful.
    assignRoots(param.get(),
                {newRoot(AliasRoot::Kind::kParam, param.get(), 0)});
}

const std::vector<int>&
AliasState::rootsOf(const VarNode* v) const
{
    static const std::vector<int> kEmpty;
    auto it = varRoots_.find(v);
    return it == varRoots_.end() ? kEmpty : it->second;
}

bool
AliasState::mayAlias(const VarNode* a, const VarNode* b) const
{
    const auto& ra = rootsOf(a);
    const auto& rb = rootsOf(b);
    // Sorted-set intersection test.
    size_t i = 0, j = 0;
    while (i < ra.size() && j < rb.size()) {
        if (ra[i] == rb[j]) return true;
        if (ra[i] < rb[j]) ++i;
        else ++j;
    }
    return false;
}

const std::vector<const VarNode*>&
AliasState::holdersOf(int root_id) const
{
    return holders_[root_id];
}

size_t
AliasState::defIndexOf(const VarNode* v) const
{
    auto it = defIndex_.find(v);
    return it == defIndex_.end() ? 0 : it->second;
}

std::vector<int>
AliasState::rootsOfExpr(const Expr& expr, size_t index)
{
    switch (expr->kind()) {
      case RxKind::kVar: {
          return rootsOf(static_cast<const VarNode*>(expr.get()));
      }
      case RxKind::kConstant: {
          // One root per constant occurrence is enough: constants are
          // never written, and the kConst kind pins them non-rewritable.
          return {newRoot(AliasRoot::Kind::kConst, nullptr, index)};
      }
      case RxKind::kTuple: {
          std::vector<int> all;
          for (const auto& field :
               static_cast<const TupleNode*>(expr.get())->fields) {
              std::vector<int> fr = rootsOfExpr(field, index);
              all.insert(all.end(), fr.begin(), fr.end());
          }
          return all;
      }
      default:
          return {};
    }
}

void
AliasState::bind(const Binding& binding, size_t index)
{
    const Expr& value = binding.value;
    const VarNode* var = binding.var.get();
    defIndex_[var] = index;
    switch (value->kind()) {
      case RxKind::kVar:
      case RxKind::kConstant: {
          // Rebind / match_cast / constant binding: same storage.
          assignRoots(var, rootsOfExpr(value, index));
          if (value->kind() == RxKind::kVar) {
              auto fields = tupleFieldRoots_.find(
                  static_cast<const VarNode*>(value.get()));
              if (fields != tupleFieldRoots_.end()) {
                  tupleFieldRoots_[var] = fields->second;
              }
          }
          return;
      }
      case RxKind::kTuple: {
          // Union of the fields, with per-field precision retained for
          // TupleGetItem projections.
          const auto* tuple = static_cast<const TupleNode*>(value.get());
          std::vector<std::vector<int>> per_field;
          std::vector<int> all;
          per_field.reserve(tuple->fields.size());
          for (const auto& field : tuple->fields) {
              per_field.push_back(rootsOfExpr(field, index));
              all.insert(all.end(), per_field.back().begin(),
                         per_field.back().end());
          }
          tupleFieldRoots_[var] = std::move(per_field);
          assignRoots(var, std::move(all));
          return;
      }
      case RxKind::kTupleGetItem: {
          const auto* get =
              static_cast<const TupleGetItemNode*>(value.get());
          if (get->tuple->kind() == RxKind::kVar) {
              const auto* tv =
                  static_cast<const VarNode*>(get->tuple.get());
              auto fields = tupleFieldRoots_.find(tv);
              if (fields != tupleFieldRoots_.end() && get->index >= 0 &&
                  (size_t)get->index < fields->second.size()) {
                  assignRoots(var, fields->second[get->index]);
                  return;
              }
              // No per-field facts: fall back to the whole tuple's set.
              assignRoots(var, rootsOf(tv));
              return;
          }
          assignRoots(var, {});
          return;
      }
      case RxKind::kCall: {
          const auto* call = static_cast<const CallNode*>(value.get());
          bool is_kernel = isOpCall(value, "relax.vm.kernel_call");
          bool is_dps = isOpCall(value, "relax.call_tir") ||
                        isOpCall(value, "relax.call_dps_library");
          if (is_dps || is_kernel) {
              int64_t inplace = intAttrOr(call, "inplace_arg", -1);
              if (inplace >= 0) {
                  std::vector<Expr> inputs =
                      dpsInputsOf(call, is_kernel);
                  if ((size_t)inplace < inputs.size() &&
                      inputs[inplace]->kind() == RxKind::kVar) {
                      // DPS aliasing: the output var IS the input's
                      // storage. (For kernel_call the binding var is the
                      // discarded "_", but propagating is harmless.)
                      assignRoots(var,
                                  rootsOf(static_cast<const VarNode*>(
                                      inputs[inplace].get())));
                      return;
                  }
              }
          }
          if (isOpCall(value, "relax.memory.alloc_tensor") &&
              !call->args.empty() &&
              call->args[0]->kind() == RxKind::kVar) {
              // Instantiation inside a planned storage: fresh root linked
              // to the storage root so VerifyAliasSafety can check that
              // reuse never overlaps a live range.
              const auto& sroots = rootsOf(
                  static_cast<const VarNode*>(call->args[0].get()));
              int storage_root = sroots.empty() ? -1 : sroots[0];
              assignRoots(var, {newRoot(AliasRoot::Kind::kFresh, var,
                                        index, storage_root)});
              return;
          }
          if (isOpCall(value, "relax.memory.alloc_storage")) {
              assignRoots(var, {newRoot(AliasRoot::Kind::kStorage, var,
                                        index)});
              return;
          }
          // Any other call (op call, builtin.alloc_tensor, subgraph call,
          // packed call, non-inplace DPS): a fresh allocation. Calls
          // returning tuples get per-field fresh roots.
          size_t num_outs =
              is_dps ? std::max<size_t>(call->sinfoArgs.size(), 1) : 1;
          if (num_outs > 1) {
              std::vector<std::vector<int>> per_field;
              std::vector<int> all;
              for (size_t o = 0; o < num_outs; ++o) {
                  per_field.push_back({newRoot(AliasRoot::Kind::kFresh,
                                               var, index)});
                  all.push_back(per_field.back()[0]);
              }
              tupleFieldRoots_[var] = std::move(per_field);
              assignRoots(var, std::move(all));
          } else {
              assignRoots(
                  var, {newRoot(AliasRoot::Kind::kFresh, var, index)});
          }
          return;
      }
      default:
          // Shape exprs, prim values, nested seq/if results: no tensor
          // storage tracked.
          assignRoots(var, {});
          return;
    }
}

// ---------------------------------------------------------------------------
// AliasLivenessAnalysis
// ---------------------------------------------------------------------------

AliasLivenessAnalysis::AliasLivenessAnalysis(const Function& func)
{
    const auto* seq = static_cast<const SeqExprNode*>(func->body.get());
    RELAX_ICHECK(func->body->kind() == RxKind::kSeqExpr)
        << "alias analysis expects a SeqExpr-bodied function";
    for (const auto& block : seq->blocks) {
        for (const auto& binding : block->bindings) {
            bindings_.push_back(&binding);
        }
    }

    for (const auto& param : func->params) state_.addParam(param);
    for (size_t i = 0; i < bindings_.size(); ++i) {
        state_.bind(*bindings_[i], i);
    }

    // Last-use liveness over the linearized sequence; the body is the
    // final use site at index bindings_.size().
    for (size_t i = 0; i < bindings_.size(); ++i) {
        std::unordered_set<const VarNode*> used;
        collectVarUses(bindings_[i]->value, &used);
        bool is_rebind = bindings_[i]->value->kind() == RxKind::kVar;
        for (const auto* v : used) {
            lastUse_[v] = i;
            if (!is_rebind) lastNonRebindUse_[v] = i;
        }
    }
    {
        std::unordered_set<const VarNode*> used;
        collectVarUses(seq->body, &used);
        for (const auto* v : used) {
            lastUse_[v] = bindings_.size();
            lastNonRebindUse_[v] = bindings_.size();
        }
    }

    rootLastLive_.assign(state_.numRoots(), kNeverUsed);
    for (const auto& [v, last] : lastUse_) {
        for (int id : state_.rootsOf(v)) {
            if (rootLastLive_[id] == kNeverUsed ||
                rootLastLive_[id] < last) {
                rootLastLive_[id] = last;
            }
        }
    }
}

size_t
AliasLivenessAnalysis::lastDirectUse(const VarNode* v) const
{
    auto it = lastUse_.find(v);
    return it == lastUse_.end() ? kNeverUsed : it->second;
}

size_t
AliasLivenessAnalysis::lastNonRebindUse(const VarNode* v) const
{
    auto it = lastNonRebindUse_.find(v);
    return it == lastNonRebindUse_.end() ? kNeverUsed : it->second;
}

size_t
AliasLivenessAnalysis::rootLastLive(int root_id) const
{
    return rootLastLive_[root_id];
}

size_t
AliasLivenessAnalysis::lastLiveIndex(const VarNode* v) const
{
    size_t last = lastDirectUse(v);
    if (last == kNeverUsed) last = 0;
    for (int id : state_.rootsOf(v)) {
        size_t root_last = rootLastLive_[id];
        if (root_last != kNeverUsed) last = std::max(last, root_last);
    }
    return last;
}

// ---------------------------------------------------------------------------
// Shared call introspection
// ---------------------------------------------------------------------------

const VarNode*
inplaceTargetOf(const Expr& value)
{
    if (value->kind() != RxKind::kCall) return nullptr;
    bool is_kernel = isOpCall(value, "relax.vm.kernel_call");
    bool is_dps = isOpCall(value, "relax.call_tir") ||
                  isOpCall(value, "relax.call_dps_library");
    if (!is_kernel && !is_dps) return nullptr;
    const auto* call = static_cast<const CallNode*>(value.get());
    int64_t inplace = intAttrOr(call, "inplace_arg", -1);
    if (inplace < 0) return nullptr;
    std::vector<Expr> inputs = dpsInputsOf(call, is_kernel);
    if ((size_t)inplace >= inputs.size() ||
        inputs[inplace]->kind() != RxKind::kVar) {
        return nullptr;
    }
    return static_cast<const VarNode*>(inputs[inplace].get());
}

int
libraryInplaceArg(const std::string& callee)
{
    // The only library kernel with in-place DPS semantics: the ragged
    // page-pool append scatters this call's fresh tokens into the pool
    // argument and reads nothing else from it (vm/libraries.cc).
    if (callee == "kv.append_ragged") return 0;
    return -1;
}

// ---------------------------------------------------------------------------
// VerifyAliasSafety
// ---------------------------------------------------------------------------

bool
aliasVerifierEnabled()
{
    const char* env = std::getenv("RELAX_VERIFY_ALIAS");
    if (env && *env) return std::strcmp(env, "0") != 0;
#ifdef NDEBUG
    return false;
#else
    return true;
#endif
}

namespace {

void
verifyFunction(const std::string& fn_name, const Function& func)
{
    if (!func->body || func->body->kind() != RxKind::kSeqExpr) return;
    AliasLivenessAnalysis analysis(func);
    const auto& state = analysis.state();
    const auto& bindings = analysis.bindings();

    for (size_t i = 0; i < bindings.size(); ++i) {
        const VarNode* target = inplaceTargetOf(bindings[i]->value);
        if (!target) continue;
        // Rule 1: after an in-place write at i, the overwritten value
        // must be unreachable. Every var holding one of the target's
        // roots and defined at or before i may have no real
        // (non-rebind) use past i — later readers must go through the
        // rewritten output chain, which carries the new value. Vars
        // defined after i alias the target only via that chain (reaching
        // the old value would require using an old var, caught here).
        for (int root : state.rootsOf(target)) {
            for (const VarNode* holder : state.holdersOf(root)) {
                if (holder == bindings[i]->var.get()) continue;
                // Vars defined after the write alias it only through the
                // rewritten output chain, which carries the new value.
                if (state.defIndexOf(holder) > i) continue;
                size_t last = analysis.lastNonRebindUse(holder);
                if (last != AliasLivenessAnalysis::kNeverUsed &&
                    last > i) {
                    const VarNode* other =
                        last < bindings.size()
                            ? inplaceTargetOf(bindings[last]->value)
                            : nullptr;
                    RELAX_THROW(IRError)
                        << "alias safety violation in '" << fn_name
                        << "': binding #" << i
                        << " writes in place through '" << target->name
                        << "' but aliased var '" << holder->name
                        << "' is still "
                        << (other == holder
                                ? "written in place (double in-place "
                                  "write into one storage)"
                                : "read")
                        << " at binding #" << last;
                }
            }
        }
    }

    // Rule 2: planned storage reuse must never overlap a live range.
    // Instantiations of one storage, ordered by definition, must each
    // die (through every alias) before the next one is created.
    std::unordered_map<int, std::vector<int>> by_storage;
    for (int id = 0; id < (int)state.numRoots(); ++id) {
        if (state.root(id).storageRoot >= 0) {
            by_storage[state.root(id).storageRoot].push_back(id);
        }
    }
    for (auto& [storage, instances] : by_storage) {
        std::sort(instances.begin(), instances.end(),
                  [&](int a, int b) {
                      return state.root(a).defIndex <
                             state.root(b).defIndex;
                  });
        for (size_t a = 0; a + 1 < instances.size(); ++a) {
            size_t live_until = analysis.rootLastLive(instances[a]);
            if (live_until == AliasLivenessAnalysis::kNeverUsed) continue;
            for (size_t b = a + 1; b < instances.size(); ++b) {
                size_t next_def = state.root(instances[b]).defIndex;
                if (next_def <= live_until) {
                    RELAX_THROW(IRError)
                        << "alias safety violation in '" << fn_name
                        << "': storage '"
                        << state.root(storage).var->name
                        << "' is re-instantiated at binding #" << next_def
                        << " ('" << state.root(instances[b]).var->name
                        << "') while tensor '"
                        << state.root(instances[a]).var->name
                        << "' is live until binding #" << live_until;
                }
            }
        }
    }
}

} // namespace

void
verifyAliasSafety(const IRModulePtr& module)
{
    for (const auto& [name, func] : module->functions()) {
        verifyFunction(name, func);
    }
}

// ---------------------------------------------------------------------------
// MemoryPlanReport
// ---------------------------------------------------------------------------

MemoryPlanReport
memoryPlanReport(const IRModulePtr& module)
{
    MemoryPlanReport report;
    auto attr_int = [](const Function& func, const char* name) {
        auto it = func->attrs.find(name);
        return it == func->attrs.end() ? (int64_t)0
                                       : (int64_t)std::stoll(it->second);
    };
    for (const auto& [name, func] : module->functions()) {
        report.storagesAllocated += attr_int(func, "planned.num_storages");
        report.bytesAllocated += attr_int(func, "planned.total_bytes");
        report.reuseHits += attr_int(func, "planned.reuse_hits");
        report.bytesReused += attr_int(func, "planned.bytes_reused");
        report.inplaceWrites += attr_int(func, "inplace.rewrites");
    }
    return report;
}

} // namespace passes
} // namespace relax
