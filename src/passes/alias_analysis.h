/**
 * @file
 * Alias/liveness analysis over Relax dataflow blocks, and the in-place
 * planning pass + safety lint built on it.
 *
 * The analysis is a single forward sweep in the SSA alias-analysis idiom:
 * every tensor var carries a *root set* — the set of storage roots
 * (parameters, constants, allocation sites, storage instantiations) its
 * value may occupy. Roots are seeded by `inplace_arg` DPS aliasing, by
 * tuple construction/projection, by rebinds and match_cast, and — after
 * memory planning — by `relax.memory.alloc_tensor(storage)` instantiation,
 * so the planner's storage-reuse decisions and the alias facts agree by
 * construction. Two vars may alias iff their root sets intersect.
 * Liveness is last-use over the linearized binding sequence (the SeqExpr
 * body counts as a final use).
 *
 * Consumers:
 *  - InplacePlanPass rewrites eligible call_tir / call_dps_library sites
 *    with `inplace_arg` when the candidate input is provably dead,
 *    shape/dtype-compatible with the output, and not may-aliased to any
 *    other live var (see inplace_plan.cc);
 *  - VerifyAliasSafety lints every pass boundary in debug builds;
 *  - StaticMemoryPlan consults lastLiveIndex() instead of a private scan.
 */
#ifndef RELAX_PASSES_ALIAS_ANALYSIS_H_
#define RELAX_PASSES_ALIAS_ANALYSIS_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/expr.h"
#include "ir/module.h"
#include "passes/pass.h"

namespace relax {
namespace passes {

/** One storage root: a distinct place a tensor value may live. */
struct AliasRoot
{
    enum class Kind : uint8_t {
        kParam,   //!< function parameter (weights, caches, inputs)
        kConst,   //!< embedded constant — never writable
        kFresh,   //!< allocation site (call output / builtin.alloc_tensor)
        kStorage, //!< a memory.alloc_storage chunk
    };

    Kind kind;
    /** Defining var (param var, binding var, or storage var). */
    const ir::VarNode* var = nullptr;
    /**
     * For kFresh roots created by `relax.memory.alloc_tensor(storage)`:
     * the root id of the backing storage. Two instantiations of one
     * storage get distinct kFresh roots (planned reuse is not aliasing —
     * their live ranges are disjoint by construction, which
     * VerifyAliasSafety checks), linked here for that check. -1 = none.
     */
    int storageRoot = -1;
    /** Binding index of the defining binding (params: 0). */
    size_t defIndex = 0;
};

/**
 * The forward transfer function of the analysis, usable incrementally:
 * feed params first, then each binding in order. InplacePlanPass drives
 * one AliasState by hand so rewrite decisions made at binding i are
 * reflected in the facts consulted at binding j > i.
 */
class AliasState
{
  public:
    /** Registers a function parameter as a root of its own. */
    void addParam(const ir::Var& param);

    /**
     * Applies one binding's transfer function. `binding_index` is the
     * position in the linearized sequence (used as root defIndex).
     */
    void bind(const ir::Binding& binding, size_t binding_index);

    /** Root ids of a var; empty for vars holding no tensor storage. */
    const std::vector<int>& rootsOf(const ir::VarNode* v) const;

    const AliasRoot& root(int id) const { return roots_[id]; }
    size_t numRoots() const { return roots_.size(); }

    /** True iff the two vars' root sets intersect. */
    bool mayAlias(const ir::VarNode* a, const ir::VarNode* b) const;

    /** All vars (defined so far) whose root set contains `root_id`. */
    const std::vector<const ir::VarNode*>& holdersOf(int root_id) const;

    /** Binding index defining `v` (params and unknown vars: 0). */
    size_t defIndexOf(const ir::VarNode* v) const;

  private:
    friend class AliasLivenessAnalysis;

    int newRoot(AliasRoot::Kind kind, const ir::VarNode* var,
                size_t def_index, int storage_root = -1);
    void assignRoots(const ir::VarNode* v, std::vector<int> roots);
    std::vector<int> rootsOfExpr(const ir::Expr& expr, size_t index);

    std::vector<AliasRoot> roots_;
    std::unordered_map<const ir::VarNode*, std::vector<int>> varRoots_;
    std::unordered_map<const ir::VarNode*, size_t> defIndex_;
    /** Per-var root sets of tuple fields, for precise TupleGetItem. */
    std::unordered_map<const ir::VarNode*, std::vector<std::vector<int>>>
        tupleFieldRoots_;
    std::vector<std::vector<const ir::VarNode*>> holders_;
};

/**
 * Whole-function analysis: linearizes the blocks of a SeqExpr-bodied
 * function, runs AliasState over every binding, and computes last-use
 * liveness. Index space: binding i is the i-th binding across all blocks
 * in order; the SeqExpr body (function result) uses vars at index
 * bodyIndex() == number of bindings.
 */
class AliasLivenessAnalysis
{
  public:
    explicit AliasLivenessAnalysis(const ir::Function& func);

    const std::vector<const ir::Binding*>& bindings() const
    {
        return bindings_;
    }
    size_t bodyIndex() const { return bindings_.size(); }

    const AliasState& state() const { return state_; }

    /**
     * Last index at which `v` itself appears in a binding value or the
     * body; kNeverUsed when it has no uses.
     */
    size_t lastDirectUse(const ir::VarNode* v) const;

    /**
     * Last index at which `v` appears in a binding value other than a
     * pure rebind `u = v` (rebinds forward liveness to `u`, whose own
     * uses are accounted separately); kNeverUsed when none.
     */
    size_t lastNonRebindUse(const ir::VarNode* v) const;

    /**
     * Last index at which the storage of `v` may still be read through
     * any alias: max lastDirectUse over every var sharing a root with
     * `v`. This is the liveness the memory planner consumes — it keeps a
     * storage alive while any in-place kernel output chained onto it is
     * still in use.
     */
    size_t lastLiveIndex(const ir::VarNode* v) const;

    /** Max lastDirectUse over all vars holding `root_id`. */
    size_t rootLastLive(int root_id) const;

    static constexpr size_t kNeverUsed = (size_t)-1;

  private:
    std::vector<const ir::Binding*> bindings_;
    AliasState state_;
    std::unordered_map<const ir::VarNode*, size_t> lastUse_;
    std::unordered_map<const ir::VarNode*, size_t> lastNonRebindUse_;
    std::vector<size_t> rootLastLive_;
};

/**
 * Resolves a call's in-place facts regardless of lowering stage:
 * call_tir / call_dps_library (inputs = args[1..n-num_sym_args]) and
 * relax.vm.kernel_call (inputs per the num_inputs attr). Returns the
 * aliased input var, or null when the call carries no inplace_arg.
 */
const ir::VarNode* inplaceTargetOf(const ir::Expr& value);

/**
 * The library in-place contract: which argument (if any) of a simulated
 * library kernel may be written through by its DPS output. Mirrors
 * vm/libraries.cc: kv.append_ragged scatters fresh tokens into its pool
 * argument and never reads slots it did not write.
 */
int libraryInplaceArg(const std::string& callee);

/**
 * Rewrites eligible call_tir / call_dps_library sites with `inplace_arg`
 * (see inplace_plan.cc for the eligibility proof obligations). Annotates
 * each function with "inplace.rewrites" (count) and "inplace.callees"
 * (';'-joined callee names of the rewritten sites).
 */
Pass inplacePlanPass();

/**
 * Lints the module against the aliasing contract (DESIGN.md §9): a var
 * whose storage was reused while live, an in-place write whose target is
 * read afterwards through a stale var, or two in-place writes racing on
 * one storage all raise IRError. Stage-tolerant: runs on any module from
 * frontend output to the fully planned form.
 */
void verifyAliasSafety(const ir::IRModulePtr& module);

/** True when pipelines should lint every pass boundary: debug builds by
 *  default; RELAX_VERIFY_ALIAS=1/0 overrides either way. */
bool aliasVerifierEnabled();

/** Aggregated memory-planning outcome across a planned module. */
struct MemoryPlanReport
{
    int64_t storagesAllocated = 0;
    int64_t bytesAllocated = 0; //!< sum of static storage upper bounds
    int64_t reuseHits = 0;      //!< allocations served by a free storage
    int64_t bytesReused = 0;    //!< bytes of those reuse hits
    int64_t inplaceWrites = 0;  //!< kernel calls writing through an input
};

/** Sums the per-function "planned.*" / "inplace.*" attrs the passes
 *  leave behind. Functions that were not planned contribute zero. */
MemoryPlanReport memoryPlanReport(const ir::IRModulePtr& module);

} // namespace passes
} // namespace relax

#endif // RELAX_PASSES_ALIAS_ANALYSIS_H_
