/**
 * @file
 * Partial library lowering (§4.6): a pattern-match-and-rewrite pass that
 * dispatches matched operator calls to the target platform's vendor
 * libraries via call_dps_library, leaving everything else for the tensor
 * program path. Runs first in the pipeline (Fig. 13), which is what lets
 * the compiler use generated matrix-vector kernels at batch size 1 while
 * dispatching heavy GEMMs to cuBLAS at larger batches (§5.1).
 */
#include "arith/analyzer.h"
#include "passes/passes.h"

namespace relax {
namespace passes {

using namespace ir;
using Var = ir::Var;
using VarNode = ir::VarNode;
using CallNode = ir::CallNode;

namespace {

/** Evaluates the "row count" (product of all but the last output dim)
 *  when it is a compile-time constant; nullopt when symbolic. */
std::optional<int64_t>
constRowCount(const StructInfo& out_sinfo)
{
    const auto* tensor = asTensor(out_sinfo);
    if (!tensor || !tensor->shape) return std::nullopt;
    PrimExpr rows = intImm(1);
    for (size_t d = 0; d + 1 < tensor->shape->size(); ++d) {
        rows = mul(rows, (*tensor->shape)[d]);
    }
    Analyzer analyzer;
    PrimExpr simplified = analyzer.simplify(rows);
    if (const int64_t* value = asIntImm(simplified)) return *value;
    return std::nullopt;
}

Expr
tryLowerToLibrary(const Expr& value, const TargetInfo& target)
{
    if (!value || value->kind() != RxKind::kCall) return value;
    const auto* call = static_cast<const CallNode*>(value.get());
    if (!call->op || call->op->kind() != RxKind::kOp) return value;
    const std::string& op_name =
        static_cast<const OpNode*>(call->op.get())->name;
    StructInfo out_sinfo = value->structInfo();

    if (op_name == "relax.matmul" && target.gemmLibrary) {
        // Heavy-load GEMMs go to the vendor library; skinny matrix-vector
        // products keep the generated kernel (§5.1). Symbolic row counts
        // (sequence length) default to the library.
        auto rows = constRowCount(out_sinfo);
        if (!rows || *rows >= target.libraryGemmMinRows) {
            Call lowered = callDPSLibrary(*target.gemmLibrary + ".matmul",
                                          call->args, out_sinfo);
            lowered->attrs = call->attrs;
            return lowered;
        }
        return value;
    }
    if (op_name == "relax.attention" && target.attentionLibrary) {
        Call lowered =
            callDPSLibrary(*target.attentionLibrary + ".attention",
                           call->args, out_sinfo);
        lowered->attrs = call->attrs;
        return lowered;
    }
    if (op_name == "relax.attention_ragged" && target.attentionLibrary) {
        // Page-pool ragged attention maps to the library's paged-KV
        // varlen entry point (FlashAttention's paged kernel): keys and
        // values gather from the persistent pool through the block
        // table, and its cost is priced per-sequence from the length
        // vector — never from the pool size.
        Call lowered =
            callDPSLibrary(*target.attentionLibrary + ".attention_ragged",
                           call->args, out_sinfo);
        lowered->attrs = call->attrs;
        return lowered;
    }
    if (op_name == "relax.rms_norm" && target.epilogueLibrary) {
        Call lowered = callDPSLibrary(*target.epilogueLibrary + ".rms_norm",
                                      call->args, out_sinfo);
        lowered->attrs = call->attrs;
        return lowered;
    }
    if (op_name == "relax.layer_norm" && target.epilogueLibrary) {
        Call lowered =
            callDPSLibrary(*target.epilogueLibrary + ".layer_norm",
                           call->args, out_sinfo);
        lowered->attrs = call->attrs;
        return lowered;
    }
    return value;
}

} // namespace

Pass
partialLibraryLoweringPass(const TargetInfo& target)
{
    return {"PartialLibraryLowering", [target](IRModulePtr module) {
                for (const auto& [name, func] : module->functions()) {
                    const auto* seq =
                        static_cast<const SeqExprNode*>(func->body.get());
                    for (const auto& block : seq->blocks) {
                        for (auto& binding : block->bindings) {
                            if (binding.isMatchCast) continue;
                            binding.value =
                                tryLowerToLibrary(binding.value, target);
                        }
                    }
                }
                return module;
            }};
}

} // namespace passes
} // namespace relax
