/**
 * @file
 * FuseTensorIR (Fig. 9, yellow stage): a cross-level transformation that
 * merges the tensor programs called inside each fused subgraph function
 * into a single kernel, rewrites the call site to a direct call_tir, and
 * removes the subgraph function. Symbolic shapes are preserved by
 * unifying each callee's buffer shapes against the graph-level
 * annotations and threading unbound symbolic variables through explicit
 * scalar parameters.
 */
#include "passes/passes.h"

#include <unordered_map>

#include "ir/utils.h"
#include "tir/transform.h"

namespace relax {
namespace passes {

using namespace ir;
using Var = ir::Var;
using VarNode = ir::VarNode;
using CallNode = ir::CallNode;

namespace {

struct MergedKernel
{
    tir::PrimFunc func;
    /** Graph-level tensor params of the subgraph fn, in kernel order. */
    std::vector<const VarNode*> tensorParams;
    /** Symbolic variables passed as trailing scalar args. */
    std::vector<::relax::Var> symVars;
};

std::vector<PrimExpr>
sinfoShape(const StructInfo& sinfo, const std::string& what)
{
    const auto* tensor = asTensor(sinfo);
    if (!tensor || !tensor->shape) {
        RELAX_THROW(IRError)
            << "FuseTensorIR: " << what << " lacks a symbolic shape";
    }
    return *tensor->shape;
}

/** Merges the call_tir bindings of one primitive subgraph function. */
std::optional<MergedKernel>
mergeSubgraph(const Function& subgraph, const std::string& name,
              const IRModulePtr& module)
{
    MergedKernel merged;
    // Split params into tensors and the optional trailing Shape param.
    std::vector<Var> tensor_params;
    for (const auto& param : subgraph->params) {
        if (asTensor(param->structInfo())) {
            tensor_params.push_back(param);
        } else if (const auto* shp = asShape(param->structInfo());
                   shp && shp->values) {
            for (const auto& dim : *shp->values) {
                RELAX_ICHECK(dim->kind() == ExprKind::kVar)
                    << "shape param dims must be bare vars";
                merged.symVars.push_back(
                    std::static_pointer_cast<const ::relax::VarNode>(dim));
            }
        } else {
            return std::nullopt; // unexpected param kind; leave unfused
        }
    }

    // Kernel buffers for the graph-level tensor params.
    std::unordered_map<const VarNode*, tir::Buffer> var_buffer;
    std::vector<tir::Buffer> param_buffers;
    for (const auto& param : tensor_params) {
        const auto* tensor = asTensor(param->structInfo());
        tir::Buffer buffer = tir::makeBuffer(
            param->name, tensor->dtype,
            sinfoShape(param->structInfo(), param->name));
        var_buffer[param.get()] = buffer;
        param_buffers.push_back(buffer);
        merged.tensorParams.push_back(param.get());
    }

    const auto* seq = static_cast<const SeqExprNode*>(subgraph->body.get());
    if (seq->body->kind() != RxKind::kVar) return std::nullopt;
    const auto* result_var = static_cast<const VarNode*>(seq->body.get());

    std::vector<tir::Stmt> bodies;
    std::vector<tir::Buffer> intermediates;
    tir::Buffer output_buffer;

    for (const auto& block : seq->blocks) {
        for (const auto& binding : block->bindings) {
            if (!isOpCall(binding.value, "relax.call_tir")) {
                return std::nullopt;
            }
            const auto* call =
                static_cast<const CallNode*>(binding.value.get());
            const auto* gv =
                static_cast<const GlobalVarNode*>(call->args[0].get());
            tir::PrimFunc callee = module->getTIRFunc(gv->name);
            RELAX_ICHECK(callee) << "missing tensor program " << gv->name;
            RELAX_ICHECK(callee->numOutputs == 1)
                << "fused callees must be single-output";

            // Unify callee buffer shapes against graph-level shapes to
            // recover the callee's symbolic vars in caller terms.
            VarMap callee_binding;
            size_t num_inputs = callee->params.size() - 1;
            size_t num_sym = 0;
            if (auto it = call->attrs.find("num_sym_args");
                it != call->attrs.end()) {
                num_sym = (size_t)std::get<int64_t>(it->second);
            }
            RELAX_ICHECK(call->args.size() - 1 - num_sym == num_inputs)
                << gv->name << ": arity mismatch in fusion";
            tir::BufferMap buffer_map;
            for (size_t i = 0; i < num_inputs; ++i) {
                const Expr& arg = call->args[i + 1];
                std::vector<PrimExpr> arg_shape =
                    sinfoShape(arg->structInfo(), "fusion argument");
                if (!tir::unifyShapes(callee->params[i]->shape, arg_shape,
                                      &callee_binding)) {
                    RELAX_THROW(ShapeError)
                        << "FuseTensorIR: cannot unify shapes of "
                        << gv->name << " parameter "
                        << callee->params[i]->name;
                }
                // Map the callee input buffer to the caller-side buffer.
                RELAX_ICHECK(arg->kind() == RxKind::kVar)
                    << "fusion arguments must be variables (constants are "
                    << "hoisted to parameters by FuseOps)";
                const auto* arg_var =
                    static_cast<const VarNode*>(arg.get());
                auto it = var_buffer.find(arg_var);
                RELAX_ICHECK(it != var_buffer.end())
                    << "unbound fusion input " << arg_var->name;
                buffer_map[callee->params[i].get()] = it->second;
            }
            // Output buffer: final output param or a new intermediate.
            const tir::Buffer& callee_out = callee->params.back();
            std::vector<PrimExpr> out_shape =
                sinfoShape(binding.var->structInfo(), binding.var->name);
            if (!tir::unifyShapes(callee_out->shape, out_shape,
                                  &callee_binding)) {
                RELAX_THROW(ShapeError)
                    << "FuseTensorIR: cannot unify output shape of "
                    << gv->name;
            }
            const auto* out_tensor = asTensor(binding.var->structInfo());
            tir::Buffer out_buffer = tir::makeBuffer(
                binding.var->name, out_tensor->dtype, out_shape);
            var_buffer[binding.var.get()] = out_buffer;
            buffer_map[callee_out.get()] = out_buffer;
            if (binding.var.get() == result_var) {
                output_buffer = out_buffer;
            } else {
                intermediates.push_back(out_buffer);
            }
            bodies.push_back(tir::substituteStmt(callee->body,
                                                 callee_binding,
                                                 buffer_map));
        }
    }
    if (!output_buffer) return std::nullopt;

    tir::Stmt body = tir::makeSeq(std::move(bodies));
    for (const auto& buffer : intermediates) {
        body = tir::makeAllocBuffer(buffer, "local", std::move(body));
    }
    param_buffers.push_back(output_buffer);
    merged.func = tir::makePrimFunc(name, std::move(param_buffers), body,
                                    merged.symVars);
    return merged;
}

/** Rewrites calls to a fused subgraph fn into direct call_tir. */
Expr
rewriteCallSite(const Expr& value, const std::string& subgraph_name,
                const MergedKernel& merged, const IRModulePtr& module)
{
    if (!value || value->kind() != RxKind::kCall) return value;
    const auto* call = static_cast<const CallNode*>(value.get());
    if (!call->op || call->op->kind() != RxKind::kGlobalVar) return value;
    const auto* gv = static_cast<const GlobalVarNode*>(call->op.get());
    if (gv->name != subgraph_name) return value;

    std::vector<Expr> tensor_args;
    std::vector<Expr> sym_args;
    for (const auto& arg : call->args) {
        if (arg->kind() == RxKind::kShapeExpr) {
            for (const auto& dim :
                 static_cast<const ShapeExprNode*>(arg.get())->values) {
                sym_args.push_back(makePrimValue(dim));
            }
        } else {
            tensor_args.push_back(arg);
        }
    }
    Call lowered = callTIR(module->getGlobalVar(merged.func->name),
                           tensor_args, value->structInfo(), sym_args);
    return lowered;
}

} // namespace

Pass
fuseTensorIRPass()
{
    return {"FuseTensorIR", [](IRModulePtr module) {
                // Merge each primitive subgraph function.
                std::vector<std::pair<std::string, MergedKernel>> merged;
                for (const auto& [name, func] : module->functions()) {
                    if (!func->attrs.count("primitive")) continue;
                    auto kernel = mergeSubgraph(func, name, module);
                    if (kernel) merged.emplace_back(name, std::move(*kernel));
                }
                for (auto& [name, kernel] : merged) {
                    module->removeFunction(name);
                    module->addTIRFunc(kernel.func);
                }
                // Rewrite every call site.
                for (const auto& [fname, func] : module->functions()) {
                    const auto* seq =
                        static_cast<const SeqExprNode*>(func->body.get());
                    for (const auto& block : seq->blocks) {
                        for (auto& binding : block->bindings) {
                            for (const auto& [name, kernel] : merged) {
                                binding.value = rewriteCallSite(
                                    binding.value, name, kernel, module);
                            }
                        }
                    }
                }
                return module;
            }};
}

} // namespace passes
} // namespace relax
