/**
 * @file
 * The framework trait tables: each constructor (hfTransformers,
 * hfTorchCompile, vllm, llamaCpp, and the Whisper family) fills a
 * traits record — dispatch overhead, fusion capability, library usage,
 * attention implementation, KV-cache policy — from that framework's
 * documented architecture (docs/DESIGN.md §1).
 */
#include "baselines/baselines.h"

#include <algorithm>
#include <cmath>

namespace relax {
namespace baselines {

FrameworkTraits
hfTransformers()
{
    FrameworkTraits traits;
    traits.name = "HF Transformers";
    traits.perOpOverheadUs = 8.0; // python dispatch per aten op
    traits.fixedStepOverheadUs = 150.0;
    traits.fusesElementwise = false;
    traits.usesGemmLibrary = true; // torch -> cuBLAS/rocBLAS/MPS
    traits.fusedAttention = true;  // sdpa/FlashAttention when available
    traits.kvPolicy = KvPolicy::kReallocate;
    return traits;
}

FrameworkTraits
hfTorchCompile()
{
    FrameworkTraits traits;
    traits.name = "HF w/ torch.compile";
    traits.perOpOverheadUs = 2.0; // compiled CUDA graphs amortize dispatch
    traits.fixedStepOverheadUs = 80.0;
    traits.fusesElementwise = true;
    traits.usesGemmLibrary = true;
    traits.fusedAttention = true;
    traits.kvPolicy = KvPolicy::kStaticMax; // static KV cache requirement
    traits.supportsMetal = false;           // no Apple GPU support (§5.1)
    return traits;
}

FrameworkTraits
vllm()
{
    FrameworkTraits traits;
    traits.name = "vLLM";
    traits.perOpOverheadUs = 2.5;
    traits.fixedStepOverheadUs = 60.0; // scheduler/continuous batching
    traits.fusesElementwise = true;
    traits.usesGemmLibrary = true;
    traits.fusedAttention = true; // paged attention
    traits.kvPolicy = KvPolicy::kInPlace;
    traits.supportsMetal = false;
    return traits;
}

FrameworkTraits
llamaCpp()
{
    FrameworkTraits traits;
    traits.name = "llama.cpp";
    traits.perOpOverheadUs = 1.0;
    traits.fixedStepOverheadUs = 30.0;
    traits.fusesElementwise = true;
    traits.usesGemmLibrary = false; // hand-written kernels
    traits.fusedAttention = true;
    traits.kvPolicy = KvPolicy::kInPlace;
    // Hand-optimized Metal kernels are excellent; CUDA kernels are good
    // but below cuBLAS on large GEMMs (§5.1 observations).
    traits.gemvEfficiencyOverride = 0.80;
    traits.gemmEfficiencyOverride = 0.55;
    return traits;
}

bool
supportsBackend(const FrameworkTraits& traits,
                const device::DeviceSpec& spec)
{
    if (spec.backend == "cuda") return traits.supportsCuda;
    if (spec.backend == "rocm") return traits.supportsRocm;
    if (spec.backend == "metal") return traits.supportsMetal;
    // Mobile/web backends are handled per-benchmark (most frameworks do
    // not run there at all).
    return true;
}

namespace {

/** Roofline latency of one kernel class. */
double
classUs(double flops, double bytes, double efficiency,
        const device::DeviceSpec& spec)
{
    double compute = flops / (spec.fp16Tflops * 1e6) / efficiency;
    double memory = bytes / (spec.memBandwidthGBs * 1e3) / efficiency;
    return std::max(compute, memory);
}

double
bytesPerElement(const frontend::LlamaConfig& model)
{
    switch (model.quant) {
      case frontend::Quant::kF16: return 2.0;
      case frontend::Quant::kQ4: return 0.5625; // nibbles + group scales
      case frontend::Quant::kQ3: return 0.4375;
    }
    return 2.0;
}

} // namespace

double
decodeStepUs(const DecodeWorkload& workload, const device::DeviceSpec& spec,
             const FrameworkTraits& traits)
{
    const frontend::LlamaConfig& model = workload.model;
    device::DeviceSpec dev = spec;
    if (traits.cpuFallback) {
        // llama.cpp without GPU kernels for this platform: big-core CPU.
        dev.memBandwidthGBs = std::min(spec.memBandwidthGBs, 25.0);
        dev.fp16Tflops = 0.15;
        dev.kernelLaunchUs = 0.2;
    }
    double B = (double)workload.batch;
    double m = (double)workload.contextLen;
    double h = (double)model.hiddenSize;
    double proj = (double)(model.numHeads * model.headDim);
    double f = (double)model.ffnSize;
    double L = (double)model.numLayers;
    double v = (double)model.vocabSize;
    double wbytes = bytesPerElement(model);

    // --- GEMM class: weights dominate memory traffic at decode -------------
    double gemm_params = L * (4.0 * h * proj + 3.0 * h * f) + v * h;
    double gemm_flops = 2.0 * gemm_params * B;
    double gemm_bytes = gemm_params * wbytes + // weights read once
                        B * L * 10.0 * h * 2.0; // activations in/out
    double gemv_eff = traits.gemvEfficiencyOverride > 0
                          ? traits.gemvEfficiencyOverride
                          : dev.genGemvEfficiency;
    double gemm_eff;
    if (traits.usesGemmLibrary && dev.hasGemmLibrary) {
        // Libraries excel at large GEMMs; for matrix-vector (batch 1) the
        // library path leaves bandwidth on the table vs tuned gemv.
        gemm_eff = B >= 2 ? dev.libGemmEfficiency
                          : 0.8 * dev.libGemmEfficiency;
    } else if (traits.gemmEfficiencyOverride > 0) {
        gemm_eff = B >= 2 ? traits.gemmEfficiencyOverride : gemv_eff;
    } else {
        gemm_eff = B >= 2 ? dev.genGemmEfficiency : gemv_eff;
    }
    double gemm_us = classUs(gemm_flops, gemm_bytes, gemm_eff, dev);

    // --- attention class -----------------------------------------------------
    // Static caches are sized to the configured generation budget (the
    // HF llm_optims recipe), not the model's absolute maximum.
    double static_budget = std::min<double>((double)model.maxContext, 1024.0);
    double attn_ctx = traits.kvPolicy == KvPolicy::kStaticMax
                          ? static_budget
                          : m;
    double kv_bytes = 2.0 * B * L * proj * attn_ctx * 2.0; // k+v reads, f16
    double attn_flops = 4.0 * B * L * proj * attn_ctx;
    if (!traits.fusedAttention) {
        // Materialized scores: written and re-read in fp32.
        kv_bytes += 2.0 * B * L * (double)model.numHeads * attn_ctx * 4.0;
    }
    double attn_us = classUs(attn_flops, kv_bytes,
                             dev.libAttentionEfficiency, dev);

    // --- KV update -----------------------------------------------------------
    double kv_update_bytes = 2.0 * B * L * proj * 2.0; // append one position
    if (traits.kvPolicy == KvPolicy::kReallocate) {
        // torch.cat copies the existing cache every step.
        kv_update_bytes += 2.0 * 2.0 * B * L * proj * m * 2.0;
    }
    double kv_us = classUs(0.0, kv_update_bytes,
                           dev.genElemwiseEfficiency, dev);

    // --- elementwise class (norms, activations, residuals) ------------------
    double ew_passes = traits.fusesElementwise ? 6.0 : 22.0;
    double ew_bytes = ew_passes * B * L * h * 2.0;
    double ew_us = classUs(0.0, ew_bytes, dev.genElemwiseEfficiency, dev);

    // --- kernel launches and host overhead ----------------------------------
    double per_layer_kernels =
        (traits.fusesElementwise ? 2.0 : 12.0) + // norms/resid/act
        7.0 +                                    // qkv, o, ffn x3
        (traits.fusedAttention ? 1.0 : 5.0) +    // attention
        2.0;                                     // kv update
    double kernels = L * per_layer_kernels + 3.0;
    double launch_us = kernels * dev.kernelLaunchUs;
    double host_us = kernels * traits.perOpOverheadUs +
                     traits.fixedStepOverheadUs;

    return gemm_us + attn_us + kv_us + ew_us + launch_us + host_us;
}

double
prefillUs(const frontend::LlamaConfig& model, int64_t batch, int64_t tokens,
          const device::DeviceSpec& spec, const FrameworkTraits& traits)
{
    // Prefill is compute-bound: model it as a large-batch decode step with
    // B*n rows plus the quadratic attention term.
    DecodeWorkload workload;
    workload.model = model;
    workload.batch = batch * tokens;
    workload.contextLen = 1;
    double base = decodeStepUs(workload, spec, traits);
    double proj = (double)(model.numHeads * model.headDim);
    double attn_flops = 2.0 * (double)batch * (double)model.numLayers *
                        proj * (double)tokens * (double)tokens;
    device::DeviceSpec dev = spec;
    double attn_us =
        attn_flops / (dev.fp16Tflops * 1e6) / dev.libAttentionEfficiency;
    return base + attn_us;
}

} // namespace baselines
} // namespace relax
