/**
 * @file
 * Analytic models of the comparison frameworks in §5: HuggingFace
 * Transformers (eager and torch.compile), vLLM, llama.cpp, and the
 * Whisper family. Each framework is characterized by its documented
 * architectural traits — per-op dispatch overhead, elementwise fusion,
 * library usage, attention implementation, and KV-cache policy — applied
 * to the same roofline device model the Relax VM runs on. The paper's
 * baseline gaps reduce to exactly these traits (see docs/DESIGN.md §1).
 */
#ifndef RELAX_BASELINES_BASELINES_H_
#define RELAX_BASELINES_BASELINES_H_

#include <optional>
#include <string>

#include "device/device.h"
#include "frontend/llama.h"

namespace relax {
namespace baselines {

/** How a framework's KV cache behaves during decode. */
enum class KvPolicy {
    kReallocate, //!< torch.cat per step: copies the whole cache (HF eager)
    kStaticMax,  //!< static cache padded to max length (torch.compile)
    kInPlace     //!< paged / in-place append (vLLM, llama.cpp)
};

/** Architectural traits of one framework. */
struct FrameworkTraits
{
    std::string name;
    double perOpOverheadUs = 0.0; //!< host dispatch cost per kernel
    double fixedStepOverheadUs = 0.0; //!< per-token overhead (sampling, glue)
    bool fusesElementwise = false;
    bool usesGemmLibrary = true;
    bool fusedAttention = false; //!< FlashAttention / paged attention
    KvPolicy kvPolicy = KvPolicy::kReallocate;
    /** Hand-written kernel efficiency overrides (<0 keeps device default). */
    double gemvEfficiencyOverride = -1.0;
    double gemmEfficiencyOverride = -1.0;
    /** Framework runs on CPU on this platform (llama.cpp on Android GPUs). */
    bool cpuFallback = false;
    /** Whether the framework supports the given backend at all. */
    bool supportsCuda = true, supportsRocm = true, supportsMetal = true;
};

FrameworkTraits hfTransformers();
FrameworkTraits hfTorchCompile();
FrameworkTraits vllm();
FrameworkTraits llamaCpp();

/** One decode step workload. */
struct DecodeWorkload
{
    frontend::LlamaConfig model;
    int64_t batch = 1;
    int64_t contextLen = 128; //!< KV length at this step
};

/** Latency of one decode step (all sequences), microseconds. */
double decodeStepUs(const DecodeWorkload& workload,
                    const device::DeviceSpec& spec,
                    const FrameworkTraits& traits);

/** Latency of a prefill over n tokens, microseconds. */
double prefillUs(const frontend::LlamaConfig& model, int64_t batch,
                 int64_t tokens, const device::DeviceSpec& spec,
                 const FrameworkTraits& traits);

/** True when the framework supports this device's backend. */
bool supportsBackend(const FrameworkTraits& traits,
                     const device::DeviceSpec& spec);

} // namespace baselines
} // namespace relax

#endif // RELAX_BASELINES_BASELINES_H_
