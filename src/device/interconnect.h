/**
 * @file
 * Interconnect model for multi-device (tensor-parallel) simulation: an
 * `InterconnectSpec` prices collectives from link bandwidth and per-hop
 * latency using the standard ring-algorithm cost model, and a
 * `DeviceGroup` owns N `SimDevice`s that advance together on one virtual
 * clock — a collective is a synchronization point (every clock jumps to
 * the slowest participant) plus the priced transfer time on every
 * member.
 *
 * Ring all-reduce moves 2·(N−1)/N of the payload over the slowest link
 * (reduce-scatter then all-gather, N−1 steps each), so:
 *
 *   allReduceUs(N, bytes) = 2·(N−1)/N · bytes / bw + hops·latency,
 *   hops = 2·(N−1)
 *
 * and ring all-gather is the second half alone. See docs/DESIGN.md §10
 * (the sharding contract) for how the serving stack places collectives.
 */
#ifndef RELAX_DEVICE_INTERCONNECT_H_
#define RELAX_DEVICE_INTERCONNECT_H_

#include <memory>
#include <string>
#include <vector>

#include "device/device.h"

namespace relax {
namespace device {

/** Static description of the link joining the devices of a group. */
struct InterconnectSpec
{
    std::string name = "nvlink";
    /** Per-direction link bandwidth, GB/s (NVLink 4.0 lane ~ 300). */
    double linkBandwidthGBs = 300.0;
    /** Per-hop latency, microseconds. */
    double linkLatencyUs = 1.0;

    /** Ring all-reduce latency for `bytes` of payload across `n` peers. */
    double
    allReduceUs(int n, double bytes) const
    {
        if (n <= 1) return 0.0;
        double transfer = 2.0 * (double)(n - 1) / (double)n * bytes /
                          (linkBandwidthGBs * 1e3);
        double hops = 2.0 * (double)(n - 1);
        return transfer + hops * linkLatencyUs;
    }

    /**
     * Ring all-gather latency: `bytes` is the FULL gathered payload
     * (each peer contributes bytes/n), moved over n−1 hops.
     */
    double
    allGatherUs(int n, double bytes) const
    {
        if (n <= 1) return 0.0;
        double transfer = (double)(n - 1) / (double)n * bytes /
                          (linkBandwidthGBs * 1e3);
        return transfer + (double)(n - 1) * linkLatencyUs;
    }
};

/** NVLink-class interconnect (intra-node GPU pod). */
InterconnectSpec nvlink();
/** PCIe 4.0 x16-class interconnect (commodity multi-GPU box). */
InterconnectSpec pcieGen4();
/** Looks up an interconnect spec by name; throws on unknown names. */
InterconnectSpec interconnectByName(const std::string& name);

/**
 * N simulated devices of one spec joined by an interconnect, advancing
 * on one logical clock. Device i stamps trace events on pid i: every
 * member shares device 0's TraceRecorder (SimDevice::shareTrace), so a
 * single export carries all lanes.
 *
 * Collectives are the only cross-device edges: `allReduce`/`allGather`
 * first synchronize every clock to the slowest member (a collective is a
 * barrier), then advance all clocks by the priced transfer time. With
 * identical per-shard work the sync is a no-op and the collective time
 * is pure interconnect cost — the clock-merge rule of DESIGN.md §10:
 * step time = max(shard finish) + collective time.
 */
class DeviceGroup
{
  public:
    DeviceGroup(const DeviceSpec& spec, int count,
                InterconnectSpec link = nvlink())
        : link_(link)
    {
        RELAX_ICHECK(count >= 1) << "device group needs >= 1 device";
        devices_.reserve((size_t)count);
        for (int i = 0; i < count; ++i) {
            devices_.push_back(std::make_shared<SimDevice>(spec));
            if (i > 0) devices_[i]->shareTrace(devices_[0]->trace(), i);
        }
    }

    int size() const { return (int)devices_.size(); }
    const InterconnectSpec& link() const { return link_; }

    SimDevice& device(int i) { return *devices_.at((size_t)i); }
    const SimDevice& device(int i) const { return *devices_.at((size_t)i); }
    /** Shared ownership handle (VirtualMachine holds its device this way). */
    const std::shared_ptr<SimDevice>&
    devicePtr(int i) const
    {
        return devices_.at((size_t)i);
    }

    /** The group clock: the slowest member's virtual time. */
    double
    clockUs() const
    {
        double t = 0.0;
        for (const auto& dev : devices_) t = std::max(t, dev->clockUs());
        return t;
    }

    /**
     * Barrier: jumps every member's clock to the slowest one. Returns
     * the merged clock value.
     */
    double
    syncClocks()
    {
        double t = clockUs();
        for (auto& dev : devices_) dev->hostOverhead(t - dev->clockUs());
        return t;
    }

    /** Priced ring all-reduce over `bytes`; returns its latency. */
    double
    allReduce(double bytes)
    {
        return collective("ccl.all_reduce",
                          link_.allReduceUs(size(), bytes), bytes);
    }

    /** Priced ring all-gather of a full `bytes` payload. */
    double
    allGather(double bytes)
    {
        return collective("ccl.all_gather",
                          link_.allGatherUs(size(), bytes), bytes);
    }

    // --- statistics --------------------------------------------------------

    int64_t collectiveCount() const { return collectiveCount_; }
    double collectiveUs() const { return collectiveUs_; }
    double collectiveBytes() const { return collectiveBytes_; }

  private:
    double
    collective(const char* name, double latency, double bytes)
    {
        double start = syncClocks();
        for (size_t i = 0; i < devices_.size(); ++i) {
            SimDevice& dev = *devices_[i];
            dev.hostOverhead(latency);
            if (dev.trace().enabled()) {
                dev.trace().span((int)i, trace_lanes::kKernels, name,
                                 "collective", start, latency,
                                 {{"bytes", bytes},
                                  {"peers", (int64_t)devices_.size()}});
            }
        }
        ++collectiveCount_;
        collectiveUs_ += latency;
        collectiveBytes_ += bytes;
        return latency;
    }

    std::vector<std::shared_ptr<SimDevice>> devices_;
    InterconnectSpec link_;
    int64_t collectiveCount_ = 0;
    double collectiveUs_ = 0.0;
    double collectiveBytes_ = 0.0;
};

} // namespace device
} // namespace relax

#endif // RELAX_DEVICE_INTERCONNECT_H_
