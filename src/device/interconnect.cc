/**
 * @file
 * The interconnect catalog: named link presets for multi-device groups,
 * same registry idiom as the device catalog (one data row per preset,
 * `interconnectByName` and the named factories read the same table).
 */
#include "device/interconnect.h"

#include <array>

namespace relax {
namespace device {

namespace {

struct LinkRow
{
    const char* key;
    double bandwidthGBs;
    double latencyUs;
};

// clang-format off
constexpr std::array<LinkRow, 2> kLinks = {{
    // key         bw GB/s  hop us
    {"nvlink",      300.0,   1.0}, // NVLink 4.0-class intra-node pod
    {"pcie_gen4",    24.0,   2.5}, // PCIe 4.0 x16 effective p2p
}};
// clang-format on

InterconnectSpec
fromRow(const LinkRow& row)
{
    InterconnectSpec spec;
    spec.name = row.key;
    spec.linkBandwidthGBs = row.bandwidthGBs;
    spec.linkLatencyUs = row.latencyUs;
    return spec;
}

} // namespace

InterconnectSpec
interconnectByName(const std::string& name)
{
    for (const LinkRow& row : kLinks) {
        if (name == row.key) return fromRow(row);
    }
    std::string known;
    for (const LinkRow& row : kLinks) {
        known += known.empty() ? "" : ", ";
        known += row.key;
    }
    RELAX_THROW(RuntimeError) << "unknown interconnect: " << name
                              << " (known interconnects: " << known << ")";
}

InterconnectSpec nvlink() { return interconnectByName("nvlink"); }
InterconnectSpec pcieGen4() { return interconnectByName("pcie_gen4"); }

} // namespace device
} // namespace relax
