/**
 * @file
 * The device catalog: one constructor per evaluation platform
 * (rtx4090 ... steamDeck) with roofline parameters — bandwidth,
 * throughput, launch overhead, library availability, efficiency
 * factors — calibrated to public spec sheets. The virtual-clock cost
 * model itself lives in device.h.
 */
#include "device/device.h"

namespace relax {
namespace device {

// Parameters are calibrated to public spec sheets; efficiencies are chosen
// so headline single-device numbers land in the bands the paper reports
// (EXPERIMENTS.md records paper-vs-measured for each).

DeviceSpec
rtx4090()
{
    DeviceSpec spec;
    spec.name = "NVIDIA RTX 4090";
    spec.backend = "cuda";
    spec.memBandwidthGBs = 1008.0;
    spec.fp16Tflops = 165.0;
    spec.fp32Tflops = 82.6;
    spec.kernelLaunchUs = 3.0;
    spec.graphReplayUs = 0.4;
    spec.vramBytes = int64_t(24) << 30;
    spec.hasGemmLibrary = true;
    spec.hasAttentionLibrary = true;
    spec.hasEpilogueLibrary = true;
    spec.supportsExecutionGraphs = true;
    spec.libGemmEfficiency = 0.88;
    spec.genGemmEfficiency = 0.55;
    spec.genGemvEfficiency = 0.88;
    return spec;
}

DeviceSpec
radeon7900xtx()
{
    DeviceSpec spec;
    spec.name = "AMD Radeon 7900 XTX";
    spec.backend = "rocm";
    spec.memBandwidthGBs = 960.0;
    spec.fp16Tflops = 122.8;
    spec.fp32Tflops = 61.4;
    spec.kernelLaunchUs = 5.0;
    spec.vramBytes = int64_t(24) << 30;
    spec.hasGemmLibrary = true;       // rocBLAS
    spec.hasAttentionLibrary = false; // no FlashAttention on ROCm then
    spec.hasEpilogueLibrary = false;
    spec.supportsExecutionGraphs = false;
    spec.libGemmEfficiency = 0.70; // rocBLAS less tuned than cuBLAS
    spec.genGemmEfficiency = 0.45;
    spec.genGemvEfficiency = 0.82;
    return spec;
}

DeviceSpec
appleM2Ultra()
{
    DeviceSpec spec;
    spec.name = "Apple M2 Ultra";
    spec.backend = "metal";
    spec.memBandwidthGBs = 800.0;
    spec.fp16Tflops = 27.2;
    spec.fp32Tflops = 27.2;
    spec.kernelLaunchUs = 8.0;
    spec.vramBytes = int64_t(96) << 30; // unified memory budget
    spec.hasGemmLibrary = true; // MPS
    spec.hasAttentionLibrary = false;
    spec.hasEpilogueLibrary = false;
    spec.supportsExecutionGraphs = false;
    spec.libGemmEfficiency = 0.72;
    spec.genGemmEfficiency = 0.45;
    spec.genGemvEfficiency = 0.80;
    return spec;
}

DeviceSpec
iphone14Pro()
{
    DeviceSpec spec;
    spec.name = "iPhone 14 Pro";
    spec.backend = "metal";
    spec.memBandwidthGBs = 34.0; // LPDDR5, thermally constrained
    spec.fp16Tflops = 2.0;
    spec.fp32Tflops = 1.0;
    spec.kernelLaunchUs = 20.0;
    spec.vramBytes = int64_t(3800) << 20; // usable app memory
    spec.genGemvEfficiency = 0.62;
    spec.genGemmEfficiency = 0.35;
    spec.genElemwiseEfficiency = 0.6;
    return spec;
}

DeviceSpec
samsungS23()
{
    DeviceSpec spec;
    spec.name = "Samsung S23";
    spec.backend = "opencl";
    spec.memBandwidthGBs = 67.0; // LPDDR5X
    spec.fp16Tflops = 3.4;       // Adreno 740
    spec.fp32Tflops = 1.7;
    spec.kernelLaunchUs = 30.0;
    spec.vramBytes = int64_t(6) << 30;
    spec.genGemvEfficiency = 0.50;
    spec.genGemmEfficiency = 0.30;
    spec.genElemwiseEfficiency = 0.55;
    return spec;
}

DeviceSpec
samsungS24()
{
    DeviceSpec spec = samsungS23();
    spec.name = "Samsung S24";
    spec.memBandwidthGBs = 77.0; // LPDDR5X-4800
    spec.fp16Tflops = 4.6;       // Adreno 750
    spec.fp32Tflops = 2.3;
    spec.kernelLaunchUs = 25.0;
    spec.vramBytes = int64_t(8) << 30;
    spec.genGemvEfficiency = 0.55;
    return spec;
}

DeviceSpec
orangePi5()
{
    DeviceSpec spec;
    spec.name = "Orange Pi 5";
    spec.backend = "opencl";
    spec.memBandwidthGBs = 17.0; // LPDDR4X shared
    spec.fp16Tflops = 0.5;       // Mali-G610 MP4
    spec.fp32Tflops = 0.25;
    spec.kernelLaunchUs = 60.0;
    spec.vramBytes = int64_t(7) << 30;
    spec.genGemvEfficiency = 0.55;
    spec.genGemmEfficiency = 0.25;
    spec.genElemwiseEfficiency = 0.5;
    return spec;
}

DeviceSpec
steamDeck()
{
    DeviceSpec spec;
    spec.name = "Steam Deck";
    spec.backend = "vulkan";
    spec.memBandwidthGBs = 88.0; // LPDDR5 quad-channel
    spec.fp16Tflops = 3.2;       // RDNA2 8 CU
    spec.fp32Tflops = 1.6;
    spec.kernelLaunchUs = 12.0;
    spec.vramBytes = int64_t(12) << 30;
    spec.genGemvEfficiency = 0.72;
    spec.genGemmEfficiency = 0.40;
    return spec;
}

DeviceSpec
jetsonOrin()
{
    DeviceSpec spec;
    spec.name = "Jetson Orin";
    spec.backend = "cuda";
    spec.memBandwidthGBs = 204.8;
    spec.fp16Tflops = 21.0; // Ampere 2048-core dev kit
    spec.fp32Tflops = 10.5;
    spec.kernelLaunchUs = 6.0;
    spec.graphReplayUs = 0.8;
    spec.vramBytes = int64_t(32) << 30;
    spec.hasGemmLibrary = true;
    spec.hasAttentionLibrary = true;
    spec.supportsExecutionGraphs = true;
    spec.libGemmEfficiency = 0.80;
    spec.genGemvEfficiency = 0.80;
    spec.genGemmEfficiency = 0.45;
    return spec;
}

DeviceSpec
webgpuM3Max()
{
    DeviceSpec spec;
    spec.name = "WebGPU (M3 Max)";
    spec.backend = "webgpu";
    spec.memBandwidthGBs = 300.0; // 400 GB/s part, browser overhead
    spec.fp16Tflops = 28.0;
    spec.fp32Tflops = 14.0;
    spec.kernelLaunchUs = 15.0; // browser dispatch
    spec.vramBytes = int64_t(24) << 30;
    spec.genGemvEfficiency = 0.62;
    spec.genGemmEfficiency = 0.35;
    return spec;
}

DeviceSpec
deviceByName(const std::string& name)
{
    static const std::map<std::string, DeviceSpec (*)()> catalog = {
        {"rtx4090", rtx4090},
        {"radeon7900xtx", radeon7900xtx},
        {"m2ultra", appleM2Ultra},
        {"iphone14pro", iphone14Pro},
        {"s23", samsungS23},
        {"s24", samsungS24},
        {"orangepi5", orangePi5},
        {"steamdeck", steamDeck},
        {"jetsonorin", jetsonOrin},
        {"webgpu_m3max", webgpuM3Max},
    };
    auto it = catalog.find(name);
    if (it == catalog.end()) {
        RELAX_THROW(RuntimeError) << "unknown device: " << name;
    }
    return it->second();
}

} // namespace device
} // namespace relax
