/**
 * @file
 * The device catalog as one data-driven registry table: each evaluation
 * platform (rtx4090 ... webgpu_m3max) is a row of roofline parameters —
 * bandwidth, throughput, launch overhead, library availability,
 * efficiency factors — calibrated to public spec sheets. The named
 * factory functions and `deviceByName` both read the same table, so a
 * preset exists in exactly one place. The virtual-clock cost model
 * itself lives in device.h.
 */
#include "device/device.h"

#include <array>

namespace relax {
namespace device {

namespace {

// Library-availability bitmask (the `libs` column below).
constexpr unsigned kGemm = 1u;      //!< cuBLAS / rocBLAS / MPS
constexpr unsigned kAttention = 2u; //!< FlashAttention
constexpr unsigned kEpilogue = 4u;  //!< CUTLASS-style fused norms
constexpr unsigned kGraphs = 8u;    //!< CUDA Graph equivalent

/**
 * One catalog row. Columns mirror DeviceSpec; fields the catalog never
 * varies (graphCaptureUs, libAttentionEfficiency) keep their DeviceSpec
 * defaults in fromRow().
 */
struct PresetRow
{
    const char* key;     //!< deviceByName lookup key
    const char* name;    //!< marketing name reported in benches
    const char* backend; //!< cuda / rocm / metal / opencl / vulkan / webgpu
    double bwGBs;        //!< memory bandwidth
    double fp16Tflops;
    double fp32Tflops;
    double launchUs;   //!< kernel launch overhead
    double replayUs;   //!< per-kernel cost inside graph replay
    int64_t vramMB;    //!< device memory budget, MiB
    unsigned libs;     //!< kGemm|kAttention|kEpilogue|kGraphs
    double libGemmEff; //!< vendor GEMM efficiency
    double genGemmEff; //!< generated GEMM
    double genGemvEff; //!< generated matrix-vector (bs=1)
    double genElemEff; //!< generated elementwise
};

// Parameters are calibrated to public spec sheets; efficiencies are
// chosen so headline single-device numbers land in the bands the paper
// reports (EXPERIMENTS.md records paper-vs-measured for each).
// clang-format off
constexpr std::array<PresetRow, 10> kCatalog = {{
    //  key              name                  backend    bw      fp16   fp32   lau   rep  vramMB  libs                             libG  genG  genV  elem
    {"rtx4090",       "NVIDIA RTX 4090",      "cuda",   1008.0, 165.0, 82.6,  3.0, 0.4, 24576, kGemm|kAttention|kEpilogue|kGraphs, 0.88, 0.55, 0.88, 0.80},
    {"radeon7900xtx", "AMD Radeon 7900 XTX",  "rocm",    960.0, 122.8, 61.4,  5.0, 0.5, 24576, kGemm,                              0.70, 0.45, 0.82, 0.80},
    {"m2ultra",       "Apple M2 Ultra",       "metal",   800.0,  27.2, 27.2,  8.0, 0.5, 98304, kGemm,                              0.72, 0.45, 0.80, 0.80},
    {"iphone14pro",   "iPhone 14 Pro",        "metal",    34.0,   2.0,  1.0, 20.0, 0.5,  3800, 0,                                  0.85, 0.35, 0.62, 0.60},
    {"s23",           "Samsung S23",          "opencl",   67.0,   3.4,  1.7, 30.0, 0.5,  6144, 0,                                  0.85, 0.30, 0.50, 0.55},
    {"s24",           "Samsung S24",          "opencl",   77.0,   4.6,  2.3, 25.0, 0.5,  8192, 0,                                  0.85, 0.30, 0.55, 0.55},
    {"orangepi5",     "Orange Pi 5",          "opencl",   17.0,   0.5, 0.25, 60.0, 0.5,  7168, 0,                                  0.85, 0.25, 0.55, 0.50},
    {"steamdeck",     "Steam Deck",           "vulkan",   88.0,   3.2,  1.6, 12.0, 0.5, 12288, 0,                                  0.85, 0.40, 0.72, 0.80},
    {"jetsonorin",    "Jetson Orin",          "cuda",    204.8,  21.0, 10.5,  6.0, 0.8, 32768, kGemm|kAttention|kGraphs,           0.80, 0.45, 0.80, 0.80},
    {"webgpu_m3max",  "WebGPU (M3 Max)",      "webgpu",  300.0,  28.0, 14.0, 15.0, 0.5, 24576, 0,                                  0.85, 0.35, 0.62, 0.80},
}};
// clang-format on

DeviceSpec
fromRow(const PresetRow& row)
{
    DeviceSpec spec;
    spec.name = row.name;
    spec.backend = row.backend;
    spec.memBandwidthGBs = row.bwGBs;
    spec.fp16Tflops = row.fp16Tflops;
    spec.fp32Tflops = row.fp32Tflops;
    spec.kernelLaunchUs = row.launchUs;
    spec.graphReplayUs = row.replayUs;
    spec.vramBytes = row.vramMB << 20;
    spec.hasGemmLibrary = (row.libs & kGemm) != 0;
    spec.hasAttentionLibrary = (row.libs & kAttention) != 0;
    spec.hasEpilogueLibrary = (row.libs & kEpilogue) != 0;
    spec.supportsExecutionGraphs = (row.libs & kGraphs) != 0;
    spec.libGemmEfficiency = row.libGemmEff;
    spec.genGemmEfficiency = row.genGemmEff;
    spec.genGemvEfficiency = row.genGemvEff;
    spec.genElemwiseEfficiency = row.genElemEff;
    return spec;
}

} // namespace

DeviceSpec
deviceByName(const std::string& name)
{
    for (const PresetRow& row : kCatalog) {
        if (name == row.key) return fromRow(row);
    }
    // Unknown name: list the registry so the caller can self-correct.
    std::string known;
    for (const PresetRow& row : kCatalog) {
        known += known.empty() ? "" : ", ";
        known += row.key;
    }
    RELAX_THROW(RuntimeError)
        << "unknown device: " << name << " (known devices: " << known << ")";
}

std::vector<std::string>
deviceNames()
{
    std::vector<std::string> names;
    names.reserve(kCatalog.size());
    for (const PresetRow& row : kCatalog) names.emplace_back(row.key);
    return names;
}

DeviceSpec rtx4090() { return deviceByName("rtx4090"); }
DeviceSpec radeon7900xtx() { return deviceByName("radeon7900xtx"); }
DeviceSpec appleM2Ultra() { return deviceByName("m2ultra"); }
DeviceSpec iphone14Pro() { return deviceByName("iphone14pro"); }
DeviceSpec samsungS23() { return deviceByName("s23"); }
DeviceSpec samsungS24() { return deviceByName("s24"); }
DeviceSpec orangePi5() { return deviceByName("orangepi5"); }
DeviceSpec steamDeck() { return deviceByName("steamdeck"); }
DeviceSpec jetsonOrin() { return deviceByName("jetsonorin"); }
DeviceSpec webgpuM3Max() { return deviceByName("webgpu_m3max"); }

} // namespace device
} // namespace relax
