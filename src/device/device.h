/**
 * @file
 * Simulated device layer: stands in for the physical GPUs of the paper's
 * evaluation (§5). Each device is described by a roofline model — memory
 * bandwidth, FP16 throughput, kernel launch overhead — plus library
 * availability and kernel-efficiency parameters calibrated to public
 * spec sheets. Executing a kernel advances a virtual clock by
 * max(bytes/bandwidth, flops/throughput)/efficiency + launch overhead;
 * allocations are tracked for the memory study (Table 2).
 *
 * See docs/DESIGN.md §1 for why a roofline simulator preserves the paper's
 * relative comparisons (who wins, crossovers vs batch size).
 */
#ifndef RELAX_DEVICE_DEVICE_H_
#define RELAX_DEVICE_DEVICE_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/error.h"
#include "support/trace.h"

namespace relax {
namespace device {

/** Static description of a simulated device. */
struct DeviceSpec
{
    std::string name;
    std::string backend; //!< "cuda", "rocm", "metal", "opencl", "vulkan",
                         //!< "webgpu", "cpu"

    double memBandwidthGBs = 100.0; //!< device memory bandwidth
    double fp16Tflops = 10.0;       //!< peak half-precision throughput
    double fp32Tflops = 5.0;
    double kernelLaunchUs = 5.0;    //!< per-kernel driver launch overhead
    double graphReplayUs = 0.5;     //!< per-kernel cost inside graph replay
    double graphCaptureUs = 50.0;   //!< one-time instantiation per graph
    int64_t vramBytes = int64_t(8) << 30;

    // Library availability (drives partial library lowering, §4.6).
    bool hasGemmLibrary = false;      //!< cuBLAS / rocBLAS / MPS
    bool hasAttentionLibrary = false; //!< FlashAttention
    bool hasEpilogueLibrary = false;  //!< CUTLASS-style fused norms
    bool supportsExecutionGraphs = false; //!< CUDA Graph equivalent

    // Achieved fraction of roofline peak per kernel class.
    double libGemmEfficiency = 0.85;  //!< vendor GEMM
    double genGemmEfficiency = 0.45;  //!< compiler-generated GEMM
    double genGemvEfficiency = 0.85;  //!< generated matrix-vector (bs=1)
    double genElemwiseEfficiency = 0.80;
    double libAttentionEfficiency = 0.80;
};

/** What one kernel launch costs. */
struct KernelCost
{
    double flops = 0.0;
    double bytes = 0.0;
    /** Fraction of roofline peak this kernel achieves. */
    double efficiency = 1.0;
    /** Use FP32 peak instead of FP16. */
    bool fp32 = false;
};

/**
 * A simulated device instance: virtual clock + memory accounting +
 * execution-graph state.
 */
class SimDevice
{
  public:
    explicit SimDevice(DeviceSpec spec) : spec_(std::move(spec)) {}

    const DeviceSpec& spec() const { return spec_; }

    /**
     * The device's trace recorder — the one clock domain of the whole
     * stack (every subsystem stamps events with this device's clockUs).
     * Disabled by default; enabling it never changes simulated timing.
     * Devices in a DeviceGroup share shard 0's recorder (shareTrace), so
     * one export holds every shard's lane.
     */
    TraceRecorder& trace() { return external_trace_ ? *external_trace_ : trace_; }
    const TraceRecorder&
    trace() const
    {
        return external_trace_ ? *external_trace_ : trace_;
    }

    /**
     * Routes this device's trace events into `recorder` on pid `lane`
     * (the per-device trace lane: pid = device index within a group).
     * The recorder must outlive this device.
     */
    void
    shareTrace(TraceRecorder& recorder, int lane)
    {
        external_trace_ = &recorder;
        traceLane_ = lane;
    }

    /** The pid this device stamps on its trace events. */
    int traceLane() const { return traceLane_; }

    /**
     * Advances the clock for one kernel launch; returns its latency.
     * `name` labels the launch span when tracing is enabled (callers
     * that know the kernel symbol pass it; nullptr traces as "kernel").
     */
    double
    launchKernel(const KernelCost& cost, const char* name = nullptr)
    {
        double compute_us =
            cost.flops /
            ((cost.fp32 ? spec_.fp32Tflops : spec_.fp16Tflops) * 1e6) /
            std::max(cost.efficiency, 1e-6);
        double memory_us = cost.bytes / (spec_.memBandwidthGBs * 1e3) /
                           std::max(cost.efficiency, 1e-6);
        double overhead_us = spec_.kernelLaunchUs;
        if (replaying_) overhead_us = spec_.graphReplayUs;
        double latency = std::max(compute_us, memory_us) + overhead_us;
        double start = clockUs_;
        clockUs_ += latency;
        ++kernelLaunches_;
        if (trace().enabled()) {
            trace().span(traceLane_, trace_lanes::kKernels,
                         name ? name : "kernel", "kernel", start, latency,
                         {{"flops", cost.flops},
                          {"bytes", cost.bytes},
                          {"launch_us", overhead_us},
                          {"replay", (int64_t)(replaying_ ? 1 : 0)}});
        }
        return latency;
    }

    /** Fixed host-side overhead (framework dispatch, python glue). */
    void
    hostOverhead(double us)
    {
        clockUs_ += us;
    }

    /** Allocates device memory; throws when VRAM is exhausted. */
    void
    alloc(int64_t bytes)
    {
        allocatedBytes_ += bytes;
        totalAllocatedBytes_ += bytes;
        peakBytes_ = std::max(peakBytes_, allocatedBytes_);
        if (trace().enabled()) traceMemory("alloc", bytes);
        if (allocatedBytes_ > spec_.vramBytes) {
            RELAX_THROW(RuntimeError)
                << spec_.name << ": out of device memory (" << allocatedBytes_
                << " bytes requested, " << spec_.vramBytes << " available)";
        }
    }

    void
    free(int64_t bytes)
    {
        allocatedBytes_ -= bytes;
        if (trace().enabled()) traceMemory("free", bytes);
    }

    // --- execution graph (CUDA Graph) state --------------------------------

    /** Returns true when this (graph, shape signature) replays. */
    bool
    beginGraph(int64_t graph_id, const std::string& signature)
    {
        std::string key = std::to_string(graph_id) + "/" + signature;
        replaying_ = capturedGraphs_.count(key) > 0;
        capturing_ = !replaying_;
        if (capturing_) {
            capturedGraphs_.insert(key);
            ++graphCaptures_;
            // One-time graph instantiation cost per captured graph.
            clockUs_ += spec_.graphCaptureUs;
        } else {
            ++graphReplays_;
        }
        return replaying_;
    }

    void
    endGraph()
    {
        replaying_ = false;
        capturing_ = false;
    }

    // --- statistics ----------------------------------------------------------

    double clockUs() const { return clockUs_; }
    int64_t allocatedBytes() const { return allocatedBytes_; }
    int64_t peakBytes() const { return peakBytes_; }
    int64_t totalAllocatedBytes() const { return totalAllocatedBytes_; }
    int64_t kernelLaunches() const { return kernelLaunches_; }
    /** Graph regions entered whose signature missed (captured anew). */
    int64_t graphCaptures() const { return graphCaptures_; }
    /** Graph regions entered whose signature hit a captured graph. */
    int64_t graphReplays() const { return graphReplays_; }

    void
    resetClock()
    {
        clockUs_ = 0.0;
        kernelLaunches_ = 0;
    }

  private:
    /** Memory-lane instant + allocated-bytes counter sample (cold path:
     *  only reached with tracing on). */
    void
    traceMemory(const char* what, int64_t bytes)
    {
        trace().instant(traceLane_, trace_lanes::kMemory, what, "memory",
                        clockUs_, {{"bytes", bytes}});
        trace().counter(traceLane_, trace_lanes::kMemory,
                        "allocated_bytes", clockUs_,
                        {{"bytes", allocatedBytes_}});
    }

    DeviceSpec spec_;
    double clockUs_ = 0.0;
    int64_t allocatedBytes_ = 0;
    int64_t peakBytes_ = 0;
    int64_t totalAllocatedBytes_ = 0;
    int64_t kernelLaunches_ = 0;
    int64_t graphCaptures_ = 0;
    int64_t graphReplays_ = 0;
    bool capturing_ = false;
    bool replaying_ = false;
    std::set<std::string> capturedGraphs_;
    TraceRecorder trace_;
    /** When set (DeviceGroup members), events go here instead. */
    TraceRecorder* external_trace_ = nullptr;
    int traceLane_ = trace_lanes::kDevice;
};

/** Catalog of the devices used in the paper's evaluation (§5). */
DeviceSpec rtx4090();
DeviceSpec radeon7900xtx();
DeviceSpec appleM2Ultra();
DeviceSpec iphone14Pro();
DeviceSpec samsungS23();
DeviceSpec samsungS24();
DeviceSpec orangePi5();
DeviceSpec steamDeck();
DeviceSpec jetsonOrin();
DeviceSpec webgpuM3Max();

/** Looks up a device spec by name; throws on unknown names. */
DeviceSpec deviceByName(const std::string& name);

/** Every registry key, in catalog order (the deviceByName domain). */
std::vector<std::string> deviceNames();

} // namespace device
} // namespace relax

#endif // RELAX_DEVICE_DEVICE_H_
