/**
 * @file
 * Router implementation: discrete-event dispatch over M engine
 * replicas. See router.h for the event-ordering and admission-control
 * contract.
 */
#include "serve/router.h"

#include <algorithm>
#include <limits>

#include "support/error.h"

namespace relax {
namespace serve {

Router::Router(std::vector<std::unique_ptr<Engine>> replicas,
               RouterOptions options)
    : replicas_(std::move(replicas)), options_(options)
{
    RELAX_ICHECK(!replicas_.empty()) << "Router needs at least one replica";
    for (const auto& replica : replicas_) {
        RELAX_ICHECK(replica != nullptr) << "Router replica is null";
    }
    outstanding_.assign(replicas_.size(), 0);
}

int64_t
Router::tenantTokensInFlight(const std::string& tenant) const
{
    auto it = tenantInFlight_.find(tenant);
    return it == tenantInFlight_.end() ? 0 : it->second;
}

void
Router::submit(std::string tenant, std::vector<int64_t> prompt,
               int64_t max_new_tokens, double arrival_us)
{
    RELAX_ICHECK(pending_.empty() ||
                 arrival_us >= pending_.back().arrivalUs)
        << "Router arrivals must be submitted in time order";
    ++stats_.submitted;
    pending_.push_back(Arrival{std::move(tenant), std::move(prompt),
                               max_new_tokens, arrival_us});
}

double
Router::replicaClockUs(size_t r) const
{
    return const_cast<Engine&>(*replicas_[r]).machine().dev().clockUs();
}

void
Router::dispatch(Arrival arrival)
{
    int64_t charge =
        (int64_t)arrival.prompt.size() + arrival.maxNewTokens;
    int64_t cluster_outstanding = 0;
    for (int64_t tokens : outstanding_) cluster_outstanding += tokens;
    metrics_.gauge("router.outstanding_tokens")
        .sample((double)cluster_outstanding);

    // Tenant budget first: a tenant blowing its own cap is its overage,
    // not cluster overload, whatever the replicas look like.
    if (options_.maxTenantTokensInFlight > 0 &&
        tenantTokensInFlight(arrival.tenant) + charge >
            options_.maxTenantTokensInFlight) {
        ++stats_.tenantRejected;
        metrics_.counter("router.tenant_rejected").add();
        metrics_.counter("router.tenant." + arrival.tenant + ".rejected")
            .add();
        return;
    }

    size_t best = 0;
    for (size_t r = 1; r < replicas_.size(); ++r) {
        if (outstanding_[r] < outstanding_[best]) best = r;
    }
    if (options_.maxOutstandingTokensPerReplica > 0 &&
        outstanding_[best] >= options_.maxOutstandingTokensPerReplica) {
        ++stats_.shed;
        metrics_.counter("router.shed").add();
        return;
    }

    // A replica that sat idle consumed real wall-clock doing nothing;
    // bring it to the arrival instant before the request lands on it.
    Engine& engine = *replicas_[best];
    double clock = replicaClockUs(best);
    if (!engine.hasPendingWork() && clock < arrival.arrivalUs) {
        engine.machine().dev().hostOverhead(arrival.arrivalUs - clock);
    }
    RequestId id = engine.addRequest(std::move(arrival.prompt),
                                     arrival.maxNewTokens,
                                     /*stop_token=*/-1, arrival.arrivalUs);
    outstanding_[best] += charge;
    tenantInFlight_[arrival.tenant] += charge;
    inFlight_[{best, id}] = InFlight{std::move(arrival.tenant), charge};
    ++stats_.dispatched;
    metrics_.counter("router.dispatched").add();
}

void
Router::stepReplica(size_t r)
{
    Engine& engine = *replicas_[r];
    if (!engine.step()) {
        RELAX_ICHECK(!engine.hasPendingWork())
            << "Router replica " << r << " stalled: requests wait but "
            << "none fit the KV budget";
        return;
    }
    for (auto& finished : engine.collect()) {
        auto it = inFlight_.find({r, finished.id});
        RELAX_ICHECK(it != inFlight_.end())
            << "Router collected an unrouted request";
        outstanding_[r] -= it->second.chargedTokens;
        auto tenant_it = tenantInFlight_.find(it->second.tenant);
        tenant_it->second -= it->second.chargedTokens;
        if (tenant_it->second <= 0) tenantInFlight_.erase(tenant_it);
        double ttft = finished.stats.ttftUs();
        if (ttft >= 0) {
            metrics_.histogram("router.ttft_us").record(ttft);
        }
        ++stats_.finished;
        metrics_.counter("router.finished").add();
        finished_.push_back(RoutedRequest{std::move(it->second.tenant),
                                          (int)r, std::move(finished)});
        inFlight_.erase(it);
    }
}

const RouterStats&
Router::run()
{
    const double inf = std::numeric_limits<double>::infinity();
    for (;;) {
        // The laggard busy replica defines how far simulated time has
        // progressed; an arrival is only dispatched once every busy
        // replica has caught up to it.
        double min_busy = inf;
        size_t min_replica = 0;
        for (size_t r = 0; r < replicas_.size(); ++r) {
            if (!replicas_[r]->hasPendingWork()) continue;
            double clock = replicaClockUs(r);
            if (clock < min_busy) {
                min_busy = clock;
                min_replica = r;
            }
        }
        if (!pending_.empty() && pending_.front().arrivalUs <= min_busy) {
            Arrival arrival = std::move(pending_.front());
            pending_.pop_front();
            dispatch(std::move(arrival));
        } else if (min_busy != inf) {
            stepReplica(min_replica);
        } else {
            break; // no arrivals left, no replica busy
        }
    }
    RELAX_ICHECK(inFlight_.empty())
        << "Router finished with requests still in flight";
    return stats_;
}

std::vector<RoutedRequest>
Router::collect()
{
    std::vector<RoutedRequest> out;
    out.swap(finished_);
    return out;
}

} // namespace serve
} // namespace relax
