/**
 * @file
 * KVCacheManager: paged, per-sequence KV-cache accounting for the serving
 * engine. Each running sequence owns a list of fixed-size blocks (pages)
 * of `blockTokens` cache positions; blocks are persistent VM storage, so
 * every reserved byte is accounted against the simulated device's VRAM
 * (DeviceSpec::vramBytes) exactly like statically planned storage.
 *
 * The manager is pure bookkeeping: the tensors that hold cache *values*
 * travel through the compiled decode function as arguments (see
 * SequenceState::caches); what lives here is the device-byte ownership
 * that admission control and preemption decide against.
 */
#ifndef RELAX_SERVE_KV_CACHE_H_
#define RELAX_SERVE_KV_CACHE_H_

#include <map>
#include <vector>

#include "frontend/llama.h"
#include "serve/request.h"
#include "vm/vm.h"

namespace relax {
namespace serve {

/** Paged KV-block owner with a hard byte budget. */
class KVCacheManager
{
  public:
    /**
     * @param config      model whose kvBytesPerToken() prices a position
     * @param machine     VM whose device accounts the allocations
     * @param budgetBytes hard cap on total reserved KV bytes
     * @param blockTokens cache positions per page
     */
    KVCacheManager(const frontend::LlamaConfig& config,
                   vm::VirtualMachine& machine, int64_t budgetBytes,
                   int64_t blockTokens = 16);

    ~KVCacheManager();

    KVCacheManager(const KVCacheManager&) = delete;
    KVCacheManager& operator=(const KVCacheManager&) = delete;

    int64_t blockTokens() const { return blockTokens_; }
    int64_t bytesPerBlock() const { return bytesPerBlock_; }
    int64_t budgetBytes() const { return budgetBytes_; }
    int64_t usedBytes() const { return usedBlocks_ * bytesPerBlock_; }
    int64_t peakBytes() const { return peakBlocks_ * bytesPerBlock_; }
    int64_t freeBytes() const { return budgetBytes_ - usedBytes(); }

    /** Blocks needed to hold `tokens` cache positions. */
    int64_t blocksFor(int64_t tokens) const;

    /** True when growing (or admitting) `seq` to `tokens` positions fits
     *  the budget, counting blocks it already owns. */
    bool canHold(RequestId seq, int64_t tokens) const;

    /** Reserves blocks so `seq` owns at least `tokens` positions.
     *  Throws RuntimeError when the budget cannot hold them — callers are
     *  expected to check canHold() and queue/evict instead. */
    void reserve(RequestId seq, int64_t tokens);

    /** Releases every block owned by `seq` (no-op for unknown ids). */
    void release(RequestId seq);

    /** Positions reserved for `seq` (0 for unknown ids). */
    int64_t reservedTokens(RequestId seq) const;

    /**
     * Records the positions actually written for `seq` (its true context
     * length), decoupled from the block-granular reservation. The ragged
     * decode path reads these back through lengthsView().
     */
    void commit(RequestId seq, int64_t tokens);

    /** Committed (written) positions for `seq` (0 for unknown ids). */
    int64_t committedTokens(RequestId seq) const;

    // --- ragged-decode views ------------------------------------------------
    //
    // The ragged decode kernel consumes per-sequence cache lengths and the
    // paged-KV block table as tensors. Both are host-side integer metadata
    // (the paper's "integer host tensor"), so they carry real data in both
    // data and timing mode.

    /** [b] i64 tensor of committed context lengths, in `order`. */
    NDArray lengthsView(const std::vector<RequestId>& order) const;

    /**
     * [b, width] i64 block table, in `order`: row i lists the physical
     * block ids backing sequence i's pages, -1 padded to `width`. `width`
     * must cover every listed sequence's owned blocks.
     */
    NDArray blockTableView(const std::vector<RequestId>& order,
                           int64_t width) const;

  private:
    struct SequenceBlocks
    {
        std::vector<vm::StoragePtr> blocks;
        std::vector<int64_t> blockIds; //!< physical page ids, parallel
        int64_t tokens = 0;    //!< reserved capacity in positions
        int64_t committed = 0; //!< positions actually written
    };

    vm::VirtualMachine& machine_;
    int64_t blockTokens_;
    int64_t bytesPerBlock_;
    int64_t budgetBytes_;
    int64_t totalBlocks_;
    int64_t usedBlocks_ = 0;
    int64_t peakBlocks_ = 0;
    int64_t nextBlockId_ = 0;
    std::map<RequestId, SequenceBlocks> sequences_;
};

} // namespace serve
} // namespace relax

#endif // RELAX_SERVE_KV_CACHE_H_
