/**
 * @file
 * KVCacheManager: the persistent KV page pool of the serving engine.
 *
 * The cache is one pool tensor per layer per k/v, `[p, h, block, d]` —
 * p physical pages of `blockTokens` positions — allocated once as VM
 * persistent storage (the whole budget is resident up front, vLLM
 * style) and addressed by every compiled `decode_ragged` call through
 * the block table. The manager owns the pool tensors, a free-page list,
 * and per-page reference counts:
 *
 *  - reserve/release move pages between sequences and the free list;
 *  - fork() maps a child sequence onto the pages holding a parent's
 *    committed prefix (refcount++, zero copies) — shared-system-prompt
 *    serving;
 *  - automatic prefix caching: registerCommitted() records each full
 *    page-aligned block of a sequence's committed prompt in a
 *    hash→page index under a chained content hash, and matchPrefix()
 *    maps a new sequence onto every indexed page whose token content
 *    (verified byte-for-byte, never trusted from the hash alone)
 *    extends its matched chain — no fork_of hint required;
 *  - reserveWrite() enforces copy-on-write: before a sequence writes a
 *    page whose refcount exceeds one, the page is copied to a fresh one
 *    on the device (priced on the simulated clock) and the writer's
 *    table entry is repointed;
 *  - eviction (release) returns pages to the pool only when their last
 *    reference drops, at which point their index entries are removed
 *    (the index never outlives page content).
 *
 * Cache *values* live in the pool tensors (real data in data mode,
 * metadata-only in timing mode); the compiled kernels mutate them in
 * place via the in-place `kv.append_ragged` library call, so the engine
 * never copies cache bytes on the host (EngineStats::relayoutBytes).
 */
#ifndef RELAX_SERVE_KV_CACHE_H_
#define RELAX_SERVE_KV_CACHE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "frontend/llama.h"
#include "serve/request.h"
#include "support/metrics.h"
#include "vm/vm.h"

namespace relax {
namespace serve {

/** Page-pool KV-block owner with a hard byte budget. */
class KVCacheManager
{
  public:
    /**
     * Allocates the page pool: `budgetBytes / bytesPerBlock()` pages,
     * resident as VM persistent storage for the manager's lifetime.
     *
     * @param config      model whose kvBytesPerToken() prices a position
     * @param machine     VM whose device accounts the pool (and whose
     *                    data mode decides real vs metadata-only pools)
     * @param budgetBytes hard cap on total reserved KV bytes
     * @param blockTokens cache positions per page
     * @param shards      tensor-parallel shard VMs, one per device, in
     *                    rank order. Empty (the default) is the
     *                    single-device path: one pool on `machine`.
     *                    Non-empty splits the head axis: shard s gets
     *                    [p, h/N, block, d] pool tensors resident on ITS
     *                    device (1/N of the logical bytes each). All
     *                    page-table state — budget, page count,
     *                    bytesPerBlock(), admission math — stays in
     *                    LOGICAL full-model bytes, so scheduling
     *                    decisions are bit-identical to tp=1; only the
     *                    per-device residency and copy pricing divide.
     */
    KVCacheManager(const frontend::LlamaConfig& config,
                   vm::VirtualMachine& machine, int64_t budgetBytes,
                   int64_t blockTokens = 16,
                   std::vector<vm::VirtualMachine*> shards = {});

    ~KVCacheManager();

    KVCacheManager(const KVCacheManager&) = delete;
    KVCacheManager& operator=(const KVCacheManager&) = delete;

    int64_t blockTokens() const { return blockTokens_; }
    int64_t bytesPerBlock() const { return bytesPerBlock_; }
    int64_t budgetBytes() const { return budgetBytes_; }
    /** Total physical pages in the pool. */
    int64_t totalPages() const { return totalBlocks_; }
    /** Unique pages currently referenced by at least one sequence. */
    int64_t usedPages() const { return usedBlocks_; }
    /** High-water unique-page mark. */
    int64_t peakPages() const { return peakBlocks_; }
    int64_t freePages() const { return totalBlocks_ - usedBlocks_; }
    int64_t usedBytes() const { return usedBlocks_ * bytesPerBlock_; }
    int64_t peakBytes() const { return peakBlocks_ * bytesPerBlock_; }
    int64_t freeBytes() const { return budgetBytes_ - usedBytes(); }

    /** Blocks needed to hold `tokens` cache positions. */
    int64_t blocksFor(int64_t tokens) const;

    /** True when growing (or admitting) `seq` to `tokens` positions fits
     *  the pool, counting pages it already owns or shares. */
    bool canHold(RequestId seq, int64_t tokens) const;

    /** Acquires pages so `seq` owns at least `tokens` positions. Throws
     *  RuntimeError when the pool cannot hold them — callers are
     *  expected to check canHold() and queue/evict instead. */
    void reserve(RequestId seq, int64_t tokens);

    /**
     * canHold() plus the copy-on-write requirement: growing `seq` to
     * `tokens` positions AND exclusively owning every page in the write
     * range [writeStart, tokens) must fit the free list (each shared
     * page in the range costs one fresh page to copy into).
     */
    bool canHoldWrite(RequestId seq, int64_t tokens,
                      int64_t writeStart) const;

    /**
     * reserve() plus copy-on-write: after this call `seq` holds
     * capacity for `tokens` positions and every page covering
     * [writeStart, tokens) has refcount 1 for `seq` — shared pages are
     * copied to fresh ones on the device (a priced page-sized copy) and
     * repointed. The compiled call may then scatter into the pool.
     */
    void reserveWrite(RequestId seq, int64_t tokens, int64_t writeStart);

    /** Drops every page reference held by `seq` (no-op for unknown
     *  ids); pages return to the free list when unreferenced. */
    void release(RequestId seq);

    /**
     * Rolls `seq` back to `tokens` committed positions — the rejection
     * path of speculative decoding. Whole pages past the new length drop
     * their reference (returning to the free list when unreferenced, as
     * release() would), the committed length rewinds inside the last
     * retained page, and reserved capacity shrinks to the retained
     * pages. Prefix-index entries for retained pages whose block is no
     * longer fully committed are dropped when `seq` is their sole owner:
     * the rewound positions will be rewritten in place, so the entry's
     * token snapshot would otherwise diverge from the pool content and a
     * later matchPrefix() could serve rejected-draft K/V. Shared pages
     * keep their entries — copy-on-write repoints this writer before the
     * page can change. Returns the number of page references dropped.
     * No-op (returns 0) for unknown ids or when nothing exceeds
     * `tokens`.
     */
    int64_t truncate(RequestId seq, int64_t tokens);

    /**
     * Opens a copy-on-write pricing batch: until flushCowBatch(), page
     * copies made by reserveWrite() keep copying data eagerly but defer
     * their device cost into one accumulated burst. The engine brackets
     * each step's ensureWritable sweep with this so b sequences COW-ing
     * in one step price one cudaMemcpyAsync-burst-shaped launch instead
     * of b independent ones. Without an open batch copyPage prices each
     * copy immediately (the historical behavior, kept for direct
     * callers).
     */
    void beginCowBatch();

    /** Closes the batch, pricing all deferred copies as one launch
     *  (`kv.cow_copy_burst`). Returns the number of pages flushed. */
    int64_t flushCowBatch();

    /**
     * Maps `child` (which must hold no pages) onto the pages backing the
     * first `tokens` committed positions of `parent`: refcounts rise, no
     * data moves, and `child`'s committed length becomes `tokens`.
     * Clamped to parent's committed length; a no-op (child stays
     * unknown) when the parent is unknown or the clamp reaches zero.
     */
    void fork(RequestId parent, RequestId child, int64_t tokens);

    /**
     * Undoes a speculative fork whose admission fell through before any
     * reservation: drops `child`'s references like release() and takes
     * the fork back out of forkCount(), so the statistic reports only
     * forks that actually admitted. No-op when `child` is unknown
     * (including forks that degraded to no-ops).
     */
    void dropFork(RequestId child);

    /**
     * Automatic prefix caching — the detection half: walks `tokens`
     * (the child's pending prefill stream) in page-aligned blocks,
     * computing the chained block hash, and maps `child` (which must
     * hold no pages) onto every consecutive indexed pool page whose
     * stored token content verifies byte-for-byte against the block AND
     * whose predecessor page is the one matched for the previous block.
     * Hash collisions are therefore safe: the hash only proposes
     * candidates, content decides. Matching is capped so the child
     * always prefills at least one token itself (the position producing
     * its first logits). Returns the matched token count (a multiple of
     * blockTokens(), 0 when nothing matched); on a match the child's
     * committed length equals the return value and forkCount() rises,
     * exactly as an explicit fork() would.
     */
    int64_t matchPrefix(RequestId child, const std::vector<int64_t>& tokens);

    /**
     * Automatic prefix caching — the registration half: records every
     * not-yet-registered full page-aligned block of `seq`'s committed
     * prefix of `tokens` in the hash→page index (chained hash over the
     * block's token content, seeded by the previous block's hash).
     * Pages already indexed (e.g. mapped from a parent by matchPrefix)
     * only advance the chain. Full committed pages are immutable while
     * live — copy-on-write repoints writers, and release() drops index
     * entries with the page — so registrations never go stale. Call
     * after committing a prefill; no-op for unknown ids.
     */
    void registerCommitted(RequestId seq, const std::vector<int64_t>& tokens);

    /**
     * Test hook: replaces the chained block hash function (prev hash,
     * block tokens, count) — e.g. with a constant to force collisions,
     * which content verification must turn into no-shares, never wrong
     * shares. Pass nullptr to restore the default FNV-1a chain.
     */
    using BlockHashFn =
        std::function<uint64_t(uint64_t, const int64_t*, int64_t)>;
    void setBlockHashForTest(BlockHashFn fn);

    /** Positions reserved for `seq` (0 for unknown ids). */
    int64_t reservedTokens(RequestId seq) const;

    /** Pages owned/shared by `seq` (0 for unknown ids) — the block-table
     *  row width it needs. */
    int64_t pagesOf(RequestId seq) const;

    /**
     * Records the positions actually written for `seq` (its true context
     * length), decoupled from the block-granular reservation. The ragged
     * decode path reads these back through lengthsView().
     */
    void commit(RequestId seq, int64_t tokens);

    /** Committed (written) positions for `seq` (0 for unknown ids). */
    int64_t committedTokens(RequestId seq) const;

    // --- ragged-decode views ------------------------------------------------
    //
    // The ragged decode kernel consumes per-sequence cache lengths and the
    // paged-KV block table as tensors. Both are host-side integer metadata
    // (the paper's "integer host tensor"), so they carry real data in both
    // data and timing mode.

    /** [b] i64 tensor of committed context lengths, in `order`. */
    NDArray lengthsView(const std::vector<RequestId>& order) const;

    /**
     * [b, width] i64 block table, in `order`: row i lists the physical
     * pool pages backing sequence i, -1 padded to `width`. `width` must
     * cover every listed sequence's pages.
     */
    NDArray blockTableView(const std::vector<RequestId>& order,
                           int64_t width) const;

    /**
     * The persistent pool tensors in `decode_ragged` argument order
     * (k_pool_0, v_pool_0, k_pool_1, ...), each [p, h, block, d] —
     * [p, h/N, block, d] under tensor parallelism, where `shard` picks
     * the device-local set. Copies share storage with the manager's
     * tensors, so in-place kernel writes land in the pool.
     */
    const std::vector<NDArray>&
    poolTensors(int shard = 0) const
    {
        return pools_.at((size_t)shard);
    }

    /** Tensor-parallel shard count backing the pool (1 = single device). */
    int numShards() const { return (int)shards_.size(); }

    // --- sharing statistics -------------------------------------------------

    /** fork() / matchPrefix() calls that actually mapped shared pages. */
    int64_t forkCount() const { return forks_; }
    /** Copy-on-write page copies performed (device-priced). */
    int64_t cowCopies() const { return cowCopies_; }
    /** Device bytes moved by copy-on-write page copies. */
    int64_t cowBytes() const { return cowCopies_ * bytesPerBlock_; }
    /** truncate() calls that dropped at least one page or rewound the
     *  committed length. */
    int64_t truncateCount() const { return truncates_; }
    /** matchPrefix() calls that mapped at least one page. */
    int64_t prefixHits() const { return prefixHits_; }
    /** Total cache positions resolved from the index by matchPrefix(). */
    int64_t prefixTokensMatched() const { return prefixTokensMatched_; }
    /** Live hash→page index entries (test introspection). */
    int64_t indexedBlocks() const { return (int64_t)pageHash_.size(); }

    // --- observability ------------------------------------------------------

    /**
     * Attaches the owning engine's MetricsRegistry: the manager then
     * mirrors its sharing tallies into the `kv.*` counters (cow_copies,
     * prefix_hits, prefix_tokens_matched) at the event sites, so a
     * registry snapshot carries them without polling. Null detaches;
     * the manager never owns the registry. COW-copy and prefix-hit
     * trace instants ride the device's TraceRecorder independently of
     * this (keyed by request id, engine kv-pool lane).
     */
    void setMetrics(MetricsRegistry* metrics) { metrics_ = metrics; }

  private:
    struct Sequence
    {
        std::vector<int64_t> pages; //!< physical pool pages, in order
        int64_t tokens = 0;    //!< reserved capacity in positions
        int64_t committed = 0; //!< positions actually written
        /** Chained content hash of each registered/matched full block
         *  (registration progress of the prefix-caching index). */
        std::vector<uint64_t> blockHashes;
    };
    /** One registered block: the page holding it, the page holding the
     *  previous block of its chain (-1 for the first block), and the
     *  block's token content for verify-on-match. */
    struct IndexEntry
    {
        int64_t page = -1;
        int64_t prevPage = -1;
        std::vector<int64_t> tokens;
    };

    /** Pops a free page (throws RuntimeError when the pool is empty). */
    int64_t acquirePage();
    /** Device-side page copy (all layers, k+v): prices one page-sized
     *  read+write on the simulated clock and copies pool data rows in
     *  data mode. */
    void copyPage(int64_t src, int64_t dst);
    /** Chained block hash (test hook aware). */
    uint64_t hashBlock(uint64_t prev, const int64_t* tokens,
                       int64_t count) const;
    /** Drops `page`'s index entry, if any (page is leaving the pool). */
    void unregisterPage(int64_t page);

    vm::VirtualMachine& machine_;
    /** Shard VMs in rank order; {&machine_} on the single-device path. */
    std::vector<vm::VirtualMachine*> shards_;
    MetricsRegistry* metrics_ = nullptr; //!< engine-owned, optional
    int64_t blockTokens_;
    int64_t bytesPerBlock_;
    int64_t budgetBytes_;
    int64_t totalBlocks_;
    int64_t usedBlocks_ = 0;
    int64_t peakBlocks_ = 0;
    int64_t forks_ = 0;
    int64_t cowCopies_ = 0;
    int64_t truncates_ = 0;
    bool cowBatchActive_ = false;   //!< inside begin/flushCowBatch()
    int64_t cowBatchPages_ = 0;     //!< copies deferred in the open batch
    int64_t prefixHits_ = 0;
    int64_t prefixTokensMatched_ = 0;
    /** [shard][layer-k/v] pool tensors, [p, h/N, block, d] each. */
    std::vector<std::vector<NDArray>> pools_;
    std::vector<int64_t> freePages_;  //!< LIFO of unreferenced page ids
    std::vector<int32_t> refCounts_;  //!< per-page reference counts
    /** The resident pool allocation on each shard's device. */
    std::vector<vm::StoragePtr> poolStorages_;
    std::map<RequestId, Sequence> sequences_;
    /** chained hash → registered blocks under it (collision candidates) */
    std::map<uint64_t, std::vector<IndexEntry>> hashIndex_;
    /** live registered page → its chained hash (for removal on free) */
    std::map<int64_t, uint64_t> pageHash_;
    BlockHashFn hashOverride_; //!< test-only collision injection
};

} // namespace serve
} // namespace relax

#endif // RELAX_SERVE_KV_CACHE_H_
