/**
 * @file
 * Engine implementation: the continuous-batching step loop — admission
 * (with automatic prefix matching against the KV manager's block-hash
 * index), then ONE packed-varlen page-pool call per step in which newly
 * admitted rows prefill their fresh prompt tails and running rows decode
 * one token each, with copy-on-write and eviction under memory pressure —
 * plus request bookkeeping and the virtual-clock statistics (see
 * engine.h). Cache data never moves on the host: every phase addresses
 * the persistent pool through the block table, so
 * EngineStats::relayoutBytes stays 0.
 */
#include "serve/engine.h"

#include <algorithm>

namespace relax {
namespace serve {

namespace {

/** Per-row fresh tokens packed into one flat [1, total] i64 tensor. */
NDArray
packedIdsTensor(const std::vector<std::vector<int64_t>>& tokens,
                bool data_mode)
{
    int64_t total = 0;
    for (const auto& row : tokens) total += (int64_t)row.size();
    if (!data_mode) return NDArray::metaOnly({1, total}, DataType::i64());
    std::vector<double> values;
    values.reserve((size_t)total);
    for (const auto& row : tokens) {
        values.insert(values.end(), row.begin(), row.end());
    }
    return NDArray::fromVector({1, total}, DataType::i64(),
                               std::move(values));
}

/** Cumulative fresh offsets cu_fresh [b+1] (always host data: the
 *  library cost model sums per-row fresh counts from it). */
NDArray
cuFreshTensor(const std::vector<std::vector<int64_t>>& tokens)
{
    std::vector<double> cu;
    cu.reserve(tokens.size() + 1);
    double running = 0.0;
    cu.push_back(0.0);
    for (const auto& row : tokens) {
        running += (double)row.size();
        cu.push_back(running);
    }
    return NDArray::fromVector({(int64_t)tokens.size() + 1},
                               DataType::i64(), std::move(cu));
}

} // namespace

Engine::Engine(vm::ExecutablePtr exec,
               std::shared_ptr<device::SimDevice> dev, bool data_mode,
               frontend::LlamaConfig config, std::vector<NDArray> weights,
               EngineOptions options)
    : config_(std::move(config)), options_(options),
      scheduler_(options.scheduler), sampler_(options.sampler),
      weights_(std::move(weights))
{
    machine_ = std::make_unique<vm::VirtualMachine>(std::move(exec),
                                                    std::move(dev),
                                                    data_mode);
    int64_t budget = options_.kvBudgetBytes;
    if (budget <= 0) {
        // Auto budget: what the device has left once weights are resident,
        // with 20% headroom for activations, floored at one block. The
        // pool is allocated up front, so additionally cap the auto size
        // at the addressable envelope: maxBatchSize sequences can never
        // hold more than maxContext positions each (plus a block of
        // rounding slack per slot). Paper-scale configs are far above
        // this; it keeps tiny test configs from materializing gigabyte
        // pools in data mode. An explicit kvBudgetBytes is respected
        // as-is.
        budget = (int64_t)((double)(machine_->dev().spec().vramBytes -
                                    config_.weightBytes()) *
                           0.8);
        int64_t usable = config_.kvBytesPerToken() *
                         (config_.maxContext + options_.kvBlockTokens) *
                         options_.scheduler.maxBatchSize;
        budget = std::min(budget, usable);
    }
    budget = std::max(budget,
                      config_.kvBytesPerToken() * options_.kvBlockTokens);
    kv_ = std::make_unique<KVCacheManager>(config_, *machine_, budget,
                                           options_.kvBlockTokens);
    // One observability spine: the KV manager mirrors its event tallies
    // into the engine's registry, and the scheduler stamps lifecycle
    // instants with the device clock + TraceRecorder.
    kv_->setMetrics(&metrics_);
    scheduler_.attachDevice(&machine_->dev());
}

std::unique_ptr<Engine>
Engine::build(const frontend::LlamaConfig& config,
              const frontend::CompileOptions& compile_options,
              bool data_mode, EngineOptions options)
{
    frontend::CompileOptions copts = compile_options;
    if (copts.graphBucketTokens == 0) {
        // Align graph-capture buckets with KV pages: the decode
        // signature (b, n=1, table width) then changes only when the
        // batch crosses a bucket class or the longest sequence grows
        // into a new page, so the steps in between replay one captured
        // graph.
        copts.graphBucketTokens = options.kvBlockTokens;
    }
    auto exec = frontend::compile(frontend::buildLlama(config), copts);
    auto dev = std::make_shared<device::SimDevice>(copts.device);
    auto weights = frontend::makeLlamaWeights(config, data_mode);
    return std::make_unique<Engine>(std::move(exec), std::move(dev),
                                    data_mode, config, std::move(weights),
                                    options);
}

RequestId
Engine::addRequest(std::vector<int64_t> prompt, int64_t max_new_tokens,
                   int64_t stop_token, double arrival_us)
{
    RELAX_ICHECK(!prompt.empty()) << "empty prompt";
    RELAX_ICHECK(max_new_tokens >= 1) << "maxNewTokens must be >= 1";
    if ((int64_t)prompt.size() > config_.maxContext) {
        // Reject at submission: the pool is sized to the model's context
        // window, so an over-long prompt could never be admitted and
        // would otherwise surface later as a confusing stall.
        RELAX_THROW(RuntimeError)
            << "prompt of " << prompt.size()
            << " tokens exceeds the model context window ("
            << config_.maxContext << ")";
    }
    auto seq = std::make_shared<SequenceState>();
    seq->request.id = nextId_++;
    seq->request.promptTokens = std::move(prompt);
    seq->request.maxNewTokens = max_new_tokens;
    seq->request.stopToken = stop_token;
    seq->stats.arrivalUs =
        arrival_us >= 0 ? arrival_us : machine_->dev().clockUs();
    RequestId id = seq->request.id;
    metrics_.counter("serve.requests_submitted").add();
    TraceRecorder& trace = machine_->dev().trace();
    if (trace.enabled()) {
        // The request's whole lifetime is one async span keyed by its id
        // (async pairs may overlap, unlike 'X' spans), opened at the
        // arrival stamp — possibly backdated by the caller's trace.
        trace.asyncBegin(
            trace_lanes::kEngine, trace_lanes::kRequests, "request",
            "request", id, seq->stats.arrivalUs,
            {{"prompt_tokens", (int64_t)seq->request.promptTokens.size()},
             {"max_new_tokens", max_new_tokens}});
    }
    scheduler_.enqueue(std::move(seq));
    return id;
}

bool
Engine::hasPendingWork() const
{
    return scheduler_.hasWaiting() || !running_.empty();
}

std::vector<vm::Value>
Engine::withWeights(std::vector<vm::Value> args) const
{
    args.reserve(args.size() + weights_.size());
    for (const NDArray& w : weights_) args.emplace_back(w);
    return args;
}

int64_t
Engine::sampleFor(const NDArray& logits, int64_t position)
{
    if (machine_->dataMode()) {
        return sampler_.samplePacked(logits, position);
    }
    return sampler_.sampleSynthetic(config_.vocabSize);
}

void
Engine::appendToken(const SequenceStatePtr& seq, int64_t token)
{
    seq->generated.push_back(token);
    ++seq->stats.generatedTokens;
    ++stats_.tokensGenerated;
    double now = machine_->dev().clockUs();
    if (seq->stats.firstTokenUs < 0) {
        seq->stats.firstTokenUs = now;
        // TTFT from the ORIGINAL arrival stamp: eviction + re-admission
        // never rebase arrivalUs, so a request preempted before its
        // first token contributes its full queue + retry wait here
        // (engine.h metrics() contract; pinned by test_engine.cc).
        metrics_.histogram("serve.ttft_us")
            .record(now - seq->stats.arrivalUs);
        TraceRecorder& trace = machine_->dev().trace();
        if (trace.enabled()) {
            trace.instant(trace_lanes::kEngine, trace_lanes::kRequests,
                          "first_token", "lifecycle", now,
                          {{"request", seq->request.id},
                           {"ttft_us", now - seq->stats.arrivalUs}});
        }
    } else {
        // Inter-token gap on the virtual clock; eviction stalls between
        // two tokens land here as real tail latency.
        metrics_.histogram("serve.itl_us")
            .record(now - seq->stats.lastTokenUs);
    }
    seq->stats.lastTokenUs = now;
    // Done by budget/stop token, or the cache hit the trained context
    // window and cannot grow another position.
    if (seq->done() || seq->ctxLen >= config_.maxContext) {
        finishSequence(seq);
    }
}

void
Engine::finishSequence(const SequenceStatePtr& seq)
{
    seq->phase = RequestPhase::kFinished;
    seq->stats.finishUs = machine_->dev().clockUs();
    kv_->release(seq->request.id);
    running_.erase(std::find(running_.begin(), running_.end(), seq));
    finished_.push_back(seq);
    ++stats_.requestsFinished;
    stats_.ttftSumUs += seq->stats.ttftUs();
    metrics_.counter("serve.requests_finished").add();
    TraceRecorder& trace = machine_->dev().trace();
    if (trace.enabled()) {
        trace.asyncEnd(trace_lanes::kEngine, trace_lanes::kRequests,
                       "request", "request", seq->request.id,
                       seq->stats.finishUs,
                       {{"generated", (int64_t)seq->generated.size()},
                        {"preemptions", seq->stats.preemptions}});
    }
}

void
Engine::evict(const SequenceStatePtr& victim)
{
    metrics_.counter("serve.evictions").add();
    TraceRecorder& trace = machine_->dev().trace();
    if (trace.enabled()) {
        trace.instant(trace_lanes::kEngine, trace_lanes::kRequests,
                      "evict", "lifecycle", machine_->dev().clockUs(),
                      {{"request", victim->request.id},
                       {"ctx_len", victim->ctxLen},
                       {"generated", (int64_t)victim->generated.size()}});
    }
    victim->ctxLen = 0;
    kv_->release(victim->request.id);
    running_.erase(std::find(running_.begin(), running_.end(), victim));
    ++victim->stats.preemptions;
    ++stats_.evictions;
    // Back of the queue: generated tokens ride along and are re-prefilled
    // on re-admission (re-forking a still-resident parent prefix), so the
    // output stream resumes where it stopped.
    scheduler_.enqueue(victim);
}

void
Engine::ensureWritable(const SequenceStatePtr& seq, int64_t tokens,
                       int64_t write_start)
{
    // Capacity plus exclusive ownership of the write range; evict the
    // most recently admitted sequence while the pool cannot provide it.
    // Evicting a prefix-sharing reader can itself unshare the range, so
    // the condition is re-checked every round.
    if (seq->phase != RequestPhase::kRunning) return;
    while (!kv_->canHoldWrite(seq->request.id, tokens, write_start)) {
        SequenceStatePtr victim = Scheduler::pickVictim(running_);
        RELAX_ICHECK(victim) << "no eviction victim";
        if (victim == seq && running_.size() == 1) {
            RELAX_THROW(RuntimeError)
                << "KV budget (" << kv_->budgetBytes()
                << " bytes) cannot grow the only running sequence to "
                << tokens << " positions";
        }
        evict(victim);
        if (victim == seq) return;
    }
    kv_->reserveWrite(seq->request.id, tokens, write_start);
}

NDArray
Engine::invokeRagged(const std::vector<SequenceStatePtr>& batch,
                     const std::vector<std::vector<int64_t>>& tokens)
{
    std::vector<RequestId> order;
    order.reserve(batch.size());
    int64_t table_width = 1;
    for (const SequenceStatePtr& seq : batch) {
        order.push_back(seq->request.id);
        table_width = std::max(table_width, kv_->pagesOf(seq->request.id));
    }
    // ids, lens, cu_fresh and the block table are the only
    // host-marshalled inputs; cache data stays in the pool
    // (relayoutBytes stays 0 — any future host-side cache copy must be
    // added to that counter).
    std::vector<vm::Value> args;
    args.emplace_back(packedIdsTensor(tokens, machine_->dataMode()));
    args.emplace_back(kv_->lengthsView(order));
    args.emplace_back(cuFreshTensor(tokens));
    args.emplace_back(kv_->blockTableView(order, table_width));
    for (const NDArray& pool : kv_->poolTensors()) args.emplace_back(pool);
    auto out = std::get<vm::TupleValuePtr>(
        machine_->invoke("decode_ragged", withWeights(std::move(args))));
    return std::get<NDArray>(out->fields[0]);
}

bool
Engine::step()
{
    if (!hasPendingWork()) return false;
    double clock_before = machine_->dev().clockUs();

    std::vector<SequenceStatePtr> admitted =
        scheduler_.admit(*kv_, (int64_t)running_.size());
    for (const SequenceStatePtr& seq : admitted) {
        seq->admitSeq = nextAdmitSeq_++;
        running_.push_back(seq);
    }

    // Own every row's write range up front (this may evict, including
    // rows admitted above — phases are re-checked when the batch is
    // built). Admitted rows write their fresh prompt tail starting at
    // the committed (possibly prefix-matched) offset; running rows grow
    // by one decode position.
    std::vector<SequenceStatePtr> members = running_;
    for (const SequenceStatePtr& seq : members) {
        bool is_admitted = std::find(admitted.begin(), admitted.end(),
                                     seq) != admitted.end();
        if (is_admitted) {
            ensureWritable(seq, seq->prefillLength(),
                           kv_->committedTokens(seq->request.id));
        } else {
            ensureWritable(seq, seq->ctxLen + 1, seq->ctxLen);
        }
    }

    // One packed-varlen call per step: prefill chunks and n=1 decode
    // rows ride together — row r owns packed positions [cu[r], cu[r+1]).
    std::vector<SequenceStatePtr> batch;
    std::vector<std::vector<int64_t>> tokens;
    std::vector<bool> is_prefill;
    for (const SequenceStatePtr& seq : running_) {
        if (seq->phase != RequestPhase::kRunning) continue;
        bool admitted_now = std::find(admitted.begin(), admitted.end(),
                                      seq) != admitted.end();
        if (admitted_now) {
            std::vector<int64_t> all = seq->prefillTokens();
            int64_t start = kv_->committedTokens(seq->request.id);
            tokens.emplace_back(all.begin() + start, all.end());
        } else {
            tokens.push_back({seq->generated.back()});
        }
        batch.push_back(seq);
        is_prefill.push_back(admitted_now);
    }
    if (batch.empty()) return false;

    NDArray logits = invokeRagged(batch, tokens);
    ++stats_.decodeBatches; // one packed call per step, by construction
    bool any_prefill =
        std::find(is_prefill.begin(), is_prefill.end(), true) !=
        is_prefill.end();
    if (any_prefill) {
        // Mixed steps move the shape signature (the packed token count
        // changes), so their graph begins/replays are accounted to the
        // prefill counters; the steady-state pure-decode counters keep
        // measuring the replay win.
        ++stats_.prefillBatches;
        stats_.prefillGraphBegins += machine_->lastRunStats().graphBegins;
        stats_.prefillGraphReplays +=
            machine_->lastRunStats().graphReplays;
    } else {
        stats_.decodeGraphBegins += machine_->lastRunStats().graphBegins;
        stats_.decodeGraphReplays +=
            machine_->lastRunStats().graphReplays;
    }

    TraceRecorder& trace = machine_->dev().trace();
    double clock_after = machine_->dev().clockUs();
    int64_t packed_end = 0;
    for (size_t row = 0; row < batch.size(); ++row) {
        const SequenceStatePtr& seq = batch[row];
        int64_t fresh = (int64_t)tokens[row].size();
        packed_end += fresh; // == cu[row + 1]
        if (trace.enabled()) {
            trace.instant(trace_lanes::kEngine, trace_lanes::kRequests,
                          is_prefill[row] ? "prefill" : "decode", "phase",
                          clock_after,
                          {{"request", seq->request.id},
                           {"tokens", fresh}});
        }
        if (is_prefill[row]) {
            seq->ctxLen = seq->prefillLength();
            kv_->commit(seq->request.id, seq->ctxLen);
            seq->stats.prefillTokens += fresh;
            stats_.prefillTokens += fresh;
            // Register the freshly committed page-aligned blocks in the
            // prefix index so later duplicate prompts match them.
            kv_->registerCommitted(seq->request.id, seq->prefillTokens());
        } else {
            seq->ctxLen += 1;
            kv_->commit(seq->request.id, seq->ctxLen);
        }
        appendToken(seq, sampleFor(logits, packed_end - 1));
    }

    ++stats_.steps;
    stats_.busyUs += machine_->dev().clockUs() - clock_before;
    stats_.peakKvBytes = std::max(stats_.peakKvBytes, kv_->peakBytes());

    // Per-step registry sampling (always on: the counters feed the fuzz
    // oracle's cross-checks, the gauges the BENCH_serve.json snapshot).
    metrics_.counter("serve.steps").add();
    metrics_.counter("serve.decode_calls").add();
    metrics_.gauge("kv.used_pages").sample((double)kv_->usedPages());
    metrics_.gauge("kv.free_pages").sample((double)kv_->freePages());
    metrics_.gauge("kv.occupancy")
        .sample(kv_->totalPages() > 0 ? (double)kv_->usedPages() /
                                            (double)kv_->totalPages()
                                      : 0.0);
    metrics_.gauge("serve.running").sample((double)running_.size());
    metrics_.gauge("serve.decode_replay_hit_rate")
        .sample(stats_.decodeReplayHitRate());

    if (trace.enabled()) {
        trace.span(trace_lanes::kEngine, trace_lanes::kSteps, "step",
                   "step", clock_before, clock_after - clock_before,
                   {{"step", stats_.steps - 1},
                    {"rows", (int64_t)batch.size()},
                    {"fresh_tokens", packed_end},
                    {"mixed", (int64_t)(any_prefill ? 1 : 0)}});
        trace.counter(trace_lanes::kEngine, trace_lanes::kKvPool,
                      "kv_pages", clock_after,
                      {{"used", kv_->usedPages()},
                       {"free", kv_->freePages()}});
    }
    return true;
}

const EngineStats&
Engine::run()
{
    while (hasPendingWork()) {
        if (!step()) {
            RELAX_THROW(RuntimeError)
                << "serving stalled: " << scheduler_.waitingCount()
                << " waiting request(s) cannot fit the KV budget ("
                << kv_->budgetBytes() << " bytes)";
        }
    }
    return stats_;
}

std::vector<FinishedRequest>
Engine::collect()
{
    std::sort(finished_.begin(), finished_.end(),
              [](const SequenceStatePtr& a, const SequenceStatePtr& b) {
                  return a->request.id < b->request.id;
              });
    std::vector<FinishedRequest> results;
    results.reserve(finished_.size());
    for (const SequenceStatePtr& seq : finished_) {
        FinishedRequest done;
        done.id = seq->request.id;
        done.promptTokens = seq->request.promptTokens;
        done.outputTokens = seq->generated;
        done.stats = seq->stats;
        results.push_back(std::move(done));
    }
    finished_.clear();
    return results;
}

} // namespace serve
} // namespace relax
