/**
 * @file
 * Engine implementation: the continuous-batching step loop — admission
 * (with prefix-sharing forks), pool-writing prefill grouped by fresh
 * token count, then one page-pool ragged decode call over the whole
 * running batch with copy-on-write and eviction under memory pressure —
 * plus request bookkeeping and the virtual-clock statistics (see
 * engine.h). Cache data never moves on the host: both phases address the
 * persistent pool through the block table, so EngineStats::relayoutBytes
 * stays 0.
 */
#include "serve/engine.h"

#include <algorithm>
#include <map>

namespace relax {
namespace serve {

namespace {

/** Token ids as a data-mode [1, n] i64 tensor. */
NDArray
idsTensor(const std::vector<int64_t>& tokens, bool data_mode)
{
    int64_t n = (int64_t)tokens.size();
    if (!data_mode) return NDArray::metaOnly({1, n}, DataType::i64());
    std::vector<double> values(tokens.begin(), tokens.end());
    return NDArray::fromVector({1, n}, DataType::i64(), std::move(values));
}

} // namespace

Engine::Engine(vm::ExecutablePtr exec,
               std::shared_ptr<device::SimDevice> dev, bool data_mode,
               frontend::LlamaConfig config, std::vector<NDArray> weights,
               EngineOptions options)
    : config_(std::move(config)), options_(options),
      scheduler_(options.scheduler), sampler_(options.sampler),
      weights_(std::move(weights))
{
    machine_ = std::make_unique<vm::VirtualMachine>(std::move(exec),
                                                    std::move(dev),
                                                    data_mode);
    int64_t budget = options_.kvBudgetBytes;
    if (budget <= 0) {
        // Auto budget: what the device has left once weights are resident,
        // with 20% headroom for activations, floored at one block. The
        // pool is allocated up front, so additionally cap the auto size
        // at the addressable envelope: maxBatchSize sequences can never
        // hold more than maxContext positions each (plus a block of
        // rounding slack per slot). Paper-scale configs are far above
        // this; it keeps tiny test configs from materializing gigabyte
        // pools in data mode. An explicit kvBudgetBytes is respected
        // as-is.
        budget = (int64_t)((double)(machine_->dev().spec().vramBytes -
                                    config_.weightBytes()) *
                           0.8);
        int64_t usable = config_.kvBytesPerToken() *
                         (config_.maxContext + options_.kvBlockTokens) *
                         options_.scheduler.maxBatchSize;
        budget = std::min(budget, usable);
    }
    budget = std::max(budget,
                      config_.kvBytesPerToken() * options_.kvBlockTokens);
    kv_ = std::make_unique<KVCacheManager>(config_, *machine_, budget,
                                           options_.kvBlockTokens);
}

std::unique_ptr<Engine>
Engine::build(const frontend::LlamaConfig& config,
              const frontend::CompileOptions& compile_options,
              bool data_mode, EngineOptions options)
{
    frontend::CompileOptions copts = compile_options;
    if (copts.graphBucketTokens == 0) {
        // Align graph-capture buckets with KV pages: the decode
        // signature (b, n=1, table width) then changes only when the
        // batch crosses a bucket class or the longest sequence grows
        // into a new page, so the steps in between replay one captured
        // graph.
        copts.graphBucketTokens = options.kvBlockTokens;
    }
    auto exec = frontend::compile(frontend::buildLlama(config), copts);
    auto dev = std::make_shared<device::SimDevice>(copts.device);
    auto weights = frontend::makeLlamaWeights(config, data_mode);
    return std::make_unique<Engine>(std::move(exec), std::move(dev),
                                    data_mode, config, std::move(weights),
                                    options);
}

RequestId
Engine::addRequest(std::vector<int64_t> prompt, int64_t max_new_tokens,
                   int64_t stop_token, double arrival_us,
                   RequestId fork_of)
{
    RELAX_ICHECK(!prompt.empty()) << "empty prompt";
    RELAX_ICHECK(max_new_tokens >= 1) << "maxNewTokens must be >= 1";
    if ((int64_t)prompt.size() > config_.maxContext) {
        // Reject at submission: the pool is sized to the model's context
        // window, so an over-long prompt could never be admitted and
        // would otherwise surface later as a confusing stall.
        RELAX_THROW(RuntimeError)
            << "prompt of " << prompt.size()
            << " tokens exceeds the model context window ("
            << config_.maxContext << ")";
    }
    auto seq = std::make_shared<SequenceState>();
    seq->request.id = nextId_++;
    seq->request.promptTokens = std::move(prompt);
    seq->request.maxNewTokens = max_new_tokens;
    seq->request.stopToken = stop_token;
    seq->stats.arrivalUs =
        arrival_us >= 0 ? arrival_us : machine_->dev().clockUs();
    if (fork_of >= 0) {
        RELAX_ICHECK(fork_of < seq->request.id)
            << "fork_of " << fork_of << " never existed";
        // Sharing is best-effort: a parent that has already been
        // collected simply yields a full prefill (its pages are gone
        // anyway), matching the degraded path for finished/evicted
        // parents.
        auto parent = byId_.find(fork_of);
        if (parent != byId_.end()) seq->forkOf = parent->second;
    }
    RequestId id = seq->request.id;
    byId_[id] = seq;
    scheduler_.enqueue(std::move(seq));
    return id;
}

bool
Engine::hasPendingWork() const
{
    return scheduler_.hasWaiting() || !running_.empty();
}

std::vector<vm::Value>
Engine::withWeights(std::vector<vm::Value> args) const
{
    args.reserve(args.size() + weights_.size());
    for (const NDArray& w : weights_) args.emplace_back(w);
    return args;
}

int64_t
Engine::sampleFor(const NDArray& logits, int64_t row)
{
    if (machine_->dataMode()) return sampler_.sample(logits, row);
    return sampler_.sampleSynthetic(config_.vocabSize);
}

void
Engine::appendToken(const SequenceStatePtr& seq, int64_t token)
{
    seq->generated.push_back(token);
    ++seq->stats.generatedTokens;
    ++stats_.tokensGenerated;
    if (seq->stats.firstTokenUs < 0) {
        seq->stats.firstTokenUs = machine_->dev().clockUs();
    }
    // Done by budget/stop token, or the cache hit the trained context
    // window and cannot grow another position.
    if (seq->done() || seq->ctxLen >= config_.maxContext) {
        finishSequence(seq);
    }
}

void
Engine::finishSequence(const SequenceStatePtr& seq)
{
    seq->phase = RequestPhase::kFinished;
    seq->stats.finishUs = machine_->dev().clockUs();
    kv_->release(seq->request.id);
    running_.erase(std::find(running_.begin(), running_.end(), seq));
    finished_.push_back(seq);
    ++stats_.requestsFinished;
    stats_.ttftSumUs += seq->stats.ttftUs();
}

void
Engine::evict(const SequenceStatePtr& victim)
{
    victim->ctxLen = 0;
    kv_->release(victim->request.id);
    running_.erase(std::find(running_.begin(), running_.end(), victim));
    ++victim->stats.preemptions;
    ++stats_.evictions;
    // Back of the queue: generated tokens ride along and are re-prefilled
    // on re-admission (re-forking a still-resident parent prefix), so the
    // output stream resumes where it stopped.
    scheduler_.enqueue(victim);
}

void
Engine::ensureWritable(const SequenceStatePtr& seq, int64_t tokens,
                       int64_t write_start)
{
    // Capacity plus exclusive ownership of the write range; evict the
    // most recently admitted sequence while the pool cannot provide it.
    // Evicting a prefix-sharing reader can itself unshare the range, so
    // the condition is re-checked every round.
    if (seq->phase != RequestPhase::kRunning) return;
    while (!kv_->canHoldWrite(seq->request.id, tokens, write_start)) {
        SequenceStatePtr victim = Scheduler::pickVictim(running_);
        RELAX_ICHECK(victim) << "no eviction victim";
        if (victim == seq && running_.size() == 1) {
            RELAX_THROW(RuntimeError)
                << "KV budget (" << kv_->budgetBytes()
                << " bytes) cannot grow the only running sequence to "
                << tokens << " positions";
        }
        evict(victim);
        if (victim == seq) return;
    }
    kv_->reserveWrite(seq->request.id, tokens, write_start);
}

NDArray
Engine::invokeRagged(const std::vector<SequenceStatePtr>& batch,
                     const std::vector<std::vector<int64_t>>& tokens)
{
    std::vector<NDArray> ids_rows;
    std::vector<RequestId> order;
    ids_rows.reserve(batch.size());
    order.reserve(batch.size());
    int64_t table_width = 1;
    for (size_t row = 0; row < batch.size(); ++row) {
        ids_rows.push_back(
            idsTensor(tokens[row], machine_->dataMode()));
        order.push_back(batch[row]->request.id);
        table_width =
            std::max(table_width, kv_->pagesOf(batch[row]->request.id));
    }
    // ids, lens and the block table are the only host-marshalled inputs;
    // cache data stays in the pool (relayoutBytes stays 0 — any future
    // host-side cache copy must be added to that counter).
    std::vector<vm::Value> args;
    args.emplace_back(frontend::stackBatch(ids_rows));
    args.emplace_back(kv_->lengthsView(order));
    args.emplace_back(kv_->blockTableView(order, table_width));
    for (const NDArray& pool : kv_->poolTensors()) args.emplace_back(pool);
    auto out = std::get<vm::TupleValuePtr>(
        machine_->invoke("decode_ragged", withWeights(std::move(args))));
    return std::get<NDArray>(out->fields[0]);
}

void
Engine::prefillSequences(std::vector<SequenceStatePtr> seqs)
{
    // One pool-writing prefill call per fresh-token count (the compiled
    // function requires a rectangular [b, n] id tensor). A forked
    // sequence starts at its shared committed offset, so its fresh count
    // is only the unshared prompt tail.
    std::map<int64_t, std::vector<SequenceStatePtr>> by_fresh;
    for (SequenceStatePtr& seq : seqs) {
        int64_t fresh =
            seq->prefillLength() - kv_->committedTokens(seq->request.id);
        by_fresh[fresh].push_back(std::move(seq));
    }
    for (auto& [fresh, group] : by_fresh) {
        // Own the write range (copy-on-write for a shared partial page);
        // may evict under pressure, so re-filter the group.
        for (const SequenceStatePtr& seq : group) {
            ensureWritable(seq, seq->prefillLength(),
                           kv_->committedTokens(seq->request.id));
        }
        std::vector<SequenceStatePtr> batch;
        std::vector<std::vector<int64_t>> tokens;
        for (const SequenceStatePtr& seq : group) {
            if (seq->phase != RequestPhase::kRunning) continue;
            std::vector<int64_t> all = seq->prefillTokens();
            int64_t start = kv_->committedTokens(seq->request.id);
            tokens.emplace_back(all.begin() + start, all.end());
            batch.push_back(seq);
        }
        if (batch.empty()) continue;

        NDArray logits = invokeRagged(batch, tokens);
        ++stats_.prefillBatches;
        stats_.prefillTokens += fresh * (int64_t)batch.size();
        stats_.prefillGraphBegins += machine_->lastRunStats().graphBegins;
        stats_.prefillGraphReplays +=
            machine_->lastRunStats().graphReplays;

        for (size_t row = 0; row < batch.size(); ++row) {
            const SequenceStatePtr& seq = batch[row];
            seq->ctxLen = seq->prefillLength();
            kv_->commit(seq->request.id, seq->ctxLen);
            seq->stats.prefillTokens += fresh;
            appendToken(seq, sampleFor(logits, (int64_t)row));
        }
    }
}

void
Engine::decodeRunning()
{
    // No grouping and no relayout: one decode_ragged call covers every
    // running sequence, whatever its context length, against the shared
    // page pool. Reserve the +1 growth (and copy-on-write any page
    // shared with a forked sibling) first — this may evict.
    std::vector<SequenceStatePtr> members = running_;
    for (const SequenceStatePtr& seq : members) {
        ensureWritable(seq, seq->ctxLen + 1, seq->ctxLen);
    }
    std::vector<SequenceStatePtr> batch;
    std::vector<std::vector<int64_t>> tokens;
    for (const SequenceStatePtr& seq : running_) {
        if (seq->phase != RequestPhase::kRunning) continue;
        batch.push_back(seq);
        tokens.push_back({seq->generated.back()});
    }
    if (batch.empty()) return;

    NDArray logits = invokeRagged(batch, tokens);
    ++stats_.decodeBatches;
    stats_.decodeGraphBegins += machine_->lastRunStats().graphBegins;
    stats_.decodeGraphReplays += machine_->lastRunStats().graphReplays;

    for (size_t row = 0; row < batch.size(); ++row) {
        const SequenceStatePtr& seq = batch[row];
        seq->ctxLen += 1;
        kv_->commit(seq->request.id, seq->ctxLen);
        appendToken(seq, sampleFor(logits, (int64_t)row));
    }
}

bool
Engine::step()
{
    if (!hasPendingWork()) return false;
    double clock_before = machine_->dev().clockUs();
    bool did_work = false;

    std::vector<SequenceStatePtr> admitted =
        scheduler_.admit(*kv_, (int64_t)running_.size());
    for (const SequenceStatePtr& seq : admitted) {
        seq->admitSeq = nextAdmitSeq_++;
        running_.push_back(seq);
    }
    if (!admitted.empty()) {
        prefillSequences(admitted);
        did_work = true;
    }
    if (!running_.empty()) {
        decodeRunning();
        did_work = true;
    }

    if (did_work) {
        ++stats_.steps;
        stats_.busyUs += machine_->dev().clockUs() - clock_before;
        stats_.peakKvBytes =
            std::max(stats_.peakKvBytes, kv_->peakBytes());
    }
    return did_work;
}

const EngineStats&
Engine::run()
{
    while (hasPendingWork()) {
        if (!step()) {
            RELAX_THROW(RuntimeError)
                << "serving stalled: " << scheduler_.waitingCount()
                << " waiting request(s) cannot fit the KV budget ("
                << kv_->budgetBytes() << " bytes)";
        }
    }
    return stats_;
}

std::vector<FinishedRequest>
Engine::collect()
{
    std::sort(finished_.begin(), finished_.end(),
              [](const SequenceStatePtr& a, const SequenceStatePtr& b) {
                  return a->request.id < b->request.id;
              });
    std::vector<FinishedRequest> results;
    results.reserve(finished_.size());
    for (const SequenceStatePtr& seq : finished_) {
        FinishedRequest done;
        done.id = seq->request.id;
        done.promptTokens = seq->request.promptTokens;
        done.outputTokens = seq->generated;
        done.stats = seq->stats;
        byId_.erase(seq->request.id);
        results.push_back(std::move(done));
    }
    finished_.clear();
    return results;
}

} // namespace serve
} // namespace relax
