/**
 * @file
 * Engine implementation: the continuous-batching step loop — admission,
 * length-grouped batched prefill, then one ragged paged-attention decode
 * call over the whole running batch (or legacy equal-context-grouped
 * decode calls) with eviction under memory pressure — plus request
 * bookkeeping and the virtual-clock statistics (see engine.h).
 */
#include "serve/engine.h"

#include <algorithm>
#include <map>

namespace relax {
namespace serve {

namespace {

/** Token ids as a data-mode [1, n] i64 tensor. */
NDArray
idsTensor(const std::vector<int64_t>& tokens, bool data_mode)
{
    int64_t n = (int64_t)tokens.size();
    if (!data_mode) return NDArray::metaOnly({1, n}, DataType::i64());
    std::vector<double> values(tokens.begin(), tokens.end());
    return NDArray::fromVector({1, n}, DataType::i64(), std::move(values));
}

} // namespace

Engine::Engine(vm::ExecutablePtr exec,
               std::shared_ptr<device::SimDevice> dev, bool data_mode,
               frontend::LlamaConfig config, std::vector<NDArray> weights,
               EngineOptions options)
    : config_(std::move(config)), options_(options),
      scheduler_(options.scheduler), sampler_(options.sampler),
      weights_(std::move(weights))
{
    machine_ = std::make_unique<vm::VirtualMachine>(std::move(exec),
                                                    std::move(dev),
                                                    data_mode);
    int64_t budget = options_.kvBudgetBytes;
    if (budget <= 0) {
        // Auto budget: what the device has left once weights are resident,
        // with 20% headroom for activations, floored at one block.
        budget = (int64_t)((double)(machine_->dev().spec().vramBytes -
                                    config_.weightBytes()) *
                           0.8);
    }
    budget = std::max(budget,
                      config_.kvBytesPerToken() * options_.kvBlockTokens);
    kv_ = std::make_unique<KVCacheManager>(config_, *machine_, budget,
                                           options_.kvBlockTokens);
}

std::unique_ptr<Engine>
Engine::build(const frontend::LlamaConfig& config,
              const frontend::CompileOptions& compile_options,
              bool data_mode, EngineOptions options)
{
    frontend::CompileOptions copts = compile_options;
    if (copts.graphBucketTokens == 0) {
        // Align graph-capture buckets with KV pages: a decode group's
        // signature then changes only when it grows into a new block,
        // so the steps in between replay one captured graph.
        copts.graphBucketTokens = options.kvBlockTokens;
    }
    auto exec = frontend::compile(frontend::buildLlama(config), copts);
    auto dev = std::make_shared<device::SimDevice>(copts.device);
    auto weights = frontend::makeLlamaWeights(config, data_mode);
    return std::make_unique<Engine>(std::move(exec), std::move(dev),
                                    data_mode, config, std::move(weights),
                                    options);
}

RequestId
Engine::addRequest(std::vector<int64_t> prompt, int64_t max_new_tokens,
                   int64_t stop_token, double arrival_us)
{
    RELAX_ICHECK(!prompt.empty()) << "empty prompt";
    RELAX_ICHECK(max_new_tokens >= 1) << "maxNewTokens must be >= 1";
    auto seq = std::make_shared<SequenceState>();
    seq->request.id = nextId_++;
    seq->request.promptTokens = std::move(prompt);
    seq->request.maxNewTokens = max_new_tokens;
    seq->request.stopToken = stop_token;
    seq->stats.arrivalUs =
        arrival_us >= 0 ? arrival_us : machine_->dev().clockUs();
    RequestId id = seq->request.id;
    scheduler_.enqueue(std::move(seq));
    return id;
}

bool
Engine::hasPendingWork() const
{
    return scheduler_.hasWaiting() || !running_.empty();
}

std::vector<vm::Value>
Engine::withWeights(std::vector<vm::Value> args) const
{
    args.reserve(args.size() + weights_.size());
    for (const NDArray& w : weights_) args.emplace_back(w);
    return args;
}

int64_t
Engine::sampleFor(const NDArray& logits, int64_t row)
{
    if (machine_->dataMode()) return sampler_.sample(logits, row);
    return sampler_.sampleSynthetic(config_.vocabSize);
}

void
Engine::appendToken(const SequenceStatePtr& seq, int64_t token)
{
    seq->generated.push_back(token);
    ++seq->stats.generatedTokens;
    ++stats_.tokensGenerated;
    if (seq->stats.firstTokenUs < 0) {
        seq->stats.firstTokenUs = machine_->dev().clockUs();
    }
    // Done by budget/stop token, or the cache hit the trained context
    // window and cannot grow another position.
    if (seq->done() || seq->ctxLen >= config_.maxContext) {
        finishSequence(seq);
    }
}

void
Engine::finishSequence(const SequenceStatePtr& seq)
{
    seq->phase = RequestPhase::kFinished;
    seq->stats.finishUs = machine_->dev().clockUs();
    seq->caches.clear();
    kv_->release(seq->request.id);
    running_.erase(std::find(running_.begin(), running_.end(), seq));
    finished_.push_back(seq);
    ++stats_.requestsFinished;
    stats_.ttftSumUs += seq->stats.ttftUs();
}

void
Engine::evict(const SequenceStatePtr& victim)
{
    victim->caches.clear();
    victim->ctxLen = 0;
    kv_->release(victim->request.id);
    running_.erase(std::find(running_.begin(), running_.end(), victim));
    ++victim->stats.preemptions;
    ++stats_.evictions;
    // Back of the queue: generated tokens ride along and are re-prefilled
    // on re-admission, so the output stream resumes where it stopped.
    scheduler_.enqueue(victim);
}

void
Engine::prefillSequences(std::vector<SequenceStatePtr> seqs)
{
    // One symbolic-batch prefill call per prompt length (the compiled
    // function requires a rectangular [b, n] id tensor).
    std::map<int64_t, std::vector<SequenceStatePtr>> by_length;
    for (SequenceStatePtr& seq : seqs) {
        by_length[seq->prefillLength()].push_back(std::move(seq));
    }
    for (auto& [length, group] : by_length) {
        std::vector<NDArray> ids_rows;
        ids_rows.reserve(group.size());
        for (const SequenceStatePtr& seq : group) {
            ids_rows.push_back(
                idsTensor(seq->prefillTokens(), machine_->dataMode()));
        }
        auto out = std::get<vm::TupleValuePtr>(machine_->invoke(
            "prefill", withWeights({frontend::stackBatch(ids_rows)})));
        ++stats_.prefillBatches;
        stats_.prefillTokens += length * (int64_t)group.size();
        stats_.prefillGraphBegins += machine_->lastRunStats().graphBegins;
        stats_.prefillGraphReplays +=
            machine_->lastRunStats().graphReplays;

        const NDArray& logits = std::get<NDArray>(out->fields[0]);
        size_t num_caches = out->fields.size() - 1;
        std::vector<std::vector<NDArray>> split_caches(num_caches);
        for (size_t c = 0; c < num_caches; ++c) {
            split_caches[c] = frontend::splitBatch(
                std::get<NDArray>(out->fields[1 + c]));
        }
        for (size_t row = 0; row < group.size(); ++row) {
            const SequenceStatePtr& seq = group[row];
            seq->caches.resize(num_caches);
            for (size_t c = 0; c < num_caches; ++c) {
                seq->caches[c] = split_caches[c][row];
            }
            seq->ctxLen = length;
            kv_->commit(seq->request.id, length);
            seq->stats.prefillTokens += length;
            appendToken(seq, sampleFor(logits, (int64_t)row));
        }
    }
}

void
Engine::decodeRunning()
{
    if (options_.decodeMode == DecodeMode::kRagged) {
        decodeRagged();
    } else {
        decodeGrouped();
    }
}

void
Engine::reserveGrowth(const SequenceStatePtr& seq)
{
    // Reserve the +1 growth, evicting the most recently admitted
    // sequence while the budget cannot hold it.
    if (seq->phase != RequestPhase::kRunning) return;
    int64_t ctx = seq->ctxLen;
    while (!kv_->canHold(seq->request.id, ctx + 1)) {
        SequenceStatePtr victim = Scheduler::pickVictim(running_);
        RELAX_ICHECK(victim) << "no eviction victim";
        if (victim == seq && running_.size() == 1) {
            RELAX_THROW(RuntimeError)
                << "KV budget (" << kv_->budgetBytes()
                << " bytes) cannot grow the only running sequence past "
                << ctx << " positions";
        }
        evict(victim);
        if (victim == seq) break;
    }
    if (seq->phase != RequestPhase::kRunning) return;
    kv_->reserve(seq->request.id, ctx + 1);
}

void
Engine::decodeRagged()
{
    // No grouping: one decode_ragged call covers every running sequence,
    // whatever its context length. Reserve growth first (may evict).
    std::vector<SequenceStatePtr> members = running_;
    for (const SequenceStatePtr& seq : members) {
        reserveGrowth(seq);
    }
    std::vector<SequenceStatePtr> batch;
    for (const SequenceStatePtr& seq : running_) {
        if (seq->phase == RequestPhase::kRunning) batch.push_back(seq);
    }
    if (batch.empty()) return;

    // Pad the shared cache length to the KV-block ceiling of the largest
    // post-append context, so the shape signature (b, m, w) moves only at
    // block boundaries and bucketed graph replay keeps hitting.
    int64_t max_needed = 0;
    for (const SequenceStatePtr& seq : batch) {
        max_needed = std::max(max_needed, seq->ctxLen + 1);
    }
    int64_t block = options_.kvBlockTokens;
    int64_t padded = (max_needed + block - 1) / block * block;
    int64_t table_width = padded / block;

    std::vector<vm::Value> args;
    std::vector<NDArray> ids_rows;
    std::vector<RequestId> order;
    ids_rows.reserve(batch.size());
    order.reserve(batch.size());
    for (const SequenceStatePtr& seq : batch) {
        ids_rows.push_back(
            idsTensor({seq->generated.back()}, machine_->dataMode()));
        order.push_back(seq->request.id);
    }
    args.emplace_back(frontend::stackBatch(ids_rows));
    args.emplace_back(kv_->lengthsView(order));
    args.emplace_back(kv_->blockTableView(order, table_width));
    size_t num_caches = batch.front()->caches.size();
    for (size_t c = 0; c < num_caches; ++c) {
        std::vector<NDArray> parts;
        parts.reserve(batch.size());
        for (const SequenceStatePtr& seq : batch) {
            parts.push_back(seq->caches[c]);
        }
        args.emplace_back(frontend::stackBatchPadded(parts, padded));
    }
    auto out = std::get<vm::TupleValuePtr>(
        machine_->invoke("decode_ragged", withWeights(std::move(args))));
    ++stats_.decodeBatches;
    stats_.decodeGraphBegins += machine_->lastRunStats().graphBegins;
    stats_.decodeGraphReplays += machine_->lastRunStats().graphReplays;

    const NDArray& logits = std::get<NDArray>(out->fields[0]);
    std::vector<int64_t> new_lengths;
    new_lengths.reserve(batch.size());
    for (const SequenceStatePtr& seq : batch) {
        new_lengths.push_back(seq->ctxLen + 1);
    }
    std::vector<std::vector<NDArray>> split_caches(num_caches);
    for (size_t c = 0; c < num_caches; ++c) {
        split_caches[c] = frontend::splitBatchTrimmed(
            std::get<NDArray>(out->fields[1 + c]), new_lengths);
    }
    for (size_t row = 0; row < batch.size(); ++row) {
        const SequenceStatePtr& seq = batch[row];
        for (size_t c = 0; c < num_caches; ++c) {
            seq->caches[c] = split_caches[c][row];
        }
        seq->ctxLen += 1;
        kv_->commit(seq->request.id, seq->ctxLen);
        appendToken(seq, sampleFor(logits, (int64_t)row));
    }
}

void
Engine::decodeGrouped()
{
    // Group running sequences by context length: each group is one
    // batched decode call over the shared symbolic (b, m).
    std::map<int64_t, std::vector<SequenceStatePtr>> by_ctx;
    for (const SequenceStatePtr& seq : running_) {
        by_ctx[seq->ctxLen].push_back(seq);
    }
    for (auto& [ctx, members] : by_ctx) {
        for (const SequenceStatePtr& seq : members) {
            reserveGrowth(seq);
        }
        std::vector<SequenceStatePtr> batch;
        for (const SequenceStatePtr& seq : members) {
            if (seq->phase == RequestPhase::kRunning) batch.push_back(seq);
        }
        if (batch.empty()) continue;

        std::vector<vm::Value> args;
        std::vector<NDArray> ids_rows;
        ids_rows.reserve(batch.size());
        for (const SequenceStatePtr& seq : batch) {
            ids_rows.push_back(
                idsTensor({seq->generated.back()}, machine_->dataMode()));
        }
        args.emplace_back(frontend::stackBatch(ids_rows));
        size_t num_caches = batch.front()->caches.size();
        for (size_t c = 0; c < num_caches; ++c) {
            std::vector<NDArray> parts;
            parts.reserve(batch.size());
            for (const SequenceStatePtr& seq : batch) {
                parts.push_back(seq->caches[c]);
            }
            args.emplace_back(frontend::stackBatch(parts));
        }
        auto out = std::get<vm::TupleValuePtr>(
            machine_->invoke("decode", withWeights(std::move(args))));
        ++stats_.decodeBatches;
        stats_.decodeGraphBegins += machine_->lastRunStats().graphBegins;
        stats_.decodeGraphReplays +=
            machine_->lastRunStats().graphReplays;

        const NDArray& logits = std::get<NDArray>(out->fields[0]);
        std::vector<std::vector<NDArray>> split_caches(num_caches);
        for (size_t c = 0; c < num_caches; ++c) {
            split_caches[c] = frontend::splitBatch(
                std::get<NDArray>(out->fields[1 + c]));
        }
        for (size_t row = 0; row < batch.size(); ++row) {
            const SequenceStatePtr& seq = batch[row];
            for (size_t c = 0; c < num_caches; ++c) {
                seq->caches[c] = split_caches[c][row];
            }
            seq->ctxLen = ctx + 1;
            kv_->commit(seq->request.id, seq->ctxLen);
            appendToken(seq, sampleFor(logits, (int64_t)row));
        }
    }
}

bool
Engine::step()
{
    if (!hasPendingWork()) return false;
    double clock_before = machine_->dev().clockUs();
    bool did_work = false;

    std::vector<SequenceStatePtr> admitted =
        scheduler_.admit(*kv_, (int64_t)running_.size());
    for (const SequenceStatePtr& seq : admitted) {
        seq->admitSeq = nextAdmitSeq_++;
        running_.push_back(seq);
    }
    if (!admitted.empty()) {
        prefillSequences(admitted);
        did_work = true;
    }
    if (!running_.empty()) {
        decodeRunning();
        did_work = true;
    }

    if (did_work) {
        ++stats_.steps;
        stats_.busyUs += machine_->dev().clockUs() - clock_before;
        stats_.peakKvBytes =
            std::max(stats_.peakKvBytes, kv_->peakBytes());
    }
    return did_work;
}

const EngineStats&
Engine::run()
{
    while (hasPendingWork()) {
        if (!step()) {
            RELAX_THROW(RuntimeError)
                << "serving stalled: " << scheduler_.waitingCount()
                << " waiting request(s) cannot fit the KV budget ("
                << kv_->budgetBytes() << " bytes)";
        }
    }
    return stats_;
}

std::vector<FinishedRequest>
Engine::collect()
{
    std::sort(finished_.begin(), finished_.end(),
              [](const SequenceStatePtr& a, const SequenceStatePtr& b) {
                  return a->request.id < b->request.id;
              });
    std::vector<FinishedRequest> results;
    results.reserve(finished_.size());
    for (const SequenceStatePtr& seq : finished_) {
        FinishedRequest done;
        done.id = seq->request.id;
        done.promptTokens = seq->request.promptTokens;
        done.outputTokens = seq->generated;
        done.stats = seq->stats;
        results.push_back(std::move(done));
    }
    finished_.clear();
    return results;
}

} // namespace serve
} // namespace relax
