/**
 * @file
 * Engine implementation: the continuous-batching step loop — admission
 * (with automatic prefix matching against the KV manager's block-hash
 * index), then ONE packed-varlen page-pool call per step in which newly
 * admitted rows prefill their fresh prompt tails and running rows decode
 * one token each, with copy-on-write and eviction under memory pressure —
 * plus request bookkeeping and the virtual-clock statistics (see
 * engine.h). Cache data never moves on the host: every phase addresses
 * the persistent pool through the block table, so
 * EngineStats::relayoutBytes stays 0.
 */
#include "serve/engine.h"

#include <algorithm>

#include "passes/alias_analysis.h"

namespace relax {
namespace serve {

namespace {

/** Per-row fresh tokens packed into one flat [1, total] i64 tensor. */
NDArray
packedIdsTensor(const std::vector<std::vector<int64_t>>& tokens,
                bool data_mode)
{
    int64_t total = 0;
    for (const auto& row : tokens) total += (int64_t)row.size();
    if (!data_mode) return NDArray::metaOnly({1, total}, DataType::i64());
    std::vector<double> values;
    values.reserve((size_t)total);
    for (const auto& row : tokens) {
        values.insert(values.end(), row.begin(), row.end());
    }
    return NDArray::fromVector({1, total}, DataType::i64(),
                               std::move(values));
}

/** Cumulative fresh offsets cu_fresh [b+1] (always host data: the
 *  library cost model sums per-row fresh counts from it). */
NDArray
cuFreshTensor(const std::vector<std::vector<int64_t>>& tokens)
{
    std::vector<double> cu;
    cu.reserve(tokens.size() + 1);
    double running = 0.0;
    cu.push_back(0.0);
    for (const auto& row : tokens) {
        running += (double)row.size();
        cu.push_back(running);
    }
    return NDArray::fromVector({(int64_t)tokens.size() + 1},
                               DataType::i64(), std::move(cu));
}

/** The draft KV pool is sized to the full addressable envelope — every
 *  batch slot at the draft's context ceiling plus a block of rounding
 *  slack — so draft reservations can never exhaust it (the draft must
 *  never trigger evictions of its own). */
int64_t
draftPoolBytes(const SpeculationOptions& spec, const EngineOptions& opts)
{
    return spec.draftConfig.kvBytesPerToken() *
           (spec.draftConfig.maxContext + opts.kvBlockTokens) *
           opts.scheduler.maxBatchSize;
}

} // namespace

Engine::Engine(vm::ExecutablePtr exec,
               std::shared_ptr<device::SimDevice> dev, bool data_mode,
               frontend::LlamaConfig config, std::vector<NDArray> weights,
               EngineOptions options,
               std::shared_ptr<device::DeviceGroup> group)
    : config_(std::move(config)), options_(options),
      group_(std::move(group)), scheduler_(options.scheduler),
      sampler_(options.sampler), weights_(std::move(weights)),
      draftSampler_(options.sampler)
{
    if (group_ && group_->size() <= 1) group_.reset();
    if (group_) {
        RELAX_ICHECK(dev == group_->devicePtr(0))
            << "tensor-parallel engine must run on the group's device 0";
    }
    // Memory-plan observability: the compiler's plan for the serving
    // functions is static, so its footprint is sampled once here (the
    // Table 2 "activation memory" figure is plan.total_bytes of the
    // decode path; in-place rewrites are what keep it flat).
    {
        passes::MemoryPlanReport plan = passes::memoryPlanReport(
            exec->module);
        metrics_.gauge("plan.storages")
            .sample((double)plan.storagesAllocated);
        metrics_.gauge("plan.total_bytes")
            .sample((double)plan.bytesAllocated);
        metrics_.gauge("plan.reuse_hits").sample((double)plan.reuseHits);
        metrics_.gauge("plan.bytes_reused")
            .sample((double)plan.bytesReused);
        metrics_.gauge("plan.inplace_rewrites")
            .sample((double)plan.inplaceWrites);
    }
    machine_ = std::make_unique<vm::VirtualMachine>(exec, std::move(dev),
                                                    data_mode);
    if (group_) {
        // Rank 0 is machine_; ranks 1..N-1 get their own VM on their own
        // device, all sharing ONE ShardPass'd executable (the split is
        // uniform, so one compiled program serves every shard) — which
        // is also what invokeLockstep requires. Each rank holds its
        // Megatron slice of the full weights; replicated tensors share
        // storage by handle.
        int n = group_->size();
        for (int s = 1; s < n; ++s) {
            shardMachines_.push_back(std::make_unique<vm::VirtualMachine>(
                exec, group_->devicePtr(s), data_mode));
        }
        shardWeights_.reserve((size_t)n);
        for (int s = 0; s < n; ++s) {
            shardWeights_.push_back(
                frontend::shardLlamaWeights(config_, weights_, s, n));
        }
    }
    int64_t budget = options_.kvBudgetBytes;
    if (budget <= 0) {
        // Auto budget: what the device has left once weights are resident,
        // with 20% headroom for activations, floored at one block. The
        // pool is allocated up front, so additionally cap the auto size
        // at the addressable envelope: maxBatchSize sequences can never
        // hold more than maxContext positions each (plus a block of
        // rounding slack per slot). Paper-scale configs are far above
        // this; it keeps tiny test configs from materializing gigabyte
        // pools in data mode. An explicit kvBudgetBytes is respected
        // as-is. With speculation configured, the draft model's weights
        // and pool envelope come off the top first.
        int64_t resident = config_.weightBytes();
        if (options_.speculation.draftTokens > 0) {
            resident += options_.speculation.draftConfig.weightBytes() +
                        draftPoolBytes(options_.speculation, options_);
        }
        budget = (int64_t)((double)(machine_->dev().spec().vramBytes -
                                    resident) *
                           0.8);
        int64_t usable = config_.kvBytesPerToken() *
                         (config_.maxContext + options_.kvBlockTokens) *
                         options_.scheduler.maxBatchSize;
        budget = std::min(budget, usable);
    }
    budget = std::max(budget,
                      config_.kvBytesPerToken() * options_.kvBlockTokens);
    // The budget formula above is the tp=1 formula in LOGICAL full-model
    // bytes regardless of sharding — the KV manager divides residency
    // per shard internally, so admission decisions (and therefore the
    // token streams) are identical at every tensorParallel.
    std::vector<vm::VirtualMachine*> kv_shards;
    if (group_) {
        kv_shards.push_back(machine_.get());
        for (auto& shard : shardMachines_) kv_shards.push_back(shard.get());
    }
    kv_ = std::make_unique<KVCacheManager>(config_, *machine_, budget,
                                           options_.kvBlockTokens,
                                           kv_shards);
    // One observability spine: the KV manager mirrors its event tallies
    // into the engine's registry, and the scheduler stamps lifecycle
    // instants with the device clock + TraceRecorder.
    kv_->setMetrics(&metrics_);
    scheduler_.attachDevice(&machine_->dev());
}

std::unique_ptr<Engine>
Engine::build(const frontend::LlamaConfig& config,
              const frontend::CompileOptions& compile_options,
              bool data_mode, EngineOptions options)
{
    frontend::CompileOptions copts = compile_options;
    if (copts.graphBucketTokens == 0) {
        // Align graph-capture buckets with KV pages: the decode
        // signature (b, n=1, table width) then changes only when the
        // batch crosses a bucket class or the longest sequence grows
        // into a new page, so the steps in between replay one captured
        // graph.
        copts.graphBucketTokens = options.kvBlockTokens;
    }
    std::shared_ptr<device::DeviceGroup> group;
    if (options.tensorParallel > 1) {
        // ShardPass rewrites decode_ragged into the per-shard program;
        // the engine runs it across an N-device group in lockstep.
        copts.tensorParallel = options.tensorParallel;
        group = std::make_shared<device::DeviceGroup>(
            copts.device, (int)options.tensorParallel,
            device::interconnectByName(options.interconnect));
    }
    auto exec = frontend::compile(frontend::buildLlama(config), copts);
    auto dev = group ? group->devicePtr(0)
                     : std::make_shared<device::SimDevice>(copts.device);
    auto weights = frontend::makeLlamaWeights(config, data_mode);
    auto engine = std::make_unique<Engine>(std::move(exec), std::move(dev),
                                           data_mode, config,
                                           std::move(weights), options,
                                           std::move(group));
    if (options.speculation.draftTokens > 0) {
        // The draft compiles under the same options (device, bounds,
        // bucket): its verify-free n=1 decode reuses the exact symbolic
        // machinery, just over a smaller config. It is never sharded —
        // it runs single-VM on the group's device 0, and any clock skew
        // merges at the target's next collective barrier.
        const frontend::LlamaConfig& dconfig =
            options.speculation.draftConfig;
        frontend::CompileOptions draft_copts = copts;
        draft_copts.tensorParallel = 1;
        auto dexec =
            frontend::compile(frontend::buildLlama(dconfig), draft_copts);
        engine->enableSpeculation(
            std::move(dexec),
            frontend::makeLlamaWeights(dconfig, data_mode,
                                       options.speculation.draftWeightSeed));
    }
    return engine;
}

void
Engine::enableSpeculation(vm::ExecutablePtr draft_exec,
                          std::vector<NDArray> draft_weights)
{
    const SpeculationOptions& spec = options_.speculation;
    RELAX_ICHECK(spec.draftTokens > 0)
        << "enableSpeculation: options.speculation.draftTokens must be "
           "positive at engine construction (the KV budget accounts for "
           "the draft footprint there)";
    RELAX_ICHECK(!draftMachine_) << "draft model already attached";
    RELAX_ICHECK(spec.draftConfig.vocabSize == config_.vocabSize)
        << "draft vocabulary (" << spec.draftConfig.vocabSize
        << ") must match the target's (" << config_.vocabSize
        << "): token ids cross between the two models";
    RELAX_ICHECK(spec.draftConfig.maxContext >= config_.maxContext)
        << "draft context window (" << spec.draftConfig.maxContext
        << ") must cover the target's (" << config_.maxContext << ")";
    draftMachine_ = std::make_unique<vm::VirtualMachine>(
        std::move(draft_exec), machine_->devPtr(), machine_->dataMode());
    // Namespace the draft's captured graphs: graph ids restart per
    // executable, so without this a draft region could replay a graph
    // the target captured on the shared device.
    draftMachine_->setGraphKeyspace("draft");
    draftKv_ = std::make_unique<KVCacheManager>(
        spec.draftConfig, *draftMachine_, draftPoolBytes(spec, options_),
        options_.kvBlockTokens);
    draftKv_->setMetrics(&metrics_);
    draftWeights_ = std::move(draft_weights);
}

RequestId
Engine::addRequest(std::vector<int64_t> prompt, int64_t max_new_tokens,
                   int64_t stop_token, double arrival_us)
{
    RELAX_ICHECK(!prompt.empty()) << "empty prompt";
    RELAX_ICHECK(max_new_tokens >= 1) << "maxNewTokens must be >= 1";
    if ((int64_t)prompt.size() > config_.maxContext) {
        // Reject at submission: the pool is sized to the model's context
        // window, so an over-long prompt could never be admitted and
        // would otherwise surface later as a confusing stall.
        RELAX_THROW(RuntimeError)
            << "prompt of " << prompt.size()
            << " tokens exceeds the model context window ("
            << config_.maxContext << ")";
    }
    auto seq = std::make_shared<SequenceState>();
    seq->request.id = nextId_++;
    seq->request.promptTokens = std::move(prompt);
    seq->request.maxNewTokens = max_new_tokens;
    seq->request.stopToken = stop_token;
    seq->stats.arrivalUs =
        arrival_us >= 0 ? arrival_us : machine_->dev().clockUs();
    RequestId id = seq->request.id;
    metrics_.counter("serve.requests_submitted").add();
    TraceRecorder& trace = machine_->dev().trace();
    if (trace.enabled()) {
        // The request's whole lifetime is one async span keyed by its id
        // (async pairs may overlap, unlike 'X' spans), opened at the
        // arrival stamp — possibly backdated by the caller's trace.
        trace.asyncBegin(
            trace_lanes::kEngine, trace_lanes::kRequests, "request",
            "request", id, seq->stats.arrivalUs,
            {{"prompt_tokens", (int64_t)seq->request.promptTokens.size()},
             {"max_new_tokens", max_new_tokens}});
    }
    scheduler_.enqueue(std::move(seq));
    return id;
}

bool
Engine::hasPendingWork() const
{
    return scheduler_.hasWaiting() || !running_.empty();
}

int64_t
Engine::sampleFor(const NDArray& logits, int64_t position)
{
    if (machine_->dataMode()) {
        return sampler_.samplePacked(logits, position);
    }
    return sampler_.sampleSynthetic(config_.vocabSize);
}

void
Engine::appendToken(const SequenceStatePtr& seq, int64_t token)
{
    seq->generated.push_back(token);
    ++seq->stats.generatedTokens;
    ++stats_.tokensGenerated;
    double now = machine_->dev().clockUs();
    if (seq->stats.firstTokenUs < 0) {
        seq->stats.firstTokenUs = now;
        // TTFT from the ORIGINAL arrival stamp: eviction + re-admission
        // never rebase arrivalUs, so a request preempted before its
        // first token contributes its full queue + retry wait here
        // (engine.h metrics() contract; pinned by test_engine.cc).
        metrics_.histogram("serve.ttft_us")
            .record(now - seq->stats.arrivalUs);
        TraceRecorder& trace = machine_->dev().trace();
        if (trace.enabled()) {
            trace.instant(trace_lanes::kEngine, trace_lanes::kRequests,
                          "first_token", "lifecycle", now,
                          {{"request", seq->request.id},
                           {"ttft_us", now - seq->stats.arrivalUs}});
        }
    } else {
        // Inter-token gap on the virtual clock; eviction stalls between
        // two tokens land here as real tail latency.
        metrics_.histogram("serve.itl_us")
            .record(now - seq->stats.lastTokenUs);
    }
    seq->stats.lastTokenUs = now;
    // Done by budget/stop token, or the cache hit the trained context
    // window and cannot grow another position.
    if (seq->done() || seq->ctxLen >= config_.maxContext) {
        finishSequence(seq);
    }
}

void
Engine::finishSequence(const SequenceStatePtr& seq)
{
    seq->phase = RequestPhase::kFinished;
    seq->stats.finishUs = machine_->dev().clockUs();
    kv_->release(seq->request.id);
    if (draftKv_) draftKv_->release(seq->request.id);
    running_.erase(std::find(running_.begin(), running_.end(), seq));
    finished_.push_back(seq);
    ++stats_.requestsFinished;
    stats_.ttftSumUs += seq->stats.ttftUs();
    metrics_.counter("serve.requests_finished").add();
    TraceRecorder& trace = machine_->dev().trace();
    if (trace.enabled()) {
        trace.asyncEnd(trace_lanes::kEngine, trace_lanes::kRequests,
                       "request", "request", seq->request.id,
                       seq->stats.finishUs,
                       {{"generated", (int64_t)seq->generated.size()},
                        {"preemptions", seq->stats.preemptions}});
    }
}

void
Engine::evict(const SequenceStatePtr& victim)
{
    metrics_.counter("serve.evictions").add();
    TraceRecorder& trace = machine_->dev().trace();
    if (trace.enabled()) {
        trace.instant(trace_lanes::kEngine, trace_lanes::kRequests,
                      "evict", "lifecycle", machine_->dev().clockUs(),
                      {{"request", victim->request.id},
                       {"ctx_len", victim->ctxLen},
                       {"generated", (int64_t)victim->generated.size()}});
    }
    victim->ctxLen = 0;
    kv_->release(victim->request.id);
    // The draft cache rebuilds by catch-up after re-admission, exactly
    // as the target re-prefills.
    if (draftKv_) draftKv_->release(victim->request.id);
    running_.erase(std::find(running_.begin(), running_.end(), victim));
    ++victim->stats.preemptions;
    ++stats_.evictions;
    // Back of the queue: generated tokens ride along and are re-prefilled
    // on re-admission (re-forking a still-resident parent prefix), so the
    // output stream resumes where it stopped.
    scheduler_.enqueue(victim);
}

void
Engine::ensureWritable(const SequenceStatePtr& seq, int64_t tokens,
                       int64_t write_start)
{
    // Capacity plus exclusive ownership of the write range; evict the
    // most recently admitted sequence while the pool cannot provide it.
    // Evicting a prefix-sharing reader can itself unshare the range, so
    // the condition is re-checked every round.
    if (seq->phase != RequestPhase::kRunning) return;
    while (!kv_->canHoldWrite(seq->request.id, tokens, write_start)) {
        SequenceStatePtr victim = Scheduler::pickVictim(running_);
        RELAX_ICHECK(victim) << "no eviction victim";
        if (victim == seq && running_.size() == 1) {
            RELAX_THROW(RuntimeError)
                << "KV budget (" << kv_->budgetBytes()
                << " bytes) cannot grow the only running sequence to "
                << tokens << " positions";
        }
        evict(victim);
        if (victim == seq) return;
    }
    kv_->reserveWrite(seq->request.id, tokens, write_start);
}

NDArray
Engine::invokeRaggedOn(vm::VirtualMachine& vm, KVCacheManager& kv,
                       const std::vector<NDArray>& weights,
                       const std::vector<RequestId>& order,
                       const std::vector<std::vector<int64_t>>& tokens)
{
    int64_t table_width = 1;
    for (RequestId id : order) {
        table_width = std::max(table_width, kv.pagesOf(id));
    }
    // ids, lens, cu_fresh and the block table are the only
    // host-marshalled inputs; cache data stays in the pool
    // (relayoutBytes stays 0 — any future host-side cache copy must be
    // added to that counter).
    NDArray ids = packedIdsTensor(tokens, vm.dataMode());
    NDArray lens = kv.lengthsView(order);
    NDArray cu = cuFreshTensor(tokens);
    NDArray table = kv.blockTableView(order, table_width);

    if (&vm == machine_.get() && group_) {
        // Tensor-parallel target call: every rank gets the SAME host
        // metadata tensors (shared handles — there is one logical batch)
        // but its own pool slice and weight slice; the lockstep driver
        // prices the ccl.* sites as group collectives. Shard 0's result
        // carries the full logits (the all_gather materializes them on
        // every rank).
        std::vector<vm::VirtualMachine*> shard_vms{machine_.get()};
        for (auto& shard : shardMachines_) shard_vms.push_back(shard.get());
        std::vector<std::vector<vm::Value>> shard_args(shard_vms.size());
        for (size_t s = 0; s < shard_vms.size(); ++s) {
            std::vector<vm::Value>& args = shard_args[s];
            args.emplace_back(ids);
            args.emplace_back(lens);
            args.emplace_back(cu);
            args.emplace_back(table);
            for (const NDArray& pool : kv.poolTensors((int)s)) {
                args.emplace_back(pool);
            }
            for (const NDArray& w : shardWeights_[s]) {
                args.emplace_back(w);
            }
        }
        std::vector<vm::Value> results = vm::VirtualMachine::invokeLockstep(
            shard_vms, *group_, "decode_ragged", shard_args);
        auto out = std::get<vm::TupleValuePtr>(results[0]);
        return std::get<NDArray>(out->fields[0]);
    }

    std::vector<vm::Value> args;
    args.emplace_back(std::move(ids));
    args.emplace_back(std::move(lens));
    args.emplace_back(std::move(cu));
    args.emplace_back(std::move(table));
    for (const NDArray& pool : kv.poolTensors()) args.emplace_back(pool);
    args.reserve(args.size() + weights.size());
    for (const NDArray& w : weights) args.emplace_back(w);
    auto out = std::get<vm::TupleValuePtr>(
        vm.invoke("decode_ragged", std::move(args)));
    return std::get<NDArray>(out->fields[0]);
}

NDArray
Engine::invokeRagged(const std::vector<SequenceStatePtr>& batch,
                     const std::vector<std::vector<int64_t>>& tokens)
{
    std::vector<RequestId> order;
    order.reserve(batch.size());
    for (const SequenceStatePtr& seq : batch) {
        order.push_back(seq->request.id);
    }
    return invokeRaggedOn(*machine_, *kv_, weights_, order, tokens);
}

void
Engine::proposeDrafts(const std::vector<SequenceStatePtr>& rows,
                      const std::map<RequestId, int64_t>& spec_k,
                      std::map<RequestId, SpecPlan>& plans)
{
    // --- catch-up: the draft pool may lag the target's committed
    // context (just-admitted rows, the bonus token of an all-accept
    // step, re-admission after eviction). Replay each row's token
    // stream into the draft pool, chunked under the prefill-token cap
    // so one call never exceeds the compiled packed-token bound.
    int64_t cap = std::max<int64_t>(
        scheduler_.options().maxPrefillTokensPerStep, 1);
    while (true) {
        std::vector<RequestId> order;
        std::vector<std::vector<int64_t>> chunks;
        std::vector<int64_t> new_commits;
        int64_t total = 0;
        for (const SequenceStatePtr& seq : rows) {
            RequestId id = seq->request.id;
            int64_t have = draftKv_->committedTokens(id);
            int64_t want = seq->ctxLen;
            if (have >= want || total >= cap) continue;
            int64_t take = std::min(want - have, cap - total);
            std::vector<int64_t> stream = seq->prefillTokens();
            chunks.emplace_back(stream.begin() + have,
                                stream.begin() + have + take);
            order.push_back(id);
            new_commits.push_back(have + take);
            draftKv_->reserveWrite(id, have + take, have);
            total += take;
        }
        if (order.empty()) break;
        invokeRaggedOn(*draftMachine_, *draftKv_, draftWeights_, order,
                       chunks);
        ++stats_.draftCalls;
        metrics_.counter("serve.draft_calls").add();
        for (size_t i = 0; i < order.size(); ++i) {
            draftKv_->commit(order[i], new_commits[i]);
        }
    }

    // --- propose: k batched single-token draft decodes. Call j feeds
    // each row its previous draft token (the pending target token for
    // j = 0) and samples the next proposal from the draft logits; rows
    // whose per-row budget ran out drop from later calls.
    int64_t max_k = 0;
    for (const auto& [id, k_row] : spec_k) max_k = std::max(max_k, k_row);
    for (int64_t j = 0; j < max_k; ++j) {
        std::vector<RequestId> order;
        std::vector<std::vector<int64_t>> toks;
        std::vector<SequenceStatePtr> call_rows;
        for (const SequenceStatePtr& seq : rows) {
            RequestId id = seq->request.id;
            auto it = spec_k.find(id);
            if (it == spec_k.end() || it->second <= j) continue;
            const SpecPlan& plan = plans[id];
            int64_t tok = j == 0 ? seq->generated.back()
                                 : plan.drafts.back();
            draftKv_->reserveWrite(id, seq->ctxLen + j + 1,
                                   seq->ctxLen + j);
            order.push_back(id);
            toks.push_back({tok});
            call_rows.push_back(seq);
        }
        if (order.empty()) break;
        NDArray logits = invokeRaggedOn(*draftMachine_, *draftKv_,
                                        draftWeights_, order, toks);
        ++stats_.draftCalls;
        metrics_.counter("serve.draft_calls").add();
        for (size_t r = 0; r < order.size(); ++r) {
            SpecPlan& plan = plans[order[r]];
            // One fresh token per row, so row r's logits sit at packed
            // position r (== cu[r + 1] - 1).
            if (machine_->dataMode()) {
                plan.drafts.push_back(
                    draftSampler_.samplePacked(logits, (int64_t)r));
                if (options_.sampler.topK > 1) {
                    plan.probs.push_back(
                        draftSampler_.topKProbs(logits, (int64_t)r));
                }
            } else {
                plan.drafts.push_back(
                    draftSampler_.sampleSynthetic(config_.vocabSize));
            }
            draftKv_->commit(order[r], call_rows[r]->ctxLen + j + 1);
        }
    }

    TraceRecorder& trace = machine_->dev().trace();
    if (trace.enabled()) {
        for (const SequenceStatePtr& seq : rows) {
            auto it = plans.find(seq->request.id);
            if (it == plans.end()) continue;
            trace.instant(trace_lanes::kEngine, trace_lanes::kSpeculation,
                          "propose", "speculation",
                          machine_->dev().clockUs(),
                          {{"request", seq->request.id},
                           {"tokens", (int64_t)it->second.drafts.size()}});
        }
    }
}

bool
Engine::step()
{
    if (!hasPendingWork()) return false;
    double clock_before = machine_->dev().clockUs();

    std::vector<SequenceStatePtr> admitted =
        scheduler_.admit(*kv_, (int64_t)running_.size());
    for (const SequenceStatePtr& seq : admitted) {
        seq->admitSeq = nextAdmitSeq_++;
        running_.push_back(seq);
    }

    int64_t spec_budget =
        speculationEnabled() ? options_.speculation.draftTokens : 0;

    // Own every row's write range up front (this may evict, including
    // rows admitted above — phases are re-checked when the batch is
    // built). Admitted rows write their fresh prompt tail starting at
    // the committed (possibly prefix-matched) offset; running rows grow
    // by one decode position plus their speculation window. The whole
    // sweep shares one COW pricing batch, so b sequences copying shared
    // pages in the same step pay one burst launch, not b.
    std::map<RequestId, int64_t> spec_k;
    std::vector<SequenceStatePtr> members = running_;
    kv_->beginCowBatch();
    for (const SequenceStatePtr& seq : members) {
        bool is_admitted = std::find(admitted.begin(), admitted.end(),
                                     seq) != admitted.end();
        if (is_admitted) {
            ensureWritable(seq, seq->prefillLength(),
                           kv_->committedTokens(seq->request.id));
            continue;
        }
        int64_t k_row = 0;
        if (spec_budget > 0) {
            // Per-row window: never propose past the request's token
            // budget or the context ceiling (the verify row writes
            // k+1 positions), and degrade speculation before letting
            // it evict anyone — pressure behavior must match k=0.
            k_row = std::min(spec_budget,
                             seq->request.maxNewTokens -
                                 (int64_t)seq->generated.size() - 1);
            k_row = std::min(k_row, config_.maxContext - seq->ctxLen - 1);
            k_row = std::max<int64_t>(k_row, 0);
            while (k_row > 0 &&
                   !kv_->canHoldWrite(seq->request.id,
                                      seq->ctxLen + 1 + k_row,
                                      seq->ctxLen)) {
                --k_row;
            }
        }
        ensureWritable(seq, seq->ctxLen + 1 + k_row, seq->ctxLen);
        if (k_row > 0) spec_k[seq->request.id] = k_row;
    }
    kv_->flushCowBatch();

    // Draft proposals for the rows that survived the reservation sweep
    // (eviction may have reclaimed some).
    std::map<RequestId, SpecPlan> plans;
    if (!spec_k.empty()) {
        std::vector<SequenceStatePtr> spec_rows;
        for (const SequenceStatePtr& seq : running_) {
            if (seq->phase == RequestPhase::kRunning &&
                spec_k.count(seq->request.id) > 0) {
                spec_rows.push_back(seq);
            }
        }
        if (!spec_rows.empty()) proposeDrafts(spec_rows, spec_k, plans);
    }

    // One packed-varlen call per step: prefill chunks, n=1 decode rows
    // and n=k+1 verify rows ride together — row r owns packed positions
    // [cu[r], cu[r+1]). A verify row's fresh tokens are its pending
    // token followed by the draft proposals.
    std::vector<SequenceStatePtr> batch;
    std::vector<std::vector<int64_t>> tokens;
    std::vector<bool> is_prefill;
    for (const SequenceStatePtr& seq : running_) {
        if (seq->phase != RequestPhase::kRunning) continue;
        bool admitted_now = std::find(admitted.begin(), admitted.end(),
                                      seq) != admitted.end();
        if (admitted_now) {
            std::vector<int64_t> all = seq->prefillTokens();
            int64_t start = kv_->committedTokens(seq->request.id);
            tokens.emplace_back(all.begin() + start, all.end());
        } else {
            std::vector<int64_t> fresh{seq->generated.back()};
            auto plan_it = plans.find(seq->request.id);
            if (plan_it != plans.end()) {
                fresh.insert(fresh.end(), plan_it->second.drafts.begin(),
                             plan_it->second.drafts.end());
            }
            tokens.push_back(std::move(fresh));
        }
        batch.push_back(seq);
        is_prefill.push_back(admitted_now);
    }
    if (batch.empty()) return false;

    NDArray logits = invokeRagged(batch, tokens);
    ++stats_.decodeBatches; // one packed call per step, by construction
    bool any_prefill =
        std::find(is_prefill.begin(), is_prefill.end(), true) !=
        is_prefill.end();
    if (any_prefill) {
        // Mixed steps move the shape signature (the packed token count
        // changes), so their graph begins/replays are accounted to the
        // prefill counters; the steady-state pure-decode counters keep
        // measuring the replay win.
        ++stats_.prefillBatches;
        stats_.prefillGraphBegins += machine_->lastRunStats().graphBegins;
        stats_.prefillGraphReplays +=
            machine_->lastRunStats().graphReplays;
    } else {
        stats_.decodeGraphBegins += machine_->lastRunStats().graphBegins;
        stats_.decodeGraphReplays +=
            machine_->lastRunStats().graphReplays;
    }

    TraceRecorder& trace = machine_->dev().trace();
    double clock_after = machine_->dev().clockUs();
    int64_t packed_end = 0;
    for (size_t row = 0; row < batch.size(); ++row) {
        const SequenceStatePtr& seq = batch[row];
        RequestId id = seq->request.id;
        int64_t fresh = (int64_t)tokens[row].size();
        int64_t packed_start = packed_end; // == cu[row]
        packed_end += fresh;               // == cu[row + 1]
        if (trace.enabled()) {
            trace.instant(trace_lanes::kEngine, trace_lanes::kRequests,
                          is_prefill[row] ? "prefill" : "decode", "phase",
                          clock_after,
                          {{"request", id}, {"tokens", fresh}});
        }
        if (is_prefill[row]) {
            seq->ctxLen = seq->prefillLength();
            kv_->commit(id, seq->ctxLen);
            seq->stats.prefillTokens += fresh;
            stats_.prefillTokens += fresh;
            // Register the freshly committed page-aligned blocks in the
            // prefix index so later duplicate prompts match them.
            kv_->registerCommitted(id, seq->prefillTokens());
            appendToken(seq, sampleFor(logits, packed_end - 1));
            continue;
        }
        auto plan_it = plans.find(id);
        if (plan_it == plans.end()) {
            // Plain decode row (speculation off, or this row's window
            // collapsed to zero).
            seq->ctxLen += 1;
            kv_->commit(id, seq->ctxLen);
            appendToken(seq, sampleFor(logits, packed_end - 1));
            continue;
        }

        // Verify row: the packed positions [packed_start, packed_end)
        // hold the target distributions for the pending token and every
        // draft; accept a prefix, emit its tokens exactly as sequential
        // decode steps would (stop token / budget / context checks per
        // token), then roll both caches back to the accepted stream.
        const SpecPlan& plan = plan_it->second;
        int64_t k_row = (int64_t)plan.drafts.size();
        if (trace.enabled()) {
            trace.instant(trace_lanes::kEngine, trace_lanes::kSpeculation,
                          "verify", "speculation", clock_after,
                          {{"request", id}, {"proposed", k_row}});
        }
        SpecAcceptance acc;
        if (machine_->dataMode()) {
            acc = sampler_.acceptDrafts(logits, packed_start, plan.drafts,
                                        plan.probs);
        } else {
            acc.accepted = sampler_.sampleSyntheticAcceptance(
                k_row, options_.speculation.syntheticAcceptanceRate);
            acc.next = sampler_.sampleSynthetic(config_.vocabSize);
        }
        stats_.specProposed += k_row;
        stats_.specAccepted += acc.accepted;
        metrics_.counter("serve.spec_proposed_tokens").add(k_row);
        metrics_.counter("serve.spec_accepted_tokens").add(acc.accepted);
        metrics_.histogram("serve.spec_accepted").record(
            (double)acc.accepted);
        for (int64_t i = 0;
             i <= acc.accepted && seq->phase == RequestPhase::kRunning;
             ++i) {
            seq->ctxLen += 1;
            kv_->commit(id, seq->ctxLen);
            appendToken(seq, i < acc.accepted ? plan.drafts[i] : acc.next);
        }
        if (trace.enabled()) {
            trace.instant(trace_lanes::kEngine, trace_lanes::kSpeculation,
                          "accept", "speculation",
                          machine_->dev().clockUs(),
                          {{"request", id},
                           {"proposed", k_row},
                           {"accepted", acc.accepted}});
        }
        if (seq->phase == RequestPhase::kRunning) {
            // Rejected drafts leave K/V junk past the committed length
            // and surplus reserved pages: return whole pages and drop
            // any index entry the rewind invalidated. The draft cache
            // rewinds to the accepted stream the same way (clamped to a
            // no-op when every draft survived).
            kv_->truncate(id, seq->ctxLen);
            draftKv_->truncate(id, seq->ctxLen);
        }
    }

    ++stats_.steps;
    stats_.busyUs += machine_->dev().clockUs() - clock_before;
    stats_.peakKvBytes = std::max(stats_.peakKvBytes, kv_->peakBytes());

    // Per-step registry sampling (always on: the counters feed the fuzz
    // oracle's cross-checks, the gauges the BENCH_serve.json snapshot).
    metrics_.counter("serve.steps").add();
    metrics_.counter("serve.decode_calls").add();
    metrics_.gauge("kv.used_pages").sample((double)kv_->usedPages());
    metrics_.gauge("kv.free_pages").sample((double)kv_->freePages());
    metrics_.gauge("kv.occupancy")
        .sample(kv_->totalPages() > 0 ? (double)kv_->usedPages() /
                                            (double)kv_->totalPages()
                                      : 0.0);
    metrics_.gauge("serve.running").sample((double)running_.size());
    metrics_.gauge("serve.decode_replay_hit_rate")
        .sample(stats_.decodeReplayHitRate());
    // Per-device memory gauges, one lane per shard (device 0 alone on
    // single-device engines, matching the trace pid layout).
    for (int i = 0; i < tensorParallel(); ++i) {
        device::SimDevice& dev =
            group_ ? group_->device(i) : machine_->dev();
        std::string prefix = "device." + std::to_string(i) + ".";
        metrics_.gauge(prefix + "alloc_bytes")
            .sample((double)dev.allocatedBytes());
        metrics_.gauge(prefix + "peak_bytes")
            .sample((double)dev.peakBytes());
    }
    if (speculationEnabled()) {
        metrics_.gauge("serve.spec_acceptance_rate")
            .sample(stats_.specAcceptanceRate());
    }

    if (trace.enabled()) {
        trace.span(trace_lanes::kEngine, trace_lanes::kSteps, "step",
                   "step", clock_before, clock_after - clock_before,
                   {{"step", stats_.steps - 1},
                    {"rows", (int64_t)batch.size()},
                    {"fresh_tokens", packed_end},
                    {"mixed", (int64_t)(any_prefill ? 1 : 0)}});
        trace.counter(trace_lanes::kEngine, trace_lanes::kKvPool,
                      "kv_pages", clock_after,
                      {{"used", kv_->usedPages()},
                       {"free", kv_->freePages()}});
    }
    return true;
}

const EngineStats&
Engine::run()
{
    while (hasPendingWork()) {
        if (!step()) {
            RELAX_THROW(RuntimeError)
                << "serving stalled: " << scheduler_.waitingCount()
                << " waiting request(s) cannot fit the KV budget ("
                << kv_->budgetBytes() << " bytes)";
        }
    }
    return stats_;
}

std::vector<FinishedRequest>
Engine::collect()
{
    std::sort(finished_.begin(), finished_.end(),
              [](const SequenceStatePtr& a, const SequenceStatePtr& b) {
                  return a->request.id < b->request.id;
              });
    std::vector<FinishedRequest> results;
    results.reserve(finished_.size());
    for (const SequenceStatePtr& seq : finished_) {
        FinishedRequest done;
        done.id = seq->request.id;
        done.promptTokens = seq->request.promptTokens;
        done.outputTokens = seq->generated;
        done.stats = seq->stats;
        results.push_back(std::move(done));
    }
    finished_.clear();
    return results;
}

} // namespace serve
} // namespace relax
