/**
 * @file
 * KVCacheManager implementation: the resident page pool, the free-list /
 * refcount page lifecycle (reserve, fork, copy-on-write, release), the
 * chained-hash prefix-caching index (matchPrefix / registerCommitted),
 * and the lengths/block-table views the ragged kernels consume (see
 * kv_cache.h).
 */
#include "serve/kv_cache.h"

#include <algorithm>

namespace relax {
namespace serve {

KVCacheManager::KVCacheManager(const frontend::LlamaConfig& config,
                               vm::VirtualMachine& machine,
                               int64_t budgetBytes, int64_t blockTokens,
                               std::vector<vm::VirtualMachine*> shards)
    : machine_(machine), shards_(std::move(shards)),
      blockTokens_(blockTokens),
      bytesPerBlock_(config.kvBytesPerToken() * blockTokens),
      budgetBytes_(budgetBytes),
      totalBlocks_(bytesPerBlock_ > 0 ? budgetBytes / bytesPerBlock_ : 0)
{
    RELAX_ICHECK(blockTokens_ > 0) << "KV block size must be positive";
    RELAX_ICHECK(budgetBytes_ >= 0) << "negative KV budget";
    if (shards_.empty()) shards_.push_back(&machine_);
    int64_t n = (int64_t)shards_.size();
    RELAX_ICHECK(config.numHeads % n == 0)
        << "KV pool: " << config.numHeads << " heads not divisible by "
        << n << " shards";

    // The pool is resident for the manager's lifetime: one [p, h/N,
    // block, d] tensor per layer per k/v on each shard's device, backed
    // by one persistent allocation per device (vLLM preallocates its
    // page pool the same way). Page-table state is LOGICAL: one page id
    // names the same rows of every shard's pools.
    std::vector<int64_t> pool_shape{totalBlocks_, config.numHeads / n,
                                    blockTokens_, config.headDim};
    poolStorages_.reserve(shards_.size());
    pools_.resize(shards_.size());
    for (size_t s = 0; s < shards_.size(); ++s) {
        poolStorages_.push_back(shards_[s]->allocPersistentStorage(
            totalBlocks_ * bytesPerBlock_ / n));
        pools_[s].reserve(2 * (size_t)config.numLayers);
        for (int64_t layer = 0; layer < 2 * config.numLayers; ++layer) {
            pools_[s].push_back(
                machine_.dataMode()
                    ? NDArray::zeros(pool_shape, DataType::f16())
                    : NDArray::metaOnly(pool_shape, DataType::f16()));
        }
    }
    refCounts_.assign((size_t)totalBlocks_, 0);
    // LIFO stack ordered so the first acquisitions hand out pages 0, 1,
    // 2, ... (deterministic tables in tests and traces).
    freePages_.reserve((size_t)totalBlocks_);
    for (int64_t page = totalBlocks_; page-- > 0;) {
        freePages_.push_back(page);
    }
}

KVCacheManager::~KVCacheManager()
{
    // Return the whole pool to each device so engine teardown leaves the
    // accounting balanced.
    for (size_t s = 0; s < shards_.size(); ++s) {
        shards_[s]->releasePersistentStorage(poolStorages_[s]);
    }
}

int64_t
KVCacheManager::blocksFor(int64_t tokens) const
{
    return (tokens + blockTokens_ - 1) / blockTokens_;
}

int64_t
KVCacheManager::acquirePage()
{
    if (freePages_.empty()) {
        RELAX_THROW(RuntimeError)
            << "KV page pool exhausted: " << usedBlocks_ << "/"
            << totalBlocks_ << " pages in use";
    }
    int64_t page = freePages_.back();
    freePages_.pop_back();
    RELAX_ICHECK(refCounts_[page] == 0) << "free page had references";
    refCounts_[page] = 1;
    ++usedBlocks_;
    peakBlocks_ = std::max(peakBlocks_, usedBlocks_);
    return page;
}

void
KVCacheManager::copyPage(int64_t src, int64_t dst)
{
    // A device-side page copy (cudaMemcpyDeviceToDevice): one page of
    // K/V across every layer is read and written once. Priced on the
    // simulated clock — copy-on-write is not free, it is just rare.
    // Inside a COW batch the cost is deferred: one step's copies flush
    // as a single burst launch instead of paying the per-launch
    // overhead b times.
    if (cowBatchActive_) {
        ++cowBatchPages_;
    } else {
        // Each shard copies its 1/N slice of the page on its own device.
        device::KernelCost cost;
        cost.bytes =
            2.0 * (double)bytesPerBlock_ / (double)shards_.size();
        cost.flops = 0.0;
        cost.efficiency = machine_.dev().spec().genElemwiseEfficiency;
        for (vm::VirtualMachine* shard : shards_) {
            shard->dev().launchKernel(cost, "kv.cow_copy_page");
        }
    }
    ++cowCopies_;
    if (metrics_) metrics_->counter("kv.cow_copies").add();
    if (!machine_.dataMode()) return;
    for (auto& shard_pools : pools_) {
        for (NDArray& pool : shard_pools) {
            int64_t row =
                pool.numel() / std::max<int64_t>(totalBlocks_, 1);
            auto& data = pool.data();
            std::copy(data.begin() + src * row,
                      data.begin() + (src + 1) * row,
                      data.begin() + dst * row);
        }
    }
}

bool
KVCacheManager::canHold(RequestId seq, int64_t tokens) const
{
    int64_t owned = 0;
    auto it = sequences_.find(seq);
    if (it != sequences_.end()) owned = (int64_t)it->second.pages.size();
    int64_t extra = blocksFor(tokens) - owned;
    if (extra <= 0) return true;
    return extra <= (int64_t)freePages_.size();
}

bool
KVCacheManager::canHoldWrite(RequestId seq, int64_t tokens,
                             int64_t writeStart) const
{
    int64_t owned = 0;
    const Sequence* state = nullptr;
    if (auto it = sequences_.find(seq); it != sequences_.end()) {
        state = &it->second;
        owned = (int64_t)state->pages.size();
    }
    int64_t needed = std::max<int64_t>(blocksFor(tokens) - owned, 0);
    // Each already-owned page in the write range that is shared with
    // another sequence costs one fresh page to copy into.
    if (state && tokens > writeStart) {
        int64_t first = writeStart / blockTokens_;
        int64_t last = (tokens - 1) / blockTokens_;
        for (int64_t idx = first; idx <= last && idx < owned; ++idx) {
            if (refCounts_[state->pages[idx]] > 1) ++needed;
        }
    }
    return needed <= (int64_t)freePages_.size();
}

void
KVCacheManager::reserve(RequestId seq, int64_t tokens)
{
    if (!canHold(seq, tokens)) {
        RELAX_THROW(RuntimeError)
            << "KV budget exhausted: sequence " << seq << " needs "
            << blocksFor(tokens) << " pages, " << usedBlocks_ << "/"
            << totalBlocks_ << " in use";
    }
    Sequence& state = sequences_[seq];
    int64_t target = blocksFor(tokens);
    while ((int64_t)state.pages.size() < target) {
        state.pages.push_back(acquirePage());
    }
    state.tokens = std::max(state.tokens, tokens);
}

void
KVCacheManager::reserveWrite(RequestId seq, int64_t tokens,
                             int64_t writeStart)
{
    if (!canHoldWrite(seq, tokens, writeStart)) {
        RELAX_THROW(RuntimeError)
            << "KV budget exhausted: sequence " << seq
            << " cannot own its write range up to " << tokens
            << " positions (" << usedBlocks_ << "/" << totalBlocks_
            << " pages in use)";
    }
    reserve(seq, tokens);
    if (tokens <= writeStart) return;
    Sequence& state = sequences_[seq];
    int64_t first = writeStart / blockTokens_;
    int64_t last = (tokens - 1) / blockTokens_;
    for (int64_t idx = first; idx <= last; ++idx) {
        int64_t page = state.pages[idx];
        if (refCounts_[page] <= 1) continue;
        // Copy-on-write: the writer repoints to a private copy; readers
        // keep the original page untouched.
        int64_t fresh = acquirePage();
        copyPage(page, fresh);
        --refCounts_[page];
        state.pages[idx] = fresh;
        TraceRecorder& trace = machine_.dev().trace();
        if (trace.enabled()) {
            trace.instant(trace_lanes::kEngine, trace_lanes::kKvPool,
                          "cow_copy", "kv", machine_.dev().clockUs(),
                          {{"request", seq},
                           {"src_page", page},
                           {"dst_page", fresh}});
        }
    }
}

void
KVCacheManager::release(RequestId seq)
{
    auto it = sequences_.find(seq);
    if (it == sequences_.end()) return;
    for (int64_t page : it->second.pages) {
        if (--refCounts_[page] == 0) {
            // The page's content is gone the moment it can be
            // reacquired, so its prefix-index entry goes with it.
            unregisterPage(page);
            freePages_.push_back(page);
            --usedBlocks_;
        }
    }
    sequences_.erase(it);
}

int64_t
KVCacheManager::truncate(RequestId seq, int64_t tokens)
{
    RELAX_ICHECK(tokens >= 0) << "cannot truncate to a negative length";
    auto it = sequences_.find(seq);
    if (it == sequences_.end()) return 0;
    Sequence& state = it->second;
    int64_t new_committed = std::min(state.committed, tokens);
    int64_t keep = std::min((int64_t)state.pages.size(), blocksFor(tokens));
    if (new_committed == state.committed &&
        keep == (int64_t)state.pages.size()) {
        return 0;
    }

    int64_t dropped = (int64_t)state.pages.size() - keep;
    for (int64_t idx = keep; idx < (int64_t)state.pages.size(); ++idx) {
        int64_t page = state.pages[idx];
        if (--refCounts_[page] == 0) {
            unregisterPage(page);
            freePages_.push_back(page);
            --usedBlocks_;
        }
    }
    state.pages.resize((size_t)keep);

    // Retained pages whose block is no longer fully committed will be
    // rewritten in place once decode resumes — if this sequence is the
    // sole owner, their index entries' token snapshots would diverge
    // from the pool content, so they must go before the page can be
    // re-matched. Shared pages stay indexed: copy-on-write repoints this
    // writer to a private copy, leaving the original content (and its
    // entry) intact for the other holders.
    int64_t full_blocks = new_committed / blockTokens_;
    for (int64_t idx = full_blocks; idx < keep; ++idx) {
        if (refCounts_[state.pages[idx]] == 1) {
            unregisterPage(state.pages[idx]);
        }
    }
    if ((int64_t)state.blockHashes.size() > full_blocks) {
        state.blockHashes.resize((size_t)full_blocks);
    }
    state.committed = new_committed;
    state.tokens = std::min(state.tokens, keep * blockTokens_);
    ++truncates_;
    if (metrics_) metrics_->counter("kv.truncates").add();
    TraceRecorder& trace = machine_.dev().trace();
    if (trace.enabled()) {
        trace.instant(trace_lanes::kEngine, trace_lanes::kKvPool,
                      "truncate", "kv", machine_.dev().clockUs(),
                      {{"request", seq},
                       {"tokens", new_committed},
                       {"pages_dropped", dropped}});
    }
    return dropped;
}

void
KVCacheManager::beginCowBatch()
{
    RELAX_ICHECK(!cowBatchActive_) << "COW batch already open";
    cowBatchActive_ = true;
    cowBatchPages_ = 0;
}

int64_t
KVCacheManager::flushCowBatch()
{
    RELAX_ICHECK(cowBatchActive_) << "no COW batch open";
    cowBatchActive_ = false;
    int64_t pages = cowBatchPages_;
    cowBatchPages_ = 0;
    if (pages == 0) return 0;
    // All of the step's page copies land as one burst: the bytes add up
    // but the launch overhead is paid once, the way a batched
    // cudaMemcpyAsync sweep behaves. Each shard bursts its 1/N slice on
    // its own device.
    device::KernelCost cost;
    cost.bytes = 2.0 * (double)bytesPerBlock_ * (double)pages /
                 (double)shards_.size();
    cost.flops = 0.0;
    cost.efficiency = machine_.dev().spec().genElemwiseEfficiency;
    for (vm::VirtualMachine* shard : shards_) {
        shard->dev().launchKernel(cost, "kv.cow_copy_burst");
    }
    return pages;
}

void
KVCacheManager::fork(RequestId parent, RequestId child, int64_t tokens)
{
    auto parent_it = sequences_.find(parent);
    if (parent_it == sequences_.end()) return;
    tokens = std::min(tokens, parent_it->second.committed);
    if (tokens <= 0) return;
    RELAX_ICHECK(sequences_.find(child) == sequences_.end())
        << "fork target " << child << " already holds pages";
    Sequence& state = sequences_[child];
    int64_t npages = blocksFor(tokens);
    RELAX_ICHECK(npages <= (int64_t)parent_it->second.pages.size())
        << "fork range exceeds parent's pages";
    state.pages.assign(parent_it->second.pages.begin(),
                       parent_it->second.pages.begin() + npages);
    for (int64_t page : state.pages) ++refCounts_[page];
    state.tokens = tokens;
    state.committed = tokens;
    ++forks_;
}

void
KVCacheManager::dropFork(RequestId child)
{
    if (sequences_.find(child) == sequences_.end()) return;
    release(child);
    --forks_;
}

namespace {

/** Default chained block hash: FNV-1a folded over the previous block's
 *  hash and the block's token values. */
uint64_t
fnvBlockHash(uint64_t prev, const int64_t* tokens, int64_t count)
{
    uint64_t h = 1469598103934665603ull; // FNV offset basis
    auto mix = [&h](uint64_t value) {
        for (int byte = 0; byte < 8; ++byte) {
            h ^= (value >> (8 * byte)) & 0xffu;
            h *= 1099511628211ull; // FNV prime
        }
    };
    mix(prev);
    for (int64_t i = 0; i < count; ++i) mix((uint64_t)tokens[i]);
    return h;
}

} // namespace

uint64_t
KVCacheManager::hashBlock(uint64_t prev, const int64_t* tokens,
                          int64_t count) const
{
    return hashOverride_ ? hashOverride_(prev, tokens, count)
                         : fnvBlockHash(prev, tokens, count);
}

void
KVCacheManager::setBlockHashForTest(BlockHashFn fn)
{
    hashOverride_ = std::move(fn);
}

void
KVCacheManager::unregisterPage(int64_t page)
{
    auto ph = pageHash_.find(page);
    if (ph == pageHash_.end()) return;
    auto idx = hashIndex_.find(ph->second);
    if (idx != hashIndex_.end()) {
        auto& entries = idx->second;
        entries.erase(std::remove_if(entries.begin(), entries.end(),
                                     [page](const IndexEntry& entry) {
                                         return entry.page == page;
                                     }),
                      entries.end());
        if (entries.empty()) hashIndex_.erase(idx);
    }
    pageHash_.erase(ph);
}

int64_t
KVCacheManager::matchPrefix(RequestId child,
                            const std::vector<int64_t>& tokens)
{
    RELAX_ICHECK(sequences_.find(child) == sequences_.end())
        << "matchPrefix target " << child << " already holds pages";
    // Cap so the child always prefills at least one token itself: the
    // final prompt position must run through the model to produce the
    // sequence's first logits.
    int64_t max_blocks = ((int64_t)tokens.size() - 1) / blockTokens_;
    if (max_blocks <= 0) return 0;

    std::vector<int64_t> pages;
    std::vector<uint64_t> hashes;
    uint64_t prev_hash = 0;
    int64_t prev_page = -1;
    for (int64_t blk = 0; blk < max_blocks; ++blk) {
        const int64_t* block = tokens.data() + blk * blockTokens_;
        uint64_t h = hashBlock(prev_hash, block, blockTokens_);
        auto it = hashIndex_.find(h);
        const IndexEntry* hit = nullptr;
        if (it != hashIndex_.end()) {
            for (const IndexEntry& entry : it->second) {
                // The hash only proposes; the stored token content and
                // the chain linkage decide. A colliding entry fails one
                // of these checks and degrades to no-share — never to a
                // wrong share. Induction on prevPage: matching block k
                // content plus the block-(k-1) page guarantees the whole
                // prefix behind the page is identical, which the K/V
                // values depend on.
                if (entry.prevPage == prev_page &&
                    (int64_t)entry.tokens.size() == blockTokens_ &&
                    std::equal(entry.tokens.begin(), entry.tokens.end(),
                               block)) {
                    hit = &entry;
                    break;
                }
            }
        }
        if (hit == nullptr) break;
        pages.push_back(hit->page);
        hashes.push_back(h);
        prev_hash = h;
        prev_page = hit->page;
    }
    if (pages.empty()) return 0;

    Sequence& state = sequences_[child];
    state.pages = std::move(pages);
    for (int64_t page : state.pages) ++refCounts_[page];
    state.tokens = (int64_t)state.pages.size() * blockTokens_;
    state.committed = state.tokens;
    state.blockHashes = std::move(hashes);
    ++forks_;
    ++prefixHits_;
    prefixTokensMatched_ += state.tokens;
    if (metrics_) {
        metrics_->counter("kv.prefix_hits").add();
        metrics_->counter("kv.prefix_tokens_matched").add(state.tokens);
    }
    TraceRecorder& trace = machine_.dev().trace();
    if (trace.enabled()) {
        trace.instant(trace_lanes::kEngine, trace_lanes::kKvPool,
                      "prefix_hit", "kv", machine_.dev().clockUs(),
                      {{"request", child},
                       {"tokens", state.tokens},
                       {"pages", (int64_t)state.pages.size()}});
    }
    return state.tokens;
}

void
KVCacheManager::registerCommitted(RequestId seq,
                                  const std::vector<int64_t>& tokens)
{
    auto it = sequences_.find(seq);
    if (it == sequences_.end()) return;
    Sequence& state = it->second;
    int64_t limit = std::min(state.committed, (int64_t)tokens.size());
    int64_t full_blocks = limit / blockTokens_;
    uint64_t prev_hash =
        state.blockHashes.empty() ? 0 : state.blockHashes.back();
    // The chain always advances (even over pages another sequence
    // already indexed) so later blocks hash against the right prefix.
    for (int64_t blk = (int64_t)state.blockHashes.size();
         blk < full_blocks; ++blk) {
        const int64_t* block = tokens.data() + blk * blockTokens_;
        uint64_t h = hashBlock(prev_hash, block, blockTokens_);
        state.blockHashes.push_back(h);
        prev_hash = h;
        int64_t page = state.pages[blk];
        if (pageHash_.find(page) != pageHash_.end()) continue;
        int64_t prev_page = blk == 0 ? -1 : state.pages[blk - 1];
        hashIndex_[h].push_back(IndexEntry{
            page, prev_page,
            std::vector<int64_t>(block, block + blockTokens_)});
        pageHash_[page] = h;
    }
}

int64_t
KVCacheManager::reservedTokens(RequestId seq) const
{
    auto it = sequences_.find(seq);
    return it == sequences_.end() ? 0 : it->second.tokens;
}

int64_t
KVCacheManager::pagesOf(RequestId seq) const
{
    auto it = sequences_.find(seq);
    return it == sequences_.end() ? 0 : (int64_t)it->second.pages.size();
}

void
KVCacheManager::commit(RequestId seq, int64_t tokens)
{
    auto it = sequences_.find(seq);
    RELAX_ICHECK(it != sequences_.end())
        << "commit for sequence " << seq << " without a reservation";
    RELAX_ICHECK(tokens <= it->second.tokens)
        << "commit of " << tokens << " positions exceeds the "
        << it->second.tokens << " reserved for sequence " << seq;
    it->second.committed = tokens;
}

int64_t
KVCacheManager::committedTokens(RequestId seq) const
{
    auto it = sequences_.find(seq);
    return it == sequences_.end() ? 0 : it->second.committed;
}

NDArray
KVCacheManager::lengthsView(const std::vector<RequestId>& order) const
{
    std::vector<double> lens;
    lens.reserve(order.size());
    for (RequestId id : order) {
        lens.push_back((double)committedTokens(id));
    }
    return NDArray::fromVector({(int64_t)order.size()}, DataType::i64(),
                               std::move(lens));
}

NDArray
KVCacheManager::blockTableView(const std::vector<RequestId>& order,
                               int64_t width) const
{
    RELAX_ICHECK(width >= 1) << "block table width must be positive";
    std::vector<double> table;
    table.reserve(order.size() * width);
    for (RequestId id : order) {
        auto it = sequences_.find(id);
        const std::vector<int64_t>* pages =
            it == sequences_.end() ? nullptr : &it->second.pages;
        int64_t owned = pages ? (int64_t)pages->size() : 0;
        RELAX_ICHECK(owned <= width)
            << "sequence " << id << " owns " << owned
            << " pages, table width is only " << width;
        for (int64_t j = 0; j < width; ++j) {
            table.push_back(j < owned ? (double)(*pages)[j] : -1.0);
        }
    }
    return NDArray::fromVector({(int64_t)order.size(), width},
                               DataType::i64(), std::move(table));
}

} // namespace serve
} // namespace relax
