/**
 * @file
 * KVCacheManager implementation: block math and the reserve/release
 * lifecycle over persistent VM storage (see kv_cache.h).
 */
#include "serve/kv_cache.h"

namespace relax {
namespace serve {

KVCacheManager::KVCacheManager(const frontend::LlamaConfig& config,
                               vm::VirtualMachine& machine,
                               int64_t budgetBytes, int64_t blockTokens)
    : machine_(machine), blockTokens_(blockTokens),
      bytesPerBlock_(config.kvBytesPerToken() * blockTokens),
      budgetBytes_(budgetBytes),
      totalBlocks_(bytesPerBlock_ > 0 ? budgetBytes / bytesPerBlock_ : 0)
{
    RELAX_ICHECK(blockTokens_ > 0) << "KV block size must be positive";
    RELAX_ICHECK(budgetBytes_ >= 0) << "negative KV budget";
}

KVCacheManager::~KVCacheManager()
{
    // Return every outstanding block to the device so engine teardown
    // leaves the accounting balanced.
    for (auto& [id, seq] : sequences_) {
        for (auto& block : seq.blocks) {
            machine_.releasePersistentStorage(block);
        }
    }
}

int64_t
KVCacheManager::blocksFor(int64_t tokens) const
{
    return (tokens + blockTokens_ - 1) / blockTokens_;
}

bool
KVCacheManager::canHold(RequestId seq, int64_t tokens) const
{
    int64_t owned = 0;
    auto it = sequences_.find(seq);
    if (it != sequences_.end()) owned = (int64_t)it->second.blocks.size();
    int64_t extra = blocksFor(tokens) - owned;
    if (extra <= 0) return true;
    return usedBlocks_ + extra <= totalBlocks_;
}

void
KVCacheManager::reserve(RequestId seq, int64_t tokens)
{
    if (!canHold(seq, tokens)) {
        RELAX_THROW(RuntimeError)
            << "KV budget exhausted: sequence " << seq << " needs "
            << blocksFor(tokens) << " blocks, " << usedBlocks_ << "/"
            << totalBlocks_ << " in use";
    }
    SequenceBlocks& blocks = sequences_[seq];
    int64_t target = blocksFor(tokens);
    while ((int64_t)blocks.blocks.size() < target) {
        blocks.blocks.push_back(
            machine_.allocPersistentStorage(bytesPerBlock_));
        ++usedBlocks_;
    }
    blocks.tokens = std::max(blocks.tokens, tokens);
    peakBlocks_ = std::max(peakBlocks_, usedBlocks_);
}

void
KVCacheManager::release(RequestId seq)
{
    auto it = sequences_.find(seq);
    if (it == sequences_.end()) return;
    for (auto& block : it->second.blocks) {
        machine_.releasePersistentStorage(block);
        --usedBlocks_;
    }
    sequences_.erase(it);
}

int64_t
KVCacheManager::reservedTokens(RequestId seq) const
{
    auto it = sequences_.find(seq);
    return it == sequences_.end() ? 0 : it->second.tokens;
}

} // namespace serve
} // namespace relax
