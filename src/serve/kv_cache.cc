/**
 * @file
 * KVCacheManager implementation: the resident page pool, the free-list /
 * refcount page lifecycle (reserve, fork, copy-on-write, release), and
 * the lengths/block-table views the ragged kernels consume (see
 * kv_cache.h).
 */
#include "serve/kv_cache.h"

#include <algorithm>

namespace relax {
namespace serve {

KVCacheManager::KVCacheManager(const frontend::LlamaConfig& config,
                               vm::VirtualMachine& machine,
                               int64_t budgetBytes, int64_t blockTokens)
    : machine_(machine), blockTokens_(blockTokens),
      bytesPerBlock_(config.kvBytesPerToken() * blockTokens),
      budgetBytes_(budgetBytes),
      totalBlocks_(bytesPerBlock_ > 0 ? budgetBytes / bytesPerBlock_ : 0)
{
    RELAX_ICHECK(blockTokens_ > 0) << "KV block size must be positive";
    RELAX_ICHECK(budgetBytes_ >= 0) << "negative KV budget";

    // The pool is resident for the manager's lifetime: one [p, h, block,
    // d] tensor per layer per k/v, all backed by a single persistent
    // device allocation (vLLM preallocates its page pool the same way).
    poolStorage_ =
        machine_.allocPersistentStorage(totalBlocks_ * bytesPerBlock_);
    std::vector<int64_t> pool_shape{totalBlocks_, config.numHeads,
                                    blockTokens_, config.headDim};
    pools_.reserve(2 * (size_t)config.numLayers);
    for (int64_t layer = 0; layer < 2 * config.numLayers; ++layer) {
        pools_.push_back(machine_.dataMode()
                             ? NDArray::zeros(pool_shape, DataType::f16())
                             : NDArray::metaOnly(pool_shape,
                                                 DataType::f16()));
    }
    refCounts_.assign((size_t)totalBlocks_, 0);
    // LIFO stack ordered so the first acquisitions hand out pages 0, 1,
    // 2, ... (deterministic tables in tests and traces).
    freePages_.reserve((size_t)totalBlocks_);
    for (int64_t page = totalBlocks_; page-- > 0;) {
        freePages_.push_back(page);
    }
}

KVCacheManager::~KVCacheManager()
{
    // Return the whole pool to the device so engine teardown leaves the
    // accounting balanced.
    machine_.releasePersistentStorage(poolStorage_);
}

int64_t
KVCacheManager::blocksFor(int64_t tokens) const
{
    return (tokens + blockTokens_ - 1) / blockTokens_;
}

int64_t
KVCacheManager::acquirePage()
{
    if (freePages_.empty()) {
        RELAX_THROW(RuntimeError)
            << "KV page pool exhausted: " << usedBlocks_ << "/"
            << totalBlocks_ << " pages in use";
    }
    int64_t page = freePages_.back();
    freePages_.pop_back();
    RELAX_ICHECK(refCounts_[page] == 0) << "free page had references";
    refCounts_[page] = 1;
    ++usedBlocks_;
    peakBlocks_ = std::max(peakBlocks_, usedBlocks_);
    return page;
}

void
KVCacheManager::copyPage(int64_t src, int64_t dst)
{
    // A device-side page copy (cudaMemcpyDeviceToDevice): one page of
    // K/V across every layer is read and written once. Priced on the
    // simulated clock — copy-on-write is not free, it is just rare.
    device::KernelCost cost;
    cost.bytes = 2.0 * (double)bytesPerBlock_;
    cost.flops = 0.0;
    cost.efficiency = machine_.dev().spec().genElemwiseEfficiency;
    machine_.dev().launchKernel(cost);
    ++cowCopies_;
    if (!machine_.dataMode()) return;
    for (NDArray& pool : pools_) {
        int64_t row = pool.numel() / std::max<int64_t>(totalBlocks_, 1);
        auto& data = pool.data();
        std::copy(data.begin() + src * row, data.begin() + (src + 1) * row,
                  data.begin() + dst * row);
    }
}

bool
KVCacheManager::canHold(RequestId seq, int64_t tokens) const
{
    int64_t owned = 0;
    auto it = sequences_.find(seq);
    if (it != sequences_.end()) owned = (int64_t)it->second.pages.size();
    int64_t extra = blocksFor(tokens) - owned;
    if (extra <= 0) return true;
    return extra <= (int64_t)freePages_.size();
}

bool
KVCacheManager::canHoldWrite(RequestId seq, int64_t tokens,
                             int64_t writeStart) const
{
    int64_t owned = 0;
    const Sequence* state = nullptr;
    if (auto it = sequences_.find(seq); it != sequences_.end()) {
        state = &it->second;
        owned = (int64_t)state->pages.size();
    }
    int64_t needed = std::max<int64_t>(blocksFor(tokens) - owned, 0);
    // Each already-owned page in the write range that is shared with
    // another sequence costs one fresh page to copy into.
    if (state && tokens > writeStart) {
        int64_t first = writeStart / blockTokens_;
        int64_t last = (tokens - 1) / blockTokens_;
        for (int64_t idx = first; idx <= last && idx < owned; ++idx) {
            if (refCounts_[state->pages[idx]] > 1) ++needed;
        }
    }
    return needed <= (int64_t)freePages_.size();
}

void
KVCacheManager::reserve(RequestId seq, int64_t tokens)
{
    if (!canHold(seq, tokens)) {
        RELAX_THROW(RuntimeError)
            << "KV budget exhausted: sequence " << seq << " needs "
            << blocksFor(tokens) << " pages, " << usedBlocks_ << "/"
            << totalBlocks_ << " in use";
    }
    Sequence& state = sequences_[seq];
    int64_t target = blocksFor(tokens);
    while ((int64_t)state.pages.size() < target) {
        state.pages.push_back(acquirePage());
    }
    state.tokens = std::max(state.tokens, tokens);
}

void
KVCacheManager::reserveWrite(RequestId seq, int64_t tokens,
                             int64_t writeStart)
{
    if (!canHoldWrite(seq, tokens, writeStart)) {
        RELAX_THROW(RuntimeError)
            << "KV budget exhausted: sequence " << seq
            << " cannot own its write range up to " << tokens
            << " positions (" << usedBlocks_ << "/" << totalBlocks_
            << " pages in use)";
    }
    reserve(seq, tokens);
    if (tokens <= writeStart) return;
    Sequence& state = sequences_[seq];
    int64_t first = writeStart / blockTokens_;
    int64_t last = (tokens - 1) / blockTokens_;
    for (int64_t idx = first; idx <= last; ++idx) {
        int64_t page = state.pages[idx];
        if (refCounts_[page] <= 1) continue;
        // Copy-on-write: the writer repoints to a private copy; readers
        // keep the original page untouched.
        int64_t fresh = acquirePage();
        copyPage(page, fresh);
        --refCounts_[page];
        state.pages[idx] = fresh;
    }
}

void
KVCacheManager::release(RequestId seq)
{
    auto it = sequences_.find(seq);
    if (it == sequences_.end()) return;
    for (int64_t page : it->second.pages) {
        if (--refCounts_[page] == 0) {
            freePages_.push_back(page);
            --usedBlocks_;
        }
    }
    sequences_.erase(it);
}

void
KVCacheManager::fork(RequestId parent, RequestId child, int64_t tokens)
{
    auto parent_it = sequences_.find(parent);
    if (parent_it == sequences_.end()) return;
    tokens = std::min(tokens, parent_it->second.committed);
    if (tokens <= 0) return;
    RELAX_ICHECK(sequences_.find(child) == sequences_.end())
        << "fork target " << child << " already holds pages";
    Sequence& state = sequences_[child];
    int64_t npages = blocksFor(tokens);
    RELAX_ICHECK(npages <= (int64_t)parent_it->second.pages.size())
        << "fork range exceeds parent's pages";
    state.pages.assign(parent_it->second.pages.begin(),
                       parent_it->second.pages.begin() + npages);
    for (int64_t page : state.pages) ++refCounts_[page];
    state.tokens = tokens;
    state.committed = tokens;
    ++forks_;
}

void
KVCacheManager::dropFork(RequestId child)
{
    if (sequences_.find(child) == sequences_.end()) return;
    release(child);
    --forks_;
}

int64_t
KVCacheManager::reservedTokens(RequestId seq) const
{
    auto it = sequences_.find(seq);
    return it == sequences_.end() ? 0 : it->second.tokens;
}

int64_t
KVCacheManager::pagesOf(RequestId seq) const
{
    auto it = sequences_.find(seq);
    return it == sequences_.end() ? 0 : (int64_t)it->second.pages.size();
}

void
KVCacheManager::commit(RequestId seq, int64_t tokens)
{
    auto it = sequences_.find(seq);
    RELAX_ICHECK(it != sequences_.end())
        << "commit for sequence " << seq << " without a reservation";
    RELAX_ICHECK(tokens <= it->second.tokens)
        << "commit of " << tokens << " positions exceeds the "
        << it->second.tokens << " reserved for sequence " << seq;
    it->second.committed = tokens;
}

int64_t
KVCacheManager::committedTokens(RequestId seq) const
{
    auto it = sequences_.find(seq);
    return it == sequences_.end() ? 0 : it->second.committed;
}

NDArray
KVCacheManager::lengthsView(const std::vector<RequestId>& order) const
{
    std::vector<double> lens;
    lens.reserve(order.size());
    for (RequestId id : order) {
        lens.push_back((double)committedTokens(id));
    }
    return NDArray::fromVector({(int64_t)order.size()}, DataType::i64(),
                               std::move(lens));
}

NDArray
KVCacheManager::blockTableView(const std::vector<RequestId>& order,
                               int64_t width) const
{
    RELAX_ICHECK(width >= 1) << "block table width must be positive";
    std::vector<double> table;
    table.reserve(order.size() * width);
    for (RequestId id : order) {
        auto it = sequences_.find(id);
        const std::vector<int64_t>* pages =
            it == sequences_.end() ? nullptr : &it->second.pages;
        int64_t owned = pages ? (int64_t)pages->size() : 0;
        RELAX_ICHECK(owned <= width)
            << "sequence " << id << " owns " << owned
            << " pages, table width is only " << width;
        for (int64_t j = 0; j < width; ++j) {
            table.push_back(j < owned ? (double)(*pages)[j] : -1.0);
        }
    }
    return NDArray::fromVector({(int64_t)order.size(), width},
                               DataType::i64(), std::move(table));
}

} // namespace serve
} // namespace relax
