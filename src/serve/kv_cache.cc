/**
 * @file
 * KVCacheManager implementation: block math and the reserve/release
 * lifecycle over persistent VM storage (see kv_cache.h).
 */
#include "serve/kv_cache.h"

namespace relax {
namespace serve {

KVCacheManager::KVCacheManager(const frontend::LlamaConfig& config,
                               vm::VirtualMachine& machine,
                               int64_t budgetBytes, int64_t blockTokens)
    : machine_(machine), blockTokens_(blockTokens),
      bytesPerBlock_(config.kvBytesPerToken() * blockTokens),
      budgetBytes_(budgetBytes),
      totalBlocks_(bytesPerBlock_ > 0 ? budgetBytes / bytesPerBlock_ : 0)
{
    RELAX_ICHECK(blockTokens_ > 0) << "KV block size must be positive";
    RELAX_ICHECK(budgetBytes_ >= 0) << "negative KV budget";
}

KVCacheManager::~KVCacheManager()
{
    // Return every outstanding block to the device so engine teardown
    // leaves the accounting balanced.
    for (auto& [id, seq] : sequences_) {
        for (auto& block : seq.blocks) {
            machine_.releasePersistentStorage(block);
        }
    }
}

int64_t
KVCacheManager::blocksFor(int64_t tokens) const
{
    return (tokens + blockTokens_ - 1) / blockTokens_;
}

bool
KVCacheManager::canHold(RequestId seq, int64_t tokens) const
{
    int64_t owned = 0;
    auto it = sequences_.find(seq);
    if (it != sequences_.end()) owned = (int64_t)it->second.blocks.size();
    int64_t extra = blocksFor(tokens) - owned;
    if (extra <= 0) return true;
    return usedBlocks_ + extra <= totalBlocks_;
}

void
KVCacheManager::reserve(RequestId seq, int64_t tokens)
{
    if (!canHold(seq, tokens)) {
        RELAX_THROW(RuntimeError)
            << "KV budget exhausted: sequence " << seq << " needs "
            << blocksFor(tokens) << " blocks, " << usedBlocks_ << "/"
            << totalBlocks_ << " in use";
    }
    SequenceBlocks& blocks = sequences_[seq];
    int64_t target = blocksFor(tokens);
    while ((int64_t)blocks.blocks.size() < target) {
        blocks.blocks.push_back(
            machine_.allocPersistentStorage(bytesPerBlock_));
        blocks.blockIds.push_back(nextBlockId_++);
        ++usedBlocks_;
    }
    blocks.tokens = std::max(blocks.tokens, tokens);
    peakBlocks_ = std::max(peakBlocks_, usedBlocks_);
}

void
KVCacheManager::release(RequestId seq)
{
    auto it = sequences_.find(seq);
    if (it == sequences_.end()) return;
    for (auto& block : it->second.blocks) {
        machine_.releasePersistentStorage(block);
        --usedBlocks_;
    }
    sequences_.erase(it);
}

int64_t
KVCacheManager::reservedTokens(RequestId seq) const
{
    auto it = sequences_.find(seq);
    return it == sequences_.end() ? 0 : it->second.tokens;
}

void
KVCacheManager::commit(RequestId seq, int64_t tokens)
{
    auto it = sequences_.find(seq);
    RELAX_ICHECK(it != sequences_.end())
        << "commit for sequence " << seq << " without a reservation";
    RELAX_ICHECK(tokens <= it->second.tokens)
        << "commit of " << tokens << " positions exceeds the "
        << it->second.tokens << " reserved for sequence " << seq;
    it->second.committed = tokens;
}

int64_t
KVCacheManager::committedTokens(RequestId seq) const
{
    auto it = sequences_.find(seq);
    return it == sequences_.end() ? 0 : it->second.committed;
}

NDArray
KVCacheManager::lengthsView(const std::vector<RequestId>& order) const
{
    std::vector<double> lens;
    lens.reserve(order.size());
    for (RequestId id : order) {
        lens.push_back((double)committedTokens(id));
    }
    return NDArray::fromVector({(int64_t)order.size()}, DataType::i64(),
                               std::move(lens));
}

NDArray
KVCacheManager::blockTableView(const std::vector<RequestId>& order,
                               int64_t width) const
{
    RELAX_ICHECK(width >= 1) << "block table width must be positive";
    std::vector<double> table;
    table.reserve(order.size() * width);
    for (RequestId id : order) {
        auto it = sequences_.find(id);
        const std::vector<int64_t>* ids =
            it == sequences_.end() ? nullptr : &it->second.blockIds;
        int64_t owned = ids ? (int64_t)ids->size() : 0;
        RELAX_ICHECK(owned <= width)
            << "sequence " << id << " owns " << owned
            << " blocks, table width is only " << width;
        for (int64_t j = 0; j < width; ++j) {
            table.push_back(j < owned ? (double)(*ids)[j] : -1.0);
        }
    }
    return NDArray::fromVector({(int64_t)order.size(), width},
                               DataType::i64(), std::move(table));
}

} // namespace serve
} // namespace relax
