/**
 * @file
 * Token sampler: greedy argmax and seeded top-k sampling over the
 * last-position logits of a batched step — extracted from the argmax loop
 * the llm_serving example used to hand-roll. Timing mode has no logits
 * data, so a deterministic synthetic path stands in (token identity does
 * not affect the simulated clock).
 *
 * Speculative decoding extends the same surface: the draft proposes k
 * tokens, the target scores all k+1 positions in one packed call, and
 * `acceptDrafts` decides how long a prefix survives. Greedy acceptance is
 * the longest prefix whose target argmax equals the draft token; top-k
 * acceptance is standard rejection sampling (accept with probability
 * p(x)/q(x), resample the first rejected position from the adjusted
 * residual distribution max(p - q, 0)).
 */
#ifndef RELAX_SERVE_SAMPLER_H_
#define RELAX_SERVE_SAMPLER_H_

#include <random>
#include <vector>

#include "tir/ndarray.h"

namespace relax {
namespace serve {

struct SamplerOptions
{
    /** 1 = greedy argmax; k > 1 samples from the k best logits. */
    int64_t topK = 1;
    unsigned seed = 7;
};

/**
 * A renormalized top-k distribution snapshot at one packed position.
 * Tokens are held in sampling order: descending logit, ties broken by
 * ascending token id so equal logits cannot reorder across platforms.
 */
struct TokenProbs
{
    std::vector<int64_t> tokens;
    std::vector<double> probs;

    /** Probability of `token` under this distribution (0 outside support). */
    double probOf(int64_t token) const;
};

/** Outcome of verifying k draft tokens against the target distribution. */
struct SpecAcceptance
{
    /** Number of draft tokens accepted (0..k). */
    int64_t accepted = 0;
    /**
     * The token the target emits at position `accepted`: the bonus token
     * when every draft survived, otherwise the replacement resampled from
     * the adjusted distribution.
     */
    int64_t next = 0;
};

/** Greedy / top-k sampler (deterministic under a fixed seed). */
class Sampler
{
  public:
    explicit Sampler(SamplerOptions options = {});

    /**
     * Samples the next token for batch row `row` from `logits`
     * [b, s, vocab], reading the last position s-1 (data mode).
     */
    int64_t sample(const NDArray& logits, int64_t row);

    /**
     * Samples from packed varlen logits [1, t, vocab] at packed position
     * `position` (a row's last fresh token sits at cu[r+1] - 1).
     */
    int64_t samplePacked(const NDArray& logits, int64_t position);

    /**
     * The renormalized top-k distribution at packed `position` — the draft
     * model records this at propose time so `acceptDrafts` can form the
     * p/q acceptance ratio without holding the draft logits alive.
     */
    TokenProbs topKProbs(const NDArray& logits, int64_t position);

    /**
     * Verifies `drafts` against packed target logits: position `base + i`
     * holds the target distribution for draft token i, and `base + k` the
     * bonus position. `draft_probs` must align with `drafts` (ignored on
     * the greedy path, which needs only the target argmax).
     */
    SpecAcceptance acceptDrafts(const NDArray& target_logits, int64_t base,
                                const std::vector<int64_t>& drafts,
                                const std::vector<TokenProbs>& draft_probs);

    /** Timing mode: a deterministic pseudo-token in [0, vocab). */
    int64_t sampleSynthetic(int64_t vocab);

    /**
     * Timing mode stand-in for acceptDrafts: draws Bernoulli(rate) per
     * draft position until the first failure, so benches can sweep the
     * acceptance-rate axis without token data.
     */
    int64_t sampleSyntheticAcceptance(int64_t k, double rate);

    const SamplerOptions& options() const { return options_; }

  private:
    int64_t sampleFromBase(const NDArray& logits, int64_t base,
                           int64_t vocab);
    /** The k best token ids at `base`, ordered (logit desc, index asc). */
    std::vector<int64_t> topKOrder(const NDArray& logits, int64_t base,
                                   int64_t vocab, int64_t k);
    TokenProbs probsFromBase(const NDArray& logits, int64_t base,
                             int64_t vocab);
    /** Samples a token id from an explicit (token, weight) distribution. */
    int64_t sampleWeighted(const std::vector<int64_t>& tokens,
                           const std::vector<double>& weights);

    SamplerOptions options_;
    std::mt19937 rng_;
};

} // namespace serve
} // namespace relax

#endif // RELAX_SERVE_SAMPLER_H_
