/**
 * @file
 * Token sampler: greedy argmax and seeded top-k sampling over the
 * last-position logits of a batched step — extracted from the argmax loop
 * the llm_serving example used to hand-roll. Timing mode has no logits
 * data, so a deterministic synthetic path stands in (token identity does
 * not affect the simulated clock).
 */
#ifndef RELAX_SERVE_SAMPLER_H_
#define RELAX_SERVE_SAMPLER_H_

#include <random>

#include "tir/ndarray.h"

namespace relax {
namespace serve {

struct SamplerOptions
{
    /** 1 = greedy argmax; k > 1 samples from the k best logits. */
    int64_t topK = 1;
    unsigned seed = 7;
};

/** Greedy / top-k sampler (deterministic under a fixed seed). */
class Sampler
{
  public:
    explicit Sampler(SamplerOptions options = {});

    /**
     * Samples the next token for batch row `row` from `logits`
     * [b, s, vocab], reading the last position s-1 (data mode).
     */
    int64_t sample(const NDArray& logits, int64_t row);

    /**
     * Samples from packed varlen logits [1, t, vocab] at packed position
     * `position` (a row's last fresh token sits at cu[r+1] - 1).
     */
    int64_t samplePacked(const NDArray& logits, int64_t position);

    /** Timing mode: a deterministic pseudo-token in [0, vocab). */
    int64_t sampleSynthetic(int64_t vocab);

    const SamplerOptions& options() const { return options_; }

  private:
    int64_t sampleFromBase(const NDArray& logits, int64_t base,
                           int64_t vocab);

    SamplerOptions options_;
    std::mt19937 rng_;
};

} // namespace serve
} // namespace relax

#endif // RELAX_SERVE_SAMPLER_H_
