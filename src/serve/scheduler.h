/**
 * @file
 * Scheduler: iteration-level (continuous) batching policy. Owns the
 * waiting queue, admits requests into the running batch each engine step
 * when KV blocks and batch slots allow, and names the preemption victim
 * under memory pressure. Two admission policies: FCFS (head-of-line
 * blocking, strict arrival fairness) and shortest-prompt-first (smallest
 * remaining prefill next, better mean TTFT under mixed prompt lengths).
 */
#ifndef RELAX_SERVE_SCHEDULER_H_
#define RELAX_SERVE_SCHEDULER_H_

#include <deque>
#include <vector>

#include "serve/kv_cache.h"
#include "serve/request.h"

namespace relax {
namespace serve {

enum class SchedulePolicy {
    kFCFS,                //!< admit in arrival order; never reorder
    kShortestPromptFirst  //!< admit the smallest pending prefill first
};

struct SchedulerOptions
{
    SchedulePolicy policy = SchedulePolicy::kFCFS;
    /** Cap on concurrently running sequences (the symbolic-batch bound). */
    int64_t maxBatchSize = 8;
    /** Cap on prompt tokens admitted in one step (bounds prefill bursts). */
    int64_t maxPrefillTokensPerStep = 2048;
};

/** Decides who runs: admission queue + preemption victim selection. */
class Scheduler
{
  public:
    explicit Scheduler(SchedulerOptions options = {});

    /**
     * Attaches the simulated device whose clock and TraceRecorder the
     * scheduler stamps its lifecycle events with (enqueue instants with
     * queue depth, per-request admission instants with the prefix-match
     * size). Null (the default) disables emission; the engine attaches
     * its device at construction. Purely observational — admission
     * decisions never depend on it.
     */
    void attachDevice(device::SimDevice* dev) { dev_ = dev; }

    /** Adds a sequence to the waiting queue (arrival order preserved). */
    void enqueue(SequenceStatePtr seq);

    size_t waitingCount() const { return waiting_.size(); }
    bool hasWaiting() const { return !waiting_.empty(); }

    /**
     * Moves admissible sequences out of the waiting queue, reserving
     * their prefill KV blocks in `kv`. Admission stops at the first
     * candidate that does not fit (memory or batch slots), so FCFS never
     * reorders; shortest-prompt-first sorts candidates by pending prefill
     * length before applying the same rule.
     */
    std::vector<SequenceStatePtr> admit(KVCacheManager& kv,
                                        int64_t runningCount);

    /**
     * Eviction victim among `running`: the most recently admitted
     * sequence (lowest priority, least sunk prefill work). Null when
     * `running` is empty.
     */
    static SequenceStatePtr
    pickVictim(const std::vector<SequenceStatePtr>& running);

    const SchedulerOptions& options() const { return options_; }

  private:
    std::deque<SequenceStatePtr> waiting_;
    SchedulerOptions options_;
    device::SimDevice* dev_ = nullptr; //!< clock + trace lane (optional)
};

} // namespace serve
} // namespace relax

#endif // RELAX_SERVE_SCHEDULER_H_
