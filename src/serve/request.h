/**
 * @file
 * Request-level data model of the serving engine: the user-facing
 * Request, the engine-side SequenceState it becomes, and the per-request
 * latency statistics (TTFT, inter-token) measured on the simulated
 * device's virtual clock. See docs/ARCHITECTURE.md "Serving engine" for
 * the request lifecycle.
 */
#ifndef RELAX_SERVE_REQUEST_H_
#define RELAX_SERVE_REQUEST_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

namespace relax {
namespace serve {

using RequestId = int64_t;

/** One generation request submitted to the engine. */
struct Request
{
    RequestId id = -1;
    std::vector<int64_t> promptTokens;
    int64_t maxNewTokens = 16;
    /** Generation stops early when this token is sampled (-1: never). */
    int64_t stopToken = -1;
};

/** Where a request currently is in its lifecycle. */
enum class RequestPhase {
    kWaiting, //!< queued (never admitted, or preempted back)
    kRunning, //!< holds KV blocks, participates in batched steps
    kFinished //!< output complete; KV blocks released
};

/** Per-request latency statistics in virtual-clock microseconds. */
struct RequestStats
{
    double arrivalUs = 0.0;     //!< clock when addRequest() ran
    double firstTokenUs = -1.0; //!< clock when the first token was emitted
    /** Clock when the most recent token was emitted — the base the
     *  engine's inter-token-latency histogram measures each gap from.
     *  Evictions do NOT reset it (nor arrivalUs): the stall a preempted
     *  request suffers is real tail latency and must land in the
     *  distribution, measured from the original timeline. */
    double lastTokenUs = -1.0;
    double finishUs = -1.0;     //!< clock when the request completed
    int64_t prefillTokens = 0;  //!< total tokens prefilled (re-prefills count)
    int64_t generatedTokens = 0;
    int64_t preemptions = 0; //!< times this request was evicted mid-flight

    /** Time to first token; negative before the first token exists. */
    double
    ttftUs() const
    {
        return firstTokenUs < 0 ? -1.0 : firstTokenUs - arrivalUs;
    }

    /** Mean latency per generated token after the first. */
    double
    meanInterTokenUs() const
    {
        if (finishUs < 0 || generatedTokens < 2) return 0.0;
        return (finishUs - firstTokenUs) / (double)(generatedTokens - 1);
    }
};

struct SequenceState;
using SequenceStatePtr = std::shared_ptr<SequenceState>;

/** Engine-internal mutable state of one request. */
struct SequenceState
{
    Request request;
    RequestPhase phase = RequestPhase::kWaiting;
    std::vector<int64_t> generated;
    /**
     * Cache values live in the KVCacheManager's page pool, addressed by
     * this sequence's block-table row — the engine holds no cache
     * tensors per sequence.
     */
    int64_t ctxLen = 0;   //!< pool positions currently materialized
    int64_t admitSeq = -1; //!< admission order; highest = eviction victim
    RequestStats stats;

    /**
     * Tokens a (re-)prefill must process: the prompt plus everything
     * already generated — after an eviction the cache is rebuilt from
     * these, so prior outputs are preserved exactly.
     */
    std::vector<int64_t>
    prefillTokens() const
    {
        std::vector<int64_t> tokens = request.promptTokens;
        tokens.insert(tokens.end(), generated.begin(), generated.end());
        return tokens;
    }

    /** Length of prefillTokens() without materializing the vector. */
    int64_t
    prefillLength() const
    {
        return (int64_t)(request.promptTokens.size() + generated.size());
    }

    bool
    done() const
    {
        return (int64_t)generated.size() >= request.maxNewTokens ||
               (request.stopToken >= 0 && !generated.empty() &&
                generated.back() == request.stopToken);
    }
};

/** A completed request as returned by Engine::collect(). */
struct FinishedRequest
{
    RequestId id = -1;
    std::vector<int64_t> promptTokens;
    std::vector<int64_t> outputTokens;
    RequestStats stats;
};

} // namespace serve
} // namespace relax

#endif // RELAX_SERVE_REQUEST_H_
