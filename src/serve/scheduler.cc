/**
 * @file
 * Scheduler implementation: policy-ordered admission against the KV
 * budget and batch-slot caps, and victim selection (see scheduler.h).
 */
#include "serve/scheduler.h"

#include <algorithm>

namespace relax {
namespace serve {

Scheduler::Scheduler(SchedulerOptions options) : options_(options)
{
    RELAX_ICHECK(options_.maxBatchSize >= 1) << "batch size must be >= 1";
    RELAX_ICHECK(options_.maxPrefillTokensPerStep >= 1)
        << "prefill budget must be >= 1";
}

void
Scheduler::enqueue(SequenceStatePtr seq)
{
    seq->phase = RequestPhase::kWaiting;
    RequestId id = seq->request.id;
    waiting_.push_back(std::move(seq));
    if (dev_ && dev_->trace().enabled()) {
        dev_->trace().instant(trace_lanes::kEngine,
                              trace_lanes::kRequests, "enqueue",
                              "lifecycle", dev_->clockUs(),
                              {{"request", id},
                               {"queue_depth", (int64_t)waiting_.size()}});
    }
}

std::vector<SequenceStatePtr>
Scheduler::admit(KVCacheManager& kv, int64_t runningCount)
{
    std::vector<SequenceStatePtr> candidates(waiting_.begin(),
                                             waiting_.end());
    if (options_.policy == SchedulePolicy::kShortestPromptFirst) {
        std::stable_sort(candidates.begin(), candidates.end(),
                         [](const SequenceStatePtr& a,
                            const SequenceStatePtr& b) {
                             return a->prefillLength() <
                                    b->prefillLength();
                         });
    }

    std::vector<SequenceStatePtr> admitted;
    int64_t prefill_budget = options_.maxPrefillTokensPerStep;
    for (const SequenceStatePtr& seq : candidates) {
        int64_t tokens = seq->prefillLength();
        // Automatic prefix caching: before sizing the reservation, map
        // the candidate onto any indexed pool pages holding its prompt
        // prefix — shared pages cost nothing and only the unmatched
        // tail is prefilled. No hint from the caller: the cache detects
        // duplicates itself (re-admissions after eviction re-match the
        // same way, against whatever is still indexed). Undone below
        // when the candidate does not fit after all.
        if (kv.committedTokens(seq->request.id) == 0) {
            kv.matchPrefix(seq->request.id, seq->prefillTokens());
        }
        int64_t fresh = tokens - kv.committedTokens(seq->request.id);
        // A prompt above the per-step cap still admits into an idle
        // system — the cap bounds bursts, it must not strand requests.
        bool within_prefill_cap =
            fresh <= prefill_budget ||
            (admitted.empty() && runningCount == 0);
        bool fits = runningCount + (int64_t)admitted.size() <
                        options_.maxBatchSize &&
                    within_prefill_cap &&
                    kv.canHold(seq->request.id, tokens);
        // Stop at the first misfit: admitting someone behind a blocked
        // head would starve large requests under memory pressure.
        if (!fits) {
            kv.dropFork(seq->request.id); // undo a speculative fork
            break;
        }
        kv.reserve(seq->request.id, tokens);
        prefill_budget -= fresh;
        seq->phase = RequestPhase::kRunning;
        admitted.push_back(seq);
        waiting_.erase(std::find(waiting_.begin(), waiting_.end(), seq));
        if (dev_ && dev_->trace().enabled()) {
            dev_->trace().instant(
                trace_lanes::kEngine, trace_lanes::kRequests, "admit",
                "lifecycle", dev_->clockUs(),
                {{"request", seq->request.id},
                 {"prefill_tokens", fresh},
                 {"prefix_matched", tokens - fresh},
                 {"queue_depth", (int64_t)waiting_.size()}});
        }
    }
    return admitted;
}

SequenceStatePtr
Scheduler::pickVictim(const std::vector<SequenceStatePtr>& running)
{
    SequenceStatePtr victim;
    for (const SequenceStatePtr& seq : running) {
        if (!victim || seq->admitSeq > victim->admitSeq) victim = seq;
    }
    return victim;
}

} // namespace serve
} // namespace relax
