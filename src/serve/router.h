/**
 * @file
 * Router: the cluster front door above M engine replicas. Each replica
 * is a full Engine (its own device — or tensor-parallel device group —
 * compiled executable and KV pool); the router owns the arrival stream
 * and drives the replicas as one discrete-event simulation on their
 * virtual clocks.
 *
 * Placement is least-outstanding-tokens: every dispatched request
 * charges `prompt + max_new` tokens to its replica until it finishes,
 * and a new arrival goes to the replica with the smallest charge — a
 * cheap proxy for both queue depth and KV pressure that needs no
 * engine internals. Two admission-control valves sit in front:
 *
 *  - overload shedding: when even the least-loaded replica's charge
 *    exceeds `maxOutstandingTokensPerReplica`, the arrival is shed
 *    immediately (HTTP-503 semantics) instead of queueing. Under
 *    sustained overload this bounds the queue — and therefore the
 *    admitted p99 TTFT — at the cost of rejected work; with shedding
 *    off, queues (and tail TTFT) grow without bound for as long as the
 *    overload lasts. bench_router_overload measures exactly this trade.
 *  - per-tenant budgets: a tenant may hold at most
 *    `maxTenantTokensInFlight` charged tokens across all replicas;
 *    arrivals beyond that are rejected as the tenant's own overage
 *    (never shed-counted), so one chatty tenant cannot starve the rest.
 *
 * Event order: an arrival is dispatched only once every busy replica's
 * clock has reached the arrival time (so placement sees the true
 * outstanding state at that moment); otherwise the laggard replica
 * steps. Idle replicas are advanced to the arrival time through
 * hostOverhead — a replica that sat idle does not time-travel.
 *
 * Metrics (`router.*` in the router's own registry):
 *   counters  router.dispatched / router.shed / router.tenant_rejected /
 *             router.finished, plus router.tenant.<name>.rejected per
 *             budget-rejected tenant
 *   histogram router.ttft_us — admitted requests only, measured from
 *             the original arrival stamp (shed requests never enter it)
 *   gauge     router.outstanding_tokens — cluster-wide charge, sampled
 *             at every dispatch decision (admitted or not)
 */
#ifndef RELAX_SERVE_ROUTER_H_
#define RELAX_SERVE_ROUTER_H_

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/engine.h"

namespace relax {
namespace serve {

struct RouterOptions
{
    /**
     * Shed arrivals once the least-loaded replica already holds this
     * many charged tokens. 0 disables shedding (queues grow unbounded
     * under overload — the control arm of the overload bench).
     */
    int64_t maxOutstandingTokensPerReplica = 0;
    /**
     * Per-tenant cap on charged tokens in flight across the cluster.
     * 0 disables tenant budgets.
     */
    int64_t maxTenantTokensInFlight = 0;
};

/** Router-level aggregate statistics (the registry has distributions). */
struct RouterStats
{
    int64_t submitted = 0;
    int64_t dispatched = 0;
    int64_t shed = 0;           //!< rejected by the overload valve
    int64_t tenantRejected = 0; //!< rejected by the tenant budget
    int64_t finished = 0;
};

/** A completed request annotated with its routing decision. */
struct RoutedRequest
{
    std::string tenant;
    int replica = -1;
    FinishedRequest finished;
};

/** The cluster front door. */
class Router
{
  public:
    /** Takes ownership of the replicas; at least one is required. */
    Router(std::vector<std::unique_ptr<Engine>> replicas,
           RouterOptions options = {});

    /**
     * Queues an arrival for the discrete-event run. Arrivals must be
     * submitted in non-decreasing `arrival_us` order (the bench draws
     * them from a Poisson process, which is naturally ordered).
     */
    void submit(std::string tenant, std::vector<int64_t> prompt,
                int64_t max_new_tokens, double arrival_us);

    /**
     * Runs the cluster until every submitted arrival is dispatched,
     * shed, or rejected, and every dispatched request has finished.
     */
    const RouterStats& run();

    /** Finished requests in completion order; clears the buffer. */
    std::vector<RoutedRequest> collect();

    const RouterStats& stats() const { return stats_; }
    const MetricsRegistry& metrics() const { return metrics_; }
    MetricsRegistry& metrics() { return metrics_; }
    int replicaCount() const { return (int)replicas_.size(); }
    Engine& replica(int i) { return *replicas_.at((size_t)i); }
    /** Charged tokens currently in flight on replica `i`. */
    int64_t outstandingTokens(int i) const
    {
        return outstanding_.at((size_t)i);
    }
    /** Charged tokens currently in flight for `tenant` (0 if none). */
    int64_t tenantTokensInFlight(const std::string& tenant) const;

  private:
    struct Arrival
    {
        std::string tenant;
        std::vector<int64_t> prompt;
        int64_t maxNewTokens = 0;
        double arrivalUs = 0.0;
    };
    struct InFlight
    {
        std::string tenant;
        int64_t chargedTokens = 0;
    };

    void dispatch(Arrival arrival);
    void stepReplica(size_t r);
    double replicaClockUs(size_t r) const;

    std::vector<std::unique_ptr<Engine>> replicas_;
    RouterOptions options_;
    std::deque<Arrival> pending_;
    std::vector<int64_t> outstanding_; //!< charged tokens per replica
    std::map<std::string, int64_t> tenantInFlight_;
    /** (replica, engine request id) -> charge to release on finish. */
    std::map<std::pair<size_t, RequestId>, InFlight> inFlight_;
    std::vector<RoutedRequest> finished_;
    RouterStats stats_;
    MetricsRegistry metrics_;
};

} // namespace serve
} // namespace relax

#endif // RELAX_SERVE_ROUTER_H_
