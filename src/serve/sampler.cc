/**
 * @file
 * Sampler implementation: argmax fast path, softmax-weighted top-k
 * sampling, speculative draft acceptance, and the timing-mode synthetic
 * token stream (see sampler.h).
 */
#include "serve/sampler.h"

#include <algorithm>
#include <cmath>

namespace relax {
namespace serve {

double
TokenProbs::probOf(int64_t token) const
{
    for (size_t i = 0; i < tokens.size(); ++i) {
        if (tokens[i] == token) return probs[i];
    }
    return 0.0;
}

Sampler::Sampler(SamplerOptions options)
    : options_(options), rng_(options.seed)
{
    RELAX_ICHECK(options_.topK >= 1) << "topK must be at least 1";
}

int64_t
Sampler::sample(const NDArray& logits, int64_t row)
{
    RELAX_ICHECK(logits.hasData())
        << "sample: metadata-only logits (use sampleSynthetic)";
    RELAX_ICHECK(logits.shape().size() == 3) << "expected [b, s, vocab]";
    int64_t seq = logits.shape()[1];
    int64_t vocab = logits.shape()[2];
    RELAX_ICHECK(row >= 0 && row < logits.shape()[0])
        << "batch row out of range";
    return sampleFromBase(logits, (row * seq + (seq - 1)) * vocab, vocab);
}

int64_t
Sampler::samplePacked(const NDArray& logits, int64_t position)
{
    RELAX_ICHECK(logits.hasData())
        << "samplePacked: metadata-only logits (use sampleSynthetic)";
    RELAX_ICHECK(logits.shape().size() == 3 && logits.shape()[0] == 1)
        << "expected packed [1, t, vocab]";
    int64_t vocab = logits.shape()[2];
    RELAX_ICHECK(position >= 0 && position < logits.shape()[1])
        << "packed position out of range";
    return sampleFromBase(logits, position * vocab, vocab);
}

TokenProbs
Sampler::topKProbs(const NDArray& logits, int64_t position)
{
    RELAX_ICHECK(logits.hasData())
        << "topKProbs: metadata-only logits (use sampleSyntheticAcceptance)";
    RELAX_ICHECK(logits.shape().size() == 3 && logits.shape()[0] == 1)
        << "expected packed [1, t, vocab]";
    int64_t vocab = logits.shape()[2];
    RELAX_ICHECK(position >= 0 && position < logits.shape()[1])
        << "packed position out of range";
    return probsFromBase(logits, position * vocab, vocab);
}

std::vector<int64_t>
Sampler::topKOrder(const NDArray& logits, int64_t base, int64_t vocab,
                   int64_t k)
{
    std::vector<int64_t> order(vocab);
    for (int64_t v = 0; v < vocab; ++v) order[v] = v;
    // Stable (logit desc, index asc) order: equal logits must not reorder
    // across platforms or libstdc++ versions, or tied distributions would
    // sample different tokens from the same seed.
    std::partial_sort(order.begin(), order.begin() + k, order.end(),
                      [&](int64_t a, int64_t b) {
                          double la = logits.at(base + a);
                          double lb = logits.at(base + b);
                          if (la != lb) return la > lb;
                          return a < b;
                      });
    order.resize(k);
    return order;
}

TokenProbs
Sampler::probsFromBase(const NDArray& logits, int64_t base, int64_t vocab)
{
    int64_t k = std::min(options_.topK, vocab);
    TokenProbs out;
    out.tokens = topKOrder(logits, base, vocab, k);
    out.probs.resize(k);
    double max_logit = logits.at(base + out.tokens[0]);
    double total = 0.0;
    for (int64_t i = 0; i < k; ++i) {
        out.probs[i] = std::exp(logits.at(base + out.tokens[i]) - max_logit);
        total += out.probs[i];
    }
    for (int64_t i = 0; i < k; ++i) out.probs[i] /= total;
    return out;
}

int64_t
Sampler::sampleWeighted(const std::vector<int64_t>& tokens,
                        const std::vector<double>& weights)
{
    double total = 0.0;
    for (double w : weights) total += w;
    RELAX_ICHECK(total > 0.0) << "sampleWeighted: empty distribution";
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    double target = unit(rng_) * total;
    for (size_t i = 0; i < tokens.size(); ++i) {
        target -= weights[i];
        if (target <= 0) return tokens[i];
    }
    return tokens.back();
}

int64_t
Sampler::sampleFromBase(const NDArray& logits, int64_t base, int64_t vocab)
{
    if (options_.topK == 1) {
        int64_t best = 0;
        for (int64_t v = 1; v < vocab; ++v) {
            if (logits.at(base + v) > logits.at(base + best)) best = v;
        }
        return best;
    }
    TokenProbs dist = probsFromBase(logits, base, vocab);
    return sampleWeighted(dist.tokens, dist.probs);
}

SpecAcceptance
Sampler::acceptDrafts(const NDArray& target_logits, int64_t base,
                      const std::vector<int64_t>& drafts,
                      const std::vector<TokenProbs>& draft_probs)
{
    int64_t k = (int64_t)drafts.size();
    SpecAcceptance out;

    if (options_.topK == 1) {
        // Greedy: the accepted prefix is exactly what sequential greedy
        // decode would have produced, so identity with speculation off is
        // structural rather than statistical.
        for (int64_t i = 0; i < k; ++i) {
            int64_t argmax = samplePacked(target_logits, base + i);
            if (argmax != drafts[i]) {
                out.accepted = i;
                out.next = argmax;
                return out;
            }
        }
        out.accepted = k;
        out.next = samplePacked(target_logits, base + k);
        return out;
    }

    RELAX_ICHECK(draft_probs.size() == drafts.size())
        << "acceptDrafts: draft_probs must align with drafts";
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    for (int64_t i = 0; i < k; ++i) {
        TokenProbs p = topKProbs(target_logits, base + i);
        double px = p.probOf(drafts[i]);
        double qx = draft_probs[i].probOf(drafts[i]);
        RELAX_ICHECK(qx > 0.0)
            << "draft token outside its own proposal distribution";
        if (unit(rng_) <= px / qx) continue; // accepted (ratio >= 1 always is)

        // Rejected: resample from the residual max(p - q, 0) over the
        // target's support; if the draft dominates everywhere (residual
        // empty), fall back to the target distribution itself.
        std::vector<double> residual(p.tokens.size());
        double total = 0.0;
        for (size_t j = 0; j < p.tokens.size(); ++j) {
            residual[j] =
                std::max(0.0, p.probs[j] - draft_probs[i].probOf(p.tokens[j]));
            total += residual[j];
        }
        out.accepted = i;
        out.next = (total > 0.0) ? sampleWeighted(p.tokens, residual)
                                 : sampleWeighted(p.tokens, p.probs);
        return out;
    }
    out.accepted = k;
    out.next = samplePacked(target_logits, base + k);
    return out;
}

int64_t
Sampler::sampleSynthetic(int64_t vocab)
{
    RELAX_ICHECK(vocab > 0) << "empty vocabulary";
    return (int64_t)(rng_() % (uint64_t)vocab);
}

int64_t
Sampler::sampleSyntheticAcceptance(int64_t k, double rate)
{
    RELAX_ICHECK(k >= 0) << "negative draft count";
    RELAX_ICHECK(rate >= 0.0 && rate <= 1.0) << "rate must be in [0, 1]";
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    int64_t accepted = 0;
    while (accepted < k && unit(rng_) < rate) ++accepted;
    return accepted;
}

} // namespace serve
} // namespace relax
