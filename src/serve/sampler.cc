/**
 * @file
 * Sampler implementation: argmax fast path, softmax-weighted top-k
 * sampling, and the timing-mode synthetic token stream (see sampler.h).
 */
#include "serve/sampler.h"

#include <algorithm>
#include <cmath>

namespace relax {
namespace serve {

Sampler::Sampler(SamplerOptions options)
    : options_(options), rng_(options.seed)
{
    RELAX_ICHECK(options_.topK >= 1) << "topK must be at least 1";
}

int64_t
Sampler::sample(const NDArray& logits, int64_t row)
{
    RELAX_ICHECK(logits.hasData())
        << "sample: metadata-only logits (use sampleSynthetic)";
    RELAX_ICHECK(logits.shape().size() == 3) << "expected [b, s, vocab]";
    int64_t seq = logits.shape()[1];
    int64_t vocab = logits.shape()[2];
    RELAX_ICHECK(row >= 0 && row < logits.shape()[0])
        << "batch row out of range";
    return sampleFromBase(logits, (row * seq + (seq - 1)) * vocab, vocab);
}

int64_t
Sampler::samplePacked(const NDArray& logits, int64_t position)
{
    RELAX_ICHECK(logits.hasData())
        << "samplePacked: metadata-only logits (use sampleSynthetic)";
    RELAX_ICHECK(logits.shape().size() == 3 && logits.shape()[0] == 1)
        << "expected packed [1, t, vocab]";
    int64_t vocab = logits.shape()[2];
    RELAX_ICHECK(position >= 0 && position < logits.shape()[1])
        << "packed position out of range";
    return sampleFromBase(logits, position * vocab, vocab);
}

int64_t
Sampler::sampleFromBase(const NDArray& logits, int64_t base, int64_t vocab)
{
    if (options_.topK == 1) {
        int64_t best = 0;
        for (int64_t v = 1; v < vocab; ++v) {
            if (logits.at(base + v) > logits.at(base + best)) best = v;
        }
        return best;
    }

    // Top-k: softmax over the k best logits, sample the renormalized
    // distribution with the seeded generator.
    int64_t k = std::min(options_.topK, vocab);
    std::vector<int64_t> order(vocab);
    for (int64_t v = 0; v < vocab; ++v) order[v] = v;
    std::partial_sort(order.begin(), order.begin() + k, order.end(),
                      [&](int64_t a, int64_t b) {
                          return logits.at(base + a) > logits.at(base + b);
                      });
    double max_logit = logits.at(base + order[0]);
    std::vector<double> probs(k);
    double total = 0.0;
    for (int64_t i = 0; i < k; ++i) {
        probs[i] = std::exp(logits.at(base + order[i]) - max_logit);
        total += probs[i];
    }
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    double target = unit(rng_) * total;
    for (int64_t i = 0; i < k; ++i) {
        target -= probs[i];
        if (target <= 0) return order[i];
    }
    return order[k - 1];
}

int64_t
Sampler::sampleSynthetic(int64_t vocab)
{
    RELAX_ICHECK(vocab > 0) << "empty vocabulary";
    return (int64_t)(rng_() % (uint64_t)vocab);
}

} // namespace serve
} // namespace relax
