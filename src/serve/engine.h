/**
 * @file
 * Engine: the continuous-batching serving front door (addRequest / step /
 * collect) over one compiled executable and one persistent KV page pool.
 * Each step() admits waiting requests (scheduler policy + KV budget) and
 * then issues exactly ONE pool-addressed `decode_ragged` call covering
 * the whole batch — newly admitted rows contribute their fresh prompt
 * tails, already-running rows contribute one decode token each. The
 * packed varlen layout makes the mix rectangular-free: token ids ride in
 * one flat [1, total_fresh] tensor, per-row extents in a cumulative
 * offsets tensor cu_fresh [b+1] (row r owns packed positions
 * [cu[r], cu[r+1])), true context lengths in a [b] host tensor, and the
 * block table names each row's pool pages. The kernels scatter K/V
 * straight into pool pages at each row's committed offset, so a prefill
 * chunk and an n=1 decode coexist in the same call — there is no
 * grouping loop and `decode calls == steps` by construction.
 *
 * The pool tensors pass through the call and are mutated in place
 * (`kv.append_ragged` aliases its output to the pool), so the engine
 * never copies cache bytes on the host: EngineStats::relayoutBytes
 * counts any host-side cache relayout and must read 0 — the tripwire
 * scripts/check.sh gates. Prompt prefixes dedupe automatically: the
 * KV manager indexes committed page-aligned blocks by chained content
 * hash, and admission maps a new request onto any indexed pages whose
 * verified content matches its prompt (KVCacheManager::matchPrefix) —
 * no fork hint from the caller, refcounts + copy-on-write keep writers
 * private exactly as explicit forks did.
 *
 * build() compiles the executable with the graph-capture bucket equal to
 * the KV block size, so the decode shape signature moves only when the
 * batch, the packed token count or the table width crosses a bucket
 * boundary: consecutive pure-decode steps replay one captured execution
 * graph (EngineStats::decodeReplayHitRate). Under memory pressure decode
 * growth evicts the most recently admitted sequence; evicted requests
 * re-prefill prompt+generated on re-admission (re-matching whatever
 * prefix is still indexed), so outputs are preserved exactly.
 *
 * enableSpeculation() attaches a draft model (a second LlamaConfig with
 * its own weights, VM and KV pool on the shared device; own graph
 * keyspace so the two VMs never cross-replay captures). Decoding rows
 * then run propose/verify/accept per step: the draft proposes k tokens,
 * the target verifies pending+drafts as one packed n=k+1 row inside the
 * SAME step call (the prefill-chunk shape — decodeBatches == steps is
 * preserved; draft calls count in EngineStats::draftCalls), and the
 * Sampler accepts a prefix (greedy: longest argmax match + bonus token,
 * token-identical to sequential greedy; top-k: rejection sampling,
 * target-distribution preserving). Rejected tokens rewind both pools
 * via KVCacheManager::truncate; a step's COW copies price as one burst
 * launch. docs/DESIGN.md §8 is the contract.
 *
 * Works in both VM modes: data mode samples real logits (correctness
 * tests, examples); timing mode advances the simulated device clock with
 * metadata-only tensors (throughput benchmarks).
 */
#ifndef RELAX_SERVE_ENGINE_H_
#define RELAX_SERVE_ENGINE_H_

#include <map>
#include <memory>
#include <vector>

#include "device/interconnect.h"
#include "frontend/compile.h"
#include "frontend/llama.h"
#include "serve/kv_cache.h"
#include "serve/request.h"
#include "serve/sampler.h"
#include "serve/scheduler.h"
#include "support/metrics.h"
#include "vm/vm.h"

namespace relax {
namespace serve {

/**
 * Speculative decoding configuration. When `draftTokens` > 0 a second,
 * smaller model (the draft) proposes up to k tokens per running row per
 * step and the target model verifies all k+1 positions in its ONE
 * packed-varlen call — an n=k+1 row instead of n=1, no new kernels. The
 * draft runs on the same simulated device (one clock, one VRAM pool)
 * through its own VM, weights and KV page pool.
 */
struct SpeculationOptions
{
    /** Draft tokens proposed per running row per step; 0 disables. */
    int64_t draftTokens = 0;
    /**
     * The draft model. Must share the target's vocabulary (token ids
     * cross between the two models) and cover its context window.
     * Engine::build compiles it; direct-constructor callers compile it
     * themselves and hand the executable to enableSpeculation().
     */
    frontend::LlamaConfig draftConfig;
    /** Weight seed for the draft model in Engine::build. */
    unsigned draftWeightSeed = 7;
    /**
     * Timing mode has no logits to verify against, so acceptance is
     * simulated: each draft position survives an independent
     * Bernoulli(rate) draw until the first failure. Benches sweep this
     * to chart tokens/s uplift as a function of acceptance rate.
     */
    double syntheticAcceptanceRate = 0.8;
};

struct EngineOptions
{
    SchedulerOptions scheduler;
    SamplerOptions sampler;
    SpeculationOptions speculation;
    /**
     * Byte budget for the KV page pool; 0 derives one from the device:
     * (vramBytes - model weightBytes - draft footprint) * 0.8, floored
     * at one block.
     */
    int64_t kvBudgetBytes = 0;
    /** Cache positions per KV page (pool block size). */
    int64_t kvBlockTokens = 16;
    /**
     * Tensor-parallel shard count. 1 (the default) is the single-device
     * engine, byte-identical to before the option existed. N > 1 makes
     * Engine::build compile `decode_ragged` through ShardPass, stand up
     * an N-device DeviceGroup joined by `interconnect`, shard the
     * weights and KV pools Megatron-style and run every step's packed
     * call in instruction lockstep with priced ring collectives (two
     * all-reduces per layer plus a logits all-gather). Scheduling state
     * — KV budget, admission, eviction — stays in logical full-model
     * units, so the emitted token streams are identical to tp=1 and
     * `decodeBatches == steps` still holds. DESIGN.md §10.
     */
    int64_t tensorParallel = 1;
    /** Interconnect for the device group ("nvlink", "pcie_gen4"). */
    std::string interconnect = "nvlink";
};

/** Aggregate engine statistics on the virtual clock (RunStats-style). */
struct EngineStats
{
    int64_t steps = 0;
    int64_t prefillBatches = 0; //!< steps whose packed call held prefill rows
    int64_t decodeBatches = 0;  //!< packed calls issued (== steps)
    int64_t prefillTokens = 0;  //!< fresh tokens prefilled into the pool
    int64_t tokensGenerated = 0;
    int64_t requestsFinished = 0;
    int64_t evictions = 0;
    double busyUs = 0.0;      //!< device-clock time spent inside step()
    int64_t peakKvBytes = 0;  //!< high-water unique-page pool usage
    double ttftSumUs = 0.0;   //!< summed TTFT of finished requests

    /**
     * Host-side KV-cache bytes copied to relayout tensors for a compiled
     * call. The page-pool path addresses the cache in place through the
     * block table, so this must stay 0; any future host-side cache copy
     * must add to it (the zero-relayout invariant, DESIGN.md §5, gated
     * by bench_serve_throughput and scripts/check.sh).
     */
    int64_t relayoutBytes = 0;

    // Execution-graph counters, split by phase: with bucketed capture the
    // steady-state decode path should be almost all replays (the Fig. 17
    // launch-overhead win applied to serving).
    int64_t decodeGraphBegins = 0;
    int64_t decodeGraphReplays = 0;
    int64_t prefillGraphBegins = 0;
    int64_t prefillGraphReplays = 0;

    // Speculative decoding counters. The target's packed call stays ONE
    // per step (decodeBatches == steps holds with speculation on); the
    // draft model's catch-up and propose calls are tallied separately.
    int64_t draftCalls = 0;    //!< draft-model packed calls issued
    int64_t specProposed = 0;  //!< draft tokens submitted for verification
    int64_t specAccepted = 0;  //!< draft tokens the target accepted

    /** Fraction of proposed draft tokens the target accepted. */
    double
    specAcceptanceRate() const
    {
        return specProposed > 0
                   ? (double)specAccepted / (double)specProposed
                   : 0.0;
    }

    double
    tokensPerSec() const
    {
        return busyUs > 0 ? (double)tokensGenerated / busyUs * 1e6 : 0.0;
    }

    double
    meanTtftUs() const
    {
        return requestsFinished > 0 ? ttftSumUs / (double)requestsFinished
                                    : 0.0;
    }

    /** Fraction of decode-step graph regions served by replay. */
    double
    decodeReplayHitRate() const
    {
        return decodeGraphBegins > 0 ? (double)decodeGraphReplays /
                                           (double)decodeGraphBegins
                                     : 0.0;
    }
};

/** The serving engine. */
class Engine
{
  public:
    /**
     * @param exec      compiled executable with `prefill`, `decode` and
     *                  the pool-addressed `decode_ragged`
     * @param dev       simulated device the VM runs on
     * @param data_mode true: real tensors + logits sampling; false:
     *                  metadata-only timing mode
     * @param config    model config (cache geometry, vocab)
     * @param weights   FULL-model parameter tensors in builder order
     *                  (data or metadata matching `data_mode`); under
     *                  tensor parallelism the engine slices them into
     *                  per-shard sets itself
     * @param group     tensor-parallel device group; null (default) is
     *                  the single-device engine. When set, `exec` must
     *                  be a ShardPass build for group->size() shards and
     *                  `dev` must be the group's device 0.
     */
    Engine(vm::ExecutablePtr exec, std::shared_ptr<device::SimDevice> dev,
           bool data_mode, frontend::LlamaConfig config,
           std::vector<NDArray> weights, EngineOptions options = {},
           std::shared_ptr<device::DeviceGroup> group = nullptr);

    /**
     * Compiles `config` for `options.device` and builds a ready engine.
     * When `compile_options.graphBucketTokens` is 0 (auto), the capture
     * bucket is set to `options.kvBlockTokens` so execution-graph buckets
     * and KV pages share one boundary. When
     * `options.speculation.draftTokens` > 0 the draft model is compiled
     * with the same options and attached via enableSpeculation().
     */
    static std::unique_ptr<Engine>
    build(const frontend::LlamaConfig& config,
          const frontend::CompileOptions& compile_options, bool data_mode,
          EngineOptions options = {});

    /**
     * Attaches the draft model for speculative decoding:
     * `options.speculation` must have been configured (draftTokens > 0,
     * draftConfig set) at construction so the KV budget accounted for the
     * draft's footprint. The draft VM shares the engine's device — one
     * virtual clock, one VRAM pool — with its captured-graph keys
     * namespaced apart, and its KV pool is sized to the full addressable
     * envelope so draft reservations never evict. Engine::build calls
     * this automatically; direct-constructor callers (tests, fuzz
     * harnesses) pass their own compiled draft executable and weights.
     */
    void enableSpeculation(vm::ExecutablePtr draft_exec,
                           std::vector<NDArray> draft_weights);

    /** True once a draft model is attached and draftTokens > 0. */
    bool speculationEnabled() const { return draftMachine_ != nullptr; }

    /**
     * Queues a generation request; returns its id. Prompts longer than
     * the model's context window are rejected here (RuntimeError)
     * rather than surfacing later as an admission stall. `arrival_us`
     * backdates the arrival stamp TTFT is measured from (drivers that
     * replay an arrival trace admit requests at step boundaries, after
     * the true arrival time); negative means "now" on the device clock.
     *
     * Prompt-prefix sharing needs no hint here: at admission the KV
     * manager matches the prompt against its index of committed
     * page-aligned blocks (content-verified chained hashes) and maps any
     * hit onto the existing pool pages, so only the unmatched tail is
     * prefilled. Copy-on-write keeps every token stream exact, and a
     * request whose twin has already released its pages simply prefills
     * in full.
     */
    RequestId addRequest(std::vector<int64_t> prompt,
                         int64_t max_new_tokens, int64_t stop_token = -1,
                         double arrival_us = -1.0);

    /**
     * One continuous-batching iteration: retire finished sequences,
     * admit + prefill newcomers, decode the running batch. Returns false
     * (a strict no-op: no clock advance, no state change) when no
     * forward progress is possible — either nothing is waiting or
     * running, or the system is stalled (requests wait but none fit the
     * KV budget and none run). Callers driving step() directly must
     * check hasPendingWork() after a false return to tell the two
     * apart; run() turns the stall case into a RuntimeError.
     */
    bool step();

    /** True while any request is waiting or running. */
    bool hasPendingWork() const;

    /**
     * Steps until every request finishes. Throws RuntimeError when the
     * queue head can never fit the KV budget (nothing running and nothing
     * admissible).
     */
    const EngineStats& run();

    /** Returns finished requests (arrival order) and forgets them. */
    std::vector<FinishedRequest> collect();

    const EngineStats& stats() const { return stats_; }

    /**
     * The engine's metrics registry (always on; EngineStats keeps the
     * cheap aggregate view, the registry carries what aggregates cannot:
     * full TTFT and inter-token latency distributions plus per-step KV
     * pool gauges — see docs/DESIGN.md §7).
     *
     *  - serve.ttft_us / serve.itl_us histograms: recorded at token
     *    emission on the virtual clock. TTFT is measured from the
     *    request's ORIGINAL arrivalUs — a request evicted before its
     *    first token and re-admitted contributes its full queue+retry
     *    wait, never a rebased re-admission stamp; ITL gaps likewise
     *    include eviction stalls (real tail latency, vLLM semantics).
     *  - kv.used_pages / kv.free_pages / kv.occupancy gauges sampled
     *    once per step; serve.decode_replay_hit_rate likewise.
     *  - serve.* / kv.* counters mirror the event tallies (steps,
     *    tokens, evictions, COW copies, prefix hits, ...) — the fuzz
     *    oracle cross-checks them against the internal fields.
     */
    const MetricsRegistry& metrics() const { return metrics_; }
    MetricsRegistry& metrics() { return metrics_; }

    KVCacheManager& kv() { return *kv_; }
    /** The draft model's KV pool (null until enableSpeculation()). */
    KVCacheManager* draftKv() { return draftKv_.get(); }
    vm::VirtualMachine& machine() { return *machine_; }
    /** The draft model's VM (null until enableSpeculation()). */
    vm::VirtualMachine* draftMachine() { return draftMachine_.get(); }
    const frontend::LlamaConfig& config() const { return config_; }
    /** The tensor-parallel device group (null for tp=1 engines). */
    device::DeviceGroup* deviceGroup() { return group_.get(); }
    /** Tensor-parallel shard count (1 for single-device engines). */
    int tensorParallel() const { return group_ ? group_->size() : 1; }

  private:
    /** Per-row speculation state for one step: the proposed draft tokens
     *  and (top-k sampling only) the draft distribution each was drawn
     *  from, for the rejection-sampling acceptance ratio. */
    struct SpecPlan
    {
        std::vector<int64_t> drafts;
        std::vector<TokenProbs> probs;
    };

    /**
     * Issues the step's single packed `decode_ragged` call over `batch`:
     * ids [1, total] is the concatenation of the per-row `tokens`,
     * cu_fresh [b+1] their cumulative offsets, lens/table views from the
     * KV manager, pools and weights appended. Returns the packed logits
     * [1, total, vocab].
     */
    NDArray invokeRagged(const std::vector<SequenceStatePtr>& batch,
                         const std::vector<std::vector<int64_t>>& tokens);
    /** The packed-varlen call on an arbitrary (VM, KV pool, weights)
     *  triple — the target and the draft share this marshalling. */
    NDArray invokeRaggedOn(vm::VirtualMachine& vm, KVCacheManager& kv,
                           const std::vector<NDArray>& weights,
                           const std::vector<RequestId>& order,
                           const std::vector<std::vector<int64_t>>& tokens);
    /**
     * Runs the draft model for this step's speculating rows: first
     * catch-up calls replaying each row's token stream into the draft
     * pool up to the target's committed context (chunked under the
     * prefill-token cap), then k batched n=1 propose calls, each row
     * sampling its next draft token from the draft logits. Fills
     * `plans` keyed by request id.
     */
    void proposeDrafts(const std::vector<SequenceStatePtr>& rows,
                       const std::map<RequestId, int64_t>& spec_k,
                       std::map<RequestId, SpecPlan>& plans);
    /** Grows `seq` to `tokens` positions with an exclusively-owned write
     *  range [write_start, tokens), evicting under pressure (possibly
     *  `seq` itself — callers re-check the phase afterwards). */
    void ensureWritable(const SequenceStatePtr& seq, int64_t tokens,
                        int64_t write_start);
    /** Appends a sampled token; finishes the sequence when done. */
    void appendToken(const SequenceStatePtr& seq, int64_t token);
    void finishSequence(const SequenceStatePtr& seq);
    /** Preempts `victim` back to the waiting queue, dropping its pages. */
    void evict(const SequenceStatePtr& victim);
    /** Samples from packed logits at packed position (a row's last fresh
     *  token sits at cu[r+1] - 1). */
    int64_t sampleFor(const NDArray& logits, int64_t position);

    frontend::LlamaConfig config_;
    EngineOptions options_;
    std::unique_ptr<vm::VirtualMachine> machine_;
    // Tensor parallelism: the device group, the shard VMs for ranks
    // 1..N-1 (rank 0 is machine_; all share one executable) and the
    // per-rank weight sets sliced from the full weights.
    std::shared_ptr<device::DeviceGroup> group_;
    std::vector<std::unique_ptr<vm::VirtualMachine>> shardMachines_;
    std::vector<std::vector<NDArray>> shardWeights_;
    std::unique_ptr<KVCacheManager> kv_;
    Scheduler scheduler_;
    Sampler sampler_;
    std::vector<NDArray> weights_;
    // Speculative decoding: the draft model's VM (same device, own
    // graph keyspace), weights, KV pool and sampler (a separate rng so
    // draft sampling never perturbs the target's stream).
    std::unique_ptr<vm::VirtualMachine> draftMachine_;
    std::unique_ptr<KVCacheManager> draftKv_;
    std::vector<NDArray> draftWeights_;
    Sampler draftSampler_;
    std::vector<SequenceStatePtr> running_;
    std::vector<SequenceStatePtr> finished_;
    EngineStats stats_;
    MetricsRegistry metrics_;
    RequestId nextId_ = 0;
    int64_t nextAdmitSeq_ = 0;
};

} // namespace serve
} // namespace relax

#endif // RELAX_SERVE_ENGINE_H_
