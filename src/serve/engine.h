/**
 * @file
 * Engine: the continuous-batching serving front door (addRequest / step /
 * collect) over one compiled executable and one persistent KV page pool.
 * Each step() admits waiting requests (scheduler policy + KV budget),
 * prefills the newly admitted, then runs one decode iteration for every
 * running sequence — both phases through the same pool-addressed
 * `decode_ragged` function:
 *
 *  - prefill calls it with n = fresh prompt tokens: the kernels scatter
 *    K/V straight into pool pages (at each row's committed offset, so a
 *    forked request prefills only its unshared tail);
 *  - decode calls it once per step with n = 1 covering the whole running
 *    batch regardless of context lengths — the true lengths ride in a
 *    [b] host tensor and the block table names each row's pool pages.
 *
 * The pool tensors pass through the call and are mutated in place
 * (`kv.append_ragged` aliases its output to the pool), so the engine
 * never copies cache bytes on the host: EngineStats::relayoutBytes
 * counts any host-side cache relayout and must read 0 — the tripwire
 * scripts/check.sh gates. Requests may fork a running parent's prompt
 * prefix (addRequest's fork_of): admission maps the child onto the
 * parent's committed pages (refcounted, zero copies) and copy-on-write
 * keeps writers private (KVCacheManager::reserveWrite).
 *
 * build() compiles the executable with the graph-capture bucket equal to
 * the KV block size, so the decode shape signature moves only when the
 * batch or the table width crosses a bucket boundary: consecutive decode
 * steps replay one captured execution graph
 * (EngineStats::decodeReplayHitRate). Under memory pressure decode
 * growth evicts the most recently admitted sequence; evicted requests
 * re-prefill prompt+generated on re-admission (re-forking when their
 * parent still holds pages), so outputs are preserved exactly.
 *
 * Works in both VM modes: data mode samples real logits (correctness
 * tests, examples); timing mode advances the simulated device clock with
 * metadata-only tensors (throughput benchmarks).
 */
#ifndef RELAX_SERVE_ENGINE_H_
#define RELAX_SERVE_ENGINE_H_

#include <map>
#include <memory>
#include <vector>

#include "frontend/compile.h"
#include "frontend/llama.h"
#include "serve/kv_cache.h"
#include "serve/request.h"
#include "serve/sampler.h"
#include "serve/scheduler.h"
#include "vm/vm.h"

namespace relax {
namespace serve {

struct EngineOptions
{
    SchedulerOptions scheduler;
    SamplerOptions sampler;
    /**
     * Byte budget for the KV page pool; 0 derives one from the device:
     * (vramBytes - model weightBytes) * 0.8, floored at one block.
     */
    int64_t kvBudgetBytes = 0;
    /** Cache positions per KV page (pool block size). */
    int64_t kvBlockTokens = 16;
};

/** Aggregate engine statistics on the virtual clock (RunStats-style). */
struct EngineStats
{
    int64_t steps = 0;
    int64_t prefillBatches = 0; //!< prefill invocations issued
    int64_t decodeBatches = 0;  //!< decode invocations issued
    int64_t prefillTokens = 0;  //!< fresh tokens prefilled into the pool
    int64_t tokensGenerated = 0;
    int64_t requestsFinished = 0;
    int64_t evictions = 0;
    double busyUs = 0.0;      //!< device-clock time spent inside step()
    int64_t peakKvBytes = 0;  //!< high-water unique-page pool usage
    double ttftSumUs = 0.0;   //!< summed TTFT of finished requests

    /**
     * Host-side KV-cache bytes copied to relayout tensors for a compiled
     * call. The page-pool path addresses the cache in place through the
     * block table, so this must stay 0; any future host-side cache copy
     * must add to it (the zero-relayout invariant, DESIGN.md §5, gated
     * by bench_serve_throughput and scripts/check.sh).
     */
    int64_t relayoutBytes = 0;

    // Execution-graph counters, split by phase: with bucketed capture the
    // steady-state decode path should be almost all replays (the Fig. 17
    // launch-overhead win applied to serving).
    int64_t decodeGraphBegins = 0;
    int64_t decodeGraphReplays = 0;
    int64_t prefillGraphBegins = 0;
    int64_t prefillGraphReplays = 0;

    double
    tokensPerSec() const
    {
        return busyUs > 0 ? (double)tokensGenerated / busyUs * 1e6 : 0.0;
    }

    double
    meanTtftUs() const
    {
        return requestsFinished > 0 ? ttftSumUs / (double)requestsFinished
                                    : 0.0;
    }

    /** Fraction of decode-step graph regions served by replay. */
    double
    decodeReplayHitRate() const
    {
        return decodeGraphBegins > 0 ? (double)decodeGraphReplays /
                                           (double)decodeGraphBegins
                                     : 0.0;
    }
};

/** The serving engine. */
class Engine
{
  public:
    /**
     * @param exec      compiled executable with `prefill`, `decode` and
     *                  the pool-addressed `decode_ragged`
     * @param dev       simulated device the VM runs on
     * @param data_mode true: real tensors + logits sampling; false:
     *                  metadata-only timing mode
     * @param config    model config (cache geometry, vocab)
     * @param weights   parameter tensors in builder order (data or
     *                  metadata matching `data_mode`)
     */
    Engine(vm::ExecutablePtr exec, std::shared_ptr<device::SimDevice> dev,
           bool data_mode, frontend::LlamaConfig config,
           std::vector<NDArray> weights, EngineOptions options = {});

    /**
     * Compiles `config` for `options.device` and builds a ready engine.
     * When `compile_options.graphBucketTokens` is 0 (auto), the capture
     * bucket is set to `options.kvBlockTokens` so execution-graph buckets
     * and KV pages share one boundary.
     */
    static std::unique_ptr<Engine>
    build(const frontend::LlamaConfig& config,
          const frontend::CompileOptions& compile_options, bool data_mode,
          EngineOptions options = {});

    /**
     * Queues a generation request; returns its id. Prompts longer than
     * the model's context window are rejected here (RuntimeError)
     * rather than surfacing later as an admission stall. `arrival_us`
     * backdates the arrival stamp TTFT is measured from (drivers that
     * replay an arrival trace admit requests at step boundaries, after
     * the true arrival time); negative means "now" on the device clock.
     *
     * `fork_of` names an earlier request whose prompt prefix this one
     * shares (a shared system prompt): at admission the new sequence is
     * mapped onto the pool pages holding the parent's committed prefix —
     * as far as the token streams actually agree — and only the unshared
     * prompt tail is prefilled. Copy-on-write keeps both token streams
     * exact. Sharing is best-effort: if the parent has finished or been
     * evicted by then, the request prefills in full. -1 disables.
     */
    RequestId addRequest(std::vector<int64_t> prompt,
                         int64_t max_new_tokens, int64_t stop_token = -1,
                         double arrival_us = -1.0, RequestId fork_of = -1);

    /**
     * One continuous-batching iteration: retire finished sequences,
     * admit + prefill newcomers, decode the running batch. Returns false
     * (a strict no-op: no clock advance, no state change) when no
     * forward progress is possible — either nothing is waiting or
     * running, or the system is stalled (requests wait but none fit the
     * KV budget and none run). Callers driving step() directly must
     * check hasPendingWork() after a false return to tell the two
     * apart; run() turns the stall case into a RuntimeError.
     */
    bool step();

    /** True while any request is waiting or running. */
    bool hasPendingWork() const;

    /**
     * Steps until every request finishes. Throws RuntimeError when the
     * queue head can never fit the KV budget (nothing running and nothing
     * admissible).
     */
    const EngineStats& run();

    /** Returns finished requests (arrival order) and forgets them. */
    std::vector<FinishedRequest> collect();

    const EngineStats& stats() const { return stats_; }
    KVCacheManager& kv() { return *kv_; }
    vm::VirtualMachine& machine() { return *machine_; }
    const frontend::LlamaConfig& config() const { return config_; }

  private:
    void prefillSequences(std::vector<SequenceStatePtr> seqs);
    /** One pool-addressed `decode_ragged` call covering every running
     *  sequence. */
    void decodeRunning();
    /**
     * Issues one `decode_ragged` call over `batch`: ids [b, n] from
     * per-row `tokens`, lens/table views from the KV manager, pools and
     * weights appended. Returns the logits.
     */
    NDArray invokeRagged(const std::vector<SequenceStatePtr>& batch,
                         const std::vector<std::vector<int64_t>>& tokens);
    /** Grows `seq` to `tokens` positions with an exclusively-owned write
     *  range [write_start, tokens), evicting under pressure (possibly
     *  `seq` itself — callers re-check the phase afterwards). */
    void ensureWritable(const SequenceStatePtr& seq, int64_t tokens,
                        int64_t write_start);
    /** Appends a sampled token; finishes the sequence when done. */
    void appendToken(const SequenceStatePtr& seq, int64_t token);
    void finishSequence(const SequenceStatePtr& seq);
    /** Preempts `victim` back to the waiting queue, dropping its pages. */
    void evict(const SequenceStatePtr& victim);
    int64_t sampleFor(const NDArray& logits, int64_t row);
    std::vector<vm::Value> withWeights(std::vector<vm::Value> args) const;

    frontend::LlamaConfig config_;
    EngineOptions options_;
    std::unique_ptr<vm::VirtualMachine> machine_;
    std::unique_ptr<KVCacheManager> kv_;
    Scheduler scheduler_;
    Sampler sampler_;
    std::vector<NDArray> weights_;
    std::vector<SequenceStatePtr> running_;
    std::vector<SequenceStatePtr> finished_;
    std::map<RequestId, SequenceStatePtr> byId_; //!< fork-parent lookup
    EngineStats stats_;
    RequestId nextId_ = 0;
    int64_t nextAdmitSeq_ = 0;
};

} // namespace serve
} // namespace relax

#endif // RELAX_SERVE_ENGINE_H_
