/**
 * @file
 * Engine: the continuous-batching serving front door (addRequest / step /
 * collect) over one compiled prefill/decode executable. Each step()
 * admits waiting requests (scheduler policy + KV budget), runs batched
 * prefill for the newly admitted, then one decode iteration for every
 * running sequence. The default ragged decode (DecodeMode::kRagged)
 * issues a single `decode_ragged` call per step covering the whole
 * running batch regardless of context lengths: caches are padded to the
 * block-bucketed max length, the true per-sequence lengths ride in a [b]
 * host tensor, and the KVCacheManager supplies the paged-KV block table
 * the kernel consumes — exactly the cross-level dynamism the compiler
 * was built for. The legacy grouped mode (one `decode` call per
 * equal-context group) remains for the fragmentation comparison.
 * build() compiles the executable with the graph-capture bucket equal to
 * the KV block size, so the decode shape signature crosses a bucket
 * boundary only once per KV block: consecutive decode steps replay one
 * captured execution graph (EngineStats::decodeReplayHitRate).
 * Under memory pressure decode growth evicts
 * the most recently admitted sequence; evicted requests re-prefill
 * prompt+generated on re-admission, so outputs are preserved exactly.
 *
 * Works in both VM modes: data mode samples real logits (correctness
 * tests, examples); timing mode advances the simulated device clock with
 * metadata-only tensors (throughput benchmarks).
 */
#ifndef RELAX_SERVE_ENGINE_H_
#define RELAX_SERVE_ENGINE_H_

#include <memory>
#include <vector>

#include "frontend/compile.h"
#include "frontend/llama.h"
#include "serve/kv_cache.h"
#include "serve/request.h"
#include "serve/sampler.h"
#include "serve/scheduler.h"
#include "vm/vm.h"

namespace relax {
namespace serve {

/** How the engine batches the running sequences for decode. */
enum class DecodeMode {
    /**
     * Ragged paged-attention decode (default): every running sequence
     * joins one `decode_ragged` call per step regardless of context
     * length. Caches are padded to the bucketed max length, the true
     * lengths travel as a [b] host tensor, and the per-layer paged-KV
     * block tables come from the KVCacheManager.
     */
    kRagged,
    /**
     * Legacy equal-context grouping: one `decode` call per group of
     * sequences sharing a context length. Kept for the fragmentation
     * comparison in bench_serve_throughput.
     */
    kGrouped
};

struct EngineOptions
{
    SchedulerOptions scheduler;
    SamplerOptions sampler;
    /**
     * Byte budget for KV blocks; 0 derives one from the device:
     * (vramBytes - model weightBytes) * 0.8, floored at one block.
     */
    int64_t kvBudgetBytes = 0;
    /** Cache positions per KV block (page size). */
    int64_t kvBlockTokens = 16;
    /** Decode batching strategy (see DecodeMode). */
    DecodeMode decodeMode = DecodeMode::kRagged;
};

/** Aggregate engine statistics on the virtual clock (RunStats-style). */
struct EngineStats
{
    int64_t steps = 0;
    int64_t prefillBatches = 0; //!< prefill invocations issued
    int64_t decodeBatches = 0;  //!< decode invocations issued
    int64_t prefillTokens = 0;
    int64_t tokensGenerated = 0;
    int64_t requestsFinished = 0;
    int64_t evictions = 0;
    double busyUs = 0.0;      //!< device-clock time spent inside step()
    int64_t peakKvBytes = 0;  //!< high-water KV reservation
    double ttftSumUs = 0.0;   //!< summed TTFT of finished requests

    // Execution-graph counters, split by phase: with bucketed capture the
    // steady-state decode path should be almost all replays (the Fig. 17
    // launch-overhead win applied to serving).
    int64_t decodeGraphBegins = 0;
    int64_t decodeGraphReplays = 0;
    int64_t prefillGraphBegins = 0;
    int64_t prefillGraphReplays = 0;

    double
    tokensPerSec() const
    {
        return busyUs > 0 ? (double)tokensGenerated / busyUs * 1e6 : 0.0;
    }

    double
    meanTtftUs() const
    {
        return requestsFinished > 0 ? ttftSumUs / (double)requestsFinished
                                    : 0.0;
    }

    /** Fraction of decode-step graph regions served by replay. */
    double
    decodeReplayHitRate() const
    {
        return decodeGraphBegins > 0 ? (double)decodeGraphReplays /
                                           (double)decodeGraphBegins
                                     : 0.0;
    }
};

/** The serving engine. */
class Engine
{
  public:
    /**
     * @param exec      compiled executable with `prefill` and `decode`
     * @param dev       simulated device the VM runs on
     * @param data_mode true: real tensors + logits sampling; false:
     *                  metadata-only timing mode
     * @param config    model config (cache geometry, vocab)
     * @param weights   parameter tensors in builder order (data or
     *                  metadata matching `data_mode`)
     */
    Engine(vm::ExecutablePtr exec, std::shared_ptr<device::SimDevice> dev,
           bool data_mode, frontend::LlamaConfig config,
           std::vector<NDArray> weights, EngineOptions options = {});

    /**
     * Compiles `config` for `options.device` and builds a ready engine.
     * When `compile_options.graphBucketTokens` is 0 (auto), the capture
     * bucket is set to `options.kvBlockTokens` so execution-graph buckets
     * and KV pages share one boundary.
     */
    static std::unique_ptr<Engine>
    build(const frontend::LlamaConfig& config,
          const frontend::CompileOptions& compile_options, bool data_mode,
          EngineOptions options = {});

    /**
     * Queues a generation request; returns its id. `arrival_us`
     * backdates the arrival stamp TTFT is measured from (drivers that
     * replay an arrival trace admit requests at step boundaries, after
     * the true arrival time); negative means "now" on the device clock.
     */
    RequestId addRequest(std::vector<int64_t> prompt,
                         int64_t max_new_tokens, int64_t stop_token = -1,
                         double arrival_us = -1.0);

    /**
     * One continuous-batching iteration: retire finished sequences,
     * admit + prefill newcomers, decode the running batch. Returns false
     * (a strict no-op: no clock advance, no state change) when no
     * forward progress is possible — either nothing is waiting or
     * running, or the system is stalled (requests wait but none fit the
     * KV budget and none run). Callers driving step() directly must
     * check hasPendingWork() after a false return to tell the two
     * apart; run() turns the stall case into a RuntimeError.
     */
    bool step();

    /** True while any request is waiting or running. */
    bool hasPendingWork() const;

    /**
     * Steps until every request finishes. Throws RuntimeError when the
     * queue head can never fit the KV budget (nothing running and nothing
     * admissible).
     */
    const EngineStats& run();

    /** Returns finished requests (arrival order) and forgets them. */
    std::vector<FinishedRequest> collect();

    const EngineStats& stats() const { return stats_; }
    KVCacheManager& kv() { return *kv_; }
    vm::VirtualMachine& machine() { return *machine_; }
    const frontend::LlamaConfig& config() const { return config_; }

  private:
    void prefillSequences(std::vector<SequenceStatePtr> seqs);
    void decodeRunning();
    /** One ragged decode call covering every running sequence. */
    void decodeRagged();
    /** Legacy equal-context-grouped decode (one call per group). */
    void decodeGrouped();
    /** Reserves +1 growth for `seq`, evicting under pressure (possibly
     *  `seq` itself — callers re-check the phase when batching). */
    void reserveGrowth(const SequenceStatePtr& seq);
    /** Appends a sampled token; finishes the sequence when done. */
    void appendToken(const SequenceStatePtr& seq, int64_t token);
    void finishSequence(const SequenceStatePtr& seq);
    /** Preempts `victim` back to the waiting queue, dropping its cache. */
    void evict(const SequenceStatePtr& victim);
    int64_t sampleFor(const NDArray& logits, int64_t row);
    std::vector<vm::Value> withWeights(std::vector<vm::Value> args) const;

    frontend::LlamaConfig config_;
    EngineOptions options_;
    std::unique_ptr<vm::VirtualMachine> machine_;
    std::unique_ptr<KVCacheManager> kv_;
    Scheduler scheduler_;
    Sampler sampler_;
    std::vector<NDArray> weights_;
    std::vector<SequenceStatePtr> running_;
    std::vector<SequenceStatePtr> finished_;
    EngineStats stats_;
    RequestId nextId_ = 0;
    int64_t nextAdmitSeq_ = 0;
};

} // namespace serve
} // namespace relax

#endif // RELAX_SERVE_ENGINE_H_
