/**
 * @file
 * Generators of loop-level tensor programs for high-level operators: the
 * "operator to tensor program lowering" stage of the pipeline (Fig. 13).
 *
 * Generated programs share the graph-level symbolic shape expressions in
 * their buffer declarations, so code is specialized to every static
 * dimension and dynamic only in the symbolic ones (§3.3) — e.g. a Llama
 * matmul is dynamic in the batch/sequence dims but static in 4096.
 */
#ifndef RELAX_OP_TIR_KERNELS_H_
#define RELAX_OP_TIR_KERNELS_H_

#include <functional>
#include <string>
#include <vector>

#include "tir/builder.h"
#include "tir/stmt.h"

namespace relax {
namespace op {

/** Scalar combinator for elementwise kernels. */
using ScalarFn = std::function<PrimExpr(const std::vector<PrimExpr>&)>;

/**
 * out[idx] = fn(a[idx], b[idx']) with numpy-style right-aligned
 * broadcasting on the second operand (size-1 and missing leading dims).
 */
tir::PrimFunc makeEwBinaryFunc(const std::string& name,
                               const std::vector<PrimExpr>& a_shape,
                               const std::vector<PrimExpr>& b_shape,
                               const std::vector<PrimExpr>& out_shape,
                               DataType dtype, const ScalarFn& fn);

/** out[idx] = fn(a[idx]). */
tir::PrimFunc makeEwUnaryFunc(const std::string& name,
                              const std::vector<PrimExpr>& shape,
                              DataType in_dtype, DataType out_dtype,
                              const ScalarFn& fn);

/**
 * Matrix multiplication. `a_shape` is [batch..., n, k]; `b_shape` is
 * [k, m] / [m, k] (2-D weight) or [batch..., k/m, m/k] with matching batch
 * dims. `transpose_b` selects the [m, k] layout used by linear layers.
 */
tir::PrimFunc makeMatmulFunc(const std::string& name,
                             const std::vector<PrimExpr>& a_shape,
                             const std::vector<PrimExpr>& b_shape,
                             bool transpose_b, DataType dtype);

/** Softmax over the last axis. */
tir::PrimFunc makeSoftmaxFunc(const std::string& name,
                              const std::vector<PrimExpr>& shape,
                              DataType dtype);

/** Reduction over `axis` (sum / mean / max), optionally keeping the dim. */
tir::PrimFunc makeReduceFunc(const std::string& name,
                             const std::string& reduce_kind,
                             const std::vector<PrimExpr>& shape, int axis,
                             bool keepdims, DataType dtype);

/** RMSNorm over the last axis with a learned scale. */
tir::PrimFunc makeRMSNormFunc(const std::string& name,
                              const std::vector<PrimExpr>& shape,
                              double eps, DataType dtype);

/** LayerNorm over the last axis with scale and bias. */
tir::PrimFunc makeLayerNormFunc(const std::string& name,
                                const std::vector<PrimExpr>& shape,
                                double eps, DataType dtype);

/** Row-major reshape between symbolically equal element counts. */
tir::PrimFunc makeReshapeFunc(const std::string& name,
                              const std::vector<PrimExpr>& in_shape,
                              const std::vector<PrimExpr>& out_shape,
                              DataType dtype);

/** Dimension permutation. */
tir::PrimFunc makeTransposeFunc(const std::string& name,
                                const std::vector<PrimExpr>& in_shape,
                                const std::vector<int64_t>& axes,
                                DataType dtype);

/** Embedding lookup: out[..., d] = table[ids[...], d]. */
tir::PrimFunc makeTakeFunc(const std::string& name,
                           const std::vector<PrimExpr>& table_shape,
                           const std::vector<PrimExpr>& ids_shape,
                           DataType dtype);

/** Concatenation along `axis`. */
tir::PrimFunc makeConcatFunc(const std::string& name,
                             const std::vector<std::vector<PrimExpr>>& shapes,
                             int axis, DataType dtype);

/** Split into `sections` equal parts along `axis` (multi-output DPS). */
tir::PrimFunc makeSplitFunc(const std::string& name,
                            const std::vector<PrimExpr>& in_shape,
                            int sections, int axis, DataType dtype);

/** Causal mask for attention scores [b, h, n, m]. */
tir::PrimFunc makeCausalMaskFunc(const std::string& name,
                                 const std::vector<PrimExpr>& shape,
                                 DataType dtype);

/**
 * Fused scaled-dot-product attention (naive reference schedule):
 * q [b,h,n,d] x k [b,h,m,d] -> scores, softmax (optionally causal), x v
 * [b,h,m,dv]. Uses kernel-local scratch buffers.
 */
tir::PrimFunc makeAttentionFunc(const std::string& name,
                                const std::vector<PrimExpr>& q_shape,
                                const std::vector<PrimExpr>& k_shape,
                                const std::vector<PrimExpr>& v_shape,
                                double scale, bool causal, DataType dtype);

/**
 * Page-pool ragged (paged) attention over a packed varlen query batch:
 * q [1, h, n, d] carries the fresh tokens of every sequence back to
 * back (n = total fresh tokens), and `cu` [b+1] (i64, cumulative fresh
 * offsets) assigns packed query i to the row r with
 * cu[r] <= i < cu[r+1]; its local position is p = i - cu[r]. Keys are
 * gathered from the persistent KV page pool k/v [p, h, c, d] (p
 * physical pages of c positions each) through the block table: key j of
 * row r lives at `pool[table[r][j / c], h, j % c, :]` — every
 * key/value access routes through the table indirection, so page size
 * comes straight from the pool shape and the gathered footprint is what
 * gets priced. `lens` [b] (i64) holds each row's committed context
 * length; packed query i attends keys j <= lens[r] + p over the loop
 * bound m = w * c, so one call covers prefill chunks and single-token
 * decodes with unequal fresh lengths together. Keys whose page is
 * unmapped (table entry -1) or past the ragged prefix are masked, which
 * is what makes the packed layout bit-identical to per-sequence dense
 * calls.
 */
tir::PrimFunc makeRaggedAttentionFunc(const std::string& name,
                                      const std::vector<PrimExpr>& q_shape,
                                      const std::vector<PrimExpr>& k_shape,
                                      const std::vector<PrimExpr>& v_shape,
                                      const std::vector<PrimExpr>& lens_shape,
                                      const std::vector<PrimExpr>& cu_shape,
                                      const std::vector<PrimExpr>& table_shape,
                                      double scale, DataType dtype);

/**
 * Page-pool KV append of a packed varlen token batch: scatters fresh
 * [1, h, n, d] (n = total fresh tokens, rows delimited by `cu` [b+1])
 * into the pool [p, h, c, d]. Packed token i of row r (cu[r] <= i <
 * cu[r+1]) lands at global position pos = lens[r] + (i - cu[r]),
 * addressed through the block table
 * (`pool[table[r][pos / c], h, pos % c]`). Only the fresh positions are
 * written — nothing is copied, the data-mode realization of the
 * in-place paged append (a row with cu[r+1] - cu[r] > 1 is the prefill
 * ingest of a whole prompt chunk).
 */
tir::PrimFunc makeKvAppendRaggedFunc(const std::string& name,
                                     const std::vector<PrimExpr>& fresh_shape,
                                     const std::vector<PrimExpr>& lens_shape,
                                     const std::vector<PrimExpr>& cu_shape,
                                     const std::vector<PrimExpr>& table_shape,
                                     const std::vector<PrimExpr>& pool_shape,
                                     DataType dtype);

/**
 * Split-K style matmul writing partial sums into a global workspace,
 * exercising cross-level workspace lifting (Fig. 11).
 */
tir::PrimFunc makeSplitKMatmulFunc(const std::string& name,
                                   const std::vector<PrimExpr>& a_shape,
                                   const std::vector<PrimExpr>& b_shape,
                                   int64_t split_factor, DataType dtype);

/**
 * 4-bit quantized weight decode (Fig. 9): W[k,j] is unpacked from
 * uint32 words (8 nibbles each) and scaled per 32-wide group.
 */
tir::PrimFunc makeDecodeQ4Func(const std::string& name, PrimExpr k_dim,
                               PrimExpr n_dim, DataType dtype);

} // namespace op
} // namespace relax

#endif // RELAX_OP_TIR_KERNELS_H_
