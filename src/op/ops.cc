/**
 * @file
 * The operator catalog: call constructors, attribute accessors, shape
 * broadcasting and dtype promotion, and registration of every
 * operator's deduction rule and tensor-program legalization in the
 * global OpRegistry.
 */
#include "op/ops.h"

#include <cmath>

#include "arith/analyzer.h"
#include "ir/op_registry.h"
#include "op/tir_kernels.h"

namespace relax {
namespace op {

using ir::Attrs;
using ir::AttrValue;
using ir::Call;
using ir::CallNode;
using ir::Expr;
using ir::StructInfo;

namespace {

// ---------------------------------------------------------------------------
// Infer-rule helpers
// ---------------------------------------------------------------------------

const ir::TensorSInfoNode*
argTensor(const CallNode& call, size_t index, const char* op_name)
{
    RELAX_ICHECK(index < call.args.size())
        << op_name << ": missing argument " << index;
    const auto* tensor = ir::asTensor(call.args[index]->structInfo());
    if (!tensor) {
        RELAX_THROW(TypeError)
            << op_name << ": argument " << index << " is not a Tensor (got "
            << ir::toString(call.args[index]->structInfo()) << ")";
    }
    return tensor;
}

int64_t
attrInt(const CallNode& call, const std::string& key, int64_t fallback)
{
    auto it = call.attrs.find(key);
    if (it == call.attrs.end()) return fallback;
    return std::get<int64_t>(it->second);
}

double
attrDouble(const CallNode& call, const std::string& key, double fallback)
{
    auto it = call.attrs.find(key);
    if (it == call.attrs.end()) return fallback;
    return std::get<double>(it->second);
}

std::vector<int64_t>
attrIntVector(const CallNode& call, const std::string& key)
{
    auto it = call.attrs.find(key);
    RELAX_ICHECK(it != call.attrs.end()) << "missing attr " << key;
    return std::get<std::vector<int64_t>>(it->second);
}

/** Numpy-style broadcast of two symbolic shapes; nullopt on mismatch. */
std::optional<std::vector<PrimExpr>>
broadcastShapes(const std::vector<PrimExpr>& a,
                const std::vector<PrimExpr>& b)
{
    Analyzer analyzer;
    const auto& longer = a.size() >= b.size() ? a : b;
    const auto& shorter = a.size() >= b.size() ? b : a;
    size_t offset = longer.size() - shorter.size();
    std::vector<PrimExpr> out(longer.begin(), longer.end());
    for (size_t d = 0; d < shorter.size(); ++d) {
        const PrimExpr& x = longer[offset + d];
        const PrimExpr& y = shorter[d];
        if (isConstInt(y, 1)) continue;
        if (isConstInt(x, 1)) {
            out[offset + d] = y;
        } else if (!analyzer.proveEqual(x, y)) {
            return std::nullopt;
        }
    }
    return out;
}

DataType
commonDType(const ir::TensorSInfoNode* a, const ir::TensorSInfoNode* b,
            const char* op_name)
{
    if (a->dtype.isVoid()) return b->dtype;
    if (b->dtype.isVoid()) return a->dtype;
    if (a->dtype != b->dtype) {
        RELAX_THROW(TypeError)
            << op_name << ": dtype mismatch " << a->dtype.toString()
            << " vs " << b->dtype.toString();
    }
    return a->dtype;
}

StructInfo
inferEwBinary(const CallNode& call, const char* op_name)
{
    const auto* a = argTensor(call, 0, op_name);
    const auto* b = argTensor(call, 1, op_name);
    DataType dtype = commonDType(a, b, op_name);
    if (!a->shape || !b->shape) {
        int ndim = std::max(a->ndim, b->ndim);
        return ir::tensorSInfoNDim(ndim, dtype);
    }
    auto out = broadcastShapes(*a->shape, *b->shape);
    if (!out) {
        RELAX_THROW(ShapeError)
            << op_name << ": cannot broadcast "
            << relax::toString(*a->shape) << " with "
            << relax::toString(*b->shape);
    }
    return ir::tensorSInfo(std::move(*out), dtype);
}

StructInfo
inferSameShape(const CallNode& call, const char* op_name)
{
    const auto* a = argTensor(call, 0, op_name);
    if (!a->shape) return ir::tensorSInfoNDim(a->ndim, a->dtype);
    return ir::tensorSInfo(*a->shape, a->dtype);
}

const std::vector<PrimExpr>&
requireShape(const ir::TensorSInfoNode* tensor, const char* op_name)
{
    if (!tensor->shape) {
        RELAX_THROW(ShapeError)
            << op_name << ": operand shape unknown; insert match_cast to "
            << "recover symbolic dims";
    }
    return *tensor->shape;
}

// ---------------------------------------------------------------------------
// Legalization helpers
// ---------------------------------------------------------------------------

std::vector<PrimExpr>
legalShape(const CallNode& call, size_t index, const char* op_name)
{
    const auto* tensor = argTensor(call, index, op_name);
    return requireShape(tensor, op_name);
}

DataType
legalDType(const CallNode& call, size_t index)
{
    return ir::asTensor(call.args[index]->structInfo())->dtype;
}

ScalarFn
binaryFn(const std::string& op_name)
{
    if (op_name == "relax.add") {
        return [](const std::vector<PrimExpr>& a) {
            return relax::add(a[0], a[1]);
        };
    }
    if (op_name == "relax.subtract") {
        return [](const std::vector<PrimExpr>& a) {
            return relax::sub(a[0], a[1]);
        };
    }
    if (op_name == "relax.multiply") {
        return [](const std::vector<PrimExpr>& a) {
            return relax::mul(a[0], a[1]);
        };
    }
    if (op_name == "relax.divide") {
        return [](const std::vector<PrimExpr>& a) {
            return relax::div(a[0], a[1]);
        };
    }
    if (op_name == "relax.maximum") {
        return [](const std::vector<PrimExpr>& a) {
            return relax::maxExpr(a[0], a[1]);
        };
    }
    return [](const std::vector<PrimExpr>& a) {
        return relax::minExpr(a[0], a[1]);
    };
}

ScalarFn
unaryFn(const std::string& op_name)
{
    using V = std::vector<PrimExpr>;
    if (op_name == "relax.relu") {
        return [](const V& a) { return maxExpr(a[0], floatImm(0.0)); };
    }
    if (op_name == "relax.gelu") {
        // 0.5 * x * (1 + erf(x / sqrt(2)))
        return [](const V& a) {
            PrimExpr half = floatImm(0.5);
            PrimExpr erf_arg = relax::mul(a[0], floatImm(1.0 / M_SQRT2));
            PrimExpr erf_term =
                callIntrin("erf", {erf_arg}, DataType::f32());
            return relax::mul(relax::mul(half, a[0]),
                              relax::add(floatImm(1.0), erf_term));
        };
    }
    if (op_name == "relax.silu") {
        return [](const V& a) {
            return relax::mul(a[0],
                              callIntrin("sigmoid", {a[0]},
                                         DataType::f32()));
        };
    }
    if (op_name == "relax.exp") {
        return
            [](const V& a) { return callIntrin("exp", {a[0]},
                                               DataType::f32()); };
    }
    if (op_name == "relax.negative") {
        return [](const V& a) { return relax::sub(floatImm(0.0), a[0]); };
    }
    if (op_name == "relax.sqrt") {
        return [](const V& a) {
            return callIntrin("sqrt", {a[0]}, DataType::f32());
        };
    }
    if (op_name == "relax.rsqrt") {
        return [](const V& a) {
            return callIntrin("rsqrt", {a[0]}, DataType::f32());
        };
    }
    if (op_name == "relax.sigmoid") {
        return [](const V& a) {
            return callIntrin("sigmoid", {a[0]}, DataType::f32());
        };
    }
    return [](const V& a) {
        return callIntrin("tanh", {a[0]}, DataType::f32());
    };
}

} // namespace

// ---------------------------------------------------------------------------
// Registration
// ---------------------------------------------------------------------------

void
ensureOpsRegistered()
{
    static bool done = [] {
        auto& reg = ir::OpRegistry::global();

        for (const char* name :
             {"relax.add", "relax.subtract", "relax.multiply",
              "relax.divide", "relax.maximum", "relax.minimum"}) {
            ir::OpInfo& info = reg.registerOp(name);
            std::string op_name = name;
            info.inferStructInfo = [op_name](const CallNode& call) {
                return inferEwBinary(call, op_name.c_str());
            };
            info.legalize = [op_name](const CallNode& call,
                                      const std::string& fname) {
                const auto* out = ir::asTensor(call.structInfo());
                RELAX_ICHECK(out && out->shape) << "binary out shape";
                return makeEwBinaryFunc(
                    fname, legalShape(call, 0, op_name.c_str()),
                    legalShape(call, 1, op_name.c_str()), *out->shape,
                    legalDType(call, 0), binaryFn(op_name));
            };
        }

        {
            ir::OpInfo& info = reg.registerOp("relax.multiply_scalar");
            info.inferStructInfo = [](const CallNode& call) {
                return inferSameShape(call, "multiply_scalar");
            };
            info.legalize = [](const CallNode& call,
                               const std::string& fname) {
                double value = attrDouble(call, "value", 1.0);
                return makeEwUnaryFunc(
                    fname, legalShape(call, 0, "multiply_scalar"),
                    legalDType(call, 0), legalDType(call, 0),
                    [value](const std::vector<PrimExpr>& a) {
                        return relax::mul(a[0], floatImm(value));
                    });
            };
        }

        for (const char* name :
             {"relax.relu", "relax.gelu", "relax.silu", "relax.exp",
              "relax.negative", "relax.sqrt", "relax.rsqrt",
              "relax.sigmoid", "relax.tanh"}) {
            ir::OpInfo& info = reg.registerOp(name);
            std::string op_name = name;
            info.inferStructInfo = [op_name](const CallNode& call) {
                return inferSameShape(call, op_name.c_str());
            };
            info.legalize = [op_name](const CallNode& call,
                                      const std::string& fname) {
                return makeEwUnaryFunc(fname,
                                       legalShape(call, 0, op_name.c_str()),
                                       legalDType(call, 0),
                                       legalDType(call, 0),
                                       unaryFn(op_name));
            };
        }

        {
            ir::OpInfo& info = reg.registerOp("relax.cast");
            info.inferStructInfo = [](const CallNode& call) {
                const auto* a = argTensor(call, 0, "cast");
                DataType dtype = DataType::fromString(
                    std::get<std::string>(call.attrs.at("dtype")));
                if (!a->shape) return ir::tensorSInfoNDim(a->ndim, dtype);
                return ir::tensorSInfo(*a->shape, dtype);
            };
            info.legalize = [](const CallNode& call,
                               const std::string& fname) {
                DataType dtype = DataType::fromString(
                    std::get<std::string>(call.attrs.at("dtype")));
                return makeEwUnaryFunc(
                    fname, legalShape(call, 0, "cast"), legalDType(call, 0),
                    dtype, [dtype](const std::vector<PrimExpr>& a) {
                        return relax::cast(a[0], dtype);
                    });
            };
        }

        {
            ir::OpInfo& info = reg.registerOp("relax.matmul");
            info.inferStructInfo = [](const CallNode& call) {
                const auto* a = argTensor(call, 0, "matmul");
                const auto* b = argTensor(call, 1, "matmul");
                DataType dtype = commonDType(a, b, "matmul");
                bool transpose_b = attrInt(call, "transpose_b", 0) != 0;
                if (!a->shape || !b->shape) {
                    int ndim = std::max(a->ndim, b->ndim);
                    return ir::tensorSInfoNDim(ndim, dtype);
                }
                const auto& sa = *a->shape;
                const auto& sb = *b->shape;
                RELAX_ICHECK(sa.size() >= 2 && sb.size() >= 2)
                    << "matmul operands must be >= 2-D";
                PrimExpr k_a = sa.back();
                PrimExpr k_b = transpose_b ? sb.back() : sb[sb.size() - 2];
                Analyzer analyzer;
                if (!analyzer.proveEqual(k_a, k_b)) {
                    RELAX_THROW(ShapeError)
                        << "matmul reduction dims differ: "
                        << relax::toString(k_a) << " vs "
                        << relax::toString(k_b);
                }
                if (sb.size() > 2 && sb.size() != sa.size()) {
                    RELAX_THROW(ShapeError)
                        << "batched matmul rank mismatch";
                }
                std::vector<PrimExpr> out(sa.begin(), sa.end() - 1);
                out.push_back(transpose_b ? sb[sb.size() - 2] : sb.back());
                return ir::tensorSInfo(std::move(out), dtype);
            };
            info.legalize = [](const CallNode& call,
                               const std::string& fname) {
                bool transpose_b = attrInt(call, "transpose_b", 0) != 0;
                return makeMatmulFunc(fname, legalShape(call, 0, "matmul"),
                                      legalShape(call, 1, "matmul"),
                                      transpose_b, legalDType(call, 0));
            };
        }

        {
            ir::OpInfo& info = reg.registerOp("relax.softmax");
            info.inferStructInfo = [](const CallNode& call) {
                return inferSameShape(call, "softmax");
            };
            info.legalize = [](const CallNode& call,
                               const std::string& fname) {
                return makeSoftmaxFunc(fname,
                                       legalShape(call, 0, "softmax"),
                                       legalDType(call, 0));
            };
        }

        {
            ir::OpInfo& info = reg.registerOp("relax.causal_mask");
            info.inferStructInfo = [](const CallNode& call) {
                return inferSameShape(call, "causal_mask");
            };
            info.legalize = [](const CallNode& call,
                               const std::string& fname) {
                return makeCausalMaskFunc(
                    fname, legalShape(call, 0, "causal_mask"),
                    legalDType(call, 0));
            };
        }

        {
            ir::OpInfo& info = reg.registerOp("relax.attention");
            info.inferStructInfo = [](const CallNode& call) {
                const auto* q = argTensor(call, 0, "attention");
                const auto* k = argTensor(call, 1, "attention");
                const auto* v = argTensor(call, 2, "attention");
                DataType dtype = commonDType(q, v, "attention");
                if (!q->shape || !k->shape || !v->shape) {
                    return ir::tensorSInfoNDim(4, dtype);
                }
                RELAX_ICHECK(q->shape->size() == 4) << "attention is 4-D";
                Analyzer analyzer;
                if (!analyzer.proveEqual((*k->shape)[2], (*v->shape)[2])) {
                    RELAX_THROW(ShapeError)
                        << "attention: K and V sequence lengths differ";
                }
                std::vector<PrimExpr> out{(*q->shape)[0], (*q->shape)[1],
                                          (*q->shape)[2], (*v->shape)[3]};
                return ir::tensorSInfo(std::move(out), dtype);
            };
            info.legalize = [](const CallNode& call,
                               const std::string& fname) {
                return makeAttentionFunc(
                    fname, legalShape(call, 0, "attention"),
                    legalShape(call, 1, "attention"),
                    legalShape(call, 2, "attention"),
                    attrDouble(call, "scale", 1.0),
                    attrInt(call, "causal", 0) != 0, legalDType(call, 0));
            };
        }

        {
            // Page-pool ragged attention over a packed varlen batch:
            // q [1,h,n,d] (n = total fresh tokens) gathers keys/values
            // from persistent per-layer pools [p,h,c,d] through the
            // [b,w] block table; lens [b] carries per-sequence context
            // lengths and cu [b+1] the cumulative fresh offsets that
            // delimit each row's span of the packed axis (both host i64
            // tensors whose data crosses into kernel and cost rules).
            ir::OpInfo& info = reg.registerOp("relax.attention_ragged");
            info.inferStructInfo = [](const CallNode& call) {
                const auto* q = argTensor(call, 0, "attention_ragged");
                const auto* k = argTensor(call, 1, "attention_ragged");
                const auto* v = argTensor(call, 2, "attention_ragged");
                const auto* lens = argTensor(call, 3, "attention_ragged");
                const auto* cu = argTensor(call, 4, "attention_ragged");
                const auto* table = argTensor(call, 5, "attention_ragged");
                DataType dtype = commonDType(q, v, "attention_ragged");
                if (!q->shape || !k->shape || !v->shape) {
                    return ir::tensorSInfoNDim(4, dtype);
                }
                RELAX_ICHECK(q->shape->size() == 4 &&
                             k->shape->size() == 4 &&
                             v->shape->size() == 4)
                    << "attention_ragged expects q [1,h,n,d] and "
                       "pools [p,h,c,d]";
                if (lens->shape) {
                    RELAX_ICHECK(lens->shape->size() == 1)
                        << "attention_ragged: lens must be [b]";
                }
                if (cu->shape) {
                    RELAX_ICHECK(cu->shape->size() == 1)
                        << "attention_ragged: cu offsets must be [b+1]";
                }
                if (table->shape) {
                    RELAX_ICHECK(table->shape->size() == 2)
                        << "attention_ragged: block table must be [b, w]";
                }
                Analyzer analyzer;
                if (!analyzer.proveEqual((*k->shape)[2], (*v->shape)[2])) {
                    RELAX_THROW(ShapeError)
                        << "attention_ragged: K and V pool page sizes "
                           "differ";
                }
                std::vector<PrimExpr> out{(*q->shape)[0], (*q->shape)[1],
                                          (*q->shape)[2], (*v->shape)[3]};
                return ir::tensorSInfo(std::move(out), dtype);
            };
            info.legalize = [](const CallNode& call,
                               const std::string& fname) {
                return makeRaggedAttentionFunc(
                    fname, legalShape(call, 0, "attention_ragged"),
                    legalShape(call, 1, "attention_ragged"),
                    legalShape(call, 2, "attention_ragged"),
                    legalShape(call, 3, "attention_ragged"),
                    legalShape(call, 4, "attention_ragged"),
                    legalShape(call, 5, "attention_ragged"),
                    attrDouble(call, "scale", 1.0), legalDType(call, 0));
            };
        }

        for (const char* name : {"relax.sum", "relax.mean", "relax.max"}) {
            ir::OpInfo& info = reg.registerOp(name);
            std::string op_name = name;
            std::string kind = op_name.substr(6);
            info.inferStructInfo = [op_name](const CallNode& call) {
                const auto* a = argTensor(call, 0, op_name.c_str());
                int axis = (int)attrInt(call, "axis", -1);
                bool keepdims = attrInt(call, "keepdims", 0) != 0;
                if (!a->shape) {
                    int ndim = a->ndim == ir::kUnknownNDim
                                   ? ir::kUnknownNDim
                                   : a->ndim - (keepdims ? 0 : 1);
                    return ir::tensorSInfoNDim(ndim, a->dtype);
                }
                int rank = (int)a->shape->size();
                if (axis < 0) axis += rank;
                std::vector<PrimExpr> out;
                for (int d = 0; d < rank; ++d) {
                    if (d == axis) {
                        if (keepdims) out.push_back(intImm(1));
                    } else {
                        out.push_back((*a->shape)[d]);
                    }
                }
                return ir::tensorSInfo(std::move(out), a->dtype);
            };
            info.legalize = [kind](const CallNode& call,
                                   const std::string& fname) {
                return makeReduceFunc(fname, kind,
                                      legalShape(call, 0, kind.c_str()),
                                      (int)attrInt(call, "axis", -1),
                                      attrInt(call, "keepdims", 0) != 0,
                                      legalDType(call, 0));
            };
        }

        {
            ir::OpInfo& info = reg.registerOp("relax.rms_norm");
            info.inferStructInfo = [](const CallNode& call) {
                return inferSameShape(call, "rms_norm");
            };
            info.legalize = [](const CallNode& call,
                               const std::string& fname) {
                return makeRMSNormFunc(fname,
                                       legalShape(call, 0, "rms_norm"),
                                       attrDouble(call, "eps", 1e-5),
                                       legalDType(call, 0));
            };
        }

        {
            ir::OpInfo& info = reg.registerOp("relax.layer_norm");
            info.inferStructInfo = [](const CallNode& call) {
                return inferSameShape(call, "layer_norm");
            };
            info.legalize = [](const CallNode& call,
                               const std::string& fname) {
                return makeLayerNormFunc(fname,
                                         legalShape(call, 0, "layer_norm"),
                                         attrDouble(call, "eps", 1e-5),
                                         legalDType(call, 0));
            };
        }

        {
            ir::OpInfo& info = reg.registerOp("relax.reshape");
            info.inferStructInfo = [](const CallNode& call) {
                const auto* a = argTensor(call, 0, "reshape");
                RELAX_ICHECK(call.args.size() == 2)
                    << "reshape expects (tensor, shape)";
                const auto* shape_info =
                    ir::asShape(call.args[1]->structInfo());
                if (!shape_info || !shape_info->values) {
                    int ndim = shape_info ? shape_info->ndim
                                          : ir::kUnknownNDim;
                    return ir::tensorSInfoNDim(ndim, a->dtype);
                }
                const auto& target = *shape_info->values;
                if (a->shape) {
                    PrimExpr in_count = intImm(1);
                    for (const auto& d : *a->shape) {
                        in_count = relax::mul(in_count, d);
                    }
                    PrimExpr out_count = intImm(1);
                    for (const auto& d : target) {
                        out_count = relax::mul(out_count, d);
                    }
                    Analyzer analyzer;
                    if (!analyzer.proveEqual(in_count, out_count)) {
                        RELAX_THROW(ShapeError)
                            << "reshape changes element count: "
                            << relax::toString(in_count) << " vs "
                            << relax::toString(out_count);
                    }
                }
                return ir::tensorSInfo(target, a->dtype);
            };
            info.legalize = [](const CallNode& call,
                               const std::string& fname) {
                const auto* out = ir::asTensor(call.structInfo());
                RELAX_ICHECK(out && out->shape) << "reshape out shape";
                return makeReshapeFunc(fname, legalShape(call, 0, "reshape"),
                                       *out->shape, legalDType(call, 0));
            };
        }

        {
            ir::OpInfo& info = reg.registerOp("relax.flatten");
            info.inferStructInfo = [](const CallNode& call) {
                const auto* a = argTensor(call, 0, "flatten");
                if (!a->shape) return ir::tensorSInfoNDim(1, a->dtype);
                PrimExpr count = intImm(1);
                for (const auto& d : *a->shape) {
                    count = relax::mul(count, d);
                }
                Analyzer analyzer;
                return ir::tensorSInfo({analyzer.simplify(count)}, a->dtype);
            };
            info.legalize = [](const CallNode& call,
                               const std::string& fname) {
                const auto* out = ir::asTensor(call.structInfo());
                RELAX_ICHECK(out && out->shape) << "flatten out shape";
                return makeReshapeFunc(fname, legalShape(call, 0, "flatten"),
                                       *out->shape, legalDType(call, 0));
            };
        }

        {
            ir::OpInfo& info = reg.registerOp("relax.permute_dims");
            info.inferStructInfo = [](const CallNode& call) {
                const auto* a = argTensor(call, 0, "permute_dims");
                auto axes = attrIntVector(call, "axes");
                if (!a->shape) {
                    return ir::tensorSInfoNDim((int)axes.size(), a->dtype);
                }
                RELAX_ICHECK(axes.size() == a->shape->size())
                    << "permutation rank mismatch";
                std::vector<PrimExpr> out;
                for (int64_t axis : axes) {
                    out.push_back((*a->shape)[axis]);
                }
                return ir::tensorSInfo(std::move(out), a->dtype);
            };
            info.legalize = [](const CallNode& call,
                               const std::string& fname) {
                return makeTransposeFunc(fname,
                                         legalShape(call, 0, "permute_dims"),
                                         attrIntVector(call, "axes"),
                                         legalDType(call, 0));
            };
        }

        {
            ir::OpInfo& info = reg.registerOp("relax.split");
            info.inferStructInfo = [](const CallNode& call) {
                const auto* a = argTensor(call, 0, "split");
                int sections = (int)attrInt(call, "sections", 1);
                int axis = (int)attrInt(call, "axis", 0);
                std::vector<StructInfo> fields;
                if (!a->shape) {
                    for (int s = 0; s < sections; ++s) {
                        fields.push_back(
                            ir::tensorSInfoNDim(a->ndim, a->dtype));
                    }
                    return ir::tupleSInfo(std::move(fields));
                }
                int rank = (int)a->shape->size();
                if (axis < 0) axis += rank;
                Analyzer analyzer;
                std::vector<PrimExpr> part = *a->shape;
                part[axis] = analyzer.simplify(
                    floordiv((*a->shape)[axis], intImm(sections)));
                for (int s = 0; s < sections; ++s) {
                    fields.push_back(ir::tensorSInfo(part, a->dtype));
                }
                return ir::tupleSInfo(std::move(fields));
            };
            info.legalize = [](const CallNode& call,
                               const std::string& fname) {
                return makeSplitFunc(fname, legalShape(call, 0, "split"),
                                     (int)attrInt(call, "sections", 1),
                                     (int)attrInt(call, "axis", 0),
                                     legalDType(call, 0));
            };
        }

        {
            ir::OpInfo& info = reg.registerOp("relax.concat");
            info.inferStructInfo = [](const CallNode& call) {
                RELAX_ICHECK(!call.args.empty()) << "concat of nothing";
                int axis = (int)attrInt(call, "axis", 0);
                const auto* first = argTensor(call, 0, "concat");
                if (!first->shape) {
                    return ir::tensorSInfoNDim(first->ndim, first->dtype);
                }
                int rank = (int)first->shape->size();
                if (axis < 0) axis += rank;
                std::vector<PrimExpr> out = *first->shape;
                Analyzer analyzer;
                for (size_t i = 1; i < call.args.size(); ++i) {
                    const auto* t = argTensor(call, i, "concat");
                    if (!t->shape) {
                        return ir::tensorSInfoNDim(rank, first->dtype);
                    }
                    for (int d = 0; d < rank; ++d) {
                        if (d == axis) {
                            out[d] = relax::add(out[d], (*t->shape)[d]);
                        } else if (!analyzer.proveEqual(out[d],
                                                        (*t->shape)[d])) {
                            RELAX_THROW(ShapeError)
                                << "concat: non-axis dims differ";
                        }
                    }
                }
                Analyzer simplifier;
                for (auto& d : out) d = simplifier.simplify(d);
                return ir::tensorSInfo(std::move(out), first->dtype);
            };
            info.legalize = [](const CallNode& call,
                               const std::string& fname) {
                std::vector<std::vector<PrimExpr>> shapes;
                for (size_t i = 0; i < call.args.size(); ++i) {
                    shapes.push_back(legalShape(call, i, "concat"));
                }
                return makeConcatFunc(fname, shapes,
                                      (int)attrInt(call, "axis", 0),
                                      legalDType(call, 0));
            };
        }

        {
            ir::OpInfo& info = reg.registerOp("relax.take");
            info.inferStructInfo = [](const CallNode& call) {
                const auto* table = argTensor(call, 0, "take");
                const auto* ids = argTensor(call, 1, "take");
                if (!table->shape || !ids->shape) {
                    return ir::tensorSInfoNDim(
                        ids->ndim == ir::kUnknownNDim ? ir::kUnknownNDim
                                                      : ids->ndim + 1,
                        table->dtype);
                }
                std::vector<PrimExpr> out = *ids->shape;
                out.push_back((*table->shape)[1]);
                return ir::tensorSInfo(std::move(out), table->dtype);
            };
            info.legalize = [](const CallNode& call,
                               const std::string& fname) {
                return makeTakeFunc(fname, legalShape(call, 0, "take"),
                                    legalShape(call, 1, "take"),
                                    legalDType(call, 0));
            };
        }

        {
            // Data-dependent output: only the coarse fallback annotation is
            // deducible (Fig. 3); legalization stays a runtime builtin.
            ir::OpInfo& info = reg.registerOp("relax.unique");
            info.inferStructInfo = [](const CallNode& call) {
                const auto* a = argTensor(call, 0, "unique");
                return ir::tensorSInfoNDim(1, a->dtype);
            };
            info.legalize = nullptr;
        }

        return true;
    }();
    (void)done;
}

// ---------------------------------------------------------------------------
// Call constructors
// ---------------------------------------------------------------------------

namespace {

Call
makeOpCall(const std::string& name, std::vector<Expr> args, Attrs attrs = {})
{
    ensureOpsRegistered();
    return ir::makeCall(ir::getOp(name), std::move(args), std::move(attrs));
}

} // namespace

Call add(Expr a, Expr b) { return makeOpCall("relax.add", {a, b}); }
Call subtract(Expr a, Expr b)
{
    return makeOpCall("relax.subtract", {a, b});
}
Call multiply(Expr a, Expr b)
{
    return makeOpCall("relax.multiply", {a, b});
}
Call divide(Expr a, Expr b) { return makeOpCall("relax.divide", {a, b}); }
Call maximum(Expr a, Expr b) { return makeOpCall("relax.maximum", {a, b}); }
Call minimum(Expr a, Expr b) { return makeOpCall("relax.minimum", {a, b}); }

Call
multiplyScalar(Expr x, double value)
{
    Attrs attrs;
    attrs["value"] = value;
    return makeOpCall("relax.multiply_scalar", {x}, std::move(attrs));
}

Call relu(Expr x) { return makeOpCall("relax.relu", {x}); }
Call gelu(Expr x) { return makeOpCall("relax.gelu", {x}); }
Call silu(Expr x) { return makeOpCall("relax.silu", {x}); }
Call exp(Expr x) { return makeOpCall("relax.exp", {x}); }
Call negative(Expr x) { return makeOpCall("relax.negative", {x}); }
Call sqrt(Expr x) { return makeOpCall("relax.sqrt", {x}); }
Call rsqrt(Expr x) { return makeOpCall("relax.rsqrt", {x}); }
Call sigmoid(Expr x) { return makeOpCall("relax.sigmoid", {x}); }
Call tanh(Expr x) { return makeOpCall("relax.tanh", {x}); }

Call
cast(Expr x, DataType dtype)
{
    Attrs attrs;
    attrs["dtype"] = dtype.toString();
    return makeOpCall("relax.cast", {x}, std::move(attrs));
}

Call
matmul(Expr a, Expr b, bool transpose_b)
{
    Attrs attrs;
    attrs["transpose_b"] = (int64_t)(transpose_b ? 1 : 0);
    return makeOpCall("relax.matmul", {a, b}, std::move(attrs));
}

Call softmax(Expr x) { return makeOpCall("relax.softmax", {x}); }

Call
rmsNorm(Expr x, Expr weight, double eps)
{
    Attrs attrs;
    attrs["eps"] = eps;
    return makeOpCall("relax.rms_norm", {x, weight}, std::move(attrs));
}

Call
layerNorm(Expr x, Expr gamma, Expr beta, double eps)
{
    Attrs attrs;
    attrs["eps"] = eps;
    return makeOpCall("relax.layer_norm", {x, gamma, beta},
                      std::move(attrs));
}

namespace {

Call
reduceCall(const std::string& name, Expr x, int axis, bool keepdims)
{
    Attrs attrs;
    attrs["axis"] = (int64_t)axis;
    attrs["keepdims"] = (int64_t)(keepdims ? 1 : 0);
    return makeOpCall(name, {x}, std::move(attrs));
}

} // namespace

Call sum(Expr x, int axis, bool keepdims)
{
    return reduceCall("relax.sum", x, axis, keepdims);
}
Call mean(Expr x, int axis, bool keepdims)
{
    return reduceCall("relax.mean", x, axis, keepdims);
}
Call maxReduce(Expr x, int axis, bool keepdims)
{
    return reduceCall("relax.max", x, axis, keepdims);
}

Call
attention(Expr q, Expr k, Expr v, double scale, bool causal)
{
    Attrs attrs;
    attrs["scale"] = scale;
    attrs["causal"] = (int64_t)(causal ? 1 : 0);
    return makeOpCall("relax.attention", {q, k, v}, std::move(attrs));
}

Call causalMask(Expr scores)
{
    return makeOpCall("relax.causal_mask", {scores});
}

Call
attentionRagged(Expr q, Expr k, Expr v, Expr lens, Expr cu, Expr table,
                double scale)
{
    Attrs attrs;
    attrs["scale"] = scale;
    return makeOpCall("relax.attention_ragged", {q, k, v, lens, cu, table},
                      std::move(attrs));
}

Call
reshape(Expr x, Expr new_shape)
{
    return makeOpCall("relax.reshape", {x, new_shape});
}

Call flatten(Expr x) { return makeOpCall("relax.flatten", {x}); }

Call
permuteDims(Expr x, std::vector<int64_t> axes)
{
    Attrs attrs;
    attrs["axes"] = std::move(axes);
    return makeOpCall("relax.permute_dims", {x}, std::move(attrs));
}

Call
split(Expr x, int sections, int axis)
{
    Attrs attrs;
    attrs["sections"] = (int64_t)sections;
    attrs["axis"] = (int64_t)axis;
    return makeOpCall("relax.split", {x}, std::move(attrs));
}

Call
concat(std::vector<Expr> parts, int axis)
{
    Attrs attrs;
    attrs["axis"] = (int64_t)axis;
    return makeOpCall("relax.concat", std::move(parts), std::move(attrs));
}

Call take(Expr table, Expr ids)
{
    return makeOpCall("relax.take", {table, ids});
}

Call unique(Expr x) { return makeOpCall("relax.unique", {x}); }

} // namespace op
} // namespace relax
