/**
 * @file
 * High-level tensor operators: call constructors plus registration of
 * shape-deduction rules (§4.1) and tensor-program legalizations (§4.6).
 *
 * Frontends construct calls with these helpers; BlockBuilder::emit then
 * runs forward deduction using the registered rules.
 */
#ifndef RELAX_OP_OPS_H_
#define RELAX_OP_OPS_H_

#include "ir/expr.h"

namespace relax {
namespace op {

/** Idempotently registers every operator into the global registry. */
void ensureOpsRegistered();

// --- elementwise binary ----------------------------------------------------
ir::Call add(ir::Expr a, ir::Expr b);
ir::Call subtract(ir::Expr a, ir::Expr b);
ir::Call multiply(ir::Expr a, ir::Expr b);
ir::Call divide(ir::Expr a, ir::Expr b);
ir::Call maximum(ir::Expr a, ir::Expr b);
ir::Call minimum(ir::Expr a, ir::Expr b);

/** x * constant (e.g. attention 1/sqrt(d) scaling). */
ir::Call multiplyScalar(ir::Expr x, double value);

// --- elementwise unary -----------------------------------------------------
ir::Call relu(ir::Expr x);
ir::Call gelu(ir::Expr x);
ir::Call silu(ir::Expr x);
ir::Call exp(ir::Expr x);
ir::Call negative(ir::Expr x);
ir::Call sqrt(ir::Expr x);
ir::Call rsqrt(ir::Expr x);
ir::Call sigmoid(ir::Expr x);
ir::Call tanh(ir::Expr x);
ir::Call cast(ir::Expr x, DataType dtype);

// --- linear algebra ----------------------------------------------------------
/** Matrix multiply; transpose_b treats b as [m, k] (linear-layer weights). */
ir::Call matmul(ir::Expr a, ir::Expr b, bool transpose_b = false);

// --- normalization / reductions ---------------------------------------------
ir::Call softmax(ir::Expr x);
ir::Call rmsNorm(ir::Expr x, ir::Expr weight, double eps = 1e-5);
ir::Call layerNorm(ir::Expr x, ir::Expr gamma, ir::Expr beta,
                   double eps = 1e-5);
ir::Call sum(ir::Expr x, int axis, bool keepdims = false);
ir::Call mean(ir::Expr x, int axis, bool keepdims = false);
ir::Call maxReduce(ir::Expr x, int axis, bool keepdims = false);

// --- attention ----------------------------------------------------------------
/** Fused scaled-dot-product attention over [b, h, seq, dim] operands. */
ir::Call attention(ir::Expr q, ir::Expr k, ir::Expr v, double scale,
                   bool causal);
/** Standalone causal masking of score tensors. */
ir::Call causalMask(ir::Expr scores);
/**
 * Ragged paged attention over a packed varlen batch: q [1,h,n,d] packs
 * every row's fresh tokens back to back (n = total fresh), cu [b+1]
 * holds the cumulative fresh offsets delimiting each row, and lens [b]
 * the committed context lengths. Packed query i (row r, local position
 * p = i - cu[r]) attends keys j <= lens[r]+p of the persistent KV pools
 * [p,h,c,dv] (lens[r]+p+1 positions — including the key the ragged
 * append just wrote at index lens[r]+p), consulting the paged-KV block
 * table [b,w]. One call serves prefill chunks and single-token decodes
 * with unequal fresh lengths together — the serving path's cross-level
 * dynamism.
 */
ir::Call attentionRagged(ir::Expr q, ir::Expr k, ir::Expr v, ir::Expr lens,
                         ir::Expr cu, ir::Expr table, double scale);

// --- shape manipulation --------------------------------------------------------
ir::Call reshape(ir::Expr x, ir::Expr new_shape);
ir::Call flatten(ir::Expr x);
ir::Call permuteDims(ir::Expr x, std::vector<int64_t> axes);
ir::Call split(ir::Expr x, int sections, int axis);
ir::Call concat(std::vector<ir::Expr> parts, int axis);
ir::Call take(ir::Expr table, ir::Expr ids);

// --- data dependent -------------------------------------------------------------
/** Deduplication; output length is data-dependent (coarse annotation). */
ir::Call unique(ir::Expr x);

} // namespace op
} // namespace relax

#endif // RELAX_OP_OPS_H_
