/**
 * @file
 * Tensor-program generators used by legalization (makeEwBinaryFunc,
 * makeMatmulFunc, makeSoftmaxFunc, makeAttentionFunc, makeDecodeQ4Func,
 * ...), all parameterized by symbolic shapes. Broadcasting is handled by
 * index projection (broadcastIndices); reshape generates a flat-index
 * unflattening loop (unflatten) so row-major layout is preserved for
 * any symbolic shape pair.
 */
#include "op/tir_kernels.h"

#include "arith/analyzer.h"

namespace relax {
namespace op {

using namespace tir;

namespace {

/** Broadcast-aware index projection: right-aligns `shape` under `indices`
 *  and maps size-1 dims to index 0. */
std::vector<PrimExpr>
broadcastIndices(const std::vector<PrimExpr>& indices,
                 const std::vector<PrimExpr>& shape)
{
    std::vector<PrimExpr> out;
    size_t offset = indices.size() - shape.size();
    for (size_t d = 0; d < shape.size(); ++d) {
        if (isConstInt(shape[d], 1)) {
            out.push_back(intImm(0));
        } else {
            out.push_back(indices[offset + d]);
        }
    }
    return out;
}

PrimExpr
product(const std::vector<PrimExpr>& dims)
{
    PrimExpr total = intImm(1);
    for (const auto& d : dims) total = mul(total, d);
    return total;
}

/** Decomposes a flat row-major index into per-dim indices. */
std::vector<PrimExpr>
unflatten(PrimExpr flat, const std::vector<PrimExpr>& shape)
{
    std::vector<PrimExpr> indices(shape.size());
    PrimExpr rest = std::move(flat);
    for (size_t d = shape.size(); d-- > 0;) {
        if (d == 0) {
            indices[d] = rest;
        } else {
            indices[d] = floormod(rest, shape[d]);
            rest = floordiv(rest, shape[d]);
        }
    }
    return indices;
}

} // namespace

tir::PrimFunc
makeEwBinaryFunc(const std::string& name, const std::vector<PrimExpr>& a_shape,
                 const std::vector<PrimExpr>& b_shape,
                 const std::vector<PrimExpr>& out_shape, DataType dtype,
                 const ScalarFn& fn)
{
    Buffer a = makeBuffer("A", dtype, a_shape);
    Buffer b = makeBuffer("B", dtype, b_shape);
    Buffer y = makeBuffer("Y", dtype, out_shape);
    auto loop_vars = makeLoopVars(out_shape.size());
    auto indices = asExprs(loop_vars);
    PrimExpr lhs = bufferLoad(a, broadcastIndices(indices, a_shape));
    PrimExpr rhs = bufferLoad(b, broadcastIndices(indices, b_shape));
    Stmt body = nestLoops(loop_vars, out_shape,
                          makeStore(y, indices, fn({lhs, rhs})));
    return makePrimFunc(name, {a, b, y}, body);
}

tir::PrimFunc
makeEwUnaryFunc(const std::string& name, const std::vector<PrimExpr>& shape,
                DataType in_dtype, DataType out_dtype, const ScalarFn& fn)
{
    Buffer a = makeBuffer("A", in_dtype, shape);
    Buffer y = makeBuffer("Y", out_dtype, shape);
    auto loop_vars = makeLoopVars(shape.size());
    auto indices = asExprs(loop_vars);
    Stmt body = nestLoops(loop_vars, shape,
                          makeStore(y, indices, fn({bufferLoad(a, indices)})));
    return makePrimFunc(name, {a, y}, body);
}

tir::PrimFunc
makeMatmulFunc(const std::string& name, const std::vector<PrimExpr>& a_shape,
               const std::vector<PrimExpr>& b_shape, bool transpose_b,
               DataType dtype)
{
    RELAX_ICHECK(a_shape.size() >= 2 && b_shape.size() >= 2)
        << name << ": matmul operands must be >= 2-D";
    size_t batch_rank = a_shape.size() - 2;
    PrimExpr n = a_shape[batch_rank];
    PrimExpr k = a_shape[batch_rank + 1];
    bool b_batched = b_shape.size() > 2;
    RELAX_ICHECK(!b_batched || b_shape.size() == a_shape.size())
        << name << ": batched matmul rank mismatch";
    PrimExpr m = transpose_b ? b_shape[b_shape.size() - 2]
                             : b_shape[b_shape.size() - 1];

    std::vector<PrimExpr> out_shape(a_shape.begin(),
                                    a_shape.begin() + batch_rank);
    out_shape.push_back(n);
    out_shape.push_back(m);

    Buffer a = makeBuffer("A", dtype, a_shape);
    Buffer b = makeBuffer("B", dtype, b_shape);
    Buffer y = makeBuffer("Y", dtype, out_shape);

    auto batch_vars = makeLoopVars(batch_rank, "b");
    Var i = var("i"), j = var("j"), r = var("r");

    std::vector<PrimExpr> a_idx = asExprs(batch_vars);
    a_idx.push_back(i);
    a_idx.push_back(r);
    std::vector<PrimExpr> b_idx;
    if (b_batched) b_idx = asExprs(batch_vars);
    if (transpose_b) {
        b_idx.push_back(j);
        b_idx.push_back(r);
    } else {
        b_idx.push_back(r);
        b_idx.push_back(j);
    }
    std::vector<PrimExpr> y_idx = asExprs(batch_vars);
    y_idx.push_back(i);
    y_idx.push_back(j);

    Stmt init = makeIf(eq(r, intImm(0)), makeStore(y, y_idx, floatImm(0.0)));
    Stmt update =
        makeStore(y, y_idx,
                  add(bufferLoad(y, y_idx),
                      mul(bufferLoad(a, a_idx), bufferLoad(b, b_idx))));

    std::vector<Var> loop_vars = batch_vars;
    loop_vars.insert(loop_vars.end(), {i, j, r});
    std::vector<PrimExpr> extents(a_shape.begin(),
                                  a_shape.begin() + batch_rank);
    extents.insert(extents.end(), {n, m, k});
    Stmt body = nestLoops(loop_vars, extents, makeSeq({init, update}));
    return makePrimFunc(name, {a, b, y}, body);
}

tir::PrimFunc
makeSoftmaxFunc(const std::string& name, const std::vector<PrimExpr>& shape,
                DataType dtype)
{
    Buffer a = makeBuffer("A", dtype, shape);
    Buffer y = makeBuffer("Y", dtype, shape);
    std::vector<PrimExpr> row_shape(shape.begin(), shape.end() - 1);
    Buffer row_max = makeBuffer("row_max", DataType::f32(), row_shape);
    Buffer row_sum = makeBuffer("row_sum", DataType::f32(), row_shape);
    PrimExpr last = shape.back();
    size_t rank = shape.size();

    auto rowLoops = [&](const std::string& prefix, Stmt inner,
                        const std::vector<Var>& vars) {
        std::vector<PrimExpr> extents(shape.begin(), shape.end() - 1);
        return nestLoops(vars, extents, std::move(inner));
    };

    // Pass 1: row max.
    auto v1 = makeLoopVars(rank - 1, "a");
    Var k1 = var("k");
    std::vector<PrimExpr> row1 = asExprs(v1);
    std::vector<PrimExpr> full1 = row1;
    full1.push_back(k1);
    Stmt max_init = makeIf(eq(k1, intImm(0)),
                           makeStore(row_max, row1, floatImm(-1e30)));
    Stmt max_update = makeStore(
        row_max, row1, maxExpr(bufferLoad(row_max, row1),
                               bufferLoad(a, full1)));
    Stmt pass1 = rowLoops("a", makeFor(k1, last, makeSeq({max_init,
                                                          max_update})),
                          v1);

    // Pass 2: exp-sum.
    auto v2 = makeLoopVars(rank - 1, "b");
    Var k2 = var("k");
    std::vector<PrimExpr> row2 = asExprs(v2);
    std::vector<PrimExpr> full2 = row2;
    full2.push_back(k2);
    Stmt sum_init =
        makeIf(eq(k2, intImm(0)), makeStore(row_sum, row2, floatImm(0.0)));
    Stmt sum_update = makeStore(
        row_sum, row2,
        add(bufferLoad(row_sum, row2),
            callIntrin("exp",
                       {sub(bufferLoad(a, full2),
                            bufferLoad(row_max, row2))},
                       DataType::f32())));
    Stmt pass2 = rowLoops("b", makeFor(k2, last, makeSeq({sum_init,
                                                          sum_update})),
                          v2);

    // Pass 3: normalize.
    auto v3 = makeLoopVars(rank - 1, "c");
    Var k3 = var("k");
    std::vector<PrimExpr> row3 = asExprs(v3);
    std::vector<PrimExpr> full3 = row3;
    full3.push_back(k3);
    Stmt pass3 = rowLoops(
        "c",
        makeFor(k3, last,
                makeStore(y, full3,
                          div(callIntrin("exp",
                                         {sub(bufferLoad(a, full3),
                                              bufferLoad(row_max, row3))},
                                         DataType::f32()),
                              bufferLoad(row_sum, row3)))),
        v3);

    Stmt body = makeAllocBuffer(
        row_max, "local",
        makeAllocBuffer(row_sum, "local", makeSeq({pass1, pass2, pass3})));
    return makePrimFunc(name, {a, y}, body);
}

tir::PrimFunc
makeReduceFunc(const std::string& name, const std::string& reduce_kind,
               const std::vector<PrimExpr>& shape, int axis, bool keepdims,
               DataType dtype)
{
    if (axis < 0) axis += (int)shape.size();
    RELAX_ICHECK(axis >= 0 && axis < (int)shape.size()) << "bad axis";
    std::vector<PrimExpr> out_shape;
    for (int d = 0; d < (int)shape.size(); ++d) {
        if (d == axis) {
            if (keepdims) out_shape.push_back(intImm(1));
        } else {
            out_shape.push_back(shape[d]);
        }
    }
    Buffer a = makeBuffer("A", dtype, shape);
    Buffer y = makeBuffer("Y", dtype, out_shape);

    auto outer_vars = makeLoopVars(shape.size() - 1, "o");
    Var k = var("k");
    std::vector<PrimExpr> in_idx;
    std::vector<PrimExpr> out_idx;
    {
        size_t next = 0;
        for (int d = 0; d < (int)shape.size(); ++d) {
            if (d == axis) {
                in_idx.push_back(k);
                if (keepdims) out_idx.push_back(intImm(0));
            } else {
                in_idx.push_back(outer_vars[next]);
                out_idx.push_back(outer_vars[next]);
                ++next;
            }
        }
    }

    double init_value = reduce_kind == "max" ? -1e30 : 0.0;
    Stmt init = makeIf(eq(k, intImm(0)),
                       makeStore(y, out_idx, floatImm(init_value)));
    PrimExpr combined;
    if (reduce_kind == "max") {
        combined = maxExpr(bufferLoad(y, out_idx), bufferLoad(a, in_idx));
    } else {
        combined = add(bufferLoad(y, out_idx), bufferLoad(a, in_idx));
    }
    std::vector<Stmt> steps{init, makeStore(y, out_idx, combined)};
    if (reduce_kind == "mean") {
        steps.push_back(makeIf(
            eq(k, sub(shape[axis], intImm(1))),
            makeStore(y, out_idx,
                      div(bufferLoad(y, out_idx),
                          cast(shape[axis], DataType::f32())))));
    }

    std::vector<Var> loop_vars = outer_vars;
    loop_vars.push_back(k);
    std::vector<PrimExpr> extents;
    for (int d = 0; d < (int)shape.size(); ++d) {
        if (d != axis) extents.push_back(shape[d]);
    }
    extents.push_back(shape[axis]);
    Stmt body = nestLoops(loop_vars, extents, makeSeq(std::move(steps)));
    return makePrimFunc(name, {a, y}, body);
}

tir::PrimFunc
makeRMSNormFunc(const std::string& name, const std::vector<PrimExpr>& shape,
                double eps, DataType dtype)
{
    PrimExpr last = shape.back();
    std::vector<PrimExpr> row_shape(shape.begin(), shape.end() - 1);
    Buffer a = makeBuffer("A", dtype, shape);
    Buffer w = makeBuffer("Wn", dtype, {last});
    Buffer y = makeBuffer("Y", dtype, shape);
    Buffer ss = makeBuffer("sqsum", DataType::f32(), row_shape);

    size_t rank = shape.size();
    auto v1 = makeLoopVars(rank - 1, "a");
    Var k1 = var("k");
    std::vector<PrimExpr> row1 = asExprs(v1);
    std::vector<PrimExpr> full1 = row1;
    full1.push_back(k1);
    Stmt init = makeIf(eq(k1, intImm(0)), makeStore(ss, row1, floatImm(0.0)));
    Stmt acc = makeStore(ss, row1,
                         add(bufferLoad(ss, row1),
                             mul(bufferLoad(a, full1), bufferLoad(a, full1))));
    std::vector<PrimExpr> extents1(shape.begin(), shape.end());
    std::vector<Var> loops1 = v1;
    loops1.push_back(k1);
    Stmt pass1 = nestLoops(loops1, extents1, makeSeq({init, acc}));

    auto v2 = makeLoopVars(rank - 1, "b");
    Var k2 = var("k");
    std::vector<PrimExpr> row2 = asExprs(v2);
    std::vector<PrimExpr> full2 = row2;
    full2.push_back(k2);
    PrimExpr inv = callIntrin(
        "rsqrt",
        {add(div(bufferLoad(ss, row2), cast(last, DataType::f32())),
             floatImm(eps))},
        DataType::f32());
    std::vector<Var> loops2 = v2;
    loops2.push_back(k2);
    Stmt pass2 = nestLoops(
        loops2, extents1,
        makeStore(y, full2,
                  mul(mul(bufferLoad(a, full2), inv),
                      bufferLoad(w, {k2}))));

    Stmt body = makeAllocBuffer(ss, "local", makeSeq({pass1, pass2}));
    return makePrimFunc(name, {a, w, y}, body);
}

tir::PrimFunc
makeLayerNormFunc(const std::string& name, const std::vector<PrimExpr>& shape,
                  double eps, DataType dtype)
{
    PrimExpr last = shape.back();
    std::vector<PrimExpr> row_shape(shape.begin(), shape.end() - 1);
    Buffer a = makeBuffer("A", dtype, shape);
    Buffer gamma = makeBuffer("G", dtype, {last});
    Buffer beta = makeBuffer("Bb", dtype, {last});
    Buffer y = makeBuffer("Y", dtype, shape);
    Buffer mean = makeBuffer("mean", DataType::f32(), row_shape);
    Buffer varb = makeBuffer("variance", DataType::f32(), row_shape);

    size_t rank = shape.size();
    PrimExpr count = cast(last, DataType::f32());

    auto v1 = makeLoopVars(rank - 1, "a");
    Var k1 = var("k");
    std::vector<PrimExpr> row1 = asExprs(v1);
    std::vector<PrimExpr> full1 = row1;
    full1.push_back(k1);
    std::vector<Var> loops1 = v1;
    loops1.push_back(k1);
    Stmt pass1 = nestLoops(
        loops1, shape,
        makeSeq({makeIf(eq(k1, intImm(0)),
                        makeStore(mean, row1, floatImm(0.0))),
                 makeStore(mean, row1,
                           add(bufferLoad(mean, row1),
                               bufferLoad(a, full1))),
                 makeIf(eq(k1, sub(last, intImm(1))),
                        makeStore(mean, row1,
                                  div(bufferLoad(mean, row1), count)))}));

    auto v2 = makeLoopVars(rank - 1, "b");
    Var k2 = var("k");
    std::vector<PrimExpr> row2 = asExprs(v2);
    std::vector<PrimExpr> full2 = row2;
    full2.push_back(k2);
    std::vector<Var> loops2 = v2;
    loops2.push_back(k2);
    PrimExpr centered = sub(bufferLoad(a, full2), bufferLoad(mean, row2));
    Stmt pass2 = nestLoops(
        loops2, shape,
        makeSeq({makeIf(eq(k2, intImm(0)),
                        makeStore(varb, row2, floatImm(0.0))),
                 makeStore(varb, row2,
                           add(bufferLoad(varb, row2),
                               mul(centered, centered))),
                 makeIf(eq(k2, sub(last, intImm(1))),
                        makeStore(varb, row2,
                                  div(bufferLoad(varb, row2), count)))}));

    auto v3 = makeLoopVars(rank - 1, "c");
    Var k3 = var("k");
    std::vector<PrimExpr> row3 = asExprs(v3);
    std::vector<PrimExpr> full3 = row3;
    full3.push_back(k3);
    std::vector<Var> loops3 = v3;
    loops3.push_back(k3);
    PrimExpr norm = mul(sub(bufferLoad(a, full3), bufferLoad(mean, row3)),
                        callIntrin("rsqrt",
                                   {add(bufferLoad(varb, row3),
                                        floatImm(eps))},
                                   DataType::f32()));
    Stmt pass3 = nestLoops(
        loops3, shape,
        makeStore(y, full3,
                  add(mul(norm, bufferLoad(gamma, {k3})),
                      bufferLoad(beta, {k3}))));

    Stmt body = makeAllocBuffer(
        mean, "local",
        makeAllocBuffer(varb, "local", makeSeq({pass1, pass2, pass3})));
    return makePrimFunc(name, {a, gamma, beta, y}, body);
}

tir::PrimFunc
makeReshapeFunc(const std::string& name,
                const std::vector<PrimExpr>& in_shape,
                const std::vector<PrimExpr>& out_shape, DataType dtype)
{
    Buffer a = makeBuffer("A", dtype, in_shape);
    Buffer y = makeBuffer("Y", dtype, out_shape);
    Var f = var("f");
    Stmt body =
        makeFor(f, product(out_shape),
                makeStore(y, unflatten(f, out_shape),
                          bufferLoad(a, unflatten(f, in_shape))));
    return makePrimFunc(name, {a, y}, body);
}

tir::PrimFunc
makeTransposeFunc(const std::string& name,
                  const std::vector<PrimExpr>& in_shape,
                  const std::vector<int64_t>& axes, DataType dtype)
{
    RELAX_ICHECK(axes.size() == in_shape.size()) << "bad permutation";
    std::vector<PrimExpr> out_shape;
    for (int64_t axis : axes) out_shape.push_back(in_shape[axis]);
    Buffer a = makeBuffer("A", dtype, in_shape);
    Buffer y = makeBuffer("Y", dtype, out_shape);
    auto loop_vars = makeLoopVars(out_shape.size());
    // out[i0,...,ir] = a[inverse_perm(i)]
    std::vector<PrimExpr> in_idx(in_shape.size());
    for (size_t d = 0; d < axes.size(); ++d) {
        in_idx[axes[d]] = loop_vars[d];
    }
    Stmt body = nestLoops(loop_vars, out_shape,
                          makeStore(y, asExprs(loop_vars),
                                    bufferLoad(a, in_idx)));
    return makePrimFunc(name, {a, y}, body);
}

tir::PrimFunc
makeTakeFunc(const std::string& name,
             const std::vector<PrimExpr>& table_shape,
             const std::vector<PrimExpr>& ids_shape, DataType dtype)
{
    RELAX_ICHECK(table_shape.size() == 2) << "take expects a 2-D table";
    Buffer table = makeBuffer("T", dtype, table_shape);
    Buffer ids = makeBuffer("I", DataType::i64(), ids_shape);
    std::vector<PrimExpr> out_shape = ids_shape;
    out_shape.push_back(table_shape[1]);
    Buffer y = makeBuffer("Y", dtype, out_shape);

    auto loop_vars = makeLoopVars(out_shape.size());
    std::vector<PrimExpr> ids_idx(loop_vars.begin(), loop_vars.end() - 1);
    std::vector<PrimExpr> table_idx{
        cast(bufferLoad(ids, ids_idx), DataType::i64()), loop_vars.back()};
    Stmt body = nestLoops(loop_vars, out_shape,
                          makeStore(y, asExprs(loop_vars),
                                    bufferLoad(table, table_idx)));
    return makePrimFunc(name, {table, ids, y}, body);
}

tir::PrimFunc
makeConcatFunc(const std::string& name,
               const std::vector<std::vector<PrimExpr>>& shapes, int axis,
               DataType dtype)
{
    RELAX_ICHECK(!shapes.empty()) << "concat of nothing";
    size_t rank = shapes[0].size();
    if (axis < 0) axis += (int)rank;
    std::vector<PrimExpr> out_shape = shapes[0];
    for (size_t q = 1; q < shapes.size(); ++q) {
        out_shape[axis] = add(out_shape[axis], shapes[q][axis]);
    }
    std::vector<Buffer> params;
    for (size_t q = 0; q < shapes.size(); ++q) {
        params.push_back(
            makeBuffer("A" + std::to_string(q), dtype, shapes[q]));
    }
    Buffer y = makeBuffer("Y", dtype, out_shape);

    // One loop nest per input, writing its slab at the running offset.
    std::vector<Stmt> pieces;
    PrimExpr offset = intImm(0);
    for (size_t q = 0; q < shapes.size(); ++q) {
        auto loop_vars = makeLoopVars(rank, "q" + std::to_string(q) + "_");
        std::vector<PrimExpr> out_idx = asExprs(loop_vars);
        out_idx[axis] = add(out_idx[axis], offset);
        pieces.push_back(nestLoops(
            loop_vars, shapes[q],
            makeStore(y, out_idx, bufferLoad(params[q],
                                             asExprs(loop_vars)))));
        offset = add(offset, shapes[q][axis]);
    }
    params.push_back(y);
    return makePrimFunc(name, params, makeSeq(std::move(pieces)));
}

tir::PrimFunc
makeSplitFunc(const std::string& name, const std::vector<PrimExpr>& in_shape,
              int sections, int axis, DataType dtype)
{
    size_t rank = in_shape.size();
    if (axis < 0) axis += (int)rank;
    Analyzer analyzer;
    PrimExpr part = analyzer.simplify(
        floordiv(in_shape[axis], intImm(sections)));
    std::vector<PrimExpr> part_shape = in_shape;
    part_shape[axis] = part;

    Buffer a = makeBuffer("A", dtype, in_shape);
    std::vector<Buffer> params{a};
    std::vector<Stmt> pieces;
    for (int s = 0; s < sections; ++s) {
        Buffer y = makeBuffer("Y" + std::to_string(s), dtype, part_shape);
        auto loop_vars = makeLoopVars(rank, "s" + std::to_string(s) + "_");
        std::vector<PrimExpr> in_idx = asExprs(loop_vars);
        in_idx[axis] = add(in_idx[axis], mul(intImm(s), part));
        pieces.push_back(nestLoops(
            loop_vars, part_shape,
            makeStore(y, asExprs(loop_vars), bufferLoad(a, in_idx))));
        params.push_back(y);
    }
    return makePrimFunc(name, params, makeSeq(std::move(pieces)), {},
                        sections);
}

tir::PrimFunc
makeCausalMaskFunc(const std::string& name,
                   const std::vector<PrimExpr>& shape, DataType dtype)
{
    RELAX_ICHECK(shape.size() >= 2) << "causal mask expects >= 2-D scores";
    Buffer a = makeBuffer("A", dtype, shape);
    Buffer y = makeBuffer("Y", dtype, shape);
    auto loop_vars = makeLoopVars(shape.size());
    auto indices = asExprs(loop_vars);
    PrimExpr i = indices[shape.size() - 2];
    PrimExpr j = indices[shape.size() - 1];
    // Query i may attend keys j <= i + (m - n): the final n queries of an
    // m-long context.
    PrimExpr limit = add(i, sub(shape.back(), shape[shape.size() - 2]));
    Stmt body = nestLoops(
        loop_vars, shape,
        makeStore(y, indices,
                  select(le(j, limit), bufferLoad(a, indices),
                         floatImm(-1e30))));
    return makePrimFunc(name, {a, y}, body);
}

tir::PrimFunc
makeAttentionFunc(const std::string& name,
                  const std::vector<PrimExpr>& q_shape,
                  const std::vector<PrimExpr>& k_shape,
                  const std::vector<PrimExpr>& v_shape, double scale,
                  bool causal, DataType dtype)
{
    RELAX_ICHECK(q_shape.size() == 4 && k_shape.size() == 4 &&
                 v_shape.size() == 4)
        << "attention expects [b, h, seq, dim] operands";
    PrimExpr b = q_shape[0], h = q_shape[1], n = q_shape[2], d = q_shape[3];
    PrimExpr m = k_shape[2], dv = v_shape[3];

    Buffer q = makeBuffer("Q", dtype, q_shape);
    Buffer k = makeBuffer("K", dtype, k_shape);
    Buffer v = makeBuffer("V", dtype, v_shape);
    Buffer y = makeBuffer("Y", dtype, {b, h, n, dv});
    Buffer scores = makeBuffer("scores", DataType::f32(), {b, h, n, m});
    Buffer row_max = makeBuffer("row_max", DataType::f32(), {b, h, n});
    Buffer row_sum = makeBuffer("row_sum", DataType::f32(), {b, h, n});

    // scores = scale * q @ k^T (+ causal mask)
    Var b1 = var("b"), h1 = var("h"), i1 = var("i"), j1 = var("j"),
        r1 = var("r");
    Stmt sc_init = makeIf(eq(r1, intImm(0)),
                          makeStore(scores, {b1, h1, i1, j1}, floatImm(0.0)));
    Stmt sc_acc = makeStore(
        scores, {b1, h1, i1, j1},
        add(bufferLoad(scores, {b1, h1, i1, j1}),
            mul(bufferLoad(q, {b1, h1, i1, r1}),
                bufferLoad(k, {b1, h1, j1, r1}))));
    std::vector<Stmt> sc_steps{sc_init, sc_acc};
    PrimExpr scaled = mul(bufferLoad(scores, {b1, h1, i1, j1}),
                          floatImm(scale));
    if (causal) {
        scaled = select(le(j1, add(i1, sub(m, n))), scaled, floatImm(-1e30));
    }
    sc_steps.push_back(makeIf(eq(r1, sub(d, intImm(1))),
                              makeStore(scores, {b1, h1, i1, j1}, scaled)));
    Stmt pass_scores = nestLoops({b1, h1, i1, j1, r1}, {b, h, n, m, d},
                                 makeSeq(std::move(sc_steps)));

    // softmax over j
    Var b2 = var("b"), h2 = var("h"), i2 = var("i"), j2 = var("j");
    Stmt mx_init = makeIf(eq(j2, intImm(0)),
                          makeStore(row_max, {b2, h2, i2}, floatImm(-1e30)));
    Stmt mx_acc = makeStore(row_max, {b2, h2, i2},
                            maxExpr(bufferLoad(row_max, {b2, h2, i2}),
                                    bufferLoad(scores, {b2, h2, i2, j2})));
    Stmt pass_max = nestLoops({b2, h2, i2, j2}, {b, h, n, m},
                              makeSeq({mx_init, mx_acc}));

    Var b3 = var("b"), h3 = var("h"), i3 = var("i"), j3 = var("j");
    PrimExpr e3 = callIntrin(
        "exp",
        {sub(bufferLoad(scores, {b3, h3, i3, j3}),
             bufferLoad(row_max, {b3, h3, i3}))},
        DataType::f32());
    Stmt sm_init = makeIf(eq(j3, intImm(0)),
                          makeStore(row_sum, {b3, h3, i3}, floatImm(0.0)));
    Stmt sm_acc = makeStore(row_sum, {b3, h3, i3},
                            add(bufferLoad(row_sum, {b3, h3, i3}), e3));
    Stmt pass_sum = nestLoops({b3, h3, i3, j3}, {b, h, n, m},
                              makeSeq({sm_init, sm_acc}));

    // y = softmax(scores) @ v
    Var b4 = var("b"), h4 = var("h"), i4 = var("i"), c4 = var("c"),
        j4 = var("j");
    PrimExpr prob = div(callIntrin("exp",
                                   {sub(bufferLoad(scores, {b4, h4, i4, j4}),
                                        bufferLoad(row_max, {b4, h4, i4}))},
                                   DataType::f32()),
                        bufferLoad(row_sum, {b4, h4, i4}));
    Stmt out_init = makeIf(eq(j4, intImm(0)),
                           makeStore(y, {b4, h4, i4, c4}, floatImm(0.0)));
    Stmt out_acc =
        makeStore(y, {b4, h4, i4, c4},
                  add(bufferLoad(y, {b4, h4, i4, c4}),
                      mul(prob, bufferLoad(v, {b4, h4, j4, c4}))));
    Stmt pass_out = nestLoops({b4, h4, i4, c4, j4}, {b, h, n, dv, m},
                              makeSeq({out_init, out_acc}));

    Stmt body = makeAllocBuffer(
        scores, "local",
        makeAllocBuffer(
            row_max, "local",
            makeAllocBuffer(row_sum, "local",
                            makeSeq({pass_scores, pass_max, pass_sum,
                                     pass_out}))));
    return makePrimFunc(name, {q, k, v, y}, body);
}

tir::PrimFunc
makeRaggedAttentionFunc(const std::string& name,
                        const std::vector<PrimExpr>& q_shape,
                        const std::vector<PrimExpr>& k_shape,
                        const std::vector<PrimExpr>& v_shape,
                        const std::vector<PrimExpr>& lens_shape,
                        const std::vector<PrimExpr>& cu_shape,
                        const std::vector<PrimExpr>& table_shape,
                        double scale, DataType dtype)
{
    RELAX_ICHECK(q_shape.size() == 4 && k_shape.size() == 4 &&
                 v_shape.size() == 4)
        << "ragged attention expects q [1,h,n,d] and pools [p,h,c,d]";
    RELAX_ICHECK(lens_shape.size() == 1 && cu_shape.size() == 1 &&
                 table_shape.size() == 2)
        << "ragged attention expects lens [b], cu [b+1], table [b, w]";
    PrimExpr h = q_shape[1], n = q_shape[2], d = q_shape[3];
    PrimExpr b = lens_shape[0];
    PrimExpr w = table_shape[1], dv = v_shape[3];
    // Page size in cache positions comes straight from the pool layout;
    // the table maps w logical blocks per row, so keys range over
    // m = w * c positions.
    PrimExpr page = k_shape[2];
    Analyzer analyzer;
    PrimExpr m = analyzer.simplify(mul(w, page));

    Buffer q = makeBuffer("Q", dtype, q_shape);
    Buffer k = makeBuffer("K", dtype, k_shape);
    Buffer v = makeBuffer("V", dtype, v_shape);
    Buffer lens = makeBuffer("LENS", DataType::i64(), lens_shape);
    Buffer cu = makeBuffer("CU", DataType::i64(), cu_shape);
    Buffer table = makeBuffer("TABLE", DataType::i64(), table_shape);
    Buffer y = makeBuffer("Y", dtype, {q_shape[0], h, n, dv});
    // Packed layout: the batch axis of q/y is literal 1; scratch is
    // indexed by the packed token axis directly.
    Buffer row_of = makeBuffer("row_of", DataType::i64(), {n});
    Buffer scores = makeBuffer("scores", DataType::f32(), {h, n, m});
    Buffer row_max = makeBuffer("row_max", DataType::f32(), {h, n});
    Buffer row_sum = makeBuffer("row_sum", DataType::f32(), {h, n});
    PrimExpr zero = intImm(0);

    // Prologue: invert cu into a per-token row index. Tokens past cu[b]
    // (bucket padding) default to row 0 so every downstream gather stays
    // in bounds; their outputs are never read.
    Var r0 = var("r"), i0 = var("i");
    Stmt rows_init = makeIf(eq(r0, zero), makeStore(row_of, {i0}, zero));
    PrimExpr in_row = logicalAnd(ge(i0, bufferLoad(cu, {r0})),
                                 lt(i0, bufferLoad(cu, {add(r0, intImm(1))})));
    Stmt rows_set = makeIf(in_row, makeStore(row_of, {i0}, r0));
    Stmt pass_rows =
        nestLoops({r0, i0}, {b, n}, makeSeq({rows_init, rows_set}));

    // Key j is visible to packed query i (row r, local position
    // p = i - cu[r]) iff it lies inside the row's ragged prefix
    // (j <= lens[r] + p) AND its page is mapped in the block table
    // (>= 0). Every key/value access gathers through pool[table[r][j / c]]:
    // the table is the address path, not a hint.
    auto rowOf = [&](const PrimExpr& ii) { return bufferLoad(row_of, {ii}); };
    auto visible = [&](const PrimExpr& ii, const PrimExpr& ji) {
        PrimExpr r = rowOf(ii);
        PrimExpr p = sub(ii, bufferLoad(cu, {r}));
        PrimExpr in_prefix = le(ji, add(bufferLoad(lens, {r}), p));
        PrimExpr mapped =
            ge(bufferLoad(table, {r, floordiv(ji, page)}), zero);
        return logicalAnd(in_prefix, mapped);
    };
    // Physical page holding key j of packed query i's row, clamped so
    // unmapped (-1) entries stay in bounds — their keys are masked out
    // by `visible`.
    auto pageOf = [&](const PrimExpr& ii, const PrimExpr& ji) {
        return maxExpr(bufferLoad(table, {rowOf(ii), floordiv(ji, page)}),
                       zero);
    };

    // scores = scale * q @ k^T, keys gathered from the pool
    Var h1 = var("h"), i1 = var("i"), j1 = var("j"), r1 = var("r");
    Stmt sc_init = makeIf(eq(r1, zero),
                          makeStore(scores, {h1, i1, j1}, floatImm(0.0)));
    Stmt sc_acc = makeStore(
        scores, {h1, i1, j1},
        add(bufferLoad(scores, {h1, i1, j1}),
            mul(bufferLoad(q, {zero, h1, i1, r1}),
                bufferLoad(k, {pageOf(i1, j1), h1, floormod(j1, page),
                               r1}))));
    PrimExpr scaled = select(visible(i1, j1),
                             mul(bufferLoad(scores, {h1, i1, j1}),
                                 floatImm(scale)),
                             floatImm(-1e30));
    Stmt sc_mask = makeIf(eq(r1, sub(d, intImm(1))),
                          makeStore(scores, {h1, i1, j1}, scaled));
    Stmt pass_scores = nestLoops({h1, i1, j1, r1}, {h, n, m, d},
                                 makeSeq({sc_init, sc_acc, sc_mask}));

    // softmax over j (masked scores underflow to exactly zero weight)
    Var h2 = var("h"), i2 = var("i"), j2 = var("j");
    Stmt mx_init = makeIf(eq(j2, zero),
                          makeStore(row_max, {h2, i2}, floatImm(-1e30)));
    Stmt mx_acc = makeStore(row_max, {h2, i2},
                            maxExpr(bufferLoad(row_max, {h2, i2}),
                                    bufferLoad(scores, {h2, i2, j2})));
    Stmt pass_max = nestLoops({h2, i2, j2}, {h, n, m},
                              makeSeq({mx_init, mx_acc}));

    Var h3 = var("h"), i3 = var("i"), j3 = var("j");
    PrimExpr e3 = callIntrin(
        "exp",
        {sub(bufferLoad(scores, {h3, i3, j3}),
             bufferLoad(row_max, {h3, i3}))},
        DataType::f32());
    Stmt sm_init = makeIf(eq(j3, zero),
                          makeStore(row_sum, {h3, i3}, floatImm(0.0)));
    Stmt sm_acc = makeStore(row_sum, {h3, i3},
                            add(bufferLoad(row_sum, {h3, i3}), e3));
    Stmt pass_sum = nestLoops({h3, i3, j3}, {h, n, m},
                              makeSeq({sm_init, sm_acc}));

    // y = softmax(scores) @ v
    Var h4 = var("h"), i4 = var("i"), c4 = var("c"), j4 = var("j");
    PrimExpr prob = div(callIntrin("exp",
                                   {sub(bufferLoad(scores, {h4, i4, j4}),
                                        bufferLoad(row_max, {h4, i4}))},
                                   DataType::f32()),
                        bufferLoad(row_sum, {h4, i4}));
    Stmt out_init = makeIf(eq(j4, zero),
                           makeStore(y, {zero, h4, i4, c4}, floatImm(0.0)));
    Stmt out_acc =
        makeStore(y, {zero, h4, i4, c4},
                  add(bufferLoad(y, {zero, h4, i4, c4}),
                      mul(prob, bufferLoad(v, {pageOf(i4, j4), h4,
                                               floormod(j4, page), c4}))));
    Stmt pass_out = nestLoops({h4, i4, c4, j4}, {h, n, dv, m},
                              makeSeq({out_init, out_acc}));

    Stmt body = makeAllocBuffer(
        row_of, "local",
        makeAllocBuffer(
            scores, "local",
            makeAllocBuffer(
                row_max, "local",
                makeAllocBuffer(row_sum, "local",
                                makeSeq({pass_rows, pass_scores, pass_max,
                                         pass_sum, pass_out})))));
    return makePrimFunc(name, {q, k, v, lens, cu, table, y}, body);
}

tir::PrimFunc
makeKvAppendRaggedFunc(const std::string& name,
                       const std::vector<PrimExpr>& fresh_shape,
                       const std::vector<PrimExpr>& lens_shape,
                       const std::vector<PrimExpr>& cu_shape,
                       const std::vector<PrimExpr>& table_shape,
                       const std::vector<PrimExpr>& pool_shape,
                       DataType dtype)
{
    RELAX_ICHECK(fresh_shape.size() == 4 && pool_shape.size() == 4 &&
                 lens_shape.size() == 1 && cu_shape.size() == 1 &&
                 table_shape.size() == 2)
        << "pool append expects fresh [1,h,n,d], lens [b], cu [b+1], "
           "table [b,w], pool [p,h,c,d]";
    Buffer fresh = makeBuffer("FRESH", dtype, fresh_shape);
    Buffer lens = makeBuffer("LENS", DataType::i64(), lens_shape);
    Buffer cu = makeBuffer("CU", DataType::i64(), cu_shape);
    Buffer table = makeBuffer("TABLE", DataType::i64(), table_shape);
    Buffer pool = makeBuffer("POOL", dtype, pool_shape);
    PrimExpr page = pool_shape[2];
    PrimExpr b = lens_shape[0];
    PrimExpr h = fresh_shape[1], n = fresh_shape[2], d = fresh_shape[3];

    // Pure scatter over the packed batch: token i of row r (cu[r] <= i <
    // cu[r+1]) lands at global position lens[r] + (i - cu[r]), i.e.
    // pool[table[r][pos / c], h, pos % c, d]. No other pool position is
    // touched — the in-place append copies nothing.
    Var ri = var("r"), hi = var("h"), ii = var("i"), di = var("d");
    PrimExpr in_row = logicalAnd(ge(ii, bufferLoad(cu, {ri})),
                                 lt(ii, bufferLoad(cu, {add(ri, intImm(1))})));
    PrimExpr pos = add(bufferLoad(lens, {ri}),
                       sub(ii, bufferLoad(cu, {ri})));
    PrimExpr entry = bufferLoad(table, {ri, floordiv(pos, page)});
    Stmt store = makeStore(pool,
                           {maxExpr(entry, intImm(0)), hi,
                            floormod(pos, page), di},
                           bufferLoad(fresh, {intImm(0), hi, ii, di}));
    // An unmapped page at a write position is an engine bug; guarding the
    // store keeps the reference kernel memory-safe regardless. Tokens
    // outside the row's cu span (other rows, bucket padding) are skipped
    // before `pos` is ever used as an address.
    Stmt body = nestLoops(
        {ri, hi, ii, di}, {b, h, n, d},
        makeIf(in_row, makeIf(ge(entry, intImm(0)), store)));
    return makePrimFunc(name, {fresh, lens, cu, table, pool}, body);
}

tir::PrimFunc
makeSplitKMatmulFunc(const std::string& name,
                     const std::vector<PrimExpr>& a_shape,
                     const std::vector<PrimExpr>& b_shape,
                     int64_t split_factor, DataType dtype)
{
    RELAX_ICHECK(a_shape.size() == 2 && b_shape.size() == 2)
        << "split-K matmul is 2-D";
    PrimExpr n = a_shape[0], k = a_shape[1], m = b_shape[1];
    Analyzer analyzer;
    PrimExpr k_part = analyzer.simplify(floordiv(k, intImm(split_factor)));

    Buffer a = makeBuffer("A", dtype, a_shape);
    Buffer b = makeBuffer("B", dtype, b_shape);
    Buffer y = makeBuffer("Y", dtype, {n, m});
    // Global workspace holding per-split partial sums (Fig. 11).
    Buffer ws = makeBuffer("workspace", DataType::f32(),
                           {intImm(split_factor), n, m});

    // Phase 1: partial accumulation per split.
    Var s1 = var("s"), i1 = var("i"), j1 = var("j"), r1 = var("r");
    Stmt p1_init = makeIf(eq(r1, intImm(0)),
                          makeStore(ws, {s1, i1, j1}, floatImm(0.0)));
    PrimExpr k_index = add(mul(s1, k_part), r1);
    Stmt p1_acc = makeStore(
        ws, {s1, i1, j1},
        add(bufferLoad(ws, {s1, i1, j1}),
            mul(bufferLoad(a, {i1, k_index}),
                bufferLoad(b, {k_index, j1}))));
    Stmt phase1 = nestLoops({s1, i1, j1, r1},
                            {intImm(split_factor), n, m, k_part},
                            makeSeq({p1_init, p1_acc}));

    // Phase 2: accumulate splits into the output.
    Var i2 = var("i"), j2 = var("j"), s2 = var("s");
    Stmt p2_init = makeIf(eq(s2, intImm(0)),
                          makeStore(y, {i2, j2}, floatImm(0.0)));
    Stmt p2_acc = makeStore(y, {i2, j2},
                            add(bufferLoad(y, {i2, j2}),
                                bufferLoad(ws, {s2, i2, j2})));
    Stmt phase2 = nestLoops({i2, j2, s2}, {n, m, intImm(split_factor)},
                            makeSeq({p2_init, p2_acc}));

    Stmt body = makeAllocBuffer(ws, "global", makeSeq({phase1, phase2}));
    return makePrimFunc(name, {a, b, y}, body);
}

tir::PrimFunc
makeDecodeQ4Func(const std::string& name, PrimExpr k_dim, PrimExpr n_dim,
                 DataType dtype)
{
    Analyzer analyzer;
    PrimExpr words = analyzer.simplify(
        floordiv(add(n_dim, intImm(7)), intImm(8)));
    PrimExpr groups = analyzer.simplify(
        floordiv(add(n_dim, intImm(31)), intImm(32)));
    Buffer data = makeBuffer("Wdata", DataType::u32(), {k_dim, words});
    Buffer scale = makeBuffer("Wscale", dtype, {k_dim, groups});
    Buffer w = makeBuffer("W", dtype, {k_dim, n_dim});

    Var k = var("k"), j = var("j");
    PrimExpr word = cast(bufferLoad(data, {k, floordiv(j, intImm(8))}),
                         DataType::i64());
    // nibble = (word >> (j % 8) * 4) & 15: the shift is expressed as an
    // exact division by pow2(shift), a single-cycle bit operation on real
    // hardware (the cost analysis treats pow2 as one op).
    PrimExpr shift = mul(floormod(j, intImm(8)), intImm(4));
    PrimExpr divisor = callIntrin("pow2", {shift}, DataType::i64());
    PrimExpr nibble = floormod(floordiv(word, divisor), intImm(16));
    PrimExpr value = mul(cast(sub(nibble, intImm(7)), dtype),
                         bufferLoad(scale, {k, floordiv(j, intImm(32))}));
    Stmt body = nestLoops({k, j}, {k_dim, n_dim}, makeStore(w, {k, j}, value));
    return makePrimFunc(name, {data, scale, w}, body);
}

} // namespace op
} // namespace relax
