/**
 * @file
 * Implements the symbolic analyzer. Canonical simplification rewrites a
 * PrimExpr into a polynomial over atom keys (variables and opaque
 * subterms such as floordiv/min/max), so proving a == b reduces to the
 * difference polynomial vanishing; inequality proof and static
 * upper-bound evaluation run interval (ConstIntBound) arithmetic with
 * saturating +/-inf endpoints.
 */
#include "arith/analyzer.h"

#include <algorithm>
#include <string>

#include "arith/structural.h"
#include "arith/substitute.h"

namespace relax {

namespace {

// ---------------------------------------------------------------------------
// Canonical polynomial form.
//
// An integer expression is normalized into sum(coeff_i * prod(atom_ij)) where
// atoms are variables or opaque sub-expressions (floordiv, floormod, min,
// max, calls) whose children are themselves canonicalized. Equality proof is
// then subtraction + zero test.
// ---------------------------------------------------------------------------

/** Deterministic ordering key for an atom. */
struct AtomKey
{
    size_t hash;
    std::string repr;
    PrimExpr expr;

    explicit AtomKey(PrimExpr e)
        : hash(structuralHash(e)), repr(toString(e)), expr(std::move(e)) {}

    bool
    operator<(const AtomKey& other) const
    {
        if (repr != other.repr) return repr < other.repr;
        if (hash != other.hash) return hash < other.hash;
        // Distinct vars can share a name; order by address for determinism
        // within one process run.
        return expr.get() < other.expr.get();
    }

    bool
    operator==(const AtomKey& other) const
    {
        return hash == other.hash && structuralEqual(expr, other.expr);
    }
};

/** Product of atoms, kept sorted; the empty monomial is the constant term. */
struct Monomial
{
    std::vector<AtomKey> atoms;

    bool
    operator<(const Monomial& other) const
    {
        if (atoms.size() != other.atoms.size()) {
            return atoms.size() < other.atoms.size();
        }
        for (size_t i = 0; i < atoms.size(); ++i) {
            if (!(atoms[i] == other.atoms[i])) return atoms[i] < other.atoms[i];
        }
        return false;
    }

    bool
    operator==(const Monomial& other) const
    {
        if (atoms.size() != other.atoms.size()) return false;
        for (size_t i = 0; i < atoms.size(); ++i) {
            if (!(atoms[i] == other.atoms[i])) return false;
        }
        return true;
    }
};

struct Polynomial
{
    std::map<Monomial, int64_t> terms;

    void
    addTerm(Monomial mono, int64_t coeff)
    {
        if (coeff == 0) return;
        auto [it, inserted] = terms.emplace(std::move(mono), coeff);
        if (!inserted) {
            it->second += coeff;
            if (it->second == 0) terms.erase(it);
        }
    }

    void
    addScaled(const Polynomial& other, int64_t scale)
    {
        for (const auto& [mono, coeff] : other.terms) {
            addTerm(mono, coeff * scale);
        }
    }

    bool isZero() const { return terms.empty(); }

    /** Constant value if the polynomial has only the constant term. */
    std::optional<int64_t>
    asConst() const
    {
        if (terms.empty()) return 0;
        if (terms.size() == 1 && terms.begin()->first.atoms.empty()) {
            return terms.begin()->second;
        }
        return std::nullopt;
    }

    /** True if every coefficient is divisible by d. */
    bool
    divisibleBy(int64_t d) const
    {
        for (const auto& [mono, coeff] : terms) {
            if (coeff % d != 0) return false;
        }
        return true;
    }

    void
    divideExact(int64_t d)
    {
        for (auto& [mono, coeff] : terms) coeff /= d;
    }
};

Polynomial
mulPoly(const Polynomial& a, const Polynomial& b)
{
    Polynomial out;
    for (const auto& [ma, ca] : a.terms) {
        for (const auto& [mb, cb] : b.terms) {
            Monomial mono;
            mono.atoms.reserve(ma.atoms.size() + mb.atoms.size());
            mono.atoms.insert(mono.atoms.end(), ma.atoms.begin(),
                              ma.atoms.end());
            mono.atoms.insert(mono.atoms.end(), mb.atoms.begin(),
                              mb.atoms.end());
            std::sort(mono.atoms.begin(), mono.atoms.end());
            out.addTerm(std::move(mono), ca * cb);
        }
    }
    return out;
}

int64_t
satAdd(int64_t a, int64_t b)
{
    if (a == ConstIntBound::kPosInf || b == ConstIntBound::kPosInf) {
        return ConstIntBound::kPosInf;
    }
    if (a == ConstIntBound::kNegInf || b == ConstIntBound::kNegInf) {
        return ConstIntBound::kNegInf;
    }
    if (a > 0 && b > ConstIntBound::kPosInf - a - 1) {
        return ConstIntBound::kPosInf;
    }
    if (a < 0 && b < ConstIntBound::kNegInf - a + 1) {
        return ConstIntBound::kNegInf;
    }
    return a + b;
}

bool
isInf(int64_t v)
{
    return v == ConstIntBound::kPosInf || v == ConstIntBound::kNegInf;
}

int64_t
satMul(int64_t a, int64_t b)
{
    if (a == 0 || b == 0) return 0;
    bool negative = (a < 0) != (b < 0);
    if (isInf(a) || isInf(b)) {
        return negative ? ConstIntBound::kNegInf : ConstIntBound::kPosInf;
    }
    // Conservative overflow guard: magnitudes above 2^31 saturate.
    constexpr int64_t kGuard = int64_t(1) << 31;
    if ((a > kGuard || a < -kGuard || b > kGuard || b < -kGuard)) {
        long double prod = (long double)a * (long double)b;
        if (prod > (long double)(ConstIntBound::kPosInf / 2)) {
            return ConstIntBound::kPosInf;
        }
        if (prod < (long double)(ConstIntBound::kNegInf / 2)) {
            return ConstIntBound::kNegInf;
        }
    }
    return a * b;
}

} // namespace

// ---------------------------------------------------------------------------
// Analyzer
// ---------------------------------------------------------------------------

namespace {

/** Canonicalization context tied to one Analyzer invocation. */
class Canonicalizer
{
  public:
    Canonicalizer(
        const std::unordered_map<const VarNode*, PrimExpr>& var_values,
        Analyzer* analyzer)
        : varValues_(var_values), analyzer_(analyzer) {}

    Polynomial
    run(const PrimExpr& expr)
    {
        switch (expr->kind()) {
          case ExprKind::kIntImm: {
            Polynomial p;
            p.addTerm(Monomial{},
                      static_cast<const IntImmNode*>(expr.get())->value);
            return p;
          }
          case ExprKind::kVar: {
            auto it = varValues_.find(
                static_cast<const VarNode*>(expr.get()));
            if (it != varValues_.end()) return run(it->second);
            return atomPoly(expr);
          }
          case ExprKind::kAdd: {
            const auto* node = static_cast<const BinaryNode*>(expr.get());
            Polynomial p = run(node->a);
            p.addScaled(run(node->b), 1);
            return p;
          }
          case ExprKind::kSub: {
            const auto* node = static_cast<const BinaryNode*>(expr.get());
            Polynomial p = run(node->a);
            p.addScaled(run(node->b), -1);
            return p;
          }
          case ExprKind::kMul: {
            const auto* node = static_cast<const BinaryNode*>(expr.get());
            return mulPoly(run(node->a), run(node->b));
          }
          case ExprKind::kFloorDiv: {
            const auto* node = static_cast<const BinaryNode*>(expr.get());
            Polynomial num = run(node->a);
            Polynomial den = run(node->b);
            if (auto d = den.asConst(); d && *d != 0) {
                if (auto n = num.asConst()) {
                    Polynomial p;
                    int64_t q = *n / *d;
                    if ((*n % *d != 0) && ((*n < 0) != (*d < 0))) --q;
                    p.addTerm(Monomial{}, q);
                    return p;
                }
                if (*d > 0 && num.divisibleBy(*d)) {
                    num.divideExact(*d);
                    return num;
                }
            }
            return atomPoly(floordiv(rebuild(num, expr->dtype()),
                                     rebuild(den, expr->dtype())));
          }
          case ExprKind::kFloorMod: {
            const auto* node = static_cast<const BinaryNode*>(expr.get());
            Polynomial num = run(node->a);
            Polynomial den = run(node->b);
            if (auto d = den.asConst(); d && *d > 0) {
                if (auto n = num.asConst()) {
                    Polynomial p;
                    int64_t m = *n % *d;
                    if (m < 0) m += *d;
                    p.addTerm(Monomial{}, m);
                    return p;
                }
                if (num.divisibleBy(*d)) return Polynomial{};
            }
            return atomPoly(floormod(rebuild(num, expr->dtype()),
                                     rebuild(den, expr->dtype())));
          }
          case ExprKind::kMin:
          case ExprKind::kMax: {
            const auto* node = static_cast<const BinaryNode*>(expr.get());
            bool is_min = expr->kind() == ExprKind::kMin;
            PrimExpr a = rebuild(run(node->a), expr->dtype());
            PrimExpr b = rebuild(run(node->b), expr->dtype());
            if (structuralEqual(a, b)) return run(a);
            // Resolve when one side provably dominates; proveGE only
            // recurses into strictly smaller expressions, so this
            // terminates.
            if (analyzer_->proveGE(a, b)) return run(is_min ? b : a);
            if (analyzer_->proveGE(b, a)) return run(is_min ? a : b);
            PrimExpr rebuilt = is_min ? minExpr(a, b) : maxExpr(a, b);
            // minExpr/maxExpr may have constant-folded.
            if (rebuilt->kind() != expr->kind()) return run(rebuilt);
            return atomPoly(rebuilt);
          }
          default:
            return atomPoly(expr);
        }
    }

    /** Rebuilds a deterministic expression from a polynomial. */
    static PrimExpr
    rebuild(const Polynomial& poly, DataType dtype)
    {
        if (poly.terms.empty()) return intImm(0, dtype);
        PrimExpr result;
        int64_t constant = 0;
        for (const auto& [mono, coeff] : poly.terms) {
            if (mono.atoms.empty()) {
                constant = coeff;
                continue;
            }
            PrimExpr term;
            for (const auto& atom : mono.atoms) {
                term = term ? mul(term, atom.expr) : atom.expr;
            }
            if (coeff != 1) term = mul(intImm(coeff, dtype), term);
            result = result ? add(result, term) : term;
        }
        if (!result) return intImm(constant, dtype);
        if (constant != 0) result = add(result, intImm(constant, dtype));
        return result;
    }

  private:
    Polynomial
    atomPoly(const PrimExpr& expr)
    {
        Polynomial p;
        if (const int64_t* v = asIntImm(expr)) {
            p.addTerm(Monomial{}, *v);
            return p;
        }
        Monomial mono;
        mono.atoms.emplace_back(expr);
        p.addTerm(std::move(mono), 1);
        return p;
    }

    const std::unordered_map<const VarNode*, PrimExpr>& varValues_;
    Analyzer* analyzer_;
};

} // namespace

void
Analyzer::bindVarBound(const Var& v, int64_t min_value, int64_t max_value)
{
    RELAX_ICHECK(min_value <= max_value) << "invalid bound for " << v->name;
    auto [it, inserted] =
        var_bounds_.emplace(v.get(), ConstIntBound{min_value, max_value});
    if (!inserted) {
        it->second.minValue = std::max(it->second.minValue, min_value);
        it->second.maxValue = std::min(it->second.maxValue, max_value);
    }
}

void
Analyzer::bindVarValue(const Var& v, const PrimExpr& expr)
{
    var_values_[v.get()] = expr;
}

PrimExpr
Analyzer::simplify(const PrimExpr& expr)
{
    if (!expr) return expr;
    if (!expr->dtype().isInt() && !expr->dtype().isUInt()) return expr;
    Canonicalizer canon(var_values_, this);
    return Canonicalizer::rebuild(canon.run(expr), expr->dtype());
}

bool
Analyzer::proveEqual(const PrimExpr& a, const PrimExpr& b)
{
    if (structuralEqual(a, b)) return true;
    Canonicalizer canon(var_values_, this);
    Polynomial pa = canon.run(a);
    pa.addScaled(canon.run(b), -1);
    return pa.isZero();
}

bool
Analyzer::proveNonNegative(const PrimExpr& expr)
{
    ConstIntBound bound = constIntBound(simplify(expr));
    return bound.minValue >= 0;
}

bool
Analyzer::proveGE(const PrimExpr& a, const PrimExpr& b)
{
    return proveNonNegative(sub(a, b));
}

bool
Analyzer::proveGT(const PrimExpr& a, const PrimExpr& b)
{
    return proveNonNegative(sub(sub(a, b), intImm(1)));
}

ConstIntBound
Analyzer::constIntBound(const PrimExpr& expr)
{
    if (!expr) return ConstIntBound::everything();
    switch (expr->kind()) {
      case ExprKind::kIntImm:
        return ConstIntBound::point(
            static_cast<const IntImmNode*>(expr.get())->value);
      case ExprKind::kVar: {
        const auto* v = static_cast<const VarNode*>(expr.get());
        if (auto it = var_values_.find(v); it != var_values_.end()) {
            return constIntBound(it->second);
        }
        if (auto it = var_bounds_.find(v); it != var_bounds_.end()) {
            return it->second;
        }
        return ConstIntBound::everything();
      }
      case ExprKind::kCast:
        return constIntBound(static_cast<const UnaryNode*>(expr.get())->a);
      case ExprKind::kSelect: {
        const auto* node = static_cast<const SelectNode*>(expr.get());
        ConstIntBound t = constIntBound(node->trueValue);
        ConstIntBound f = constIntBound(node->falseValue);
        return {std::min(t.minValue, f.minValue),
                std::max(t.maxValue, f.maxValue)};
      }
      case ExprKind::kAdd:
      case ExprKind::kSub:
      case ExprKind::kMul:
      case ExprKind::kFloorDiv:
      case ExprKind::kFloorMod:
      case ExprKind::kMin:
      case ExprKind::kMax: {
        const auto* node = static_cast<const BinaryNode*>(expr.get());
        ConstIntBound a = constIntBound(node->a);
        ConstIntBound b = constIntBound(node->b);
        switch (expr->kind()) {
          case ExprKind::kAdd:
            return {satAdd(a.minValue, b.minValue),
                    satAdd(a.maxValue, b.maxValue)};
          case ExprKind::kSub:
            return {satAdd(a.minValue, satMul(-1, b.maxValue)),
                    satAdd(a.maxValue, satMul(-1, b.minValue))};
          case ExprKind::kMul: {
            int64_t candidates[4] = {satMul(a.minValue, b.minValue),
                                     satMul(a.minValue, b.maxValue),
                                     satMul(a.maxValue, b.minValue),
                                     satMul(a.maxValue, b.maxValue)};
            return {*std::min_element(candidates, candidates + 4),
                    *std::max_element(candidates, candidates + 4)};
          }
          case ExprKind::kFloorDiv: {
            if (b.isPoint() && b.minValue > 0) {
                int64_t d = b.minValue;
                auto fd = [d](int64_t v) {
                    if (isInf(v)) return v;
                    int64_t q = v / d;
                    if ((v % d != 0) && (v < 0)) --q;
                    return q;
                };
                return {fd(a.minValue), fd(a.maxValue)};
            }
            return ConstIntBound::everything();
          }
          case ExprKind::kFloorMod: {
            if (b.isPoint() && b.minValue > 0) {
                if (a.minValue >= 0 && !isInf(a.maxValue) &&
                    a.maxValue < b.minValue) {
                    return a; // already reduced
                }
                return {0, b.minValue - 1};
            }
            return ConstIntBound::everything();
          }
          case ExprKind::kMin:
            return {std::min(a.minValue, b.minValue),
                    std::min(a.maxValue, b.maxValue)};
          case ExprKind::kMax:
            return {std::max(a.minValue, b.minValue),
                    std::max(a.maxValue, b.maxValue)};
          default:
            break;
        }
        return ConstIntBound::everything();
      }
      default:
        return ConstIntBound::everything();
    }
}

std::optional<int64_t>
Analyzer::upperBound(const PrimExpr& expr)
{
    ConstIntBound bound = constIntBound(simplify(expr));
    if (bound.maxValue == ConstIntBound::kPosInf) return std::nullopt;
    return bound.maxValue;
}

} // namespace relax
