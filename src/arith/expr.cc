/**
 * @file
 * Smart constructors for the scalar AST. Binary construction folds
 * constant integer operands on the spot (tryFoldInt) so trivial
 * identities never materialize; floordiv/floormod use Euclidean (floor)
 * semantics matching TIR, not C++ truncation.
 */
#include "arith/expr.h"

#include <cmath>
#include <sstream>

namespace relax {

namespace {

/** Floor division matching python semantics for negative operands. */
int64_t
floordivImpl(int64_t a, int64_t b)
{
    RELAX_ICHECK(b != 0) << "floordiv by zero";
    int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
    return q;
}

int64_t
floormodImpl(int64_t a, int64_t b)
{
    return a - floordivImpl(a, b) * b;
}

PrimExpr
makeBinary(ExprKind kind, PrimExpr a, PrimExpr b)
{
    DataType dtype = a->dtype();
    switch (kind) {
      case ExprKind::kEQ:
      case ExprKind::kNE:
      case ExprKind::kLT:
      case ExprKind::kLE:
      case ExprKind::kGT:
      case ExprKind::kGE:
      case ExprKind::kAnd:
      case ExprKind::kOr:
        dtype = DataType::boolean();
        break;
      default:
        break;
    }
    return std::make_shared<BinaryNode>(kind, std::move(a), std::move(b),
                                        dtype);
}

/** Constant folds integer binaries when both sides are immediates. */
const PrimExpr*
tryFoldInt(ExprKind kind, const PrimExpr& a, const PrimExpr& b,
           PrimExpr* result)
{
    const int64_t* va = asIntImm(a);
    const int64_t* vb = asIntImm(b);
    if (!va || !vb) return nullptr;
    int64_t value = 0;
    switch (kind) {
      case ExprKind::kAdd: value = *va + *vb; break;
      case ExprKind::kSub: value = *va - *vb; break;
      case ExprKind::kMul: value = *va * *vb; break;
      case ExprKind::kFloorDiv: value = floordivImpl(*va, *vb); break;
      case ExprKind::kFloorMod: value = floormodImpl(*va, *vb); break;
      case ExprKind::kMin: value = std::min(*va, *vb); break;
      case ExprKind::kMax: value = std::max(*va, *vb); break;
      default: return nullptr;
    }
    *result = intImm(value, a->dtype());
    return result;
}

} // namespace

PrimExpr
intImm(int64_t value, DataType dtype)
{
    return std::make_shared<IntImmNode>(value, dtype);
}

PrimExpr
floatImm(double value, DataType dtype)
{
    return std::make_shared<FloatImmNode>(value, dtype);
}

Var
var(const std::string& name, DataType dtype)
{
    return std::make_shared<VarNode>(name, dtype);
}

PrimExpr
add(PrimExpr a, PrimExpr b)
{
    PrimExpr folded;
    if (tryFoldInt(ExprKind::kAdd, a, b, &folded)) return folded;
    if (isConstInt(a, 0)) return b;
    if (isConstInt(b, 0)) return a;
    return makeBinary(ExprKind::kAdd, std::move(a), std::move(b));
}

PrimExpr
sub(PrimExpr a, PrimExpr b)
{
    PrimExpr folded;
    if (tryFoldInt(ExprKind::kSub, a, b, &folded)) return folded;
    if (isConstInt(b, 0)) return a;
    return makeBinary(ExprKind::kSub, std::move(a), std::move(b));
}

PrimExpr
mul(PrimExpr a, PrimExpr b)
{
    PrimExpr folded;
    if (tryFoldInt(ExprKind::kMul, a, b, &folded)) return folded;
    if (isConstInt(a, 1)) return b;
    if (isConstInt(b, 1)) return a;
    if (isConstInt(a, 0)) return a;
    if (isConstInt(b, 0)) return b;
    return makeBinary(ExprKind::kMul, std::move(a), std::move(b));
}

PrimExpr
floordiv(PrimExpr a, PrimExpr b)
{
    PrimExpr folded;
    if (tryFoldInt(ExprKind::kFloorDiv, a, b, &folded)) return folded;
    if (isConstInt(b, 1)) return a;
    return makeBinary(ExprKind::kFloorDiv, std::move(a), std::move(b));
}

PrimExpr
floormod(PrimExpr a, PrimExpr b)
{
    PrimExpr folded;
    if (tryFoldInt(ExprKind::kFloorMod, a, b, &folded)) return folded;
    if (isConstInt(b, 1)) return intImm(0, a->dtype());
    return makeBinary(ExprKind::kFloorMod, std::move(a), std::move(b));
}

PrimExpr
div(PrimExpr a, PrimExpr b)
{
    return makeBinary(ExprKind::kDiv, std::move(a), std::move(b));
}

PrimExpr
minExpr(PrimExpr a, PrimExpr b)
{
    PrimExpr folded;
    if (tryFoldInt(ExprKind::kMin, a, b, &folded)) return folded;
    return makeBinary(ExprKind::kMin, std::move(a), std::move(b));
}

PrimExpr
maxExpr(PrimExpr a, PrimExpr b)
{
    PrimExpr folded;
    if (tryFoldInt(ExprKind::kMax, a, b, &folded)) return folded;
    return makeBinary(ExprKind::kMax, std::move(a), std::move(b));
}

PrimExpr eq(PrimExpr a, PrimExpr b)
{
    return makeBinary(ExprKind::kEQ, std::move(a), std::move(b));
}
PrimExpr ne(PrimExpr a, PrimExpr b)
{
    return makeBinary(ExprKind::kNE, std::move(a), std::move(b));
}
PrimExpr lt(PrimExpr a, PrimExpr b)
{
    return makeBinary(ExprKind::kLT, std::move(a), std::move(b));
}
PrimExpr le(PrimExpr a, PrimExpr b)
{
    return makeBinary(ExprKind::kLE, std::move(a), std::move(b));
}
PrimExpr gt(PrimExpr a, PrimExpr b)
{
    return makeBinary(ExprKind::kGT, std::move(a), std::move(b));
}
PrimExpr ge(PrimExpr a, PrimExpr b)
{
    return makeBinary(ExprKind::kGE, std::move(a), std::move(b));
}
PrimExpr logicalAnd(PrimExpr a, PrimExpr b)
{
    return makeBinary(ExprKind::kAnd, std::move(a), std::move(b));
}
PrimExpr logicalOr(PrimExpr a, PrimExpr b)
{
    return makeBinary(ExprKind::kOr, std::move(a), std::move(b));
}

PrimExpr
logicalNot(PrimExpr a)
{
    return std::make_shared<UnaryNode>(ExprKind::kNot, std::move(a),
                                       DataType::boolean());
}

PrimExpr
select(PrimExpr cond, PrimExpr tv, PrimExpr fv)
{
    return std::make_shared<SelectNode>(std::move(cond), std::move(tv),
                                        std::move(fv));
}

PrimExpr
cast(PrimExpr value, DataType dtype)
{
    if (value->dtype() == dtype) return value;
    if (const int64_t* v = asIntImm(value); v && dtype.isInt()) {
        return intImm(*v, dtype);
    }
    return std::make_shared<UnaryNode>(ExprKind::kCast, std::move(value),
                                       dtype);
}

PrimExpr
callIntrin(const std::string& op, std::vector<PrimExpr> args, DataType dtype)
{
    return std::make_shared<CallNode>(op, std::move(args), dtype);
}

const int64_t*
asIntImm(const PrimExpr& expr)
{
    if (expr && expr->kind() == ExprKind::kIntImm) {
        return &static_cast<const IntImmNode*>(expr.get())->value;
    }
    return nullptr;
}

bool
isConstInt(const PrimExpr& expr, int64_t value)
{
    const int64_t* v = asIntImm(expr);
    return v && *v == value;
}

namespace {

/** Operator precedence for minimal-parenthesis printing. */
int
precedence(ExprKind kind)
{
    switch (kind) {
      case ExprKind::kMul:
      case ExprKind::kDiv:
      case ExprKind::kFloorDiv:
      case ExprKind::kFloorMod:
        return 3;
      case ExprKind::kAdd:
      case ExprKind::kSub:
        return 2;
      case ExprKind::kEQ:
      case ExprKind::kNE:
      case ExprKind::kLT:
      case ExprKind::kLE:
      case ExprKind::kGT:
      case ExprKind::kGE:
        return 1;
      case ExprKind::kAnd:
      case ExprKind::kOr:
        return 0;
      default:
        return 4;
    }
}

const char*
opSymbol(ExprKind kind)
{
    switch (kind) {
      case ExprKind::kAdd: return " + ";
      case ExprKind::kSub: return " - ";
      case ExprKind::kMul: return " * ";
      case ExprKind::kDiv: return " / ";
      case ExprKind::kFloorDiv: return " // ";
      case ExprKind::kFloorMod: return " % ";
      case ExprKind::kEQ: return " == ";
      case ExprKind::kNE: return " != ";
      case ExprKind::kLT: return " < ";
      case ExprKind::kLE: return " <= ";
      case ExprKind::kGT: return " > ";
      case ExprKind::kGE: return " >= ";
      case ExprKind::kAnd: return " and ";
      case ExprKind::kOr: return " or ";
      default: return " ? ";
    }
}

void
printExpr(std::ostream& os, const PrimExpr& expr, int parent_prec)
{
    switch (expr->kind()) {
      case ExprKind::kIntImm:
        os << static_cast<const IntImmNode*>(expr.get())->value;
        return;
      case ExprKind::kFloatImm:
        os << static_cast<const FloatImmNode*>(expr.get())->value;
        return;
      case ExprKind::kVar:
        os << static_cast<const VarNode*>(expr.get())->name;
        return;
      case ExprKind::kMin:
      case ExprKind::kMax: {
        const auto* node = static_cast<const BinaryNode*>(expr.get());
        os << (expr->kind() == ExprKind::kMin ? "min(" : "max(");
        printExpr(os, node->a, 0);
        os << ", ";
        printExpr(os, node->b, 0);
        os << ")";
        return;
      }
      case ExprKind::kNot: {
        os << "not ";
        printExpr(os, static_cast<const UnaryNode*>(expr.get())->a, 4);
        return;
      }
      case ExprKind::kCast: {
        const auto* node = static_cast<const UnaryNode*>(expr.get());
        os << expr->dtype().toString() << "(";
        printExpr(os, node->a, 0);
        os << ")";
        return;
      }
      case ExprKind::kSelect: {
        const auto* node = static_cast<const SelectNode*>(expr.get());
        os << "select(";
        printExpr(os, node->cond, 0);
        os << ", ";
        printExpr(os, node->trueValue, 0);
        os << ", ";
        printExpr(os, node->falseValue, 0);
        os << ")";
        return;
      }
      case ExprKind::kCall: {
        const auto* node = static_cast<const CallNode*>(expr.get());
        os << node->op << "(";
        for (size_t i = 0; i < node->args.size(); ++i) {
            if (i) os << ", ";
            printExpr(os, node->args[i], 0);
        }
        os << ")";
        return;
      }
      case ExprKind::kBufferLoad:
        // tir prints BufferLoad itself; fall back to opaque form here.
        os << "<load>";
        return;
      default: {
        const auto* node = static_cast<const BinaryNode*>(expr.get());
        int prec = precedence(expr->kind());
        bool paren = prec < parent_prec;
        if (paren) os << "(";
        printExpr(os, node->a, prec);
        os << opSymbol(expr->kind());
        printExpr(os, node->b, prec + 1);
        if (paren) os << ")";
        return;
      }
    }
}

} // namespace

std::string
toString(const PrimExpr& expr)
{
    if (!expr) return "<null>";
    std::ostringstream os;
    printExpr(os, expr, 0);
    return os.str();
}

std::string
toString(const std::vector<PrimExpr>& shape)
{
    std::ostringstream os;
    os << "(";
    for (size_t i = 0; i < shape.size(); ++i) {
        if (i) os << ", ";
        os << toString(shape[i]);
    }
    os << ")";
    return os.str();
}

} // namespace relax
