/**
 * @file
 * Scalar expression AST shared by symbolic shapes and tensor programs.
 *
 * Symbolic shape dimensions in Relax annotations (the paper's first-class
 * symbolic shapes, §3.2) are PrimExprs of dtype i64: variables, constants and
 * integer arithmetic over them. The same AST doubles as the scalar compute
 * language of loop-level tensor programs (§3.3), where float immediates,
 * comparisons, selects and math intrinsics also appear. This mirrors the
 * paper's decision to "reuse the loop-level tensor program expression system"
 * for shape annotations.
 */
#ifndef RELAX_ARITH_EXPR_H_
#define RELAX_ARITH_EXPR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arith/dtype.h"
#include "support/error.h"

namespace relax {

class PrimExprNode;

/** Shared immutable handle to an expression node. */
using PrimExpr = std::shared_ptr<const PrimExprNode>;

/** Discriminator for every scalar expression node. */
enum class ExprKind : uint8_t {
    kIntImm,
    kFloatImm,
    kVar,
    kAdd,
    kSub,
    kMul,
    kDiv,      //!< float division
    kFloorDiv, //!< integer floor division
    kFloorMod, //!< integer floor modulo
    kMin,
    kMax,
    kEQ,
    kNE,
    kLT,
    kLE,
    kGT,
    kGE,
    kAnd,
    kOr,
    kNot,
    kSelect,
    kCast,
    kCall,      //!< math intrinsic call, e.g. exp/sqrt/erf
    kBufferLoad //!< defined in tir/; reserved here so visitors can dispatch
};

/** Base class of all scalar expression nodes; immutable after creation. */
class PrimExprNode : public std::enable_shared_from_this<PrimExprNode>
{
  public:
    PrimExprNode(ExprKind kind, DataType dtype) : kind_(kind), dtype_(dtype) {}
    virtual ~PrimExprNode() = default;

    ExprKind kind() const { return kind_; }
    DataType dtype() const { return dtype_; }

    /** Recovers an owning handle from a raw node pointer (nodes are always
     *  owned by shared_ptr). */
    PrimExpr sharedFromThis() const { return shared_from_this(); }

  private:
    ExprKind kind_;
    DataType dtype_;
};

/** Integer immediate. */
class IntImmNode : public PrimExprNode
{
  public:
    IntImmNode(int64_t value, DataType dtype)
        : PrimExprNode(ExprKind::kIntImm, dtype), value(value) {}

    int64_t value;
};

/** Floating-point immediate. */
class FloatImmNode : public PrimExprNode
{
  public:
    FloatImmNode(double value, DataType dtype)
        : PrimExprNode(ExprKind::kFloatImm, dtype), value(value) {}

    double value;
};

/**
 * A scalar variable. Symbolic shape variables (the paper's `sym_var()`) are
 * i64 Vars. Identity is by node address; two Vars with the same name are
 * distinct variables.
 */
class VarNode : public PrimExprNode
{
  public:
    VarNode(std::string name, DataType dtype)
        : PrimExprNode(ExprKind::kVar, dtype), name(std::move(name)) {}

    std::string name;
};

using Var = std::shared_ptr<const VarNode>;

/** Binary operation; kind() distinguishes which one. */
class BinaryNode : public PrimExprNode
{
  public:
    BinaryNode(ExprKind kind, PrimExpr a, PrimExpr b, DataType dtype)
        : PrimExprNode(kind, dtype), a(std::move(a)), b(std::move(b)) {}

    PrimExpr a;
    PrimExpr b;
};

/** Logical or arithmetic unary operation (kNot, kCast). */
class UnaryNode : public PrimExprNode
{
  public:
    UnaryNode(ExprKind kind, PrimExpr a, DataType dtype)
        : PrimExprNode(kind, dtype), a(std::move(a)) {}

    PrimExpr a;
};

/** Ternary select: cond ? true_value : false_value. */
class SelectNode : public PrimExprNode
{
  public:
    SelectNode(PrimExpr cond, PrimExpr tv, PrimExpr fv)
        : PrimExprNode(ExprKind::kSelect, tv->dtype()), cond(std::move(cond)),
          trueValue(std::move(tv)), falseValue(std::move(fv)) {}

    PrimExpr cond;
    PrimExpr trueValue;
    PrimExpr falseValue;
};

/** Math intrinsic call by name (exp, sqrt, erf, tanh, log, sigmoid, ...). */
class CallNode : public PrimExprNode
{
  public:
    CallNode(std::string op, std::vector<PrimExpr> args, DataType dtype)
        : PrimExprNode(ExprKind::kCall, dtype), op(std::move(op)),
          args(std::move(args)) {}

    std::string op;
    std::vector<PrimExpr> args;
};

// ---------------------------------------------------------------------------
// Factory helpers. Arithmetic factories constant-fold immediates eagerly.
// ---------------------------------------------------------------------------

/** Creates an i64 integer immediate. */
PrimExpr intImm(int64_t value, DataType dtype = DataType::i64());

/** Creates a float immediate. */
PrimExpr floatImm(double value, DataType dtype = DataType::f32());

/** Creates a fresh symbolic variable (i64 by default, as for shapes). */
Var var(const std::string& name, DataType dtype = DataType::i64());

PrimExpr add(PrimExpr a, PrimExpr b);
PrimExpr sub(PrimExpr a, PrimExpr b);
PrimExpr mul(PrimExpr a, PrimExpr b);
PrimExpr floordiv(PrimExpr a, PrimExpr b);
PrimExpr floormod(PrimExpr a, PrimExpr b);
PrimExpr div(PrimExpr a, PrimExpr b);
PrimExpr minExpr(PrimExpr a, PrimExpr b);
PrimExpr maxExpr(PrimExpr a, PrimExpr b);
PrimExpr eq(PrimExpr a, PrimExpr b);
PrimExpr ne(PrimExpr a, PrimExpr b);
PrimExpr lt(PrimExpr a, PrimExpr b);
PrimExpr le(PrimExpr a, PrimExpr b);
PrimExpr gt(PrimExpr a, PrimExpr b);
PrimExpr ge(PrimExpr a, PrimExpr b);
PrimExpr logicalAnd(PrimExpr a, PrimExpr b);
PrimExpr logicalOr(PrimExpr a, PrimExpr b);
PrimExpr logicalNot(PrimExpr a);
PrimExpr select(PrimExpr cond, PrimExpr tv, PrimExpr fv);
PrimExpr cast(PrimExpr value, DataType dtype);
PrimExpr callIntrin(const std::string& op, std::vector<PrimExpr> args,
                    DataType dtype);

inline PrimExpr operator+(PrimExpr a, PrimExpr b) { return add(a, b); }
inline PrimExpr operator-(PrimExpr a, PrimExpr b) { return sub(a, b); }
inline PrimExpr operator*(PrimExpr a, PrimExpr b) { return mul(a, b); }
inline PrimExpr operator+(PrimExpr a, int64_t b) { return add(a, intImm(b)); }
inline PrimExpr operator-(PrimExpr a, int64_t b) { return sub(a, intImm(b)); }
inline PrimExpr operator*(PrimExpr a, int64_t b) { return mul(a, intImm(b)); }
inline PrimExpr operator*(int64_t a, PrimExpr b) { return mul(intImm(a), b); }

/** Returns the value if the expression is an integer immediate. */
const int64_t* asIntImm(const PrimExpr& expr);

/** True iff the expression is the integer constant `value`. */
bool isConstInt(const PrimExpr& expr, int64_t value);

/** Renders the expression, e.g. "n * 4 + 1". */
std::string toString(const PrimExpr& expr);

/** Renders a shape tuple, e.g. "(n, 4)". */
std::string toString(const std::vector<PrimExpr>& shape);

} // namespace relax

#endif // RELAX_ARITH_EXPR_H_
