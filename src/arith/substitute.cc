/**
 * @file
 * Variable substitution, free-variable collection, and best-effort
 * integer evaluation (evalInt / tryEvalInt) of PrimExprs under a
 * binding — the runtime half of symbolic shape evaluation used by the
 * VM and the memory planner.
 */
#include "arith/substitute.h"

#include <cmath>

namespace relax {

PrimExpr
substitute(const PrimExpr& expr, const VarMap& map)
{
    if (!expr) return expr;
    switch (expr->kind()) {
      case ExprKind::kIntImm:
      case ExprKind::kFloatImm:
        return expr;
      case ExprKind::kVar: {
        auto it = map.find(static_cast<const VarNode*>(expr.get()));
        return it == map.end() ? expr : it->second;
      }
      case ExprKind::kNot: {
        const auto* node = static_cast<const UnaryNode*>(expr.get());
        PrimExpr a = substitute(node->a, map);
        return a.get() == node->a.get() ? expr : logicalNot(a);
      }
      case ExprKind::kCast: {
        const auto* node = static_cast<const UnaryNode*>(expr.get());
        PrimExpr a = substitute(node->a, map);
        return a.get() == node->a.get() ? expr : cast(a, expr->dtype());
      }
      case ExprKind::kSelect: {
        const auto* node = static_cast<const SelectNode*>(expr.get());
        PrimExpr c = substitute(node->cond, map);
        PrimExpr t = substitute(node->trueValue, map);
        PrimExpr f = substitute(node->falseValue, map);
        if (c.get() == node->cond.get() && t.get() == node->trueValue.get() &&
            f.get() == node->falseValue.get()) {
            return expr;
        }
        return select(c, t, f);
      }
      case ExprKind::kCall: {
        const auto* node = static_cast<const CallNode*>(expr.get());
        std::vector<PrimExpr> args;
        args.reserve(node->args.size());
        bool changed = false;
        for (const auto& arg : node->args) {
            args.push_back(substitute(arg, map));
            changed |= args.back().get() != arg.get();
        }
        return changed ? callIntrin(node->op, std::move(args), expr->dtype())
                       : expr;
      }
      case ExprKind::kBufferLoad:
        return expr; // tir substitution handles loads separately
      default: {
        const auto* node = static_cast<const BinaryNode*>(expr.get());
        PrimExpr a = substitute(node->a, map);
        PrimExpr b = substitute(node->b, map);
        if (a.get() == node->a.get() && b.get() == node->b.get()) return expr;
        switch (expr->kind()) {
          case ExprKind::kAdd: return add(a, b);
          case ExprKind::kSub: return sub(a, b);
          case ExprKind::kMul: return mul(a, b);
          case ExprKind::kDiv: return div(a, b);
          case ExprKind::kFloorDiv: return floordiv(a, b);
          case ExprKind::kFloorMod: return floormod(a, b);
          case ExprKind::kMin: return minExpr(a, b);
          case ExprKind::kMax: return maxExpr(a, b);
          case ExprKind::kEQ: return eq(a, b);
          case ExprKind::kNE: return ne(a, b);
          case ExprKind::kLT: return lt(a, b);
          case ExprKind::kLE: return le(a, b);
          case ExprKind::kGT: return gt(a, b);
          case ExprKind::kGE: return ge(a, b);
          case ExprKind::kAnd: return logicalAnd(a, b);
          case ExprKind::kOr: return logicalOr(a, b);
          default:
            RELAX_ICHECK(false) << "unexpected binary kind";
            return expr;
        }
      }
    }
}

void
collectVars(const PrimExpr& expr, std::unordered_set<const VarNode*>* out)
{
    if (!expr) return;
    switch (expr->kind()) {
      case ExprKind::kIntImm:
      case ExprKind::kFloatImm:
      case ExprKind::kBufferLoad:
        return;
      case ExprKind::kVar:
        out->insert(static_cast<const VarNode*>(expr.get()));
        return;
      case ExprKind::kNot:
      case ExprKind::kCast:
        collectVars(static_cast<const UnaryNode*>(expr.get())->a, out);
        return;
      case ExprKind::kSelect: {
        const auto* node = static_cast<const SelectNode*>(expr.get());
        collectVars(node->cond, out);
        collectVars(node->trueValue, out);
        collectVars(node->falseValue, out);
        return;
      }
      case ExprKind::kCall: {
        for (const auto& arg :
             static_cast<const CallNode*>(expr.get())->args) {
            collectVars(arg, out);
        }
        return;
      }
      default: {
        const auto* node = static_cast<const BinaryNode*>(expr.get());
        collectVars(node->a, out);
        collectVars(node->b, out);
        return;
      }
    }
}

namespace {

int64_t
floordivImpl(int64_t a, int64_t b)
{
    int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
    return q;
}

} // namespace

std::optional<int64_t>
tryEvalInt(const PrimExpr& expr, const VarBinding& binding)
{
    if (!expr) return std::nullopt;
    switch (expr->kind()) {
      case ExprKind::kIntImm:
        return static_cast<const IntImmNode*>(expr.get())->value;
      case ExprKind::kVar: {
        auto it = binding.find(static_cast<const VarNode*>(expr.get()));
        if (it == binding.end()) return std::nullopt;
        return it->second;
      }
      case ExprKind::kNot: {
        auto a = tryEvalInt(static_cast<const UnaryNode*>(expr.get())->a,
                            binding);
        if (!a) return std::nullopt;
        return *a == 0 ? 1 : 0;
      }
      case ExprKind::kCast:
        return tryEvalInt(static_cast<const UnaryNode*>(expr.get())->a,
                          binding);
      case ExprKind::kSelect: {
        const auto* node = static_cast<const SelectNode*>(expr.get());
        auto c = tryEvalInt(node->cond, binding);
        if (!c) return std::nullopt;
        return tryEvalInt(*c ? node->trueValue : node->falseValue, binding);
      }
      case ExprKind::kFloatImm:
      case ExprKind::kCall:
      case ExprKind::kBufferLoad:
        return std::nullopt;
      default: {
        const auto* node = static_cast<const BinaryNode*>(expr.get());
        auto a = tryEvalInt(node->a, binding);
        auto b = tryEvalInt(node->b, binding);
        if (!a || !b) return std::nullopt;
        switch (expr->kind()) {
          case ExprKind::kAdd: return *a + *b;
          case ExprKind::kSub: return *a - *b;
          case ExprKind::kMul: return *a * *b;
          case ExprKind::kFloorDiv:
            if (*b == 0) return std::nullopt;
            return floordivImpl(*a, *b);
          case ExprKind::kFloorMod:
            if (*b == 0) return std::nullopt;
            return *a - floordivImpl(*a, *b) * *b;
          case ExprKind::kDiv:
            if (*b == 0) return std::nullopt;
            return *a / *b;
          case ExprKind::kMin: return std::min(*a, *b);
          case ExprKind::kMax: return std::max(*a, *b);
          case ExprKind::kEQ: return *a == *b;
          case ExprKind::kNE: return *a != *b;
          case ExprKind::kLT: return *a < *b;
          case ExprKind::kLE: return *a <= *b;
          case ExprKind::kGT: return *a > *b;
          case ExprKind::kGE: return *a >= *b;
          case ExprKind::kAnd: return (*a != 0) && (*b != 0);
          case ExprKind::kOr: return (*a != 0) || (*b != 0);
          default: return std::nullopt;
        }
      }
    }
}

int64_t
evalInt(const PrimExpr& expr, const VarBinding& binding)
{
    auto result = tryEvalInt(expr, binding);
    if (!result) {
        RELAX_THROW(ShapeError)
            << "cannot evaluate symbolic expression " << toString(expr)
            << " (unbound variable or non-integer node)";
    }
    return *result;
}

} // namespace relax
