/**
 * @file
 * Symbolic arithmetic analyzer: canonical simplification, equality proof,
 * inequality proof via interval bounds, and static upper-bound evaluation.
 *
 * This component backs every dynamic shape-aware optimization in the paper:
 *  - reshape/flatten deduction proves element-count equalities (§3.2),
 *  - memory planning proves storage-size equalities and takes symbolic upper
 *    bounds for static pre-allocation (§4.3, Algorithm 3),
 *  - fusion and workspace lifting preserve and compare symbolic extents.
 */
#ifndef RELAX_ARITH_ANALYZER_H_
#define RELAX_ARITH_ANALYZER_H_

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "arith/expr.h"

namespace relax {

/** Inclusive integer interval with +/- infinity sentinels. */
struct ConstIntBound
{
    static constexpr int64_t kNegInf = std::numeric_limits<int64_t>::min();
    static constexpr int64_t kPosInf = std::numeric_limits<int64_t>::max();

    int64_t minValue = kNegInf;
    int64_t maxValue = kPosInf;

    static ConstIntBound everything() { return {kNegInf, kPosInf}; }
    static ConstIntBound point(int64_t v) { return {v, v}; }
    /** Shape dimensions are non-negative by construction. */
    static ConstIntBound nonNegative() { return {0, kPosInf}; }

    bool isPoint() const { return minValue == maxValue; }
};

/**
 * Stateful analyzer over symbolic integer expressions.
 *
 * Variable range facts are registered with bindVarBound (e.g. the user
 * annotating the LLM context-length upper bound) and drive both inequality
 * proofs and static upper-bound computation.
 */
class Analyzer
{
  public:
    /** Registers (or tightens) the known range of a symbolic variable. */
    void bindVarBound(const Var& v, int64_t min_value, int64_t max_value);

    /** Registers `v := expr`, so occurrences of v simplify into expr. */
    void bindVarValue(const Var& v, const PrimExpr& expr);

    /**
     * Canonically simplifies an integer expression: expands products over
     * sums, merges like terms, folds constants, resolves floordiv/mod with
     * constant divisors when divisibility can be shown, and resolves min/max
     * when one side provably dominates.
     */
    PrimExpr simplify(const PrimExpr& expr);

    /** Proves a == b by canonicalizing a - b to zero. */
    bool proveEqual(const PrimExpr& a, const PrimExpr& b);

    /** Proves expr >= 0 using canonical form plus interval bounds. */
    bool proveNonNegative(const PrimExpr& expr);

    /** Proves a >= b. */
    bool proveGE(const PrimExpr& a, const PrimExpr& b);

    /** Proves a > b. */
    bool proveGT(const PrimExpr& a, const PrimExpr& b);

    /** Computes an interval bound for the expression. */
    ConstIntBound constIntBound(const PrimExpr& expr);

    /**
     * Static upper bound of the expression if one exists given the registered
     * variable ranges; nullopt when unbounded. Used by the memory planner to
     * pre-allocate for the worst case (§4.3).
     */
    std::optional<int64_t> upperBound(const PrimExpr& expr);

  private:
    std::unordered_map<const VarNode*, ConstIntBound> var_bounds_;
    std::unordered_map<const VarNode*, PrimExpr> var_values_;
};

} // namespace relax

#endif // RELAX_ARITH_ANALYZER_H_
