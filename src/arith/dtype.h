/**
 * @file
 * Scalar data types used by tensors, buffers and scalar expressions.
 */
#ifndef RELAX_ARITH_DTYPE_H_
#define RELAX_ARITH_DTYPE_H_

#include <cstdint>
#include <string>

#include "support/error.h"

namespace relax {

/**
 * A scalar data type: a type code plus a bit width.
 *
 * The textual form matches the paper's annotations: "f32", "f16", "i64",
 * "u32", "bool". Float16 values are stored as float in the reference
 * interpreter; the bit width only affects memory accounting.
 */
class DataType
{
  public:
    enum class Code : uint8_t { kInt, kUInt, kFloat, kBool, kVoid };

    constexpr DataType() : code_(Code::kVoid), bits_(0) {}
    constexpr DataType(Code code, int bits) : code_(code), bits_(bits) {}

    constexpr Code code() const { return code_; }
    constexpr int bits() const { return bits_; }
    constexpr bool isFloat() const { return code_ == Code::kFloat; }
    constexpr bool isInt() const { return code_ == Code::kInt; }
    constexpr bool isUInt() const { return code_ == Code::kUInt; }
    constexpr bool isBool() const { return code_ == Code::kBool; }
    constexpr bool isVoid() const { return code_ == Code::kVoid; }

    /** Number of bytes one scalar of this type occupies. */
    constexpr int64_t bytes() const { return (bits_ + 7) / 8; }

    constexpr bool
    operator==(const DataType& other) const
    {
        return code_ == other.code_ && bits_ == other.bits_;
    }
    constexpr bool operator!=(const DataType& other) const
    {
        return !(*this == other);
    }

    static constexpr DataType f64() { return {Code::kFloat, 64}; }
    static constexpr DataType f32() { return {Code::kFloat, 32}; }
    static constexpr DataType f16() { return {Code::kFloat, 16}; }
    static constexpr DataType i64() { return {Code::kInt, 64}; }
    static constexpr DataType i32() { return {Code::kInt, 32}; }
    static constexpr DataType i8() { return {Code::kInt, 8}; }
    static constexpr DataType u32() { return {Code::kUInt, 32}; }
    static constexpr DataType u8() { return {Code::kUInt, 8}; }
    /** 4-bit unsigned, used by quantized weight packing accounting. */
    static constexpr DataType u4() { return {Code::kUInt, 4}; }
    static constexpr DataType boolean() { return {Code::kBool, 1}; }
    static constexpr DataType void_() { return {}; }

    /** Renders e.g. "f16", "i64", "bool". */
    std::string
    toString() const
    {
        switch (code_) {
          case Code::kInt: return "i" + std::to_string(bits_);
          case Code::kUInt: return "u" + std::to_string(bits_);
          case Code::kFloat: return "f" + std::to_string(bits_);
          case Code::kBool: return "bool";
          case Code::kVoid: return "void";
        }
        return "?";
    }

    /** Parses the textual form; throws TypeError on malformed input. */
    static DataType
    fromString(const std::string& text)
    {
        if (text == "bool") return boolean();
        if (text == "void") return void_();
        if (text.size() < 2) RELAX_THROW(TypeError) << "bad dtype: " << text;
        Code code;
        switch (text[0]) {
          case 'i': code = Code::kInt; break;
          case 'u': code = Code::kUInt; break;
          case 'f': code = Code::kFloat; break;
          default: RELAX_THROW(TypeError) << "bad dtype: " << text;
        }
        int bits = std::stoi(text.substr(1));
        return {code, bits};
    }

  private:
    Code code_;
    int bits_;
};

} // namespace relax

#endif // RELAX_ARITH_DTYPE_H_
