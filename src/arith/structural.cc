/**
 * @file
 * Structural equality and hashing over PrimExprs — the comparators
 * behind analyzer atom keys, memoization, and test assertions.
 */
#include "arith/structural.h"

#include <functional>

namespace relax {

namespace {

size_t
hashCombine(size_t seed, size_t value)
{
    return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

} // namespace

bool
structuralEqual(const PrimExpr& a, const PrimExpr& b)
{
    if (a.get() == b.get()) return true;
    if (!a || !b) return false;
    if (a->kind() != b->kind() || a->dtype() != b->dtype()) return false;
    switch (a->kind()) {
      case ExprKind::kIntImm:
        return static_cast<const IntImmNode*>(a.get())->value ==
               static_cast<const IntImmNode*>(b.get())->value;
      case ExprKind::kFloatImm:
        return static_cast<const FloatImmNode*>(a.get())->value ==
               static_cast<const FloatImmNode*>(b.get())->value;
      case ExprKind::kVar:
        return false; // identity compared above
      case ExprKind::kNot:
      case ExprKind::kCast: {
        const auto* ua = static_cast<const UnaryNode*>(a.get());
        const auto* ub = static_cast<const UnaryNode*>(b.get());
        return structuralEqual(ua->a, ub->a);
      }
      case ExprKind::kSelect: {
        const auto* sa = static_cast<const SelectNode*>(a.get());
        const auto* sb = static_cast<const SelectNode*>(b.get());
        return structuralEqual(sa->cond, sb->cond) &&
               structuralEqual(sa->trueValue, sb->trueValue) &&
               structuralEqual(sa->falseValue, sb->falseValue);
      }
      case ExprKind::kCall: {
        const auto* ca = static_cast<const CallNode*>(a.get());
        const auto* cb = static_cast<const CallNode*>(b.get());
        if (ca->op != cb->op || ca->args.size() != cb->args.size()) {
            return false;
        }
        for (size_t i = 0; i < ca->args.size(); ++i) {
            if (!structuralEqual(ca->args[i], cb->args[i])) return false;
        }
        return true;
      }
      case ExprKind::kBufferLoad:
        return false; // identity only; tir loads are not shape expressions
      default: {
        const auto* ba = static_cast<const BinaryNode*>(a.get());
        const auto* bb = static_cast<const BinaryNode*>(b.get());
        return structuralEqual(ba->a, bb->a) && structuralEqual(ba->b, bb->b);
      }
    }
}

size_t
structuralHash(const PrimExpr& expr)
{
    if (!expr) return 0;
    size_t seed = hashCombine(static_cast<size_t>(expr->kind()),
                              std::hash<int>()(expr->dtype().bits()));
    switch (expr->kind()) {
      case ExprKind::kIntImm:
        return hashCombine(seed, std::hash<int64_t>()(
            static_cast<const IntImmNode*>(expr.get())->value));
      case ExprKind::kFloatImm:
        return hashCombine(seed, std::hash<double>()(
            static_cast<const FloatImmNode*>(expr.get())->value));
      case ExprKind::kVar:
      case ExprKind::kBufferLoad:
        return hashCombine(seed, std::hash<const void*>()(expr.get()));
      case ExprKind::kNot:
      case ExprKind::kCast:
        return hashCombine(
            seed,
            structuralHash(static_cast<const UnaryNode*>(expr.get())->a));
      case ExprKind::kSelect: {
        const auto* node = static_cast<const SelectNode*>(expr.get());
        seed = hashCombine(seed, structuralHash(node->cond));
        seed = hashCombine(seed, structuralHash(node->trueValue));
        return hashCombine(seed, structuralHash(node->falseValue));
      }
      case ExprKind::kCall: {
        const auto* node = static_cast<const CallNode*>(expr.get());
        seed = hashCombine(seed, std::hash<std::string>()(node->op));
        for (const auto& arg : node->args) {
            seed = hashCombine(seed, structuralHash(arg));
        }
        return seed;
      }
      default: {
        const auto* node = static_cast<const BinaryNode*>(expr.get());
        seed = hashCombine(seed, structuralHash(node->a));
        return hashCombine(seed, structuralHash(node->b));
      }
    }
}

} // namespace relax
