/**
 * @file
 * Structural equality and hashing for scalar expressions.
 *
 * Variables compare by node identity: two distinct Vars named "n" are
 * different symbols. This matches the paper's semantics where symbolic
 * variables are scoped to a function and related across functions only via
 * explicit signature unification (§4.1).
 */
#ifndef RELAX_ARITH_STRUCTURAL_H_
#define RELAX_ARITH_STRUCTURAL_H_

#include <cstddef>

#include "arith/expr.h"

namespace relax {

/** Deep structural equality; Vars compare by identity. */
bool structuralEqual(const PrimExpr& a, const PrimExpr& b);

/** Hash consistent with structuralEqual. */
size_t structuralHash(const PrimExpr& expr);

/** Hash functor for use in unordered containers keyed by PrimExpr. */
struct PrimExprHash
{
    size_t operator()(const PrimExpr& e) const { return structuralHash(e); }
};

/** Equality functor matching PrimExprHash. */
struct PrimExprEqual
{
    bool
    operator()(const PrimExpr& a, const PrimExpr& b) const
    {
        return structuralEqual(a, b);
    }
};

} // namespace relax

#endif // RELAX_ARITH_STRUCTURAL_H_
