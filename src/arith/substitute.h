/**
 * @file
 * Variable substitution and integer evaluation over scalar expressions.
 */
#ifndef RELAX_ARITH_SUBSTITUTE_H_
#define RELAX_ARITH_SUBSTITUTE_H_

#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "arith/expr.h"

namespace relax {

/** Maps variable nodes to replacement expressions. */
using VarMap = std::unordered_map<const VarNode*, PrimExpr>;

/** Maps variable nodes to concrete runtime values. */
using VarBinding = std::unordered_map<const VarNode*, int64_t>;

/** Replaces every occurrence of a mapped variable; rebuilds minimally. */
PrimExpr substitute(const PrimExpr& expr, const VarMap& map);

/** Collects the free symbolic variables appearing in the expression. */
void collectVars(const PrimExpr& expr,
                 std::unordered_set<const VarNode*>* out);

/**
 * Evaluates an integer expression given concrete variable values.
 * Returns nullopt if a variable is unbound or a non-integer node appears.
 */
std::optional<int64_t> tryEvalInt(const PrimExpr& expr,
                                  const VarBinding& binding);

/** Like tryEvalInt but throws ShapeError on failure. */
int64_t evalInt(const PrimExpr& expr, const VarBinding& binding);

} // namespace relax

#endif // RELAX_ARITH_SUBSTITUTE_H_
