/**
 * @file
 * The VM executable: the artifact the compiler builds (§4.7). Graph-level
 * code becomes a sequence of virtual machine instructions, each a call
 * into a generated kernel or a runtime builtin; symbolic shape values
 * live in a per-invocation symbol table (the paper's "integer host
 * tensor") populated by shape-matching instructions on the inputs and
 * read when evaluating symbolic expressions at runtime.
 */
#ifndef RELAX_VM_EXEC_H_
#define RELAX_VM_EXEC_H_

#include <map>
#include <string>
#include <vector>

#include "ir/module.h"

namespace relax {
namespace vm {

/** Register index. */
using RegIndex = int32_t;

/** One VM instruction. */
struct Instr
{
    enum class Op : uint8_t {
        kMatchShape,   //!< bind/check symbolic vars against a tensor's shape
        kAllocStorage, //!< dst = storage of sizeExpr bytes
        kAllocTensor,  //!< dst = tensor(shape) [from storage when src >= 0]
        kKernelCall,   //!< DPS kernel launch (generated or library)
        kPackedCall,   //!< dst = builtin(args...) (runtime-allocating)
        kGraphBegin,   //!< execution-graph capture/replay region start
        kGraphEnd,
        kLoadConst, //!< dst = embedded constant tensor
        kRebind,    //!< dst = src
        kMakeTuple, //!< dst = (args...)
        kGetItem,   //!< dst = src[index]
        kRet
    };

    Op op;
    RegIndex dst = -1;
    std::vector<RegIndex> args;

    // kMatchShape: per entry (dim index, var to bind) on register args[0];
    // `checks` holds (dim index, expression) runtime verifications.
    std::vector<std::pair<int, ::relax::Var>> binds;
    std::vector<std::pair<int, PrimExpr>> checks;

    // kAllocStorage / kAllocTensor
    PrimExpr sizeExpr;
    std::vector<PrimExpr> shape;
    DataType dtype;

    // kKernelCall / kPackedCall
    std::string callee;
    bool isLibrary = false;
    int numInputs = 0;
    int numOutputs = 0;
    std::vector<PrimExpr> symExprs; //!< evaluated into kernel sym args
    ir::Attrs attrs;
    /**
     * kKernelCall (library callees): per-argument symbolic shape
     * expressions, one entry per register in `args` (empty inner vector
     * when the argument's annotation carries no shape). Inside a
     * bucketed graph region the VM re-evaluates these at the padded
     * binding so library kernels are priced at the bucket ceiling,
     * exactly like generated kernels (the padding-correctness
     * invariant, DESIGN.md §4). Generated kernels do not need this:
     * their cost expressions bind through the shared symbolic vars.
     */
    std::vector<std::vector<PrimExpr>> argShapes;

    // kGraphBegin / kGraphEnd
    int64_t graphId = -1;
    /**
     * kGraphBegin: bucket size for the capture signature. Symbolic dims
     * are rounded up to their bucket ceiling — the next multiple of
     * this block, or the next power of two when smaller — when keying
     * captured graphs, so nearby shapes (e.g. consecutive decode context
     * lengths) share one graph; kernels inside the region are priced at
     * the padded shape. 1 = exact signatures (no bucketing).
     */
    int64_t bucketBlock = 1;

    // kGetItem
    int index = 0;

    // kLoadConst
    NDArray constant;
};

/** One compiled function. */
struct VMFunction
{
    std::string name;
    int numParams = 0;
    int numRegs = 0;
    std::vector<Instr> instrs;
};

/** A compiled module: functions plus the tensor programs they launch. */
class Executable
{
  public:
    std::map<std::string, VMFunction> functions;
    /** Kernel bodies (interpreted as the stand-in for GPU codegen). */
    ir::IRModulePtr module;
};

using ExecutablePtr = std::shared_ptr<Executable>;

/**
 * Translates a fully lowered module (output of the Fig. 13 pipeline) to a
 * VM executable. Throws IRError when un-lowered constructs remain.
 */
ExecutablePtr buildExecutable(const ir::IRModulePtr& module);

/** Renders the instruction stream for debugging/tests. */
std::string toString(const VMFunction& func);

} // namespace vm
} // namespace relax

#endif // RELAX_VM_EXEC_H_
