/**
 * @file
 * The virtual machine: the library-kernel registry, the per-instruction
 * executors (MatchShape / AllocStorage / AllocTensor / KernelCall /
 * PackedCall), and the timing-mode path that prices generated kernels
 * on the device roofline (costExprsOf + generatedKernelEfficiency).
 */
#include "vm/vm.h"
#include <cstdlib>

#include <algorithm>
#include <atomic>
#include <sstream>

#include "device/interconnect.h"
#include "tir/analysis.h"
#include "tir/interpreter.h"

namespace relax {
namespace vm {

namespace {

/** Cumulative count of instrumented in-place kernel verifications. */
std::atomic<int64_t> g_aliasChecks{0};

/** RELAX_ALIAS_CHECK=1 turns on the differential in-place verifier. */
bool
aliasCheckEnabled()
{
    const char* env = getenv("RELAX_ALIAS_CHECK");
    return env && std::string(env) != "0";
}

/**
 * Differential in-place verification (the ASPIS-style instrumented
 * check): the aliased run already executed on `aliased`; `ref` holds
 * deep copies taken before it, on which the caller re-ran the kernel
 * with NO aliasing (the copied output buffer is distinct from the
 * copied input — copy-in/copy-out semantics). Every argument except the
 * aliased input itself must now be bit-identical across the two runs:
 * outputs prove the in-place rewrite did not change results, inputs
 * prove the kernel wrote nothing it does not own.
 */
void
diffAliasedRun(const Instr& instr, const std::vector<NDArray>& aliased,
               const std::vector<NDArray>& ref)
{
    auto inplace = std::get<int64_t>(instr.attrs.at("inplace_arg"));
    for (size_t i = 0; i < aliased.size(); ++i) {
        // The aliased input shares storage with the output in the
        // aliased run only; its pre-state copy legitimately differs.
        if ((int64_t)i == inplace) continue;
        if (!aliased[i].hasData() || !ref[i].hasData()) continue;
        if (aliased[i].data() != ref[i].data()) {
            RELAX_THROW(RuntimeError)
                << "RELAX_ALIAS_CHECK: '" << instr.callee << "' arg " << i
                << " diverges between the aliased run and the "
                << "copy-in/copy-out reference"
                << (i >= (size_t)instr.numInputs
                        ? " (in-place output corrupted)"
                        : " (kernel wrote a non-aliased input)");
        }
    }
    g_aliasChecks.fetch_add(1, std::memory_order_relaxed);
}

/** Deep copies of every data-bearing argument, for the reference run. */
std::vector<NDArray>
copyArgsForReference(const std::vector<NDArray>& args)
{
    std::vector<NDArray> copies;
    copies.reserve(args.size());
    for (const auto& arg : args) {
        copies.push_back(arg.hasData()
                             ? NDArray::fromVector(arg.shape(),
                                                   arg.dtype(), arg.data())
                             : arg);
    }
    return copies;
}

} // namespace

int64_t
aliasChecksPerformed()
{
    return g_aliasChecks.load(std::memory_order_relaxed);
}

LibraryRegistry&
LibraryRegistry::global()
{
    static LibraryRegistry instance;
    return instance;
}

void
LibraryRegistry::registerKernel(const std::string& name, LibraryKernel kernel)
{
    kernels_[name] = std::move(kernel);
}

const LibraryKernel*
LibraryRegistry::find(const std::string& name) const
{
    auto it = kernels_.find(name);
    return it == kernels_.end() ? nullptr : &it->second;
}

namespace {

/** Per-invocation execution state. */
struct Frame
{
    std::vector<Value> regs;
    VarBinding symbols; //!< the runtime symbolic shape table (§4.7)
    /**
     * Inside a bucketed graph region: symbolic values rounded up to the
     * region's bucket boundary. Kernel *pricing* uses these (the captured
     * graph launches padded kernels); data-mode compute always runs at
     * the real shapes, which is what keeps replay bit-identical.
     */
    VarBinding paddedSymbols;
    /** Pool allocations owned by this call (returned to pool at exit). */
    std::vector<int64_t> pooledBytes;
};

/**
 * Bucket ceiling of a symbolic value: the next multiple of `block`, or
 * the next power of two when that is smaller. Large dims (context
 * lengths) land on block boundaries (padding waste < one block); small
 * dims (batch sizes below the block) land on power-of-two classes
 * (padding waste < 2x) instead of all inflating to one block.
 */
int64_t
bucketCeiling(int64_t value, int64_t block)
{
    int64_t blocked = (value + block - 1) / block * block;
    int64_t pow2 = 1;
    while (pow2 < value) pow2 *= 2;
    return std::min(blocked, pow2);
}

NDArray&
asTensorValue(Value& value, const char* what)
{
    NDArray* array = std::get_if<NDArray>(&value);
    if (!array) RELAX_THROW(RuntimeError) << what << ": expected a tensor";
    return *array;
}

/** Cached per-kernel cost expressions. */
struct KernelCostExprs
{
    PrimExpr flops;
    PrimExpr bytes;
    tir::PatternKind kind;
    tir::PrimFunc pin; //!< keeps the node alive so addresses never recycle
};

/**
 * Stand-in for `array` at the padded shape: metadata-only normally, but
 * integer host tensors (e.g. the ragged length vector — the only data
 * any cost model reads) keep their values in the prefix — the padded
 * tail reads as zeros, so phantom rows price as empty sequences. Large
 * payload tensors are never copied: their cost contribution is shape-only.
 */
NDArray
padForPricing(const NDArray& array, std::vector<int64_t> padded_shape)
{
    bool host_metadata = array.hasData() && (array.dtype().isInt() ||
                                             array.dtype().isUInt());
    if (!host_metadata) {
        return NDArray::metaOnly(std::move(padded_shape), array.dtype());
    }
    NDArray padded = NDArray::zeros(padded_shape, array.dtype());
    const auto& shape = array.shape();
    std::vector<int64_t> index(shape.size(), 0);
    for (int64_t flat = 0; flat < array.numel(); ++flat) {
        padded.set(padded.flatten(index), array.at(flat));
        for (size_t d = shape.size(); d-- > 0;) {
            if (++index[d] < shape[d]) break;
            index[d] = 0;
        }
    }
    return padded;
}

const KernelCostExprs&
costExprsOf(const tir::PrimFunc& func)
{
    static std::map<const tir::PrimFuncNode*, KernelCostExprs> cache;
    auto [it, inserted] = cache.emplace(func.get(), KernelCostExprs{});
    if (inserted) {
        it->second.pin = func;
        tir::TensorProgramCost cost = tir::analyzeCost(func);
        it->second.flops = cost.flops;
        it->second.bytes = cost.bytes;
        auto attr = func->attrs.find(tir::kComputePatternAttr);
        it->second.kind = attr != func->attrs.end()
                              ? tir::patternKindFromName(attr->second)
                              : tir::analyzePatternKind(func);
    }
    return it->second;
}

/** Efficiency class of a generated kernel on the given device. */
double
generatedKernelEfficiency(const KernelCostExprs& cost,
                          const tir::PrimFunc& func,
                          const VarBinding& binding,
                          const device::DeviceSpec& spec)
{
    bool has_fma = cost.kind == tir::PatternKind::kOutputEwiseFusible;
    if (!has_fma) {
        // Fused kernels lose their single-op classification; detect a
        // matmul core by arithmetic intensity instead.
        double flops = (double)evalInt(cost.flops, binding);
        double bytes = (double)evalInt(cost.bytes, binding);
        has_fma = bytes > 0 && flops / bytes > 16.0;
    }
    if (!has_fma) return spec.genElemwiseEfficiency;
    // Matrix-vector (single output row) uses the tuned gemv schedule.
    const tir::Buffer& out = func->params.back();
    int64_t rows = 1;
    for (size_t d = 0; d + 1 < out->shape.size(); ++d) {
        rows *= evalInt(out->shape[d], binding);
    }
    return rows <= 1 ? spec.genGemvEfficiency : spec.genGemmEfficiency;
}

} // namespace

struct Executor
{
    ExecutablePtr exec;
    std::shared_ptr<device::SimDevice> device_;
    bool dataMode_;
    std::map<std::pair<std::string, size_t>, StoragePtr>& staticStorages_;
    std::map<int64_t, int>& freePool_;
    std::string graphKeyspace_;

    // Trace state for the currently-open execution-graph region (regions
    // never nest): its span is emitted at kGraphEnd, inside the call's
    // frame span in the vm lane.
    double graphStartTs_ = 0.0;
    bool graphReplay_ = false;
    std::string graphSignature_;
    int64_t openGraphId_ = -1;
    /** The kRet value, once executed. */
    Value result_;

    /** Executes one instruction against the frame. */
    void step(const Instr& instr, Frame& frame, const std::string& fn);

    void execMatchShape(const Instr& instr, Frame& frame,
                        const std::string& fn);
    void execAllocStorage(const Instr& instr, Frame& frame,
                          const std::string& fn);
    void execAllocTensor(const Instr& instr, Frame& frame);
    void execKernelCall(const Instr& instr, Frame& frame);
    void execPackedCall(const Instr& instr, Frame& frame);
};

namespace {

/** Device counters at frame entry, for the RunStats deltas. */
struct CounterSnapshot
{
    double clockUs;
    int64_t kernelLaunches;
    int64_t totalAllocatedBytes;
    int64_t graphCaptures;
    int64_t graphReplays;
};

CounterSnapshot
snapshotCounters(device::SimDevice& device)
{
    return {device.clockUs(), device.kernelLaunches(),
            device.totalAllocatedBytes(), device.graphCaptures(),
            device.graphReplays()};
}

const VMFunction&
findFunction(const ExecutablePtr& exec, const std::string& name,
             size_t num_args)
{
    auto it = exec->functions.find(name);
    if (it == exec->functions.end()) {
        RELAX_THROW(RuntimeError) << "no such function: " << name;
    }
    if ((int)num_args != it->second.numParams) {
        RELAX_THROW(RuntimeError)
            << name << ": expected " << it->second.numParams
            << " arguments, got " << num_args;
    }
    return it->second;
}

/** Frame teardown shared by invoke() and invokeLockstep(): returns pool
 *  allocations, computes the RunStats deltas and emits the frame span. */
void
finishFrame(Frame& frame, const std::string& name,
            const CounterSnapshot& snap, device::SimDevice& device,
            std::map<int64_t, int>& free_pool, RunStats& last,
            GraphStats& graph)
{
    // Return this call's pool allocations (runtime allocator model).
    for (int64_t bytes : frame.pooledBytes) free_pool[bytes] += 1;

    last.latencyUs = device.clockUs() - snap.clockUs;
    last.kernelLaunches = device.kernelLaunches() - snap.kernelLaunches;
    last.bytesAllocated =
        device.totalAllocatedBytes() - snap.totalAllocatedBytes;
    last.graphCaptures = device.graphCaptures() - snap.graphCaptures;
    last.graphReplays = device.graphReplays() - snap.graphReplays;
    last.graphBegins = last.graphCaptures + last.graphReplays;
    graph.begins += last.graphBegins;
    graph.captures += last.graphCaptures;
    graph.replays += last.graphReplays;
    TraceRecorder& trace = device.trace();
    if (trace.enabled()) {
        trace.span(trace_lanes::kVm, trace_lanes::kFrames, name, "frame",
                   snap.clockUs, last.latencyUs,
                   {{"kernels", last.kernelLaunches},
                    {"graph_begins", last.graphBegins},
                    {"graph_replays", last.graphReplays}});
    }
}

/**
 * The lockstep collective rendezvous. Every shard has reached the same
 * `ccl.*` call site with its DPS out tensor allocated; the group prices
 * ONE ring collective (a barrier plus transfer time on every member) in
 * place of the per-shard fallback kernels. In data mode the driver then
 * materializes the semantics across the shards: all_reduce left-folds
 * the partial sums in rank order (deterministic reassociation) and
 * writes the total to every shard; all_gather concatenates the
 * shard-local chunks along the last dim into every shard's out.
 */
void
lockstepCollective(const Instr& instr, device::DeviceGroup& group,
                   std::vector<Frame>& frames, bool data_mode)
{
    size_t n = frames.size();
    std::vector<NDArray*> ins(n);
    std::vector<NDArray*> outs(n);
    for (size_t s = 0; s < n; ++s) {
        ins[s] = &asTensorValue(frames[s].regs[instr.args[0]],
                                instr.callee.c_str());
        outs[s] = &asTensorValue(frames[s].regs[instr.args.back()],
                                 instr.callee.c_str());
    }
    double payload = (double)outs[0]->sizeBytes();
    bool reduce = instr.callee == "ccl.all_reduce";
    RELAX_ICHECK(reduce || instr.callee == "ccl.all_gather")
        << "unknown collective: " << instr.callee;
    if (reduce) {
        group.allReduce(payload);
    } else {
        group.allGather(payload);
    }
    if (!data_mode) return;
    if (reduce) {
        std::vector<double> sum = ins[0]->data();
        for (size_t s = 1; s < n; ++s) {
            const std::vector<double>& part = ins[s]->data();
            for (size_t j = 0; j < sum.size(); ++j) sum[j] += part[j];
        }
        for (size_t s = 0; s < n; ++s) {
            std::copy(sum.begin(), sum.end(), outs[s]->data().begin());
        }
    } else {
        int64_t chunk = ins[0]->shape().back();
        int64_t full = outs[0]->shape().back();
        RELAX_ICHECK(chunk * (int64_t)n == full)
            << "all_gather: chunks do not tile the gathered dim";
        int64_t rows = outs[0]->numel() / full;
        for (size_t s = 0; s < n; ++s) {
            const std::vector<double>& src = ins[s]->data();
            int64_t offset = (int64_t)s * chunk;
            for (int64_t r = 0; r < rows; ++r) {
                for (int64_t j = 0; j < chunk; ++j) {
                    double value = src[r * chunk + j];
                    for (size_t t = 0; t < n; ++t) {
                        outs[t]->data()[r * full + offset + j] = value;
                    }
                }
            }
        }
    }
}

} // namespace

StoragePtr
VirtualMachine::allocPersistentStorage(int64_t bytes)
{
    RELAX_ICHECK(bytes >= 0) << "negative storage size";
    device_->alloc(bytes);
    auto storage = std::make_shared<Storage>();
    storage->bytes = bytes;
    storage->persistent = true;
    return storage;
}

void
VirtualMachine::releasePersistentStorage(const StoragePtr& storage)
{
    if (!storage || storage->bytes == 0) return;
    RELAX_ICHECK(storage->persistent)
        << "releasePersistentStorage: not a persistent chunk";
    device_->free(storage->bytes);
    storage->bytes = 0; // guards against double release
}

Value
VirtualMachine::invoke(const std::string& name,
                       const std::vector<Value>& args)
{
    const VMFunction& func = findFunction(exec_, name, args.size());
    Executor executor{exec_,      device_,   dataMode_,
                      staticStorages_, freePool_, graphKeyspace_};

    CounterSnapshot snap = snapshotCounters(*device_);
    Frame frame;
    frame.regs.resize(func.numRegs);
    for (size_t i = 0; i < args.size(); ++i) frame.regs[i] = args[i];

    for (const Instr& instr : func.instrs) {
        executor.step(instr, frame, name);
    }

    finishFrame(frame, name, snap, *device_, freePool_, lastStats_,
                graphStats_);
    return executor.result_;
}

std::vector<Value>
VirtualMachine::invokeLockstep(const std::vector<VirtualMachine*>& shards,
                               device::DeviceGroup& group,
                               const std::string& name,
                               const std::vector<std::vector<Value>>& args)
{
    RELAX_ICHECK(!shards.empty() && args.size() == shards.size())
        << "lockstep: one argument list per shard";
    RELAX_ICHECK((int)shards.size() == group.size())
        << "lockstep: shard count must match the device group";
    const ExecutablePtr& exec = shards[0]->exec_;
    for (VirtualMachine* shard : shards) {
        RELAX_ICHECK(shard->exec_ == exec)
            << "lockstep shards must share one executable";
    }
    const VMFunction& func = findFunction(exec, name, args[0].size());
    bool data_mode = shards[0]->dataMode_;

    size_t n = shards.size();
    std::vector<Executor> executors;
    executors.reserve(n);
    std::vector<Frame> frames(n);
    std::vector<CounterSnapshot> snaps;
    snaps.reserve(n);
    for (size_t s = 0; s < n; ++s) {
        VirtualMachine& shard = *shards[s];
        executors.push_back(Executor{shard.exec_, shard.device_,
                                     shard.dataMode_,
                                     shard.staticStorages_,
                                     shard.freePool_,
                                     shard.graphKeyspace_});
        findFunction(exec, name, args[s].size()); // arity per shard
        frames[s].regs.resize(func.numRegs);
        for (size_t i = 0; i < args[s].size(); ++i) {
            frames[s].regs[i] = args[s][i];
        }
        snaps.push_back(snapshotCounters(*shard.device_));
    }

    // Instruction-outer, shard-inner: every shard executes instruction k
    // before any shard executes k+1, so all shards reach each `ccl.*`
    // site together — the rendezvous replaces the per-shard fallback
    // kernel with one priced group collective.
    for (const Instr& instr : func.instrs) {
        if (instr.op == Instr::Op::kKernelCall && instr.isLibrary &&
            instr.callee.rfind("ccl.", 0) == 0) {
            lockstepCollective(instr, group, frames, data_mode);
            continue;
        }
        for (size_t s = 0; s < n; ++s) {
            executors[s].step(instr, frames[s], name);
        }
    }

    std::vector<Value> results;
    results.reserve(n);
    for (size_t s = 0; s < n; ++s) {
        VirtualMachine& shard = *shards[s];
        finishFrame(frames[s], name, snaps[s], *shard.device_,
                    shard.freePool_, shard.lastStats_, shard.graphStats_);
        results.push_back(executors[s].result_);
    }
    return results;
}

void
Executor::step(const Instr& instr, Frame& frame, const std::string& fn)
{
    TraceRecorder& trace = device_->trace();
    switch (instr.op) {
      case Instr::Op::kMatchShape:
        execMatchShape(instr, frame, fn);
        break;
      case Instr::Op::kAllocStorage:
        execAllocStorage(instr, frame, fn);
        break;
      case Instr::Op::kAllocTensor:
        execAllocTensor(instr, frame);
        break;
      case Instr::Op::kKernelCall:
        execKernelCall(instr, frame);
        break;
      case Instr::Op::kPackedCall:
        execPackedCall(instr, frame);
        break;
      case Instr::Op::kGraphBegin: {
        // Key the captured graph by the bucketed shape signature:
        // each symbolic value is rounded up to its bucket ceiling,
        // so every shape in a bucket maps to one graph (captured at
        // the ceiling shape, launched padded/masked).
        int64_t block = std::max<int64_t>(instr.bucketBlock, 1);
        std::vector<std::pair<std::string, int64_t>> dims;
        dims.reserve(frame.symbols.size());
        for (const auto& [v, value] : frame.symbols) {
            int64_t padded =
                block > 1 ? bucketCeiling(value, block) : value;
            dims.emplace_back(v->name, padded);
            if (padded != value) {
                frame.paddedSymbols[v] = padded;
            }
        }
        // Name-sorted for a deterministic signature (symbolic names
        // are unique within a function: b, n, m, ...).
        std::sort(dims.begin(), dims.end());
        std::ostringstream signature;
        // The keyspace prefix keeps VMs running different
        // executables on one device from replaying each other's
        // graphs (graph ids restart per executable).
        if (!graphKeyspace_.empty()) {
            signature << graphKeyspace_ << ":";
        }
        for (const auto& [name, value] : dims) {
            signature << name << "=" << value << ",";
        }
        graphStartTs_ = device_->clockUs();
        graphReplay_ =
            device_->beginGraph(instr.graphId, signature.str());
        graphSignature_ = signature.str();
        openGraphId_ = instr.graphId;
        break;
      }
      case Instr::Op::kGraphEnd:
        device_->endGraph();
        frame.paddedSymbols.clear();
        if (trace.enabled()) {
            // Capture vs replay is THE flag downstream tools read:
            // the Fig. 17 launch-overhead story is visible as
            // replay-flagged regions whose kernels carry the
            // graphReplayUs overhead instead of kernelLaunchUs.
            trace.span(trace_lanes::kVm, trace_lanes::kFrames,
                       graphReplay_ ? "graph(replay)"
                                    : "graph(capture)",
                       "graph", graphStartTs_,
                       device_->clockUs() - graphStartTs_,
                       {{"graph_id", openGraphId_},
                        {"signature", graphSignature_},
                        {"replay", (int64_t)(graphReplay_ ? 1 : 0)}});
        }
        openGraphId_ = -1;
        break;
      case Instr::Op::kLoadConst:
        frame.regs[instr.dst] = instr.constant;
        break;
      case Instr::Op::kRebind:
        frame.regs[instr.dst] = frame.regs[instr.args[0]];
        break;
      case Instr::Op::kMakeTuple: {
        auto tuple = std::make_shared<TupleValue>();
        for (RegIndex reg : instr.args) {
            tuple->fields.push_back(frame.regs[reg]);
        }
        frame.regs[instr.dst] = tuple;
        break;
      }
      case Instr::Op::kGetItem: {
        auto tuple =
            std::get<TupleValuePtr>(frame.regs[instr.args[0]]);
        frame.regs[instr.dst] = tuple->fields.at(instr.index);
        break;
      }
      case Instr::Op::kRet:
        result_ = frame.regs[instr.args[0]];
        break;
    }
}

void
Executor::execMatchShape(const Instr& instr, Frame& frame,
                               const std::string& fn)
{
    const NDArray& tensor =
        asTensorValue(frame.regs[instr.args[0]], "match_shape");
    for (const auto& [dim, v] : instr.binds) {
        RELAX_ICHECK(dim < (int)tensor.shape().size());
        frame.symbols[v.get()] = tensor.shape()[dim];
    }
    for (const auto& [dim, expr] : instr.checks) {
        int64_t expected = evalInt(expr, frame.symbols);
        if (tensor.shape()[dim] != expected) {
            RELAX_THROW(ShapeError)
                << fn << ": runtime shape check failed: dim " << dim
                << " expected " << relax::toString(expr) << " = "
                << expected << ", got " << tensor.shape()[dim];
        }
    }
}

void
Executor::execAllocStorage(const Instr& instr, Frame& frame,
                                 const std::string& fn)
{
    int64_t bytes;
    const int64_t* const_size = asIntImm(instr.sizeExpr);
    if (const_size) {
        // Statically planned: allocate once, keep across invocations —
        // the "allocate all memory in advance" behavior of §4.3/§4.5.
        auto key = std::make_pair(fn, (size_t)instr.dst);
        auto [it, inserted] = staticStorages_.emplace(key, nullptr);
        if (inserted) {
            device_->alloc(*const_size);
            auto storage = std::make_shared<Storage>();
            storage->bytes = *const_size;
            storage->persistent = true;
            it->second = storage;
        }
        frame.regs[instr.dst] = it->second;
        return;
    }
    bytes = evalInt(instr.sizeExpr, frame.symbols);
    // Dynamic storage: served by the runtime pool (exact-size reuse).
    auto pool_it = freePool_.find(bytes);
    if (pool_it != freePool_.end() && pool_it->second > 0) {
        pool_it->second -= 1;
    } else {
        device_->alloc(bytes);
    }
    frame.pooledBytes.push_back(bytes);
    auto storage = std::make_shared<Storage>();
    storage->bytes = bytes;
    frame.regs[instr.dst] = storage;
}

void
Executor::execAllocTensor(const Instr& instr, Frame& frame)
{
    std::vector<int64_t> shape;
    shape.reserve(instr.shape.size());
    for (const auto& dim : instr.shape) {
        shape.push_back(evalInt(dim, frame.symbols));
    }
    if (instr.args.empty()) {
        // No storage operand: direct runtime allocation (unplanned path).
        NDArray tensor = dataMode_ ? NDArray::zeros(shape, instr.dtype)
                                   : NDArray::metaOnly(shape, instr.dtype);
        int64_t bytes = tensor.sizeBytes();
        auto pool_it = freePool_.find(bytes);
        if (pool_it != freePool_.end() && pool_it->second > 0) {
            pool_it->second -= 1;
        } else {
            device_->alloc(bytes);
        }
        frame.pooledBytes.push_back(bytes);
        frame.regs[instr.dst] = tensor;
        return;
    }
    // Instantiate inside an existing storage: no new device memory.
    frame.regs[instr.dst] = dataMode_
                                ? NDArray::zeros(shape, instr.dtype)
                                : NDArray::metaOnly(shape, instr.dtype);
}

void
Executor::execKernelCall(const Instr& instr, Frame& frame)
{
    std::vector<NDArray> args;
    args.reserve(instr.args.size());
    for (RegIndex reg : instr.args) {
        args.push_back(asTensorValue(frame.regs[reg],
                                     instr.callee.c_str()));
    }
    // Instrumented differential mode: for in-place kernel calls, snapshot
    // every argument before the aliased run so a no-aliasing reference
    // run can be replayed on the copies and bit-compared afterwards. The
    // reference run touches neither the device clock nor the pool.
    bool alias_check = dataMode_ && aliasCheckEnabled() &&
                       instr.attrs.count("inplace_arg");
    std::vector<NDArray> ref_args;
    if (alias_check) ref_args = copyArgsForReference(args);
    if (instr.isLibrary) {
        const LibraryKernel* kernel =
            LibraryRegistry::global().find(instr.callee);
        if (!kernel) {
            RELAX_THROW(RuntimeError)
                << "library function not linked: " << instr.callee;
        }
        // Inside a bucketed graph region, library kernels are priced at
        // the padded binding like generated ones: each argument's shape
        // expressions are re-evaluated with the padded symbol values and
        // the cost model sees the padded stand-ins. Compute (below) still
        // runs on the live tensors — padding affects the clock only.
        if (!frame.paddedSymbols.empty() &&
            instr.argShapes.size() == args.size()) {
            VarBinding padded_syms = frame.symbols;
            for (const auto& [v, value] : frame.paddedSymbols) {
                padded_syms[v] = value;
            }
            std::vector<NDArray> priced = args;
            for (size_t i = 0; i < args.size(); ++i) {
                if (instr.argShapes[i].empty()) continue;
                std::vector<int64_t> padded_shape;
                padded_shape.reserve(instr.argShapes[i].size());
                for (const auto& dim : instr.argShapes[i]) {
                    padded_shape.push_back(evalInt(dim, padded_syms));
                }
                if (padded_shape != args[i].shape()) {
                    priced[i] = padForPricing(args[i],
                                              std::move(padded_shape));
                }
            }
            device_->launchKernel(
                kernel->cost(priced, instr.attrs, device_->spec()),
                instr.callee.c_str());
        } else {
            device_->launchKernel(
                kernel->cost(args, instr.attrs, device_->spec()),
                instr.callee.c_str());
        }
        if (dataMode_) {
            RELAX_ICHECK(kernel->compute)
                << instr.callee << " has no data-mode implementation";
            kernel->compute(args, instr.attrs);
            if (alias_check) {
                kernel->compute(ref_args, instr.attrs);
                diffAliasedRun(instr, args, ref_args);
            }
        }
        return;
    }
    tir::PrimFunc func = exec->module->getTIRFunc(instr.callee);
    std::vector<int64_t> sym_args;
    for (const auto& expr : instr.symExprs) {
        sym_args.push_back(evalInt(expr, frame.symbols));
    }
    VarBinding binding = tir::bindShapes(func, args, sym_args);
    // Inside a bucketed graph region the captured graph's kernels are
    // launched at the bucket-ceiling shapes (padded, with masking), so
    // cost is priced at the padded binding. TIR kernels share their
    // symbolic VarNodes with the graph level, which makes the override a
    // direct key lookup. Data-mode compute below still uses the real
    // shapes — padding affects the clock, never the values.
    const VarBinding* priced = &binding;
    VarBinding padded_binding;
    if (!frame.paddedSymbols.empty()) {
        padded_binding = binding;
        for (auto& [v, value] : padded_binding) {
            auto padded = frame.paddedSymbols.find(v);
            if (padded != frame.paddedSymbols.end()) {
                value = padded->second;
            }
        }
        priced = &padded_binding;
    }
    const KernelCostExprs& cost = costExprsOf(func);
    device::KernelCost kernel_cost;
    kernel_cost.flops = (double)evalInt(cost.flops, *priced);
    kernel_cost.bytes = (double)evalInt(cost.bytes, *priced);
    kernel_cost.efficiency = generatedKernelEfficiency(
        cost, func, *priced, device_->spec());
    double latency =
        device_->launchKernel(kernel_cost, instr.callee.c_str());
    if (getenv("RELAX_DEBUG_KERNELS") && latency > 1000.0) {
        fprintf(stderr, "SLOW %s: %.2f ms flops=%.3g bytes=%.3g eff=%.2f\n",
                instr.callee.c_str(), latency / 1e3, kernel_cost.flops,
                kernel_cost.bytes, kernel_cost.efficiency);
    }
    if (dataMode_) {
        tir::run(func, args, sym_args);
        if (alias_check) {
            tir::run(func, ref_args, sym_args);
            diffAliasedRun(instr, args, ref_args);
        }
    }
}

void
Executor::execPackedCall(const Instr& instr, Frame& frame)
{
    const LibraryKernel* kernel =
        LibraryRegistry::global().find(instr.callee);
    if (!kernel) {
        RELAX_THROW(RuntimeError)
            << "builtin not registered: " << instr.callee;
    }
    std::vector<NDArray> args;
    for (RegIndex reg : instr.args) {
        args.push_back(asTensorValue(frame.regs[reg], "packed_call"));
    }
    device_->launchKernel(kernel->cost(args, instr.attrs, device_->spec()),
                          instr.callee.c_str());
    if (dataMode_) {
        RELAX_ICHECK(kernel->compute) << instr.callee << " not computable";
        kernel->compute(args, instr.attrs);
        frame.regs[instr.dst] = args.back();
    } else {
        // Timing mode: data-dependent output degrades to worst case.
        frame.regs[instr.dst] = args.empty() ? NDArray() : args[0];
    }
}

} // namespace vm
} // namespace relax
