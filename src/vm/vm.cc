/**
 * @file
 * The virtual machine: the library-kernel registry, the per-instruction
 * executors (MatchShape / AllocStorage / AllocTensor / KernelCall /
 * PackedCall), and the timing-mode path that prices generated kernels
 * on the device roofline (costExprsOf + generatedKernelEfficiency).
 */
#include "vm/vm.h"
#include <cstdlib>

#include <algorithm>
#include <atomic>
#include <sstream>

#include "tir/analysis.h"
#include "tir/interpreter.h"

namespace relax {
namespace vm {

namespace {

/** Cumulative count of instrumented in-place kernel verifications. */
std::atomic<int64_t> g_aliasChecks{0};

/** RELAX_ALIAS_CHECK=1 turns on the differential in-place verifier. */
bool
aliasCheckEnabled()
{
    const char* env = getenv("RELAX_ALIAS_CHECK");
    return env && std::string(env) != "0";
}

/**
 * Differential in-place verification (the ASPIS-style instrumented
 * check): the aliased run already executed on `aliased`; `ref` holds
 * deep copies taken before it, on which the caller re-ran the kernel
 * with NO aliasing (the copied output buffer is distinct from the
 * copied input — copy-in/copy-out semantics). Every argument except the
 * aliased input itself must now be bit-identical across the two runs:
 * outputs prove the in-place rewrite did not change results, inputs
 * prove the kernel wrote nothing it does not own.
 */
void
diffAliasedRun(const Instr& instr, const std::vector<NDArray>& aliased,
               const std::vector<NDArray>& ref)
{
    auto inplace = std::get<int64_t>(instr.attrs.at("inplace_arg"));
    for (size_t i = 0; i < aliased.size(); ++i) {
        // The aliased input shares storage with the output in the
        // aliased run only; its pre-state copy legitimately differs.
        if ((int64_t)i == inplace) continue;
        if (!aliased[i].hasData() || !ref[i].hasData()) continue;
        if (aliased[i].data() != ref[i].data()) {
            RELAX_THROW(RuntimeError)
                << "RELAX_ALIAS_CHECK: '" << instr.callee << "' arg " << i
                << " diverges between the aliased run and the "
                << "copy-in/copy-out reference"
                << (i >= (size_t)instr.numInputs
                        ? " (in-place output corrupted)"
                        : " (kernel wrote a non-aliased input)");
        }
    }
    g_aliasChecks.fetch_add(1, std::memory_order_relaxed);
}

/** Deep copies of every data-bearing argument, for the reference run. */
std::vector<NDArray>
copyArgsForReference(const std::vector<NDArray>& args)
{
    std::vector<NDArray> copies;
    copies.reserve(args.size());
    for (const auto& arg : args) {
        copies.push_back(arg.hasData()
                             ? NDArray::fromVector(arg.shape(),
                                                   arg.dtype(), arg.data())
                             : arg);
    }
    return copies;
}

} // namespace

int64_t
aliasChecksPerformed()
{
    return g_aliasChecks.load(std::memory_order_relaxed);
}

LibraryRegistry&
LibraryRegistry::global()
{
    static LibraryRegistry instance;
    return instance;
}

void
LibraryRegistry::registerKernel(const std::string& name, LibraryKernel kernel)
{
    kernels_[name] = std::move(kernel);
}

const LibraryKernel*
LibraryRegistry::find(const std::string& name) const
{
    auto it = kernels_.find(name);
    return it == kernels_.end() ? nullptr : &it->second;
}

namespace {

/** Per-invocation execution state. */
struct Frame
{
    std::vector<Value> regs;
    VarBinding symbols; //!< the runtime symbolic shape table (§4.7)
    /**
     * Inside a bucketed graph region: symbolic values rounded up to the
     * region's bucket boundary. Kernel *pricing* uses these (the captured
     * graph launches padded kernels); data-mode compute always runs at
     * the real shapes, which is what keeps replay bit-identical.
     */
    VarBinding paddedSymbols;
    /** Pool allocations owned by this call (returned to pool at exit). */
    std::vector<int64_t> pooledBytes;
};

/**
 * Bucket ceiling of a symbolic value: the next multiple of `block`, or
 * the next power of two when that is smaller. Large dims (context
 * lengths) land on block boundaries (padding waste < one block); small
 * dims (batch sizes below the block) land on power-of-two classes
 * (padding waste < 2x) instead of all inflating to one block.
 */
int64_t
bucketCeiling(int64_t value, int64_t block)
{
    int64_t blocked = (value + block - 1) / block * block;
    int64_t pow2 = 1;
    while (pow2 < value) pow2 *= 2;
    return std::min(blocked, pow2);
}

NDArray&
asTensorValue(Value& value, const char* what)
{
    NDArray* array = std::get_if<NDArray>(&value);
    if (!array) RELAX_THROW(RuntimeError) << what << ": expected a tensor";
    return *array;
}

/** Cached per-kernel cost expressions. */
struct KernelCostExprs
{
    PrimExpr flops;
    PrimExpr bytes;
    tir::PatternKind kind;
    tir::PrimFunc pin; //!< keeps the node alive so addresses never recycle
};

/**
 * Stand-in for `array` at the padded shape: metadata-only normally, but
 * integer host tensors (e.g. the ragged length vector — the only data
 * any cost model reads) keep their values in the prefix — the padded
 * tail reads as zeros, so phantom rows price as empty sequences. Large
 * payload tensors are never copied: their cost contribution is shape-only.
 */
NDArray
padForPricing(const NDArray& array, std::vector<int64_t> padded_shape)
{
    bool host_metadata = array.hasData() && (array.dtype().isInt() ||
                                             array.dtype().isUInt());
    if (!host_metadata) {
        return NDArray::metaOnly(std::move(padded_shape), array.dtype());
    }
    NDArray padded = NDArray::zeros(padded_shape, array.dtype());
    const auto& shape = array.shape();
    std::vector<int64_t> index(shape.size(), 0);
    for (int64_t flat = 0; flat < array.numel(); ++flat) {
        padded.set(padded.flatten(index), array.at(flat));
        for (size_t d = shape.size(); d-- > 0;) {
            if (++index[d] < shape[d]) break;
            index[d] = 0;
        }
    }
    return padded;
}

const KernelCostExprs&
costExprsOf(const tir::PrimFunc& func)
{
    static std::map<const tir::PrimFuncNode*, KernelCostExprs> cache;
    auto [it, inserted] = cache.emplace(func.get(), KernelCostExprs{});
    if (inserted) {
        it->second.pin = func;
        tir::TensorProgramCost cost = tir::analyzeCost(func);
        it->second.flops = cost.flops;
        it->second.bytes = cost.bytes;
        auto attr = func->attrs.find(tir::kComputePatternAttr);
        it->second.kind = attr != func->attrs.end()
                              ? tir::patternKindFromName(attr->second)
                              : tir::analyzePatternKind(func);
    }
    return it->second;
}

/** Efficiency class of a generated kernel on the given device. */
double
generatedKernelEfficiency(const KernelCostExprs& cost,
                          const tir::PrimFunc& func,
                          const VarBinding& binding,
                          const device::DeviceSpec& spec)
{
    bool has_fma = cost.kind == tir::PatternKind::kOutputEwiseFusible;
    if (!has_fma) {
        // Fused kernels lose their single-op classification; detect a
        // matmul core by arithmetic intensity instead.
        double flops = (double)evalInt(cost.flops, binding);
        double bytes = (double)evalInt(cost.bytes, binding);
        has_fma = bytes > 0 && flops / bytes > 16.0;
    }
    if (!has_fma) return spec.genElemwiseEfficiency;
    // Matrix-vector (single output row) uses the tuned gemv schedule.
    const tir::Buffer& out = func->params.back();
    int64_t rows = 1;
    for (size_t d = 0; d + 1 < out->shape.size(); ++d) {
        rows *= evalInt(out->shape[d], binding);
    }
    return rows <= 1 ? spec.genGemvEfficiency : spec.genGemmEfficiency;
}

} // namespace

struct Executor
{
    ExecutablePtr exec;
    std::shared_ptr<device::SimDevice> device_;
    bool dataMode_;
    std::map<std::pair<std::string, size_t>, StoragePtr>& staticStorages_;
    std::map<int64_t, int>& freePool_;

    void execMatchShape(const Instr& instr, Frame& frame,
                        const std::string& fn);
    void execAllocStorage(const Instr& instr, Frame& frame,
                          const std::string& fn);
    void execAllocTensor(const Instr& instr, Frame& frame);
    void execKernelCall(const Instr& instr, Frame& frame);
    void execPackedCall(const Instr& instr, Frame& frame);
};

StoragePtr
VirtualMachine::allocPersistentStorage(int64_t bytes)
{
    RELAX_ICHECK(bytes >= 0) << "negative storage size";
    device_->alloc(bytes);
    auto storage = std::make_shared<Storage>();
    storage->bytes = bytes;
    storage->persistent = true;
    return storage;
}

void
VirtualMachine::releasePersistentStorage(const StoragePtr& storage)
{
    if (!storage || storage->bytes == 0) return;
    RELAX_ICHECK(storage->persistent)
        << "releasePersistentStorage: not a persistent chunk";
    device_->free(storage->bytes);
    storage->bytes = 0; // guards against double release
}

Value
VirtualMachine::invoke(const std::string& name,
                       const std::vector<Value>& args)
{
    Executor executor{exec_, device_, dataMode_, staticStorages_,
                      freePool_};
    auto it = exec_->functions.find(name);
    if (it == exec_->functions.end()) {
        RELAX_THROW(RuntimeError) << "no such function: " << name;
    }
    const VMFunction& func = it->second;
    if ((int)args.size() != func.numParams) {
        RELAX_THROW(RuntimeError)
            << name << ": expected " << func.numParams << " arguments, got "
            << args.size();
    }

    double start_clock = device_->clockUs();
    int64_t start_launches = device_->kernelLaunches();
    int64_t start_alloc = device_->totalAllocatedBytes();
    int64_t start_captures = device_->graphCaptures();
    int64_t start_replays = device_->graphReplays();

    Frame frame;
    frame.regs.resize(func.numRegs);
    for (size_t i = 0; i < args.size(); ++i) frame.regs[i] = args[i];

    // Trace state for the currently-open execution-graph region (regions
    // never nest): its span is emitted at kGraphEnd, inside this call's
    // frame span in the vm lane.
    TraceRecorder& trace = device_->trace();
    double graph_start_ts = 0.0;
    bool graph_replay = false;
    std::string graph_signature;
    int64_t open_graph_id = -1;

    Value result;
    for (const Instr& instr : func.instrs) {
        switch (instr.op) {
          case Instr::Op::kMatchShape:
            executor.execMatchShape(instr, frame, name);
            break;
          case Instr::Op::kAllocStorage:
            executor.execAllocStorage(instr, frame, name);
            break;
          case Instr::Op::kAllocTensor:
            executor.execAllocTensor(instr, frame);
            break;
          case Instr::Op::kKernelCall:
            executor.execKernelCall(instr, frame);
            break;
          case Instr::Op::kPackedCall:
            executor.execPackedCall(instr, frame);
            break;
          case Instr::Op::kGraphBegin: {
            // Key the captured graph by the bucketed shape signature:
            // each symbolic value is rounded up to its bucket ceiling,
            // so every shape in a bucket maps to one graph (captured at
            // the ceiling shape, launched padded/masked).
            int64_t block = std::max<int64_t>(instr.bucketBlock, 1);
            std::vector<std::pair<std::string, int64_t>> dims;
            dims.reserve(frame.symbols.size());
            for (const auto& [v, value] : frame.symbols) {
                int64_t padded =
                    block > 1 ? bucketCeiling(value, block) : value;
                dims.emplace_back(v->name, padded);
                if (padded != value) {
                    frame.paddedSymbols[v] = padded;
                }
            }
            // Name-sorted for a deterministic signature (symbolic names
            // are unique within a function: b, n, m, ...).
            std::sort(dims.begin(), dims.end());
            std::ostringstream signature;
            // The keyspace prefix keeps VMs running different
            // executables on one device from replaying each other's
            // graphs (graph ids restart per executable).
            if (!graphKeyspace_.empty()) {
                signature << graphKeyspace_ << ":";
            }
            for (const auto& [name, value] : dims) {
                signature << name << "=" << value << ",";
            }
            graph_start_ts = device_->clockUs();
            graph_replay =
                device_->beginGraph(instr.graphId, signature.str());
            graph_signature = signature.str();
            open_graph_id = instr.graphId;
            break;
          }
          case Instr::Op::kGraphEnd:
            device_->endGraph();
            frame.paddedSymbols.clear();
            if (trace.enabled()) {
                // Capture vs replay is THE flag downstream tools read:
                // the Fig. 17 launch-overhead story is visible as
                // replay-flagged regions whose kernels carry the
                // graphReplayUs overhead instead of kernelLaunchUs.
                trace.span(trace_lanes::kVm, trace_lanes::kFrames,
                           graph_replay ? "graph(replay)"
                                        : "graph(capture)",
                           "graph", graph_start_ts,
                           device_->clockUs() - graph_start_ts,
                           {{"graph_id", open_graph_id},
                            {"signature", graph_signature},
                            {"replay", (int64_t)(graph_replay ? 1 : 0)}});
            }
            open_graph_id = -1;
            break;
          case Instr::Op::kLoadConst:
            frame.regs[instr.dst] = instr.constant;
            break;
          case Instr::Op::kRebind:
            frame.regs[instr.dst] = frame.regs[instr.args[0]];
            break;
          case Instr::Op::kMakeTuple: {
            auto tuple = std::make_shared<TupleValue>();
            for (RegIndex reg : instr.args) {
                tuple->fields.push_back(frame.regs[reg]);
            }
            frame.regs[instr.dst] = tuple;
            break;
          }
          case Instr::Op::kGetItem: {
            auto tuple =
                std::get<TupleValuePtr>(frame.regs[instr.args[0]]);
            frame.regs[instr.dst] = tuple->fields.at(instr.index);
            break;
          }
          case Instr::Op::kRet:
            result = frame.regs[instr.args[0]];
            break;
        }
    }

    // Return this call's pool allocations (runtime allocator model).
    for (int64_t bytes : frame.pooledBytes) freePool_[bytes] += 1;

    lastStats_.latencyUs = device_->clockUs() - start_clock;
    lastStats_.kernelLaunches =
        device_->kernelLaunches() - start_launches;
    lastStats_.bytesAllocated =
        device_->totalAllocatedBytes() - start_alloc;
    lastStats_.graphCaptures = device_->graphCaptures() - start_captures;
    lastStats_.graphReplays = device_->graphReplays() - start_replays;
    lastStats_.graphBegins =
        lastStats_.graphCaptures + lastStats_.graphReplays;
    graphStats_.begins += lastStats_.graphBegins;
    graphStats_.captures += lastStats_.graphCaptures;
    graphStats_.replays += lastStats_.graphReplays;
    if (trace.enabled()) {
        trace.span(trace_lanes::kVm, trace_lanes::kFrames, name, "frame",
                   start_clock, lastStats_.latencyUs,
                   {{"kernels", lastStats_.kernelLaunches},
                    {"graph_begins", lastStats_.graphBegins},
                    {"graph_replays", lastStats_.graphReplays}});
    }
    return result;
}

void
Executor::execMatchShape(const Instr& instr, Frame& frame,
                               const std::string& fn)
{
    const NDArray& tensor =
        asTensorValue(frame.regs[instr.args[0]], "match_shape");
    for (const auto& [dim, v] : instr.binds) {
        RELAX_ICHECK(dim < (int)tensor.shape().size());
        frame.symbols[v.get()] = tensor.shape()[dim];
    }
    for (const auto& [dim, expr] : instr.checks) {
        int64_t expected = evalInt(expr, frame.symbols);
        if (tensor.shape()[dim] != expected) {
            RELAX_THROW(ShapeError)
                << fn << ": runtime shape check failed: dim " << dim
                << " expected " << relax::toString(expr) << " = "
                << expected << ", got " << tensor.shape()[dim];
        }
    }
}

void
Executor::execAllocStorage(const Instr& instr, Frame& frame,
                                 const std::string& fn)
{
    int64_t bytes;
    const int64_t* const_size = asIntImm(instr.sizeExpr);
    if (const_size) {
        // Statically planned: allocate once, keep across invocations —
        // the "allocate all memory in advance" behavior of §4.3/§4.5.
        auto key = std::make_pair(fn, (size_t)instr.dst);
        auto [it, inserted] = staticStorages_.emplace(key, nullptr);
        if (inserted) {
            device_->alloc(*const_size);
            auto storage = std::make_shared<Storage>();
            storage->bytes = *const_size;
            storage->persistent = true;
            it->second = storage;
        }
        frame.regs[instr.dst] = it->second;
        return;
    }
    bytes = evalInt(instr.sizeExpr, frame.symbols);
    // Dynamic storage: served by the runtime pool (exact-size reuse).
    auto pool_it = freePool_.find(bytes);
    if (pool_it != freePool_.end() && pool_it->second > 0) {
        pool_it->second -= 1;
    } else {
        device_->alloc(bytes);
    }
    frame.pooledBytes.push_back(bytes);
    auto storage = std::make_shared<Storage>();
    storage->bytes = bytes;
    frame.regs[instr.dst] = storage;
}

void
Executor::execAllocTensor(const Instr& instr, Frame& frame)
{
    std::vector<int64_t> shape;
    shape.reserve(instr.shape.size());
    for (const auto& dim : instr.shape) {
        shape.push_back(evalInt(dim, frame.symbols));
    }
    if (instr.args.empty()) {
        // No storage operand: direct runtime allocation (unplanned path).
        NDArray tensor = dataMode_ ? NDArray::zeros(shape, instr.dtype)
                                   : NDArray::metaOnly(shape, instr.dtype);
        int64_t bytes = tensor.sizeBytes();
        auto pool_it = freePool_.find(bytes);
        if (pool_it != freePool_.end() && pool_it->second > 0) {
            pool_it->second -= 1;
        } else {
            device_->alloc(bytes);
        }
        frame.pooledBytes.push_back(bytes);
        frame.regs[instr.dst] = tensor;
        return;
    }
    // Instantiate inside an existing storage: no new device memory.
    frame.regs[instr.dst] = dataMode_
                                ? NDArray::zeros(shape, instr.dtype)
                                : NDArray::metaOnly(shape, instr.dtype);
}

void
Executor::execKernelCall(const Instr& instr, Frame& frame)
{
    std::vector<NDArray> args;
    args.reserve(instr.args.size());
    for (RegIndex reg : instr.args) {
        args.push_back(asTensorValue(frame.regs[reg],
                                     instr.callee.c_str()));
    }
    // Instrumented differential mode: for in-place kernel calls, snapshot
    // every argument before the aliased run so a no-aliasing reference
    // run can be replayed on the copies and bit-compared afterwards. The
    // reference run touches neither the device clock nor the pool.
    bool alias_check = dataMode_ && aliasCheckEnabled() &&
                       instr.attrs.count("inplace_arg");
    std::vector<NDArray> ref_args;
    if (alias_check) ref_args = copyArgsForReference(args);
    if (instr.isLibrary) {
        const LibraryKernel* kernel =
            LibraryRegistry::global().find(instr.callee);
        if (!kernel) {
            RELAX_THROW(RuntimeError)
                << "library function not linked: " << instr.callee;
        }
        // Inside a bucketed graph region, library kernels are priced at
        // the padded binding like generated ones: each argument's shape
        // expressions are re-evaluated with the padded symbol values and
        // the cost model sees the padded stand-ins. Compute (below) still
        // runs on the live tensors — padding affects the clock only.
        if (!frame.paddedSymbols.empty() &&
            instr.argShapes.size() == args.size()) {
            VarBinding padded_syms = frame.symbols;
            for (const auto& [v, value] : frame.paddedSymbols) {
                padded_syms[v] = value;
            }
            std::vector<NDArray> priced = args;
            for (size_t i = 0; i < args.size(); ++i) {
                if (instr.argShapes[i].empty()) continue;
                std::vector<int64_t> padded_shape;
                padded_shape.reserve(instr.argShapes[i].size());
                for (const auto& dim : instr.argShapes[i]) {
                    padded_shape.push_back(evalInt(dim, padded_syms));
                }
                if (padded_shape != args[i].shape()) {
                    priced[i] = padForPricing(args[i],
                                              std::move(padded_shape));
                }
            }
            device_->launchKernel(
                kernel->cost(priced, instr.attrs, device_->spec()),
                instr.callee.c_str());
        } else {
            device_->launchKernel(
                kernel->cost(args, instr.attrs, device_->spec()),
                instr.callee.c_str());
        }
        if (dataMode_) {
            RELAX_ICHECK(kernel->compute)
                << instr.callee << " has no data-mode implementation";
            kernel->compute(args, instr.attrs);
            if (alias_check) {
                kernel->compute(ref_args, instr.attrs);
                diffAliasedRun(instr, args, ref_args);
            }
        }
        return;
    }
    tir::PrimFunc func = exec->module->getTIRFunc(instr.callee);
    std::vector<int64_t> sym_args;
    for (const auto& expr : instr.symExprs) {
        sym_args.push_back(evalInt(expr, frame.symbols));
    }
    VarBinding binding = tir::bindShapes(func, args, sym_args);
    // Inside a bucketed graph region the captured graph's kernels are
    // launched at the bucket-ceiling shapes (padded, with masking), so
    // cost is priced at the padded binding. TIR kernels share their
    // symbolic VarNodes with the graph level, which makes the override a
    // direct key lookup. Data-mode compute below still uses the real
    // shapes — padding affects the clock, never the values.
    const VarBinding* priced = &binding;
    VarBinding padded_binding;
    if (!frame.paddedSymbols.empty()) {
        padded_binding = binding;
        for (auto& [v, value] : padded_binding) {
            auto padded = frame.paddedSymbols.find(v);
            if (padded != frame.paddedSymbols.end()) {
                value = padded->second;
            }
        }
        priced = &padded_binding;
    }
    const KernelCostExprs& cost = costExprsOf(func);
    device::KernelCost kernel_cost;
    kernel_cost.flops = (double)evalInt(cost.flops, *priced);
    kernel_cost.bytes = (double)evalInt(cost.bytes, *priced);
    kernel_cost.efficiency = generatedKernelEfficiency(
        cost, func, *priced, device_->spec());
    double latency =
        device_->launchKernel(kernel_cost, instr.callee.c_str());
    if (getenv("RELAX_DEBUG_KERNELS") && latency > 1000.0) {
        fprintf(stderr, "SLOW %s: %.2f ms flops=%.3g bytes=%.3g eff=%.2f\n",
                instr.callee.c_str(), latency / 1e3, kernel_cost.flops,
                kernel_cost.bytes, kernel_cost.efficiency);
    }
    if (dataMode_) {
        tir::run(func, args, sym_args);
        if (alias_check) {
            tir::run(func, ref_args, sym_args);
            diffAliasedRun(instr, args, ref_args);
        }
    }
}

void
Executor::execPackedCall(const Instr& instr, Frame& frame)
{
    const LibraryKernel* kernel =
        LibraryRegistry::global().find(instr.callee);
    if (!kernel) {
        RELAX_THROW(RuntimeError)
            << "builtin not registered: " << instr.callee;
    }
    std::vector<NDArray> args;
    for (RegIndex reg : instr.args) {
        args.push_back(asTensorValue(frame.regs[reg], "packed_call"));
    }
    device_->launchKernel(kernel->cost(args, instr.attrs, device_->spec()),
                          instr.callee.c_str());
    if (dataMode_) {
        RELAX_ICHECK(kernel->compute) << instr.callee << " not computable";
        kernel->compute(args, instr.attrs);
        frame.regs[instr.dst] = args.back();
    } else {
        // Timing mode: data-dependent output degrades to worst case.
        frame.regs[instr.dst] = args.empty() ? NDArray() : args[0];
    }
}

} // namespace vm
} // namespace relax
