/**
 * @file
 * The Relax virtual machine: executes compiled modules on a simulated
 * device. Two execution modes share one code path:
 *  - data mode: kernels run on the reference interpreter with real
 *    tensors (tests, examples);
 *  - timing mode: tensors are metadata-only and only shapes, memory
 *    accounting and the device's virtual clock advance — how the
 *    benchmark harness executes paper-scale models.
 */
#ifndef RELAX_VM_VM_H_
#define RELAX_VM_VM_H_

#include <functional>
#include <memory>
#include <variant>

#include "device/device.h"
#include "tir/ndarray.h"
#include "vm/exec.h"

namespace relax {

namespace device {
class DeviceGroup;
} // namespace device

namespace vm {

/** Device-side storage chunk produced by alloc_storage. */
struct Storage
{
    int64_t bytes = 0;
    bool persistent = false; //!< statically pre-allocated (kept across calls)
};
using StoragePtr = std::shared_ptr<Storage>;

struct TupleValue;
using TupleValuePtr = std::shared_ptr<TupleValue>;

/** A VM register value. */
using Value = std::variant<std::monostate, NDArray, StoragePtr,
                           TupleValuePtr, int64_t>;

struct TupleValue
{
    std::vector<Value> fields;
};

/** Per-invocation statistics. */
struct RunStats
{
    double latencyUs = 0.0;
    int64_t kernelLaunches = 0;
    int64_t bytesAllocated = 0; //!< new device allocations this call
    int64_t graphBegins = 0;    //!< graph regions entered this call
    int64_t graphCaptures = 0;  //!< regions that missed and captured
    int64_t graphReplays = 0;   //!< regions that hit a captured graph
};

/** Cumulative execution-graph counters across every invoke(). */
struct GraphStats
{
    int64_t begins = 0;
    int64_t captures = 0;
    int64_t replays = 0;

    /** Fraction of graph regions that replayed instead of capturing. */
    double
    hitRate() const
    {
        return begins > 0 ? (double)replays / (double)begins : 0.0;
    }
};

/**
 * Library/builtin function: computes cost and (in data mode) the result.
 * Inputs/outputs follow DPS for library kernels; packed builtins return a
 * fresh value instead.
 */
struct LibraryKernel
{
    std::function<device::KernelCost(const std::vector<NDArray>& args,
                                     const ir::Attrs& attrs,
                                     const device::DeviceSpec& spec)>
        cost;
    /** DPS compute over real data (last numOutputs args are outputs). */
    std::function<void(std::vector<NDArray>& args, const ir::Attrs& attrs)>
        compute;
};

/** Global registry of simulated vendor libraries and runtime builtins. */
class LibraryRegistry
{
  public:
    static LibraryRegistry& global();

    void registerKernel(const std::string& name, LibraryKernel kernel);
    const LibraryKernel* find(const std::string& name) const;

  private:
    std::map<std::string, LibraryKernel> kernels_;
};

/** Registers the simulated cublas/rocblas/mps/flashattn/cutlass kernels
 *  and runtime builtins (idempotent). */
void ensureLibrariesRegistered();

/**
 * Cumulative count (process-wide) of in-place kernel invocations verified
 * by the RELAX_ALIAS_CHECK differential mode: each one ran twice — once
 * aliased, once copy-in/copy-out — and bit-compared clean. Zero when the
 * mode is off or no in-place sites executed in data mode.
 */
int64_t aliasChecksPerformed();

/** The virtual machine. */
class VirtualMachine
{
  public:
    VirtualMachine(ExecutablePtr exec,
                   std::shared_ptr<device::SimDevice> dev, bool data_mode)
        : exec_(std::move(exec)), device_(std::move(dev)),
          dataMode_(data_mode)
    {
        ensureLibrariesRegistered();
    }

    /** Invokes a compiled function. */
    Value invoke(const std::string& name, const std::vector<Value>& args);

    /**
     * Runs one compiled function across N shard VMs in instruction
     * lockstep — the tensor-parallel execution mode. All shards must
     * share one executable (ShardPass emits a single per-shard program);
     * shard s runs on its own device with its own argument list, and
     * every `ccl.*` library call becomes a rendezvous: instead of the
     * single-VM fallback kernel, the group prices one ring collective
     * (barrier + transfer on every member) and, in data mode, the
     * driver materializes the collective's semantics across the shards
     * (rank-order left-fold sum for all_reduce, last-dim concat for
     * all_gather) so results are deterministic. Collectives do not
     * count as kernel launches and are graph-capture-insensitive.
     * Returns shard s's result in slot s; per-shard RunStats are
     * updated exactly as for invoke().
     */
    static std::vector<Value>
    invokeLockstep(const std::vector<VirtualMachine*>& shards,
                   device::DeviceGroup& group, const std::string& name,
                   const std::vector<std::vector<Value>>& args);

    /**
     * Allocates a persistent device storage chunk outside any compiled
     * function — how the serving layer owns KV-cache pages: accounted
     * against the device's VRAM like static plan storage, kept across
     * invocations until released.
     */
    StoragePtr allocPersistentStorage(int64_t bytes);

    /** Releases a chunk from allocPersistentStorage (idempotent). */
    void releasePersistentStorage(const StoragePtr& storage);

    /** Statistics of the most recent invoke(). */
    const RunStats& lastRunStats() const { return lastStats_; }

    /** Cumulative graph capture/replay counters across all invokes. */
    const GraphStats& graphStats() const { return graphStats_; }

    device::SimDevice& dev() { return *device_; }
    /** The shared device handle — lets a second VM (a serving engine's
     *  draft model) run on the same simulated clock and VRAM pool. */
    std::shared_ptr<device::SimDevice> devPtr() const { return device_; }
    bool dataMode() const { return dataMode_; }

    /**
     * Namespaces this VM's captured-graph keys on the device. Two VMs
     * running different executables on one shared device (a serving
     * engine's target and draft models) would otherwise collide: graph
     * ids are per-executable counters and bucketed shape signatures look
     * alike across models, so a draft region could "replay" a graph the
     * target captured. Defaults to the empty keyspace, which preserves
     * the single-VM key format.
     */
    void setGraphKeyspace(std::string keyspace)
    {
        graphKeyspace_ = std::move(keyspace);
    }
    const std::string& graphKeyspace() const { return graphKeyspace_; }

  private:
    ExecutablePtr exec_;
    std::shared_ptr<device::SimDevice> device_;
    bool dataMode_;
    std::string graphKeyspace_;
    RunStats lastStats_;
    GraphStats graphStats_;
    /** Statically planned storages, pre-allocated once and kept. */
    std::map<std::pair<std::string, size_t>, StoragePtr> staticStorages_;
    /** Runtime memory pool (unplanned path): exact-size free lists. */
    std::map<int64_t, int> freePool_;
};

} // namespace vm
} // namespace relax

#endif // RELAX_VM_VM_H_
