/**
 * @file
 * Simulated vendor libraries (the call_dps_library targets of §4.6) and
 * runtime builtins. Each kernel provides a cost model (used by the
 * simulated device clock) and a data-mode implementation that reuses the
 * generated tensor-program kernels through the reference interpreter, so
 * library dispatch is bit-identical to the compiler path.
 *
 * Library cost characteristics mirror the real systems:
 *  - cublas/rocblas/mps GEMMs hit a higher fraction of roofline peak than
 *    compiler-generated kernels (libGemmEfficiency);
 *  - flashattn.attention never materializes the score matrix, so its
 *    memory traffic is only q+k+v+out (the FlashAttention property);
 *  - cutlass fused norms behave like tuned elementwise kernels.
 */
#include <algorithm>
#include <cmath>

#include "op/tir_kernels.h"
#include "tir/interpreter.h"
#include "vm/vm.h"

namespace relax {
namespace vm {

namespace {

std::vector<PrimExpr>
staticShape(const NDArray& array)
{
    std::vector<PrimExpr> shape;
    for (int64_t dim : array.shape()) shape.push_back(intImm(dim));
    return shape;
}

double
totalBytes(const std::vector<NDArray>& args)
{
    double bytes = 0;
    for (const auto& a : args) bytes += (double)a.sizeBytes();
    return bytes;
}

double
attrDouble(const ir::Attrs& attrs, const std::string& key, double fallback)
{
    auto it = attrs.find(key);
    return it == attrs.end() ? fallback : std::get<double>(it->second);
}

int64_t
attrInt(const ir::Attrs& attrs, const std::string& key, int64_t fallback)
{
    auto it = attrs.find(key);
    return it == attrs.end() ? fallback : std::get<int64_t>(it->second);
}

void
registerGemm(LibraryRegistry& registry, const std::string& name)
{
    LibraryKernel kernel;
    kernel.cost = [](const std::vector<NDArray>& args, const ir::Attrs&,
                     const device::DeviceSpec& spec) {
        const NDArray& a = args[0];
        const NDArray& out = args.back();
        int64_t k = a.shape().back();
        device::KernelCost cost;
        cost.flops = 2.0 * (double)out.numel() * (double)k;
        cost.bytes = totalBytes(args);
        cost.efficiency = spec.libGemmEfficiency;
        return cost;
    };
    kernel.compute = [](std::vector<NDArray>& args, const ir::Attrs& attrs) {
        bool transpose_b = attrInt(attrs, "transpose_b", 0) != 0;
        tir::PrimFunc func = op::makeMatmulFunc(
            "lib_matmul", staticShape(args[0]), staticShape(args[1]),
            transpose_b, args[0].dtype());
        tir::run(func, args);
    };
    registry.registerKernel(name, kernel);
}

void
registerAttention(LibraryRegistry& registry, const std::string& name)
{
    LibraryKernel kernel;
    kernel.cost = [](const std::vector<NDArray>& args, const ir::Attrs&,
                     const device::DeviceSpec& spec) {
        const auto& q = args[0].shape(); // [b, h, n, d]
        const auto& k = args[1].shape(); // [b, h, m, d]
        device::KernelCost cost;
        cost.flops = 4.0 * (double)q[0] * q[1] * q[2] * k[2] * q[3];
        // IO-aware attention: only q, k, v and out touch device memory.
        cost.bytes = totalBytes(args);
        cost.efficiency = spec.libAttentionEfficiency;
        return cost;
    };
    kernel.compute = [](std::vector<NDArray>& args, const ir::Attrs& attrs) {
        tir::PrimFunc func = op::makeAttentionFunc(
            "lib_attention", staticShape(args[0]), staticShape(args[1]),
            staticShape(args[2]), attrDouble(attrs, "scale", 1.0),
            attrInt(attrs, "causal", 0) != 0, args[0].dtype());
        tir::run(func, args);
    };
    registry.registerKernel(name, kernel);
}

void
registerRaggedAttention(LibraryRegistry& registry, const std::string& name)
{
    // Varlen / paged-KV attention over the persistent page pool
    // (FlashAttention's varlen paged-KV entry point): one launch covers a
    // packed batch q [1, h, n, d] of prefill chunks and single-token
    // decodes with unequal fresh lengths, delimited by the cumulative
    // offsets cu [b+1], gathering keys/values from pool pages
    // [p, h, c, d] through the [b, w] block table. Work is
    // data-dependent — each row prices fresh_i = cu[i+1] - cu[i] queries
    // against its own true context length, both read from host-side
    // integer tensors that carry data even in timing mode — so the cost
    // sums per-row fresh costs, never the padded packed axis or the pool
    // size. Shape padding from a bucketed capture region is benign: the
    // zero-filled tail of cu clamps to fresh 0 and prices nothing.
    LibraryKernel kernel;
    kernel.cost = [](const std::vector<NDArray>& args, const ir::Attrs&,
                     const device::DeviceSpec& spec) {
        const auto& q = args[0].shape();     // [1, h, n, d] packed
        const auto& pool = args[1].shape();  // [p, h, c, d] K pool
        const NDArray& lens = args[3];       // [b] true context lengths
        const NDArray& cu = args[4];         // [b+1] cumulative fresh
        int64_t h = q[1], n = q[2], d = q[3];
        int64_t dv = args[2].shape()[3];
        // Keys range over the mapped table width, not the pool size.
        int64_t m = args[5].shape()[1] * pool[2];
        double query_kv = 0.0;  // sum over rows of fresh_i * kv_i
        double kv_positions = 0.0;
        if (lens.hasData() && cu.hasData()) {
            int64_t rows =
                std::min<int64_t>(lens.numel(), cu.numel() - 1);
            for (int64_t i = 0; i < rows; ++i) {
                // Padded tails are zero-filled, so clamp the differences;
                // phantom rows read fresh 0 and price nothing.
                int64_t fresh = std::max<int64_t>(
                    (int64_t)cu.at(i + 1) - (int64_t)cu.at(i), 0);
                int64_t kv = std::min<int64_t>(
                    (int64_t)lens.at(i) + fresh, m);
                query_kv += (double)fresh * (double)kv;
                if (fresh > 0) kv_positions += (double)kv;
            }
        } else {
            // No host data: every packed query prices the padded worst
            // case of the mapped table width.
            query_kv = (double)n * (double)m;
            kv_positions = (double)lens.numel() * (double)m;
        }
        device::KernelCost cost;
        cost.flops = 2.0 * (double)h * (double)(d + dv) * query_kv;
        // IO-aware: q, out, lens, cu and block table, plus only the
        // gathered live K/V page bytes — the FlashAttention property
        // applied per row; the rest of the pool is never touched.
        cost.bytes = (double)args[0].sizeBytes() +
                     (double)args.back().sizeBytes() +
                     (double)args[3].sizeBytes() +
                     (double)args[4].sizeBytes() +
                     (double)args[5].sizeBytes() +
                     kv_positions * (double)h * (double)(d + dv) *
                         (double)args[1].dtype().bytes();
        cost.efficiency = spec.libAttentionEfficiency;
        return cost;
    };
    kernel.compute = [](std::vector<NDArray>& args, const ir::Attrs& attrs) {
        tir::PrimFunc func = op::makeRaggedAttentionFunc(
            "lib_attention_ragged", staticShape(args[0]),
            staticShape(args[1]), staticShape(args[2]),
            staticShape(args[3]), staticShape(args[4]),
            staticShape(args[5]),
            attrDouble(attrs, "scale", 1.0), args[0].dtype());
        tir::run(func, args);
    };
    registry.registerKernel(name, kernel);
}

void
registerNorms(LibraryRegistry& registry, const std::string& prefix)
{
    LibraryKernel rms;
    rms.cost = [](const std::vector<NDArray>& args, const ir::Attrs&,
                  const device::DeviceSpec& spec) {
        device::KernelCost cost;
        cost.flops = 4.0 * (double)args[0].numel();
        cost.bytes = totalBytes(args);
        cost.efficiency = 0.9;
        return cost;
    };
    rms.compute = [](std::vector<NDArray>& args, const ir::Attrs& attrs) {
        tir::PrimFunc func = op::makeRMSNormFunc(
            "lib_rms_norm", staticShape(args[0]),
            attrDouble(attrs, "eps", 1e-5), args[0].dtype());
        tir::run(func, args);
    };
    registry.registerKernel(prefix + ".rms_norm", rms);

    LibraryKernel ln = rms;
    ln.compute = [](std::vector<NDArray>& args, const ir::Attrs& attrs) {
        tir::PrimFunc func = op::makeLayerNormFunc(
            "lib_layer_norm", staticShape(args[0]),
            attrDouble(attrs, "eps", 1e-5), args[0].dtype());
        tir::run(func, args);
    };
    registry.registerKernel(prefix + ".layer_norm", ln);
}

void
registerKvCache(LibraryRegistry& registry)
{
    // Paged KV-cache append: the runtime appends the new position in
    // place, so only the new token's K/V bytes move (the behavior of the
    // production paged cache the paper's system uses). Data mode realizes
    // the append as a concat so results stay exact.
    LibraryKernel append;
    append.cost = [](const std::vector<NDArray>& args, const ir::Attrs&,
                     const device::DeviceSpec& spec) {
        const NDArray& fresh = args[1]; // [b, h, 1, d]
        device::KernelCost cost;
        cost.bytes = 2.0 * (double)fresh.sizeBytes();
        cost.flops = 0.0;
        cost.efficiency = spec.genElemwiseEfficiency;
        return cost;
    };
    append.compute = [](std::vector<NDArray>& args, const ir::Attrs&) {
        tir::PrimFunc func = op::makeConcatFunc(
            "lib_kv_append",
            {staticShape(args[0]), staticShape(args[1])}, /*axis=*/2,
            args[0].dtype());
        tir::run(func, args);
    };
    registry.registerKernel("kv.append", append);

    // Page-pool packed append (in-place, `inplace_arg = 0`): scatters the
    // packed fresh tokens into the persistent pool at each row's own
    // length offset, addressed through the block table. The DPS output
    // aliases the pool argument, so the call allocates nothing and copies
    // nothing — only the true fresh K/V bytes (summed from the per-row
    // cu spans, plus the integer metadata) move, regardless of the pool
    // size or the padded packed axis. Args: pool, fresh, lens, cu,
    // table, out (== pool).
    LibraryKernel ragged;
    ragged.cost = [](const std::vector<NDArray>& args, const ir::Attrs&,
                     const device::DeviceSpec& spec) {
        const NDArray& fresh = args[1]; // [1, h, n, d] packed
        const NDArray& cu = args[3];    // [b+1] cumulative fresh
        double tokens = (double)fresh.shape()[2]; // padded worst case
        if (cu.hasData()) {
            // Sum of per-row fresh counts; the zero-filled padded tail
            // clamps to zero.
            tokens = 0.0;
            for (int64_t i = 0; i + 1 < cu.numel(); ++i) {
                tokens += (double)std::max<int64_t>(
                    (int64_t)cu.at(i + 1) - (int64_t)cu.at(i), 0);
            }
        }
        double token_bytes = (double)fresh.shape()[1] *
                             (double)fresh.shape()[3] *
                             (double)fresh.dtype().bytes();
        device::KernelCost cost;
        cost.bytes = 2.0 * tokens * token_bytes +
                     (double)args[2].sizeBytes() +
                     (double)args[3].sizeBytes() +
                     (double)args[4].sizeBytes();
        cost.flops = 0.0;
        cost.efficiency = spec.genElemwiseEfficiency;
        return cost;
    };
    ragged.compute = [](std::vector<NDArray>& args, const ir::Attrs&) {
        tir::PrimFunc func = op::makeKvAppendRaggedFunc(
            "lib_kv_append_ragged", staticShape(args[1]),
            staticShape(args[2]), staticShape(args[3]),
            staticShape(args[4]), staticShape(args.back()),
            args[1].dtype());
        // The scatter writes straight into the out tensor, which aliases
        // the pool input — genuine in-place mutation.
        std::vector<NDArray> scatter_args{args[1], args[2], args[3],
                                          args[4], args.back()};
        tir::run(func, scatter_args);
    };
    registry.registerKernel("kv.append_ragged", ragged);
}

void
registerCollectives(LibraryRegistry& registry)
{
    // ccl.* sites are normally intercepted by the lockstep multi-VM
    // driver (VirtualMachine::invokeLockstep), which rendezvouses the
    // shards and prices the ring transfer on the DeviceGroup link. These
    // registry entries are the single-VM fallback so a tensor-parallel
    // executable still executes standalone (pass unit tests, debugging):
    // one resident shard contributes its own slice — all_reduce passes
    // the partial through and all_gather tiles it — which is only the
    // true full value when the executable was compiled with tp=1.
    LibraryKernel reduce;
    reduce.cost = [](const std::vector<NDArray>& args, const ir::Attrs&,
                     const device::DeviceSpec& spec) {
        device::KernelCost cost;
        cost.bytes = 2.0 * (double)args.back().sizeBytes();
        cost.flops = 0.0;
        cost.efficiency = spec.genElemwiseEfficiency;
        return cost;
    };
    reduce.compute = [](std::vector<NDArray>& args, const ir::Attrs&) {
        const auto& in = args[0].data();
        auto& out = args.back().data();
        std::copy(in.begin(), in.end(), out.begin());
    };
    registry.registerKernel("ccl.all_reduce", reduce);

    LibraryKernel gather = reduce;
    gather.compute = [](std::vector<NDArray>& args, const ir::Attrs&) {
        // Concatenation along the last dim; with one resident shard the
        // local chunk fills every slot.
        const NDArray& in = args[0];
        NDArray& out = args.back();
        int64_t chunk = in.shape().back();
        int64_t full = out.shape().back();
        int64_t rows = in.numel() / chunk;
        for (int64_t r = 0; r < rows; ++r) {
            for (int64_t off = 0; off < full; off += chunk) {
                for (int64_t j = 0; j < chunk; ++j) {
                    out.set(r * full + off + j, in.at(r * chunk + j));
                }
            }
        }
    };
    registry.registerKernel("ccl.all_gather", gather);
}

void
registerBuiltins(LibraryRegistry& registry)
{
    // unique: data-dependent output; allocates its own result (appended).
    LibraryKernel unique;
    unique.cost = [](const std::vector<NDArray>& args, const ir::Attrs&,
                     const device::DeviceSpec&) {
        device::KernelCost cost;
        cost.bytes = 2.0 * (double)args[0].sizeBytes();
        cost.flops = (double)args[0].numel() *
                     std::log2((double)std::max<int64_t>(
                         args[0].numel(), 2));
        cost.efficiency = 0.3;
        return cost;
    };
    unique.compute = [](std::vector<NDArray>& args, const ir::Attrs&) {
        std::vector<double> values = args[0].data();
        std::sort(values.begin(), values.end());
        values.erase(std::unique(values.begin(), values.end()),
                     values.end());
        args.push_back(NDArray::fromVector({(int64_t)values.size()},
                                           args[0].dtype(), values));
    };
    registry.registerKernel("builtin.unique", unique);
}

} // namespace

void
ensureLibrariesRegistered()
{
    static bool done = [] {
        LibraryRegistry& registry = LibraryRegistry::global();
        registerGemm(registry, "cublas.matmul");
        registerGemm(registry, "rocblas.matmul");
        registerGemm(registry, "mps.matmul");
        registerAttention(registry, "flashattn.attention");
        registerRaggedAttention(registry, "flashattn.attention_ragged");
        registerNorms(registry, "cutlass");
        registerKvCache(registry);
        registerCollectives(registry);
        registerBuiltins(registry);
        return true;
    }();
    (void)done;
}

} // namespace vm
} // namespace relax
