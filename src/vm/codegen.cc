/**
 * @file
 * VM code generation (§4.7): translates lowered graph functions into
 * instruction sequences. Symbolic variables referenced anywhere in a
 * function are populated by MatchShape instructions over the input
 * tensors; every remaining symbolic expression is carried in the
 * instructions and evaluated against the populated symbol table.
 */
#include "vm/exec.h"

#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "ir/utils.h"

namespace relax {
namespace vm {

using namespace ir;
using Var = ir::Var;
using VarNode = ir::VarNode;
using CallNode = ir::CallNode;

namespace {

class FunctionCodegen
{
  public:
    FunctionCodegen(const Function& func, const IRModulePtr& module)
        : func_(func), module_(module) {}

    VMFunction
    run(const std::string& name)
    {
        out_.name = name;
        out_.numParams = (int)func_->params.size();
        for (const auto& param : func_->params) {
            regOf(param.get());
        }
        emitInputShapeMatches();
        const auto* seq = static_cast<const SeqExprNode*>(func_->body.get());
        for (const auto& block : seq->blocks) {
            for (const auto& binding : block->bindings) {
                emitBinding(binding);
            }
        }
        Instr ret;
        ret.op = Instr::Op::kRet;
        ret.args.push_back(regOfExpr(seq->body));
        out_.instrs.push_back(std::move(ret));
        out_.numRegs = nextReg_;
        return out_;
    }

  private:
    RegIndex
    regOf(const VarNode* v)
    {
        auto [it, inserted] = regs_.emplace(v, nextReg_);
        if (inserted) ++nextReg_;
        return it->second;
    }

    RegIndex
    regOfExpr(const Expr& expr)
    {
        if (expr->kind() == RxKind::kConstant) {
            // Materialize the constant once at first use.
            const auto* node =
                static_cast<const ConstantNode*>(expr.get());
            auto [it, inserted] = constRegs_.emplace(node, nextReg_);
            if (inserted) {
                ++nextReg_;
                Instr instr;
                instr.op = Instr::Op::kLoadConst;
                instr.dst = it->second;
                instr.constant = node->data;
                out_.instrs.push_back(std::move(instr));
            }
            return it->second;
        }
        RELAX_ICHECK(expr->kind() == RxKind::kVar)
            << "codegen expects variable operands, got " << toString(expr);
        return regOf(static_cast<const VarNode*>(expr.get()));
    }

    /** Populates the symbol table from input tensor shapes (MatchShape). */
    void
    emitInputShapeMatches()
    {
        std::unordered_set<const ::relax::VarNode*> bound;
        for (const auto& param : func_->params) {
            const auto* tensor = asTensor(param->structInfo());
            if (!tensor || !tensor->shape) continue;
            Instr instr;
            instr.op = Instr::Op::kMatchShape;
            instr.args.push_back(regOf(param.get()));
            for (size_t d = 0; d < tensor->shape->size(); ++d) {
                const PrimExpr& dim = (*tensor->shape)[d];
                if (dim->kind() == ExprKind::kVar) {
                    const auto* v =
                        static_cast<const ::relax::VarNode*>(dim.get());
                    if (bound.insert(v).second) {
                        instr.binds.emplace_back(
                            (int)d,
                            std::static_pointer_cast<const ::relax::VarNode>(
                                dim));
                        continue;
                    }
                }
                instr.checks.emplace_back((int)d, dim);
            }
            if (!instr.binds.empty() || !instr.checks.empty()) {
                out_.instrs.push_back(std::move(instr));
            }
        }
    }

    void
    emitBinding(const Binding& binding)
    {
        const Expr& value = binding.value;
        if (binding.isMatchCast) {
            emitMatchCast(binding);
            return;
        }
        if (isOpCall(value, "relax.memory.alloc_storage")) {
            const auto* call = static_cast<const CallNode*>(value.get());
            Instr instr;
            instr.op = Instr::Op::kAllocStorage;
            instr.dst = regOf(binding.var.get());
            instr.sizeExpr =
                static_cast<const PrimValueNode*>(call->args[0].get())
                    ->value;
            out_.instrs.push_back(std::move(instr));
            return;
        }
        if (isOpCall(value, "relax.memory.alloc_tensor") ||
            isOpCall(value, "relax.builtin.alloc_tensor")) {
            const auto* call = static_cast<const CallNode*>(value.get());
            const auto* tensor = asTensor(call->sinfoArgs[0]);
            RELAX_ICHECK(tensor && tensor->shape)
                << "alloc_tensor without symbolic shape";
            Instr instr;
            instr.op = Instr::Op::kAllocTensor;
            instr.dst = regOf(binding.var.get());
            if (!call->args.empty()) {
                instr.args.push_back(regOfExpr(call->args[0])); // storage
            }
            instr.shape = *tensor->shape;
            instr.dtype = tensor->dtype;
            out_.instrs.push_back(std::move(instr));
            return;
        }
        if (isOpCall(value, "relax.vm.kernel_call")) {
            const auto* call = static_cast<const CallNode*>(value.get());
            Instr instr;
            instr.op = Instr::Op::kKernelCall;
            instr.attrs = call->attrs;
            instr.numInputs =
                (int)std::get<int64_t>(call->attrs.at("num_inputs"));
            instr.numOutputs =
                (int)std::get<int64_t>(call->attrs.at("num_outputs"));
            int64_t num_sym =
                std::get<int64_t>(call->attrs.at("num_sym_args"));
            instr.isLibrary = std::get<std::string>(
                                  call->attrs.at("callee_kind")) == "library";
            if (instr.isLibrary) {
                instr.callee = static_cast<const ExternFuncNode*>(
                                   call->args[0].get())
                                   ->name;
            } else {
                instr.callee = static_cast<const GlobalVarNode*>(
                                   call->args[0].get())
                                   ->name;
                RELAX_ICHECK(module_->getTIRFunc(instr.callee))
                    << "missing kernel " << instr.callee;
            }
            for (int i = 0; i < instr.numInputs + instr.numOutputs; ++i) {
                instr.args.push_back(regOfExpr(call->args[1 + i]));
                if (instr.isLibrary) {
                    // Carry each argument's symbolic shape so the VM can
                    // price library kernels at the padded binding inside
                    // bucketed graph regions (DESIGN.md §4).
                    const auto* tensor =
                        asTensor(call->args[1 + i]->structInfo());
                    instr.argShapes.push_back(
                        tensor && tensor->shape
                            ? *tensor->shape
                            : std::vector<PrimExpr>{});
                }
            }
            for (int64_t i = 0; i < num_sym; ++i) {
                const Expr& arg =
                    call->args[1 + instr.numInputs + instr.numOutputs + i];
                instr.symExprs.push_back(
                    static_cast<const PrimValueNode*>(arg.get())->value);
            }
            out_.instrs.push_back(std::move(instr));
            return;
        }
        if (isOpCall(value, "relax.call_packed")) {
            const auto* call = static_cast<const CallNode*>(value.get());
            Instr instr;
            instr.op = Instr::Op::kPackedCall;
            instr.dst = regOf(binding.var.get());
            instr.callee = static_cast<const ExternFuncNode*>(
                               call->args[0].get())
                               ->name;
            instr.attrs = call->attrs;
            for (size_t i = 1; i < call->args.size(); ++i) {
                instr.args.push_back(regOfExpr(call->args[i]));
            }
            out_.instrs.push_back(std::move(instr));
            return;
        }
        if (isOpCall(value, "relax.vm.graph_begin") ||
            isOpCall(value, "relax.vm.graph_end")) {
            const auto* call = static_cast<const CallNode*>(value.get());
            Instr instr;
            instr.op = isOpCall(value, "relax.vm.graph_begin")
                           ? Instr::Op::kGraphBegin
                           : Instr::Op::kGraphEnd;
            instr.graphId = std::get<int64_t>(call->attrs.at("graph_id"));
            if (auto it = call->attrs.find("bucket_block");
                it != call->attrs.end()) {
                instr.bucketBlock = std::get<int64_t>(it->second);
            }
            out_.instrs.push_back(std::move(instr));
            return;
        }
        if (value->kind() == RxKind::kVar ||
            value->kind() == RxKind::kConstant) {
            Instr instr;
            instr.op = Instr::Op::kRebind;
            instr.dst = regOf(binding.var.get());
            instr.args.push_back(regOfExpr(value));
            out_.instrs.push_back(std::move(instr));
            return;
        }
        if (value->kind() == RxKind::kTuple) {
            const auto* tuple = static_cast<const TupleNode*>(value.get());
            Instr instr;
            instr.op = Instr::Op::kMakeTuple;
            instr.dst = regOf(binding.var.get());
            for (const auto& field : tuple->fields) {
                instr.args.push_back(regOfExpr(field));
            }
            out_.instrs.push_back(std::move(instr));
            return;
        }
        if (value->kind() == RxKind::kTupleGetItem) {
            const auto* node =
                static_cast<const TupleGetItemNode*>(value.get());
            Instr instr;
            instr.op = Instr::Op::kGetItem;
            instr.dst = regOf(binding.var.get());
            instr.args.push_back(regOfExpr(node->tuple));
            instr.index = node->index;
            out_.instrs.push_back(std::move(instr));
            return;
        }
        RELAX_THROW(IRError)
            << "codegen: unlowered binding " << binding.var->name << " = "
            << toString(value)
            << " (run the Fig. 13 pipeline before building)";
    }

    void
    emitMatchCast(const Binding& binding)
    {
        // dst aliases src; bare vars in the target annotation bind from the
        // runtime shape, composite dims become runtime checks (§3.2).
        Instr rebind;
        rebind.op = Instr::Op::kRebind;
        rebind.dst = regOf(binding.var.get());
        rebind.args.push_back(regOfExpr(binding.value));
        out_.instrs.push_back(std::move(rebind));

        const auto* tensor = asTensor(binding.castInfo);
        if (!tensor || !tensor->shape) return;
        Instr match;
        match.op = Instr::Op::kMatchShape;
        match.args.push_back(regOf(binding.var.get()));
        for (size_t d = 0; d < tensor->shape->size(); ++d) {
            const PrimExpr& dim = (*tensor->shape)[d];
            if (dim->kind() == ExprKind::kVar) {
                match.binds.emplace_back(
                    (int)d,
                    std::static_pointer_cast<const ::relax::VarNode>(dim));
            } else {
                match.checks.emplace_back((int)d, dim);
            }
        }
        out_.instrs.push_back(std::move(match));
    }

    Function func_;
    IRModulePtr module_;
    VMFunction out_;
    std::unordered_map<const VarNode*, RegIndex> regs_;
    std::unordered_map<const ConstantNode*, RegIndex> constRegs_;
    int nextReg_ = 0;
};

} // namespace

ExecutablePtr
buildExecutable(const IRModulePtr& module)
{
    auto exec = std::make_shared<Executable>();
    exec->module = module;
    for (const auto& [name, func] : module->functions()) {
        FunctionCodegen codegen(func, module);
        exec->functions[name] = codegen.run(name);
    }
    return exec;
}

std::string
toString(const VMFunction& func)
{
    std::ostringstream os;
    os << "vm_function " << func.name << " (params=" << func.numParams
       << ", regs=" << func.numRegs << ")\n";
    for (const auto& instr : func.instrs) {
        switch (instr.op) {
          case Instr::Op::kMatchShape:
            os << "  match_shape r" << instr.args[0];
            for (const auto& [dim, v] : instr.binds) {
                os << " [" << dim << "]->" << v->name;
            }
            for (const auto& [dim, expr] : instr.checks) {
                os << " check[" << dim << "]==" << relax::toString(expr);
            }
            break;
          case Instr::Op::kAllocStorage:
            os << "  r" << instr.dst << " = alloc_storage("
               << relax::toString(instr.sizeExpr) << ")";
            break;
          case Instr::Op::kAllocTensor:
            os << "  r" << instr.dst << " = alloc_tensor("
               << relax::toString(instr.shape) << ", "
               << instr.dtype.toString();
            if (!instr.args.empty()) os << ", storage=r" << instr.args[0];
            os << ")";
            break;
          case Instr::Op::kKernelCall:
            os << "  kernel_call " << instr.callee
               << (instr.isLibrary ? " [lib]" : "") << " regs(";
            for (size_t i = 0; i < instr.args.size(); ++i) {
                if (i) os << ", ";
                os << "r" << instr.args[i];
            }
            os << ")";
            break;
          case Instr::Op::kPackedCall:
            os << "  r" << instr.dst << " = packed " << instr.callee;
            break;
          case Instr::Op::kGraphBegin:
            os << "  graph_begin " << instr.graphId;
            if (instr.bucketBlock > 1) {
                os << " bucket=" << instr.bucketBlock;
            }
            break;
          case Instr::Op::kGraphEnd:
            os << "  graph_end " << instr.graphId;
            break;
          case Instr::Op::kLoadConst:
            os << "  r" << instr.dst << " = const";
            break;
          case Instr::Op::kRebind:
            os << "  r" << instr.dst << " = r" << instr.args[0];
            break;
          case Instr::Op::kMakeTuple:
            os << "  r" << instr.dst << " = tuple(...)";
            break;
          case Instr::Op::kGetItem:
            os << "  r" << instr.dst << " = r" << instr.args[0] << "["
               << instr.index << "]";
            break;
          case Instr::Op::kRet:
            os << "  ret r" << instr.args[0];
            break;
        }
        os << "\n";
    }
    return os.str();
}

} // namespace vm
} // namespace relax
