/**
 * @file
 * Universal deployment (§5.3): one model definition compiled for every
 * simulated backend in the catalog, printing which libraries each target
 * uses, whether execution graphs apply, and the resulting decode
 * latency — the "compile once per target, run anywhere" story.
 */
#include <iostream>

#include "frontend/compile.h"
#include "frontend/llama.h"
#include "support/table_printer.h"
#include "vm/vm.h"

int
main()
{
    using namespace relax;
    frontend::LlamaConfig config =
        frontend::LlamaConfig::redpajama_3b().withQuant(
            frontend::Quant::kQ4);
    config.fixedBatch = 1;

    TablePrinter table({"device", "backend", "gemm lib", "exec graphs",
                        "ms/token"});
    for (const char* name :
         {"rtx4090", "radeon7900xtx", "m2ultra", "steamdeck", "jetsonorin",
          "webgpu_m3max", "s24"}) {
        device::DeviceSpec spec = device::deviceByName(name);
        frontend::CompileOptions options;
        options.device = spec;
        options.bounds = {{"b", 1}, {"n", 1024}, {"m", 192}};
        passes::TargetInfo target =
            frontend::targetFromDevice(spec, options);
        auto exec =
            frontend::compile(frontend::buildLlama(config), options);
        auto dev = std::make_shared<device::SimDevice>(spec);
        vm::VirtualMachine machine(exec, dev, /*data_mode=*/false);

        std::vector<vm::Value> args;
        args.emplace_back(NDArray::metaOnly({1, 1}, DataType::i64()));
        for (int64_t layer = 0; layer < config.numLayers; ++layer) {
            for (int i = 0; i < 2; ++i) {
                args.emplace_back(NDArray::metaOnly(
                    {1, config.numHeads, 128, config.headDim},
                    DataType::f16()));
            }
        }
        for (auto& w : frontend::makeLlamaWeights(config, false)) {
            args.emplace_back(std::move(w));
        }
        machine.invoke("decode", args); // warm-up/capture
        machine.invoke("decode", args);
        table.addRow({spec.name, spec.backend,
                      target.gemmLibrary ? *target.gemmLibrary : "-",
                      target.supportsExecutionGraphs ? "yes" : "no",
                      TablePrinter::fmt(
                          machine.lastRunStats().latencyUs / 1e3)});
    }
    table.print();
    std::cout << "multiplatform_deploy: OK\n";
    return 0;
}
