/**
 * @file
 * Continuous-batching LLM serving on the tiny model with real data:
 * three concurrent requests run through the serve::Engine against one
 * compiled executable and one persistent KV page pool — the engine
 * batches their decode steps into single pool-addressed calls, the
 * third request forks the first one's prompt prefix (a shared system
 * prompt: it reuses the parent's pool pages and prefills only its own
 * tail, with copy-on-write keeping both streams exact), and per-request
 * latency stats come off the simulated device's virtual clock.
 */
#include <iostream>

#include "serve/engine.h"

int
main()
{
    using namespace relax;
    frontend::LlamaConfig config = frontend::LlamaConfig::tiny();

    frontend::CompileOptions options;
    options.device.name = "host";
    options.device.backend = "cpu";
    options.device.vramBytes = int64_t(8) << 30;

    serve::EngineOptions engine_options;
    engine_options.scheduler.maxBatchSize = 4;
    engine_options.kvBlockTokens = 4;
    auto engine = serve::Engine::build(config, options, /*data_mode=*/true,
                                       engine_options);

    // Two requests with different prompt lengths arrive together; the
    // engine prefills each straight into pool pages, then decodes them
    // as one ragged batch per step whatever their context lengths.
    std::vector<int64_t> system_prompt = {3, 1, 4, 1, 5};
    serve::RequestId parent =
        engine->addRequest(system_prompt, /*max_new_tokens=*/8);
    engine->addRequest({2, 7}, /*max_new_tokens=*/6);
    engine->step(); // prefill both; the parent's prefix pages commit

    // A third request shares the system prompt: fork_of maps it onto the
    // parent's pool pages, so only its 2-token tail is prefilled.
    std::vector<int64_t> forked_prompt = system_prompt;
    forked_prompt.push_back(9);
    forked_prompt.push_back(2);
    engine->addRequest(forked_prompt, /*max_new_tokens=*/6,
                       /*stop_token=*/-1, /*arrival_us=*/-1.0,
                       /*fork_of=*/parent);
    const serve::EngineStats& stats = engine->run();

    for (const serve::FinishedRequest& done : engine->collect()) {
        std::cout << "request " << done.id << " prompt:";
        for (int64_t token : done.promptTokens) std::cout << " " << token;
        std::cout << "\n  generated:";
        for (int64_t token : done.outputTokens) std::cout << " " << token;
        std::cout << "\n  ttft " << done.stats.ttftUs() / 1e3
                  << " ms, inter-token "
                  << done.stats.meanInterTokenUs() / 1e3 << " ms\n";
    }
    std::cout << "engine: " << stats.steps << " steps, "
              << stats.prefillBatches << " prefill + "
              << stats.decodeBatches << " decode batches, "
              << stats.tokensGenerated << " tokens, peak KV "
              << stats.peakKvBytes << " bytes ("
              << engine->kv().peakPages() << " pool pages)\n";
    std::cout << "prefix sharing: " << engine->kv().forkCount()
              << " fork(s), " << engine->kv().cowCopies()
              << " copy-on-write page cop"
              << (engine->kv().cowCopies() == 1 ? "y" : "ies")
              << ", host cache relayout bytes "
              << stats.relayoutBytes << "\n";
    if (stats.relayoutBytes != 0) {
        std::cerr << "llm_serving: FAILED (host relayout)\n";
        return 1;
    }
    std::cout << "llm_serving: OK\n";
    return 0;
}
