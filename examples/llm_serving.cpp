/**
 * @file
 * Continuous-batching LLM serving on the tiny model with real data:
 * three concurrent requests run through the serve::Engine against one
 * compiled executable and one persistent KV page pool — each step packs
 * every running sequence's fresh tokens (prefill chunks and single
 * decode tokens alike) into ONE pool-addressed varlen call, the third
 * request repeats the first one's system prompt and automatic prefix
 * caching maps its page-aligned prefix blocks onto the parent's pool
 * pages (no fork hint: the hash index detects the duplication and
 * verifies token content before sharing), and per-request latency
 * stats come off the simulated device's virtual clock. The run is
 * traced: the device's TraceRecorder is enabled up front and the whole
 * timeline — kernel spans, VM frames, step spans, request lifecycles —
 * is dumped as Chrome trace-event JSON (open llm_serving_trace.json in
 * Perfetto), and tail latency comes from the engine's MetricsRegistry.
 */
#include <fstream>
#include <iostream>

#include "serve/engine.h"

int
main()
{
    using namespace relax;
    frontend::LlamaConfig config = frontend::LlamaConfig::tiny();

    frontend::CompileOptions options;
    options.device.name = "host";
    options.device.backend = "cpu";
    options.device.vramBytes = int64_t(8) << 30;

    serve::EngineOptions engine_options;
    engine_options.scheduler.maxBatchSize = 4;
    engine_options.kvBlockTokens = 4;
    auto engine = serve::Engine::build(config, options, /*data_mode=*/true,
                                       engine_options);
    // Record the full timeline on the virtual clock (off by default;
    // observation only — enabling it changes nothing about the run).
    engine->machine().dev().trace().enable();

    // Two requests with different prompt lengths arrive together; the
    // engine prefills each straight into pool pages, then decodes them
    // as one ragged batch per step whatever their context lengths.
    std::vector<int64_t> system_prompt = {3, 1, 4, 1, 5};
    engine->addRequest(system_prompt, /*max_new_tokens=*/8);
    engine->addRequest({2, 7}, /*max_new_tokens=*/6);
    engine->step(); // prefill both; the first prompt's blocks get indexed

    // A third request repeats the system prompt verbatim. No hint is
    // passed: at admission the KV manager hashes the prompt's
    // page-aligned blocks, finds the first request's pages in its index,
    // verifies the token content, and shares them — only the tail past
    // the last full block is prefilled.
    std::vector<int64_t> repeat_prompt = system_prompt;
    repeat_prompt.push_back(9);
    repeat_prompt.push_back(2);
    engine->addRequest(repeat_prompt, /*max_new_tokens=*/6);
    const serve::EngineStats& stats = engine->run();

    for (const serve::FinishedRequest& done : engine->collect()) {
        std::cout << "request " << done.id << " prompt:";
        for (int64_t token : done.promptTokens) std::cout << " " << token;
        std::cout << "\n  generated:";
        for (int64_t token : done.outputTokens) std::cout << " " << token;
        std::cout << "\n  ttft " << done.stats.ttftUs() / 1e3
                  << " ms, inter-token "
                  << done.stats.meanInterTokenUs() / 1e3 << " ms\n";
    }
    std::cout << "engine: " << stats.steps << " steps, "
              << stats.prefillBatches << " prefill + "
              << stats.decodeBatches << " decode batches, "
              << stats.tokensGenerated << " tokens, peak KV "
              << stats.peakKvBytes << " bytes ("
              << engine->kv().peakPages() << " pool pages)\n";
    std::cout << "automatic prefix caching: " << engine->kv().prefixHits()
              << " hit(s), " << engine->kv().prefixTokensMatched()
              << " prompt tokens served from shared pages, host cache"
              << " relayout bytes " << stats.relayoutBytes << "\n";
    if (stats.relayoutBytes != 0) {
        std::cerr << "llm_serving: FAILED (host relayout)\n";
        return 1;
    }
    if (engine->kv().prefixHits() == 0) {
        std::cerr << "llm_serving: FAILED (prefix cache missed the"
                  << " duplicated system prompt)\n";
        return 1;
    }

    // Tail latency off the registry's exact TTFT distribution, and the
    // timeline as Perfetto-loadable Chrome trace JSON.
    const Histogram& ttft = engine->metrics().histogram("serve.ttft_us");
    std::cout << "p99 TTFT " << ttft.percentile(0.99) / 1e3 << " ms over "
              << ttft.count() << " request(s)\n";
    const char* trace_path = "llm_serving_trace.json";
    std::ofstream trace_file(trace_path);
    engine->machine().dev().trace().writeChromeTrace(trace_file);
    std::cout << "chrome trace ("
              << engine->machine().dev().trace().events().size()
              << " events) written to " << trace_path << "\n";
    std::cout << "llm_serving: OK\n";
    return 0;
}
