/**
 * @file
 * Continuous-batching LLM serving on the tiny model with real data: two
 * concurrent requests with different prompt lengths run through the
 * serve::Engine against one compiled executable — the engine batches
 * their decode steps into single symbolic-batch calls, grows each
 * sequence's paged KV cache, and reports per-request latency stats, all
 * on the simulated device's virtual clock.
 */
#include <iostream>

#include "serve/engine.h"

int
main()
{
    using namespace relax;
    frontend::LlamaConfig config = frontend::LlamaConfig::tiny();

    frontend::CompileOptions options;
    options.device.name = "host";
    options.device.backend = "cpu";
    options.device.vramBytes = int64_t(8) << 30;

    serve::EngineOptions engine_options;
    engine_options.scheduler.maxBatchSize = 4;
    auto engine = serve::Engine::build(config, options, /*data_mode=*/true,
                                       engine_options);

    // Two requests with different prompt lengths arrive together; the
    // engine prefills each, then decodes them as one batch whenever their
    // context lengths line up.
    engine->addRequest({3, 1, 4, 1}, /*max_new_tokens=*/8);
    engine->addRequest({2, 7}, /*max_new_tokens=*/6);
    const serve::EngineStats& stats = engine->run();

    for (const serve::FinishedRequest& done : engine->collect()) {
        std::cout << "request " << done.id << " prompt:";
        for (int64_t token : done.promptTokens) std::cout << " " << token;
        std::cout << "\n  generated:";
        for (int64_t token : done.outputTokens) std::cout << " " << token;
        std::cout << "\n  ttft " << done.stats.ttftUs() / 1e3
                  << " ms, inter-token "
                  << done.stats.meanInterTokenUs() / 1e3 << " ms\n";
    }
    std::cout << "engine: " << stats.steps << " steps, "
              << stats.prefillBatches << " prefill + "
              << stats.decodeBatches << " decode batches, "
              << stats.tokensGenerated << " tokens, peak KV "
              << stats.peakKvBytes << " bytes\n";
    std::cout << "llm_serving: OK\n";
    return 0;
}
