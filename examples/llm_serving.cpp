/**
 * @file
 * Dynamic-batch LLM serving loop on the tiny model with real data:
 * prefill a prompt, then autoregressively decode with a growing KV cache
 * — batch size and context length both vary at runtime against one
 * compiled executable.
 */
#include <iostream>

#include "frontend/compile.h"
#include "frontend/llama.h"
#include "vm/vm.h"

int
main()
{
    using namespace relax;
    frontend::LlamaConfig config = frontend::LlamaConfig::tiny();

    frontend::CompileOptions options;
    options.device.name = "host";
    options.device.backend = "cpu";
    options.device.vramBytes = int64_t(8) << 30;
    auto exec = frontend::compile(frontend::buildLlama(config), options);
    auto dev = std::make_shared<device::SimDevice>(options.device);
    vm::VirtualMachine machine(exec, dev, /*data_mode=*/true);
    auto weights = frontend::makeLlamaWeights(config, /*with_data=*/true);

    auto invoke = [&](const std::string& fn, const NDArray& ids,
                      const std::vector<NDArray>& caches) {
        std::vector<vm::Value> args{ids};
        for (const auto& c : caches) args.emplace_back(c);
        for (const auto& w : weights) args.emplace_back(w);
        return std::get<vm::TupleValuePtr>(machine.invoke(fn, args));
    };
    auto argmaxLast = [&](const NDArray& logits) {
        int64_t v_count = logits.shape().back();
        int64_t base = logits.numel() - v_count;
        int64_t best = 0;
        for (int64_t v = 1; v < v_count; ++v) {
            if (logits.at(base + v) > logits.at(base + best)) best = v;
        }
        return best;
    };

    // Prefill a 4-token prompt (batch 1), then greedy-decode 8 tokens.
    NDArray prompt =
        NDArray::fromVector({1, 4}, DataType::i64(), {3, 1, 4, 1});
    auto state = invoke("prefill", prompt, {});
    std::vector<NDArray> caches;
    for (size_t i = 1; i < state->fields.size(); ++i) {
        caches.push_back(std::get<NDArray>(state->fields[i]));
    }
    std::cout << "prompt: 3 1 4 1\ngenerated:";
    int64_t token = argmaxLast(std::get<NDArray>(state->fields[0]));
    for (int step = 0; step < 8; ++step) {
        std::cout << " " << token;
        NDArray next = NDArray::fromVector({1, 1}, DataType::i64(),
                                           {(double)token});
        auto out = invoke("decode", next, caches);
        caches.clear();
        for (size_t i = 1; i < out->fields.size(); ++i) {
            caches.push_back(std::get<NDArray>(out->fields[i]));
        }
        token = argmaxLast(std::get<NDArray>(out->fields[0]));
    }
    std::cout << "\ncontext length grew to " << caches[0].shape()[2]
              << " positions across " << 8 << " dynamic-shape steps\n";
    std::cout << "llm_serving: OK\n";
    return 0;
}
