/**
 * @file
 * Quickstart: build a dynamic-shape Relax program with the BlockBuilder,
 * inspect its first-class symbolic shape annotations, compile it through
 * the full pipeline, and execute it on real data — the same program
 * compiled once serves every value of n.
 */
#include <iostream>

#include "frontend/compile.h"
#include "op/ops.h"
#include "shape/block_builder.h"
#include "vm/vm.h"

int
main()
{
    using namespace relax;

    // main(x: Tensor((n, 4), "f32")) = relu(x @ W + b)
    auto module = ir::IRModule::create();
    shape::BlockBuilder builder(module);
    Var n = var("n");
    ir::Var x = ir::makeVar(
        "x", ir::tensorSInfo({PrimExpr(n), intImm(4)}, DataType::f32()));
    NDArray weight = NDArray::fromVector(
        {4, 2}, DataType::f32(), {1, 0, 0, 1, 1, 0, 0, 1});
    NDArray bias = NDArray::fromVector({2}, DataType::f32(), {0.5, -0.5});

    builder.beginDataflowBlock();
    ir::Var mm = builder.emit(op::matmul(x, ir::makeConstant(weight)));
    ir::Var biased = builder.emit(op::add(mm, ir::makeConstant(bias)));
    ir::Var out = builder.emitOutput(op::relu(biased));
    builder.endBlock();
    module->addFunction("main", ir::makeFunction({x}, builder.finish(out),
                                                 out->structInfo()));

    std::cout << "=== Relax IR (note the symbolic shapes) ===\n"
              << module->toString() << "\n";

    // Compile once; the executable serves any n.
    frontend::CompileOptions options;
    options.device.name = "host";
    options.device.backend = "cpu";
    auto exec = frontend::compile(module, options);
    auto dev = std::make_shared<device::SimDevice>(options.device);
    vm::VirtualMachine machine(exec, dev, /*data_mode=*/true);

    for (int64_t rows : {1, 3}) {
        NDArray input = NDArray::zeros({rows, 4}, DataType::f32());
        for (int64_t i = 0; i < input.numel(); ++i) {
            input.set(i, (double)(i % 5) - 2.0);
        }
        NDArray result =
            std::get<NDArray>(machine.invoke("main", {input}));
        std::cout << "n = " << rows << " -> output shape ("
                  << result.shape()[0] << ", " << result.shape()[1]
                  << "), first value " << result.at(0) << "\n";
    }
    std::cout << "quickstart: OK\n";
    return 0;
}
