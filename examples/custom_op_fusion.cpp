/**
 * @file
 * The Figure 9 case study as a runnable walk-through: a custom 4-bit
 * quantization decode written directly as a loop-level tensor program is
 * classified by analysis feedback, fused with its consumer matmul by
 * FuseOps, and merged into one kernel by FuseTensorIR. Prints the module
 * after each stage so the cross-level transformations are visible.
 */
#include <iostream>

#include "op/ops.h"
#include "op/tir_kernels.h"
#include "passes/passes.h"
#include "shape/block_builder.h"
#include "tir/analysis.h"

int
main()
{
    using namespace relax;
    const int64_t k_dim = 128, n_out = 256;

    auto module = ir::IRModule::create();
    tir::PrimFunc decode = op::makeDecodeQ4Func(
        "decode_q4", intImm(k_dim), intImm(n_out), DataType::f16());
    ir::GlobalVar decode_gv = module->addTIRFunc(decode);

    shape::BlockBuilder builder(module);
    Var n = var("n");
    ir::Var x = ir::makeVar(
        "x", ir::tensorSInfo({PrimExpr(n), intImm(k_dim)}, DataType::f16()));
    ir::Var wdata = ir::makeVar(
        "Wdata",
        ir::tensorSInfo({intImm(k_dim), intImm(n_out / 8)}, DataType::u32()));
    ir::Var wscale = ir::makeVar(
        "Wscale", ir::tensorSInfo({intImm(k_dim), intImm(n_out / 32)},
                                  DataType::f16()));
    builder.beginDataflowBlock();
    ir::Var w = builder.emit(ir::callTIR(
        decode_gv, {wdata, wscale},
        ir::tensorSInfo({intImm(k_dim), intImm(n_out)}, DataType::f16())));
    ir::Var out = builder.emitOutput(op::matmul(x, w));
    builder.endBlock();
    module->addFunction("main",
                        ir::makeFunction({x, wdata, wscale},
                                         builder.finish(out),
                                         out->structInfo()));

    std::cout << "=== initial program (custom TIR + graph op) ===\n"
              << module->toString() << "\n";

    module = passes::legalizeOpsPass().run(module);
    module = passes::annotateTIRPatternsPass().run(module);
    std::cout << "=== compute pattern analysis (Algorithm 1) ===\n";
    for (const auto& [name, func] : module->tirFuncs()) {
        std::cout << "  " << name << ": "
                  << func->attrs.at(tir::kComputePatternAttr) << "\n";
    }

    module = passes::fuseOpsPass().run(module);
    std::cout << "\n=== after FuseOps (subgraph function, Fig. 9 green) "
              << "===\n"
              << module->toString() << "\n";

    module = passes::fuseTensorIRPass().run(module);
    std::cout << "=== after FuseTensorIR (single fused kernel, Fig. 9 "
              << "yellow) ===\n"
              << module->toString() << "\n";
    std::cout << "custom_op_fusion: OK\n";
    return 0;
}
