/**
 * @file
 * Figure 16: decode latency on Apple M2 Ultra. Only HF Transformers and
 * llama.cpp support Apple GPUs (vLLM / torch.compile are skipped
 * automatically, §5.1); llama.cpp's hand-written Metal kernels make it
 * the strong baseline here.
 */
#include "decode_figure.h"

int
main()
{
    using namespace relax;
    using namespace relax::bench;
    auto llamacpp = relax::baselines::llamaCpp();
    // llama.cpp Metal kernels are the best hand-tuned option (§5.1).
    llamacpp.gemvEfficiencyOverride = 0.82;
    llamacpp.gemmEfficiencyOverride = 0.60;
    runDecodeFigure(
        "Figure 16: Apple M2 Ultra decode latency",
        device::appleM2Ultra(),
        {frontend::LlamaConfig::llama3_8b(),
         frontend::LlamaConfig::gemma1_1_7b(),
         frontend::LlamaConfig::qwen2_7b()},
        {baselines::hfTransformers(), baselines::hfTorchCompile(),
         baselines::vllm(), llamacpp});
    return 0;
}
