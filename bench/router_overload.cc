/**
 * @file
 * Cluster-router overload driver: a seeded Poisson arrival trace offered
 * at ~2.5x the measured aggregate capacity of M engine replicas, driven
 * through the Router's discrete-event loop in timing mode. Two arms run
 * the identical trace:
 *
 *  - no-shed (control): every arrival is admitted. Under sustained
 *    overload the queues — and therefore the admitted-request TTFT tail
 *    — grow with the length of the trace.
 *  - shed: the router rejects arrivals once even the least-loaded
 *    replica's outstanding-token charge exceeds a cap sized to a few
 *    full batches. Admitted requests then wait behind a bounded queue,
 *    so the p99 TTFT stays flat no matter how long the overload lasts.
 *
 * The headline number is admitted p99 TTFT under overload, read from
 * the router's own `router.ttft_us` histogram (shed requests never
 * enter it). Exit status is non-zero when the shed arm fails to shed,
 * sheds everything, or does not beat the control's p99 by at least 4x;
 * when a third per-tenant-budget run fails to reject the flooding
 * tenant's overage while leaving the well-behaved tenants untouched;
 * or when the router.* counters disagree with RouterStats.
 *
 * Replica capacity is measured, not assumed: a closed-loop calibration
 * run saturates one replica and the offered rate is derived from its
 * tokens/s, so the bench stays ~2.5x overloaded as the engine gets
 * faster. Results are written to BENCH_router.json (override with
 * --bench-json=PATH); all output is deterministic for the fixed seed.
 */
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "common.h"
#include "serve/router.h"

namespace {

using namespace relax;

/** An 8-layer Llama3-8B-dims variant: real serving shapes, quick steps. */
frontend::LlamaConfig
benchConfig()
{
    frontend::LlamaConfig config = frontend::LlamaConfig::llama3_8b();
    config.name = "llama3-8b-8l";
    config.numLayers = 8;
    return config;
}

frontend::CompileOptions
compileOptionsFor(const device::DeviceSpec& spec)
{
    frontend::CompileOptions options;
    options.device = spec;
    // Prompts <= 64 and batch cap 8: one step's packed fresh tokens fit
    // 64 (prefill cap) + 7 decode rows; re-prefill of 64 + 16 generated
    // stays under the same bound.
    options.bounds = {{"b", 8}, {"n", 96}};
    return options;
}

serve::EngineOptions
engineOptions()
{
    serve::EngineOptions options;
    options.scheduler.maxBatchSize = 8;
    options.scheduler.maxPrefillTokensPerStep = 64;
    options.kvBlockTokens = 16;
    return options;
}

std::unique_ptr<serve::Engine>
buildReplica(const device::DeviceSpec& spec)
{
    return serve::Engine::build(benchConfig(), compileOptionsFor(spec),
                                /*data_mode=*/false, engineOptions());
}

struct RouterArrival
{
    double timeUs = 0.0;
    std::string tenant;
    std::vector<int64_t> prompt;
    int64_t maxNewTokens = 0;
};

/**
 * The overload trace: `num_requests` arrivals as a seeded Poisson
 * process at `requests_per_sec`, prompts cycling 16/32/64 tokens,
 * tenants cycling t0..t3.
 */
std::vector<RouterArrival>
makeTrace(int num_requests, int64_t max_new_tokens,
          double requests_per_sec, unsigned seed)
{
    std::mt19937 rng(seed);
    std::exponential_distribution<double> gap(requests_per_sec / 1e6);
    const int64_t prompt_lengths[] = {16, 32, 64};
    std::vector<RouterArrival> trace;
    trace.reserve(num_requests);
    double t = 0.0;
    for (int i = 0; i < num_requests; ++i) {
        t += gap(rng);
        RouterArrival arrival;
        arrival.timeUs = t;
        arrival.tenant = "t" + std::to_string(i % 4);
        arrival.prompt.assign(prompt_lengths[i % 3], 1 + i % 7);
        arrival.maxNewTokens = max_new_tokens;
        trace.push_back(std::move(arrival));
    }
    return trace;
}

struct ArmResult
{
    serve::RouterStats stats;
    double p50TtftUs = 0.0;
    double p99TtftUs = 0.0;
    double makespanUs = 0.0;
    double admittedToksPerSec = 0.0;
};

ArmResult
runArm(int replicas, const std::vector<RouterArrival>& trace,
       const serve::RouterOptions& options,
       std::map<std::string, int64_t>* tenant_rejected = nullptr)
{
    device::DeviceSpec spec = device::rtx4090();
    std::vector<std::unique_ptr<serve::Engine>> engines;
    for (int i = 0; i < replicas; ++i) engines.push_back(buildReplica(spec));
    serve::Router router(std::move(engines), options);
    for (const RouterArrival& a : trace) {
        router.submit(a.tenant, a.prompt, a.maxNewTokens, a.timeUs);
    }
    ArmResult result;
    result.stats = router.run();
    const Histogram& ttft = router.metrics().histogram("router.ttft_us");
    if (ttft.count() > 0) {
        result.p50TtftUs = ttft.percentile(0.50);
        result.p99TtftUs = ttft.percentile(0.99);
    }
    // The router.* counters are the machine-readable mirror of
    // RouterStats; a drift between them is a bench failure.
    if (router.metrics().counters().at("router.dispatched").value() !=
            result.stats.dispatched ||
        router.metrics().counters().at("router.finished").value() !=
            result.stats.finished ||
        ttft.count() != result.stats.finished) {
        std::cerr << "FAIL: router.* metrics disagree with RouterStats\n";
        std::exit(1);
    }
    if (tenant_rejected) {
        const std::string prefix = "router.tenant.";
        for (const auto& [name, counter] : router.metrics().counters()) {
            if (name.rfind(prefix, 0) != 0) continue;
            std::string tenant = name.substr(
                prefix.size(), name.size() - prefix.size() -
                                   std::string(".rejected").size());
            (*tenant_rejected)[tenant] = counter.value();
        }
    }
    int64_t tokens = 0;
    double makespan = 0.0;
    for (int r = 0; r < router.replicaCount(); ++r) {
        tokens += router.replica(r).stats().tokensGenerated;
        makespan = std::max(
            makespan, router.replica(r).machine().dev().clockUs());
    }
    result.makespanUs = makespan;
    result.admittedToksPerSec =
        makespan > 0 ? (double)tokens / makespan * 1e6 : 0.0;
    return result;
}

/** Fixed "%.3f" float formatting (deterministic, locale-free). */
std::string
fmt3(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", value);
    return buf;
}

void
writeArmJson(std::ostream& os, const char* name, const ArmResult& arm)
{
    os << "    \"" << name << "\": {\n"
       << "      \"dispatched\": " << arm.stats.dispatched << ",\n"
       << "      \"shed\": " << arm.stats.shed << ",\n"
       << "      \"finished\": " << arm.stats.finished << ",\n"
       << "      \"ttft_p50_us\": " << fmt3(arm.p50TtftUs) << ",\n"
       << "      \"ttft_p99_us\": " << fmt3(arm.p99TtftUs) << ",\n"
       << "      \"admitted_tokens_per_sec\": "
       << fmt3(arm.admittedToksPerSec) << ",\n"
       << "      \"makespan_us\": " << fmt3(arm.makespanUs) << "\n"
       << "    }";
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace relax;
    std::string bench_json = "BENCH_router.json";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string prefix = "--bench-json=";
        if (arg.rfind(prefix, 0) == 0) {
            bench_json = arg.substr(prefix.size());
        } else if (arg == "--bench-json" && i + 1 < argc) {
            bench_json = argv[++i];
        } else {
            std::cerr << "unknown argument: " << arg
                      << " (expected --bench-json=PATH)\n";
            return 2;
        }
    }

    const int replicas = 2;
    const int num_requests = 2000;
    const int64_t max_new_tokens = 16;
    const unsigned trace_seed = 1234;
    const double overload_ratio = 2.5;

    // Calibrate one replica's saturated tokens/s in a closed loop, then
    // offer overload_ratio times the cluster's measured capacity.
    double replica_toks;
    {
        auto probe = buildReplica(device::rtx4090());
        for (int i = 0; i < 32; ++i) {
            probe->addRequest(std::vector<int64_t>(32, 1), max_new_tokens);
        }
        replica_toks = probe->run().tokensPerSec();
    }
    double tokens_per_request =
        (16.0 + 32.0 + 64.0) / 3.0 + (double)max_new_tokens;
    double capacity_rps = replicas * replica_toks / (double)max_new_tokens;
    double offered_rps = overload_ratio * capacity_rps;

    std::cout << "Router overload: " << benchConfig().name << " x "
              << replicas << " replicas on rtx4090, " << num_requests
              << " requests (prompts 16/32/64, " << max_new_tokens
              << " new tokens, ~" << fmt3(tokens_per_request)
              << " tokens each), Poisson arrivals at "
              << fmt3(offered_rps) << " req/s = " << fmt3(overload_ratio)
              << "x the " << fmt3(capacity_rps)
              << " req/s measured capacity (seed " << trace_seed << ")\n\n";

    std::vector<RouterArrival> trace =
        makeTrace(num_requests, max_new_tokens, offered_rps, trace_seed);

    // Shed cap: ~4 full batches of charge per replica. Small enough to
    // bound the queue, large enough to keep the batch cap fed.
    serve::RouterOptions shed_options;
    shed_options.maxOutstandingTokensPerReplica =
        4 * 8 * (int64_t)tokens_per_request;
    ArmResult shed = runArm(replicas, trace, shed_options);
    ArmResult control = runArm(replicas, trace, serve::RouterOptions{});

    TablePrinter table({"arm", "dispatched", "shed", "TTFT p50 ms",
                        "TTFT p99 ms", "admitted tok/s", "makespan s"});
    table.addRow({"no-shed (control)",
                  std::to_string(control.stats.dispatched),
                  std::to_string(control.stats.shed),
                  TablePrinter::fmt(control.p50TtftUs / 1e3, 2),
                  TablePrinter::fmt(control.p99TtftUs / 1e3, 2),
                  TablePrinter::fmt(control.admittedToksPerSec, 1),
                  TablePrinter::fmt(control.makespanUs / 1e6, 2)});
    table.addRow({"shed", std::to_string(shed.stats.dispatched),
                  std::to_string(shed.stats.shed),
                  TablePrinter::fmt(shed.p50TtftUs / 1e3, 2),
                  TablePrinter::fmt(shed.p99TtftUs / 1e3, 2),
                  TablePrinter::fmt(shed.admittedToksPerSec, 1),
                  TablePrinter::fmt(shed.makespanUs / 1e6, 2)});
    table.print();

    if (shed.stats.shed == 0) {
        std::cerr << "FAIL: " << fmt3(overload_ratio)
                  << "x overload shed nothing — the valve is dead\n";
        return 1;
    }
    if (shed.stats.dispatched < num_requests / 4) {
        std::cerr << "FAIL: shedding rejected almost everything ("
                  << shed.stats.dispatched << "/" << num_requests
                  << " admitted)\n";
        return 1;
    }
    if (control.stats.shed != 0 ||
        control.stats.dispatched != num_requests) {
        std::cerr << "FAIL: the no-shed control arm rejected requests\n";
        return 1;
    }
    double p99_ratio = control.p99TtftUs / shed.p99TtftUs;
    std::cout << "\nadmitted p99 TTFT under overload: "
              << TablePrinter::fmt(shed.p99TtftUs / 1e3, 2)
              << " ms with shedding vs "
              << TablePrinter::fmt(control.p99TtftUs / 1e3, 2)
              << " ms without (" << fmt3(p99_ratio) << "x)\n";
    if (p99_ratio < 4.0) {
        std::cerr << "FAIL: shedding improved p99 TTFT only "
                  << fmt3(p99_ratio) << "x (floor 4x) — the bounded "
                  << "queue is not bounding the tail\n";
        return 1;
    }

    // Per-tenant budgets: tenant "flood" offers 4x what each of three
    // well-behaved tenants offers; its budget caps it at two in-flight
    // requests' charge. This runs at 1x capacity, not overload — the
    // point is isolation (the budget throttles the flooder long before
    // the cluster saturates), so the well-behaved tenants' in-flight
    // charge stays under their caps and flood's rejections dominate.
    std::vector<RouterArrival> tenant_trace;
    {
        std::mt19937 rng(trace_seed + 1);
        std::exponential_distribution<double> gap(capacity_rps / 1e6);
        double t = 0.0;
        for (int i = 0; i < 400; ++i) {
            t += gap(rng);
            RouterArrival arrival;
            arrival.timeUs = t;
            // 4 of every 7 arrivals belong to the flooding tenant.
            arrival.tenant = i % 7 < 4 ? "flood" : "ok" +
                             std::to_string(i % 7 - 4);
            arrival.prompt.assign(32, 2);
            arrival.maxNewTokens = max_new_tokens;
            tenant_trace.push_back(std::move(arrival));
        }
    }
    serve::RouterOptions budget_options;
    budget_options.maxTenantTokensInFlight =
        2 * (32 + max_new_tokens);
    std::map<std::string, int64_t> tenant_rejected;
    ArmResult budget =
        runArm(replicas, tenant_trace, budget_options, &tenant_rejected);
    int64_t flood_rejected = tenant_rejected.count("flood")
                                 ? tenant_rejected.at("flood")
                                 : 0;
    int64_t ok_rejected = budget.stats.tenantRejected - flood_rejected;
    std::cout << "tenant budgets: " << flood_rejected
              << " of the flooding tenant's arrivals rejected vs "
              << ok_rejected << " across the three well-behaved tenants; "
              << budget.stats.dispatched << " dispatched\n";
    if (flood_rejected == 0) {
        std::cerr << "FAIL: the flooding tenant was never rejected\n";
        return 1;
    }
    if (flood_rejected <= 2 * ok_rejected) {
        // Flood offers 4x each ok tenant against the same budget; its
        // rejections must dominate, or the budget is not isolating it.
        std::cerr << "FAIL: budget rejections did not isolate the "
                     "flooding tenant (" << flood_rejected << " vs "
                  << ok_rejected << ")\n";
        return 1;
    }
    if (budget.stats.tenantRejected + budget.stats.dispatched !=
        (int64_t)tenant_trace.size()) {
        std::cerr << "FAIL: tenant-budget arm lost arrivals\n";
        return 1;
    }

    std::ofstream json(bench_json);
    json << "{\n"
         << "  \"bench\": \"router_overload\",\n"
         << "  \"model\": \"" << benchConfig().name << "\",\n"
         << "  \"replicas\": " << replicas << ",\n"
         << "  \"requests\": " << num_requests << ",\n"
         << "  \"trace_seed\": " << trace_seed << ",\n"
         << "  \"offered_ratio\": " << fmt3(overload_ratio) << ",\n"
         << "  \"offered_req_per_sec\": " << fmt3(offered_rps) << ",\n"
         << "  \"capacity_req_per_sec\": " << fmt3(capacity_rps) << ",\n"
         << "  \"shed_cap_tokens\": "
         << shed_options.maxOutstandingTokensPerReplica << ",\n"
         << "  \"arms\": {\n";
    writeArmJson(json, "no_shed", control);
    json << ",\n";
    writeArmJson(json, "shed", shed);
    json << "\n  },\n"
         << "  \"tenant_budget\": {\n"
         << "    \"rejected\": " << budget.stats.tenantRejected << ",\n"
         << "    \"flood_rejected\": " << flood_rejected << ",\n"
         << "    \"dispatched\": " << budget.stats.dispatched << "\n"
         << "  }\n}\n";
    std::cout << "bench snapshot written to " << bench_json << "\n";
    return 0;
}
