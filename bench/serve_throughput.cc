/**
 * @file
 * Serving-engine throughput driver: replays a seeded Poisson request
 * trace through the continuous-batching engine in timing mode
 * (paper-scale model, metadata-only tensors, simulated device clock) and
 * reports tokens/s, mean and tail TTFT (p50/p99), decode-step
 * execution-graph replay hit-rate, and peak KV usage against the
 * device's VRAM budget. Arrivals are spread over virtual time by a
 * seeded exponential inter-arrival process, so admission interleaves
 * with decode and scheduler changes are judged on tail latency, not just
 * the mean. Both scheduler policies run over the same trace, in both
 * decode modes: ragged paged-attention (one decode call per step over
 * the whole running batch) and the legacy equal-context grouping it
 * replaces — the side-by-side is the batch-fragmentation study.
 *
 * Exit status is non-zero when the peak KV reservation exceeds the
 * budget, when ragged decode issues more than one decode call per step,
 * or when ragged FCFS fails to reach 2x the grouped FCFS tokens/s. The
 * final "decode replay hit-rate after warmup" line is the
 * bucketed-capture regression guard: scripts/check.sh parses it and
 * fails the tier-1 run when it reads below the documented 80% threshold.
 */
#include <algorithm>
#include <iostream>
#include <random>
#include <vector>

#include "common.h"
#include "serve/engine.h"

namespace {

using namespace relax;

struct Arrival
{
    double timeUs = 0.0;
    std::vector<int64_t> prompt;
    int64_t maxNewTokens = 0;
};

struct TraceResult
{
    serve::EngineStats stats;
    int64_t kvBudget = 0;
    double makespanUs = 0.0;
    double p50TtftUs = 0.0;
    double p99TtftUs = 0.0;
    /** Decode replay hit-rate measured after the warmup steps. */
    double warmHitRate = 0.0;
};

/**
 * A mixed trace: `num_requests` requests with prompt lengths cycling
 * through short/medium/long, arriving over virtual time as a seeded
 * Poisson process (exponential inter-arrival gaps, mean 1/rate).
 */
std::vector<Arrival>
makeTrace(int num_requests, int64_t max_new_tokens, double requests_per_sec,
          unsigned seed)
{
    std::mt19937 rng(seed);
    std::exponential_distribution<double> gap(requests_per_sec / 1e6);
    const int64_t prompt_lengths[] = {32, 96, 256};
    std::vector<Arrival> trace;
    trace.reserve(num_requests);
    double t = 0.0;
    for (int i = 0; i < num_requests; ++i) {
        t += gap(rng);
        Arrival arrival;
        arrival.timeUs = t;
        arrival.prompt.assign(prompt_lengths[i % 3], 1);
        arrival.maxNewTokens = max_new_tokens;
        trace.push_back(std::move(arrival));
    }
    return trace;
}

double
percentile(std::vector<double> values, double p)
{
    if (values.empty()) return 0.0;
    std::sort(values.begin(), values.end());
    size_t idx = (size_t)((double)(values.size() - 1) * p + 0.5);
    return values[idx];
}

TraceResult
runTrace(const frontend::LlamaConfig& config,
         const device::DeviceSpec& spec, serve::SchedulePolicy policy,
         serve::DecodeMode mode, const std::vector<Arrival>& trace)
{
    frontend::CompileOptions options;
    options.device = spec;
    // Bounds match the trace envelope (batch cap 8, prompts <= 256,
    // contexts <= 256+32): static memory planning allocates worst-case
    // activations up front, so loose bounds waste real VRAM budget.
    options.bounds = {{"b", 8}, {"n", 256}, {"m", 320}};

    serve::EngineOptions engine_options;
    engine_options.scheduler.policy = policy;
    engine_options.scheduler.maxBatchSize = 8;
    engine_options.kvBlockTokens = 16;
    engine_options.decodeMode = mode;
    // graphBucketTokens stays 0 (auto): Engine::build aligns the
    // execution-graph capture bucket to the 16-token KV block.
    auto engine = serve::Engine::build(config, options,
                                       /*data_mode=*/false, engine_options);
    device::SimDevice& dev = engine->machine().dev();

    // Drive arrivals against the virtual clock: add what has arrived,
    // step while work exists, idle forward to the next arrival otherwise.
    // The replay hit-rate is measured after a warmup of one KV block of
    // steps, once every early-bucket graph has had a chance to capture.
    const int64_t warmup_steps = engine_options.kvBlockTokens;
    int64_t warm_begins = 0, warm_replays = 0;
    bool warm_snapshotted = false;
    size_t next = 0;
    while (next < trace.size() || engine->hasPendingWork()) {
        while (next < trace.size() && trace[next].timeUs <= dev.clockUs()) {
            // Backdate the arrival stamp to the trace time so TTFT
            // includes the wait behind the step that was in flight.
            engine->addRequest(trace[next].prompt, trace[next].maxNewTokens,
                               /*stop_token=*/-1, trace[next].timeUs);
            ++next;
        }
        if (engine->hasPendingWork()) {
            if (!engine->step()) {
                std::cerr << "FAIL: serving stalled against the KV budget\n";
                std::exit(1);
            }
        } else {
            dev.hostOverhead(trace[next].timeUs - dev.clockUs());
            continue;
        }
        if (!warm_snapshotted && engine->stats().steps >= warmup_steps) {
            warm_begins = engine->stats().decodeGraphBegins;
            warm_replays = engine->stats().decodeGraphReplays;
            warm_snapshotted = true;
        }
    }

    TraceResult result;
    result.stats = engine->stats();
    result.kvBudget = engine->kv().budgetBytes();
    result.makespanUs = dev.clockUs();
    int64_t begins = result.stats.decodeGraphBegins - warm_begins;
    int64_t replays = result.stats.decodeGraphReplays - warm_replays;
    result.warmHitRate =
        begins > 0 ? (double)replays / (double)begins : 0.0;
    std::vector<double> ttfts;
    for (const auto& done : engine->collect()) {
        ttfts.push_back(done.stats.ttftUs());
    }
    result.p50TtftUs = percentile(ttfts, 0.50);
    result.p99TtftUs = percentile(ttfts, 0.99);
    return result;
}

} // namespace

int
main()
{
    using namespace relax;
    frontend::LlamaConfig config = frontend::LlamaConfig::llama3_8b();
    device::DeviceSpec spec = device::rtx4090();
    const int num_requests = 24;
    const int64_t max_new_tokens = 32;
    const double requests_per_sec = 10.0;
    const unsigned trace_seed = 42;

    std::cout << "Serving throughput: " << config.name << " on "
              << spec.name << ", " << num_requests
              << " requests (prompts 32/96/256, " << max_new_tokens
              << " new tokens each), Poisson arrivals at "
              << requests_per_sec
              << " req/s (seed " << trace_seed
              << "), continuous batching\n\n";

    std::vector<Arrival> trace =
        makeTrace(num_requests, max_new_tokens, requests_per_sec,
                  trace_seed);

    TablePrinter table({"decode", "policy", "tok/s", "makespan s",
                        "TTFT p50 ms", "TTFT p99 ms", "mean TTFT ms",
                        "replay hit %", "steps", "decode calls",
                        "evictions", "peak KV MB"});
    double min_hit_rate = 1.0;
    double ragged_fcfs_toks = 0.0, grouped_fcfs_toks = 0.0;
    for (serve::DecodeMode mode :
         {serve::DecodeMode::kRagged, serve::DecodeMode::kGrouped}) {
        for (serve::SchedulePolicy policy :
             {serve::SchedulePolicy::kFCFS,
              serve::SchedulePolicy::kShortestPromptFirst}) {
            TraceResult result =
                runTrace(config, spec, policy, mode, trace);
            const serve::EngineStats& stats = result.stats;
            if (stats.peakKvBytes > result.kvBudget) {
                std::cerr << "FAIL: peak KV " << stats.peakKvBytes
                          << " exceeds budget " << result.kvBudget << "\n";
                return 1;
            }
            bool ragged = mode == serve::DecodeMode::kRagged;
            bool fcfs = policy == serve::SchedulePolicy::kFCFS;
            if (ragged && stats.decodeBatches > stats.steps) {
                // Every step must cover the whole running batch with one
                // ragged call (steps without running sequences issue none).
                std::cerr << "FAIL: ragged decode issued "
                          << stats.decodeBatches << " decode calls over "
                          << stats.steps << " steps\n";
                return 1;
            }
            if (ragged && fcfs) ragged_fcfs_toks = stats.tokensPerSec();
            if (!ragged && fcfs) grouped_fcfs_toks = stats.tokensPerSec();
            min_hit_rate = std::min(min_hit_rate, result.warmHitRate);
            table.addRow(
                {ragged ? "ragged" : "grouped",
                 fcfs ? "fcfs" : "shortest-prompt",
                 TablePrinter::fmt(stats.tokensPerSec(), 1),
                 TablePrinter::fmt(result.makespanUs / 1e6, 2),
                 TablePrinter::fmt(result.p50TtftUs / 1e3, 2),
                 TablePrinter::fmt(result.p99TtftUs / 1e3, 2),
                 TablePrinter::fmt(stats.meanTtftUs() / 1e3, 2),
                 TablePrinter::fmt(result.warmHitRate * 100.0, 1),
                 std::to_string(stats.steps),
                 std::to_string(stats.decodeBatches),
                 std::to_string(stats.evictions),
                 TablePrinter::fmt((double)stats.peakKvBytes / (1 << 20),
                                   1)});
        }
    }
    table.print();
    std::cout << "\npeak KV stayed within the device VRAM budget\n";
    double speedup = grouped_fcfs_toks > 0
                         ? ragged_fcfs_toks / grouped_fcfs_toks
                         : 0.0;
    std::cout << "ragged vs grouped decode (fcfs): "
              << TablePrinter::fmt(ragged_fcfs_toks, 1) << " vs "
              << TablePrinter::fmt(grouped_fcfs_toks, 1) << " tok/s ("
              << TablePrinter::fmt(speedup, 2) << "x)\n";
    if (speedup < 2.0) {
        std::cerr << "FAIL: ragged decode under 2x grouped throughput\n";
        return 1;
    }
    std::cout << "decode replay hit-rate after warmup: "
              << TablePrinter::fmt(min_hit_rate * 100.0, 1) << "%\n";
    return 0;
}
