/**
 * @file
 * Serving-engine throughput driver: runs a synthetic request trace
 * through the continuous-batching engine in timing mode (paper-scale
 * model, metadata-only tensors, simulated device clock) and reports
 * aggregate tokens/s, mean TTFT, and peak KV usage against the device's
 * VRAM budget — the first driver that measures the system beyond
 * single-figure reproduction. Both scheduler policies run over the same
 * trace for comparison.
 */
#include <iostream>

#include "common.h"
#include "serve/engine.h"

namespace {

using namespace relax;

struct TraceResult
{
    serve::EngineStats stats;
    int64_t kvBudget = 0;
};

/**
 * A mixed trace: `num_requests` requests with prompt lengths cycling
 * through short/medium/long and a fixed decode burst each — arrivals all
 * at t=0, so admission order is purely the scheduler's choice.
 */
TraceResult
runTrace(const frontend::LlamaConfig& config,
         const device::DeviceSpec& spec, serve::SchedulePolicy policy,
         int num_requests, int64_t max_new_tokens)
{
    frontend::CompileOptions options;
    options.device = spec;
    // Bounds match the trace envelope (batch cap 8, prompts <= 256,
    // contexts <= 256+32): static memory planning allocates worst-case
    // activations up front, so loose bounds waste real VRAM budget.
    options.bounds = {{"b", 8}, {"n", 256}, {"m", 320}};

    serve::EngineOptions engine_options;
    engine_options.scheduler.policy = policy;
    engine_options.scheduler.maxBatchSize = 8;
    engine_options.kvBlockTokens = 16;
    auto engine = serve::Engine::build(config, options,
                                       /*data_mode=*/false, engine_options);

    const int64_t prompt_lengths[] = {32, 96, 256};
    for (int i = 0; i < num_requests; ++i) {
        std::vector<int64_t> prompt(prompt_lengths[i % 3], 1);
        engine->addRequest(std::move(prompt), max_new_tokens);
    }
    TraceResult result;
    result.stats = engine->run();
    result.kvBudget = engine->kv().budgetBytes();
    return result;
}

} // namespace

int
main()
{
    using namespace relax;
    frontend::LlamaConfig config = frontend::LlamaConfig::llama3_8b();
    device::DeviceSpec spec = device::rtx4090();
    const int num_requests = 24;
    const int64_t max_new_tokens = 32;

    std::cout << "Serving throughput: " << config.name << " on "
              << spec.name << ", " << num_requests
              << " requests (prompts 32/96/256, " << max_new_tokens
              << " new tokens each), continuous batching\n\n";

    TablePrinter table({"policy", "tok/s", "mean TTFT ms", "steps",
                        "evictions", "peak KV MB", "KV budget MB"});
    for (serve::SchedulePolicy policy :
         {serve::SchedulePolicy::kFCFS,
          serve::SchedulePolicy::kShortestPromptFirst}) {
        TraceResult result = runTrace(config, spec, policy, num_requests,
                                      max_new_tokens);
        const serve::EngineStats& stats = result.stats;
        if (stats.peakKvBytes > result.kvBudget) {
            std::cerr << "FAIL: peak KV " << stats.peakKvBytes
                      << " exceeds budget " << result.kvBudget << "\n";
            return 1;
        }
        table.addRow(
            {policy == serve::SchedulePolicy::kFCFS ? "fcfs"
                                                    : "shortest-prompt",
             TablePrinter::fmt(stats.tokensPerSec(), 1),
             TablePrinter::fmt(stats.meanTtftUs() / 1e3, 2),
             std::to_string(stats.steps), std::to_string(stats.evictions),
             TablePrinter::fmt((double)stats.peakKvBytes / (1 << 20), 1),
             TablePrinter::fmt((double)result.kvBudget / (1 << 20), 1)});
    }
    table.print();
    std::cout << "\npeak KV stayed within the device VRAM budget\n";
    return 0;
}
