/**
 * @file
 * Serving-engine throughput driver: replays a seeded Poisson request
 * trace through the continuous-batching engine in timing mode
 * (paper-scale model, metadata-only tensors, simulated device clock) and
 * reports tokens/s, mean and tail TTFT (p50/p99), decode-step
 * execution-graph replay hit-rate, and peak KV page-pool usage against
 * the device's VRAM budget. Arrivals are spread over virtual time by a
 * seeded exponential inter-arrival process, so prefill chunks of fresh
 * admissions share steps with running decodes — and each such mixed
 * step must still issue exactly ONE packed-varlen pool-addressed call
 * (ids [1, total_fresh] + cu_fresh offsets; the per-fresh-length
 * grouping this replaced issued up to one call per distinct length,
 * and the pre-ragged baseline peaked at ~52 tok/s FCFS on this trace —
 * see docs/BENCHMARKS.md history).
 *
 * A second scenario measures automatic prefix caching: N requests
 * repeating one already-served 120-token system prompt must be
 * detected by the KV manager's block-hash index with no fork hint,
 * reusing the parent's pool pages for every full prompt block and
 * prefilling only their tails.
 *
 * Exit status is non-zero when the peak KV reservation exceeds the
 * budget, when the number of packed calls differs from the number of
 * engine steps (the one-call-per-step invariant, now an equality),
 * when any run reports nonzero host-side cache relayout bytes (the
 * zero-relayout invariant, DESIGN.md §5), when FCFS throughput
 * regresses below the ragged baseline (256 tok/s), or when automatic
 * detection misses the duplicated system prompt or fails to save pool
 * pages and prefill tokens. The final "decode replay hit-rate after
 * warmup" line is the bucketed-capture regression guard:
 * scripts/check.sh parses it and the relayout line and fails the
 * tier-1 run on violation.
 */
#include <algorithm>
#include <iostream>
#include <random>
#include <vector>

#include "common.h"
#include "serve/engine.h"

namespace {

using namespace relax;

struct Arrival
{
    double timeUs = 0.0;
    std::vector<int64_t> prompt;
    int64_t maxNewTokens = 0;
};

struct TraceResult
{
    serve::EngineStats stats;
    int64_t kvBudget = 0;
    double makespanUs = 0.0;
    double p50TtftUs = 0.0;
    double p99TtftUs = 0.0;
    /** Decode replay hit-rate measured after the warmup steps. */
    double warmHitRate = 0.0;
};

/**
 * A mixed trace: `num_requests` requests with prompt lengths cycling
 * through short/medium/long, arriving over virtual time as a seeded
 * Poisson process (exponential inter-arrival gaps, mean 1/rate).
 */
std::vector<Arrival>
makeTrace(int num_requests, int64_t max_new_tokens, double requests_per_sec,
          unsigned seed)
{
    std::mt19937 rng(seed);
    std::exponential_distribution<double> gap(requests_per_sec / 1e6);
    const int64_t prompt_lengths[] = {32, 96, 256};
    std::vector<Arrival> trace;
    trace.reserve(num_requests);
    double t = 0.0;
    for (int i = 0; i < num_requests; ++i) {
        t += gap(rng);
        Arrival arrival;
        arrival.timeUs = t;
        arrival.prompt.assign(prompt_lengths[i % 3], 1);
        arrival.maxNewTokens = max_new_tokens;
        trace.push_back(std::move(arrival));
    }
    return trace;
}

double
percentile(std::vector<double> values, double p)
{
    if (values.empty()) return 0.0;
    std::sort(values.begin(), values.end());
    size_t idx = (size_t)((double)(values.size() - 1) * p + 0.5);
    return values[idx];
}

frontend::CompileOptions
compileOptionsFor(const device::DeviceSpec& spec)
{
    frontend::CompileOptions options;
    options.device = spec;
    // Bounds match the trace envelope (batch cap 8, prompts <= 256):
    // static memory planning allocates worst-case activations up front,
    // so loose bounds waste real VRAM budget. The packed token count n
    // sums one step's fresh tokens: the 256-token per-step prefill cap
    // plus up to 7 decode rows in normal steps, and up to prompt (256)
    // + generated (32) when an over-cap re-prefill admits into an idle
    // system. The page pool itself needs no bound — it is a function
    // argument, not a planned allocation.
    options.bounds = {{"b", 8}, {"n", 288}};
    return options;
}

serve::EngineOptions
engineOptionsFor(serve::SchedulePolicy policy)
{
    serve::EngineOptions engine_options;
    engine_options.scheduler.policy = policy;
    engine_options.scheduler.maxBatchSize = 8;
    // Keep one step's packed fresh tokens inside the compiled n bound.
    engine_options.scheduler.maxPrefillTokensPerStep = 256;
    engine_options.kvBlockTokens = 16;
    // graphBucketTokens stays 0 (auto): Engine::build aligns the
    // execution-graph capture bucket to the 16-token KV page.
    return engine_options;
}

TraceResult
runTrace(const frontend::LlamaConfig& config,
         const device::DeviceSpec& spec, serve::SchedulePolicy policy,
         const std::vector<Arrival>& trace)
{
    serve::EngineOptions engine_options = engineOptionsFor(policy);
    auto engine = serve::Engine::build(config, compileOptionsFor(spec),
                                       /*data_mode=*/false,
                                       engine_options);
    device::SimDevice& dev = engine->machine().dev();

    // Drive arrivals against the virtual clock: add what has arrived,
    // step while work exists, idle forward to the next arrival otherwise.
    // The replay hit-rate is measured after a warmup of one KV page of
    // steps, once every early-bucket graph has had a chance to capture.
    const int64_t warmup_steps = engine_options.kvBlockTokens;
    int64_t warm_begins = 0, warm_replays = 0;
    bool warm_snapshotted = false;
    size_t next = 0;
    while (next < trace.size() || engine->hasPendingWork()) {
        while (next < trace.size() && trace[next].timeUs <= dev.clockUs()) {
            // Backdate the arrival stamp to the trace time so TTFT
            // includes the wait behind the step that was in flight.
            engine->addRequest(trace[next].prompt, trace[next].maxNewTokens,
                               /*stop_token=*/-1, trace[next].timeUs);
            ++next;
        }
        if (engine->hasPendingWork()) {
            if (!engine->step()) {
                std::cerr << "FAIL: serving stalled against the KV budget\n";
                std::exit(1);
            }
        } else {
            dev.hostOverhead(trace[next].timeUs - dev.clockUs());
            continue;
        }
        if (!warm_snapshotted && engine->stats().steps >= warmup_steps) {
            warm_begins = engine->stats().decodeGraphBegins;
            warm_replays = engine->stats().decodeGraphReplays;
            warm_snapshotted = true;
        }
    }

    TraceResult result;
    result.stats = engine->stats();
    result.kvBudget = engine->kv().budgetBytes();
    result.makespanUs = dev.clockUs();
    int64_t begins = result.stats.decodeGraphBegins - warm_begins;
    int64_t replays = result.stats.decodeGraphReplays - warm_replays;
    result.warmHitRate =
        begins > 0 ? (double)replays / (double)begins : 0.0;
    std::vector<double> ttfts;
    for (const auto& done : engine->collect()) {
        ttfts.push_back(done.stats.ttftUs());
    }
    result.p50TtftUs = percentile(ttfts, 0.50);
    result.p99TtftUs = percentile(ttfts, 0.99);
    return result;
}

struct SharingResult
{
    int64_t peakPages = 0;
    int64_t prefixHits = 0;
    int64_t prefixTokens = 0;
    int64_t relayoutBytes = 0;
    int64_t prefillTokens = 0;
};

/**
 * Shared-system-prompt scenario, automatic edition: one parent request
 * prefills a 120-token system prompt; N followers with distinct 8-token
 * tails then arrive WITHOUT any fork hint. In the shared variant their
 * prompts repeat the parent's prefix verbatim and the KV manager's
 * block-hash index must detect it at admission; the baseline gives each
 * follower a distinct prefix of the same length, so nothing can match
 * and every token prefills from scratch.
 */
SharingResult
runSharedPrefix(const frontend::LlamaConfig& config,
                const device::DeviceSpec& spec, bool duplicate_prefix)
{
    auto engine = serve::Engine::build(
        config, compileOptionsFor(spec), /*data_mode=*/false,
        engineOptionsFor(serve::SchedulePolicy::kFCFS));
    const int followers = 6;
    std::vector<int64_t> prefix(120, 1);
    engine->addRequest(prefix, 40);
    engine->step(); // parent prefills; its full prompt blocks get indexed
    for (int i = 0; i < followers; ++i) {
        // Baseline followers get a content-distinct prefix (token value
        // varies per follower) — same lengths, same schedule, no
        // duplication for the index to find.
        std::vector<int64_t> prompt(120, duplicate_prefix ? 1 : 100 + i);
        for (int t = 0; t < 8; ++t) prompt.push_back(2 + i);
        engine->addRequest(prompt, 24);
    }
    engine->run();
    SharingResult result;
    result.peakPages = engine->kv().peakPages();
    result.prefixHits = engine->kv().prefixHits();
    result.prefixTokens = engine->kv().prefixTokensMatched();
    result.relayoutBytes = engine->stats().relayoutBytes;
    result.prefillTokens = engine->stats().prefillTokens;
    return result;
}

} // namespace

int
main()
{
    using namespace relax;
    frontend::LlamaConfig config = frontend::LlamaConfig::llama3_8b();
    device::DeviceSpec spec = device::rtx4090();
    const int num_requests = 24;
    const int64_t max_new_tokens = 32;
    const double requests_per_sec = 10.0;
    const unsigned trace_seed = 42;
    // PR-4's ragged FCFS baseline on this exact trace; the page-pool
    // refactor must not regress it.
    const double min_fcfs_toks = 256.0;

    std::cout << "Serving throughput: " << config.name << " on "
              << spec.name << ", " << num_requests
              << " requests (prompts 32/96/256, " << max_new_tokens
              << " new tokens each), Poisson arrivals at "
              << requests_per_sec
              << " req/s (seed " << trace_seed
              << "), continuous batching, page-pool ragged decode\n\n";

    std::vector<Arrival> trace =
        makeTrace(num_requests, max_new_tokens, requests_per_sec,
                  trace_seed);

    TablePrinter table({"policy", "tok/s", "makespan s", "TTFT p50 ms",
                        "TTFT p99 ms", "mean TTFT ms", "replay hit %",
                        "steps", "decode calls", "evictions",
                        "peak KV MB"});
    double min_hit_rate = 1.0;
    double fcfs_toks = 0.0;
    int64_t total_relayout = 0;
    for (serve::SchedulePolicy policy :
         {serve::SchedulePolicy::kFCFS,
          serve::SchedulePolicy::kShortestPromptFirst}) {
        TraceResult result = runTrace(config, spec, policy, trace);
        const serve::EngineStats& stats = result.stats;
        if (stats.peakKvBytes > result.kvBudget) {
            std::cerr << "FAIL: peak KV " << stats.peakKvBytes
                      << " exceeds budget " << result.kvBudget << "\n";
            return 1;
        }
        if (stats.decodeBatches != stats.steps) {
            // The packed-varlen invariant, as an equality: every step
            // covers the whole running batch — prefill chunks and
            // decode rows together — with exactly one packed call.
            std::cerr << "FAIL: packed varlen issued "
                      << stats.decodeBatches << " calls over "
                      << stats.steps << " steps (must be equal)\n";
            return 1;
        }
        bool fcfs = policy == serve::SchedulePolicy::kFCFS;
        if (fcfs) fcfs_toks = stats.tokensPerSec();
        min_hit_rate = std::min(min_hit_rate, result.warmHitRate);
        total_relayout += stats.relayoutBytes;
        table.addRow(
            {fcfs ? "fcfs" : "shortest-prompt",
             TablePrinter::fmt(stats.tokensPerSec(), 1),
             TablePrinter::fmt(result.makespanUs / 1e6, 2),
             TablePrinter::fmt(result.p50TtftUs / 1e3, 2),
             TablePrinter::fmt(result.p99TtftUs / 1e3, 2),
             TablePrinter::fmt(stats.meanTtftUs() / 1e3, 2),
             TablePrinter::fmt(result.warmHitRate * 100.0, 1),
             std::to_string(stats.steps),
             std::to_string(stats.decodeBatches),
             std::to_string(stats.evictions),
             TablePrinter::fmt((double)stats.peakKvBytes / (1 << 20),
                               1)});
    }
    table.print();
    std::cout << "\npeak KV stayed within the device VRAM budget\n";

    // Automatic prefix caching scenario: followers repeating the
    // already-served system prompt must be detected with no hint, reuse
    // the parent's pages for every full prompt block, and prefill
    // measurably fewer tokens than the content-distinct baseline.
    SharingResult shared = runSharedPrefix(config, spec, true);
    SharingResult baseline = runSharedPrefix(config, spec, false);
    total_relayout += shared.relayoutBytes + baseline.relayoutBytes;
    // 120-token prefix + 8-token tail on 16-token pages: 7 full blocks
    // (112 tokens) are matchable per follower — the tail block is held
    // back so each follower prefills its own first-logits position.
    const int followers = 6;
    const int64_t matchable = 112;
    std::cout << "shared system prompt (" << followers
              << " repeats of a 120-token prefix, no fork hint): "
              << shared.peakPages << " vs " << baseline.peakPages
              << " peak pool pages (distinct prefixes), "
              << shared.prefixHits << " automatic prefix hits, "
              << shared.prefixTokens << " prompt tokens from shared "
              << "pages, " << shared.prefillTokens << " vs "
              << baseline.prefillTokens << " prefill tokens\n";
    if (shared.prefixHits != followers ||
        shared.prefixTokens != followers * matchable) {
        std::cerr << "FAIL: automatic detection missed the shared "
                     "120-token prefix\n";
        return 1;
    }
    if (baseline.prefixHits != 0) {
        std::cerr << "FAIL: baseline matched distinct prefixes "
                     "(false sharing)\n";
        return 1;
    }
    if (shared.peakPages >= baseline.peakPages ||
        baseline.prefillTokens - shared.prefillTokens !=
            followers * matchable) {
        std::cerr << "FAIL: prefix caching did not save pages and "
                     "prefill tokens\n";
        return 1;
    }

    std::cout << "host cache relayout bytes: " << total_relayout << "\n";
    if (total_relayout != 0) {
        std::cerr << "FAIL: page-pool serving copied cache bytes on the "
                     "host\n";
        return 1;
    }
    std::cout << "fcfs throughput: " << TablePrinter::fmt(fcfs_toks, 1)
              << " tok/s (floor " << TablePrinter::fmt(min_fcfs_toks, 1)
              << ")\n";
    if (fcfs_toks < min_fcfs_toks) {
        std::cerr << "FAIL: FCFS throughput below the ragged baseline\n";
        return 1;
    }
    std::cout << "decode replay hit-rate after warmup: "
              << TablePrinter::fmt(min_hit_rate * 100.0, 1) << "%\n";
    return 0;
}
