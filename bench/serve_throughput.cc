/**
 * @file
 * Serving-engine throughput driver: replays a seeded Poisson request
 * trace through the continuous-batching engine in timing mode
 * (paper-scale model, metadata-only tensors, simulated device clock) and
 * reports tokens/s, mean and tail TTFT (p50/p99), decode-step
 * execution-graph replay hit-rate, and peak KV page-pool usage against
 * the device's VRAM budget. Arrivals are spread over virtual time by a
 * seeded exponential inter-arrival process, so prefill chunks of fresh
 * admissions share steps with running decodes — and each such mixed
 * step must still issue exactly ONE packed-varlen pool-addressed call
 * (ids [1, total_fresh] + cu_fresh offsets; the per-fresh-length
 * grouping this replaced issued up to one call per distinct length,
 * and the pre-ragged baseline peaked at ~52 tok/s FCFS on this trace —
 * see docs/BENCHMARKS.md history).
 *
 * A second scenario measures automatic prefix caching: N requests
 * repeating one already-served 120-token system prompt must be
 * detected by the KV manager's block-hash index with no fork hint,
 * reusing the parent's pool pages for every full prompt block and
 * prefilling only their tails.
 *
 * Exit status is non-zero when the peak KV reservation exceeds the
 * budget, when the number of packed calls differs from the number of
 * engine steps (the one-call-per-step invariant, now an equality),
 * when any run reports nonzero host-side cache relayout bytes (the
 * zero-relayout invariant, DESIGN.md §5), when FCFS throughput
 * regresses below the ragged baseline (256 tok/s), or when automatic
 * detection misses the duplicated system prompt or fails to save pool
 * pages and prefill tokens. The final "decode replay hit-rate after
 * warmup" line is the bucketed-capture regression guard:
 * scripts/check.sh parses it and the relayout line and fails the
 * tier-1 run on violation.
 *
 * Observability (DESIGN.md §7): the driver always writes a machine-
 * readable result snapshot to BENCH_serve.json (override with
 * --bench-json=PATH) — tok/s, TTFT and inter-token-latency percentiles
 * from the engine's MetricsRegistry, replay hit-rate, peak pool pages.
 * With --trace-out=PATH and/or --metrics-out=PATH it repeats the FCFS
 * run with the TraceRecorder enabled and dumps the Chrome trace-event
 * timeline / metrics snapshot; that run must (a) reproduce the untraced
 * run's simulated outcome exactly (tracing observes the clock, never
 * advances it), (b) emit a well-nested trace whose pure-decode step
 * spans contain >= 95% replay-flagged graph regions. All JSON output is
 * byte-deterministic for a fixed trace seed — scripts/check.sh diffs
 * two runs to pin that.
 */
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "common.h"
#include "serve/engine.h"
#include "support/trace.h"

namespace {

using namespace relax;

struct Arrival
{
    double timeUs = 0.0;
    std::vector<int64_t> prompt;
    int64_t maxNewTokens = 0;
};

struct TraceResult
{
    serve::EngineStats stats;
    int64_t kvBudget = 0;
    double makespanUs = 0.0;
    double p50TtftUs = 0.0;
    double p99TtftUs = 0.0;
    /** Inter-token-latency percentiles from the engine's registry. */
    double p50ItlUs = 0.0;
    double p99ItlUs = 0.0;
    int64_t peakPages = 0;
    /** Decode replay hit-rate measured after the warmup steps. */
    double warmHitRate = 0.0;
    // Compiler memory-plan report (sampled once at engine build):
    int64_t planStorages = 0;
    int64_t planBytes = 0;      //!< Table 2 activation watermark
    int64_t planReuseHits = 0;
    int64_t inplaceRewrites = 0;
    // Tensor-parallel runs only (engine->deviceGroup() != null):
    int64_t collectiveCount = 0;
    double collectiveUs = 0.0;
    int64_t collectiveBytes = 0;
    // Instrumented runs only:
    bool traceWellNested = true;
    std::string nestError;
    /** Fraction of graph regions inside pure-decode step spans that are
     *  replay-flagged (-1 when not instrumented / no such region). */
    double replayFlaggedFraction = -1.0;
};

/** Integer arg lookup on a recorded trace event. */
int64_t
eventArg(const TraceRecorder::Event& event, const char* key, int64_t def)
{
    for (const TraceArg& arg : event.args) {
        if (arg.key == key) {
            return arg.kind == TraceArg::Kind::kDouble ? (int64_t)arg.d
                                                       : arg.i;
        }
    }
    return def;
}

/**
 * Joins VM graph-region spans against the engine's pure-decode step
 * spans: of the graph regions contained in a step span with mixed == 0,
 * what fraction executed as replay? Steady-state decode should be
 * nearly all replays (the bucketed-capture win, gated >= 95% below).
 */
double
replayFlaggedFraction(const TraceRecorder& trace)
{
    std::vector<std::pair<double, double>> decode_steps;
    for (const TraceRecorder::Event& e : trace.events()) {
        if (e.ph == 'X' && e.pid == trace_lanes::kEngine &&
            e.tid == trace_lanes::kSteps &&
            eventArg(e, "mixed", 1) == 0) {
            decode_steps.emplace_back(e.ts, e.ts + e.dur);
        }
    }
    int64_t regions = 0, flagged = 0;
    for (const TraceRecorder::Event& e : trace.events()) {
        if (e.ph != 'X' || e.pid != trace_lanes::kVm || e.cat != "graph")
            continue;
        bool inside = false;
        for (const auto& step : decode_steps) {
            if (e.ts >= step.first && e.ts + e.dur <= step.second) {
                inside = true;
                break;
            }
        }
        if (!inside) continue;
        ++regions;
        if (eventArg(e, "replay", 0) == 1) ++flagged;
    }
    return regions > 0 ? (double)flagged / (double)regions : -1.0;
}

/**
 * A mixed trace: `num_requests` requests with prompt lengths cycling
 * through short/medium/long, arriving over virtual time as a seeded
 * Poisson process (exponential inter-arrival gaps, mean 1/rate).
 */
std::vector<Arrival>
makeTrace(int num_requests, int64_t max_new_tokens, double requests_per_sec,
          unsigned seed)
{
    std::mt19937 rng(seed);
    std::exponential_distribution<double> gap(requests_per_sec / 1e6);
    const int64_t prompt_lengths[] = {32, 96, 256};
    std::vector<Arrival> trace;
    trace.reserve(num_requests);
    double t = 0.0;
    for (int i = 0; i < num_requests; ++i) {
        t += gap(rng);
        Arrival arrival;
        arrival.timeUs = t;
        arrival.prompt.assign(prompt_lengths[i % 3], 1);
        arrival.maxNewTokens = max_new_tokens;
        trace.push_back(std::move(arrival));
    }
    return trace;
}

double
percentile(std::vector<double> values, double p)
{
    if (values.empty()) return 0.0;
    std::sort(values.begin(), values.end());
    size_t idx = (size_t)((double)(values.size() - 1) * p + 0.5);
    return values[idx];
}

frontend::CompileOptions
compileOptionsFor(const device::DeviceSpec& spec, int64_t spec_k = 0)
{
    frontend::CompileOptions options;
    options.device = spec;
    // Bounds match the trace envelope (batch cap 8, prompts <= 256):
    // static memory planning allocates worst-case activations up front,
    // so loose bounds waste real VRAM budget. The packed token count n
    // sums one step's fresh tokens: the 256-token per-step prefill cap
    // plus up to 7 decode rows in normal steps, and up to prompt (256)
    // + generated (32) when an over-cap re-prefill admits into an idle
    // system. With speculation each decode row widens from 1 fresh token
    // to a 1 + k verify window. The page pool itself needs no bound — it
    // is a function argument, not a planned allocation.
    options.bounds = {{"b", 8}, {"n", 288 + 8 * spec_k}};
    return options;
}

/**
 * The draft model for --spec-k runs: same vocabulary and context window
 * as the target (token ids and positions cross between the two models),
 * roughly a tenth of the compute — the classic big-target/small-draft
 * pairing, so a verified-accepted token costs about one draft decode
 * plus its share of one (memory-bound, nearly n-independent) target
 * verify call.
 */
frontend::LlamaConfig
draftConfigFor(const frontend::LlamaConfig& target)
{
    frontend::LlamaConfig draft = target;
    draft.name = target.name + "-draft";
    draft.hiddenSize = 1024;
    draft.numLayers = 8;
    draft.numHeads = 8;
    draft.ffnSize = 3584;
    return draft;
}

serve::EngineOptions
engineOptionsFor(serve::SchedulePolicy policy)
{
    serve::EngineOptions engine_options;
    engine_options.scheduler.policy = policy;
    engine_options.scheduler.maxBatchSize = 8;
    // Keep one step's packed fresh tokens inside the compiled n bound.
    engine_options.scheduler.maxPrefillTokensPerStep = 256;
    engine_options.kvBlockTokens = 16;
    // graphBucketTokens stays 0 (auto): Engine::build aligns the
    // execution-graph capture bucket to the 16-token KV page.
    return engine_options;
}

TraceResult
runTrace(const frontend::LlamaConfig& config,
         const device::DeviceSpec& spec, serve::SchedulePolicy policy,
         const std::vector<Arrival>& trace, bool instrument = false,
         const std::string& trace_path = "",
         const std::string& metrics_path = "", int64_t spec_k = 0,
         double acceptance_rate = 0.0, int64_t tp = 1)
{
    serve::EngineOptions engine_options = engineOptionsFor(policy);
    engine_options.tensorParallel = tp;
    if (spec_k > 0) {
        engine_options.speculation.draftTokens = spec_k;
        engine_options.speculation.draftConfig = draftConfigFor(config);
        engine_options.speculation.syntheticAcceptanceRate =
            acceptance_rate;
    }
    auto engine = serve::Engine::build(config,
                                       compileOptionsFor(spec, spec_k),
                                       /*data_mode=*/false,
                                       engine_options);
    device::SimDevice& dev = engine->machine().dev();
    if (instrument) dev.trace().enable();

    // Drive arrivals against the virtual clock: add what has arrived,
    // step while work exists, idle forward to the next arrival otherwise.
    // The replay hit-rate is measured after a warmup of one KV page of
    // steps, once every early-bucket graph has had a chance to capture.
    const int64_t warmup_steps = engine_options.kvBlockTokens;
    int64_t warm_begins = 0, warm_replays = 0;
    bool warm_snapshotted = false;
    size_t next = 0;
    while (next < trace.size() || engine->hasPendingWork()) {
        while (next < trace.size() && trace[next].timeUs <= dev.clockUs()) {
            // Backdate the arrival stamp to the trace time so TTFT
            // includes the wait behind the step that was in flight.
            engine->addRequest(trace[next].prompt, trace[next].maxNewTokens,
                               /*stop_token=*/-1, trace[next].timeUs);
            ++next;
        }
        if (engine->hasPendingWork()) {
            if (!engine->step()) {
                std::cerr << "FAIL: serving stalled against the KV budget\n";
                std::exit(1);
            }
        } else {
            dev.hostOverhead(trace[next].timeUs - dev.clockUs());
            continue;
        }
        if (!warm_snapshotted && engine->stats().steps >= warmup_steps) {
            warm_begins = engine->stats().decodeGraphBegins;
            warm_replays = engine->stats().decodeGraphReplays;
            warm_snapshotted = true;
        }
    }

    TraceResult result;
    result.stats = engine->stats();
    result.kvBudget = engine->kv().budgetBytes();
    result.makespanUs = dev.clockUs();
    int64_t begins = result.stats.decodeGraphBegins - warm_begins;
    int64_t replays = result.stats.decodeGraphReplays - warm_replays;
    result.warmHitRate =
        begins > 0 ? (double)replays / (double)begins : 0.0;
    std::vector<double> ttfts;
    for (const auto& done : engine->collect()) {
        ttfts.push_back(done.stats.ttftUs());
    }
    result.p50TtftUs = percentile(ttfts, 0.50);
    result.p99TtftUs = percentile(ttfts, 0.99);
    // Inter-token latency comes from the always-on registry (same
    // nearest-rank convention as percentile() above).
    const Histogram& itl = engine->metrics().histogram("serve.itl_us");
    result.p50ItlUs = itl.count() > 0 ? itl.percentile(0.50) : 0.0;
    result.p99ItlUs = itl.count() > 0 ? itl.percentile(0.99) : 0.0;
    result.peakPages = engine->kv().peakPages();
    result.planStorages =
        (int64_t)engine->metrics().gauge("plan.storages").last();
    result.planBytes =
        (int64_t)engine->metrics().gauge("plan.total_bytes").last();
    result.planReuseHits =
        (int64_t)engine->metrics().gauge("plan.reuse_hits").last();
    result.inplaceRewrites =
        (int64_t)engine->metrics().gauge("plan.inplace_rewrites").last();
    if (engine->deviceGroup() != nullptr) {
        result.collectiveCount = engine->deviceGroup()->collectiveCount();
        result.collectiveUs = engine->deviceGroup()->collectiveUs();
        result.collectiveBytes = engine->deviceGroup()->collectiveBytes();
    }

    if (instrument) {
        result.traceWellNested =
            dev.trace().wellNested(&result.nestError);
        result.replayFlaggedFraction = replayFlaggedFraction(dev.trace());
        if (!trace_path.empty()) {
            std::ofstream os(trace_path);
            dev.trace().writeChromeTrace(os);
        }
        if (!metrics_path.empty()) {
            std::ofstream os(metrics_path);
            engine->metrics().snapshotJson(os);
        }
    }
    return result;
}

struct SharingResult
{
    int64_t peakPages = 0;
    int64_t prefixHits = 0;
    int64_t prefixTokens = 0;
    int64_t relayoutBytes = 0;
    int64_t prefillTokens = 0;
};

/**
 * Shared-system-prompt scenario, automatic edition: one parent request
 * prefills a 120-token system prompt; N followers with distinct 8-token
 * tails then arrive WITHOUT any fork hint. In the shared variant their
 * prompts repeat the parent's prefix verbatim and the KV manager's
 * block-hash index must detect it at admission; the baseline gives each
 * follower a distinct prefix of the same length, so nothing can match
 * and every token prefills from scratch.
 */
SharingResult
runSharedPrefix(const frontend::LlamaConfig& config,
                const device::DeviceSpec& spec, bool duplicate_prefix)
{
    auto engine = serve::Engine::build(
        config, compileOptionsFor(spec), /*data_mode=*/false,
        engineOptionsFor(serve::SchedulePolicy::kFCFS));
    const int followers = 6;
    std::vector<int64_t> prefix(120, 1);
    engine->addRequest(prefix, 40);
    engine->step(); // parent prefills; its full prompt blocks get indexed
    for (int i = 0; i < followers; ++i) {
        // Baseline followers get a content-distinct prefix (token value
        // varies per follower) — same lengths, same schedule, no
        // duplication for the index to find.
        std::vector<int64_t> prompt(120, duplicate_prefix ? 1 : 100 + i);
        for (int t = 0; t < 8; ++t) prompt.push_back(2 + i);
        engine->addRequest(prompt, 24);
    }
    engine->run();
    SharingResult result;
    result.peakPages = engine->kv().peakPages();
    result.prefixHits = engine->kv().prefixHits();
    result.prefixTokens = engine->kv().prefixTokensMatched();
    result.relayoutBytes = engine->stats().relayoutBytes;
    result.prefillTokens = engine->stats().prefillTokens;
    return result;
}

/** Fixed "%.3f" float formatting (deterministic, locale-free). */
std::string
fmt3(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", value);
    return buf;
}

/** One policy's block of the BENCH_serve.json snapshot. */
void
writePolicyJson(std::ostream& os, const char* name,
                const TraceResult& result)
{
    const serve::EngineStats& stats = result.stats;
    os << "    \"" << name << "\": {\n"
       << "      \"tokens_per_sec\": " << fmt3(stats.tokensPerSec())
       << ",\n"
       << "      \"ttft_p50_us\": " << fmt3(result.p50TtftUs) << ",\n"
       << "      \"ttft_p99_us\": " << fmt3(result.p99TtftUs) << ",\n"
       << "      \"itl_p50_us\": " << fmt3(result.p50ItlUs) << ",\n"
       << "      \"itl_p99_us\": " << fmt3(result.p99ItlUs) << ",\n"
       << "      \"replay_hit_rate\": " << fmt3(result.warmHitRate)
       << ",\n"
       << "      \"peak_pool_pages\": " << result.peakPages << ",\n"
       << "      \"steps\": " << stats.steps << ",\n"
       << "      \"evictions\": " << stats.evictions << "\n"
       << "    }";
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace relax;
    // --trace-out / --metrics-out trigger one extra instrumented FCFS
    // run; --bench-json overrides the always-written result snapshot;
    // --spec-k=K adds a speculative-decoding sweep over synthetic
    // acceptance rates with a K-token draft window.
    std::string trace_out, metrics_out, bench_json = "BENCH_serve.json";
    int64_t spec_k = 0;
    int64_t tp = 1;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char* flag) -> std::string {
            std::string prefix = std::string(flag) + "=";
            if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
            if (arg == flag && i + 1 < argc) return argv[++i];
            return "";
        };
        if (std::string v = value("--trace-out"); !v.empty()) {
            trace_out = v;
        } else if (std::string v = value("--metrics-out"); !v.empty()) {
            metrics_out = v;
        } else if (std::string v = value("--bench-json"); !v.empty()) {
            bench_json = v;
        } else if (std::string v = value("--spec-k"); !v.empty()) {
            spec_k = std::atoll(v.c_str());
            if (spec_k <= 0) {
                std::cerr << "--spec-k expects a positive draft window\n";
                return 2;
            }
        } else if (std::string v = value("--tp"); !v.empty()) {
            tp = std::atoll(v.c_str());
            if (tp <= 0) {
                std::cerr << "--tp expects a positive shard count\n";
                return 2;
            }
        } else {
            std::cerr << "unknown argument: " << arg
                      << " (expected --trace-out=PATH, --metrics-out=PATH,"
                         " --bench-json=PATH, --spec-k=K or --tp=N)\n";
            return 2;
        }
    }
    frontend::LlamaConfig config = frontend::LlamaConfig::llama3_8b();
    device::DeviceSpec spec = device::rtx4090();
    const int num_requests = 24;
    const int64_t max_new_tokens = 32;
    const double requests_per_sec = 10.0;
    const unsigned trace_seed = 42;
    // PR-4's ragged FCFS baseline on this exact trace; the page-pool
    // refactor must not regress it.
    const double min_fcfs_toks = 256.0;

    std::cout << "Serving throughput: " << config.name << " on "
              << spec.name << ", " << num_requests
              << " requests (prompts 32/96/256, " << max_new_tokens
              << " new tokens each), Poisson arrivals at "
              << requests_per_sec
              << " req/s (seed " << trace_seed
              << "), continuous batching, page-pool ragged decode\n\n";

    std::vector<Arrival> trace =
        makeTrace(num_requests, max_new_tokens, requests_per_sec,
                  trace_seed);

    TablePrinter table({"policy", "tok/s", "makespan s", "TTFT p50 ms",
                        "TTFT p99 ms", "ITL p50 ms", "ITL p99 ms",
                        "replay hit %", "steps", "decode calls",
                        "evictions", "peak KV MB"});
    double min_hit_rate = 1.0;
    double fcfs_toks = 0.0;
    int64_t total_relayout = 0;
    TraceResult fcfs_result, spf_result;
    for (serve::SchedulePolicy policy :
         {serve::SchedulePolicy::kFCFS,
          serve::SchedulePolicy::kShortestPromptFirst}) {
        TraceResult result = runTrace(config, spec, policy, trace);
        const serve::EngineStats& stats = result.stats;
        if (stats.peakKvBytes > result.kvBudget) {
            std::cerr << "FAIL: peak KV " << stats.peakKvBytes
                      << " exceeds budget " << result.kvBudget << "\n";
            return 1;
        }
        if (stats.decodeBatches != stats.steps) {
            // The packed-varlen invariant, as an equality: every step
            // covers the whole running batch — prefill chunks and
            // decode rows together — with exactly one packed call.
            std::cerr << "FAIL: packed varlen issued "
                      << stats.decodeBatches << " calls over "
                      << stats.steps << " steps (must be equal)\n";
            return 1;
        }
        bool fcfs = policy == serve::SchedulePolicy::kFCFS;
        if (fcfs) {
            fcfs_toks = stats.tokensPerSec();
            fcfs_result = result;
        } else {
            spf_result = result;
        }
        min_hit_rate = std::min(min_hit_rate, result.warmHitRate);
        total_relayout += stats.relayoutBytes;
        table.addRow(
            {fcfs ? "fcfs" : "shortest-prompt",
             TablePrinter::fmt(stats.tokensPerSec(), 1),
             TablePrinter::fmt(result.makespanUs / 1e6, 2),
             TablePrinter::fmt(result.p50TtftUs / 1e3, 2),
             TablePrinter::fmt(result.p99TtftUs / 1e3, 2),
             TablePrinter::fmt(result.p50ItlUs / 1e3, 2),
             TablePrinter::fmt(result.p99ItlUs / 1e3, 2),
             TablePrinter::fmt(result.warmHitRate * 100.0, 1),
             std::to_string(stats.steps),
             std::to_string(stats.decodeBatches),
             std::to_string(stats.evictions),
             TablePrinter::fmt((double)stats.peakKvBytes / (1 << 20),
                               1)});
    }
    table.print();
    std::cout << "\npeak KV stayed within the device VRAM budget\n";

    // Automatic prefix caching scenario: followers repeating the
    // already-served system prompt must be detected with no hint, reuse
    // the parent's pages for every full prompt block, and prefill
    // measurably fewer tokens than the content-distinct baseline.
    SharingResult shared = runSharedPrefix(config, spec, true);
    SharingResult baseline = runSharedPrefix(config, spec, false);
    total_relayout += shared.relayoutBytes + baseline.relayoutBytes;
    // 120-token prefix + 8-token tail on 16-token pages: 7 full blocks
    // (112 tokens) are matchable per follower — the tail block is held
    // back so each follower prefills its own first-logits position.
    const int followers = 6;
    const int64_t matchable = 112;
    std::cout << "shared system prompt (" << followers
              << " repeats of a 120-token prefix, no fork hint): "
              << shared.peakPages << " vs " << baseline.peakPages
              << " peak pool pages (distinct prefixes), "
              << shared.prefixHits << " automatic prefix hits, "
              << shared.prefixTokens << " prompt tokens from shared "
              << "pages, " << shared.prefillTokens << " vs "
              << baseline.prefillTokens << " prefill tokens\n";
    if (shared.prefixHits != followers ||
        shared.prefixTokens != followers * matchable) {
        std::cerr << "FAIL: automatic detection missed the shared "
                     "120-token prefix\n";
        return 1;
    }
    if (baseline.prefixHits != 0) {
        std::cerr << "FAIL: baseline matched distinct prefixes "
                     "(false sharing)\n";
        return 1;
    }
    if (shared.peakPages >= baseline.peakPages ||
        baseline.prefillTokens - shared.prefillTokens !=
            followers * matchable) {
        std::cerr << "FAIL: prefix caching did not save pages and "
                     "prefill tokens\n";
        return 1;
    }

    std::cout << "memory plan: " << fcfs_result.planStorages
              << " storages, " << fcfs_result.planBytes
              << " activation plan bytes, " << fcfs_result.planReuseHits
              << " reuse hits, " << fcfs_result.inplaceRewrites
              << " in-place rewrites\n";
    if (fcfs_result.inplaceRewrites < 3) {
        std::cerr << "FAIL: in-place planning rewrote fewer than 3 "
                     "sites across the serving functions\n";
        return 1;
    }
    std::cout << "host cache relayout bytes: " << total_relayout << "\n";
    if (total_relayout != 0) {
        std::cerr << "FAIL: page-pool serving copied cache bytes on the "
                     "host\n";
        return 1;
    }
    std::cout << "fcfs throughput: " << TablePrinter::fmt(fcfs_toks, 1)
              << " tok/s (floor " << TablePrinter::fmt(min_fcfs_toks, 1)
              << ")\n";
    if (fcfs_toks < min_fcfs_toks) {
        std::cerr << "FAIL: FCFS throughput below the ragged baseline\n";
        return 1;
    }
    std::cout << "decode replay hit-rate after warmup: "
              << TablePrinter::fmt(min_hit_rate * 100.0, 1) << "%\n";

    // Speculative decoding sweep: the same FCFS trace with a K-token
    // draft window, across synthetic acceptance rates. Timing mode has
    // no logits, so acceptance is a per-position Bernoulli(rate) chain —
    // exactly the knob the tokens/s-vs-acceptance tradeoff turns on.
    // The structural invariants (ONE target call per step, zero host
    // relayout, pool within budget) must hold at every rate, and high
    // acceptance must convert into real uplift over the k=0 baseline.
    std::vector<std::pair<double, TraceResult>> spec_results;
    if (spec_k > 0) {
        const double rates[] = {0.0, 0.5, 0.8, 0.95};
        std::cout << "\nspeculative decoding (draft "
                  << draftConfigFor(config).name << ", k = " << spec_k
                  << ", FCFS):\n";
        TablePrinter spec_table({"acceptance rate", "measured", "tok/s",
                                 "uplift", "steps", "draft calls",
                                 "tokens/step"});
        for (double rate : rates) {
            TraceResult result =
                runTrace(config, spec, serve::SchedulePolicy::kFCFS,
                         trace, /*instrument=*/false, "", "", spec_k,
                         rate);
            const serve::EngineStats& stats = result.stats;
            if (stats.decodeBatches != stats.steps) {
                std::cerr << "FAIL: speculation broke the one-call-per-"
                             "step invariant at rate "
                          << fmt3(rate) << "\n";
                return 1;
            }
            if (stats.relayoutBytes != 0) {
                std::cerr << "FAIL: speculation copied cache bytes on "
                             "the host at rate "
                          << fmt3(rate) << "\n";
                return 1;
            }
            if (stats.peakKvBytes > result.kvBudget) {
                std::cerr << "FAIL: speculation peak KV exceeds budget "
                             "at rate "
                          << fmt3(rate) << "\n";
                return 1;
            }
            if (stats.tokensGenerated !=
                fcfs_result.stats.tokensGenerated) {
                std::cerr << "FAIL: speculation changed the number of "
                             "generated tokens at rate "
                          << fmt3(rate) << "\n";
                return 1;
            }
            // The acceptance chain stops at the first rejection, but all
            // k positions count as proposed, so the expected measured
            // rate over full windows is (sum_{i=1..k} rate^i) / k — not
            // rate itself (0.5 with k=4 measures ~0.23).
            double expect = 0.0;
            for (int64_t i = 1; i <= spec_k; ++i) {
                expect += std::pow(rate, (double)i);
            }
            expect /= (double)spec_k;
            double measured = stats.specAcceptanceRate();
            if (rate == 0.0 ? stats.specAccepted != 0
                            : std::abs(measured - expect) > 0.1) {
                std::cerr << "FAIL: measured acceptance "
                          << fmt3(measured) << " drifted from the "
                          << fmt3(expect)
                          << " the Bernoulli chain at rate " << fmt3(rate)
                          << " predicts\n";
                return 1;
            }
            double uplift = stats.tokensPerSec() / fcfs_toks;
            spec_table.addRow(
                {fmt3(rate), fmt3(measured),
                 TablePrinter::fmt(stats.tokensPerSec(), 1), fmt3(uplift),
                 std::to_string(stats.steps),
                 std::to_string(stats.draftCalls),
                 fmt3((double)stats.tokensGenerated
                      / (double)stats.steps)});
            spec_results.emplace_back(rate, result);
        }
        spec_table.print();
        double best_uplift =
            spec_results.back().second.stats.tokensPerSec() / fcfs_toks;
        std::cout << "speculation uplift at 0.95 acceptance: "
                  << fmt3(best_uplift) << "x\n";
        if (best_uplift <= 1.0) {
            std::cerr << "FAIL: speculative decoding shows no uplift at "
                         "0.95 acceptance\n";
            return 1;
        }
    }

    // Tensor-parallel sweep: the same FCFS trace sharded across --tp
    // simulated devices joined by NVLink-class ring collectives (two
    // all_reduces per layer plus the logits all_gather, priced on the
    // group clock — DESIGN.md §10). The packed-varlen invariant must
    // survive sharding, the collectives must be genuinely priced
    // (nonzero count AND nonzero microseconds), and at tp=4 the
    // Llama3-8B-class run must beat the single-device baseline by >= 2x
    // end to end despite paying for every collective.
    TraceResult tp_result;
    double tp_base_toks = 0.0;
    if (tp > 1) {
        // Scaling is measured at saturation: the same requests all
        // arrive at t=0, so both arms decode at the full batch cap. An
        // open-loop comparison at the tp=1-calibrated arrival rate
        // would undersell sharding — the faster system drains its queue
        // and decodes half-empty batches while waiting for arrivals (a
        // queueing effect, not a sharding cost).
        std::vector<Arrival> saturated = trace;
        for (Arrival& arrival : saturated) arrival.timeUs = 0.0;
        TraceResult base =
            runTrace(config, spec, serve::SchedulePolicy::kFCFS,
                     saturated);
        tp_base_toks = base.stats.tokensPerSec();
        tp_result = runTrace(config, spec, serve::SchedulePolicy::kFCFS,
                             saturated, /*instrument=*/false, "", "",
                             /*spec_k=*/0, /*acceptance_rate=*/0.0, tp);
        const serve::EngineStats& stats = tp_result.stats;
        double speedup = stats.tokensPerSec() / tp_base_toks;
        std::cout << "\ntensor parallel (tp = " << tp << ", nvlink): "
                  << TablePrinter::fmt(stats.tokensPerSec(), 1)
                  << " tok/s, " << fmt3(speedup) << "x over tp=1, "
                  << tp_result.collectiveCount << " collectives, "
                  << TablePrinter::fmt(tp_result.collectiveUs / 1e3, 2)
                  << " ms on the interconnect, "
                  << TablePrinter::fmt(
                         (double)tp_result.collectiveBytes / (1 << 30), 2)
                  << " GB moved\n";
        if (stats.decodeBatches != stats.steps) {
            std::cerr << "FAIL: sharding broke the one-call-per-step "
                         "invariant ("
                      << stats.decodeBatches << " calls over "
                      << stats.steps << " steps)\n";
            return 1;
        }
        if (tp_result.collectiveCount <= 0 ||
            tp_result.collectiveUs <= 0.0) {
            std::cerr << "FAIL: tensor-parallel run priced no collective "
                         "time (count "
                      << tp_result.collectiveCount << ", "
                      << fmt3(tp_result.collectiveUs) << " us) — the "
                         "interconnect model is not being exercised\n";
            return 1;
        }
        if (tp == 4 && speedup < 2.0) {
            std::cerr << "FAIL: tp=4 speedup " << fmt3(speedup)
                      << "x below the 2x floor\n";
            return 1;
        }
    }

    if (!trace_out.empty() || !metrics_out.empty()) {
        // Instrumented repeat of the FCFS run: same trace, recorder on.
        TraceResult traced =
            runTrace(config, spec, serve::SchedulePolicy::kFCFS, trace,
                     /*instrument=*/true, trace_out, metrics_out);
        // Zero-cost-when-disabled has a stronger sibling: enabling the
        // recorder may not change the simulated outcome at all.
        if (traced.stats.steps != fcfs_result.stats.steps ||
            traced.stats.tokensGenerated !=
                fcfs_result.stats.tokensGenerated ||
            traced.stats.evictions != fcfs_result.stats.evictions ||
            traced.stats.busyUs != fcfs_result.stats.busyUs) {
            std::cerr << "FAIL: enabling tracing changed the simulated "
                         "run (steps/tokens/evictions/busyUs differ)\n";
            return 1;
        }
        if (!traced.traceWellNested) {
            std::cerr << "FAIL: trace spans are not well nested: "
                      << traced.nestError << "\n";
            return 1;
        }
        std::cout << "traced decode-step graph regions replay-flagged: "
                  << TablePrinter::fmt(
                         traced.replayFlaggedFraction * 100.0, 1)
                  << "%\n";
        if (traced.replayFlaggedFraction < 0.95) {
            std::cerr << "FAIL: < 95% of graph regions inside pure-decode "
                         "step spans are replay-flagged\n";
            return 1;
        }
        if (!trace_out.empty()) {
            std::cout << "chrome trace written to " << trace_out << "\n";
        }
        if (!metrics_out.empty()) {
            std::cout << "metrics snapshot written to " << metrics_out
                      << "\n";
        }
    }

    std::ofstream json(bench_json);
    json << "{\n"
         << "  \"bench\": \"serve_throughput\",\n"
         << "  \"model\": \"" << config.name << "\",\n"
         << "  \"device\": \"" << spec.name << "\",\n"
         << "  \"requests\": " << num_requests << ",\n"
         << "  \"trace_seed\": " << trace_seed << ",\n"
         << "  \"policies\": {\n";
    writePolicyJson(json, "fcfs", fcfs_result);
    json << ",\n";
    writePolicyJson(json, "shortest_prompt", spf_result);
    json << "\n  }";
    if (!spec_results.empty()) {
        // Tokens/s uplift against the k=0 FCFS run, per acceptance rate.
        json << ",\n  \"speculation\": {\n"
             << "    \"draft_tokens\": " << spec_k << ",\n"
             << "    \"rates\": [\n";
        for (size_t i = 0; i < spec_results.size(); ++i) {
            const auto& [rate, result] = spec_results[i];
            const serve::EngineStats& stats = result.stats;
            json << "      {\n"
                 << "        \"acceptance_rate\": " << fmt3(rate) << ",\n"
                 << "        \"measured_acceptance\": "
                 << fmt3(stats.specAcceptanceRate()) << ",\n"
                 << "        \"tokens_per_sec\": "
                 << fmt3(stats.tokensPerSec()) << ",\n"
                 << "        \"uplift\": "
                 << fmt3(stats.tokensPerSec() / fcfs_toks) << ",\n"
                 << "        \"steps\": " << stats.steps << ",\n"
                 << "        \"draft_calls\": " << stats.draftCalls
                 << ",\n"
                 << "        \"spec_proposed\": " << stats.specProposed
                 << ",\n"
                 << "        \"spec_accepted\": " << stats.specAccepted
                 << "\n      }" << (i + 1 < spec_results.size() ? "," : "")
                 << "\n";
        }
        json << "    ]\n  }";
    }
    if (tp > 1) {
        // Emitted only for tp > 1 runs: the default invocation's JSON
        // stays byte-identical to the single-device baseline
        // (scripts/check.sh diffs them).
        const serve::EngineStats& stats = tp_result.stats;
        json << ",\n  \"tensor_parallel\": {\n"
             << "    \"tp\": " << tp << ",\n"
             << "    \"interconnect\": \"nvlink\",\n"
             << "    \"tokens_per_sec\": " << fmt3(stats.tokensPerSec())
             << ",\n"
             << "    \"baseline_tokens_per_sec\": " << fmt3(tp_base_toks)
             << ",\n"
             << "    \"speedup\": "
             << fmt3(stats.tokensPerSec() / tp_base_toks) << ",\n"
             << "    \"ttft_p99_us\": " << fmt3(tp_result.p99TtftUs)
             << ",\n"
             << "    \"collectives\": " << tp_result.collectiveCount
             << ",\n"
             << "    \"collective_us\": " << fmt3(tp_result.collectiveUs)
             << ",\n"
             << "    \"collective_bytes\": " << tp_result.collectiveBytes
             << "\n  }";
    }
    json << "\n}\n";
    std::cout << "bench snapshot written to " << bench_json << "\n";
    return 0;
}
