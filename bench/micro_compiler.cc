/**
 * @file
 * google-benchmark micro measurements of compiler infrastructure: forward
 * shape deduction, canonical simplification / equality proof, and the
 * full pipeline on a transformer module — the "deduction runs for every
 * pass" efficiency concern of §4.1.
 */
#include <benchmark/benchmark.h>

#include "arith/analyzer.h"
#include "frontend/compile.h"
#include "frontend/llama.h"
#include "op/ops.h"
#include "shape/block_builder.h"

namespace {

using namespace relax;

void
BM_SimplifyPolynomial(benchmark::State& state)
{
    Var n = var("n");
    Var m = var("m");
    PrimExpr e = mul(add(mul(n, intImm(4)), m), sub(mul(m, intImm(2)), n));
    Analyzer analyzer;
    for (auto _ : state) {
        benchmark::DoNotOptimize(analyzer.simplify(e));
    }
}
BENCHMARK(BM_SimplifyPolynomial);

void
BM_ProveEqual(benchmark::State& state)
{
    Var n = var("n");
    PrimExpr a = mul(mul(n, intImm(2)), intImm(2));
    PrimExpr b = mul(intImm(4), n);
    Analyzer analyzer;
    for (auto _ : state) {
        benchmark::DoNotOptimize(analyzer.proveEqual(a, b));
    }
}
BENCHMARK(BM_ProveEqual);

void
BM_ForwardDeduction(benchmark::State& state)
{
    auto module = ir::IRModule::create();
    Var n = var("n");
    ir::Var x = ir::makeVar(
        "x", ir::tensorSInfo({PrimExpr(n), intImm(128)}, DataType::f32()));
    ir::Var w = ir::makeVar(
        "w", ir::tensorSInfo({intImm(128), intImm(256)}, DataType::f32()));
    ir::Call call = op::matmul(x, w);
    for (auto _ : state) {
        benchmark::DoNotOptimize(shape::deduceStructInfo(call, module));
    }
}
BENCHMARK(BM_ForwardDeduction);

void
BM_CompileTinyLlama(benchmark::State& state)
{
    frontend::LlamaConfig config = frontend::LlamaConfig::tiny();
    frontend::CompileOptions options;
    options.device = device::rtx4090();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            frontend::compile(frontend::buildLlama(config), options));
    }
}
BENCHMARK(BM_CompileTinyLlama)->Unit(benchmark::kMillisecond);

void
BM_CompileLlama8BModule(benchmark::State& state)
{
    // Full 32-layer module: the AOT compilation cost a deployment pays.
    frontend::LlamaConfig config = frontend::LlamaConfig::llama3_8b();
    config.fixedBatch = 1;
    frontend::CompileOptions options;
    options.device = device::rtx4090();
    options.bounds = {{"b", 64}, {"n", 1024}, {"m", 192}};
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            frontend::compile(frontend::buildLlama(config), options));
    }
}
BENCHMARK(BM_CompileLlama8BModule)->Unit(benchmark::kMillisecond)
    ->Iterations(3);

} // namespace

BENCHMARK_MAIN();
