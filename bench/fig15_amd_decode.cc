/**
 * @file
 * Figure 15: decode latency on AMD Radeon 7900 XTX. The paper highlights
 * up to 1.50x at batch size 1, where rocBLAS-based baselines cannot match
 * the compiler-generated matrix-vector kernels.
 */
#include "decode_figure.h"

int
main()
{
    using namespace relax;
    using namespace relax::bench;
    runDecodeFigure(
        "Figure 15: AMD Radeon 7900 XTX decode latency",
        device::radeon7900xtx(),
        {frontend::LlamaConfig::llama3_8b(),
         frontend::LlamaConfig::gemma1_1_7b(),
         frontend::LlamaConfig::qwen2_7b()},
        {baselines::hfTransformers(), baselines::hfTorchCompile(),
         baselines::vllm(), baselines::llamaCpp()});
    return 0;
}
