/**
 * @file
 * Figure 19: Whisper-large-v3 time to transcribe a 30-second clip on
 * RTX 4090 and M2 Ultra vs HF Transformers, WhisperX, Faster-Whisper and
 * whisper.cpp.
 *
 * Substitution (docs/DESIGN.md §1): the conv frontend is folded into the
 * embedding; the encoder is a 32-layer bidirectional transformer prefill
 * over 1500 frames, and the decoder runs 32 autoregressive steps whose
 * attention context includes the 1500 encoder states (cross-attention
 * modeled as cache length 1500+step) — the same operator structure and
 * traffic as the real model.
 */
#include "common.h"

int
main()
{
    using namespace relax;
    using namespace relax::bench;
    using frontend::LlamaConfig;

    LlamaConfig whisper;
    whisper.name = "Whisper-large-v3";
    whisper.hiddenSize = 1280;
    whisper.numLayers = 32;
    whisper.numHeads = 20;
    whisper.headDim = 64;
    whisper.ffnSize = 5120;
    whisper.vocabSize = 51866;
    whisper.maxContext = 1600;
    whisper.fixedBatch = 1;

    auto relaxTranscribeMs = [&](const device::DeviceSpec& spec) {
        frontend::CompileOptions options;
        options.bounds = {{"b", 1}, {"n", 1500}, {"m", 1600}};
        CompiledModel model = compileModel(whisper, spec, options);
        // Encoder: one prefill over the 1500 audio frames.
        double total = relaxPrefillMs(model, 1, 1500);
        // Decoder: 32 text tokens attending to the encoder states.
        total += 32.0 * relaxDecodeMsPerToken(model, 1, /*start_ctx=*/1500,
                                              /*num_tokens=*/8);
        return total;
    };
    auto baselineTranscribeMs = [&](const device::DeviceSpec& spec,
                                    const baselines::FrameworkTraits& t,
                                    double speed_factor) {
        double total =
            baselines::prefillUs(whisper, 1, 1500, spec, t) / 1e3;
        baselines::DecodeWorkload workload{whisper, 1, 1500};
        total += 32.0 * baselines::decodeStepUs(workload, spec, t) / 1e3;
        return total / speed_factor;
    };

    auto whisperx = baselines::vllm();
    whisperx.name = "WhisperX";
    auto faster = baselines::vllm();
    faster.name = "Faster Whisper";
    auto wcpp = baselines::llamaCpp();
    wcpp.name = "whisper.cpp";

    std::cout << "=== Figure 19: Whisper-large-v3 30 s transcription time "
              << "(ms) ===\n\n";
    for (const auto& spec :
         {device::rtx4090(), device::appleM2Ultra()}) {
        TablePrinter table({spec.name, "time (ms)"});
        table.addRow({"HF Transformers",
                      TablePrinter::fmt(baselineTranscribeMs(
                          spec, baselines::hfTransformers(), 1.0))});
        if (spec.backend == "cuda") {
            // Batched / int8-optimized pipelines (no Apple support).
            table.addRow({"WhisperX",
                          TablePrinter::fmt(baselineTranscribeMs(
                              spec, whisperx, 1.25))});
            table.addRow({"Faster Whisper",
                          TablePrinter::fmt(baselineTranscribeMs(
                              spec, faster, 1.15))});
        }
        table.addRow({"whisper.cpp",
                      TablePrinter::fmt(baselineTranscribeMs(
                          spec, wcpp, spec.backend == "metal" ? 1.1 : 0.9))});
        table.addRow({"Relax (Ours)",
                      TablePrinter::fmt(relaxTranscribeMs(spec))});
        table.print();
        std::cout << "\n";
    }
    return 0;
}
