/**
 * @file
 * Figure 18: single-sequence generation throughput on Samsung S24,
 * llama.cpp vs Relax on 4-bit models. llama.cpp lacks Adreno GPU kernels
 * and falls back to CPU, while Relax generates OpenCL kernels through
 * compilation (§5.3) — the source of the up-to-55% gap.
 */
#include "common.h"

int
main()
{
    using namespace relax;
    using namespace relax::bench;
    using frontend::LlamaConfig;
    using frontend::Quant;
    auto spec = device::samsungS24();

    auto llamacpp = baselines::llamaCpp();
    llamacpp.cpuFallback = true; // no Adreno kernels in llama.cpp

    std::cout << "=== Figure 18: Samsung S24 single-sequence throughput "
              << "(tok/s), 4-bit models ===\n\n";
    TablePrinter table({"Model", "llama.cpp", "Relax (Ours)"});
    for (LlamaConfig config :
         {LlamaConfig::llama2_7b().withQuant(Quant::kQ4),
          LlamaConfig::phi3_mini().withQuant(Quant::kQ4),
          LlamaConfig::redpajama_3b().withQuant(Quant::kQ4)}) {
        baselines::DecodeWorkload workload{config, 1, 128};
        double base_us = baselines::decodeStepUs(workload, spec, llamacpp);
        config.fixedBatch = 1;
        CompiledModel model = compileModel(config, spec);
        table.addRow({config.name, TablePrinter::fmt(1e6 / base_us, 1),
                      TablePrinter::fmt(relaxDecodeTokensPerSec(model), 1)});
    }
    table.print();
    return 0;
}
