/**
 * @file
 * Table 3: single-sequence throughput (tokens/s) of 4-bit quantized
 * models on the emerging platforms of §5.3. Following the paper's
 * footnote, phones run Llama2-7B (3-bit on iPhone, 4-bit on S23) so the
 * weights fit the VRAM budget; other devices run 4-bit Llama3-8B.
 */
#include "common.h"

int
main()
{
    using namespace relax;
    using namespace relax::bench;
    using frontend::LlamaConfig;
    using frontend::Quant;

    struct Platform
    {
        device::DeviceSpec spec;
        LlamaConfig llama;
        const char* note;
    };
    std::vector<Platform> platforms = {
        {device::iphone14Pro(),
         LlamaConfig::llama2_7b().withQuant(Quant::kQ3), "3-bit Llama2-7B"},
        {device::samsungS23(),
         LlamaConfig::llama2_7b().withQuant(Quant::kQ4), "4-bit Llama2-7B"},
        {device::orangePi5(),
         LlamaConfig::llama3_8b().withQuant(Quant::kQ4), ""},
        {device::steamDeck(),
         LlamaConfig::llama3_8b().withQuant(Quant::kQ4), ""},
        {device::jetsonOrin(),
         LlamaConfig::llama3_8b().withQuant(Quant::kQ4), ""},
        {device::webgpuM3Max(),
         LlamaConfig::llama3_8b().withQuant(Quant::kQ4), ""},
    };

    std::cout << "=== Table 3: throughput (tok/s) of 4-bit quantized models "
              << "on emerging platforms ===\n\n";
    TablePrinter table({"Device", "Backend", "Llama", "Phi3", "RedPajama",
                        "note"});
    for (auto& platform : platforms) {
        // Feasibility check first: the paper substitutes smaller models
        // when weights exceed the memory budget.
        RELAX_ICHECK(platform.llama.weightBytes() <
                     platform.spec.vramBytes)
            << platform.spec.name << " cannot hold "
            << platform.llama.name;
        std::vector<std::string> row{platform.spec.name,
                                     platform.spec.backend};
        for (LlamaConfig config :
             {platform.llama,
              LlamaConfig::phi3_mini().withQuant(Quant::kQ4),
              LlamaConfig::redpajama_3b().withQuant(Quant::kQ4)}) {
            config.fixedBatch = 1;
            CompiledModel model = compileModel(config, platform.spec);
            row.push_back(
                TablePrinter::fmt(relaxDecodeTokensPerSec(model), 1));
        }
        row.push_back(platform.note);
        table.addRow(std::move(row));
    }
    table.print();
    return 0;
}
