/**
 * @file
 * Figure 17: ablation of the composable optimizations on Llama3-8B /
 * RTX 4090 — starting from no fusion / no library lowering / no graph
 * offloading and adding one optimization at a time (§5.2).
 */
#include "common.h"

int
main()
{
    using namespace relax;
    using namespace relax::bench;
    auto spec = device::rtx4090();
    std::vector<int64_t> batches{1, 16, 32, 64};
    std::cout << "=== Figure 17: optimization ablation, Llama3-8B on RTX 4090"
              << " ===\nDecode token latency (ms/tok)\n\n";
    TablePrinter table({"configuration", "1", "16", "32", "64"});

    struct Setting
    {
        const char* label;
        bool fusion, lib, graph;
    };
    std::vector<Setting> settings = {
        {"Relax w/o fusion, lib lowering, CUDA graph", false, false, false},
        {"+ operator fusion", true, false, false},
        {"+ partial library lowering", true, true, false},
        {"+ CUDA graph offloading", true, true, true},
    };
    for (const auto& setting : settings) {
        std::vector<std::string> row{setting.label};
        for (int64_t batch : batches) {
            frontend::LlamaConfig config =
                frontend::LlamaConfig::llama3_8b();
            config.fixedBatch = batch;
            frontend::CompileOptions options;
            options.enableFusion = setting.fusion;
            options.enableLibraryLowering = setting.lib;
            options.enableGraphOffload = setting.graph;
            CompiledModel model = compileModel(config, spec, options);
            row.push_back(
                TablePrinter::fmt(relaxDecodeMsPerToken(model, batch)));
        }
        table.addRow(std::move(row));
    }
    table.print();
    return 0;
}
