/**
 * @file
 * Shared benchmark harness: compiles LLM configurations through the full
 * Relax pipeline and measures decode/prefill latency on the simulated
 * device clock (timing mode: metadata-only tensors, paper-scale dims).
 */
#ifndef RELAX_BENCH_COMMON_H_
#define RELAX_BENCH_COMMON_H_

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "baselines/baselines.h"
#include "frontend/compile.h"
#include "frontend/llama.h"
#include "support/table_printer.h"
#include "vm/vm.h"

namespace relax {
namespace bench {

/** A compiled model bound to a simulated device. */
struct CompiledModel
{
    vm::ExecutablePtr exec;
    std::shared_ptr<device::SimDevice> dev;
    std::unique_ptr<vm::VirtualMachine> machine;
    frontend::LlamaConfig config;
};

/** Compiles `config` for `spec` in timing mode. */
inline CompiledModel
compileModel(frontend::LlamaConfig config, const device::DeviceSpec& spec,
             frontend::CompileOptions options = {})
{
    CompiledModel compiled;
    compiled.config = config;
    options.device = spec;
    if (options.bounds.empty()) {
        // Workload upper bounds, as the user annotates them (§4.3): the
        // benchmarks prefill up to 1024 tokens and decode 32 tokens from a
        // KV length of 128, with batch up to 64.
        options.bounds = {{"b", 64}, {"n", 1024}, {"m", 192}};
    }
    compiled.exec =
        frontend::compile(frontend::buildLlama(config), options);
    compiled.dev = std::make_shared<device::SimDevice>(spec);
    compiled.machine = std::make_unique<vm::VirtualMachine>(
        compiled.exec, compiled.dev, /*data_mode=*/false);
    return compiled;
}

/** Argument list for one decode step (metadata-only tensors). */
inline std::vector<vm::Value>
decodeArgs(const frontend::LlamaConfig& config, int64_t batch, int64_t ctx)
{
    std::vector<vm::Value> args;
    args.emplace_back(NDArray::metaOnly({batch, 1}, DataType::i64()));
    for (int64_t layer = 0; layer < config.numLayers; ++layer) {
        args.emplace_back(NDArray::metaOnly(
            {batch, config.numHeads, ctx, config.headDim},
            DataType::f16()));
        args.emplace_back(NDArray::metaOnly(
            {batch, config.numHeads, ctx, config.headDim},
            DataType::f16()));
    }
    for (auto& w :
         frontend::makeLlamaWeights(config, /*with_data=*/false)) {
        args.emplace_back(std::move(w));
    }
    return args;
}

inline std::vector<vm::Value>
prefillArgs(const frontend::LlamaConfig& config, int64_t batch,
            int64_t tokens)
{
    std::vector<vm::Value> args;
    args.emplace_back(NDArray::metaOnly({batch, tokens}, DataType::i64()));
    for (auto& w :
         frontend::makeLlamaWeights(config, /*with_data=*/false)) {
        args.emplace_back(std::move(w));
    }
    return args;
}

/**
 * Measures the per-token decode latency (ms/token) as the paper does
 * (§5.1): decode 32 tokens with growing context, report mean per-token
 * latency. The first step warms graph capture.
 */
inline double
relaxDecodeMsPerToken(CompiledModel& model, int64_t batch,
                      int64_t start_ctx = 128, int num_tokens = 32)
{
    // Warm-up: triggers graph capture and static storage allocation.
    // Steps are measured at a fixed KV length (the production paged cache
    // keeps kernel shapes constant during a generation burst, which is
    // what lets execution-graph replay apply).
    model.machine->invoke("decode",
                          decodeArgs(model.config, batch, start_ctx));
    double total_us = 0.0;
    for (int step = 0; step < num_tokens; ++step) {
        model.machine->invoke(
            "decode", decodeArgs(model.config, batch, start_ctx));
        total_us += model.machine->lastRunStats().latencyUs;
    }
    return total_us / num_tokens / 1e3;
}

/** Single-sequence throughput (tokens/s), the Table 3 metric. */
inline double
relaxDecodeTokensPerSec(CompiledModel& model, int64_t ctx = 128)
{
    double ms = relaxDecodeMsPerToken(model, /*batch=*/1, ctx);
    return 1000.0 / ms;
}

/** Prefill latency in milliseconds. */
inline double
relaxPrefillMs(CompiledModel& model, int64_t batch, int64_t tokens)
{
    model.machine->invoke("prefill",
                          prefillArgs(model.config, batch, tokens));
    model.machine->invoke("prefill",
                          prefillArgs(model.config, batch, tokens));
    return model.machine->lastRunStats().latencyUs / 1e3;
}

/** Baseline per-token decode latency in ms (mean over the same steps). */
inline double
baselineDecodeMsPerToken(const frontend::LlamaConfig& config,
                         const device::DeviceSpec& spec,
                         const baselines::FrameworkTraits& traits,
                         int64_t batch, int64_t start_ctx = 128,
                         int num_tokens = 32)
{
    double total_us = 0.0;
    for (int step = 0; step < num_tokens; ++step) {
        baselines::DecodeWorkload workload;
        workload.model = config;
        workload.batch = batch;
        workload.contextLen = start_ctx;
        total_us += baselines::decodeStepUs(workload, spec, traits);
    }
    return total_us / num_tokens / 1e3;
}

} // namespace bench
} // namespace relax

#endif // RELAX_BENCH_COMMON_H_
